/**
 * @file
 * Ablation: closed-loop BCIs (extension; paper Secs. 2, 7).
 *
 * Replaces the raw-data uplink with an on-implant sense -> decode ->
 * stimulate loop and asks the paper's question for the closed-loop
 * regime: how far does each SoC scale, and which constraint binds —
 * the ~0.18 s brain-reaction deadline or the thermal budget?
 * Expected shape: the loop closes with >10x latency margin at every
 * feasible scale, so the power budget remains the binding constraint
 * (the paper's central claim carries over to closed-loop systems).
 * The stimulator's ~1 mW tax slightly lowers the frontier of the
 * small SoCs and is invisible on the large ones — the open-loop
 * computation-centric uplink it replaces was already negligible.
 */

#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "core/closed_loop.hh"
#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/soc_catalog.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    using namespace mindful::core;
    bool csv = bench::csvOnly(argc, argv);

    Table table("Closed-loop vs open-loop frontier (MLP decoder, "
                "16-site stimulator)");
    table.setHeader({"#", "SoC", "open-loop max n", "closed-loop max n",
                     "loop latency @1024 (ms)", "deadline margin",
                     "binding constraint"});

    for (const auto &soc : wirelessSocs()) {
        ImplantModel implant(soc);
        CompCentricModel open(implant,
                              experiments::speechModelBuilder(
                                  experiments::SpeechModel::Mlp));
        ClosedLoopStudy closed(implant,
                               experiments::speechModelBuilder(
                                   experiments::SpeechModel::Mlp));

        auto at_1024 = closed.evaluate(1024);
        double margin =
            closed.config().reactionDeadline.inSeconds() /
            at_1024.loopLatency.inSeconds();

        // Which constraint fails first just beyond the frontier?
        auto frontier = closed.maxChannels();
        std::string binding = "-";
        if (frontier > 0) {
            auto beyond = closed.evaluate(frontier + 64);
            if (!beyond.withinBudget)
                binding = "power budget";
            else if (!beyond.meetsDeadline)
                binding = "reaction deadline";
            else
                binding = "RT sizing";
        }

        table.addRow({std::to_string(soc.id), soc.name,
                      std::to_string(open.maxChannels()),
                      std::to_string(frontier),
                      Table::formatNumber(
                          at_1024.loopLatency.inMilliseconds(), 2),
                      Table::formatNumber(margin, 0) + "x", binding});
    }
    bench::emit(table, csv);
    return 0;
}
