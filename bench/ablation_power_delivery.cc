/**
 * @file
 * Ablation: power delivery and physical partitioning (extensions;
 * paper Secs. 7-8).
 *
 * Two constraints the core figures hold fixed:
 *
 *  1. Wireless power transfer — an implant must not only stay under
 *     the 40 mW/cm^2 thermal cap but also *receive* its power through
 *     the skull. This bench reports, per SoC and channel count under
 *     high-margin scaling, which ceiling binds first: the thermal
 *     budget or the SAR-limited inductive link. Expected shape: at
 *     today's scales the thermal budget binds for large implants
 *     while millimetre-scale implants are delivery-limited.
 *
 *  2. Multi-implant partitioning (SCALO-style) — when one implant
 *     cannot stream n channels, several smaller ones can. The bench
 *     prints the fewest implants that make each scale feasible and
 *     the replication cost in total power and volumetric efficiency.
 */

#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "comm/wpt.hh"
#include "core/comm_centric.hh"
#include "core/event_centric.hh"
#include "core/multi_implant.hh"
#include "core/soc_catalog.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    using namespace mindful::core;
    bool csv = bench::csvOnly(argc, argv);

    // --- Part 1: thermal budget vs WPT delivery ceiling. -----------
    comm::WptLink wpt;
    Table delivery("Binding power ceiling under high-margin scaling "
                   "(B = thermal budget, W = WPT delivery, - = both "
                   "satisfied)");
    std::vector<std::string> header{"#", "SoC"};
    std::vector<std::uint64_t> counts{1024, 2048, 4096, 8192};
    for (auto n : counts)
        header.push_back("n=" + std::to_string(n));
    header.push_back("WPT ceiling @1024 (mW)");
    delivery.setHeader(header);

    for (const auto &soc : wirelessSocs()) {
        ImplantModel implant(soc);
        CommCentricModel model(implant, CommScalingStrategy::HighMargin);
        std::vector<std::string> row{std::to_string(soc.id), soc.name};
        for (auto n : counts) {
            auto point = model.project(n);
            bool thermal_ok = point.safe();
            bool wpt_ok =
                wpt.canPower(point.totalArea, point.totalPower);
            std::string cell;
            if (!thermal_ok)
                cell += 'B';
            if (!wpt_ok)
                cell += 'W';
            if (cell.empty())
                cell = "-";
            row.push_back(cell);
        }
        auto at_1024 = model.project(1024);
        row.push_back(Table::formatNumber(
            wpt.maxDeliverablePower(at_1024.totalArea).inMilliwatts(),
            1));
        delivery.addRow(row);
    }
    bench::emit(delivery, csv);

    // --- Part 1b: event-driven streaming as the escape hatch. -------
    Table events("Spike-event streaming (on-implant detection): uplink "
                 "and frontier vs raw streaming");
    events.setHeader({"#", "SoC", "event uplink @4096 (Mbps)",
                      "raw uplink @4096 (Mbps)", "event max n",
                      "raw (high-margin) max n"});
    for (const auto &soc : wirelessSocs()) {
        ImplantModel implant(soc);
        EventCentricModel model(implant);
        CommCentricModel raw(implant, CommScalingStrategy::HighMargin);
        auto point = model.evaluate(4096);
        auto event_max = model.maxSafeChannels(65536);
        auto raw_max = raw.maxSafeChannels(65536);
        events.addRow(
            {std::to_string(soc.id), soc.name,
             Table::formatNumber(point.dataRate.inMegabitsPerSecond(), 2),
             Table::formatNumber(
                 point.rawDataRate.inMegabitsPerSecond(), 1),
             event_max >= 65536 ? "> 65536" : std::to_string(event_max),
             raw_max >= 65536 ? "> 65536" : std::to_string(raw_max)});
    }
    bench::emit(events, csv);

    // --- Part 2: multi-implant partitioning. ------------------------
    Table multi("Fewest implants for feasibility (high-margin raw "
                "streaming) and the replication cost");
    multi.setHeader({"#", "SoC", "n", "min implants", "total power (mW)",
                     "sensing-area fraction"});
    for (const auto &soc : wirelessSocs()) {
        MultiImplantStudy study{ImplantModel(soc)};
        for (std::uint64_t n : {8192u, 16384u}) {
            auto minimum = study.minimumImplants(n, 32);
            std::vector<std::string> row{std::to_string(soc.id), soc.name,
                                         std::to_string(n)};
            if (minimum == 0) {
                row.insert(row.end(), {"> 32", "-", "-"});
            } else {
                auto point = study.evaluate(n, minimum);
                row.push_back(std::to_string(minimum));
                row.push_back(Table::formatNumber(
                    point.totalPower.inMilliwatts(), 1));
                row.push_back(Table::formatNumber(
                    point.sensingAreaFraction, 2));
            }
            multi.addRow(row);
        }
    }
    bench::emit(multi, csv);
    return 0;
}
