/**
 * @file
 * Ablation: robustness of the headline conclusions to the calibrated
 * constants (DESIGN.md Sec. 3 item 3).
 *
 * The sensing/non-sensing split at 1024 channels and the link-budget
 * noise figure are calibrated values, not published numbers. This
 * bench perturbs them and re-derives the paper's three headline
 * results:
 *
 *  H1  high-margin OOK scaling eventually exceeds the budget for
 *      every wireless SoC;
 *  H2  at 20% QAM efficiency the average supported channel count is
 *      ~2x the 1024-channel standard (and ~4x at 100%);
 *  H3  the MLP decoder cannot be integrated at 1024 channels on the
 *      small SoCs (3-5) but fits the large ones.
 *
 * Expected shape: the quantitative values move, the qualitative
 * conclusions do not.
 */

#include <functional>
#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "core/comm_centric.hh"
#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/qam_study.hh"
#include "core/soc_catalog.hh"

namespace {

using namespace mindful;
using namespace mindful::core;

/** A perturbation applied to every SoC record before analysis. */
struct Scenario
{
    std::string name;
    std::function<void(SocDesign &)> perturb;
    QamStudyConfig qam;
};

bool
h1HighMarginAlwaysCrosses(const Scenario &scenario)
{
    for (SocDesign soc : wirelessSocs()) {
        scenario.perturb(soc);
        CommCentricModel model(ImplantModel(soc),
                               CommScalingStrategy::HighMargin);
        if (model.project(131072).safe())
            return false;
    }
    return true;
}

double
h2AverageGainAt(double eta, const Scenario &scenario)
{
    double total = 0.0;
    int count = 0;
    for (SocDesign soc : wirelessSocs()) {
        scenario.perturb(soc);
        QamStudy study(ImplantModel(soc), scenario.qam);
        total += static_cast<double>(study.maxChannels(eta));
        ++count;
    }
    return total / (static_cast<double>(count) * 1024.0);
}

std::string
h3FeasibilityPattern(const Scenario &scenario)
{
    std::string pattern;
    for (SocDesign soc : wirelessSocs()) {
        scenario.perturb(soc);
        CompCentricModel model(ImplantModel(soc),
                               experiments::speechModelBuilder(
                                   experiments::SpeechModel::Mlp));
        pattern += model.evaluate(1024).feasible ? 'F' : '.';
    }
    return pattern; // e.g. "FF...FFF": F = feasible, . = infeasible
}

} // namespace

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    bool csv = bench::csvOnly(argc, argv);

    std::vector<Scenario> scenarios;
    scenarios.push_back({"baseline", [](SocDesign &) {}, {}});
    scenarios.push_back({"sensing power share +20%",
                         [](SocDesign &soc) {
                             soc.sensingPowerFraction = std::min(
                                 0.95, soc.sensingPowerFraction * 1.2);
                         },
                         {}});
    scenarios.push_back({"sensing power share -20%",
                         [](SocDesign &soc) {
                             soc.sensingPowerFraction *= 0.8;
                         },
                         {}});
    scenarios.push_back({"sensing area share +20%",
                         [](SocDesign &soc) {
                             soc.sensingAreaFraction = std::min(
                                 0.95, soc.sensingAreaFraction * 1.2);
                         },
                         {}});
    scenarios.push_back({"comm share of non-sensing 0.6",
                         [](SocDesign &soc) {
                             soc.commShareOfNonSensing = 0.6;
                         },
                         {}});
    {
        Scenario noisy{"receiver NF +3 dB", [](SocDesign &) {}, {}};
        noisy.qam.link.noiseFigureDb += 3.0;
        scenarios.push_back(noisy);
    }

    Table table("Headline-conclusion robustness under calibration "
                "perturbations");
    table.setHeader({"scenario", "H1 OOK always crosses",
                     "H2 gain @20% / @100%",
                     "H3 MLP feasibility (SoCs 1-8)"});
    for (const auto &scenario : scenarios) {
        table.addRow({scenario.name,
                      h1HighMarginAlwaysCrosses(scenario) ? "yes" : "NO",
                      Table::formatNumber(
                          h2AverageGainAt(0.20, scenario), 2) +
                          "x / " +
                          Table::formatNumber(
                              h2AverageGainAt(1.0, scenario), 2) +
                          "x",
                      h3FeasibilityPattern(scenario)});
    }
    mindful::bench::emit(table, csv);
    std::cout << "pattern legend: position = SoC id 1..8, F = MLP "
                 "feasible at 1024 channels, . = infeasible\n";
    return 0;
}
