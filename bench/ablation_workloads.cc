/**
 * @file
 * Ablation: decoder workload choice (extension beyond Fig. 10).
 *
 * Compares three on-implant decoding workloads under the identical
 * power-budget machinery: the paper's two DNNs (MLP, DN-CNN) and the
 * traditional Kalman-filter decoder the related work says "remains
 * important". Expected shape: per unit of deadline the Kalman
 * decoder is far cheaper (its 50 ms bin period is ~100x the DNN
 * sampling deadline), so it reaches higher channel counts on every
 * SoC — but its O(n^3) innovation-covariance work makes its MAC cost
 * grow much faster than the DNNs', eroding that head start as NIs
 * scale. Both observations quantify the paper's nuance: traditional
 * algorithms remain relevant, yet do not change the long-term
 * scaling conclusion.
 */

#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/soc_catalog.hh"
#include "core/workloads.hh"
#include "accel/lower_bound.hh"
#include "dnn/models.hh"
#include "snn/cost_model.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    using namespace mindful::core;
    bool csv = bench::csvOnly(argc, argv);

    // Workload cost scaling, independent of any SoC.
    Table cost("Decoder workload cost vs channel count (MACs per "
               "inference / iteration)");
    cost.setHeader({"n", "MLP", "DN-CNN", "Kalman"});
    for (std::uint64_t n : {1024u, 2048u, 4096u, 8192u}) {
        cost.addRow({std::to_string(n),
                     std::to_string(dnn::buildSpeechMlp(n).totalMacs()),
                     std::to_string(dnn::buildSpeechDnCnn(n).totalMacs()),
                     std::to_string(kalmanIterationMacs(n))});
    }
    bench::emit(cost, csv);

    // Event-driven SNN alternative (paper Sec. 7 future work): same
    // MLP-like topology priced by spike activity instead of dense
    // MACs, at the 2 kHz deadline with a 10-step window.
    Table snn_table("Dense MAC lower bound vs event-driven SNN power "
                    "(MLP-like topology, 2 kHz deadline)");
    snn_table.setHeader({"n", "dense bound (mW)", "SNN @5% act. (mW)",
                         "SNN @20% act. (mW)"});
    {
        accel::LowerBoundSolver solver(accel::nangate45());
        snn::SnnCostModel snn_model;
        const Time deadline = period(Frequency::kilohertz(2.0));
        for (std::uint64_t n : {1024u, 2048u, 4096u}) {
            std::vector<std::size_t> layers{
                static_cast<std::size_t>(n / 2),
                static_cast<std::size_t>(n / 8), 40};
            std::vector<dnn::MacCensus> dense;
            std::size_t fan_in = static_cast<std::size_t>(n);
            std::size_t neurons = 0;
            for (std::size_t width : layers) {
                dense.push_back({width, fan_in});
                fan_in = width;
                neurons += width;
            }
            auto bound = solver.solveBest(dense, deadline);
            std::vector<std::string> row{std::to_string(n)};
            row.push_back(bound.feasible
                              ? Table::formatNumber(
                                    bound.power.inMilliwatts(), 2)
                              : "infeasible");
            for (double activity : {0.05, 0.20}) {
                auto census = snn::SnnCostModel::expectedCensus(
                    static_cast<std::size_t>(n), layers, activity, 10);
                double synops_per_second =
                    static_cast<double>(dnn::totalMacs(census)) /
                    deadline.inSeconds();
                row.push_back(Table::formatNumber(
                    snn_model.power(synops_per_second, neurons)
                        .inMilliwatts(),
                    2));
            }
            snn_table.addRow(row);
        }
    }
    bench::emit(snn_table, csv);

    // Per-SoC feasibility frontier for each workload.
    Table frontier("Max feasible channels per SoC and workload");
    frontier.setHeader({"#", "SoC", "MLP", "DN-CNN", "Kalman"});
    for (const auto &soc : wirelessSocs()) {
        ImplantModel implant(soc);

        CompCentricModel mlp(implant,
                             experiments::speechModelBuilder(
                                 experiments::SpeechModel::Mlp));
        CompCentricModel cnn(implant,
                             experiments::speechModelBuilder(
                                 experiments::SpeechModel::DnCnn));

        // Kalman: one iteration per 50 ms feature bin.
        CompCentricConfig kalman_config;
        kalman_config.applicationRate = Frequency::hertz(20.0);
        CompCentricModel kalman(
            implant,
            [](std::uint64_t n) { return buildKalmanWorkload(n); },
            kalman_config);

        frontier.addRow({std::to_string(soc.id), soc.name,
                         std::to_string(mlp.maxChannels()),
                         std::to_string(cnn.maxChannels()),
                         std::to_string(kalman.maxChannels())});
    }
    bench::emit(frontier, csv);
    return 0;
}
