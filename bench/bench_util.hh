/**
 * @file
 * Shared helpers for the figure-regeneration bench binaries.
 *
 * Every binary under bench/ regenerates one table or figure of the
 * paper (DESIGN.md Sec. 4) and prints it in both human-readable and
 * CSV form. Pass --csv to print CSV only (for external plotting).
 */

#ifndef MINDFUL_BENCH_BENCH_UTIL_HH
#define MINDFUL_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "base/table.hh"

namespace mindful::bench {

/** True when the command line requests CSV-only output. */
inline bool
csvOnly(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--csv")
            return true;
    return false;
}

/** Print one table in the requested format. */
inline void
emit(const Table &table, bool csv)
{
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << '\n';
}

} // namespace mindful::bench

#endif // MINDFUL_BENCH_BENCH_UTIL_HH
