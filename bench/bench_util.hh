/**
 * @file
 * Shared helpers for the figure-regeneration bench binaries.
 *
 * Every binary under bench/ regenerates one table or figure of the
 * paper (DESIGN.md Sec. 4) and prints it in both human-readable and
 * CSV form. Pass --csv to print CSV only (for external plotting).
 *
 * All binaries also accept the observability flags:
 *   --trace-out FILE    stream Chrome trace JSON while running (the
 *                       hot-tier collector drains per-thread rings
 *                       into FILE incrementally; cold TraceSpans join
 *                       the same stream, memory stays bounded)
 *   --metrics-out FILE  write a metric-registry snapshot as CSV
 * and the execution flag:
 *   --threads N         size the process-wide thread pool (0 = auto)
 * Call parseObsOptions() early and finalizeObs() before exit (or use
 * ObsGuard, which does both). parseObsOptions also hashes the full
 * command line into the run manifest (obs/manifest.hh) before
 * stripping its own flags, so every trace footer and metrics JSON
 * names the exact invocation that produced it. Output is
 * bit-identical for any --threads value (docs/parallelism.md).
 */

#ifndef MINDFUL_BENCH_BENCH_UTIL_HH
#define MINDFUL_BENCH_BENCH_UTIL_HH

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/parse.hh"
#include "base/table.hh"
#include "exec/thread_pool.hh"
#include "obs/collector.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::bench {

/** True when the command line requests CSV-only output. */
inline bool
csvOnly(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--csv")
            return true;
    return false;
}

/** Print one table in the requested format. */
inline void
emit(const Table &table, bool csv)
{
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << '\n';
}

/** Observability output destinations requested on the command line. */
struct ObsOptions
{
    std::string traceOut;   //!< Chrome trace JSON path ("" = off)
    std::string metricsOut; //!< metric snapshot CSV path ("" = off)

    /** Open sink the collector streams into; must outlive stop(). */
    std::shared_ptr<std::ofstream> traceStream;

    bool any() const { return !traceOut.empty() || !metricsOut.empty(); }
};

/**
 * Extract --trace-out FILE / --metrics-out FILE / --threads N (also
 * the --flag=VALUE spelling) and *remove them from argv* so
 * downstream parsers (e.g. google-benchmark) never see them. Enables
 * span tracing when --trace-out is present and sizes the process-wide
 * thread pool when --threads is present (0 = hardware concurrency).
 */
inline ObsOptions
parseObsOptions(int &argc, char **argv)
{
    // Hash the line as invoked — including the obs flags about to be
    // stripped — so the manifest pins the exact reproduction command.
    obs::setManifestConfigHash(obs::hashCommandLine(argc, argv));

    ObsOptions options;
    std::string threads;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto take_value = [&](const std::string &flag,
                              std::string &dest) -> bool {
            if (arg == flag) {
                if (i + 1 >= argc)
                    MINDFUL_FATAL(flag, " requires an argument");
                dest = argv[++i];
                return true;
            }
            if (arg.rfind(flag + "=", 0) == 0) {
                dest = arg.substr(flag.size() + 1);
                return true;
            }
            return false;
        };
        if (take_value("--trace-out", options.traceOut) ||
            take_value("--metrics-out", options.metricsOut) ||
            take_value("--threads", threads))
            continue;
        argv[out++] = argv[i];
    }
    argc = out;

    if (!threads.empty()) {
        // Strict locale-independent parse (base/parse.hh): rejects
        // negatives instead of wrapping them to huge counts, rejects
        // trailing junk, and never throws on garbage.
        std::optional<unsigned> n = parseThreadCount(threads);
        if (!n)
            MINDFUL_FATAL("--threads requires an integer thread count "
                          "in [0, ", kMaxThreadCount,
                          "] (0 = auto), got '", threads, "'");
        exec::ThreadPool::setGlobalThreadCount(*n);
    }

    if (options.any())
        obs::setManifestThreadCount(exec::ThreadPool::globalThreadCount());

    if (!options.traceOut.empty()) {
        obs::TraceSession::global().setEnabled(true);
        // Streaming mode: open the sink now and let the collector
        // drain into it for the whole run. Pool workers register
        // their rings on startup; the main thread registers here so
        // inline (single-shard) hot spans are captured too.
        options.traceStream =
            std::make_shared<std::ofstream>(options.traceOut);
        if (!*options.traceStream)
            MINDFUL_FATAL("cannot open trace output ", options.traceOut);
        obs::TraceCollector::global().registerCurrentThread();
        obs::TraceCollector::global().start(options.traceStream.get());
    }
    return options;
}

/** Write the requested trace / metrics files (no-op when unset). */
inline void
finalizeObs(const ObsOptions &options)
{
    if (!options.traceOut.empty()) {
        obs::CollectorTotals totals = obs::TraceCollector::global().stop();
        MINDFUL_INFORM("streamed ", totals.emitted, " trace events (",
                       totals.dropped, " dropped at full rings) to ",
                       options.traceOut);
    }
    if (!options.metricsOut.empty()) {
        std::ofstream os(options.metricsOut);
        if (!os)
            MINDFUL_FATAL("cannot open metrics output ",
                          options.metricsOut);
        obs::MetricRegistry::global().snapshotTable().printCsv(os);
        MINDFUL_INFORM("wrote ", obs::MetricRegistry::global().size(),
                       " metrics to ", options.metricsOut);
    }
}

/** RAII wrapper: parse at construction, finalize at destruction. */
class ObsGuard
{
  public:
    ObsGuard(int &argc, char **argv)
        : _options(parseObsOptions(argc, argv))
    {
    }

    ~ObsGuard() { finalizeObs(_options); }

    const ObsOptions &options() const { return _options; }

  private:
    ObsOptions _options;
};

} // namespace mindful::bench

#endif // MINDFUL_BENCH_BENCH_UTIL_HH
