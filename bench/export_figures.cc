/**
 * @file
 * Artifact-style data export: writes every table/figure as CSV into
 * ./data/ (mirroring the paper artifact's data/ output directory,
 * Sec. A.5.1). Plot from these with any external tool.
 */

#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_util.hh"
#include "core/experiments.hh"

namespace {

void
write(const std::filesystem::path &dir, const std::string &name,
      const mindful::Table &table)
{
    auto path = dir / (name + ".csv");
    std::ofstream file(path);
    table.printCsv(file);
    std::cout << "wrote " << path.string() << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful::core;
    namespace fs = std::filesystem;

    fs::path dir = argc > 1 ? fs::path(argv[1]) : fs::path("data");
    fs::create_directories(dir);

    write(dir, "table1", experiments::table1());
    write(dir, "fig4_scaled_1024", experiments::fig4Table());
    write(dir, "fig5_naive",
          experiments::fig5Table(CommScalingStrategy::Naive));
    write(dir, "fig5_high_margin",
          experiments::fig5Table(CommScalingStrategy::HighMargin));
    write(dir, "fig6_naive",
          experiments::fig6Table(CommScalingStrategy::Naive));
    write(dir, "fig6_high_margin",
          experiments::fig6Table(CommScalingStrategy::HighMargin));
    write(dir, "fig7_qam_efficiency", experiments::fig7Table());
    write(dir, "fig9_accelerator", experiments::fig9Table());
    write(dir, "fig10_mlp",
          experiments::fig10Table(experiments::SpeechModel::Mlp));
    write(dir, "fig10_dn_cnn",
          experiments::fig10Table(experiments::SpeechModel::DnCnn));
    write(dir, "fig11_partitioning", experiments::fig11Table());
    for (int soc = 1; soc <= 8; ++soc)
        write(dir, "fig12_soc" + std::to_string(soc),
              experiments::fig12Table(soc));
    return 0;
}
