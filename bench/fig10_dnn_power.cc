/**
 * @file
 * Regenerates Fig. 10: Psoc / Pbudget with the on-implant DNN MAC
 * lower bound, for the MLP and DN-CNN speech decoders (Sec. 5.3).
 * Expected shape: SoCs 3-5 cannot fit the MLP even at 1024 channels;
 * the DN-CNN fits only the largest SoCs; feasible SoCs top out
 * before ~2x the 1024-channel standard.
 */

#include "bench_util.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    using namespace mindful::core;
    bool csv = bench::csvOnly(argc, argv);
    bench::emit(experiments::fig10Table(experiments::SpeechModel::Mlp),
                csv);
    bench::emit(experiments::fig10Table(experiments::SpeechModel::DnCnn),
                csv);
    return 0;
}
