/**
 * @file
 * Regenerates Fig. 11: channel-count increase enabled by DNN
 * partitioning between implant and wearable (Sec. 6.1). Expected
 * shape: the MLP gains up to tens of percent; the DN-CNN gains
 * nothing (its feature maps are too wide to cut).
 */

#include "bench_util.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    bench::emit(core::experiments::fig11Table(),
                bench::csvOnly(argc, argv));
    return 0;
}
