/**
 * @file
 * Regenerates Fig. 12: feasible MLP model size on SoCs 1-8 after the
 * cumulative ChDr / La / Tech / Dense optimizations (Sec. 6.2), at
 * n = 2048, 4096, 8192. Expected shape: ChDr alone shrinks the model
 * hard as n grows; La and especially Tech recover model size; Dense
 * (halved sensing area = halved budget growth) gives some of it back.
 */

#include "bench_util.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    bool csv = bench::csvOnly(argc, argv);
    for (int soc_id = 1; soc_id <= 8; ++soc_id)
        bench::emit(core::experiments::fig12Table(soc_id), csv);
    return 0;
}
