/**
 * @file
 * Regenerates Fig. 4: every Table 1 design scaled to 1024 channels
 * (Sec. 4.1) against the 40 mW/cm^2 power budget. The paper's claim:
 * all designs fall below the budget line.
 */

#include "bench_util.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    bench::emit(core::experiments::fig4Table(),
                bench::csvOnly(argc, argv));
    return 0;
}
