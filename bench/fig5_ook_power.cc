/**
 * @file
 * Regenerates Fig. 5: Psoc / Pbudget versus channel count for the
 * naive and high-margin OOK scaling hypotheses (Sec. 5.1). Expected
 * shape: the naive ratio is flat; the high-margin ratio grows and
 * eventually exceeds 1 for every SoC.
 */

#include "bench_util.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    using namespace mindful::core;
    bool csv = bench::csvOnly(argc, argv);
    bench::emit(experiments::fig5Table(CommScalingStrategy::Naive), csv);
    bench::emit(experiments::fig5Table(CommScalingStrategy::HighMargin),
                csv);
    return 0;
}
