/**
 * @file
 * Regenerates Fig. 6: sensing-area fraction (volumetric efficiency)
 * versus channel count for both OOK scaling hypotheses (Sec. 5.1).
 * Expected shape: flat for naive, rising toward 1 for high-margin.
 */

#include "bench_util.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    using namespace mindful::core;
    bool csv = bench::csvOnly(argc, argv);
    bench::emit(experiments::fig6Table(CommScalingStrategy::Naive), csv);
    bench::emit(experiments::fig6Table(CommScalingStrategy::HighMargin),
                csv);
    return 0;
}
