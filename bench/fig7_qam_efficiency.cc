/**
 * @file
 * Regenerates Fig. 7: the minimum QAM efficiency needed to keep each
 * SoC inside its power budget versus channel count (Sec. 5.2), plus
 * the paper's headline averages (20% efficiency -> ~2x channels,
 * 100% -> ~4x).
 */

#include <iostream>

#include "base/table.hh"
#include "bench_util.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    using namespace mindful::core;
    bool csv = bench::csvOnly(argc, argv);
    bench::emit(experiments::fig7Table(), csv);

    Table summary("Average supported channels vs QAM efficiency");
    summary.setHeader({"efficiency", "avg max channels", "gain vs 1024"});
    for (double eta : {0.13, 0.15, 0.20, 0.50, 1.0}) {
        auto s = experiments::qamSummary(eta);
        summary.addRow({Table::formatNumber(eta * 100.0, 0) + "%",
                        Table::formatNumber(s.averageMaxChannels, 0),
                        Table::formatNumber(s.averageGain, 2) + "x"});
    }
    bench::emit(summary, csv);
    return 0;
}
