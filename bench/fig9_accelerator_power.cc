/**
 * @file
 * Regenerates Fig. 9: the twelve synthesized accelerator design
 * points and their PE-power share (Sec. 5.3). Expected shape: PE
 * share ~25% in designs 1-5, rising to ~80% by design 9 and ~95% by
 * design 12 — PE power dominates at scale.
 */

#include "bench_util.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    bench::emit(core::experiments::fig9Table(),
                bench::csvOnly(argc, argv));
    return 0;
}
