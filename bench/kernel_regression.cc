/**
 * @file
 * Tracked perf-regression harness for the two hot kernels this
 * codebase optimizes — the im2col-GEMM DNN forward path and the
 * red-black bio-heat SOR sweep — plus the end-to-end figure paths
 * built on them (Figs. 9, 10, 12).
 *
 * Each kernel runs both its production implementation and the
 * retained golden reference (Conv2dLayer::forwardNaive,
 * DenseLayer::forwardNaive, BioHeatSolver::solveReference), so the
 * emitted speedups measure exactly the optimization under regression
 * watch, on the same machine, in the same run.
 *
 * Outputs:
 *  - human-readable timing summary on stdout (default);
 *  - `--json FILE`: machine-readable BENCH_kernels.json with wall
 *    times, ops/s, speedups, iteration counts, and a thread-scaling
 *    sweep — the artifact CI uploads per commit;
 *  - `--csv`: *deterministic values only* (output checksums and SOR
 *    iteration counts, no timings), byte-identical for any --threads
 *    value — the determinism contract test diffs this across thread
 *    counts;
 *  - `--quick`: CI smoke mode (fewer repetitions, no scaling sweep).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "base/cpu.hh"
#include "bench_util.hh"
#include "core/experiments.hh"
#include "dnn/conv.hh"
#include "dnn/dense.hh"
#include "dnn/sparse.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "thermal/bioheat.hh"

namespace {

using namespace mindful;

/** Milliseconds for one invocation of @p fn, averaged over @p reps. */
double
timeMs(std::size_t reps, const std::function<void()> &fn)
{
    auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r)
        fn();
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
               .count() /
           static_cast<double>(reps);
}

/** One fast-vs-reference kernel measurement. */
struct KernelResult
{
    std::string name;
    double fastMs = 0.0;
    double referenceMs = 0.0;
    double gigaOpsPerSec = 0.0;   //!< fast path, 2 * MACs / time
    double checksum = 0.0;        //!< deterministic output digest
    std::size_t iterations = 0;   //!< SOR sweeps (0 for DNN kernels)
    std::size_t referenceIterations = 0;

    double
    speedup() const
    {
        return fastMs > 0.0 ? referenceMs / fastMs : 0.0;
    }
};

struct ScalingPoint
{
    std::string name;
    unsigned threads = 0;
    double wallMs = 0.0;
};

struct EndToEndResult
{
    std::string name;
    double wallMs = 0.0;
};

/** Deterministic digest of a tensor: plain ascending-index sum. */
double
checksum(const dnn::Tensor &t)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i)
        sum += t[i];
    return sum;
}

dnn::Tensor
makeInput(const dnn::Shape &shape)
{
    dnn::Tensor x(shape);
    Rng rng(29);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    return x;
}

/**
 * Conv case at a fig-10 DN-CNN shape (speech decoder at n = 512
 * channels, alpha = 4: growth 22, stem-pooled 128-row maps).
 */
KernelResult
benchConv(const std::string &name, std::size_t in_ch, std::size_t out_ch,
          const dnn::Shape &input_shape, std::size_t fast_reps,
          std::size_t ref_reps)
{
    dnn::Conv2dLayer conv(in_ch, out_ch, 3, 3, 1, dnn::Padding::Same);
    Rng rng(31);
    conv.initializeWeights(rng);
    dnn::Tensor x = makeInput(input_shape);

    KernelResult result;
    result.name = name;
    dnn::Tensor out = conv.forward(x);
    result.checksum = checksum(out);
    result.fastMs = timeMs(fast_reps, [&] { conv.forward(x); });
    result.referenceMs = timeMs(ref_reps, [&] { conv.forwardNaive(x); });

    auto census = conv.census(x.shape());
    result.gigaOpsPerSec = 2.0 * static_cast<double>(census.totalMacs()) /
                           (result.fastMs * 1e6);
    return result;
}

KernelResult
benchDense(const std::string &name, std::size_t in, std::size_t out,
           std::size_t fast_reps, std::size_t ref_reps)
{
    dnn::DenseLayer layer(in, out);
    Rng rng(37);
    layer.initializeWeights(rng);
    dnn::Tensor x = makeInput({in});

    KernelResult result;
    result.name = name;
    result.checksum = checksum(layer.forward(x));
    result.fastMs = timeMs(fast_reps, [&] { layer.forward(x); });
    result.referenceMs = timeMs(ref_reps, [&] { layer.forwardNaive(x); });
    result.gigaOpsPerSec = 2.0 * static_cast<double>(in) * out /
                           (result.fastMs * 1e6);
    return result;
}

/**
 * Deterministic mask with exactly @p active of @p units set, shuffled
 * so the surviving columns are scattered (the CSR slabs stay ragged).
 */
std::vector<std::uint8_t>
dropoutMask(std::size_t units, std::size_t active, std::uint64_t seed)
{
    std::vector<std::uint8_t> mask(units, 0);
    for (std::size_t i = 0; i < active; ++i)
        mask[i] = 1;
    Rng rng(seed);
    for (std::size_t i = units - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(i)));
        std::swap(mask[i], mask[j]);
    }
    return mask;
}

/**
 * Dense layer with a channel-dropout mask installed: the fast path is
 * the Pruned/Csr kernel, the reference is forwardNaive over the same
 * input with the dropped features zeroed — outputs are golden-checked
 * equal before timing. GOP/s counts the MACs actually executed.
 */
KernelResult
benchDenseSparse(const std::string &name, std::size_t in, std::size_t out,
                 std::size_t active, std::size_t fast_reps,
                 std::size_t ref_reps)
{
    dnn::DenseLayer layer(in, out);
    Rng rng(37);
    layer.initializeWeights(rng);
    const auto mask = dropoutMask(in, active, 43);
    layer.setInputDropout(mask);

    dnn::Tensor x = makeInput({in});
    dnn::Tensor masked = x;
    for (std::size_t i = 0; i < in; ++i)
        if (mask[i] == 0)
            masked[i] = 0.0f;

    KernelResult result;
    result.name = name;
    dnn::Tensor fast = layer.forward(x);
    dnn::Tensor golden = layer.forwardNaive(masked);
    for (std::size_t i = 0; i < fast.size(); ++i)
        if (fast[i] != golden[i])
            MINDFUL_FATAL(name, ": sparse output diverges from masked "
                          "naive at element ", i);
    result.checksum = checksum(fast);
    result.fastMs = timeMs(fast_reps, [&] { layer.forward(x); });
    result.referenceMs =
        timeMs(ref_reps, [&] { layer.forwardNaive(masked); });

    // Executed ops: the pruned path runs out x active MACs, the CSR
    // path one MAC per stored nonzero — identical for dense random
    // weights, so count the pruned figure.
    result.gigaOpsPerSec = 2.0 * static_cast<double>(out) * active /
                           (result.fastMs * 1e6);
    return result;
}

/** Conv analog of benchDenseSparse: channel-pruned im2col-GEMM. */
KernelResult
benchConvSparse(const std::string &name, std::size_t in_ch,
                std::size_t out_ch, const dnn::Shape &input_shape,
                std::size_t active, std::size_t fast_reps,
                std::size_t ref_reps)
{
    dnn::Conv2dLayer conv(in_ch, out_ch, 3, 3, 1, dnn::Padding::Same);
    Rng rng(31);
    conv.initializeWeights(rng);
    const auto mask = dropoutMask(in_ch, active, 47);
    conv.setInputDropout(mask);

    dnn::Tensor x = makeInput(input_shape);
    dnn::Tensor masked = x;
    const std::size_t plane = input_shape[1] * input_shape[2];
    for (std::size_t ic = 0; ic < in_ch; ++ic)
        if (mask[ic] == 0)
            std::fill(masked.data() + ic * plane,
                      masked.data() + (ic + 1) * plane, 0.0f);

    KernelResult result;
    result.name = name;
    dnn::Tensor fast = conv.forward(x);
    dnn::Tensor golden = conv.forwardNaive(masked);
    for (std::size_t i = 0; i < fast.size(); ++i)
        if (fast[i] != golden[i])
            MINDFUL_FATAL(name, ": sparse output diverges from masked "
                          "naive at element ", i);
    result.checksum = checksum(fast);
    result.fastMs = timeMs(fast_reps, [&] { conv.forward(x); });
    result.referenceMs =
        timeMs(ref_reps, [&] { conv.forwardNaive(masked); });

    const auto out_shape = conv.outputShape(input_shape);
    result.gigaOpsPerSec =
        2.0 * static_cast<double>(out_shape[1]) * out_shape[2] * out_ch *
        active * 9 / (result.fastMs * 1e6);
    return result;
}

KernelResult
benchBioHeat(const std::string &name, const thermal::BioHeatConfig &config,
             std::size_t fast_reps, std::size_t ref_reps)
{
    thermal::BioHeatSolver solver({}, config);
    Power p = Power::milliwatts(57.6);
    Area a = Area::squareMillimetres(144.0);

    KernelResult result;
    result.name = name;
    auto fast = solver.solve(p, a);
    result.checksum = fast.peakRise.inKelvin();
    result.iterations = fast.iterations;
    result.fastMs = timeMs(fast_reps, [&] { solver.solve(p, a); });
    if (ref_reps > 0) {
        auto ref = solver.solveReference(p, a);
        result.referenceIterations = ref.iterations;
        result.referenceMs =
            timeMs(ref_reps, [&] { solver.solveReference(p, a); });
    }
    // Cell updates per second: sweeps * interior cells, counted as
    // one "op" per 5-point stencil update.
    double cells = static_cast<double>(fast.fieldRows - 1) *
                   (fast.fieldCols - 1);
    result.gigaOpsPerSec = static_cast<double>(result.iterations) *
                           cells / (result.fastMs * 1e6);
    return result;
}

void
writeJson(const std::string &path, bool quick,
          const std::vector<KernelResult> &kernels,
          const std::vector<EndToEndResult> &end_to_end,
          const std::vector<ScalingPoint> &scaling)
{
    std::ofstream os(path);
    if (!os)
        MINDFUL_FATAL("cannot open JSON output ", path);
    os << "{\n";
    os << "  \"manifest\": ";
    mindful::obs::RunManifest::current().writeJsonObject(os);
    os << ",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"threads\": " << exec::ThreadPool::global().threadCount()
       << ",\n";
    os << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto &k = kernels[i];
        os << "    {\"name\": ";
        mindful::obs::writeJsonEscaped(os, k.name);
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            ", \"fast_ms\": %.6f, "
            "\"reference_ms\": %.6f, \"speedup\": %.3f, "
            "\"gops\": %.4f, \"iterations\": %zu, "
            "\"reference_iterations\": %zu, \"checksum\": %.12e}",
            k.fastMs, k.referenceMs, k.speedup(), k.gigaOpsPerSec,
            k.iterations, k.referenceIterations, k.checksum);
        os << buf << (i + 1 < kernels.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"end_to_end\": [\n";
    for (std::size_t i = 0; i < end_to_end.size(); ++i) {
        os << "    {\"name\": ";
        mindful::obs::writeJsonEscaped(os, end_to_end[i].name);
        char buf[256];
        std::snprintf(buf, sizeof(buf), ", \"wall_ms\": %.3f}",
                      end_to_end[i].wallMs);
        os << buf << (i + 1 < end_to_end.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"thread_scaling\": [\n";
    for (std::size_t i = 0; i < scaling.size(); ++i) {
        os << "    {\"name\": ";
        mindful::obs::writeJsonEscaped(os, scaling[i].name);
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      ", \"threads\": %u, \"wall_ms\": %.6f}",
                      scaling[i].threads, scaling[i].wallMs);
        os << buf << (i + 1 < scaling.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsGuard _obs(argc, argv);
    bool csv = bench::csvOnly(argc, argv);
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--json") {
            if (i + 1 >= argc)
                MINDFUL_FATAL("--json requires an argument");
            json_path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        }
    }

    const std::size_t fast_reps = quick ? 5 : 40;
    const std::size_t ref_reps = quick ? 2 : 8;

    // --- Kernel measurements (fast vs retained reference) ------------
    std::vector<KernelResult> kernels;

    // Fig-10 DN-CNN conv shapes at n = 512 (alpha = 4): growth 22,
    // stem over the raw 512 x 16 window, block-1 stages on the
    // stem-pooled 64 x 8 maps, block-2 stages on 32 x 4 maps with the
    // concatenated channel depth of the last stage.
    kernels.push_back(benchConv("conv_dncnn_stem", 1, 22, {1, 512, 16},
                                fast_reps, ref_reps));
    kernels.push_back(benchConv("conv_dncnn_block1", 66, 22, {66, 64, 8},
                                fast_reps, ref_reps));
    kernels.push_back(benchConv("conv_dncnn_block2", 220, 22, {220, 32, 4},
                                fast_reps, ref_reps));
    // Fig-10 MLP trunk at n = 512: latent 1024 -> trunk 768.
    kernels.push_back(
        benchDense("dense_mlp_trunk", 1024, 768, fast_reps, ref_reps));

    // Per-ISA entries: force each backend this binary + host can run
    // and re-measure the representative conv and the GEMV-shaped
    // trunk. The unsuffixed entries above use the dispatched backend
    // (or the MINDFUL_SIMD override); the JSON manifest's `simd_isa`
    // field records which one that was. Checksums are identical
    // across every suffix — that is the bit-exactness contract.
    {
        const SimdIsa dispatched = activeSimdIsa();
        for (const SimdIsa isa :
             {SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Neon}) {
            if (!simdIsaSupported(isa))
                continue;
            forceSimdIsa(isa);
            const std::string tag = std::string("@") + simdIsaName(isa);
            kernels.push_back(benchConv("conv_dncnn_block1" + tag, 66, 22,
                                        {66, 64, 8}, fast_reps,
                                        ref_reps));
            kernels.push_back(benchDense("dense_mlp_trunk" + tag, 1024,
                                         768, fast_reps, ref_reps));
        }
        forceSimdIsa(dispatched);
    }

    // Channel-dropout structured sparsity: 50% of the trunk's inputs
    // active stays above kCsrDensityThreshold (column-pruned GEMM);
    // 12.5% falls below it (CSR slab kernel); the conv entry prunes
    // half the input channel planes before im2col.
    kernels.push_back(benchDenseSparse("dense_mlp_trunk_drop50", 1024,
                                       768, 512, fast_reps, ref_reps));
    kernels.push_back(benchDenseSparse("dense_mlp_trunk_drop88", 1024,
                                       768, 128, fast_reps, ref_reps));
    kernels.push_back(benchConvSparse("conv_dncnn_block1_drop50", 66, 22,
                                      {66, 64, 8}, 33, fast_reps,
                                      ref_reps));

    // Bio-heat at the seed configuration (the paper's operating
    // point) and on a fine grid that crosses the sharding threshold.
    kernels.push_back(benchBioHeat("bioheat_default", {},
                                   quick ? 2 : 10, quick ? 1 : 4));
    thermal::BioHeatConfig fine;
    fine.gridSpacing = Length::millimetres(0.15);
    kernels.push_back(
        benchBioHeat("bioheat_fine", fine, quick ? 1 : 4, quick ? 0 : 2));

    // --- End-to-end figure paths -------------------------------------
    std::vector<EndToEndResult> end_to_end;
    end_to_end.push_back(
        {"fig9_accelerator_power",
         timeMs(1, [] { core::experiments::fig9Table(); })});
    end_to_end.push_back(
        {"fig10_dnn_power_mlp", timeMs(1, [] {
             core::experiments::fig10Table(
                 core::experiments::SpeechModel::Mlp);
         })});
    end_to_end.push_back(
        {"fig10_dnn_power_dncnn", timeMs(1, [] {
             core::experiments::fig10Table(
                 core::experiments::SpeechModel::DnCnn);
         })});
    end_to_end.push_back(
        {"fig12_optimizations_soc1",
         timeMs(1, [] { core::experiments::fig12Table(1); })});

    // --- Thread-scaling sweep (parallel-heavy kernels only) ----------
    std::vector<ScalingPoint> scaling;
    if (!quick) {
        const unsigned initial = exec::ThreadPool::global().threadCount();
        dnn::Conv2dLayer conv(66, 22, 3, 3, 1, dnn::Padding::Same);
        Rng rng(31);
        conv.initializeWeights(rng);
        dnn::Tensor x = makeInput({66, 64, 8});
        thermal::BioHeatSolver fine_solver({}, fine);
        Power p = Power::milliwatts(57.6);
        Area a = Area::squareMillimetres(144.0);
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            exec::ThreadPool::setGlobalThreadCount(threads);
            scaling.push_back({"conv_dncnn_block1", threads,
                               timeMs(fast_reps,
                                      [&] { conv.forward(x); })});
            scaling.push_back(
                {"bioheat_fine", threads,
                 timeMs(2, [&] { fine_solver.solve(p, a); })});
        }
        exec::ThreadPool::setGlobalThreadCount(initial);
    }

    // --- Output ------------------------------------------------------
    if (csv) {
        // Deterministic values only: byte-identical for any --threads.
        std::printf("kernel,checksum,iterations\n");
        for (const auto &k : kernels)
            std::printf("%s,%.12e,%zu\n", k.name.c_str(), k.checksum,
                        k.iterations);
    } else {
        std::printf("%-26s %12s %12s %9s %10s %6s\n", "kernel",
                    "fast_ms", "ref_ms", "speedup", "gops", "iters");
        for (const auto &k : kernels)
            std::printf("%-26s %12.4f %12.4f %8.2fx %10.3f %6zu\n",
                        k.name.c_str(), k.fastMs, k.referenceMs,
                        k.speedup(), k.gigaOpsPerSec, k.iterations);
        for (const auto &e : end_to_end)
            std::printf("%-30s %10.2f ms\n", e.name.c_str(), e.wallMs);
        for (const auto &s : scaling)
            std::printf("scaling %-22s t=%u %10.4f ms\n", s.name.c_str(),
                        s.threads, s.wallMs);
    }

    if (!json_path.empty()) {
        writeJson(json_path, quick, kernels, end_to_end, scaling);
        MINDFUL_INFORM("wrote ", json_path);
    }
    return 0;
}
