/**
 * @file
 * google-benchmark microbenchmarks of the heavy substrates: the
 * synthetic cortex generator, the DSP chain, the accelerator
 * simulator, the AWGN channel, the bio-heat solver, and the
 * framework's own solvers. These quantify the cost of regenerating
 * the paper's figures and catch performance regressions.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hh"

#include "accel/lower_bound.hh"
#include "accel/simulator.hh"
#include "base/matrix.hh"
#include "comm/channel_sim.hh"
#include "comm/packetizer.hh"
#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/qam_study.hh"
#include "core/soc_catalog.hh"
#include "dnn/models.hh"
#include "ni/synthetic_cortex.hh"
#include "signal/filters.hh"
#include "signal/spike_detect.hh"
#include "signal/spike_sorter.hh"
#include "snn/lif.hh"
#include "comm/wpt.hh"
#include "thermal/bioheat.hh"

namespace {

using namespace mindful;

void
BM_SyntheticCortexGenerate(benchmark::State &state)
{
    ni::SyntheticCortexConfig config;
    config.channels = static_cast<std::uint64_t>(state.range(0));
    ni::SyntheticCortex cortex(config);
    for (auto _ : state) {
        auto rec = cortex.generate(1000);
        benchmark::DoNotOptimize(rec.samples.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 1000);
}
BENCHMARK(BM_SyntheticCortexGenerate)->Arg(16)->Arg(64)->Arg(256);

void
BM_SpikeBandFilter(benchmark::State &state)
{
    auto cascade =
        signal::BiquadCascade::spikeBand(Frequency::kilohertz(8.0));
    std::vector<double> trace(8000, 1.0);
    for (auto _ : state) {
        cascade.reset();
        auto out = cascade.apply(trace);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 8000);
}
BENCHMARK(BM_SpikeBandFilter);

void
BM_ThresholdDetector(benchmark::State &state)
{
    Rng rng(1);
    std::vector<double> trace(16000);
    for (auto &v : trace)
        v = rng.gaussian(0.0, 5.0);
    signal::ThresholdDetector detector;
    for (auto _ : state) {
        auto events = detector.detect(trace);
        benchmark::DoNotOptimize(events.size());
    }
    state.SetItemsProcessed(state.iterations() * 16000);
}
BENCHMARK(BM_ThresholdDetector);

void
BM_AcceleratorSimulatorMlp(benchmark::State &state)
{
    auto net = dnn::buildSpeechMlp(128);
    Rng rng(2);
    net.initializeWeights(rng);
    dnn::Tensor input(net.inputShape());
    accel::AcceleratorSimulator sim(
        {static_cast<std::uint64_t>(state.range(0)), accel::nangate45()});
    for (auto _ : state) {
        auto result = sim.run(net, input);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * net.totalMacs()));
}
BENCHMARK(BM_AcceleratorSimulatorMlp)->Arg(16)->Arg(256);

void
BM_LowerBoundSolver(benchmark::State &state)
{
    auto census =
        dnn::buildSpeechMlp(static_cast<std::uint64_t>(state.range(0)))
            .census();
    accel::LowerBoundSolver solver(accel::nangate45());
    for (auto _ : state) {
        auto bound =
            solver.solveBest(census, Time::microseconds(500.0));
        benchmark::DoNotOptimize(bound.macUnits);
    }
}
BENCHMARK(BM_LowerBoundSolver)->Arg(1024)->Arg(8192);

void
BM_AwgnChannel16Qam(benchmark::State &state)
{
    comm::AwgnChannelSimulator sim(4);
    for (auto _ : state) {
        auto result = sim.measureBer(10.0, 10000);
        benchmark::DoNotOptimize(result.bitErrors);
    }
    state.SetItemsProcessed(state.iterations() * 40000);
}
BENCHMARK(BM_AwgnChannel16Qam);

void
BM_PacketizerRoundTrip(benchmark::State &state)
{
    comm::Packetizer packetizer({10});
    std::vector<std::uint32_t> samples(1024, 513);
    for (auto _ : state) {
        auto frame = packetizer.pack(1, samples);
        auto unpacked = packetizer.unpack(frame);
        benchmark::DoNotOptimize(unpacked.valid);
    }
    state.SetBytesProcessed(state.iterations() * 1280);
}
BENCHMARK(BM_PacketizerRoundTrip);

void
BM_BioHeatSolve(benchmark::State &state)
{
    thermal::BioHeatConfig config;
    config.gridSpacing = Length::millimetres(1.0);
    config.domainWidth = Length::millimetres(25.0);
    config.domainDepth = Length::millimetres(12.0);
    thermal::BioHeatSolver solver({}, config);
    for (auto _ : state) {
        auto result = solver.solve(Power::milliwatts(40.0),
                                   Area::squareMillimetres(100.0));
        benchmark::DoNotOptimize(result.peakRise);
    }
}
BENCHMARK(BM_BioHeatSolve);

void
BM_MatrixInverse(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.gaussian();
        m(i, i) += static_cast<double>(n);
    }
    for (auto _ : state) {
        Matrix inv = m.inverse();
        benchmark::DoNotOptimize(inv(0, 0));
    }
}
BENCHMARK(BM_MatrixInverse)->Arg(16)->Arg(64);

void
BM_QamStudyEvaluate(benchmark::State &state)
{
    core::QamStudy study(core::ImplantModel(core::socById(1)));
    std::uint64_t n = 1024;
    for (auto _ : state) {
        auto point = study.evaluate(n);
        benchmark::DoNotOptimize(point.minimumEfficiency);
        n = n == 8192 ? 1024 : n + 256;
    }
}
BENCHMARK(BM_QamStudyEvaluate);

void
BM_CompCentricEvaluate(benchmark::State &state)
{
    core::CompCentricModel model(
        core::ImplantModel(core::socById(1)),
        core::experiments::speechModelBuilder(
            core::experiments::SpeechModel::Mlp));
    for (auto _ : state) {
        auto point =
            model.evaluate(static_cast<std::uint64_t>(state.range(0)));
        benchmark::DoNotOptimize(point.budgetUtilization);
    }
}
BENCHMARK(BM_CompCentricEvaluate)->Arg(1024)->Arg(4096);

void
BM_SpikeSorterTrain(benchmark::State &state)
{
    Rng rng(4);
    std::vector<signal::Snippet> snippets;
    for (int i = 0; i < 200; ++i) {
        signal::Snippet snippet(32);
        for (auto &v : snippet)
            v = rng.gaussian(0.0, 5.0) + (i % 2 ? 40.0 : -40.0);
        snippets.push_back(std::move(snippet));
    }
    for (auto _ : state) {
        signal::TemplateSpikeSorter sorter({2, 16, 6.0, 1});
        sorter.train(snippets);
        benchmark::DoNotOptimize(sorter.templates().data());
    }
}
BENCHMARK(BM_SpikeSorterTrain);

void
BM_SnnStep(benchmark::State &state)
{
    Rng rng(6);
    snn::SpikingNetwork net(256);
    net.addLayer(128);
    net.addLayer(32);
    net.initializeWeights(rng, 1.5);
    std::vector<std::uint8_t> input(256, 0);
    for (auto &s : input)
        s = rng.bernoulli(0.1);
    for (auto _ : state) {
        auto out = net.step(input, 1e-3);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnnStep);

void
BM_WptEfficiency(benchmark::State &state)
{
    comm::WptLink link;
    double mm2 = 1.0;
    for (auto _ : state) {
        double eta = link.endToEndEfficiency(
            Area::squareMillimetres(mm2));
        benchmark::DoNotOptimize(eta);
        mm2 = mm2 >= 400.0 ? 1.0 : mm2 + 1.0;
    }
}
BENCHMARK(BM_WptEfficiency);

} // namespace

/**
 * Custom main instead of BENCHMARK_MAIN(): the instrumented substrates
 * (channel simulator, accelerator simulator, DNN forward) publish into
 * the metric registry while the benchmarks run, and we emit that
 * snapshot through the single shared reporting path (table / CSV /
 * --metrics-out) rather than ad-hoc prints. --trace-out additionally
 * captures spans, though benchmark loops produce *many* of them.
 */
int
main(int argc, char **argv)
{
    // Strip --trace-out/--metrics-out before google-benchmark parses.
    auto obs = mindful::bench::parseObsOptions(argc, argv);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::cout << '\n';
    mindful::obs::MetricRegistry::global().snapshotTable().print(
        std::cout);
    mindful::bench::finalizeObs(obs);
    return 0;
}
