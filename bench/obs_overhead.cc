/**
 * @file
 * Micro-harness for the hot-path telemetry tier (obs/collector.hh,
 * obs/handles.hh): what does one record actually cost?
 *
 * Measures ns/event for the three hot record primitives —
 *   span_record       MINDFUL_HOT_SPAN construct + destruct + ring push
 *   counter_add       MINDFUL_HOT_COUNT through a pre-resolved handle
 *   histogram_record  MINDFUL_HOT_RECORD (log-bucket index + atomics)
 * in two runtime states:
 *   enabled           collector streaming (count-only sink), registry on
 *   disabled          collector stopped, registry runtime-disabled
 * The twin target obs_overhead_disabled compiles this same file with
 * MINDFUL_OBS_DISABLED, so its rows (mode "compiled_out") measure the
 * macros' vanished form.
 *
 * Also runs a deliberate ring-overflow scenario (tiny ring, paused
 * drain) and reports the drop rate plus the conservation check
 * `events == emitted + dropped` — the same invariant the collector
 * stress test asserts.
 *
 * `--json FILE` writes BENCH_obs.json (CI uploads it; the ≤100 ns
 * enabled-record watermark is report-only, mirroring the kernel
 * regression harness). Accepts the shared bench_util flags.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "obs/collector.hh"
#include "obs/handles.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"

namespace {

using namespace mindful;

/** Report-only watermark for enabled-state records (docs). */
constexpr double kWatermarkNs = 100.0;

struct Row
{
    std::string op;
    std::string mode;
    double nsPerEvent = 0.0;
};

struct OverflowResult
{
    std::uint64_t events = 0;
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;

    bool exact() const { return emitted + dropped == events; }
    double
    dropRate() const
    {
        return events ? static_cast<double>(dropped) /
                            static_cast<double>(events)
                      : 0.0;
    }
};

template <typename Fn>
double
nsPerOp(std::uint64_t iters, Fn &&fn)
{
    auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
        fn(i);
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(stop - start)
               .count() /
           static_cast<double>(iters);
}

/** The three record primitives, timed in the current runtime state. */
void
measureOps(const std::string &mode, std::uint64_t iters,
           std::vector<Row> &rows)
{
    // Setup tier: resolve site and handles once, outside the loops.
    // ([[maybe_unused]]: the compiled-out twin erases every use.)
    auto &collector = obs::TraceCollector::global();
    auto &hot = obs::HotMetricTable::global();
    [[maybe_unused]] const obs::TraceSite site =
        collector.site("bench", "obs.span");
    [[maybe_unused]] const obs::CounterHandle counter =
        hot.counter("bench.obs.counter");
    [[maybe_unused]] const obs::HistogramHandle histogram =
        hot.histogram("bench.obs.histogram");

    rows.push_back({"span_record", mode,
                    nsPerOp(iters, [&]([[maybe_unused]] std::uint64_t i) {
                        MINDFUL_HOT_SPAN(span, site);
                        span.setArg(i);
                    })});
    rows.push_back({"counter_add", mode,
                    nsPerOp(iters, [&](std::uint64_t) {
                        MINDFUL_HOT_COUNT(counter, 1);
                    })});
    rows.push_back({"histogram_record", mode,
                    nsPerOp(iters, [&]([[maybe_unused]] std::uint64_t i) {
                        MINDFUL_HOT_RECORD(
                            histogram,
                            0.1 + 0.5 * static_cast<double>(i & 1023));
                    })});
}

/** Tiny ring + paused drain: every slot beyond capacity must drop. */
OverflowResult
measureOverflow(std::uint64_t events)
{
    auto &collector = obs::TraceCollector::global();
    [[maybe_unused]] const obs::TraceSite site =
        collector.site("bench", "obs.overflow");
    collector.setRingCapacity(64);
    collector.start(nullptr);
    collector.setDrainPaused(true);
    std::thread producer([&] {
        collector.registerCurrentThread();
        for (std::uint64_t i = 0; i < events; ++i) {
            MINDFUL_HOT_SPAN(span, site);
            span.setArg(i);
        }
    });
    producer.join(); // producers quiesce before stop: totals are exact
    collector.setDrainPaused(false);
    obs::CollectorTotals totals = collector.stop();
    collector.setRingCapacity(obs::kDefaultRingSlots);

    OverflowResult result;
    result.events = events;
    result.emitted = totals.emitted;
    result.dropped = totals.dropped;
    return result;
}

void
writeJson(const std::string &path, bool compiled_out,
          const std::vector<Row> &rows, const OverflowResult &overflow,
          bool accounting_ok)
{
    std::ofstream os(path);
    if (!os)
        MINDFUL_FATAL("cannot open JSON output ", path);
    os << "{\n  \"manifest\": ";
    obs::RunManifest::current().writeJsonObject(os);
    os << ",\n  \"compiled_out\": " << (compiled_out ? "true" : "false");
    os << ",\n  \"watermark_ns\": " << kWatermarkNs;
    os << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        os << "    {\"op\": ";
        obs::writeJsonEscaped(os, rows[i].op);
        os << ", \"mode\": ";
        obs::writeJsonEscaped(os, rows[i].mode);
        char buf[64];
        std::snprintf(buf, sizeof(buf), ", \"ns_per_event\": %.2f}",
                      rows[i].nsPerEvent);
        os << buf << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"overflow\": {\"events\": " << overflow.events
       << ", \"emitted\": " << overflow.emitted
       << ", \"dropped\": " << overflow.dropped << ", \"drop_rate\": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", overflow.dropRate());
    os << buf << ", \"exact\": " << (accounting_ok ? "true" : "false")
       << "}\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsGuard _obs(argc, argv);
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--json") {
            if (i + 1 >= argc)
                MINDFUL_FATAL("--json requires an argument");
            json_path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        }
    }

#ifdef MINDFUL_OBS_DISABLED
    const bool compiled_out = true;
    const char *enabled_mode = "compiled_out";
    const char *disabled_mode = "compiled_out_gated";
#else
    const bool compiled_out = false;
    const char *enabled_mode = "enabled";
    const char *disabled_mode = "disabled";
#endif
    const std::uint64_t iters = quick ? 200'000 : 2'000'000;

    auto &collector = obs::TraceCollector::global();
    auto &registry = obs::MetricRegistry::global();
    collector.registerCurrentThread();

    std::vector<Row> rows;

    // Enabled state: registry on, collector streaming into a
    // count-only sink (no formatting cost in the producer, which is
    // exactly the hot-path contract being measured).
    registry.setEnabled(true);
    collector.start(nullptr);
    measureOps(enabled_mode, iters, rows);
    collector.stop();

    // Disabled state: the record sites stay compiled in; each should
    // cost one or two relaxed loads.
    registry.setEnabled(false);
    measureOps(disabled_mode, iters, rows);
    registry.setEnabled(true);

    OverflowResult overflow = measureOverflow(quick ? 10'000 : 100'000);
#ifdef MINDFUL_OBS_DISABLED
    // Compiled out, the producer loop records nothing at all: the
    // correct accounting is zero emitted AND zero dropped.
    const bool accounting_ok =
        overflow.emitted == 0 && overflow.dropped == 0;
#else
    const bool accounting_ok = overflow.exact();
#endif

    Table table("obs_overhead");
    table.setHeader({"op", "mode", "ns_per_event"});
    for (const auto &row : rows)
        table.addRow({row.op, row.mode,
                      Table::formatNumber(row.nsPerEvent, 4)});
    bench::emit(table, bench::csvOnly(argc, argv));
    std::printf("overflow: events=%llu emitted=%llu dropped=%llu "
                "drop_rate=%.4f exact=%s\n",
                static_cast<unsigned long long>(overflow.events),
                static_cast<unsigned long long>(overflow.emitted),
                static_cast<unsigned long long>(overflow.dropped),
                overflow.dropRate(), accounting_ok ? "yes" : "no");
    for (const auto &row : rows) {
        if (row.mode == std::string("enabled") &&
            row.nsPerEvent > kWatermarkNs) {
            std::printf("WATERMARK: %s %.1f ns/event exceeds %.0f ns "
                        "(report-only)\n",
                        row.op.c_str(), row.nsPerEvent, kWatermarkNs);
        }
    }

    if (!json_path.empty()) {
        writeJson(json_path, compiled_out, rows, overflow, accounting_ok);
        MINDFUL_INFORM("wrote ", json_path);
    }

    // Conservation is a hard failure, not report-only.
    if (!accounting_ok)
        MINDFUL_FATAL("overflow accounting mismatch: ",
                      overflow.emitted, " + ", overflow.dropped,
                      " != ", overflow.events);
    return 0;
}
