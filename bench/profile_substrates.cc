/**
 * @file
 * Observability harness: drives the executable substrates (Monte-Carlo
 * QAM channel, accelerator simulator, DNN forward, closed-loop study,
 * experiment runners) with span tracing and metric recording, and
 * quantifies the instrumentation's own cost with an A/B measurement.
 *
 *   profile_substrates --trace-out trace.json --metrics-out metrics.csv
 *
 * produces a Chrome-trace-loadable JSON (open in Perfetto or
 * chrome://tracing) with nested spans from the comm, accel, dnn, and
 * core subsystems, and a CSV snapshot of every registered metric.
 *
 * The A/B phases run the identical workload twice: first with span
 * tracing runtime-disabled — the same fast path a MINDFUL_OBS_DISABLED
 * build compiles to, one relaxed atomic load per would-be span — then
 * with tracing enabled. The reported overhead percentage is the
 * harness's own regression gate: instrumented hot loops must stay
 * within a few percent of the disabled baseline, which they do because
 * all recording happens at call granularity, never per sample.
 */

#include <chrono>
#include <iostream>

#include "accel/simulator.hh"
#include "base/decibel.hh"
#include "base/random.hh"
#include "base/table.hh"
#include "bench_util.hh"
#include "comm/channel_sim.hh"
#include "core/closed_loop.hh"
#include "core/experiments.hh"
#include "core/soc_catalog.hh"
#include "dnn/models.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace {

using namespace mindful;

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Monte-Carlo QAM + OOK sweep: the comm hot loop. */
void
runCommWorkload()
{
    MINDFUL_TRACE_SCOPE("bench", "profile.comm");
    comm::AwgnChannelSimulator qam(4);
    for (double ebn0_db : {4.0, 8.0, 12.0})
        qam.measureBer(fromDecibels(ebn0_db), 100000);
    comm::OokChannelSimulator ook;
    for (double ebn0_db : {6.0, 10.0})
        ook.measureBer(fromDecibels(ebn0_db), 200000);
}

/** Accelerator simulator + DNN forward: the accel/dnn hot loop. */
void
runAccelWorkload()
{
    MINDFUL_TRACE_SCOPE("bench", "profile.accel");
    auto net = dnn::buildSpeechMlp(256);
    Rng rng(11);
    net.initializeWeights(rng);
    dnn::Tensor input(net.inputShape());
    accel::AcceleratorSimulator sim({64, accel::nangate45()});
    for (int i = 0; i < 6; ++i) {
        auto result = sim.run(net, input);
        // Cross-check against the functional reference (also exercises
        // the dnn.network.forward span).
        auto reference = net.forward(input);
        if (result.cycles == 0 ||
            reference.size() != result.output.size())
            MINDFUL_PANIC("accelerator/reference disagreement");
    }
}

/** Closed-loop evaluation + an experiment runner: the core paths. */
void
runCoreWorkload()
{
    MINDFUL_TRACE_SCOPE("bench", "profile.core");
    core::ClosedLoopStudy study(
        core::ImplantModel(core::socById(1)),
        core::experiments::speechModelBuilder(
            core::experiments::SpeechModel::Mlp));
    for (std::uint64_t n : {512, 1024, 2048})
        study.evaluate(n);
    core::experiments::fig9Rows();
}

double
timedWorkload()
{
    double start = nowSeconds();
    runCommWorkload();
    runAccelWorkload();
    runCoreWorkload();
    return nowSeconds() - start;
}

} // namespace

int
main(int argc, char **argv)
{
    bool csv = bench::csvOnly(argc, argv);
    auto obs = bench::parseObsOptions(argc, argv);
    auto &session = obs::TraceSession::global();
    const bool want_trace = !obs.traceOut.empty();

    // --- Phase A: baseline, span tracing disabled. -------------------
    session.setEnabled(false);
    timedWorkload(); // warm caches so A and B see the same machine
    double baseline = timedWorkload();

    // --- Phase B: instrumented, spans recorded. ----------------------
    session.clear();
    session.setEnabled(true);
    double instrumented = timedWorkload();
    session.setEnabled(want_trace);
    if (!want_trace)
        session.clear();

    double overhead_pct =
        baseline > 0.0 ? (instrumented - baseline) / baseline * 100.0
                       : 0.0;
    MINDFUL_METRIC_GAUGE("bench.profile.baseline_s", baseline);
    MINDFUL_METRIC_GAUGE("bench.profile.instrumented_s", instrumented);
    MINDFUL_METRIC_GAUGE("bench.profile.overhead_pct", overhead_pct);

    Table ab("Instrumentation A/B: runtime-disabled (the "
             "MINDFUL_OBS_DISABLED fast path) vs tracing enabled");
    ab.setHeader({"phase", "wall time (ms)", "trace events"});
    ab.addRow({"disabled", Table::formatNumber(baseline * 1e3, 2), "0"});
    ab.addRow({"enabled", Table::formatNumber(instrumented * 1e3, 2),
               std::to_string(session.eventCount())});
    bench::emit(ab, csv);

    Table verdict("Overhead");
    verdict.setHeader({"overhead (%)", "within 5% gate"});
    verdict.addRow({Table::formatNumber(overhead_pct, 2),
                    overhead_pct < 5.0 ? "yes" : "NO"});
    bench::emit(verdict, csv);

    if (!csv) {
        obs::MetricRegistry::global().snapshotTable().print(std::cout);
        std::cout << '\n';
    }

    bench::finalizeObs(obs);
    return 0;
}
