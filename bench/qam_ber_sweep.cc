/**
 * @file
 * Monte-Carlo BER vs Eb/N0 sweep for the Gray-QAM and OOK channel
 * simulators — the executable ground truth behind the Fig. 7
 * feasibility study, and the showcase for the deterministic parallel
 * Monte-Carlo machinery: output is byte-identical for any --threads
 * value, so `qam_ber_sweep --csv --threads 8` is a drop-in faster
 * spelling of `--threads 1` (docs/parallelism.md).
 *
 * Usage: qam_ber_sweep [--csv] [--threads N] [--symbols N]
 */

#include <cstdlib>
#include <string>

#include "base/decibel.hh"
#include "bench_util.hh"
#include "comm/channel_sim.hh"
#include "comm/modulation.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;

    bool csv = bench::csvOnly(argc, argv);
    std::uint64_t symbols = 200000;
    auto parse_symbols = [](const std::string &text) {
        std::optional<std::uint64_t> value = parseUnsigned(text);
        if (!value || *value == 0)
            MINDFUL_FATAL("--symbols requires a positive integer, "
                          "got '", text, "'");
        return *value;
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--symbols" && i + 1 < argc)
            symbols = parse_symbols(argv[++i]);
        else if (arg.rfind("--symbols=", 0) == 0)
            symbols = parse_symbols(arg.substr(10));
    }

    Table table("Monte-Carlo BER vs Eb/N0 (" + std::to_string(symbols) +
                " symbols per point)");
    table.setHeader({"ebn0_db", "qam4_ber", "qam16_ber", "qam64_ber",
                     "ook_ber", "ook_analytic"});

    comm::AwgnChannelSimulator qam4(2);
    comm::AwgnChannelSimulator qam16(4);
    comm::AwgnChannelSimulator qam64(6);
    comm::OokChannelSimulator ook;
    for (double ebn0_db = 0.0; ebn0_db <= 14.0; ebn0_db += 2.0) {
        const double ebn0 = fromDecibels(ebn0_db);
        table.addRow({
            Table::formatNumber(ebn0_db, 1),
            Table::formatNumber(qam4.measureBer(ebn0, symbols).ber(), 6),
            Table::formatNumber(qam16.measureBer(ebn0, symbols).ber(), 6),
            Table::formatNumber(qam64.measureBer(ebn0, symbols).ber(), 6),
            Table::formatNumber(ook.measureBer(ebn0, symbols).ber(), 6),
            Table::formatNumber(comm::ookBitErrorRate(ebn0), 6),
        });
    }
    bench::emit(table, csv);
    return 0;
}
