/**
 * @file
 * Throughput/latency harness for the mindful_serve query engine.
 *
 * Builds a deterministic mixed batch of design-space queries (every
 * workload class, SoCs 1-8, several channel counts and knob settings)
 * and measures:
 *
 *  - batch throughput (queries/sec) via QueryEngine::evaluateBatch,
 *    cold (empty memo cache) and warm (fully populated), across a
 *    1/2/8-thread sweep;
 *  - per-query latency percentiles (p50/p99/p99.9) from a
 *    LogHistogram over individually timed evaluate() calls, again
 *    cold and warm;
 *  - cache hit/miss/drop counter deltas for both passes.
 *
 * Outputs:
 *  - human-readable summary on stdout (default);
 *  - `--json FILE`: manifest-stamped BENCH_serve.json (CI artifact);
 *  - `--csv`: *deterministic values only* — the batch result digest
 *    and per-workload feasible counts for a cold and a warm pass,
 *    byte-identical for any --threads value and cache state
 *    (the determinism-contract ctest diffs exactly this);
 *  - `--quick`: CI smoke mode (smaller batch, no thread sweep);
 *  - `--queries N`: batch size override (default 10000).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "bench_util.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "serve/query_engine.hh"

namespace {

using namespace mindful;

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Deterministic mixed batch: round-robin over the wireless SoCs,
 * all six workload classes, channel counts 1024..8192, and the
 * node/partitioning/efficiency knobs. Many entries canonicalize onto
 * the same memo key (as production request streams do), so a cold
 * pass exercises both the evaluation and the intra-batch hit path.
 */
std::vector<serve::DesignQuery>
buildBatch(std::size_t count)
{
    using serve::WorkloadClass;
    static constexpr WorkloadClass kClasses[] = {
        WorkloadClass::RawStreaming,   WorkloadClass::QamStreaming,
        WorkloadClass::EventStreaming, WorkloadClass::DnnMlp,
        WorkloadClass::DnnCnn,         WorkloadClass::Kalman,
    };

    std::vector<serve::DesignQuery> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        serve::DesignQuery query;
        query.socId = static_cast<int>(1 + i % 8);
        query.workload = kClasses[(i / 8) % 6];
        query.channels = 1024 * (1 + (i / 48) % 8);
        query.node = (i % 96 < 48) ? serve::ProcessNode::Node45nm
                                   : serve::ProcessNode::Node12nm;
        query.partitioned = (i / 384) % 2 == 1;
        query.qamEfficiency = (i / 768) % 2 == 1 ? 0.5 : 0.25;
        query.commStrategy = (i / 1536) % 2 == 1
                                 ? core::CommScalingStrategy::Naive
                                 : core::CommScalingStrategy::HighMargin;
        batch.push_back(query);
    }
    return batch;
}

/** Order-independent-free digest: FNV over the in-order digests. */
std::uint64_t
batchDigest(const std::vector<serve::QueryResult> &results)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const serve::QueryResult &result : results) {
        std::uint64_t digest = serve::resultDigest(result);
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (digest >> (byte * 8)) & 0xffu;
            hash *= 1099511628211ull;
        }
    }
    return hash;
}

struct PassStats
{
    double wallMs = 0.0;
    double qps = 0.0;
    std::uint64_t digest = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t feasible = 0;
};

PassStats
runBatchPass(serve::QueryEngine &engine,
             const std::vector<serve::DesignQuery> &batch)
{
    PassStats stats;
    const std::uint64_t hits0 = engine.cacheHitsTotal();
    const std::uint64_t misses0 = engine.cacheMissesTotal();
    const double start = nowMs();
    const std::vector<serve::QueryResult> results =
        engine.evaluateBatch(batch);
    stats.wallMs = nowMs() - start;
    stats.qps = stats.wallMs > 0.0
                    ? 1e3 * static_cast<double>(batch.size()) /
                          stats.wallMs
                    : 0.0;
    stats.digest = batchDigest(results);
    stats.hits = engine.cacheHitsTotal() - hits0;
    stats.misses = engine.cacheMissesTotal() - misses0;
    for (const serve::QueryResult &result : results)
        stats.feasible += result.feasible ? 1 : 0;
    return stats;
}

struct LatencyStats
{
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double maxUs = 0.0;
};

LatencyStats
runLatencyPass(serve::QueryEngine &engine,
               const std::vector<serve::DesignQuery> &batch)
{
    // 0.01 us .. 10 s at ~4.6% relative error per bucket.
    LogHistogram hist(0.01, 1e7, 480);
    for (const serve::DesignQuery &query : batch) {
        const double start = nowMs();
        engine.evaluate(query);
        hist.add((nowMs() - start) * 1e3);
    }
    LatencyStats stats;
    stats.p50Us = hist.percentile(50.0);
    stats.p99Us = hist.percentile(99.0);
    stats.p999Us = hist.percentile(99.9);
    stats.maxUs = hist.max();
    return stats;
}

struct SweepPoint
{
    unsigned threads = 0;
    PassStats cold;
    PassStats warm;
};

void
writeJson(const std::string &path, bool quick, std::size_t queries,
          const PassStats &cold, const PassStats &warm,
          const LatencyStats &lat_cold, const LatencyStats &lat_warm,
          std::uint64_t drops, const std::vector<SweepPoint> &sweep)
{
    std::ofstream os(path);
    if (!os)
        MINDFUL_FATAL("cannot open JSON output ", path);
    char buf[768];
    os << "{\n  \"manifest\": ";
    obs::RunManifest::current().writeJsonObject(os);
    os << ",\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"quick\": %s,\n"
        "  \"threads\": %u,\n"
        "  \"queries\": %zu,\n"
        "  \"cache_drops\": %llu,\n"
        "  \"cold\": {\"wall_ms\": %.3f, \"qps\": %.1f,"
        " \"hits\": %llu, \"misses\": %llu, \"feasible\": %llu,"
        " \"digest\": \"%016llx\"},\n"
        "  \"warm\": {\"wall_ms\": %.3f, \"qps\": %.1f,"
        " \"hits\": %llu, \"misses\": %llu, \"feasible\": %llu,"
        " \"digest\": \"%016llx\"},\n"
        "  \"latency_us\": {\n"
        "    \"cold\": {\"p50\": %.3f, \"p99\": %.3f, \"p999\": %.3f,"
        " \"max\": %.3f},\n"
        "    \"warm\": {\"p50\": %.3f, \"p99\": %.3f, \"p999\": %.3f,"
        " \"max\": %.3f}\n  },\n",
        quick ? "true" : "false",
        exec::ThreadPool::global().threadCount(), queries,
        static_cast<unsigned long long>(drops), cold.wallMs, cold.qps,
        static_cast<unsigned long long>(cold.hits),
        static_cast<unsigned long long>(cold.misses),
        static_cast<unsigned long long>(cold.feasible),
        static_cast<unsigned long long>(cold.digest), warm.wallMs,
        warm.qps, static_cast<unsigned long long>(warm.hits),
        static_cast<unsigned long long>(warm.misses),
        static_cast<unsigned long long>(warm.feasible),
        static_cast<unsigned long long>(warm.digest), lat_cold.p50Us,
        lat_cold.p99Us, lat_cold.p999Us, lat_cold.maxUs, lat_warm.p50Us,
        lat_warm.p99Us, lat_warm.p999Us, lat_warm.maxUs);
    os << buf;
    os << "  \"thread_sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        std::snprintf(
            buf, sizeof(buf),
            "    {\"threads\": %u, \"cold_qps\": %.1f,"
            " \"warm_qps\": %.1f, \"digest\": \"%016llx\"}%s\n",
            sweep[i].threads, sweep[i].cold.qps, sweep[i].warm.qps,
            static_cast<unsigned long long>(sweep[i].cold.digest),
            i + 1 < sweep.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsGuard _obs(argc, argv);
    bool csv = bench::csvOnly(argc, argv);
    bool quick = false;
    std::string json_path;
    std::size_t queries = 10000;
    auto parse_queries = [](const std::string &text) {
        std::optional<std::uint64_t> value = parseUnsigned(text);
        if (!value || *value == 0)
            MINDFUL_FATAL("--queries requires a positive integer, "
                          "got '", text, "'");
        return static_cast<std::size_t>(*value);
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg == "--queries" && i + 1 < argc) {
            queries = parse_queries(argv[++i]);
        } else if (arg.rfind("--queries=", 0) == 0) {
            queries = parse_queries(arg.substr(10));
        }
    }
    if (quick && queries == 10000)
        queries = 2000;

    const std::vector<serve::DesignQuery> batch = buildBatch(queries);

    // --- Batch passes: cold (empty cache), then warm (same engine) ---
    serve::QueryEngine engine;
    const PassStats cold = runBatchPass(engine, batch);
    const PassStats warm = runBatchPass(engine, batch);
    const std::uint64_t drops = engine.cacheDropsTotal();

    if (csv) {
        // Deterministic values only: byte-identical for any --threads
        // and for any cache state (the warm row re-reads what the
        // cold pass published; equal digests are the contract).
        std::printf("pass,queries,feasible,digest\n");
        std::printf("cold,%zu,%llu,%016llx\n", queries,
                    static_cast<unsigned long long>(cold.feasible),
                    static_cast<unsigned long long>(cold.digest));
        std::printf("warm,%zu,%llu,%016llx\n", queries,
                    static_cast<unsigned long long>(warm.feasible),
                    static_cast<unsigned long long>(warm.digest));
        return 0;
    }

    // --- Per-query latency distributions -----------------------------
    serve::QueryEngine lat_engine;
    const LatencyStats lat_cold = runLatencyPass(lat_engine, batch);
    const LatencyStats lat_warm = runLatencyPass(lat_engine, batch);

    // --- Thread-scaling sweep (fresh engine per point = cold cache) --
    std::vector<SweepPoint> sweep;
    if (!quick) {
        const unsigned initial = exec::ThreadPool::global().threadCount();
        for (unsigned threads : {1u, 2u, 8u}) {
            exec::ThreadPool::setGlobalThreadCount(threads);
            SweepPoint point;
            point.threads = threads;
            serve::QueryEngine sweep_engine;
            point.cold = runBatchPass(sweep_engine, batch);
            point.warm = runBatchPass(sweep_engine, batch);
            sweep.push_back(point);
        }
        exec::ThreadPool::setGlobalThreadCount(initial);
    }

    std::printf("serve_throughput: %zu mixed queries, %u threads\n",
                queries, exec::ThreadPool::global().threadCount());
    std::printf("%-6s %10s %12s %10s %10s %10s\n", "pass", "wall_ms",
                "qps", "hits", "misses", "feasible");
    std::printf("%-6s %10.2f %12.0f %10llu %10llu %10llu\n", "cold",
                cold.wallMs, cold.qps,
                static_cast<unsigned long long>(cold.hits),
                static_cast<unsigned long long>(cold.misses),
                static_cast<unsigned long long>(cold.feasible));
    std::printf("%-6s %10.2f %12.0f %10llu %10llu %10llu\n", "warm",
                warm.wallMs, warm.qps,
                static_cast<unsigned long long>(warm.hits),
                static_cast<unsigned long long>(warm.misses),
                static_cast<unsigned long long>(warm.feasible));
    std::printf("latency cold: p50 %.2f us, p99 %.2f us, "
                "p99.9 %.2f us, max %.2f us\n",
                lat_cold.p50Us, lat_cold.p99Us, lat_cold.p999Us,
                lat_cold.maxUs);
    std::printf("latency warm: p50 %.2f us, p99 %.2f us, "
                "p99.9 %.2f us, max %.2f us\n",
                lat_warm.p50Us, lat_warm.p99Us, lat_warm.p999Us,
                lat_warm.maxUs);
    for (const SweepPoint &point : sweep)
        std::printf("sweep t=%u: cold %.0f qps, warm %.0f qps\n",
                    point.threads, point.cold.qps, point.warm.qps);
    if (cold.digest != warm.digest)
        MINDFUL_FATAL("cache hit returned different bytes: cold ",
                      cold.digest, " vs warm ", warm.digest);
    for (const SweepPoint &point : sweep) {
        if (point.cold.digest != cold.digest ||
            point.warm.digest != cold.digest)
            MINDFUL_FATAL("thread sweep broke determinism at t=",
                          point.threads);
    }

    if (!json_path.empty()) {
        writeJson(json_path, quick, queries, cold, warm, lat_cold,
                  lat_warm, drops, sweep);
        MINDFUL_INFORM("wrote ", json_path);
    }
    return 0;
}
