/**
 * @file
 * Regenerates Table 1: the published implanted-SoC design summary.
 */

#include "bench_util.hh"
#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    mindful::bench::ObsGuard _obs(argc, argv);
    using namespace mindful;
    bench::emit(core::experiments::table1(), bench::csvOnly(argc, argv));
    return 0;
}
