/**
 * @file
 * Design-space exploration for a *custom* implant.
 *
 * The paper's framework is meant for architects designing the next
 * SoC, not just re-analyzing published ones. This example defines a
 * hypothetical next-generation implant from scratch and sweeps its
 * design space:
 *
 *  - dataflow choice: raw streaming (naive / high-margin OOK), QAM
 *    streaming at several implementation efficiencies, or on-implant
 *    decoding (MLP / DN-CNN);
 *  - channel count from 1024 to 16384;
 *
 * and prints, for each strategy, the largest safe channel count and
 * the binding constraint — a concrete answer to "which architecture
 * should my implant use at my target scale?".
 *
 * Build & run:  ./build/examples/design_space_explorer
 */

#include <iostream>

#include "base/table.hh"
#include "core/comm_centric.hh"
#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/event_centric.hh"
#include "core/qam_study.hh"

int
main()
{
    using namespace mindful;
    using namespace mindful::core;

    // A hypothetical 2048-channel ECoG implant: 20 x 20 mm die,
    // 30 mW measured at 2048 channels, 10 kHz sampling, 12-bit ADCs.
    SocDesign custom;
    custom.id = 100;
    custom.name = "NextGen-2048";
    custom.reference = "hypothetical";
    custom.reportedChannels = 2048;
    custom.reportedArea = Area::squareMillimetres(400.0);
    custom.reportedPower = Power::milliwatts(30.0);
    custom.samplingFrequency = Frequency::kilohertz(10.0);
    custom.sampleBits = 12;
    custom.wireless = true;
    custom.sensingPowerFraction = 0.5;
    custom.sensingAreaFraction = 0.45;

    ImplantModel implant(custom);
    std::cout << "Custom design normalized to 1024 channels: "
              << implant.referenceArea() << ", "
              << implant.referencePower() << " ("
              << implant.referenceDataRate() << " uplink)\n\n";

    Table table("Architecture frontier for " + custom.name);
    table.setHeader({"architecture", "max safe channels",
                     "binding constraint"});

    // Raw streaming, naive scaling: never crosses the budget but
    // wastes area (volumetric efficiency frozen) — report that.
    CommCentricModel naive(implant, CommScalingStrategy::Naive);
    table.addRow({"OOK streaming, naive tiling", "area-bound",
                  "sensing area fraction stuck at " +
                      Table::formatNumber(
                          naive.project(1024).sensingAreaFraction, 2)});

    CommCentricModel margin(implant, CommScalingStrategy::HighMargin);
    constexpr std::uint64_t kScanCap = 65536;
    std::uint64_t margin_max = margin.maxSafeChannels(kScanCap);
    table.addRow({"OOK streaming, high-margin",
                  margin_max >= kScanCap ? "> " + std::to_string(kScanCap)
                                         : std::to_string(margin_max),
                  "transceiver power vs budget"});

    EventCentricModel events(implant);
    std::uint64_t event_max = events.maxSafeChannels(kScanCap);
    table.addRow({"spike-event streaming",
                  event_max >= kScanCap ? "> " + std::to_string(kScanCap)
                                        : std::to_string(event_max),
                  "sensing power density"});

    QamStudy qam(implant);
    for (double eta : {0.15, 0.30, 1.0}) {
        table.addRow(
            {"QAM streaming @ " +
                 Table::formatNumber(eta * 100.0, 0) + "% efficiency",
             std::to_string(qam.maxChannels(eta)),
             "QAM Eb/N0 + link budget"});
    }

    for (auto model : {experiments::SpeechModel::Mlp,
                       experiments::SpeechModel::DnCnn}) {
        CompCentricModel comp(implant,
                              experiments::speechModelBuilder(model));
        table.addRow({"on-implant " + experiments::toString(model),
                      std::to_string(comp.maxChannels()),
                      "MAC lower bound vs budget"});
        table.addRow({"on-implant " + experiments::toString(model) +
                          " + partitioning",
                      std::to_string(comp.maxChannels(true)),
                      "cut limited to " +
                          std::to_string(comp.partitionCutLimit()) +
                          " values/inference"});
    }

    table.print(std::cout);

    // Drill into the computation-centric option: what fraction of
    // the decoder survives at aggressive scales (Sec. 6.2)?
    std::cout << '\n';
    OptimizationStudy study(
        implant, experiments::speechModelBuilder(
                     experiments::SpeechModel::Mlp));
    Table opt("Feasible MLP model size after cumulative optimizations");
    opt.setHeader({"n", "ChDr", "La+ChDr", "La+ChDr+Tech",
                   "La+ChDr+Tech+Dense"});
    for (std::uint64_t n : {4096u, 8192u, 16384u}) {
        std::vector<std::string> row{std::to_string(n)};
        for (const auto &steps :
             {OptimizationSteps::chDr(), OptimizationSteps::laChDr(),
              OptimizationSteps::laChDrTech(),
              OptimizationSteps::laChDrTechDense()}) {
            auto outcome = study.evaluate(n, steps);
            row.push_back(outcome.feasible
                              ? Table::formatNumber(
                                    outcome.modelSizeFraction * 100.0,
                                    1) + "%"
                              : "infeasible");
        }
        opt.addRow(row);
    }
    opt.print(std::cout);

    return 0;
}
