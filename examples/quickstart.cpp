/**
 * @file
 * Quickstart: evaluate one implantable BCI SoC with MINDFUL.
 *
 * This walks the core API end to end in a few dozen lines:
 *  1. describe a design (or pull one from the Table 1 catalog);
 *  2. scale it to the 1024-channel standard (Sec. 4.1);
 *  3. check it against the 40 mW/cm^2 power budget (Sec. 3.2);
 *  4. project it beyond 1024 channels under the high-margin
 *     communication-centric hypothesis (Sec. 5.1);
 *  5. ask whether it could host an on-implant speech-decoder DNN
 *     (Sec. 5.3).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/comm_centric.hh"
#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/soc_catalog.hh"

int
main()
{
    using namespace mindful;
    using namespace mindful::core;

    // 1. Start from a published design: BISC (Table 1, SoC 1), a
    //    1024-channel subdural implant with wireless communication.
    const SocDesign &bisc = socById(1);
    std::cout << "Design: " << bisc.name << " (" << bisc.reference
              << ")\n  reported: " << bisc.reportedChannels
              << " channels, " << bisc.reportedArea << ", "
              << bisc.reportedPower << " @ "
              << bisc.samplingFrequency << "\n";

    // 2. Scale to the 1024-channel standard (identity for BISC) and
    //    wrap it in the analytical implant model.
    ImplantModel implant(bisc);
    std::cout << "  sensing throughput (Eq. 6): "
              << implant.referenceDataRate() << "\n";

    // 3. Thermal safety check (Eq. 3).
    thermal::PowerBudget budget;
    auto verdict =
        budget.check(implant.referencePower(), implant.referenceArea());
    std::cout << "  power budget: " << budget.budget(implant.referenceArea())
              << ", utilization "
              << Table::formatNumber(verdict.budgetUtilization * 100.0, 1)
              << "% -> " << (verdict.safe ? "SAFE" : "UNSAFE") << "\n";

    // 4. How far can raw-data streaming scale? (Sec. 5.1)
    CommCentricModel streaming(implant, CommScalingStrategy::HighMargin);
    std::cout << "\nHigh-margin raw streaming:\n";
    for (std::uint64_t n : {1024u, 2048u, 4096u, 8192u}) {
        auto point = streaming.project(n);
        std::cout << "  n = " << n << ": Psoc " << point.totalPower
                  << " / budget " << point.powerBudget << " ("
                  << Table::formatNumber(point.budgetUtilization * 100, 0)
                  << "%" << (point.safe() ? "" : ", OVER BUDGET")
                  << ")\n";
    }
    std::cout << "  last safe channel count: "
              << streaming.maxSafeChannels() << "\n";

    // 5. Could BISC host the speech-decoder MLP instead? (Sec. 5.3)
    CompCentricModel decoder(
        implant,
        experiments::speechModelBuilder(experiments::SpeechModel::Mlp));
    auto at_1024 = decoder.evaluate(1024);
    std::cout << "\nOn-implant MLP decoder @ 1024 channels:\n"
              << "  accelerator: " << at_1024.bound.macUnits
              << " MAC units (" << at_1024.computePower << ")\n"
              << "  total " << at_1024.totalPower << " / budget "
              << at_1024.powerBudget << " -> "
              << (at_1024.feasible ? "feasible" : "infeasible") << "\n"
              << "  max feasible channels: " << decoder.maxChannels()
              << " (partitioned: " << decoder.maxChannels(true) << ")\n";

    return 0;
}
