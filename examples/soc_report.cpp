/**
 * @file
 * Generate full markdown design reports.
 *
 * Usage:
 *   soc_report                     # report for every Table 1 design id
 *   soc_report 3                   # report for Table 1 SoC 3
 *   soc_report path/to/catalog.cfg # reports for a custom catalog file
 *
 * Demonstrates the two production entry points a design team uses:
 * the catalog file format (core/catalog_io.hh) for describing their
 * own chips, and the report generator (core/report.hh) that runs
 * every MINDFUL study against a design and renders the verdicts.
 *
 * Try it with the shipped sample: soc_report configs/custom_socs.cfg
 */

#include <iostream>
#include <string>

#include "base/parse.hh"
#include "core/catalog_io.hh"
#include "core/report.hh"
#include "core/soc_catalog.hh"

int
main(int argc, char **argv)
{
    using namespace mindful::core;

    std::vector<SocDesign> designs;
    std::optional<std::uint64_t> id;
    if (argc >= 2)
        id = mindful::parseUnsigned(argv[1]);
    if (argc < 2) {
        designs = socCatalog();
    } else if (id) {
        designs.push_back(socById(static_cast<int>(*id)));
    } else {
        designs = loadCatalog(argv[1]);
        std::cout << "Loaded " << designs.size() << " design(s) from "
                  << argv[1] << "\n\n";
    }

    for (std::size_t i = 0; i < designs.size(); ++i) {
        if (i)
            std::cout << "\n\n";
        std::cout << designReport(designs[i]);
    }
    return 0;
}
