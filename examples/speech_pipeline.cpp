/**
 * @file
 * End-to-end implant simulation: both Sec. 3.1 dataflows executed on
 * real (synthetic) neural data.
 *
 * Communication-centric path:
 *   cortex -> ADC -> packetizer -> wireless uplink (raw samples)
 *
 * Computation-centric path:
 *   cortex -> window -> speech-MLP on the PE-array simulator ->
 *   packetizer -> wireless uplink (40 labels per inference)
 *
 * The example measures what the analytical framework predicts: the
 * computation-centric path trades a little MAC power for a much
 * smaller uplink (~6x at this small 64-channel scale; the gap widens
 * linearly with channel count since the label payload is fixed). A
 * Kalman decoder (the paper's traditional baseline) runs alongside
 * to show the same data stream supports classic intent decoding.
 *
 * Build & run:  ./build/examples/speech_pipeline
 */

#include <iostream>

#include "accel/lower_bound.hh"
#include "accel/simulator.hh"
#include "base/matrix.hh"
#include "base/table.hh"
#include "comm/packetizer.hh"
#include "core/soc_catalog.hh"
#include "core/scaling.hh"
#include "dnn/models.hh"
#include "ni/synthetic_cortex.hh"
#include "signal/filters.hh"
#include "signal/kalman.hh"
#include "signal/metrics.hh"

int
main()
{
    using namespace mindful;

    // --- The implant: a 64-channel slice of a BISC-like SoC. ------
    constexpr std::uint64_t kChannels = 64;
    const Frequency kFs = Frequency::kilohertz(2.0); // application rate
    core::ImplantModel implant(core::socById(1));

    ni::SyntheticCortexConfig cortex_config;
    cortex_config.channels = kChannels;
    cortex_config.samplingFrequency = Frequency::kilohertz(8.0);
    cortex_config.activeFraction = 0.7;
    cortex_config.seed = 2026;
    ni::SyntheticCortex cortex(cortex_config);

    std::cout << "Generating 8 s of cortical activity on " << kChannels
              << " channels...\n";
    auto recording = cortex.generate(64000);

    // --- Path A: communication-centric (stream everything). -------
    ni::AdcModel adc(10, 1000.0, cortex_config.samplingFrequency);
    comm::Packetizer packetizer({10});

    std::uint64_t raw_bits = 0;
    std::vector<double> frame(kChannels);
    for (std::size_t t = 0; t < recording.steps; ++t) {
        for (std::uint64_t ch = 0; ch < kChannels; ++ch)
            frame[ch] = recording.sample(ch, t);
        raw_bits +=
            packetizer
                .pack(static_cast<std::uint16_t>(t & 0xFFFF),
                      adc.quantize(frame))
                .size() *
            8;
    }
    double duration = static_cast<double>(recording.steps) /
                      cortex_config.samplingFrequency.inHertz();
    DataRate raw_rate = DataRate::bitsPerSecond(
        static_cast<double>(raw_bits) / duration);
    Power raw_tx = raw_rate * implant.commEnergyPerBit();

    // --- Path B: computation-centric (decode on the implant). -----
    auto network = dnn::buildSpeechMlp(kChannels);
    Rng rng(7);
    network.initializeWeights(rng);

    // Size the PE array for the 2 kHz application deadline (Eq. 11).
    accel::LowerBoundSolver solver(accel::nangate45());
    auto bound = solver.solveBest(network.census(), period(kFs));
    if (!bound.feasible) {
        std::cerr << "accelerator cannot meet the deadline\n";
        return 1;
    }
    accel::AcceleratorSimulator sim({bound.macUnits, accel::nangate45()});

    const std::size_t window =
        dnn::elementCount(network.inputShape()) / kChannels;
    const std::size_t hop = static_cast<std::size_t>(
        cortex_config.samplingFrequency.inHertz() / kFs.inHertz());

    std::uint64_t decoded_bits = 0;
    std::uint64_t inferences = 0;
    Energy mac_energy = Energy::joules(0.0);
    Time worst_latency = Time::seconds(0.0);
    comm::Packetizer label_packetizer({10});

    dnn::Tensor input(network.inputShape());
    for (std::size_t start = 0;
         start + window * hop < recording.steps && inferences < 400;
         start += hop) {
        // Window: `window` decimated samples per channel, normalized
        // to the ADC full scale.
        for (std::uint64_t ch = 0; ch < kChannels; ++ch)
            for (std::size_t s = 0; s < window; ++s)
                input[ch * window + s] = static_cast<float>(
                    recording.sample(ch, start + s * hop) / 1000.0);

        auto result = sim.run(network, input);
        mac_energy += result.energy;
        if (result.latency > worst_latency)
            worst_latency = result.latency;

        // Quantize the 40 label probabilities to 10 bits and frame.
        std::vector<std::uint32_t> labels;
        labels.reserve(result.output.size());
        for (std::size_t i = 0; i < result.output.size(); ++i)
            labels.push_back(static_cast<std::uint32_t>(
                result.output[i] * 1023.0f));
        decoded_bits +=
            label_packetizer
                .pack(static_cast<std::uint16_t>(inferences), labels)
                .size() *
            8;
        ++inferences;
    }

    DataRate decoded_rate = DataRate::bitsPerSecond(
        static_cast<double>(decoded_bits) /
        (static_cast<double>(inferences) / kFs.inHertz()));
    Power decoded_tx = decoded_rate * implant.commEnergyPerBit();
    Power mac_power = mac_energy / Time::seconds(
        static_cast<double>(inferences) / kFs.inHertz());

    // --- Traditional baseline: Kalman intent decoding. -------------
    const std::size_t bin = 400; // 50 ms
    auto counts = recording.binnedCounts(bin);
    auto intent = recording.binnedIntent(bin);
    std::size_t bins = counts[0].size();
    std::size_t split = bins * 2 / 3;
    auto slice = [](const std::vector<std::vector<double>> &rows,
                    std::size_t from, std::size_t to) {
        Matrix m(rows.size(), to - from);
        for (std::size_t r = 0; r < rows.size(); ++r)
            for (std::size_t c = from; c < to; ++c)
                m(r, c - from) = rows[r][c];
        return m;
    };
    signal::KalmanDecoder kalman;
    kalman.train(slice(intent, 0, split), slice(counts, 0, split));
    double corr = signal::meanRowCorrelation(
        kalman.decode(slice(counts, split, bins)),
        slice(intent, split, bins));

    // --- Report. ----------------------------------------------------
    Table table("Dataflow comparison (" + std::to_string(kChannels) +
                " channels, measured on simulated hardware)");
    table.setHeader({"metric", "comm-centric", "comp-centric"});
    table.addRow({"uplink data rate",
                  Table::formatNumber(raw_rate.inMegabitsPerSecond(), 2) +
                      " Mbps",
                  Table::formatNumber(
                      decoded_rate.inMegabitsPerSecond(), 4) + " Mbps"});
    table.addRow({"transmit power",
                  Table::formatNumber(raw_tx.inMilliwatts(), 3) + " mW",
                  Table::formatNumber(decoded_tx.inMilliwatts(), 4) +
                      " mW"});
    table.addRow({"compute power", "~0 (packetize only)",
                  Table::formatNumber(mac_power.inMilliwatts(), 3) +
                      " mW (" + std::to_string(bound.macUnits) +
                      " MACs)"});
    table.addRow({"worst inference latency", "-",
                  Table::formatNumber(worst_latency.inMicroseconds(), 1) +
                      " us (deadline " +
                      Table::formatNumber(
                          period(kFs).inMicroseconds(), 0) + " us)"});
    table.print(std::cout);

    std::cout << "\nuplink reduction: "
              << Table::formatNumber(raw_rate / decoded_rate, 0)
              << "x fewer bits with on-implant decoding\n";
    std::cout << "Kalman baseline intent correlation (held-out): "
              << Table::formatNumber(corr, 2) << "\n";
    return 0;
}
