/**
 * @file
 * Thermal safety from first principles.
 *
 * The whole framework rests on one number: 40 mW/cm^2 keeps cortical
 * tissue within a 1-2 degC rise. This example re-derives that premise
 * with the Pennes bio-heat solver:
 *
 *  1. sweep areal power density and report the peak tissue rise;
 *  2. check every Table 1 design (scaled to 1024 channels) directly
 *     in the tissue simulation rather than via the budget rule;
 *  3. quantify the hotspot penalty tissue would pay if chip power
 *     reached it unspread — the penalty silicon's high thermal
 *     conductivity avoids (the paper's uniform-dissipation argument).
 *
 * Build & run:  ./build/examples/thermal_safety
 */

#include <iostream>

#include "base/table.hh"
#include "core/scaling.hh"
#include "core/soc_catalog.hh"
#include "thermal/bioheat.hh"
#include "thermal/safety.hh"

int
main()
{
    using namespace mindful;
    using namespace mindful::thermal;

    BioHeatConfig config;
    config.gridSpacing = Length::millimetres(0.4);
    config.domainWidth = Length::millimetres(30.0);
    config.domainDepth = Length::millimetres(15.0);
    BioHeatSolver solver({}, config);

    std::cout << "Tissue model: k = " << solver.tissue().conductivity
              << ", perfusion depth "
              << solver.tissue().penetrationDepth() << "\n\n";

    // 1. Density sweep on a BISC-sized (144 mm^2) implant.
    Table sweep("Peak tissue temperature rise vs power density "
                "(144 mm^2 implant)");
    sweep.setHeader({"density (mW/cm^2)", "total power (mW)",
                     "peak rise (degC)", "within 2 degC"});
    Area area = Area::squareMillimetres(144.0);
    for (double density : {10.0, 20.0, 40.0, 60.0, 80.0}) {
        Power power =
            PowerDensity::milliwattsPerSquareCentimetre(density) * area;
        auto result = solver.solve(power, area);
        sweep.addRow({Table::formatNumber(density, 0),
                      Table::formatNumber(power.inMilliwatts(), 1),
                      Table::formatNumber(result.peakRise.inCelsius(), 2),
                      result.peakRise.inCelsius() <= 2.0 ? "yes" : "NO"});
    }
    sweep.print(std::cout);
    std::cout << '\n';

    // 2. Every catalogued design, simulated in tissue.
    Table designs("Table 1 designs @ 1024 channels, simulated in tissue");
    designs.setHeader({"SoC", "power (mW)", "area (mm^2)",
                       "budget verdict", "tissue peak rise (degC)"});
    PowerBudget budget;
    for (const auto &soc : core::socCatalog()) {
        auto point = core::scaleDesign(soc, core::kStandardChannels);
        auto verdict = budget.check(point.power, point.area);
        auto tissue = solver.solve(point.power, point.area);
        designs.addRow(
            {soc.name, Table::formatNumber(point.power.inMilliwatts(), 2),
             Table::formatNumber(point.area.inSquareMillimetres(), 1),
             verdict.safe ? "safe" : "OVER",
             Table::formatNumber(tissue.peakRise.inCelsius(), 2)});
    }
    designs.print(std::cout);
    std::cout << '\n';

    // 3. Hypothetical unspread hotspot: what tissue would see if the
    //    die did not laterally conduct its own power gradients.
    Power p = PowerDensity::milliwattsPerSquareCentimetre(40.0) * area;
    auto uniform = solver.solve(p, area);
    auto hotspot = solver.solveProfile(p, area, {3.0, 1.5, 0.75, 0.4});
    std::cout << "Uniform 40 mW/cm^2:      peak rise "
              << Table::formatNumber(uniform.peakRise.inCelsius(), 2)
              << " degC\n"
              << "Centre-weighted profile: peak rise "
              << Table::formatNumber(hotspot.peakRise.inCelsius(), 2)
              << " degC ("
              << Table::formatNumber(
                     hotspot.peakRise / uniform.peakRise, 2)
              << "x)\n"
              << "-> tissue would pay a large hotspot penalty, but "
                 "silicon conducts ~300x better than brain tissue and "
                 "flattens on-chip gradients before they reach the "
                 "cortex - the basis of the paper's uniform-"
                 "dissipation assumption (Sec. 3.2).\n";
    return 0;
}
