#include "accel/lower_bound.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/special_math.hh"

namespace mindful::accel {

LowerBoundSolver::LowerBoundSolver(MacUnitParams mac) : _mac(std::move(mac))
{
    MINDFUL_ASSERT(_mac.macTime.inSeconds() > 0.0,
                   "MAC latency must be positive");
    MINDFUL_ASSERT(_mac.macPower.inWatts() > 0.0,
                   "MAC power must be positive");
}

Time
LowerBoundSolver::sharedPoolLatency(const std::vector<dnn::MacCensus> &census,
                                    std::uint64_t mac_units) const
{
    MINDFUL_ASSERT(mac_units > 0, "latency needs at least one MAC unit");
    double steps = 0.0;
    for (const auto &layer : census) {
        if (layer.empty())
            continue;
        steps += static_cast<double>(layer.macSeq) *
                 static_cast<double>(ceilDiv(layer.macOp, mac_units));
    }
    return Time::seconds(steps * _mac.macTime.inSeconds());
}

AcceleratorBound
LowerBoundSolver::solveSharedPool(const std::vector<dnn::MacCensus> &census,
                                  Time t) const
{
    MINDFUL_ASSERT(t.inSeconds() > 0.0, "deadline must be positive");

    AcceleratorBound bound;
    bound.discipline = Discipline::SharedPool;

    std::uint64_t cap = dnn::maxMacOp(census);
    if (cap == 0) {
        // A MAC-free network is trivially feasible with zero units.
        bound.feasible = true;
        bound.latency = Time::seconds(0.0);
        return bound;
    }

    // Latency is monotone non-increasing in the unit count, so the
    // smallest feasible count is found by binary search up to the
    // Eq. 12 cap (units beyond max #MAC_op are never exploitable).
    auto meets = [&](std::int64_t units) {
        return sharedPoolLatency(census,
                                 static_cast<std::uint64_t>(units)) <= t;
    };
    std::int64_t first = binarySearchFirstTrue(
        1, static_cast<std::int64_t>(cap), meets);
    if (first > static_cast<std::int64_t>(cap))
        return bound; // infeasible even with maximal parallelism

    bound.feasible = true;
    bound.macUnits = static_cast<std::uint64_t>(first);
    bound.power = _mac.macPower * static_cast<double>(bound.macUnits);
    bound.latency = sharedPoolLatency(census, bound.macUnits);
    return bound;
}

AcceleratorBound
LowerBoundSolver::solvePipelined(const std::vector<dnn::MacCensus> &census,
                                 Time t) const
{
    MINDFUL_ASSERT(t.inSeconds() > 0.0, "deadline must be positive");

    AcceleratorBound bound;
    bound.discipline = Discipline::Pipelined;
    bound.perLayerUnits.assign(census.size(), 0);

    double worst_latency = 0.0;
    std::uint64_t total_units = 0;
    const double t_mac = _mac.macTime.inSeconds();

    for (std::size_t i = 0; i < census.size(); ++i) {
        const auto &layer = census[i];
        if (layer.empty())
            continue;

        // Minimal units for layer i alone:
        //   seq_i * t_MAC * ceil(op_i / m) <= t
        //   ceil(op_i / m) <= t / (seq_i * t_MAC) =: passes
        double layer_seq_time =
            static_cast<double>(layer.macSeq) * t_mac;
        auto passes = static_cast<std::uint64_t>(
            t.inSeconds() / layer_seq_time);
        if (passes == 0)
            return bound; // this layer can never meet the deadline

        std::uint64_t units = ceilDiv(layer.macOp, passes);
        units = std::min(units, layer.macOp);
        bound.perLayerUnits[i] = units;
        total_units += units;

        double latency = layer_seq_time *
                         static_cast<double>(ceilDiv(layer.macOp, units));
        worst_latency = std::max(worst_latency, latency);
    }

    bound.feasible = true;
    bound.macUnits = total_units;
    bound.power = _mac.macPower * static_cast<double>(total_units);
    bound.latency = Time::seconds(worst_latency);
    return bound;
}

AcceleratorBound
LowerBoundSolver::solveBest(const std::vector<dnn::MacCensus> &census,
                            Time t) const
{
    AcceleratorBound shared = solveSharedPool(census, t);
    AcceleratorBound pipelined = solvePipelined(census, t);
    if (!shared.feasible)
        return pipelined;
    if (!pipelined.feasible)
        return shared;
    return pipelined.macUnits < shared.macUnits ? pipelined : shared;
}

} // namespace mindful::accel
