/**
 * @file
 * MAC-count lower bound for on-implant DNN accelerators
 * (paper Eqs. 11-15).
 *
 * Real-time execution requires the whole DNN to finish within one
 * sampling period t = 1/f. Two execution disciplines are modelled:
 *
 *  - Shared pool (non-pipelined, Eqs. 11-12): one pool of #MAC_hw
 *    units processes the layers in sequence,
 *
 *        sum_i MAC_seq^i * t_MAC * ceil(#MAC_op^i / #MAC_hw) <= t
 *
 *    with 0 < #MAC_hw <= max_i(#MAC_op^i).
 *
 *  - Pipelined (Eqs. 14-15): each layer owns #MAC_hw^i units and all
 *    layers run concurrently on successive inputs, so only the
 *    slowest stage must meet t; total units = sum_i #MAC_hw^i.
 *
 * The resulting power lower bound is Pcomp = #MAC_hw * P_MAC
 * (Eq. 13) — deliberately architecture-independent: it ignores
 * memory, routing, and control, which the paper shows (Fig. 9) are
 * secondary to PE power at scale.
 */

#ifndef MINDFUL_ACCEL_LOWER_BOUND_HH
#define MINDFUL_ACCEL_LOWER_BOUND_HH

#include <cstdint>
#include <vector>

#include "accel/mac_unit.hh"
#include "base/units.hh"
#include "dnn/mac_census.hh"

namespace mindful::accel {

/** Execution discipline of the accelerator. */
enum class Discipline : std::uint8_t {
    SharedPool, //!< Eqs. 11-12
    Pipelined   //!< Eqs. 14-15
};

/** Result of sizing an accelerator for one DNN. */
struct AcceleratorBound
{
    bool feasible = false;
    Discipline discipline = Discipline::SharedPool;

    /** Total MAC units (0 when infeasible). */
    std::uint64_t macUnits = 0;

    /** Pcomp = macUnits * P_MAC (Eq. 13). */
    Power power;

    /** Worst-case execution latency of one inference. */
    Time latency;

    /** Per-layer unit allocation (pipelined only). */
    std::vector<std::uint64_t> perLayerUnits;
};

/** Solver over a per-layer MAC census. */
class LowerBoundSolver
{
  public:
    explicit LowerBoundSolver(MacUnitParams mac);

    const MacUnitParams &mac() const { return _mac; }

    /** Execution time of the whole census with a shared pool of
     *  @p mac_units units (Eq. 11 left-hand side). */
    Time sharedPoolLatency(const std::vector<dnn::MacCensus> &census,
                           std::uint64_t mac_units) const;

    /** Size a shared-pool accelerator to deadline @p t (Eqs. 11-12). */
    AcceleratorBound
    solveSharedPool(const std::vector<dnn::MacCensus> &census, Time t) const;

    /** Size a pipelined accelerator to deadline @p t (Eqs. 14-15). */
    AcceleratorBound
    solvePipelined(const std::vector<dnn::MacCensus> &census, Time t) const;

    /**
     * Best (lowest-power feasible) of the two disciplines — the
     * paper reports "the best result between a pipelined and a
     * non-pipelined design" for every DNN.
     */
    AcceleratorBound solveBest(const std::vector<dnn::MacCensus> &census,
                               Time t) const;

  private:
    MacUnitParams _mac;
};

} // namespace mindful::accel

#endif // MINDFUL_ACCEL_LOWER_BOUND_HH
