#include "accel/mac_unit.hh"

namespace mindful::accel {

MacUnitParams
nangate45()
{
    return {"nangate45", Time::nanoseconds(2.0), Power::milliwatts(0.05)};
}

MacUnitParams
scaled12nm()
{
    return {"12nm", Time::nanoseconds(1.0), Power::milliwatts(0.026)};
}

MacUnitParams
tsmc130()
{
    // One MAC step per 100 MHz cycle; dynamic power typical of an
    // 8-bit MAC at 130 nm (used only by the Fig. 9 trend model).
    return {"tsmc130", Time::nanoseconds(10.0), Power::microwatts(110.0)};
}

} // namespace mindful::accel
