/**
 * @file
 * Post-synthesis MAC-unit parameters (paper Sec. 5.3 "Results").
 *
 * The paper synthesizes a single 8-bit MAC unit and uses its latency
 * t_MAC and power P_MAC directly in the lower-bound equations:
 *
 *   - NanGate 45 nm @ 100 MHz: t_MAC = 2 ns, P_MAC = 0.05 mW
 *   - 12 nm (technology-scaling optimization): t_MAC = 1 ns,
 *     P_MAC = 0.026 mW
 *   - TSMC 130 nm @ 100 MHz: the node used for the Fig. 9
 *     accelerator synthesis study (coefficients in SynthesisModel).
 */

#ifndef MINDFUL_ACCEL_MAC_UNIT_HH
#define MINDFUL_ACCEL_MAC_UNIT_HH

#include <string>

#include "base/units.hh"

namespace mindful::accel {

/** Synthesized characteristics of one MAC unit. */
struct MacUnitParams
{
    std::string technology = "nangate45";

    /** Time to execute one multiply-accumulate step. */
    Time macTime = Time::nanoseconds(2.0);

    /** Power of one active MAC unit. */
    Power macPower = Power::milliwatts(0.05);

    /** Energy of one MAC step. */
    Energy
    energyPerMac() const
    {
        return macPower * macTime;
    }
};

/** The paper's 45 nm NanGate numbers (default evaluation node). */
MacUnitParams nangate45();

/** The paper's 12 nm numbers (technology-scaling optimization). */
MacUnitParams scaled12nm();

/** 130 nm TSMC node used for the Fig. 9 synthesis study. */
MacUnitParams tsmc130();

} // namespace mindful::accel

#endif // MINDFUL_ACCEL_MAC_UNIT_HH
