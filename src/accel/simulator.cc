#include "accel/simulator.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/special_math.hh"
#include "dnn/dense.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::accel {

AcceleratorSimulator::AcceleratorSimulator(SimulatorConfig config)
    : _config(config)
{
    MINDFUL_ASSERT(_config.macUnits > 0,
                   "simulator needs at least one MAC unit");
}

namespace {

/**
 * Execute a dense layer on a weight-stationary PE pool.
 *
 * Rows (MAC_op sequences) are assigned to PEs round-robin; each pass
 * runs up to `units` rows in parallel for `in` accumulation steps.
 * The arithmetic order per row matches DenseLayer::forward(), so the
 * result is bit-identical to the functional reference.
 */
dnn::Tensor
runDenseOnPes(const dnn::DenseLayer &layer, const dnn::Tensor &input,
              std::uint64_t units, std::uint64_t &cycles)
{
    const std::size_t in = layer.inFeatures();
    const std::size_t out = layer.outFeatures();
    dnn::Tensor result(dnn::Shape{out});

    const float *x = input.data();
    const auto &weights = layer.weights();
    const auto &biases = layer.biases();

    std::size_t next_row = 0;
    while (next_row < out) {
        std::size_t batch =
            std::min<std::size_t>(units, out - next_row);
        // All PEs in the pass step through their MAC_seq in lockstep.
        for (std::size_t pe = 0; pe < batch; ++pe) {
            std::size_t row = next_row + pe;
            const float *w = weights.data() + row * in;
            float acc = biases[row];
            for (std::size_t c = 0; c < in; ++c)
                acc += w[c] * x[c];
            result[row] = acc;
        }
        next_row += batch;
        cycles += in; // one pass = MAC_seq cycles
    }
    return result;
}

} // namespace

SimulationResult
AcceleratorSimulator::run(const dnn::Network &network,
                          const dnn::Tensor &input) const
{
    MINDFUL_TRACE_SPAN(run_span, "accel", "simulator.run");
    run_span.arg("network", network.name())
        .arg("mac_units", _config.macUnits);

    SimulationResult result;
    result.layerCycles.assign(network.layerCount(), 0);

    dnn::Tensor activation = input;
    for (std::size_t i = 0; i < network.layerCount(); ++i) {
        const dnn::Layer &layer = network.layer(i);
        dnn::MacCensus census = layer.census(activation.shape());
        std::uint64_t layer_cycles = 0;

        {
            MINDFUL_TRACE_SPAN(layer_span, "accel",
                               "layer." + layer.name());
            layer_span.arg("index", static_cast<std::uint64_t>(i))
                .arg("macs", census.totalMacs());

            if (const auto *dense =
                    dynamic_cast<const dnn::DenseLayer *>(&layer)) {
                activation = runDenseOnPes(*dense, activation,
                                           _config.macUnits,
                                           layer_cycles);
            } else {
                if (!census.empty()) {
                    layer_cycles =
                        ceilDiv(census.macOp, _config.macUnits) *
                        census.macSeq;
                }
                activation = layer.forward(activation);
            }
            layer_span.arg("cycles", layer_cycles);
        }

        result.layerCycles[i] = layer_cycles;
        result.cycles += layer_cycles;
        result.macsExecuted += census.totalMacs();

        if (census.totalMacs() > 0) {
            Energy layer_energy = _config.mac.energyPerMac() *
                                  static_cast<double>(census.totalMacs());
            MINDFUL_METRIC_RECORD("accel.layer.energy_pj",
                                  layer_energy.inPicojoules());
            MINDFUL_METRIC_RECORD(
                "accel.layer.latency_us",
                (_config.mac.macTime *
                 static_cast<double>(layer_cycles))
                    .inMicroseconds());
            MINDFUL_METRIC_RECORD(
                "accel.layer.macs",
                static_cast<double>(census.totalMacs()));
        }
    }

    result.output = std::move(activation);
    result.latency = _config.mac.macTime * static_cast<double>(result.cycles);
    result.energy = _config.mac.energyPerMac() *
                    static_cast<double>(result.macsExecuted);
    double capacity = static_cast<double>(result.cycles) *
                      static_cast<double>(_config.macUnits);
    result.utilization =
        capacity > 0.0 ? static_cast<double>(result.macsExecuted) / capacity
                       : 0.0;

    MINDFUL_METRIC_COUNT("accel.sim.runs", 1);
    MINDFUL_METRIC_COUNT("accel.sim.cycles", result.cycles);
    MINDFUL_METRIC_COUNT("accel.sim.macs", result.macsExecuted);
    MINDFUL_METRIC_GAUGE("accel.sim.utilization", result.utilization);
    run_span.arg("cycles", result.cycles)
        .arg("macs", result.macsExecuted)
        .arg("utilization", result.utilization);
    return result;
}

PipelinedResult
AcceleratorSimulator::runPipelined(
    const dnn::Network &network, const std::vector<dnn::Tensor> &inputs,
    const std::vector<std::uint64_t> &per_layer_units) const
{
    MINDFUL_ASSERT(per_layer_units.size() == network.layerCount(),
                   "per-layer unit vector must match the layer count");
    MINDFUL_ASSERT(!inputs.empty(), "pipelined run needs inputs");

    PipelinedResult result;
    result.stageLatency.assign(network.layerCount(), Time::seconds(0.0));

    // Stage latencies from the census and the per-layer allocation.
    auto census = network.census();
    double interval = 0.0;
    double fill = 0.0;
    for (std::size_t i = 0; i < census.size(); ++i) {
        if (census[i].empty())
            continue;
        MINDFUL_ASSERT(per_layer_units[i] > 0,
                       "MAC-bearing layer ", i,
                       " needs a non-zero unit allocation");
        double steps =
            static_cast<double>(census[i].macSeq) *
            static_cast<double>(
                ceilDiv(census[i].macOp, per_layer_units[i]));
        double latency = steps * _config.mac.macTime.inSeconds();
        result.stageLatency[i] = Time::seconds(latency);
        interval = std::max(interval, latency);
        fill += latency;
    }
    result.iterationInterval = Time::seconds(interval);
    result.makespan = Time::seconds(
        fill + interval * static_cast<double>(inputs.size() - 1));

    // Functional execution, input by input (the dataflow is fully
    // deterministic, so per-input results equal the reference pass).
    std::uint64_t macs_per_inference = dnn::totalMacs(census);
    result.outputs.reserve(inputs.size());
    for (const auto &input : inputs)
        result.outputs.push_back(network.forward(input));
    result.macsExecuted =
        macs_per_inference * static_cast<std::uint64_t>(inputs.size());
    result.energy = _config.mac.energyPerMac() *
                    static_cast<double>(result.macsExecuted);
    return result;
}

} // namespace mindful::accel
