/**
 * @file
 * Functional, cycle-approximate DNN-accelerator simulator.
 *
 * The lower-bound solver (Eqs. 11-15) sizes a PE array analytically;
 * this simulator *executes* a network on that array and reports the
 * cycles, latency, energy and utilization the analytical model
 * predicts — closing the loop between the equations and an actual
 * dataflow:
 *
 *  - Dense layers are executed PE-by-PE: each weight-stationary PE
 *    owns a round-robin share of the layer's #MAC_op rows and steps
 *    through its MAC_seq accumulations, exactly like the Fig. 9
 *    architecture (MAC + ReLU + weight ROM per PE).
 *  - Other MAC-bearing layers (convolutions) are timed from their
 *    census and evaluated functionally.
 *  - MAC-free layers (pooling, activations, reshapes) execute in the
 *    dataflow FSM and take no PE cycles.
 *
 * The simulated output is bit-identical to Network::forward(), which
 * the integration tests assert.
 */

#ifndef MINDFUL_ACCEL_SIMULATOR_HH
#define MINDFUL_ACCEL_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "accel/mac_unit.hh"
#include "base/units.hh"
#include "dnn/network.hh"

namespace mindful::accel {

/** Static configuration of the simulated accelerator. */
struct SimulatorConfig
{
    /** PE count (shared pool across layers). */
    std::uint64_t macUnits = 64;

    /** Synthesized MAC characteristics. */
    MacUnitParams mac = nangate45();
};

/** Dynamic results of one simulated inference. */
struct SimulationResult
{
    dnn::Tensor output;

    /** Total PE time-steps (MAC cycles) consumed. */
    std::uint64_t cycles = 0;

    /** cycles * t_MAC. */
    Time latency;

    /** MAC operations actually executed. */
    std::uint64_t macsExecuted = 0;

    /** Energy actually spent in MACs. */
    Energy energy;

    /** macsExecuted / (cycles * macUnits): PE array utilization. */
    double utilization = 0.0;

    /** Per-layer cycle counts. */
    std::vector<std::uint64_t> layerCycles;
};

/** Results of streaming a batch through a pipelined accelerator. */
struct PipelinedResult
{
    /** Per-input network outputs, in order. */
    std::vector<dnn::Tensor> outputs;

    /** Per-stage (layer) latency with its allocated units. */
    std::vector<Time> stageLatency;

    /** Steady-state initiation interval = max stage latency. */
    Time iterationInterval;

    /** Pipeline fill + (N-1) intervals: time to drain the batch. */
    Time makespan;

    std::uint64_t macsExecuted = 0;
    Energy energy;
};

/** Weight-stationary shared-pool accelerator simulator. */
class AcceleratorSimulator
{
  public:
    explicit AcceleratorSimulator(SimulatorConfig config);

    const SimulatorConfig &config() const { return _config; }

    /** Run one inference of @p network on @p input. */
    SimulationResult run(const dnn::Network &network,
                         const dnn::Tensor &input) const;

    /**
     * Stream a batch through a *pipelined* accelerator (Eqs. 14-15):
     * layer i owns @p per_layer_units[i] PEs and all layers run
     * concurrently on successive inputs. Every MAC-bearing layer
     * needs a non-zero allocation (as produced by
     * LowerBoundSolver::solvePipelined). The configured shared-pool
     * size is ignored on this path.
     */
    PipelinedResult
    runPipelined(const dnn::Network &network,
                 const std::vector<dnn::Tensor> &inputs,
                 const std::vector<std::uint64_t> &per_layer_units) const;

  private:
    SimulatorConfig _config;
};

} // namespace mindful::accel

#endif // MINDFUL_ACCEL_SIMULATOR_HH
