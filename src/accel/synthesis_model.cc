#include "accel/synthesis_model.hh"

#include "base/logging.hh"

namespace mindful::accel {

SynthesisModel::SynthesisModel(SynthesisCoefficients coeffs)
    : _coeffs(coeffs)
{
    MINDFUL_ASSERT(_coeffs.macUnit.inWatts() > 0.0,
                   "MAC component power must be positive");
}

Power
SynthesisModel::pePower(std::uint64_t mac_seq) const
{
    return _coeffs.macUnit + _coeffs.relu + _coeffs.peFsm +
           _coeffs.romPerWord * static_cast<double>(mac_seq);
}

SynthesisEstimate
SynthesisModel::estimate(const AcceleratorDesignPoint &point) const
{
    MINDFUL_ASSERT(point.macHw > 0 && point.macOp > 0 && point.macSeq > 0,
                   "design point parameters must be positive");
    MINDFUL_ASSERT(point.macHw <= point.macOp,
                   "more PEs than independent MAC_op is never exploitable");

    SynthesisEstimate estimate;
    estimate.pePower =
        pePower(point.macSeq) * static_cast<double>(point.macHw);
    Power overhead = _coeffs.dataflowBase +
                     _coeffs.ioRegsPerOp * static_cast<double>(point.macOp) +
                     _coeffs.controlPerPe * static_cast<double>(point.macHw);
    estimate.layerPower = estimate.pePower + overhead;
    estimate.peShare = estimate.pePower / estimate.layerPower;
    return estimate;
}

std::vector<AcceleratorDesignPoint>
SynthesisModel::paperDesignPoints()
{
    // The twelve configurations of the Fig. 9 table: designs 1-5 grow
    // #MAC_op at fixed MAC_hw, 6-9 grow MAC_hw up to #MAC_op, and
    // 10-12 scale everything together.
    return {
        {256, 4, 4},      {256, 4, 8},      {256, 4, 16},
        {256, 4, 32},     {256, 4, 64},     {256, 8, 64},
        {256, 16, 64},    {256, 32, 64},    {256, 64, 64},
        {512, 128, 128},  {1024, 256, 256}, {2048, 512, 512},
    };
}

} // namespace mindful::accel
