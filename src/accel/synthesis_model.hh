/**
 * @file
 * Analytical accelerator synthesis-power model (paper Fig. 9).
 *
 * The paper synthesizes a DNN-layer accelerator (dataflow FSM +
 * input/output registers around an array of PEs, each PE holding a
 * MAC unit, a ReLU, a small FSM and a weight ROM) in 130 nm TSMC at
 * 100 MHz, across twelve (MAC_seq, MAC_hw, #MAC_op) design points,
 * and shows that PE power dominates total power at scale (~25% of
 * layer power in small designs, ~80% once MAC_hw = #MAC_op, up to
 * ~96% in the largest configurations).
 *
 * We cannot run Cadence Genus here, so this module substitutes an
 * analytical component-level power model whose per-component
 * coefficients are calibrated to reproduce those reported trends
 * (DESIGN.md Sec. 3 item 1). The model is deliberately linear in the
 * structural parameters — exactly the dependence a synthesis netlist
 * would show before placement effects.
 */

#ifndef MINDFUL_ACCEL_SYNTHESIS_MODEL_HH
#define MINDFUL_ACCEL_SYNTHESIS_MODEL_HH

#include <cstdint>
#include <vector>

#include "accel/mac_unit.hh"
#include "base/units.hh"

namespace mindful::accel {

/** One synthesized configuration (a row of the Fig. 9 table). */
struct AcceleratorDesignPoint
{
    std::uint64_t macSeq = 0; //!< accumulation steps per MAC_op
    std::uint64_t macHw = 0;  //!< instantiated PEs
    std::uint64_t macOp = 0;  //!< independent MAC_op in the layer
};

/** Power breakdown for one design point. */
struct SynthesisEstimate
{
    Power pePower;    //!< total PE array power
    Power layerPower; //!< full accelerator power
    double peShare = 0.0; //!< pePower / layerPower
};

/** Calibrated per-component coefficients (130 nm, 100 MHz, 8-bit). */
struct SynthesisCoefficients
{
    /** MAC unit inside one PE. */
    Power macUnit = Power::microwatts(28.0);

    /** ReLU activation inside one PE. */
    Power relu = Power::microwatts(1.5);

    /** Weight ROM, per stored weight word (MAC_seq words per PE). */
    Power romPerWord = Power::microwatts(0.02);

    /** PE-local control FSM. */
    Power peFsm = Power::microwatts(3.0);

    /** Fixed dataflow FSM + clocking of the layer wrapper. */
    Power dataflowBase = Power::microwatts(350.0);

    /** Input + output registers, per #MAC_op lane. */
    Power ioRegsPerOp = Power::microwatts(2.5);

    /** Multiplexing / control per instantiated PE. */
    Power controlPerPe = Power::microwatts(1.5);
};

/** Evaluates the component model over design points. */
class SynthesisModel
{
  public:
    explicit SynthesisModel(SynthesisCoefficients coeffs = {});

    const SynthesisCoefficients &coefficients() const { return _coeffs; }

    /** Power of one PE holding @p mac_seq weights. */
    Power pePower(std::uint64_t mac_seq) const;

    /** Full breakdown for a design point. */
    SynthesisEstimate estimate(const AcceleratorDesignPoint &point) const;

    /** The twelve design points evaluated in Fig. 9. */
    static std::vector<AcceleratorDesignPoint> paperDesignPoints();

  private:
    SynthesisCoefficients _coeffs;
};

} // namespace mindful::accel

#endif // MINDFUL_ACCEL_SYNTHESIS_MODEL_HH
