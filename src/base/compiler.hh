/**
 * @file
 * Compiler-specific annotations, chiefly Clang's thread-safety
 * analysis, plus the annotated synchronization primitives the rest of
 * the repository locks with.
 *
 * The MINDFUL_* macros wrap Clang's capability attributes
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and expand
 * to nothing on other compilers, so the annotations are free
 * documentation under GCC and compile-time proof under Clang. CI
 * builds the tree with `-Wthread-safety -Werror=thread-safety`
 * (see .github/workflows/ci.yml and docs/static_analysis.md).
 *
 * Conventions for shared-state classes:
 *  - every member touched by more than one thread carries
 *    MINDFUL_GUARDED_BY(<mutex member>);
 *  - private helpers called with the lock held are annotated
 *    MINDFUL_REQUIRES(<mutex>) instead of re-locking;
 *  - the std primitives are never used directly — mindful::Mutex,
 *    mindful::LockGuard and mindful::ConditionVariable carry the
 *    attributes std::mutex lacks.
 */

#ifndef MINDFUL_BASE_COMPILER_HH
#define MINDFUL_BASE_COMPILER_HH

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define MINDFUL_TSA(x) __attribute__((x))
#else
#define MINDFUL_TSA(x)
#endif

/** Marks a class as a lockable capability (mutexes). */
#define MINDFUL_CAPABILITY(name) MINDFUL_TSA(capability(name))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define MINDFUL_SCOPED_CAPABILITY MINDFUL_TSA(scoped_lockable)

/** Data member readable/writable only with the given mutex held. */
#define MINDFUL_GUARDED_BY(x) MINDFUL_TSA(guarded_by(x))

/** Pointer member whose pointee is guarded by the given mutex. */
#define MINDFUL_PT_GUARDED_BY(x) MINDFUL_TSA(pt_guarded_by(x))

/** Function that must be called with the given mutexes held. */
#define MINDFUL_REQUIRES(...) \
    MINDFUL_TSA(requires_capability(__VA_ARGS__))

/** Function that must be called with the given mutexes NOT held. */
#define MINDFUL_EXCLUDES(...) MINDFUL_TSA(locks_excluded(__VA_ARGS__))

/** Function that acquires the given mutexes (and does not release). */
#define MINDFUL_ACQUIRE(...) MINDFUL_TSA(acquire_capability(__VA_ARGS__))

/** Function that releases the given mutexes. */
#define MINDFUL_RELEASE(...) MINDFUL_TSA(release_capability(__VA_ARGS__))

/** Function that acquires the mutex when it returns @p result. */
#define MINDFUL_TRY_ACQUIRE(result, ...) \
    MINDFUL_TSA(try_acquire_capability(result, __VA_ARGS__))

/** Function returning a reference to the capability guarding it. */
#define MINDFUL_RETURN_CAPABILITY(x) MINDFUL_TSA(lock_returned(x))

/**
 * Escape hatch: disables the analysis for one function. Reserve for
 * constructs the analysis provably cannot express, and say why in a
 * comment. src/exec and src/obs must not use it (CI enforces the
 * annotations there suppression-free).
 */
#define MINDFUL_NO_THREAD_SAFETY_ANALYSIS \
    MINDFUL_TSA(no_thread_safety_analysis)

/**
 * Declared publication protocol of a std::atomic field, checked by
 * mindful-analyze's atomics-discipline pass (docs/static_analysis.md).
 * Place directly before the declaration (or before the parameter, for
 * helpers that operate on a caller's cell):
 *
 *   MINDFUL_ATOMIC_ROLE(spsc_head)
 *   alignas(64) std::atomic<std::size_t> _head{0};
 *
 * Roles and the per-operation rules they switch on:
 *  - publish_ptr:  release (or CAS-release) stores paired with acquire
 *                  loads; a relaxed load may be null-checked but never
 *                  dereferenced.
 *  - spsc_head /   single-writer ring indices: one producer site, plain
 *    spsc_tail:    release stores, consumer loads acquire.
 *  - stat_counter: relaxed everywhere; the value is telemetry and must
 *                  not steer control flow.
 *  - once_flag:    latched gates/config cells; relaxed or
 *                  acquire/release as the handoff requires.
 *  - seqlock:      reserved for the streaming pipeline's sequence
 *                  counters (acquire loads, release stores).
 *
 * The macro expands to nothing — it is a marker for the analyzer's
 * lexer, which also flags unannotated atomics, memory_order_consume,
 * and orderings a role forbids. Escapes use `analyze: atomic-ok`
 * comments, policed like every other suppression.
 */
#define MINDFUL_ATOMIC_ROLE(role)

/**
 * Marks the loop that immediately follows as a *streaming stage loop*
 * — a real-time root for mindful-analyze's realtime-loop pass
 * (docs/static_analysis.md). Place directly before a `while`/`for`
 * statement; the stage name is a short dotted identifier string:
 *
 *   MINDFUL_RT_LOOP("collector.drain")
 *   while (ring->tryPop(event)) { ... }
 *
 * Everything reachable from the annotated loop (condition and body,
 * through resolvable calls, cross-TU) must stay non-blocking: no
 * Mutex/ConditionVariable, no file or stream construction, no
 * sleep/this_thread calls, no unbounded `while (true)` without a
 * break/return, and no cold-tier TraceSpan / by-name MetricRegistry
 * lookups (the pre-resolved MINDFUL_HOT_* handle tier stays legal).
 * Escapes use `analyze: rt-ok` comments with a parenthesized reason,
 * policed like every other suppression.
 *
 * The macro expands to nothing — like MINDFUL_ATOMIC_ROLE it is a
 * marker for the analyzer's lexer, not for the compiler.
 */
#define MINDFUL_RT_LOOP(stage)

namespace mindful {

/**
 * std::mutex with the capability attribute the analysis needs.
 * Use LockGuard for scoped locking; lock()/unlock() exist for the
 * rare manual protocols (and for ConditionVariable).
 */
class MINDFUL_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() MINDFUL_ACQUIRE() { _mutex.lock(); }
    void unlock() MINDFUL_RELEASE() { _mutex.unlock(); }

    bool
    tryLock() MINDFUL_TRY_ACQUIRE(true)
    {
        return _mutex.try_lock();
    }

  private:
    friend class ConditionVariable;
    std::mutex _mutex;
};

/** RAII lock over a mindful::Mutex (annotated std::lock_guard). */
class MINDFUL_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mutex) MINDFUL_ACQUIRE(mutex)
        : _mutex(mutex)
    {
        _mutex.lock();
    }

    ~LockGuard() MINDFUL_RELEASE() { _mutex.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &_mutex;
};

/**
 * Condition variable for mindful::Mutex. wait() requires the mutex
 * held and holds it again on return; write the predicate loop at the
 * call site (`while (!ready) cv.wait(mutex);`) so the analysis sees
 * every guarded read under the lock.
 */
class ConditionVariable
{
  public:
    ConditionVariable() = default;
    ConditionVariable(const ConditionVariable &) = delete;
    ConditionVariable &operator=(const ConditionVariable &) = delete;

    /** Atomically release @p mutex, block, re-acquire, return. */
    void
    wait(Mutex &mutex) MINDFUL_REQUIRES(mutex)
    {
        // Adopt the already-held native mutex for the duration of the
        // wait, then release ownership back to the caller's scope so
        // the capability bookkeeping stays balanced.
        std::unique_lock<std::mutex> native(mutex._mutex,
                                            std::adopt_lock);
        _cv.wait(native);
        native.release();
    }

    void notifyOne() { _cv.notify_one(); }
    void notifyAll() { _cv.notify_all(); }

  private:
    std::condition_variable _cv;
};

} // namespace mindful

#endif // MINDFUL_BASE_COMPILER_HH
