#include "base/cpu.hh"

#include <atomic>
#include <cstdlib>

#include "base/compiler.hh"
#include "base/logging.hh"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace mindful {
namespace {

/**
 * CPU capability, independent of what was compiled in. On x86-64 the
 * builtin executes CPUID once and caches inside libgcc/compiler-rt;
 * on AArch64 Linux AT_HWCAP carries the ASIMD bit (baseline for the
 * architecture, but checking keeps the claim honest).
 */
bool
cpuCanRun(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Scalar:
        return true;
    case SimdIsa::Avx2:
#if defined(__x86_64__) || defined(_M_X64)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case SimdIsa::Neon:
#if defined(__aarch64__) && defined(__linux__)
        return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#elif defined(__aarch64__)
        return true; // ASIMD is architecturally baseline on AArch64
#else
        return false;
#endif
    }
    return false;
}

/** 0 = unresolved; otherwise 1 + static_cast<int>(SimdIsa). */
MINDFUL_ATOMIC_ROLE(once_flag)
std::atomic<std::uint8_t> g_active{0};

SimdIsa
resolveActive()
{
    const char *env = std::getenv("MINDFUL_SIMD");
    if (env != nullptr && *env != '\0') {
        SimdIsa requested;
        if (!parseSimdIsaName(env, requested))
            MINDFUL_FATAL("MINDFUL_SIMD=", env,
                          " is not one of scalar|avx2|neon");
        if (!simdIsaSupported(requested))
            MINDFUL_FATAL("MINDFUL_SIMD=", env, " requested, but ",
                          simdIsaName(requested),
                          " kernels are unavailable on this host "
                          "(not compiled in or CPU lacks the ISA)");
        return requested;
    }
    return detectSimdIsa();
}

} // namespace

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Scalar:
        return "scalar";
    case SimdIsa::Avx2:
        return "avx2";
    case SimdIsa::Neon:
        return "neon";
    }
    return "unknown";
}

bool
parseSimdIsaName(const std::string &text, SimdIsa &out)
{
    if (text == "scalar") {
        out = SimdIsa::Scalar;
        return true;
    }
    if (text == "avx2") {
        out = SimdIsa::Avx2;
        return true;
    }
    if (text == "neon") {
        out = SimdIsa::Neon;
        return true;
    }
    return false;
}

bool
simdIsaCompiled(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Scalar:
        return true;
    case SimdIsa::Avx2:
#if defined(MINDFUL_HAVE_AVX2)
        return true;
#else
        return false;
#endif
    case SimdIsa::Neon:
#if defined(MINDFUL_HAVE_NEON)
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
simdIsaSupported(SimdIsa isa)
{
    return simdIsaCompiled(isa) && cpuCanRun(isa);
}

SimdIsa
detectSimdIsa()
{
    if (simdIsaSupported(SimdIsa::Avx2))
        return SimdIsa::Avx2;
    if (simdIsaSupported(SimdIsa::Neon))
        return SimdIsa::Neon;
    return SimdIsa::Scalar;
}

SimdIsa
activeSimdIsa()
{
    std::uint8_t cached = g_active.load(std::memory_order_relaxed);
    if (cached != 0)
        return static_cast<SimdIsa>(cached - 1);
    // Two threads racing the first call resolve the same value (env
    // and CPUID are both stable), so the double store is benign.
    SimdIsa resolved = resolveActive();
    g_active.store(static_cast<std::uint8_t>(resolved) + 1,
                   std::memory_order_relaxed);
    return resolved;
}

void
forceSimdIsa(SimdIsa isa)
{
    MINDFUL_ASSERT(simdIsaSupported(isa), "cannot force SIMD ISA ",
                   simdIsaName(isa),
                   ": not compiled in or unsupported on this CPU");
    g_active.store(static_cast<std::uint8_t>(isa) + 1,
                   std::memory_order_relaxed);
}

} // namespace mindful
