/**
 * @file
 * Runtime CPU feature detection for the SIMD kernel dispatch tier.
 *
 * The DNN forward path (src/dnn/gemm.hh) carries one kernel per
 * vector ISA; this module decides, once per process, which of them
 * the hardware can run. Detection uses CPUID (via
 * `__builtin_cpu_supports`) on x86-64 and AT_HWCAP (`getauxval`) on
 * AArch64 Linux. The `MINDFUL_SIMD` environment variable
 * (`scalar|avx2|neon`) overrides detection for testing — forcing an
 * ISA the host cannot run (or that was not compiled in) is fatal, so
 * a forced run never silently falls back to a different kernel than
 * the one under test.
 *
 * Which ISAs are *compiled in* is a build-time fact: the per-ISA
 * translation units (src/dnn/gemm_avx2.cc, gemm_neon.cc) are only
 * added on matching architectures (src/dnn/CMakeLists.txt), and the
 * same `MINDFUL_HAVE_AVX2` / `MINDFUL_HAVE_NEON` definitions gate the
 * dispatch table here.
 */

#ifndef MINDFUL_BASE_CPU_HH
#define MINDFUL_BASE_CPU_HH

#include <cstdint>
#include <string>

namespace mindful {

/** Vector ISA tiers of the GEMM dispatch (scalar is always present). */
enum class SimdIsa : std::uint8_t {
    Scalar, //!< portable scalar kernels, every platform
    Avx2,   //!< x86-64 AVX2 (8-lane fp32), no FMA (bit-exactness)
    Neon    //!< AArch64 Advanced SIMD (4-lane fp32)
};

/** Lower-case name used by `MINDFUL_SIMD` and the run manifest. */
const char *simdIsaName(SimdIsa isa);

/**
 * Parse a `MINDFUL_SIMD` value. Returns true and sets @p out for
 * "scalar", "avx2" or "neon" (exact, lower-case); false otherwise.
 */
bool parseSimdIsaName(const std::string &text, SimdIsa &out);

/** True when kernels for @p isa were compiled into this binary. */
bool simdIsaCompiled(SimdIsa isa);

/** True when @p isa is compiled in AND the host CPU can execute it. */
bool simdIsaSupported(SimdIsa isa);

/**
 * Best supported ISA for this host (ignores the env override):
 * Avx2 > Neon > Scalar among the supported set.
 */
SimdIsa detectSimdIsa();

/**
 * The ISA the GEMM tier dispatches to. Resolved on first call —
 * `MINDFUL_SIMD` if set (fatal when unparseable or unsupported),
 * detectSimdIsa() otherwise — then cached; later calls are one
 * relaxed atomic load. forceSimdIsa() replaces the cached value.
 */
SimdIsa activeSimdIsa();

/**
 * Replace the dispatched ISA (testing / benchmarking hook, e.g. to
 * measure every tier in one process). Fatal if @p isa is not
 * supported on this host. Not thread-safe against concurrent kernel
 * launches — call between kernel invocations only.
 */
void forceSimdIsa(SimdIsa isa);

} // namespace mindful

#endif // MINDFUL_BASE_CPU_HH
