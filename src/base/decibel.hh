/**
 * @file
 * Decibel / linear conversions used by the link-budget models.
 *
 * RF papers mix dB, dBm, and linear quantities freely; keeping the
 * conversions in one header with explicit names avoids the classic
 * factor-of-10-vs-20 mistakes.
 */

#ifndef MINDFUL_BASE_DECIBEL_HH
#define MINDFUL_BASE_DECIBEL_HH

#include <cmath>

#include "base/units.hh"

namespace mindful {

/** Convert a linear power ratio to decibels. */
inline double
toDecibels(double linear_ratio)
{
    return 10.0 * std::log10(linear_ratio);
}

/** Convert decibels to a linear power ratio. */
inline double
fromDecibels(double db)
{
    return std::pow(10.0, db / 10.0);
}

/** Convert absolute power to dBm (decibels relative to 1 mW). */
inline double
toDbm(Power p)
{
    return 10.0 * std::log10(p.inMilliwatts());
}

/** Convert dBm to absolute power. */
inline Power
fromDbm(double dbm)
{
    return Power::milliwatts(std::pow(10.0, dbm / 10.0));
}

} // namespace mindful

#endif // MINDFUL_BASE_DECIBEL_HH
