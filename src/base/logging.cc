#include "base/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <unordered_set>

#include "base/compiler.hh"

namespace mindful {

namespace {

MINDFUL_ATOMIC_ROLE(once_flag)
std::atomic<LogLevel> globalLevel{LogLevel::Info};
MINDFUL_ATOMIC_ROLE(once_flag)
std::atomic<bool> elapsedPrefix{false};

/**
 * Serializes writes to the log sinks so concurrent warn()/inform()
 * calls (e.g. from parallel Monte-Carlo workers) cannot interleave
 * mid-line. panic()/fatal() also take it, then abort/exit while
 * holding it — safe, since neither returns.
 */
Mutex &
sinkMutex()
{
    static Mutex mutex;
    return mutex;
}

/** Dedup state behind MINDFUL_WARN_ONCE / warnOnceImpl. */
struct WarnOnceState
{
    Mutex mutex;
    std::unordered_set<std::string> seen MINDFUL_GUARDED_BY(mutex);
};

WarnOnceState &
warnOnceState()
{
    static WarnOnceState state;
    return state;
}

std::chrono::steady_clock::time_point
processStart()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

// Touch the start time at static-init so the epoch is process start,
// not the first log line.
const auto initProcessStart = processStart();

void
writePrefix(std::ostream &os)
{
    if (!elapsedPrefix.load(std::memory_order_relaxed))
        return;
    auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - processStart());
    os << "[" << std::setw(9) << std::fixed << std::setprecision(3)
       << elapsed.count() << "s] " << std::defaultfloat;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogElapsedPrefix(bool enabled)
{
    elapsedPrefix.store(enabled, std::memory_order_relaxed);
}

bool
logElapsedPrefix()
{
    return elapsedPrefix.load(std::memory_order_relaxed);
}

void
resetWarnOnce()
{
    WarnOnceState &state = warnOnceState();
    LockGuard lock(state.mutex);
    state.seen.clear();
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        LockGuard lock(sinkMutex());
        writePrefix(std::cerr);
        std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
                  << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        LockGuard lock(sinkMutex());
        writePrefix(std::cerr);
        std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
                  << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Warning)
        return;
    LockGuard lock(sinkMutex());
    writePrefix(std::cerr);
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Info)
        return;
    LockGuard lock(sinkMutex());
    writePrefix(std::cout);
    std::cout << "info: " << msg << std::endl;
}

void
warnOnceImpl(const std::string &key, const std::string &msg)
{
    {
        WarnOnceState &state = warnOnceState();
        LockGuard lock(state.mutex);
        if (!state.seen.insert(key).second)
            return;
    }
    warnImpl(msg);
}

} // namespace detail
} // namespace mindful
