/**
 * @file
 * Status and error reporting for the MINDFUL libraries.
 *
 * The conventions follow the gem5 logging idiom:
 *  - panic():  an internal invariant was violated (a library bug);
 *              aborts so a debugger or core dump can capture state.
 *  - fatal():  the caller supplied an impossible configuration (a user
 *              error); exits with status 1.
 *  - warn():   something is suspicious but execution can continue.
 *  - inform(): plain status output for the user.
 */

#ifndef MINDFUL_BASE_LOGGING_HH
#define MINDFUL_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace mindful {

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel {
    Silent,   //!< suppress inform() and warn()
    Warning,  //!< show warn() only
    Info      //!< show warn() and inform()
};

/** Set the process-wide verbosity. Defaults to LogLevel::Info. */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal error and abort. Use for library bugs only. */
#define MINDFUL_PANIC(...) \
    ::mindful::detail::panicImpl(__FILE__, __LINE__, \
                                 ::mindful::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define MINDFUL_FATAL(...) \
    ::mindful::detail::fatalImpl(__FILE__, __LINE__, \
                                 ::mindful::detail::concat(__VA_ARGS__))

/** Emit a warning that execution continues past. */
#define MINDFUL_WARN(...) \
    ::mindful::detail::warnImpl(::mindful::detail::concat(__VA_ARGS__))

/** Emit an informational status message. */
#define MINDFUL_INFORM(...) \
    ::mindful::detail::informImpl(::mindful::detail::concat(__VA_ARGS__))

/**
 * Assert an invariant that must hold if the library is correct.
 * Active in all build types (these models are cheap relative to the
 * cost of silently producing wrong design-space conclusions).
 */
#define MINDFUL_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            MINDFUL_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace mindful

#endif // MINDFUL_BASE_LOGGING_HH
