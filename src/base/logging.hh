/**
 * @file
 * Status and error reporting for the MINDFUL libraries.
 *
 * The conventions follow the gem5 logging idiom:
 *  - panic():  an internal invariant was violated (a library bug);
 *              aborts so a debugger or core dump can capture state.
 *  - fatal():  the caller supplied an impossible configuration (a user
 *              error); exits with status 1.
 *  - warn():   something is suspicious but execution can continue.
 *  - inform(): plain status output for the user.
 */

#ifndef MINDFUL_BASE_LOGGING_HH
#define MINDFUL_BASE_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace mindful {

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel : std::uint8_t {
    Silent,   //!< suppress inform() and warn()
    Warning,  //!< show warn() only
    Info      //!< show warn() and inform()
};

/** Set the process-wide verbosity. Defaults to LogLevel::Info. */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/**
 * Prefix every warn()/inform() line with the monotonic time elapsed
 * since process start, e.g. "[  12.345s] ". Off by default; useful
 * when correlating log lines with trace spans (src/obs).
 */
void setLogElapsedPrefix(bool enabled);

/** Whether the monotonic-elapsed prefix is currently enabled. */
bool logElapsedPrefix();

/**
 * Forget which warnings MINDFUL_WARN_ONCE / warnOnce() have already
 * emitted (intended for tests).
 */
void resetWarnOnce();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * Emit @p msg as a warning the first time @p key is seen; drop it
 * afterwards. Monte-Carlo loops use this so a per-sample anomaly
 * cannot flood stderr with millions of identical lines.
 */
void warnOnceImpl(const std::string &key, const std::string &msg);

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal error and abort. Use for library bugs only. */
#define MINDFUL_PANIC(...) \
    ::mindful::detail::panicImpl(__FILE__, __LINE__, \
                                 ::mindful::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define MINDFUL_FATAL(...) \
    ::mindful::detail::fatalImpl(__FILE__, __LINE__, \
                                 ::mindful::detail::concat(__VA_ARGS__))

/** Emit a warning that execution continues past. */
#define MINDFUL_WARN(...) \
    ::mindful::detail::warnImpl(::mindful::detail::concat(__VA_ARGS__))

/**
 * Emit a warning at most once per distinct message text. The message
 * is still formatted on every hit (to compute the dedup key), so keep
 * the arguments cheap in hot loops — or hoist the call out of the
 * per-sample path and count occurrences instead.
 */
#define MINDFUL_WARN_ONCE(...) \
    do { \
        std::string _mindful_warn_msg = \
            ::mindful::detail::concat(__VA_ARGS__); \
        ::mindful::detail::warnOnceImpl(_mindful_warn_msg, \
                                        _mindful_warn_msg); \
    } while (0)

/** Emit an informational status message. */
#define MINDFUL_INFORM(...) \
    ::mindful::detail::informImpl(::mindful::detail::concat(__VA_ARGS__))

/**
 * Assert an invariant that must hold if the library is correct.
 * Active in all build types (these models are cheap relative to the
 * cost of silently producing wrong design-space conclusions).
 */
#define MINDFUL_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            MINDFUL_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

/**
 * Assert that compiles away under NDEBUG. Reserved for per-element
 * checks inside the numerical kernels (src/dnn/gemm.cc, the bio-heat
 * sweeps), where an always-on branch would cost more than the
 * surrounding arithmetic. Everything that runs once per call keeps
 * using MINDFUL_ASSERT.
 */
#ifdef NDEBUG
#define MINDFUL_DEBUG_ASSERT(cond, ...) \
    do { \
    } while (0)
#else
#define MINDFUL_DEBUG_ASSERT(cond, ...) MINDFUL_ASSERT(cond, ##__VA_ARGS__)
#endif

} // namespace mindful

#endif // MINDFUL_BASE_LOGGING_HH
