#include "base/matrix.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "base/logging.hh"

namespace mindful {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : _rows(rows), _cols(cols), _data(rows * cols, 0.0)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    _rows = rows.size();
    _cols = _rows ? rows.begin()->size() : 0;
    _data.reserve(_rows * _cols);
    for (const auto &row : rows) {
        MINDFUL_ASSERT(row.size() == _cols,
                       "all matrix rows must have equal width");
        _data.insert(_data.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::diagonal(const std::vector<double> &d)
{
    Matrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
        m(i, i) = d[i];
    return m;
}

Matrix
Matrix::columnVector(const std::vector<double> &v)
{
    Matrix m(v.size(), 1);
    for (std::size_t i = 0; i < v.size(); ++i)
        m(i, 0) = v[i];
    return m;
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    MINDFUL_ASSERT(r < _rows && c < _cols, "matrix index out of range");
    return _data[r * _cols + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    MINDFUL_ASSERT(r < _rows && c < _cols, "matrix index out of range");
    return _data[r * _cols + c];
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    MINDFUL_ASSERT(_rows == other._rows && _cols == other._cols,
                   "matrix addition requires equal shapes");
    Matrix out(_rows, _cols);
    for (std::size_t i = 0; i < _data.size(); ++i)
        out._data[i] = _data[i] + other._data[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    MINDFUL_ASSERT(_rows == other._rows && _cols == other._cols,
                   "matrix subtraction requires equal shapes");
    Matrix out(_rows, _cols);
    for (std::size_t i = 0; i < _data.size(); ++i)
        out._data[i] = _data[i] - other._data[i];
    return out;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    MINDFUL_ASSERT(_cols == other._rows,
                   "matrix product shape mismatch: ", _rows, "x", _cols,
                   " * ", other._rows, "x", other._cols);
    Matrix out(_rows, other._cols);
    for (std::size_t i = 0; i < _rows; ++i) {
        for (std::size_t k = 0; k < _cols; ++k) {
            double aik = _data[i * _cols + k];
            if (aik == 0.0)
                continue;
            const double *brow = &other._data[k * other._cols];
            double *orow = &out._data[i * other._cols];
            for (std::size_t j = 0; j < other._cols; ++j)
                orow[j] += aik * brow[j];
        }
    }
    return out;
}

Matrix
Matrix::operator*(double k) const
{
    Matrix out(_rows, _cols);
    for (std::size_t i = 0; i < _data.size(); ++i)
        out._data[i] = _data[i] * k;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    MINDFUL_ASSERT(_rows == other._rows && _cols == other._cols,
                   "matrix addition requires equal shapes");
    for (std::size_t i = 0; i < _data.size(); ++i)
        _data[i] += other._data[i];
    return *this;
}

Matrix
Matrix::transpose() const
{
    Matrix out(_cols, _rows);
    for (std::size_t i = 0; i < _rows; ++i)
        for (std::size_t j = 0; j < _cols; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

Matrix
Matrix::inverse() const
{
    MINDFUL_ASSERT(_rows == _cols, "only square matrices invert");
    return solve(identity(_rows));
}

Matrix
Matrix::solve(const Matrix &b) const
{
    MINDFUL_ASSERT(_rows == _cols, "solve requires a square matrix");
    MINDFUL_ASSERT(b._rows == _rows, "solve rhs row count mismatch");

    // Augmented Gauss-Jordan with partial pivoting.
    const std::size_t n = _rows;
    Matrix a(*this);
    Matrix x(b);

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        double best = std::abs(a(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a(r, col)) > best) {
                best = std::abs(a(r, col));
                pivot = r;
            }
        }
        if (best < 1e-300) {
            MINDFUL_FATAL("singular matrix in solve (pivot ", best,
                          " at column ", col, ")");
        }
        if (pivot != col) {
            for (std::size_t j = 0; j < n; ++j)
                std::swap(a(col, j), a(pivot, j));
            for (std::size_t j = 0; j < x._cols; ++j)
                std::swap(x(col, j), x(pivot, j));
        }
        double inv_p = 1.0 / a(col, col);
        for (std::size_t j = 0; j < n; ++j)
            a(col, j) *= inv_p;
        for (std::size_t j = 0; j < x._cols; ++j)
            x(col, j) *= inv_p;
        for (std::size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            double factor = a(r, col);
            if (factor == 0.0)
                continue;
            for (std::size_t j = 0; j < n; ++j)
                a(r, j) -= factor * a(col, j);
            for (std::size_t j = 0; j < x._cols; ++j)
                x(r, j) -= factor * x(col, j);
        }
    }
    return x;
}

Matrix
Matrix::leastSquares(const Matrix &b, double lambda) const
{
    MINDFUL_ASSERT(b._rows == _rows, "leastSquares rhs row count mismatch");
    Matrix at = transpose();
    Matrix normal = at * (*this);
    for (std::size_t i = 0; i < normal.rows(); ++i)
        normal(i, i) += lambda;
    return normal.solve(at * b);
}

double
Matrix::norm() const
{
    double sum = 0.0;
    for (double v : _data)
        sum += v * v;
    return std::sqrt(sum);
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    MINDFUL_ASSERT(_rows == other._rows && _cols == other._cols,
                   "maxAbsDiff requires equal shapes");
    double worst = 0.0;
    for (std::size_t i = 0; i < _data.size(); ++i)
        worst = std::max(worst, std::abs(_data[i] - other._data[i]));
    return worst;
}

std::vector<double>
Matrix::toVector() const
{
    MINDFUL_ASSERT(_rows == 1 || _cols == 1,
                   "toVector requires a vector-shaped matrix");
    return _data;
}

std::ostream &
operator<<(std::ostream &os, const Matrix &m)
{
    os << '[';
    for (std::size_t i = 0; i < m.rows(); ++i) {
        if (i)
            os << "; ";
        for (std::size_t j = 0; j < m.cols(); ++j) {
            if (j)
                os << ' ';
            os << m(i, j);
        }
    }
    return os << ']';
}

} // namespace mindful
