/**
 * @file
 * Small dense matrix algebra.
 *
 * The decoder baselines (Kalman, Wiener) and the model-fitting code
 * need modest dense linear algebra: products, transposes, inverses
 * and least-squares solves on matrices with tens to a few hundred
 * rows. This is a deliberately simple row-major implementation with
 * partial-pivoting Gauss-Jordan elimination — no external BLAS.
 */

#ifndef MINDFUL_BASE_MATRIX_HH
#define MINDFUL_BASE_MATRIX_HH

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace mindful {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix of zeros. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initializer lists (rows of equal width). */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);
    static Matrix diagonal(const std::vector<double> &d);

    /** Column vector from a flat list. */
    static Matrix columnVector(const std::vector<double> &v);

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }
    bool empty() const { return _data.empty(); }

    double &operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(double k) const;

    Matrix &operator+=(const Matrix &other);

    Matrix transpose() const;

    /**
     * Inverse by Gauss-Jordan with partial pivoting.
     * Panics on non-square input; fatal on (near-)singular input.
     */
    Matrix inverse() const;

    /** Solve A x = b for x (b may have multiple columns). */
    Matrix solve(const Matrix &b) const;

    /**
     * Least-squares solve min ||A x - b||_2 via normal equations with
     * Tikhonov damping: x = (A^T A + lambda I)^-1 A^T b.
     */
    Matrix leastSquares(const Matrix &b, double lambda = 1e-9) const;

    /** Frobenius norm. */
    double norm() const;

    /** Max |a_ij - b_ij|; matrices must be the same shape. */
    double maxAbsDiff(const Matrix &other) const;

    /** Flatten a single-column/single-row matrix to a std::vector. */
    std::vector<double> toVector() const;

  private:
    std::size_t _rows = 0;
    std::size_t _cols = 0;
    std::vector<double> _data;
};

std::ostream &operator<<(std::ostream &os, const Matrix &m);

} // namespace mindful

#endif // MINDFUL_BASE_MATRIX_HH
