#include "base/parse.hh"

#include <charconv>
#include <cmath>

namespace mindful {

std::optional<double>
parseDouble(std::string_view text)
{
    // std::from_chars rejects a leading '+'; std::stod accepted it,
    // and existing catalogs may rely on that spelling.
    if (!text.empty() && text.front() == '+')
        text.remove_prefix(1);
    if (text.empty())
        return std::nullopt;
    double value = 0.0;
    const char *last = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(text.data(), last, value);
    if (ec != std::errc() || ptr != last || !std::isfinite(value))
        return std::nullopt;
    return value;
}

std::optional<std::uint64_t>
parseUnsigned(std::string_view text)
{
    if (!text.empty() && text.front() == '+')
        text.remove_prefix(1);
    if (text.empty())
        return std::nullopt;
    std::uint64_t value = 0;
    const char *last = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(text.data(), last, value);
    if (ec != std::errc() || ptr != last)
        return std::nullopt;
    return value;
}

std::optional<unsigned>
parseThreadCount(std::string_view text)
{
    std::optional<std::uint64_t> value = parseUnsigned(text);
    if (!value || *value > kMaxThreadCount)
        return std::nullopt;
    return static_cast<unsigned>(*value);
}

} // namespace mindful
