/**
 * @file
 * Locale-independent, non-throwing numeric parsing.
 *
 * Every user-facing input edge of the framework — catalog files,
 * bench/CLI flags, environment variables — parses numbers through
 * these helpers instead of `std::stod`/`std::stoul`. The std::sto*
 * family is interpreted in the process's C locale (a `de_DE`-style
 * locale stops consuming "3.14" at the decimal point) and throws on
 * malformed input; `std::strtoul` silently accepts trailing junk and
 * wraps negative input to huge values. These wrappers are built on
 * `std::from_chars`, which is defined to use the "C" locale grammar
 * regardless of the process locale, and they enforce strict
 * full-consume semantics: the entire input must be one number, or the
 * parse fails (returns std::nullopt, never throws).
 */

#ifndef MINDFUL_BASE_PARSE_HH
#define MINDFUL_BASE_PARSE_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace mindful {

/**
 * Parse a finite decimal floating-point number ("C"-locale grammar,
 * scientific notation allowed). A leading '+' is accepted for
 * compatibility with the historical std::stod-based parser; "inf",
 * "nan" and partially-consumed input are rejected.
 */
std::optional<double> parseDouble(std::string_view text);

/**
 * Parse a non-negative decimal integer exactly (no rounding through
 * double, so values above 2^53 survive bit-for-bit). Rejects signs
 * other than a leading '+', scientific notation, and trailing junk.
 */
std::optional<std::uint64_t> parseUnsigned(std::string_view text);

/** Widest thread count any knob accepts (0 means "automatic"). */
inline constexpr unsigned kMaxThreadCount = 4096;

/**
 * Parse a thread-count knob (`--threads`, `MINDFUL_THREADS`): a
 * non-negative integer with 0 meaning "use hardware concurrency".
 * Rejects negatives (no silent wraparound), trailing junk, and
 * counts above kMaxThreadCount.
 */
std::optional<unsigned> parseThreadCount(std::string_view text);

} // namespace mindful

#endif // MINDFUL_BASE_PARSE_HH
