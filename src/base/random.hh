/**
 * @file
 * Deterministic random number generation for the simulation substrates.
 *
 * All stochastic components (neural signal generation, AWGN channel
 * noise, Monte-Carlo BER measurement) draw from an explicitly seeded
 * Rng so that every experiment in this repository is reproducible
 * bit-for-bit.
 */

#ifndef MINDFUL_BASE_RANDOM_HH
#define MINDFUL_BASE_RANDOM_HH

#include <cstdint>
#include <random>

namespace mindful {

/** Thin, explicitly-seeded wrapper around std::mt19937_64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x4d494e44ull) : _engine(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(_engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(_engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(_engine);
    }

    /** Standard normal draw scaled to the given mean / stddev. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(_engine);
    }

    /** Poisson draw with the given mean. */
    std::uint32_t
    poisson(double mean)
    {
        return std::poisson_distribution<std::uint32_t>(mean)(_engine);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(_engine);
    }

    /** Raw 64-bit draw (for hashing / sub-seeding). */
    std::uint64_t bits() { return _engine(); }

    std::mt19937_64 &engine() { return _engine; }

  private:
    std::mt19937_64 _engine;
};

} // namespace mindful

#endif // MINDFUL_BASE_RANDOM_HH
