/**
 * @file
 * Deterministic random number generation for the simulation substrates.
 *
 * All stochastic components (neural signal generation, AWGN channel
 * noise, Monte-Carlo BER measurement) draw from an explicitly seeded
 * Rng so that every experiment in this repository is reproducible
 * bit-for-bit.
 */

#ifndef MINDFUL_BASE_RANDOM_HH
#define MINDFUL_BASE_RANDOM_HH

#include <cstdint>
#include <random>

namespace mindful {

/**
 * Thin, explicitly-seeded wrapper around std::mt19937_64.
 *
 * Independent sub-streams come from fork(): each distinct stream
 * index yields a child whose seed is a splitmix64 mix of the parent
 * seed and the index. Never seed a child engine from a raw bits()
 * draw of the parent — consecutive mt19937_64 outputs make poor
 * seeds and the resulting streams are correlated; fork() exists so
 * every shard / restart / channel gets a well-mixed stream that is
 * reproducible independent of how many threads consume them.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x4d494e44ull)
        : _seed(seed), _engine(seed)
    {
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(_engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(_engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(_engine);
    }

    /** Standard normal draw scaled to the given mean / stddev. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(_engine);
    }

    /** Poisson draw with the given mean. */
    std::uint32_t
    poisson(double mean)
    {
        return std::poisson_distribution<std::uint32_t>(mean)(_engine);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(_engine);
    }

    /** Raw 64-bit draw (for hashing; use fork() for sub-streams). */
    std::uint64_t bits() { return _engine(); }

    std::mt19937_64 &engine() { return _engine; }

    /** The seed this Rng (or fork) was constructed with. */
    std::uint64_t seed() const { return _seed; }

    /**
     * Independent child stream @p stream, derived from the *seed*
     * (not the current engine position): fork(i) always denotes the
     * same stream for a given parent, so shard i of a parallel
     * Monte-Carlo draws identical values whether one thread or
     * sixteen execute the shards. Forks of forks chain the mix, so
     * hierarchical stream trees stay independent.
     */
    Rng
    fork(std::uint64_t stream) const
    {
        return Rng(splitmix64(splitmix64(_seed) ^ splitmix64(~stream)));
    }

    /** One round of the splitmix64 output mix (public for tests). */
    static constexpr std::uint64_t
    splitmix64(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

  private:
    std::uint64_t _seed;
    std::mt19937_64 _engine;
};

} // namespace mindful

#endif // MINDFUL_BASE_RANDOM_HH
