#include "base/special_math.hh"

#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace mindful {

double
qFunction(double x)
{
    // Q(x) = 0.5 * erfc(x / sqrt(2)); erfc keeps precision for large x
    // where 1 - Phi(x) would underflow to zero catastrophically.
    return 0.5 * std::erfc(x / std::sqrt(2.0));
}

namespace {

/**
 * Acklam-style rational initial estimate of the standard normal
 * quantile, refined below by Newton steps against erfc.
 */
double
normalQuantileEstimate(double p)
{
    // Coefficients from Peter Acklam's algorithm (relative error
    // below 1.15e-9 on its own).
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;

    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
               ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
    }
    if (p <= p_high) {
        double q = p - 0.5;
        double r = q * q;
        return (((((a[0]*r + a[1])*r + a[2])*r + a[3])*r + a[4])*r + a[5])*q /
               (((((b[0]*r + b[1])*r + b[2])*r + b[3])*r + b[4])*r + 1.0);
    }
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
           ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1.0);
}

} // namespace

double
qFunctionInverse(double p)
{
    MINDFUL_ASSERT(p > 0.0 && p < 1.0,
                   "qFunctionInverse requires p in (0,1), got ", p);

    // Q(x) = p  <=>  x = -Phi^{-1}(p)  (quantile of the upper tail).
    double x = -normalQuantileEstimate(p);

    // Newton refinement on f(x) = Q(x) - p; f'(x) = -phi(x).
    for (int i = 0; i < 4; ++i) {
        double err = qFunction(x) - p;
        double pdf =
            std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
        if (pdf <= std::numeric_limits<double>::min())
            break;
        x += err / pdf;
    }
    return x;
}

double
erfcInverse(double p)
{
    MINDFUL_ASSERT(p > 0.0 && p < 2.0,
                   "erfcInverse requires p in (0,2), got ", p);
    // erfc(x) = 2 Q(x sqrt(2))  =>  erfc^{-1}(p) = Q^{-1}(p/2) / sqrt(2).
    return qFunctionInverse(p / 2.0) / std::sqrt(2.0);
}

double
bisect(const std::function<double(double)> &fn, double lo, double hi,
       double tol, int max_iter)
{
    MINDFUL_ASSERT(lo <= hi, "bisect: inverted bracket [", lo, ", ", hi, "]");

    double flo = fn(lo);
    double fhi = fn(hi);
    if (flo == 0.0)
        return lo;
    if (fhi == 0.0)
        return hi;
    MINDFUL_ASSERT(std::signbit(flo) != std::signbit(fhi),
                   "bisect: fn(lo) and fn(hi) have the same sign");

    for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
        double mid = 0.5 * (lo + hi);
        double fmid = fn(mid);
        if (fmid == 0.0)
            return mid;
        if (std::signbit(fmid) == std::signbit(flo)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

std::int64_t
binarySearchFirstTrue(std::int64_t lo, std::int64_t hi,
                      const std::function<bool(std::int64_t)> &pred)
{
    std::int64_t result = hi + 1;
    while (lo <= hi) {
        std::int64_t mid = lo + (hi - lo) / 2;
        if (pred(mid)) {
            result = mid;
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }
    return result;
}

std::int64_t
binarySearchLastTrue(std::int64_t lo, std::int64_t hi,
                     const std::function<bool(std::int64_t)> &pred)
{
    std::int64_t result = lo - 1;
    while (lo <= hi) {
        std::int64_t mid = lo + (hi - lo) / 2;
        if (pred(mid)) {
            result = mid;
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return result;
}

} // namespace mindful
