/**
 * @file
 * Special functions and small numeric helpers.
 *
 * The communication models need the Gaussian Q-function and its
 * inverse (for BER equations), and several modules need robust
 * ceiling division and bracketed root finding.
 */

#ifndef MINDFUL_BASE_SPECIAL_MATH_HH
#define MINDFUL_BASE_SPECIAL_MATH_HH

#include <cstdint>
#include <functional>

namespace mindful {

/**
 * Gaussian tail probability Q(x) = P[N(0,1) > x].
 *
 * Implemented via std::erfc for full double-precision accuracy over
 * the whole real line.
 */
double qFunction(double x);

/**
 * Inverse of the Gaussian Q-function.
 *
 * @param p tail probability in (0, 1).
 * @return x such that Q(x) = p, accurate to ~1e-12 relative.
 */
double qFunctionInverse(double p);

/** Inverse complementary error function on (0, 2). */
double erfcInverse(double p);

/** Ceiling integer division for non-negative operands. */
constexpr std::uint64_t
ceilDiv(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0 : (num + den - 1) / den;
}

/**
 * Find a root of @p fn on the bracket [lo, hi] by bisection.
 *
 * Requires fn(lo) and fn(hi) to have opposite signs (or one of them
 * to be zero). Runs until the bracket is narrower than @p tol or
 * @p max_iter iterations have elapsed.
 *
 * @return the midpoint of the final bracket.
 */
double bisect(const std::function<double(double)> &fn, double lo, double hi,
              double tol = 1e-12, int max_iter = 200);

/**
 * Smallest integer n in [lo, hi] for which @p pred(n) is true, under
 * the assumption that pred is monotone (false ... false true ... true).
 *
 * @return hi + 1 when pred is false over the whole range.
 */
std::int64_t
binarySearchFirstTrue(std::int64_t lo, std::int64_t hi,
                      const std::function<bool(std::int64_t)> &pred);

/**
 * Largest integer n in [lo, hi] for which @p pred(n) is true, under
 * the assumption that pred is monotone (true ... true false ... false).
 *
 * @return lo - 1 when pred is false over the whole range.
 */
std::int64_t
binarySearchLastTrue(std::int64_t lo, std::int64_t hi,
                     const std::function<bool(std::int64_t)> &pred);

} // namespace mindful

#endif // MINDFUL_BASE_SPECIAL_MATH_HH
