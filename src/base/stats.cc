#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mindful {

void
RunningStats::add(double x)
{
    ++_count;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    double total = static_cast<double>(_count + other._count);
    double delta = other._mean - _mean;
    _m2 += other._m2 + delta * delta *
           (static_cast<double>(_count) * static_cast<double>(other._count)) /
           total;
    _mean += delta * static_cast<double>(other._count) / total;
    _count += other._count;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

double
RunningStats::variance() const
{
    return _count < 2 ? 0.0 : _m2 / static_cast<double>(_count);
}

double
RunningStats::sampleVariance() const
{
    return _count < 2 ? 0.0 : _m2 / static_cast<double>(_count - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : _lo(lo), _width((hi - lo) / static_cast<double>(bins)),
      _counts(bins, 0)
{
    MINDFUL_ASSERT(hi > lo, "Histogram range must be non-empty");
    MINDFUL_ASSERT(bins > 0, "Histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++_total;
    if (x < _lo) {
        ++_underflow;
        return;
    }
    auto idx = static_cast<std::size_t>((x - _lo) / _width);
    if (idx >= _counts.size()) {
        ++_overflow;
        return;
    }
    ++_counts[idx];
}

double
Histogram::binCentre(std::size_t i) const
{
    return _lo + (static_cast<double>(i) + 0.5) * _width;
}

double
Histogram::binFraction(std::size_t i) const
{
    return _total == 0
               ? 0.0
               : static_cast<double>(_counts.at(i)) /
                     static_cast<double>(_total);
}

} // namespace mindful
