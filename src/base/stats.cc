#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mindful {

void
RunningStats::add(double x)
{
    ++_count;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    double total = static_cast<double>(_count + other._count);
    double delta = other._mean - _mean;
    _m2 += other._m2 + delta * delta *
           (static_cast<double>(_count) * static_cast<double>(other._count)) /
           total;
    _mean += delta * static_cast<double>(other._count) / total;
    _count += other._count;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

double
RunningStats::variance() const
{
    // n = 0 and n = 1 have no spread; cancellation in merge() can
    // leave _m2 a hair below zero, so clamp instead of surfacing a
    // negative variance (and a NaN stddev).
    if (_count < 2)
        return 0.0;
    return std::max(0.0, _m2 / static_cast<double>(_count));
}

double
RunningStats::sampleVariance() const
{
    if (_count < 2)
        return 0.0;
    return std::max(0.0, _m2 / static_cast<double>(_count - 1));
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : _lo(lo), _width((hi - lo) / static_cast<double>(bins)),
      _counts(bins, 0)
{
    MINDFUL_ASSERT(hi > lo, "Histogram range must be non-empty");
    MINDFUL_ASSERT(bins > 0, "Histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++_total;
    if (x < _lo) {
        ++_underflow;
        return;
    }
    auto idx = static_cast<std::size_t>((x - _lo) / _width);
    if (idx >= _counts.size()) {
        ++_overflow;
        return;
    }
    ++_counts[idx];
}

double
Histogram::binCentre(std::size_t i) const
{
    return _lo + (static_cast<double>(i) + 0.5) * _width;
}

double
Histogram::binFraction(std::size_t i) const
{
    return _total == 0
               ? 0.0
               : static_cast<double>(_counts.at(i)) /
                     static_cast<double>(_total);
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins)
    : _lo(lo), _hi(hi), _counts(bins, 0)
{
    MINDFUL_ASSERT(lo > 0.0, "LogHistogram lower edge must be positive");
    MINDFUL_ASSERT(hi > lo, "LogHistogram range must be non-empty");
    MINDFUL_ASSERT(bins > 0, "LogHistogram needs at least one bin");
    _invLogRatio =
        static_cast<double>(bins) / (std::log(hi) - std::log(lo));
}

void
LogHistogram::add(double x)
{
    ++_total;
    _min = std::min(_min, x);
    _max = std::max(_max, x);
    if (x < _lo) {
        ++_underflow;
        return;
    }
    // Test >= hi directly rather than relying on the bucket index
    // computation: rounding in log() can place x == hi a hair inside
    // the last bin, breaking the exclusive right edge.
    if (x >= _hi) {
        ++_overflow;
        return;
    }
    auto idx = static_cast<std::size_t>(
        (std::log(x) - std::log(_lo)) * _invLogRatio);
    if (idx >= _counts.size()) {
        ++_overflow;
        return;
    }
    ++_counts[idx];
}

void
LogHistogram::merge(const LogHistogram &other)
{
    MINDFUL_ASSERT(_lo == other._lo && _hi == other._hi &&
                       _counts.size() == other._counts.size(),
                   "cannot merge LogHistograms with different layouts");
    for (std::size_t i = 0; i < _counts.size(); ++i)
        _counts[i] += other._counts[i];
    _underflow += other._underflow;
    _overflow += other._overflow;
    _total += other._total;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

double
LogHistogram::binLowerEdge(std::size_t i) const
{
    MINDFUL_ASSERT(i < _counts.size(), "bin index out of range");
    double frac = static_cast<double>(i) /
                  static_cast<double>(_counts.size());
    return _lo * std::pow(_hi / _lo, frac);
}

double
LogHistogram::binUpperEdge(std::size_t i) const
{
    MINDFUL_ASSERT(i < _counts.size(), "bin index out of range");
    double frac = static_cast<double>(i + 1) /
                  static_cast<double>(_counts.size());
    return _lo * std::pow(_hi / _lo, frac);
}

double
LogHistogram::percentile(double p) const
{
    MINDFUL_ASSERT(p >= 0.0 && p <= 100.0,
                   "percentile must lie in [0, 100]");
    if (_total == 0)
        return 0.0;

    // Nearest-rank: the k-th smallest sample with k = ceil(p/100 * n),
    // at least 1.
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(_total)));
    rank = std::max<std::size_t>(rank, 1);

    std::size_t cumulative = _underflow;
    if (rank <= cumulative)
        return _min; // somewhere below the histogram range
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        cumulative += _counts[i];
        if (rank <= cumulative) {
            // Geometric midpoint of the bucket, clamped to the true
            // extrema so single-bucket distributions stay exact-ish.
            double mid =
                std::sqrt(binLowerEdge(i) * binUpperEdge(i));
            return std::clamp(mid, _min, _max);
        }
    }
    return _max; // in the overflow bucket
}

} // namespace mindful
