/**
 * @file
 * Streaming statistics accumulators.
 *
 * Used by the Monte-Carlo channel simulator, the neural signal
 * generator tests, and the benchmark harnesses to summarize series
 * without storing them.
 */

#ifndef MINDFUL_BASE_STATS_HH
#define MINDFUL_BASE_STATS_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace mindful {

/**
 * Welford-style running mean / variance / extrema accumulator.
 *
 * Numerically stable for long streams; O(1) memory.
 */
class RunningStats
{
  public:
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &other);

    std::size_t count() const { return _count; }

    /** Mean of the samples; 0 when no samples have been added. */
    double mean() const { return _mean; }

    /**
     * Population variance (n divisor).
     *
     * Defined as 0 for n = 0 (no data) and n = 1 (a single sample has
     * no spread); never negative even when floating-point cancellation
     * drives the internal sum of squares slightly below zero.
     */
    double variance() const;

    /**
     * Sample variance (n - 1 divisor, Bessel's correction).
     *
     * Undefined for fewer than 2 samples; returns 0 there (n = 0, 1)
     * rather than dividing by zero. Clamped at 0 like variance().
     */
    double sampleVariance() const;

    double stddev() const;
    double min() const { return _min; }
    double max() const { return _max; }
    double sum() const { return _mean * static_cast<double>(_count); }

  private:
    std::size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-range linear histogram.
 *
 * Values below the range land in an underflow bucket, above it in an
 * overflow bucket, so totals are never silently lost.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin.
     * @param hi upper edge of the last bin; must exceed @p lo.
     * @param bins number of bins; must be positive.
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return _counts.size(); }
    std::size_t binCount(std::size_t i) const { return _counts.at(i); }
    std::size_t underflow() const { return _underflow; }
    std::size_t overflow() const { return _overflow; }
    std::size_t total() const { return _total; }

    /** Centre value of bin @p i. */
    double binCentre(std::size_t i) const;

    /** Fraction of all samples (including under/overflow) in bin i. */
    double binFraction(std::size_t i) const;

  private:
    double _lo;
    double _width;
    std::vector<std::size_t> _counts;
    std::size_t _underflow = 0;
    std::size_t _overflow = 0;
    std::size_t _total = 0;
};

/**
 * Log-spaced (geometric) histogram with quantile estimation.
 *
 * Covers [lo, hi) with bins whose edges grow by a constant ratio, so
 * a single histogram spans many orders of magnitude (nanoseconds to
 * seconds, picojoules to joules) at a bounded relative error. Values
 * below @p lo — including zero and negatives, for which a log bucket
 * does not exist — land in the underflow bucket; values at or above
 * @p hi land in the overflow bucket. True extrema are tracked exactly
 * so percentile() can clamp its bucket interpolation.
 *
 * The metric registry (src/obs) uses this as its latency/energy
 * distribution type; merge() supports the same parallel-reduction
 * pattern as RunningStats::merge.
 */
class LogHistogram
{
  public:
    /**
     * @param lo lower edge of the first bin; must be positive.
     * @param hi upper edge of the last bin; must exceed @p lo.
     * @param bins number of bins; must be positive.
     */
    LogHistogram(double lo, double hi, std::size_t bins);

    void add(double x);

    /**
     * Merge another histogram into this one. Both must have identical
     * bucket layouts (same lo, hi, bin count).
     */
    void merge(const LogHistogram &other);

    std::size_t bins() const { return _counts.size(); }
    std::size_t binCount(std::size_t i) const { return _counts.at(i); }
    std::size_t underflow() const { return _underflow; }
    std::size_t overflow() const { return _overflow; }
    std::size_t total() const { return _total; }

    double lowerBound() const { return _lo; }
    double upperBound() const { return _hi; }

    /** Lower edge of bin @p i (== lo * ratio^i). */
    double binLowerEdge(std::size_t i) const;

    /** Upper edge of bin @p i (== lower edge of bin i + 1). */
    double binUpperEdge(std::size_t i) const;

    /** Smallest / largest value ever added (exact, not bucketed). */
    double min() const { return _min; }
    double max() const { return _max; }

    /**
     * Estimate the @p p-th percentile (p in [0, 100]) by nearest-rank
     * over the bucket counts, interpolating to the geometric midpoint
     * of the selected bucket and clamping to the exact extrema. The
     * relative error is bounded by one bucket ratio. Returns 0 when
     * the histogram is empty.
     */
    double percentile(double p) const;

  private:
    double _lo;
    double _hi;
    double _invLogRatio; //!< 1 / ln(edge ratio), for O(1) bucketing
    std::vector<std::size_t> _counts;
    std::size_t _underflow = 0;
    std::size_t _overflow = 0;
    std::size_t _total = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

} // namespace mindful

#endif // MINDFUL_BASE_STATS_HH
