/**
 * @file
 * Streaming statistics accumulators.
 *
 * Used by the Monte-Carlo channel simulator, the neural signal
 * generator tests, and the benchmark harnesses to summarize series
 * without storing them.
 */

#ifndef MINDFUL_BASE_STATS_HH
#define MINDFUL_BASE_STATS_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace mindful {

/**
 * Welford-style running mean / variance / extrema accumulator.
 *
 * Numerically stable for long streams; O(1) memory.
 */
class RunningStats
{
  public:
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStats &other);

    std::size_t count() const { return _count; }
    double mean() const { return _mean; }

    /** Population variance (n divisor); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample variance (n - 1 divisor); 0 for fewer than 2 samples. */
    double sampleVariance() const;

    double stddev() const;
    double min() const { return _min; }
    double max() const { return _max; }
    double sum() const { return _mean * static_cast<double>(_count); }

  private:
    std::size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-range linear histogram.
 *
 * Values below the range land in an underflow bucket, above it in an
 * overflow bucket, so totals are never silently lost.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin.
     * @param hi upper edge of the last bin; must exceed @p lo.
     * @param bins number of bins; must be positive.
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return _counts.size(); }
    std::size_t binCount(std::size_t i) const { return _counts.at(i); }
    std::size_t underflow() const { return _underflow; }
    std::size_t overflow() const { return _overflow; }
    std::size_t total() const { return _total; }

    /** Centre value of bin @p i. */
    double binCentre(std::size_t i) const;

    /** Fraction of all samples (including under/overflow) in bin i. */
    double binFraction(std::size_t i) const;

  private:
    double _lo;
    double _width;
    std::vector<std::size_t> _counts;
    std::size_t _underflow = 0;
    std::size_t _overflow = 0;
    std::size_t _total = 0;
};

} // namespace mindful

#endif // MINDFUL_BASE_STATS_HH
