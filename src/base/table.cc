#include "base/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace mindful {

void
Table::setHeader(std::vector<std::string> header)
{
    MINDFUL_ASSERT(!header.empty(), "Table header must not be empty");
    _header = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    MINDFUL_ASSERT(row.size() == _header.size(),
                   "Table row width ", row.size(),
                   " != header width ", _header.size());
    _rows.push_back(std::move(row));
}

void
Table::addNumericRow(const std::vector<double> &row, int precision)
{
    std::vector<std::string> formatted;
    formatted.reserve(row.size());
    for (double v : row)
        formatted.push_back(formatNumber(v, precision));
    addRow(std::move(formatted));
}

std::string
Table::formatNumber(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    std::string s = os.str();
    // Trim trailing zeros (and a dangling decimal point) for clean
    // tables; "2.500" -> "2.5", "4.000" -> "4".
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
    }
    return s;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_header.size(), 0);
    for (std::size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << ' ' << std::setw(static_cast<int>(widths[c]))
               << std::left << cells[c] << " |";
        os << '\n';
    };

    if (!_title.empty())
        os << _title << '\n';
    rule();
    line(_header);
    rule();
    for (const auto &row : _rows)
        line(row);
    rule();
}

namespace {

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(cells[c]);
        }
        os << '\n';
    };
    emit(_header);
    for (const auto &row : _rows)
        emit(row);
}

} // namespace mindful
