/**
 * @file
 * Plain-text table and CSV emission.
 *
 * Every benchmark binary regenerates one table or figure of the
 * paper; Table renders the rows legibly on a terminal and can also
 * dump them as CSV for external plotting.
 */

#ifndef MINDFUL_BASE_TABLE_HH
#define MINDFUL_BASE_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace mindful {

/** Column-aligned text table with an optional title and CSV export. */
class Table
{
  public:
    explicit Table(std::string title = "") : _title(std::move(title)) {}

    /** Set the column headers; resets any existing rows' alignment. */
    void setHeader(std::vector<std::string> header);

    /** Append a fully-formatted row. Must match the header width. */
    void addRow(std::vector<std::string> row);

    /**
     * Append a row of doubles formatted with @p precision significant
     * decimal digits.
     */
    void addNumericRow(const std::vector<double> &row, int precision = 3);

    std::size_t rows() const { return _rows.size(); }
    std::size_t columns() const { return _header.size(); }

    /** Render as an aligned text table. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-style CSV (quoting fields with commas). */
    void printCsv(std::ostream &os) const;

    /** Format a double with fixed precision (helper for callers). */
    static std::string formatNumber(double v, int precision = 3);

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace mindful

#endif // MINDFUL_BASE_TABLE_HH
