#include "base/units.hh"

#include <ostream>

namespace mindful {

namespace {

/** Print a value with a short unit suffix, trimming noise digits. */
std::ostream &
printUnit(std::ostream &os, double value, const char *unit)
{
    os << value << ' ' << unit;
    return os;
}

} // namespace

std::ostream &
operator<<(std::ostream &os, Power p)
{
    return printUnit(os, p.inMilliwatts(), "mW");
}

std::ostream &
operator<<(std::ostream &os, Length l)
{
    return printUnit(os, l.inMillimetres(), "mm");
}

std::ostream &
operator<<(std::ostream &os, ThermalConductivity k)
{
    return printUnit(os, k.inWattsPerMetreKelvin(), "W/(m K)");
}

std::ostream &
operator<<(std::ostream &os, MassDensity rho)
{
    return printUnit(os, rho.inKilogramsPerCubicMetre(), "kg/m^3");
}

std::ostream &
operator<<(std::ostream &os, SpecificHeat c)
{
    return printUnit(os, c.inJoulesPerKilogramKelvin(), "J/(kg K)");
}

std::ostream &
operator<<(std::ostream &os, Area a)
{
    return printUnit(os, a.inSquareMillimetres(), "mm^2");
}

std::ostream &
operator<<(std::ostream &os, PowerDensity d)
{
    return printUnit(os, d.inMilliwattsPerSquareCentimetre(), "mW/cm^2");
}

std::ostream &
operator<<(std::ostream &os, Energy e)
{
    return printUnit(os, e.inPicojoules(), "pJ");
}

std::ostream &
operator<<(std::ostream &os, EnergyPerBit eb)
{
    return printUnit(os, eb.inPicojoulesPerBit(), "pJ/b");
}

std::ostream &
operator<<(std::ostream &os, Frequency f)
{
    return printUnit(os, f.inKilohertz(), "kHz");
}

std::ostream &
operator<<(std::ostream &os, Time t)
{
    return printUnit(os, t.inMicroseconds(), "us");
}

std::ostream &
operator<<(std::ostream &os, DataRate r)
{
    return printUnit(os, r.inMegabitsPerSecond(), "Mbps");
}

std::ostream &
operator<<(std::ostream &os, TemperatureDelta dt)
{
    return printUnit(os, dt.inKelvin(), "degC");
}

} // namespace mindful
