/**
 * @file
 * Strong unit types for the quantities the MINDFUL framework trades in.
 *
 * Every quantity is stored internally in SI base units (watts, square
 * metres, joules, hertz, bits per second, seconds) and exposed through
 * named factory functions and accessors in the units BCI papers use
 * (mW, mm^2, mW/cm^2, pJ/b, kHz, Mbps). Mixing units without an
 * explicit conversion is therefore a compile error, which removes the
 * single largest class of mistakes in power-budget arithmetic.
 */

#ifndef MINDFUL_BASE_UNITS_HH
#define MINDFUL_BASE_UNITS_HH

#include <cmath>
#include <compare>
#include <iosfwd>

#include "base/logging.hh"

namespace mindful {

namespace detail {

/**
 * CRTP base for a double-backed quantity. Provides the arithmetic
 * that is dimensionally valid for any quantity: addition and
 * subtraction with itself, scaling by dimensionless factors, and
 * dimensionless ratios.
 */
template <typename Derived>
class Quantity
{
  public:
    constexpr Quantity() = default;

    /** Raw value in the canonical (SI) unit. */
    constexpr double raw() const { return _value; }

    constexpr Derived
    operator+(Derived other) const
    {
        return Derived::fromRaw(_value + other.raw());
    }

    constexpr Derived
    operator-(Derived other) const
    {
        return Derived::fromRaw(_value - other.raw());
    }

    constexpr Derived operator-() const { return Derived::fromRaw(-_value); }

    constexpr Derived
    operator*(double k) const
    {
        return Derived::fromRaw(_value * k);
    }

    constexpr Derived
    operator/(double k) const
    {
        return Derived::fromRaw(_value / k);
    }

    /** Ratio of two like quantities is dimensionless. */
    constexpr double
    operator/(Derived other) const
    {
        return _value / other.raw();
    }

    Derived &
    operator+=(Derived other)
    {
        _value += other.raw();
        return static_cast<Derived &>(*this);
    }

    Derived &
    operator-=(Derived other)
    {
        _value -= other.raw();
        return static_cast<Derived &>(*this);
    }

    Derived &
    operator*=(double k)
    {
        _value *= k;
        return static_cast<Derived &>(*this);
    }

    constexpr auto operator<=>(const Quantity &) const = default;
    constexpr bool operator==(const Quantity &) const = default;

    bool isFinite() const { return std::isfinite(_value); }

  protected:
    constexpr explicit Quantity(double value) : _value(value) {}

    double _value = 0.0;
};

} // namespace detail

/** Dimensionless scalar on the left of a scaling product. */
template <typename Derived>
constexpr Derived
operator*(double k, const detail::Quantity<Derived> &q)
{
    return Derived::fromRaw(k * q.raw());
}

#define MINDFUL_QUANTITY_BOILERPLATE(Name) \
  public: \
    constexpr Name() = default; \
    static constexpr Name fromRaw(double v) { return Name(v); } \
  private: \
    constexpr explicit Name(double v) : Quantity(v) {} \
    friend class detail::Quantity<Name>;

/** Electrical power; canonical unit: watt. */
class Power : public detail::Quantity<Power>
{
    MINDFUL_QUANTITY_BOILERPLATE(Power)

  public:
    static constexpr Power watts(double w) { return Power(w); }
    static constexpr Power milliwatts(double mw) { return Power(mw * 1e-3); }
    static constexpr Power microwatts(double uw) { return Power(uw * 1e-6); }
    static constexpr Power nanowatts(double nw) { return Power(nw * 1e-9); }

    constexpr double inWatts() const { return _value; }
    constexpr double inMilliwatts() const { return _value * 1e3; }
    constexpr double inMicrowatts() const { return _value * 1e6; }
};

/** Chip surface area; canonical unit: square metre. */
class Area : public detail::Quantity<Area>
{
    MINDFUL_QUANTITY_BOILERPLATE(Area)

  public:
    static constexpr Area squareMetres(double m2) { return Area(m2); }
    static constexpr Area squareCentimetres(double cm2)
    {
        return Area(cm2 * 1e-4);
    }
    static constexpr Area squareMillimetres(double mm2)
    {
        return Area(mm2 * 1e-6);
    }
    static constexpr Area squareMicrometres(double um2)
    {
        return Area(um2 * 1e-12);
    }

    constexpr double inSquareMetres() const { return _value; }
    constexpr double inSquareCentimetres() const { return _value * 1e4; }
    constexpr double inSquareMillimetres() const { return _value * 1e6; }
    constexpr double inSquareMicrometres() const { return _value * 1e12; }
};

/** Areal power density; canonical unit: watt per square metre. */
class PowerDensity : public detail::Quantity<PowerDensity>
{
    MINDFUL_QUANTITY_BOILERPLATE(PowerDensity)

  public:
    static constexpr PowerDensity wattsPerSquareMetre(double v)
    {
        return PowerDensity(v);
    }
    static constexpr PowerDensity milliwattsPerSquareCentimetre(double v)
    {
        // 1 mW/cm^2 = 1e-3 W / 1e-4 m^2 = 10 W/m^2.
        return PowerDensity(v * 10.0);
    }

    constexpr double inWattsPerSquareMetre() const { return _value; }
    constexpr double inMilliwattsPerSquareCentimetre() const
    {
        return _value / 10.0;
    }
};

/** Energy; canonical unit: joule. */
class Energy : public detail::Quantity<Energy>
{
    MINDFUL_QUANTITY_BOILERPLATE(Energy)

  public:
    static constexpr Energy joules(double j) { return Energy(j); }
    static constexpr Energy millijoules(double mj) { return Energy(mj*1e-3); }
    static constexpr Energy microjoules(double uj) { return Energy(uj*1e-6); }
    static constexpr Energy nanojoules(double nj) { return Energy(nj * 1e-9); }
    static constexpr Energy picojoules(double pj) { return Energy(pj*1e-12); }

    constexpr double inJoules() const { return _value; }
    constexpr double inNanojoules() const { return _value * 1e9; }
    constexpr double inPicojoules() const { return _value * 1e12; }
};

/** Energy spent per transmitted bit; canonical unit: joule per bit. */
class EnergyPerBit : public detail::Quantity<EnergyPerBit>
{
    MINDFUL_QUANTITY_BOILERPLATE(EnergyPerBit)

  public:
    static constexpr EnergyPerBit joulesPerBit(double v)
    {
        return EnergyPerBit(v);
    }
    static constexpr EnergyPerBit picojoulesPerBit(double v)
    {
        return EnergyPerBit(v * 1e-12);
    }
    static constexpr EnergyPerBit nanojoulesPerBit(double v)
    {
        return EnergyPerBit(v * 1e-9);
    }

    constexpr double inJoulesPerBit() const { return _value; }
    constexpr double inPicojoulesPerBit() const { return _value * 1e12; }
};

/** Frequency; canonical unit: hertz. */
class Frequency : public detail::Quantity<Frequency>
{
    MINDFUL_QUANTITY_BOILERPLATE(Frequency)

  public:
    static constexpr Frequency hertz(double hz) { return Frequency(hz); }
    static constexpr Frequency kilohertz(double khz)
    {
        return Frequency(khz * 1e3);
    }
    static constexpr Frequency megahertz(double mhz)
    {
        return Frequency(mhz * 1e6);
    }
    static constexpr Frequency gigahertz(double ghz)
    {
        return Frequency(ghz * 1e9);
    }

    constexpr double inHertz() const { return _value; }
    constexpr double inKilohertz() const { return _value * 1e-3; }
    constexpr double inMegahertz() const { return _value * 1e-6; }
};

/** Time interval; canonical unit: second. */
class Time : public detail::Quantity<Time>
{
    MINDFUL_QUANTITY_BOILERPLATE(Time)

  public:
    static constexpr Time seconds(double s) { return Time(s); }
    static constexpr Time milliseconds(double ms) { return Time(ms * 1e-3); }
    static constexpr Time microseconds(double us) { return Time(us * 1e-6); }
    static constexpr Time nanoseconds(double ns) { return Time(ns * 1e-9); }

    constexpr double inSeconds() const { return _value; }
    constexpr double inMilliseconds() const { return _value * 1e3; }
    constexpr double inMicroseconds() const { return _value * 1e6; }
    constexpr double inNanoseconds() const { return _value * 1e9; }
};

/** Data rate; canonical unit: bit per second. */
class DataRate : public detail::Quantity<DataRate>
{
    MINDFUL_QUANTITY_BOILERPLATE(DataRate)

  public:
    static constexpr DataRate bitsPerSecond(double v) { return DataRate(v); }
    static constexpr DataRate kilobitsPerSecond(double v)
    {
        return DataRate(v * 1e3);
    }
    static constexpr DataRate megabitsPerSecond(double v)
    {
        return DataRate(v * 1e6);
    }

    constexpr double inBitsPerSecond() const { return _value; }
    constexpr double inMegabitsPerSecond() const { return _value * 1e-6; }
};

/** Spatial length; canonical unit: metre. */
class Length : public detail::Quantity<Length>
{
    MINDFUL_QUANTITY_BOILERPLATE(Length)

  public:
    static constexpr Length metres(double m) { return Length(m); }
    static constexpr Length centimetres(double cm)
    {
        return Length(cm * 1e-2);
    }
    static constexpr Length millimetres(double mm)
    {
        return Length(mm * 1e-3);
    }
    static constexpr Length micrometres(double um)
    {
        return Length(um * 1e-6);
    }

    constexpr double inMetres() const { return _value; }
    constexpr double inCentimetres() const { return _value * 1e2; }
    constexpr double inMillimetres() const { return _value * 1e3; }
    constexpr double inMicrometres() const { return _value * 1e6; }
};

/** Thermal conductivity; canonical unit: watt per metre-kelvin. */
class ThermalConductivity : public detail::Quantity<ThermalConductivity>
{
    MINDFUL_QUANTITY_BOILERPLATE(ThermalConductivity)

  public:
    static constexpr ThermalConductivity wattsPerMetreKelvin(double v)
    {
        return ThermalConductivity(v);
    }

    constexpr double inWattsPerMetreKelvin() const { return _value; }
};

/** Mass density; canonical unit: kilogram per cubic metre. */
class MassDensity : public detail::Quantity<MassDensity>
{
    MINDFUL_QUANTITY_BOILERPLATE(MassDensity)

  public:
    static constexpr MassDensity kilogramsPerCubicMetre(double v)
    {
        return MassDensity(v);
    }
    static constexpr MassDensity gramsPerCubicCentimetre(double v)
    {
        // 1 g/cm^3 = 1e-3 kg / 1e-6 m^3 = 1e3 kg/m^3.
        return MassDensity(v * 1e3);
    }

    constexpr double inKilogramsPerCubicMetre() const { return _value; }
};

/** Specific heat capacity; canonical unit: joule per kilogram-kelvin. */
class SpecificHeat : public detail::Quantity<SpecificHeat>
{
    MINDFUL_QUANTITY_BOILERPLATE(SpecificHeat)

  public:
    static constexpr SpecificHeat joulesPerKilogramKelvin(double v)
    {
        return SpecificHeat(v);
    }

    constexpr double inJoulesPerKilogramKelvin() const { return _value; }
};

/** Temperature difference; canonical unit: kelvin. */
class TemperatureDelta : public detail::Quantity<TemperatureDelta>
{
    MINDFUL_QUANTITY_BOILERPLATE(TemperatureDelta)

  public:
    static constexpr TemperatureDelta kelvin(double k)
    {
        return TemperatureDelta(k);
    }

    constexpr double inKelvin() const { return _value; }
    constexpr double inCelsius() const { return _value; }
};

#undef MINDFUL_QUANTITY_BOILERPLATE

// --- Dimensioned cross products ------------------------------------------

/** P / A -> power density. */
constexpr PowerDensity
operator/(Power p, Area a)
{
    return PowerDensity::wattsPerSquareMetre(p.inWatts() /
                                             a.inSquareMetres());
}

/** rho * A -> power (the power-budget product, Eq. 3). */
constexpr Power
operator*(PowerDensity rho, Area a)
{
    return Power::watts(rho.inWattsPerSquareMetre() * a.inSquareMetres());
}

constexpr Power
operator*(Area a, PowerDensity rho)
{
    return rho * a;
}

/** P / rho -> minimum area to dissipate P at density rho. */
constexpr Area
operator/(Power p, PowerDensity rho)
{
    return Area::squareMetres(p.inWatts() / rho.inWattsPerSquareMetre());
}

/** R * Eb -> transmit power (Eq. 9). */
constexpr Power
operator*(DataRate r, EnergyPerBit eb)
{
    return Power::watts(r.inBitsPerSecond() * eb.inJoulesPerBit());
}

constexpr Power
operator*(EnergyPerBit eb, DataRate r)
{
    return r * eb;
}

/** P / R -> energy per bit. */
constexpr EnergyPerBit
operator/(Power p, DataRate r)
{
    return EnergyPerBit::joulesPerBit(p.inWatts() / r.inBitsPerSecond());
}

/** P * t -> energy. */
constexpr Energy
operator*(Power p, Time t)
{
    return Energy::joules(p.inWatts() * t.inSeconds());
}

constexpr Energy
operator*(Time t, Power p)
{
    return p * t;
}

/** E / t -> power. */
constexpr Power
operator/(Energy e, Time t)
{
    return Power::watts(e.inJoules() / t.inSeconds());
}

/** E / P -> time. */
constexpr Time
operator/(Energy e, Power p)
{
    return Time::seconds(e.inJoules() / p.inWatts());
}

/** 1 / f -> period. */
constexpr Time
period(Frequency f)
{
    return Time::seconds(1.0 / f.inHertz());
}

/** 1 / t -> frequency. */
constexpr Frequency
rate(Time t)
{
    return Frequency::hertz(1.0 / t.inSeconds());
}

/** bits * f -> data rate (Eq. 6 building block). */
constexpr DataRate
operator*(Frequency f, double bits)
{
    return DataRate::bitsPerSecond(f.inHertz() * bits);
}

/** l * l -> area (rectangular footprints, grid cells). */
constexpr Area
operator*(Length a, Length b)
{
    return Area::squareMetres(a.inMetres() * b.inMetres());
}

/** A / l -> length (the other side of a rectangle). */
constexpr Length
operator/(Area a, Length l)
{
    return Length::metres(a.inSquareMetres() / l.inMetres());
}

// --- Stream output --------------------------------------------------------

std::ostream &operator<<(std::ostream &os, Power p);
std::ostream &operator<<(std::ostream &os, Length l);
std::ostream &operator<<(std::ostream &os, ThermalConductivity k);
std::ostream &operator<<(std::ostream &os, MassDensity rho);
std::ostream &operator<<(std::ostream &os, SpecificHeat c);
std::ostream &operator<<(std::ostream &os, Area a);
std::ostream &operator<<(std::ostream &os, PowerDensity d);
std::ostream &operator<<(std::ostream &os, Energy e);
std::ostream &operator<<(std::ostream &os, EnergyPerBit eb);
std::ostream &operator<<(std::ostream &os, Frequency f);
std::ostream &operator<<(std::ostream &os, Time t);
std::ostream &operator<<(std::ostream &os, DataRate r);
std::ostream &operator<<(std::ostream &os, TemperatureDelta dt);

} // namespace mindful

#endif // MINDFUL_BASE_UNITS_HH
