#include "comm/channel_sim.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <vector>

#include "base/decibel.hh"
#include "base/logging.hh"
#include "exec/parallel.hh"
#include "obs/collector.hh"
#include "obs/handles.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::comm {

#ifndef MINDFUL_OBS_DISABLED
namespace {

/** "10.0" for 10 dB — used in per-Eb/N0 metric names. */
std::string
formatDb(double eb_n0_linear)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << toDecibels(eb_n0_linear);
    return os.str();
}

} // namespace
#endif

QamConstellation::QamConstellation(unsigned bits_per_symbol)
    : _bits(bits_per_symbol), _iBits((bits_per_symbol + 1) / 2),
      _qBits(bits_per_symbol / 2)
{
    MINDFUL_ASSERT(bits_per_symbol >= 1 && bits_per_symbol <= 16,
                   "bits per symbol must lie in [1, 16]");

    // Unit-spacing PAM levels +-1, +-3, ... have per-axis mean energy
    // (L^2 - 1) / 3; scale so the symbol mean energy equals k.
    auto axis_energy = [](unsigned bits) {
        if (bits == 0)
            return 0.0;
        double levels = std::pow(2.0, static_cast<double>(bits));
        return (levels * levels - 1.0) / 3.0;
    };
    double unit_energy = axis_energy(_iBits) + axis_energy(_qBits);
    _scale = std::sqrt(static_cast<double>(_bits) / unit_energy);
}

std::uint32_t
QamConstellation::binaryToGray(std::uint32_t value)
{
    return value ^ (value >> 1);
}

std::uint32_t
QamConstellation::grayToBinary(std::uint32_t value)
{
    std::uint32_t binary = 0;
    for (; value; value >>= 1)
        binary ^= value;
    return binary;
}

double
QamConstellation::mapAxis(std::uint32_t bits, unsigned axis_bits) const
{
    // Incoming bits are the Gray label; recover the level index.
    std::uint32_t level = grayToBinary(bits);
    double levels = std::pow(2.0, static_cast<double>(axis_bits));
    return _scale * (2.0 * static_cast<double>(level) - (levels - 1.0));
}

std::uint32_t
QamConstellation::sliceAxis(double amplitude, unsigned axis_bits) const
{
    double levels = std::pow(2.0, static_cast<double>(axis_bits));
    double index = (amplitude / _scale + (levels - 1.0)) / 2.0;
    auto level = static_cast<std::int64_t>(std::llround(index));
    level = std::clamp<std::int64_t>(level, 0,
                                     static_cast<std::int64_t>(levels) - 1);
    return binaryToGray(static_cast<std::uint32_t>(level));
}

std::pair<double, double>
QamConstellation::modulate(std::uint32_t symbol_bits) const
{
    MINDFUL_ASSERT(symbol_bits < (1u << _bits),
                   "symbol value exceeds constellation");
    std::uint32_t i_bits = symbol_bits >> _qBits;
    std::uint32_t q_bits = symbol_bits & ((1u << _qBits) - 1u);
    double i = mapAxis(i_bits, _iBits);
    double q = _qBits ? mapAxis(q_bits, _qBits) : 0.0;
    return {i, q};
}

std::uint32_t
QamConstellation::demodulate(double i, double q) const
{
    std::uint32_t i_bits = sliceAxis(i, _iBits);
    std::uint32_t q_bits = _qBits ? sliceAxis(q, _qBits) : 0;
    return (i_bits << _qBits) | q_bits;
}

double
QamConstellation::meanSymbolEnergy() const
{
    return static_cast<double>(_bits);
}

AwgnChannelSimulator::AwgnChannelSimulator(unsigned bits_per_symbol,
                                           std::uint64_t seed)
    : _constellation(bits_per_symbol), _rng(seed)
{
}

BerMeasurement
AwgnChannelSimulator::measureBer(double eb_n0_linear, std::uint64_t symbols)
{
    MINDFUL_ASSERT(eb_n0_linear > 0.0, "Eb/N0 must be positive");
    MINDFUL_ASSERT(symbols > 0, "need at least one symbol");

    const unsigned k = _constellation.bitsPerSymbol();
    // Eb = 1 by construction, so N0 = 1 / (Eb/N0); per-axis noise
    // variance is N0 / 2.
    const double sigma = std::sqrt(0.5 / eb_n0_linear);

    MINDFUL_TRACE_SPAN(span, "comm", "qam.measure_ber");
    span.arg("bits_per_symbol", static_cast<std::uint64_t>(k))
        .arg("ebn0_db", toDecibels(eb_n0_linear))
        .arg("symbols", symbols);

    // Sharded Monte-Carlo: shard s simulates its fixed symbol range
    // on the independent stream fork(call * kBerShards + s). Error
    // counts are integers summed in shard order, so the reduction is
    // exact and order-independent — bit-identical on any thread
    // count (docs/parallelism.md).
    const std::uint64_t call = _calls++;
    // Hot-tier shard instrumentation: site and handles resolved once,
    // recorded lock-free inside the shard body (docs/observability.md).
    static const obs::TraceSite shard_site =
        obs::TraceCollector::global().site("comm", "qam.ber_shard");
    static const obs::CounterHandle shard_symbols =
        obs::HotMetricTable::global().counter("comm.qam.shard_symbols");
    std::vector<std::uint64_t> shard_errors(kBerShards, 0);
    exec::parallelFor(
        kBerShards,
        [&](std::size_t shard) {
            obs::HotSpan shard_span(shard_site);
            const auto range =
                exec::shardRange(symbols, kBerShards, shard);
            Rng rng = _rng.fork(call * kBerShards + shard);
            std::uint64_t errors = 0;
            for (std::uint64_t s = range.begin; s < range.end; ++s) {
                auto tx_bits = static_cast<std::uint32_t>(
                    rng.uniformInt(0, (1 << k) - 1));
                auto [i, q] = _constellation.modulate(tx_bits);
                i += rng.gaussian(0.0, sigma);
                q += rng.gaussian(0.0, sigma);
                std::uint32_t rx_bits = _constellation.demodulate(i, q);
                errors += static_cast<std::uint64_t>(
                    std::popcount(tx_bits ^ rx_bits));
            }
            shard_errors[shard] = errors;
            shard_span.setArg(errors);
            shard_symbols.bump(range.end - range.begin);
        },
        "comm.qam.ber_shard");

    BerMeasurement measurement;
    measurement.bitsSent = symbols * k;
    for (std::uint64_t errors : shard_errors)
        measurement.bitErrors += errors;

    // Publish per-call aggregates (never per-symbol: recording inside
    // the loop would dominate the Monte-Carlo cost).
    MINDFUL_METRIC_COUNT("comm.qam.symbols", symbols);
    MINDFUL_METRIC_COUNT("comm.qam.bits_sent", measurement.bitsSent);
    MINDFUL_METRIC_COUNT("comm.qam.bit_errors", measurement.bitErrors);
    // 1 uniformInt + 2 gaussians per symbol.
    MINDFUL_METRIC_COUNT("comm.qam.rng_draws", 3 * symbols);
#ifndef MINDFUL_OBS_DISABLED
    // The per-Eb/N0 metric names are formatted strings; skip the
    // allocation entirely while the registry is runtime-disabled.
    if (obs::MetricRegistry::global().enabled()) {
        const std::string db = formatDb(eb_n0_linear);
        MINDFUL_METRIC_COUNT("comm.qam.ebn0_" + db + "db.bits_sent",
                             measurement.bitsSent);
        MINDFUL_METRIC_COUNT("comm.qam.ebn0_" + db + "db.bit_errors",
                             measurement.bitErrors);
    }
#endif
    span.arg("bit_errors", measurement.bitErrors);
    return measurement;
}

OokChannelSimulator::OokChannelSimulator(std::uint64_t seed) : _rng(seed)
{
}

BerMeasurement
OokChannelSimulator::measureBer(double eb_n0_linear, std::uint64_t bits)
{
    MINDFUL_ASSERT(eb_n0_linear > 0.0, "Eb/N0 must be positive");
    MINDFUL_ASSERT(bits > 0, "need at least one bit");

    // Mark amplitude A with E[energy/bit] = A^2 / 2 = Eb = 1, so
    // A = sqrt(2); per-sample noise variance N0 / 2 = 1 / (2 Eb/N0).
    const double amplitude = std::sqrt(2.0);
    const double sigma = std::sqrt(0.5 / eb_n0_linear);
    const double threshold = amplitude / 2.0;

    MINDFUL_TRACE_SPAN(span, "comm", "ook.measure_ber");
    span.arg("ebn0_db", toDecibels(eb_n0_linear)).arg("bits", bits);

    // Same sharded decomposition as the QAM simulator: fixed shard
    // count, per-shard forked streams, exact integer reduction in
    // shard order — bit-identical on any thread count.
    const std::uint64_t call = _calls++;
    // Same hot-tier pattern as the QAM path.
    static const obs::TraceSite shard_site =
        obs::TraceCollector::global().site("comm", "ook.ber_shard");
    static const obs::CounterHandle shard_bits =
        obs::HotMetricTable::global().counter("comm.ook.shard_bits");
    std::vector<std::uint64_t> shard_errors(kBerShards, 0);
    exec::parallelFor(
        kBerShards,
        [&](std::size_t shard) {
            obs::HotSpan shard_span(shard_site);
            const auto range = exec::shardRange(bits, kBerShards, shard);
            Rng rng = _rng.fork(call * kBerShards + shard);
            std::uint64_t errors = 0;
            for (std::uint64_t i = range.begin; i < range.end; ++i) {
                bool tx = rng.bernoulli(0.5);
                double rx =
                    (tx ? amplitude : 0.0) + rng.gaussian(0.0, sigma);
                bool decoded = rx > threshold;
                errors += decoded != tx;
            }
            shard_errors[shard] = errors;
            shard_span.setArg(errors);
            shard_bits.bump(range.end - range.begin);
        },
        "comm.ook.ber_shard");

    BerMeasurement measurement;
    measurement.bitsSent = bits;
    for (std::uint64_t errors : shard_errors)
        measurement.bitErrors += errors;

    MINDFUL_METRIC_COUNT("comm.ook.bits_sent", bits);
    MINDFUL_METRIC_COUNT("comm.ook.bit_errors", measurement.bitErrors);
    // 1 bernoulli + 1 gaussian per bit.
    MINDFUL_METRIC_COUNT("comm.ook.rng_draws", 2 * bits);
#ifndef MINDFUL_OBS_DISABLED
    // Guarded like the QAM path: no name formatting while disabled.
    if (obs::MetricRegistry::global().enabled()) {
        const std::string db = formatDb(eb_n0_linear);
        MINDFUL_METRIC_COUNT("comm.ook.ebn0_" + db + "db.bit_errors",
                             measurement.bitErrors);
    }
#endif
    span.arg("bit_errors", measurement.bitErrors);
    return measurement;
}

} // namespace mindful::comm
