/**
 * @file
 * Monte-Carlo AWGN channel simulator for M-QAM.
 *
 * The Fig. 7 feasibility study rests on the analytical Gray-QAM BER
 * equation; this simulator provides the executable ground truth: it
 * modulates random bit streams onto a (rectangular, Gray-mapped)
 * QAM constellation, adds calibrated white Gaussian noise, slices,
 * and counts bit errors. The property tests require the measured
 * BER to track the closed form.
 */

#ifndef MINDFUL_COMM_CHANNEL_SIM_HH
#define MINDFUL_COMM_CHANNEL_SIM_HH

#include <cstdint>
#include <utility>

#include "base/random.hh"

namespace mindful::comm {

/**
 * Gray-mapped rectangular QAM constellation.
 *
 * k bits per symbol split ceil(k/2) onto the I axis and floor(k/2)
 * onto the Q axis, each an independent Gray-coded PAM. Amplitudes
 * are scaled so the mean symbol energy is exactly k (i.e. Eb = 1),
 * which makes Eb/N0 bookkeeping trivial.
 */
class QamConstellation
{
  public:
    explicit QamConstellation(unsigned bits_per_symbol);

    unsigned bitsPerSymbol() const { return _bits; }
    unsigned iAxisBits() const { return _iBits; }
    unsigned qAxisBits() const { return _qBits; }

    /** Map k symbol bits to an (I, Q) point. */
    std::pair<double, double> modulate(std::uint32_t symbol_bits) const;

    /** Nearest-level slicing back to k symbol bits. */
    std::uint32_t demodulate(double i, double q) const;

    /** Mean symbol energy (== bitsPerSymbol by construction). */
    // lint: raw-ok(normalized to Eb = 1, i.e. measured in units of Eb)
    double meanSymbolEnergy() const;

    static std::uint32_t binaryToGray(std::uint32_t value);
    static std::uint32_t grayToBinary(std::uint32_t value);

  private:
    double mapAxis(std::uint32_t bits, unsigned axis_bits) const;
    std::uint32_t sliceAxis(double amplitude, unsigned axis_bits) const;

    unsigned _bits;
    unsigned _iBits;
    unsigned _qBits;
    double _scale; //!< amplitude scale for Eb = 1
};

/** BER measurement summary. */
struct BerMeasurement
{
    std::uint64_t bitsSent = 0;
    std::uint64_t bitErrors = 0;

    double
    ber() const
    {
        return bitsSent ? static_cast<double>(bitErrors) /
                              static_cast<double>(bitsSent)
                        : 0.0;
    }
};

/**
 * Fixed Monte-Carlo shard count shared by the channel simulators.
 *
 * Each measureBer() call splits its symbols into exactly this many
 * shards; shard s of call c draws from the independent RNG stream
 * fork(c * kBerShards + s). Results are therefore bit-for-bit
 * identical on any thread count — the shard decomposition, not the
 * scheduler, decides which stream simulates which symbol. Changing
 * this constant changes the streams (like changing a seed).
 */
inline constexpr std::uint64_t kBerShards = 16;

/** AWGN Monte-Carlo driver. */
class AwgnChannelSimulator
{
  public:
    AwgnChannelSimulator(unsigned bits_per_symbol,
                         std::uint64_t seed = 0x71616d21ull);

    const QamConstellation &constellation() const { return _constellation; }

    /**
     * Transmit @p symbols random symbols at the given linear Eb/N0
     * and count bit errors after slicing. Runs the shards on the
     * process-wide pool; deterministic for a given seed and call
     * sequence regardless of thread count.
     */
    BerMeasurement measureBer(double eb_n0_linear, std::uint64_t symbols);

  private:
    QamConstellation _constellation;
    Rng _rng;
    std::uint64_t _calls = 0; //!< distinguishes per-call stream blocks
};

/**
 * Coherent OOK Monte-Carlo driver: bits map to amplitudes {0, A}
 * with A chosen so the *average* energy per bit is 1, the receiver
 * thresholds at A/2. Validates the ookBitErrorRate() closed form
 * used by the Sec. 5.1 power model.
 */
class OokChannelSimulator
{
  public:
    explicit OokChannelSimulator(std::uint64_t seed = 0x6f6f6b21ull);

    /** Transmit @p bits random bits at the given linear Eb/N0.
     *  Sharded like AwgnChannelSimulator::measureBer. */
    BerMeasurement measureBer(double eb_n0_linear, std::uint64_t bits);

  private:
    Rng _rng;
    std::uint64_t _calls = 0; //!< distinguishes per-call stream blocks
};

} // namespace mindful::comm

#endif // MINDFUL_COMM_CHANNEL_SIM_HH
