#include "comm/link_budget.hh"

#include "base/decibel.hh"
#include "base/logging.hh"

namespace mindful::comm {

double
LinkBudget::noiseSpectralDensity() const
{
    MINDFUL_ASSERT(temperatureKelvin > 0.0,
                   "receiver temperature must be positive");
    return kBoltzmann * temperatureKelvin * fromDecibels(noiseFigureDb);
}

double
LinkBudget::totalLossLinear() const
{
    return fromDecibels(pathLossDb + marginDb + implementationLossDb);
}

EnergyPerBit
LinkBudget::requiredTxEnergyPerBit(double eb_n0_linear) const
{
    MINDFUL_ASSERT(eb_n0_linear > 0.0, "Eb/N0 must be positive");
    return EnergyPerBit::joulesPerBit(
        eb_n0_linear * noiseSpectralDensity() * totalLossLinear());
}

} // namespace mindful::comm
