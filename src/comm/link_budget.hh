/**
 * @file
 * RF link budget for the implant-to-wearable uplink (paper Sec. 5.2).
 *
 * The paper's QAM analysis assumes BER = 1e-6, 60 dB path loss and a
 * 20 dB margin for biological tissue (skull) and implant-to-wearable
 * distance. This module turns a required receiver Eb/N0 into the
 * *transmit* energy per bit the implant must radiate:
 *
 *     Eb_tx = (Eb/N0)_req * N0 * L_path * L_margin * L_impl
 *
 * with N0 = k_B * T * F the receiver noise density (body temperature,
 * noise figure F) and L_impl an implementation-loss term covering
 * real transceiver non-idealities.
 */

#ifndef MINDFUL_COMM_LINK_BUDGET_HH
#define MINDFUL_COMM_LINK_BUDGET_HH

#include "base/units.hh"

namespace mindful::comm {

/** Boltzmann constant [J/K]. */
inline constexpr double kBoltzmann = 1.380649e-23;

/** Link parameters between implanted and wearable SoCs. */
struct LinkBudget
{
    /** Through-tissue path loss [dB] (paper: 60 dB). */
    double pathLossDb = 60.0;

    /** Additional biological margin [dB] (paper: 20 dB). */
    double marginDb = 20.0;

    /** Receiver noise figure [dB]. */
    double noiseFigureDb = 5.0;

    /** Transceiver implementation loss [dB]. Defaults to zero: the
     *  QAM-efficiency knob of the Sec. 5.2 study is the
     *  implementation-quality parameter, so the budget itself stays
     *  ideal. */
    double implementationLossDb = 0.0;

    /** Receiver physical temperature [K] (body temperature). */
    // lint: raw-ok(absolute temperature; base/units.hh only models deltas)
    double temperatureKelvin = 310.0;

    /** Receiver noise spectral density N0 [W/Hz], including F. */
    // lint: raw-ok(W/Hz spectral density has no Quantity in base/units.hh)
    double noiseSpectralDensity() const;

    /** Total link attenuation (path + margin + implementation) as a
     *  linear power ratio. */
    double totalLossLinear() const;

    /**
     * Transmit energy per bit needed to present the receiver with
     * the given (linear) Eb/N0.
     */
    EnergyPerBit requiredTxEnergyPerBit(double eb_n0_linear) const;
};

} // namespace mindful::comm

#endif // MINDFUL_COMM_LINK_BUDGET_HH
