#include "comm/modulation.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/special_math.hh"

namespace mindful::comm {

namespace {

/**
 * Rectangular Gray-QAM decomposition: k bits split ceil(k/2) onto the
 * I axis and floor(k/2) onto the Q axis. For even k this reduces to
 * the familiar square-QAM expressions; for k == 1 it reduces to BPSK.
 */
struct AxisSplit
{
    double mi; //!< I-axis PAM levels
    double mq; //!< Q-axis PAM levels (1 when unused)
};

AxisSplit
axisSplit(unsigned k)
{
    unsigned ki = (k + 1) / 2;
    unsigned kq = k / 2;
    return {std::pow(2.0, static_cast<double>(ki)),
            std::pow(2.0, static_cast<double>(kq))};
}

/** Leading coefficient of the Gray-coded QAM BER approximation. */
double
berCoefficient(unsigned k)
{
    auto [mi, mq] = axisSplit(k);
    return (2.0 * (1.0 - 1.0 / mi) + 2.0 * (1.0 - 1.0 / mq)) /
           static_cast<double>(k);
}

/** Argument scale inside the Q-function: sqrt(scale * Eb/N0). */
double
berArgumentScale(unsigned k)
{
    auto [mi, mq] = axisSplit(k);
    // Mean symbol energy of unit-spacing rectangular QAM is
    // (mi^2 + mq^2 - 2) / 3 per 2-level spacing; the half-distance
    // argument then carries 6k / (mi^2 + mq^2 - 2).
    return 6.0 * static_cast<double>(k) / (mi * mi + mq * mq - 2.0);
}

} // namespace

double
ookBitErrorRate(double eb_n0_linear)
{
    MINDFUL_ASSERT(eb_n0_linear >= 0.0, "Eb/N0 must be non-negative");
    return qFunction(std::sqrt(eb_n0_linear));
}

double
ookRequiredEbN0(double target_ber)
{
    MINDFUL_ASSERT(target_ber > 0.0 && target_ber < 0.5,
                   "target BER must lie in (0, 0.5)");
    double arg = qFunctionInverse(target_ber);
    return arg * arg;
}

double
qamBitErrorRate(unsigned bits_per_symbol, double eb_n0_linear)
{
    MINDFUL_ASSERT(bits_per_symbol >= 1, "need at least 1 bit per symbol");
    MINDFUL_ASSERT(eb_n0_linear >= 0.0, "Eb/N0 must be non-negative");
    double arg = std::sqrt(berArgumentScale(bits_per_symbol) * eb_n0_linear);
    return berCoefficient(bits_per_symbol) * qFunction(arg);
}

double
qamRequiredEbN0(unsigned bits_per_symbol, double target_ber)
{
    MINDFUL_ASSERT(bits_per_symbol >= 1, "need at least 1 bit per symbol");
    MINDFUL_ASSERT(target_ber > 0.0 && target_ber < 0.5,
                   "target BER must lie in (0, 0.5)");
    double coeff = berCoefficient(bits_per_symbol);
    double q_target = target_ber / coeff;
    MINDFUL_ASSERT(q_target < 1.0, "unreachable BER target");
    double arg = qFunctionInverse(q_target);
    return arg * arg / berArgumentScale(bits_per_symbol);
}

double
shannonMinimumEbN0(double bits_per_symbol)
{
    MINDFUL_ASSERT(bits_per_symbol > 0.0,
                   "spectral efficiency must be positive");
    return (std::pow(2.0, bits_per_symbol) - 1.0) / bits_per_symbol;
}

OokModulation::OokModulation(EnergyPerBit energy_per_bit,
                             DataRate max_data_rate)
    : _energyPerBit(energy_per_bit), _maxDataRate(max_data_rate)
{
    MINDFUL_ASSERT(energy_per_bit.inJoulesPerBit() > 0.0,
                   "OOK energy per bit must be positive");
    MINDFUL_ASSERT(max_data_rate.inBitsPerSecond() > 0.0,
                   "OOK max data rate must be positive");
}

bool
OokModulation::supports(DataRate rate) const
{
    return rate <= _maxDataRate;
}

Power
OokModulation::transmitPower(DataRate rate) const
{
    if (!supports(rate)) {
        MINDFUL_FATAL("OOK transceiver supports at most ",
                      _maxDataRate.inMegabitsPerSecond(), " Mbps, asked for ",
                      rate.inMegabitsPerSecond(), " Mbps");
    }
    return rate * _energyPerBit;
}

QamModulation::QamModulation(unsigned bits_per_symbol)
    : _bitsPerSymbol(bits_per_symbol)
{
    MINDFUL_ASSERT(bits_per_symbol >= 1 && bits_per_symbol <= 16,
                   "bits per symbol must lie in [1, 16]");
}

double
QamModulation::bitErrorRate(double eb_n0_linear) const
{
    return qamBitErrorRate(_bitsPerSymbol, eb_n0_linear);
}

double
QamModulation::requiredEbN0(double target_ber) const
{
    return qamRequiredEbN0(_bitsPerSymbol, target_ber);
}

DataRate
QamModulation::bitRate(Frequency symbol_rate) const
{
    return symbol_rate * static_cast<double>(_bitsPerSymbol);
}

} // namespace mindful::comm
