/**
 * @file
 * Modulation-scheme models: OOK and M-ary QAM (paper Secs. 5.1-5.2).
 *
 * OOK carries 1 bit per symbol at a constant, transceiver-specific
 * energy per bit — the energy-efficient scheme today's implants use.
 * M-QAM carries k = log2(M) bits per symbol within the same antenna
 * bandwidth, at an energy per bit that grows with k according to the
 * Gray-coded QAM bit-error-rate equation
 *
 *     BER(k, Eb/N0) ~= (4/k) (1 - 2^(-k/2)) Q( sqrt(3k/(M-1) Eb/N0) )
 *
 * which this module evaluates and inverts. Shannon's limit provides
 * the sanity floor on any required Eb/N0.
 */

#ifndef MINDFUL_COMM_MODULATION_HH
#define MINDFUL_COMM_MODULATION_HH

#include <cstdint>

#include "base/units.hh"

namespace mindful::comm {

/**
 * Coherent on-off-keying BER at a linear Eb/N0 (optimal threshold):
 * BER = Q(sqrt(Eb/N0)). OOK pays ~3 dB against antipodal BPSK, which
 * is the price implants accept for the simple transmitter.
 */
double ookBitErrorRate(double eb_n0_linear);

/** Inverse of ookBitErrorRate in Eb/N0. */
double ookRequiredEbN0(double target_ber);

/** Gray-coded M-QAM approximation of BER at a linear Eb/N0.
 *
 * @param bits_per_symbol k >= 1 (k == 1 degenerates to BPSK/OOK).
 * @param eb_n0_linear    received Eb/N0 as a linear ratio.
 */
double qamBitErrorRate(unsigned bits_per_symbol, double eb_n0_linear);

/**
 * Inverse of qamBitErrorRate in Eb/N0: the minimum linear Eb/N0 at
 * which the scheme achieves @p target_ber.
 */
double qamRequiredEbN0(unsigned bits_per_symbol, double target_ber);

/**
 * Shannon's minimum Eb/N0 (linear) for reliable communication at
 * spectral efficiency @p bits_per_symbol bits/s/Hz:
 *
 *     Eb/N0 >= (2^eta - 1) / eta
 */
double shannonMinimumEbN0(double bits_per_symbol);

/** Constant-Eb OOK transmitter model (Eq. 9). */
class OokModulation
{
  public:
    /**
     * @param energy_per_bit transceiver's customized Eb.
     * @param max_data_rate  highest rate the design supports while
     *        holding Eb constant (the antenna/transceiver limit).
     */
    OokModulation(EnergyPerBit energy_per_bit, DataRate max_data_rate);

    EnergyPerBit energyPerBit() const { return _energyPerBit; }
    DataRate maxDataRate() const { return _maxDataRate; }

    /** True if the transceiver can carry @p rate at constant Eb. */
    bool supports(DataRate rate) const;

    /** Pcomm = rate * Eb (Eq. 9); fatal when unsupported. */
    Power transmitPower(DataRate rate) const;

  private:
    EnergyPerBit _energyPerBit;
    DataRate _maxDataRate;
};

/** One M-QAM operating mode (fixed bits per symbol). */
class QamModulation
{
  public:
    explicit QamModulation(unsigned bits_per_symbol);

    unsigned bitsPerSymbol() const { return _bitsPerSymbol; }
    std::uint64_t constellationSize() const { return 1ull << _bitsPerSymbol; }

    double bitErrorRate(double eb_n0_linear) const;
    double requiredEbN0(double target_ber) const;

    /** Bit rate carried at @p symbol_rate symbols/s. */
    DataRate bitRate(Frequency symbol_rate) const;

  private:
    unsigned _bitsPerSymbol;
};

} // namespace mindful::comm

#endif // MINDFUL_COMM_MODULATION_HH
