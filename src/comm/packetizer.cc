#include "comm/packetizer.hh"

#include "base/logging.hh"

namespace mindful::comm {

std::uint16_t
crc16(const std::uint8_t *data, std::size_t size)
{
    std::uint16_t crc = 0xFFFF;
    for (std::size_t i = 0; i < size; ++i) {
        crc ^= static_cast<std::uint16_t>(data[i]) << 8;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x8000)
                crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<std::uint16_t>(crc << 1);
        }
    }
    return crc;
}

namespace {

/** MSB-first bit packer into a byte vector. */
class BitWriter
{
  public:
    explicit BitWriter(std::vector<std::uint8_t> &out) : _out(out) {}

    void
    write(std::uint32_t value, unsigned bits)
    {
        for (unsigned i = bits; i-- > 0;) {
            if (_fill == 0)
                _out.push_back(0);
            std::uint8_t bit = (value >> i) & 1u;
            _out.back() = static_cast<std::uint8_t>(
                _out.back() | (bit << (7 - _fill)));
            _fill = (_fill + 1) % 8;
        }
    }

  private:
    std::vector<std::uint8_t> &_out;
    unsigned _fill = 0;
};

/** MSB-first bit reader over a byte span. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size)
        : _data(data), _size(size)
    {
    }

    bool
    read(std::uint32_t &value, unsigned bits)
    {
        value = 0;
        for (unsigned i = 0; i < bits; ++i) {
            std::size_t byte = _cursor / 8;
            if (byte >= _size)
                return false;
            unsigned offset = _cursor % 8;
            value = (value << 1) |
                    ((_data[byte] >> (7 - offset)) & 1u);
            ++_cursor;
        }
        return true;
    }

  private:
    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _cursor = 0;
};

} // namespace

Packetizer::Packetizer(FrameConfig config) : _config(config)
{
    MINDFUL_ASSERT(config.sampleBits >= 1 && config.sampleBits <= 16,
                   "sample width must lie in [1, 16] bits");
}

std::vector<std::uint8_t>
Packetizer::pack(std::uint16_t sequence,
                 const std::vector<std::uint32_t> &samples) const
{
    MINDFUL_ASSERT(samples.size() <= 0xFFFF,
                   "at most 65535 samples per frame");
    const std::uint32_t cap = (1u << _config.sampleBits) - 1;
    for (std::uint32_t s : samples)
        MINDFUL_ASSERT(s <= cap, "sample ", s, " exceeds ",
                       _config.sampleBits, "-bit range");

    std::vector<std::uint8_t> frame;
    frame.reserve(headerBytes + samples.size() * 2 + crcBytes);
    frame.push_back(syncByte);
    frame.push_back(static_cast<std::uint8_t>(sequence >> 8));
    frame.push_back(static_cast<std::uint8_t>(sequence & 0xFF));
    frame.push_back(static_cast<std::uint8_t>(_config.sampleBits));
    frame.push_back(static_cast<std::uint8_t>(samples.size() >> 8));
    frame.push_back(static_cast<std::uint8_t>(samples.size() & 0xFF));

    BitWriter writer(frame);
    for (std::uint32_t s : samples)
        writer.write(s, _config.sampleBits);

    std::uint16_t checksum = crc16(frame.data(), frame.size());
    frame.push_back(static_cast<std::uint8_t>(checksum >> 8));
    frame.push_back(static_cast<std::uint8_t>(checksum & 0xFF));
    return frame;
}

UnpackedFrame
Packetizer::unpack(const std::vector<std::uint8_t> &frame) const
{
    UnpackedFrame out;
    if (frame.size() < headerBytes + crcBytes || frame[0] != syncByte)
        return out;

    std::uint16_t received_crc = static_cast<std::uint16_t>(
        (frame[frame.size() - 2] << 8) | frame[frame.size() - 1]);
    if (crc16(frame.data(), frame.size() - crcBytes) != received_crc)
        return out;

    out.sequence =
        static_cast<std::uint16_t>((frame[1] << 8) | frame[2]);
    unsigned bits = frame[3];
    std::size_t count = static_cast<std::size_t>((frame[4] << 8) | frame[5]);
    if (bits != _config.sampleBits)
        return out;

    // Validate the declared sample count against the payload region
    // before any allocation: a forged or corrupted count field must
    // not drive reserve(), and a frame whose payload cannot hold
    // `count` samples is invalid outright.
    const std::size_t payload_bytes =
        frame.size() - headerBytes - crcBytes;
    if (count * static_cast<std::size_t>(bits) > payload_bytes * 8)
        return out;

    BitReader reader(frame.data() + headerBytes, payload_bytes);
    out.samples.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t value = 0;
        if (!reader.read(value, bits))
            return out;
        out.samples.push_back(value);
    }
    out.valid = true;
    return out;
}

std::size_t
Packetizer::frameBits(std::size_t sample_count) const
{
    std::size_t payload_bits = sample_count * _config.sampleBits;
    std::size_t payload_bytes = (payload_bits + 7) / 8;
    return (headerBytes + payload_bytes + crcBytes) * 8;
}

double
Packetizer::overheadFraction(std::size_t sample_count) const
{
    double total = static_cast<double>(frameBits(sample_count));
    double payload =
        static_cast<double>(sample_count * _config.sampleBits);
    return (total - payload) / total;
}

} // namespace mindful::comm
