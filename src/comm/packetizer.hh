/**
 * @file
 * Uplink frame packetizer.
 *
 * In a communication-centric implant the only computation is
 * "digitize and packetize" (Sec. 3.1). This module defines a
 * concrete wire format so the end-to-end examples move real bits:
 *
 *     | sync (8) | seq (16) | bits/sample (8) | count (16) |
 *     | payload: count samples packed MSB-first at d bits  |
 *     | CRC-16/CCITT over everything above (16)            |
 *
 * and quantifies the framing overhead that raw-data streaming pays.
 */

#ifndef MINDFUL_COMM_PACKETIZER_HH
#define MINDFUL_COMM_PACKETIZER_HH

#include <cstdint>
#include <vector>

namespace mindful::comm {

/** CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF). */
std::uint16_t crc16(const std::uint8_t *data, std::size_t size);

/** Framing parameters. */
struct FrameConfig
{
    unsigned sampleBits = 10; //!< payload sample width d
};

/** Result of parsing a received frame. */
struct UnpackedFrame
{
    bool valid = false; //!< sync found, sizes consistent, CRC passed
    std::uint16_t sequence = 0;
    std::vector<std::uint32_t> samples;
};

/** Bit-exact frame encoder / decoder. */
class Packetizer
{
  public:
    explicit Packetizer(FrameConfig config = {});

    const FrameConfig &config() const { return _config; }

    /** Encode one frame. Sample values must fit in d bits. */
    std::vector<std::uint8_t> pack(std::uint16_t sequence,
                                   const std::vector<std::uint32_t>
                                       &samples) const;

    /** Decode one frame (CRC-checked). */
    UnpackedFrame unpack(const std::vector<std::uint8_t> &frame) const;

    /** Encoded size in bits for @p sample_count samples. */
    std::size_t frameBits(std::size_t sample_count) const;

    /** Non-payload share of the frame: (frame - payload) / frame. */
    double overheadFraction(std::size_t sample_count) const;

    static constexpr std::uint8_t syncByte = 0xA5;
    static constexpr std::size_t headerBytes = 6;
    static constexpr std::size_t crcBytes = 2;

  private:
    FrameConfig _config;
};

} // namespace mindful::comm

#endif // MINDFUL_COMM_PACKETIZER_HH
