#include "comm/transceiver.hh"

#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace mindful::comm {

QamTransceiver::QamTransceiver(Frequency symbol_rate, LinkBudget link,
                               double target_ber)
    : _symbolRate(symbol_rate), _link(link), _targetBer(target_ber)
{
    MINDFUL_ASSERT(symbol_rate.inHertz() > 0.0,
                   "symbol rate must be positive");
    MINDFUL_ASSERT(target_ber > 0.0 && target_ber < 0.5,
                   "target BER must lie in (0, 0.5)");
}

unsigned
QamTransceiver::requiredBitsPerSymbol(DataRate rate) const
{
    MINDFUL_ASSERT(rate.inBitsPerSecond() > 0.0,
                   "data rate must be positive");
    double symbols = _symbolRate.inHertz();
    auto bits = static_cast<unsigned>(
        std::ceil(rate.inBitsPerSecond() / symbols - 1e-12));
    return std::max(1u, bits);
}

EnergyPerBit
QamTransceiver::txEnergyPerBit(unsigned bits_per_symbol) const
{
    QamModulation qam(bits_per_symbol);
    double eb_n0 = qam.requiredEbN0(_targetBer);
    return _link.requiredTxEnergyPerBit(eb_n0);
}

Power
QamTransceiver::transmitPower(DataRate rate, double eta) const
{
    MINDFUL_ASSERT(eta > 0.0 && eta <= 1.0,
                   "QAM efficiency must lie in (0, 1]");
    unsigned k = requiredBitsPerSymbol(rate);
    return rate * txEnergyPerBit(k) * (1.0 / eta);
}

double
QamTransceiver::minimumEfficiency(DataRate rate,
                                  Power power_allowance) const
{
    if (power_allowance.inWatts() <= 0.0)
        return std::numeric_limits<double>::infinity();
    // Pcomm = R * Eb_tx / eta <= allowance  =>  eta >= R * Eb_tx / P.
    unsigned k = requiredBitsPerSymbol(rate);
    Power ideal = rate * txEnergyPerBit(k);
    return ideal / power_allowance;
}

} // namespace mindful::comm
