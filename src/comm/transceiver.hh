/**
 * @file
 * Transceiver power models combining modulation and link budget.
 *
 * QamTransceiver models the paper's advanced-modulation scenario
 * (Sec. 5.2): the symbol rate (antenna bandwidth) is frozen at its
 * 1024-channel value and higher data rates are reached by adding
 * bits per symbol, paying the QAM Eb/N0 penalty through the link
 * budget and a power-amplifier/implementation efficiency eta:
 *
 *     Pcomm = R_b * Eb_tx(k) / eta
 */

#ifndef MINDFUL_COMM_TRANSCEIVER_HH
#define MINDFUL_COMM_TRANSCEIVER_HH

#include "comm/link_budget.hh"
#include "comm/modulation.hh"

namespace mindful::comm {

/** QAM uplink with a fixed symbol rate and a configurable target BER. */
class QamTransceiver
{
  public:
    /**
     * @param symbol_rate fixed symbol (baud) rate of the antenna.
     * @param link        link-budget parameters.
     * @param target_ber  required bit error rate (paper: 1e-6).
     */
    QamTransceiver(Frequency symbol_rate, LinkBudget link,
                   double target_ber = 1e-6);

    Frequency symbolRate() const { return _symbolRate; }
    const LinkBudget &link() const { return _link; }
    double targetBer() const { return _targetBer; }

    /** Fewest bits per symbol able to carry @p rate. */
    unsigned requiredBitsPerSymbol(DataRate rate) const;

    /** Required *transmit* energy per bit at k bits per symbol. */
    EnergyPerBit txEnergyPerBit(unsigned bits_per_symbol) const;

    /**
     * Communication power for @p rate at QAM efficiency @p eta
     * (bits per symbol chosen automatically).
     */
    Power transmitPower(DataRate rate, double eta) const;

    /**
     * Minimum QAM efficiency that keeps the transmit power within
     * @p power_allowance at data rate @p rate — the Fig. 7 quantity.
     * Returns +infinity when the allowance is non-positive.
     */
    double minimumEfficiency(DataRate rate, Power power_allowance) const;

  private:
    Frequency _symbolRate;
    LinkBudget _link;
    double _targetBer;
};

} // namespace mindful::comm

#endif // MINDFUL_COMM_TRANSCEIVER_HH
