#include "comm/wpt.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "base/logging.hh"

namespace mindful::comm {

WptLink::WptLink(WptLinkConfig config) : _config(config)
{
    MINDFUL_ASSERT(_config.txCoilRadius > 0.0,
                   "transmit coil radius must be positive");
    MINDFUL_ASSERT(_config.separation > 0.0,
                   "coil separation must be positive");
    MINDFUL_ASSERT(_config.qTx > 0.0 && _config.qRx > 0.0,
                   "coil quality factors must be positive");
    MINDFUL_ASSERT(_config.rectifierEfficiency > 0.0 &&
                       _config.rectifierEfficiency <= 1.0,
                   "rectifier efficiency must lie in (0, 1]");
    MINDFUL_ASSERT(_config.maxTxPower.inWatts() > 0.0,
                   "SAR-limited transmit power must be positive");
}

double
WptLink::receiveCoilRadius(Area implant_area)
{
    MINDFUL_ASSERT(implant_area.inSquareMetres() > 0.0,
                   "implant area must be positive");
    return std::sqrt(implant_area.inSquareMetres() / std::numbers::pi);
}

double
WptLink::coupling(double rx_radius) const
{
    MINDFUL_ASSERT(rx_radius > 0.0, "receive coil radius must be positive");
    const double rt = _config.txCoilRadius;
    const double d = _config.separation;
    double k = (rt * rt * rx_radius * rx_radius) /
               (std::sqrt(rt * rx_radius) *
                std::pow(d * d + rt * rt, 1.5));
    // The loop approximation exceeds 1 only for overlapping coils.
    return std::min(k, 0.99);
}

double
WptLink::linkEfficiency(double rx_radius) const
{
    double k = coupling(rx_radius);
    double figure = k * k * _config.qTx * _config.qRx;
    double denom = 1.0 + std::sqrt(1.0 + figure);
    return figure / (denom * denom);
}

double
WptLink::endToEndEfficiency(Area implant_area) const
{
    return linkEfficiency(receiveCoilRadius(implant_area)) *
           _config.rectifierEfficiency;
}

Power
WptLink::deliveredPower(Area implant_area, Power tx_power) const
{
    MINDFUL_ASSERT(tx_power.inWatts() >= 0.0,
                   "transmit power must be non-negative");
    MINDFUL_ASSERT(tx_power <= _config.maxTxPower,
                   "transmit power exceeds the SAR cap");
    return tx_power * endToEndEfficiency(implant_area);
}

Power
WptLink::maxDeliverablePower(Area implant_area) const
{
    return deliveredPower(implant_area, _config.maxTxPower);
}

bool
WptLink::canPower(Area implant_area, Power demand) const
{
    return demand <= maxDeliverablePower(implant_area);
}

} // namespace mindful::comm
