/**
 * @file
 * Wireless power transfer (WPT) link model.
 *
 * The paper's future considerations (Sec. 8) note that implants are
 * increasingly powered by WPT, which "raises questions about power
 * efficiency and heat generation": even if an SoC fits the thermal
 * budget, the inductive link must actually *deliver* that much power
 * through the skull. This module implements the standard two-coil
 * inductive model:
 *
 *   - coupling between coaxial circular coils of radii r_tx / r_rx
 *     separated by d:  k ~ r_tx^2 r_rx^2 /
 *                          (sqrt(r_tx r_rx) (d^2 + r_tx^2)^{3/2})
 *   - optimal-load link efficiency:
 *         eta = k^2 Q_tx Q_rx / (1 + sqrt(1 + k^2 Q_tx Q_rx))^2
 *   - delivered power = P_tx * eta * eta_rectifier, with P_tx capped
 *     by tissue-exposure (SAR) limits.
 *
 * The receive coil is assumed to wrap the implant perimeter, so the
 * deliverable power is a function of implant area — a second,
 * independent ceiling next to the 40 mW/cm^2 thermal budget.
 */

#ifndef MINDFUL_COMM_WPT_HH
#define MINDFUL_COMM_WPT_HH

#include "base/units.hh"

namespace mindful::comm {

/** Two-coil inductive link parameters. */
struct WptLinkConfig
{
    /** External (wearable) coil radius [m]. */
    double txCoilRadius = 15e-3;

    /** Coil separation: scalp + skull + dura [m]. */
    double separation = 8e-3;

    /** Quality factor of the external coil. */
    double qTx = 100.0;

    /** Quality factor of the implanted coil (thin, constrained). */
    double qRx = 30.0;

    /** Rectifier + power-management efficiency on the implant. */
    double rectifierEfficiency = 0.8;

    /** Transmit power cap from tissue-exposure (SAR) limits. */
    Power maxTxPower = Power::milliwatts(250.0);
};

/** Evaluates deliverable power for implant geometries. */
class WptLink
{
  public:
    explicit WptLink(WptLinkConfig config = {});

    const WptLinkConfig &config() const { return _config; }

    /** Receive-coil radius for an implant of the given area. */
    static double receiveCoilRadius(Area implant_area);

    /** Coil coupling coefficient k in (0, 1). */
    double coupling(double rx_radius) const;

    /** Optimal-load link efficiency in (0, 1), before the rectifier. */
    double linkEfficiency(double rx_radius) const;

    /** End-to-end efficiency including the rectifier. */
    double endToEndEfficiency(Area implant_area) const;

    /** Power deliverable to an implant of @p area at @p tx_power. */
    Power deliveredPower(Area implant_area, Power tx_power) const;

    /** Deliverable power at the SAR-limited maximum transmit power. */
    Power maxDeliverablePower(Area implant_area) const;

    /**
     * True if the link can power a load of @p demand on an implant of
     * @p area within the SAR cap.
     */
    bool canPower(Area implant_area, Power demand) const;

  private:
    WptLinkConfig _config;
};

} // namespace mindful::comm

#endif // MINDFUL_COMM_WPT_HH
