#include "core/catalog_io.hh"

#include <fstream>
#include <istream>
#include <locale>
#include <ostream>
#include <sstream>

#include "base/logging.hh"
#include "base/parse.hh"

namespace mindful::core {

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &text)
{
    std::size_t first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    std::size_t last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

double
parseDouble(const std::string &value, int line)
{
    // std::from_chars under the hood: the same catalog file parses
    // identically in every process locale, and malformed values fail
    // here with the line number instead of throwing from std::stod.
    std::optional<double> parsed = mindful::parseDouble(value);
    if (!parsed)
        MINDFUL_FATAL("catalog line ", line, ": '", value,
                      "' is not a number");
    return *parsed;
}

std::uint64_t
parseUnsigned(const std::string &value, int line)
{
    // Integers parse directly as std::uint64_t — never through
    // double, which silently rounds values above 2^53.
    std::optional<std::uint64_t> parsed = mindful::parseUnsigned(value);
    if (!parsed)
        MINDFUL_FATAL("catalog line ", line, ": '", value,
                      "' is not a non-negative integer");
    return *parsed;
}

bool
parseBool(const std::string &value, int line)
{
    if (value == "true" || value == "yes" || value == "1")
        return true;
    if (value == "false" || value == "no" || value == "0")
        return false;
    MINDFUL_FATAL("catalog line ", line, ": '", value,
                  "' is not a boolean (true/false)");
}

/** Validate the cross-field invariants of a parsed design. */
void
validate(const SocDesign &soc, int line)
{
    if (soc.reportedChannels == 0)
        MINDFUL_FATAL("catalog entry ending at line ", line,
                      ": 'channels' must be positive");
    if (soc.reportedArea.inSquareMetres() <= 0.0)
        MINDFUL_FATAL("catalog entry ending at line ", line,
                      ": 'area_mm2' must be positive");
    if (soc.reportedPower.inWatts() <= 0.0)
        MINDFUL_FATAL("catalog entry ending at line ", line,
                      ": 'power_mw' must be positive");
    if (soc.samplingFrequency.inHertz() <= 0.0)
        MINDFUL_FATAL("catalog entry ending at line ", line,
                      ": 'sampling_khz' must be positive");
    if (soc.name.empty())
        MINDFUL_FATAL("catalog entry ending at line ", line,
                      ": 'name' is required");
    if (soc.sensingPowerFraction <= 0.0 || soc.sensingPowerFraction >= 1.0)
        MINDFUL_FATAL("catalog entry ending at line ", line,
                      ": 'sensing_power_fraction' must lie in (0, 1)");
    if (soc.sensingAreaFraction <= 0.0 || soc.sensingAreaFraction >= 1.0)
        MINDFUL_FATAL("catalog entry ending at line ", line,
                      ": 'sensing_area_fraction' must lie in (0, 1)");
}

} // namespace

std::vector<SocDesign>
parseCatalog(std::istream &input)
{
    std::vector<SocDesign> designs;
    bool in_section = false;
    SocDesign current;
    int line_number = 0;
    int section_line = 0;

    auto finish = [&](int line) {
        if (!in_section)
            return;
        validate(current, line);
        designs.push_back(current);
        in_section = false;
    };

    std::string raw;
    while (std::getline(input, raw)) {
        ++line_number;
        std::string line = raw;
        // Strip comments.
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        if (line == "[soc]") {
            finish(line_number);
            current = SocDesign{};
            in_section = true;
            section_line = line_number;
            continue;
        }
        if (!in_section)
            MINDFUL_FATAL("catalog line ", line_number,
                          ": key outside a [soc] section");

        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            MINDFUL_FATAL("catalog line ", line_number,
                          ": expected 'key = value'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));

        if (key == "id") {
            current.id = static_cast<int>(parseUnsigned(value, line_number));
        } else if (key == "name") {
            current.name = value;
        } else if (key == "reference") {
            current.reference = value;
        } else if (key == "sensor") {
            if (value == "electrodes")
                current.sensorType = ni::SensorType::Electrode;
            else if (value == "spad")
                current.sensorType = ni::SensorType::Spad;
            else
                MINDFUL_FATAL("catalog line ", line_number, ": sensor '",
                              value, "' must be electrodes or spad");
        } else if (key == "channels") {
            current.reportedChannels = parseUnsigned(value, line_number);
        } else if (key == "area_mm2") {
            current.reportedArea = Area::squareMillimetres(
                parseDouble(value, line_number));
        } else if (key == "power_mw") {
            current.reportedPower =
                Power::milliwatts(parseDouble(value, line_number));
        } else if (key == "sampling_khz") {
            current.samplingFrequency =
                Frequency::kilohertz(parseDouble(value, line_number));
        } else if (key == "sample_bits") {
            current.sampleBits = static_cast<unsigned>(
                parseUnsigned(value, line_number));
        } else if (key == "wireless") {
            current.wireless = parseBool(value, line_number);
        } else if (key == "validated") {
            current.validatedInOrExVivo = parseBool(value, line_number);
        } else if (key == "scaling_law") {
            if (value == "sqrt")
                current.recipe.law = ScalingLaw::SqrtAreaLinearPower;
            else if (value == "linear")
                current.recipe.law = ScalingLaw::Linear;
            else
                MINDFUL_FATAL("catalog line ", line_number,
                              ": scaling_law '", value,
                              "' must be sqrt or linear");
        } else if (key == "base_channels") {
            current.recipe.baseChannels =
                parseUnsigned(value, line_number);
        } else if (key == "area_correction") {
            current.recipe.areaCorrection =
                parseDouble(value, line_number);
        } else if (key == "power_correction") {
            current.recipe.powerCorrection =
                parseDouble(value, line_number);
        } else if (key == "correction_note") {
            current.recipe.correctionNote = value;
        } else if (key == "sensing_power_fraction") {
            current.sensingPowerFraction =
                parseDouble(value, line_number);
        } else if (key == "sensing_area_fraction") {
            current.sensingAreaFraction = parseDouble(value, line_number);
        } else if (key == "comm_share") {
            current.commShareOfNonSensing =
                parseDouble(value, line_number);
        } else {
            MINDFUL_FATAL("catalog line ", line_number,
                          ": unknown key '", key, "'");
        }
    }
    finish(line_number ? line_number : section_line);
    return designs;
}

std::vector<SocDesign>
parseCatalogString(const std::string &text)
{
    std::istringstream stream(text);
    return parseCatalog(stream);
}

std::vector<SocDesign>
loadCatalog(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        MINDFUL_FATAL("cannot open catalog file '", path, "'");
    return parseCatalog(file);
}

void
writeCatalog(std::ostream &output, const std::vector<SocDesign> &designs)
{
    // Streams format numbers in the locale they were constructed
    // under; pin the classic ("C") locale for the write so a catalog
    // emitted under a de_DE-style global locale still reads back
    // ("3.14", never "3,14"), then restore the caller's locale.
    const std::locale saved = output.imbue(std::locale::classic());
    for (const auto &soc : designs) {
        output << "[soc]\n";
        output << "id = " << soc.id << '\n';
        output << "name = " << soc.name << '\n';
        if (!soc.reference.empty())
            output << "reference = " << soc.reference << '\n';
        output << "sensor = "
               << (soc.sensorType == ni::SensorType::Spad ? "spad"
                                                          : "electrodes")
               << '\n';
        output << "channels = " << soc.reportedChannels << '\n';
        output << "area_mm2 = " << soc.reportedArea.inSquareMillimetres()
               << '\n';
        output << "power_mw = " << soc.reportedPower.inMilliwatts()
               << '\n';
        output << "sampling_khz = "
               << soc.samplingFrequency.inKilohertz() << '\n';
        output << "sample_bits = " << soc.sampleBits << '\n';
        output << "wireless = " << (soc.wireless ? "true" : "false")
               << '\n';
        output << "validated = "
               << (soc.validatedInOrExVivo ? "true" : "false") << '\n';
        output << "scaling_law = "
               << (soc.recipe.law == ScalingLaw::Linear ? "linear"
                                                        : "sqrt")
               << '\n';
        output << "base_channels = " << soc.recipe.baseChannels << '\n';
        output << "area_correction = " << soc.recipe.areaCorrection
               << '\n';
        output << "power_correction = " << soc.recipe.powerCorrection
               << '\n';
        if (!soc.recipe.correctionNote.empty())
            output << "correction_note = " << soc.recipe.correctionNote
                   << '\n';
        output << "sensing_power_fraction = " << soc.sensingPowerFraction
               << '\n';
        output << "sensing_area_fraction = " << soc.sensingAreaFraction
               << '\n';
        output << "comm_share = " << soc.commShareOfNonSensing << '\n';
        output << '\n';
    }
    output.imbue(saved);
}

std::string
writeCatalogString(const std::vector<SocDesign> &designs)
{
    std::ostringstream stream;
    writeCatalog(stream, designs);
    return stream.str();
}

} // namespace mindful::core
