/**
 * @file
 * SoC catalog serialization.
 *
 * The paper's artifact lets users "add a new SoC entry with a custom
 * name and parameter values" through editable parameter files
 * (Sec. A.7.1). This module provides the equivalent: a small
 * line-oriented `[soc]`-section format that round-trips every
 * SocDesign field, with strict validation and line-numbered errors.
 *
 * Format example:
 *
 *     [soc]
 *     id = 100
 *     name = NextGen
 *     sensor = electrodes        # or: spad
 *     channels = 2048
 *     area_mm2 = 400
 *     power_mw = 30
 *     sampling_khz = 10
 *     sample_bits = 12
 *     wireless = true
 *     validated = true
 *     scaling_law = sqrt         # or: linear
 *     base_channels = 0          # 0 = use `channels`
 *     area_correction = 1.0
 *     power_correction = 1.0
 *     correction_note =
 *     sensing_power_fraction = 0.5
 *     sensing_area_fraction = 0.45
 *     comm_share = 0.8
 *
 * Blank lines and `#` comments are ignored. Unknown keys are fatal
 * (they are always typos).
 *
 * Parsing and serialization are locale-independent (base/parse.hh):
 * numbers always use the "C" locale grammar — `3.14`, never `3,14` —
 * regardless of the process locale, integer fields parse exactly as
 * 64-bit integers (no rounding through double above 2^53), and
 * malformed values fail with the catalog line number instead of a
 * raw std::stod exception.
 */

#ifndef MINDFUL_CORE_CATALOG_IO_HH
#define MINDFUL_CORE_CATALOG_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/soc_design.hh"

namespace mindful::core {

/** Parse a catalog document; fatal with a line number on errors. */
std::vector<SocDesign> parseCatalog(std::istream &input);

/** Parse from a string (convenience for tests / embedded configs). */
std::vector<SocDesign> parseCatalogString(const std::string &text);

/** Load from a file; fatal if the file cannot be opened. */
std::vector<SocDesign> loadCatalog(const std::string &path);

/** Serialize designs in the format parseCatalog() accepts. */
void writeCatalog(std::ostream &output,
                  const std::vector<SocDesign> &designs);

/** Serialize to a string. */
std::string writeCatalogString(const std::vector<SocDesign> &designs);

} // namespace mindful::core

#endif // MINDFUL_CORE_CATALOG_IO_HH
