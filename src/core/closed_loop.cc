#include "core/closed_loop.hh"

#include "base/logging.hh"
#include "dnn/tensor.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::core {

Power
StimulatorSpec::meanPower() const
{
    double pulses_per_second = static_cast<double>(sites) *
                               activeFraction * pulseRateHz;
    return Power::watts(pulses_per_second * energyPerPulse.inJoules()) +
           staticOverhead;
}

ClosedLoopStudy::ClosedLoopStudy(ImplantModel implant, ModelBuilder decoder,
                                 StimulatorSpec stimulator,
                                 ClosedLoopConfig config)
    : _implant(std::move(implant)), _decoder(std::move(decoder)),
      _stimulator(stimulator), _config(config)
{
    MINDFUL_ASSERT(_decoder != nullptr, "a decoder builder is required");
    MINDFUL_ASSERT(_stimulator.sites > 0,
                   "stimulator needs at least one site");
    MINDFUL_ASSERT(_stimulator.activeFraction >= 0.0 &&
                       _stimulator.activeFraction <= 1.0,
                   "active fraction must lie in [0, 1]");
    MINDFUL_ASSERT(_config.reactionDeadline.inSeconds() > 0.0,
                   "reaction deadline must be positive");
}

ClosedLoopPoint
ClosedLoopStudy::evaluate(std::uint64_t channels) const
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");

    MINDFUL_TRACE_SPAN(loop_span, "core", "closed_loop.evaluate");
    loop_span.arg("channels", channels);
    MINDFUL_METRIC_COUNT("core.closed_loop.evaluations", 1);

    ClosedLoopPoint point;
    point.channels = channels;

    dnn::Network network = _decoder(channels);

    // --- Sense phase: acquisition window ahead of the decoder. ------
    std::size_t window_samples;
    {
        MINDFUL_TRACE_SPAN(span, "core", "closed_loop.sense");
        window_samples =
            dnn::elementCount(network.inputShape()) /
            std::max<std::size_t>(1, static_cast<std::size_t>(channels));
        point.acquisitionLatency =
            period(_config.applicationRate) *
            static_cast<double>(
                std::max<std::size_t>(1, window_samples));
        point.sensingPower = _implant.sensingPower(channels);
        span.arg("window_samples",
                 static_cast<std::uint64_t>(window_samples));
    }

    // --- Decode phase: accelerator sizing for the decoder DNN. ------
    {
        MINDFUL_TRACE_SPAN(span, "core", "closed_loop.decode");
        // The decoder must keep up with the application sampling rate
        // (same Eq. 11-15 sizing as the open-loop study).
        accel::LowerBoundSolver solver(_config.mac);
        point.bound = solver.solveBest(network.census(),
                                       period(_config.applicationRate));
        point.decodeLatency = point.bound.latency;
        point.computePower = point.bound.power;
        span.arg("mac_units", point.bound.macUnits)
            .arg("decode_latency_us",
                 point.decodeLatency.inMicroseconds());
    }

    // --- Stimulate phase: actuation latency and power. --------------
    {
        MINDFUL_TRACE_SPAN(span, "core", "closed_loop.stimulate");
        point.stimulationLatency = _stimulator.setupLatency;
        point.stimulationPower = _stimulator.meanPower();
        span.arg("sites", _stimulator.sites);
    }

    point.loopLatency = point.acquisitionLatency + point.decodeLatency +
                        point.stimulationLatency;
    point.meetsDeadline =
        point.bound.feasible &&
        point.loopLatency <= _config.reactionDeadline;

    // --- Power decomposition. ---------------------------------------
    point.digitalPower = _implant.digitalPower();
    DataRate telemetry =
        Frequency::hertz(_config.telemetryValuesPerSecond) *
        static_cast<double>(_implant.sampleBits());
    point.telemetryPower = telemetry * _implant.commEnergyPerBit();
    point.totalPower = point.sensingPower + point.computePower +
                       point.stimulationPower + point.digitalPower +
                       point.telemetryPower;

    Area total_area =
        _implant.sensingArea(channels) + _implant.nonSensingArea();
    point.powerBudget = _implant.powerBudget(total_area);
    point.budgetUtilization = point.totalPower / point.powerBudget;
    point.withinBudget = point.budgetUtilization <= 1.0;

    MINDFUL_METRIC_RECORD("core.closed_loop.loop_latency_us",
                          point.loopLatency.inMicroseconds());
    MINDFUL_METRIC_RECORD("core.closed_loop.total_power_mw",
                          point.totalPower.inMilliwatts());
    loop_span.arg("loop_latency_us", point.loopLatency.inMicroseconds())
        .arg("meets_deadline",
             std::string(point.meetsDeadline ? "true" : "false"));
    return point;
}

std::uint64_t
ClosedLoopStudy::maxChannels(std::uint64_t max_channels,
                             std::uint64_t step) const
{
    MINDFUL_ASSERT(step > 0, "scan step must be positive");
    std::uint64_t best = 0;
    std::uint64_t misses = 0;
    for (std::uint64_t n = step; n <= max_channels; n += step) {
        if (evaluate(n).feasible()) {
            best = n;
            misses = 0;
        } else if (++misses >= 8 && best > 0) {
            break;
        }
    }
    return best;
}

} // namespace mindful::core
