/**
 * @file
 * Closed-loop BCI study (extension; paper Secs. 2, 7).
 *
 * The paper focuses on open-loop applications and plans to "extend
 * this work to accommodate closed-loop BCIs" (Sec. 7). A closed-loop
 * implant senses, decodes, and *stimulates* on-device, replacing the
 * outbound raw-data stream with a local loop that must close within
 * the brain's reaction time (~0.18 s, the real-time definition the
 * paper quotes from MasterMind/MindCrypt). Two constraints replace
 * the communication story:
 *
 *  - latency: acquisition window + decode + stimulation setup must
 *    fit the reaction deadline;
 *  - power: the stimulator joins sensing + computation under the same
 *    40 mW/cm^2 budget (telemetry shrinks to a status trickle).
 */

#ifndef MINDFUL_CORE_CLOSED_LOOP_HH
#define MINDFUL_CORE_CLOSED_LOOP_HH

#include "core/comp_centric.hh"

namespace mindful::core {

/** Electrical stimulation back-end parameters. */
struct StimulatorSpec
{
    /** Stimulation sites on the implant. */
    std::size_t sites = 16;

    /** Pulse rate per active site [Hz]. */
    double pulseRateHz = 200.0;

    /** Energy of one charge-balanced biphasic pulse. */
    Energy energyPerPulse = Energy::microjoules(1.0);

    /** Average fraction of sites active. */
    double activeFraction = 0.25;

    /** Fixed stimulation front-end overhead (drivers, DACs). */
    Power staticOverhead = Power::microwatts(150.0);

    /** Time to configure and launch a stimulation pattern. */
    Time setupLatency = Time::milliseconds(2.0);

    /** Mean stimulation power. */
    Power meanPower() const;
};

/** Loop timing / deadline parameters. */
struct ClosedLoopConfig
{
    /** Brain reaction time: the end-to-end loop deadline (Sec. 2). */
    Time reactionDeadline = Time::milliseconds(180.0);

    /** Decoder input sampling rate (window acquisition clock). */
    Frequency applicationRate = Frequency::kilohertz(2.0);

    /** MAC technology for the on-implant decoder. */
    accel::MacUnitParams mac = accel::nangate45();

    /** Residual telemetry (status uplink) as values per second. */
    double telemetryValuesPerSecond = 100.0;
};

/** One evaluated closed-loop design point. */
struct ClosedLoopPoint
{
    std::uint64_t channels = 0;

    accel::AcceleratorBound bound;

    Power sensingPower;
    Power computePower;
    Power stimulationPower;
    Power digitalPower;
    Power telemetryPower;
    Power totalPower;
    Power powerBudget;
    double budgetUtilization = 0.0;

    Time acquisitionLatency; //!< decoder input window duration
    Time decodeLatency;      //!< accelerator execution time
    Time stimulationLatency; //!< pattern setup
    Time loopLatency;        //!< sum of the above

    bool meetsDeadline = false;
    bool withinBudget = false;

    bool
    feasible() const
    {
        return bound.feasible && meetsDeadline && withinBudget;
    }
};

/** Closed-loop evaluator for one implant + decoder family. */
class ClosedLoopStudy
{
  public:
    ClosedLoopStudy(ImplantModel implant, ModelBuilder decoder,
                    StimulatorSpec stimulator = {},
                    ClosedLoopConfig config = {});

    const ImplantModel &implant() const { return _implant; }
    const StimulatorSpec &stimulator() const { return _stimulator; }
    const ClosedLoopConfig &config() const { return _config; }

    ClosedLoopPoint evaluate(std::uint64_t channels) const;

    /** Largest feasible channel count (scanned at @p step). */
    std::uint64_t maxChannels(std::uint64_t max_channels = 16384,
                              std::uint64_t step = 32) const;

  private:
    ImplantModel _implant;
    ModelBuilder _decoder;
    StimulatorSpec _stimulator;
    ClosedLoopConfig _config;
};

} // namespace mindful::core

#endif // MINDFUL_CORE_CLOSED_LOOP_HH
