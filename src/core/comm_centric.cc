#include "core/comm_centric.hh"

#include "base/logging.hh"

namespace mindful::core {

CommCentricModel::CommCentricModel(ImplantModel implant,
                                   CommScalingStrategy strategy)
    : _implant(std::move(implant)), _strategy(strategy)
{
}

CommCentricPoint
CommCentricModel::project(std::uint64_t channels) const
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");

    const double ratio = static_cast<double>(channels) /
                         static_cast<double>(_implant.referenceChannels());

    CommCentricPoint point;
    point.channels = channels;
    point.sensingPower = _implant.sensingPower(channels);
    point.sensingArea = _implant.sensingArea(channels);
    point.dataRate = _implant.sensingThroughput(channels);

    switch (_strategy) {
      case CommScalingStrategy::Naive:
        // Each channel carries its own non-sensing slice: everything
        // scales linearly from the reference point.
        point.nonSensingPower = _implant.nonSensingPower() * ratio;
        point.nonSensingArea = _implant.nonSensingArea() * ratio;
        break;
      case CommScalingStrategy::HighMargin:
        // The transceiver absorbs the higher rate at constant Eb:
        // comm power tracks the data rate, digital power and all
        // non-sensing area stay frozen at their reference values.
        point.nonSensingPower =
            _implant.digitalPower() + _implant.commPower() * ratio;
        point.nonSensingArea = _implant.nonSensingArea();
        break;
      default:
        MINDFUL_PANIC("unknown comm scaling strategy");
    }

    point.totalPower = point.sensingPower + point.nonSensingPower;
    point.totalArea = point.sensingArea + point.nonSensingArea;
    point.powerBudget = _implant.powerBudget(point.totalArea);
    point.budgetUtilization = point.totalPower / point.powerBudget;
    point.sensingAreaFraction = point.sensingArea / point.totalArea;
    return point;
}

std::vector<CommCentricPoint>
CommCentricModel::sweep(const std::vector<std::uint64_t> &channel_counts)
    const
{
    std::vector<CommCentricPoint> points;
    points.reserve(channel_counts.size());
    for (std::uint64_t n : channel_counts)
        points.push_back(project(n));
    return points;
}

std::uint64_t
CommCentricModel::maxSafeChannels(std::uint64_t max_channels,
                                  std::uint64_t step) const
{
    MINDFUL_ASSERT(step > 0, "scan step must be positive");
    std::uint64_t last_safe = 0;
    for (std::uint64_t n = step; n <= max_channels; n += step) {
        if (project(n).safe())
            last_safe = n;
        else if (n > _implant.referenceChannels())
            break; // utilization grows monotonically past this point
    }
    return last_safe;
}

} // namespace mindful::core
