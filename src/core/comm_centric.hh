/**
 * @file
 * Communication-centric scaling with energy-efficient (OOK)
 * modulation (paper Sec. 5.1, Figs. 5-6).
 *
 * Two opposing hypotheses about how a raw-data-streaming implant
 * grows beyond 1024 channels:
 *
 *  - Naive: every added channel brings its own non-sensing slice
 *    (transceiver + digital), so all power and area components scale
 *    linearly — equivalent to tiling more implants. Psoc/Pbudget
 *    stays constant, but volumetric efficiency never improves.
 *
 *  - High-margin: the existing transceiver/antenna absorb the higher
 *    data rate at constant Eb, so non-sensing *area* is frozen while
 *    comm *power* grows with the data rate. Volumetric efficiency
 *    improves, but Psoc eventually overruns the (slower-growing)
 *    budget.
 */

#ifndef MINDFUL_CORE_COMM_CENTRIC_HH
#define MINDFUL_CORE_COMM_CENTRIC_HH

#include <cstdint>
#include <vector>

#include "core/scaling.hh"

namespace mindful::core {

/** Scaling hypothesis of Sec. 5.1. */
enum class CommScalingStrategy : std::uint8_t { Naive, HighMargin };

/** One projected design point of Figs. 5-6. */
struct CommCentricPoint
{
    std::uint64_t channels = 0;

    Power sensingPower;
    Power nonSensingPower;
    Power totalPower;

    Area sensingArea;
    Area nonSensingArea;
    Area totalArea;

    Power powerBudget;

    /** Psoc / Pbudget (Fig. 5 bar height). */
    double budgetUtilization = 0.0;

    /** Asensing / Asoc (Fig. 6 series). */
    double sensingAreaFraction = 0.0;

    /** OOK uplink data rate at this point. */
    DataRate dataRate;

    bool
    safe() const
    {
        return budgetUtilization <= 1.0;
    }
};

/** Projects one implant under one strategy. */
class CommCentricModel
{
  public:
    CommCentricModel(ImplantModel implant, CommScalingStrategy strategy);

    const ImplantModel &implant() const { return _implant; }
    CommScalingStrategy strategy() const { return _strategy; }

    /** Project the design to @p channels. */
    CommCentricPoint project(std::uint64_t channels) const;

    /** Project over a sweep of channel counts. */
    std::vector<CommCentricPoint>
    sweep(const std::vector<std::uint64_t> &channel_counts) const;

    /**
     * Largest channel count with Psoc <= Pbudget (scan granularity
     * @p step). The naive strategy never crosses the budget (its
     * utilization is channel-independent), so the scan cap
     * @p max_channels is returned in that case.
     */
    std::uint64_t maxSafeChannels(std::uint64_t max_channels = 65536,
                                  std::uint64_t step = 64) const;

  private:
    ImplantModel _implant;
    CommScalingStrategy _strategy;
};

} // namespace mindful::core

#endif // MINDFUL_CORE_COMM_CENTRIC_HH
