#include "core/comp_centric.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/special_math.hh"
#include "core/partition.hh"

namespace mindful::core {

CompCentricModel::CompCentricModel(ImplantModel implant,
                                   ModelBuilder builder,
                                   CompCentricConfig config)
    : _implant(std::move(implant)), _builder(std::move(builder)),
      _config(std::move(config))
{
    MINDFUL_ASSERT(_builder != nullptr, "a model builder is required");
    MINDFUL_ASSERT(_config.sensingAreaScale > 0.0,
                   "sensing area scale must be positive");
}

std::uint64_t
CompCentricModel::partitionCutLimit() const
{
    // The cut volume must fit the uplink of a 1024-channel
    // communication-centric design (Sec. 6.1): with one inference per
    // application period, elements * d * f_app <= 1024 * d * f, and
    // the partitioned uplink reuses the 1024-value frame structure of
    // that design, capping the cut at 1024 elements.
    auto rate_limit = static_cast<std::uint64_t>(
        _implant.referenceDataRate().inBitsPerSecond() /
        (static_cast<double>(_implant.sampleBits()) *
         _config.applicationRate.inHertz()));
    return std::min<std::uint64_t>(rate_limit,
                                   _implant.referenceChannels());
}

CompCentricPoint
CompCentricModel::evaluatePrefix(std::uint64_t channels,
                                 std::uint64_t active_channels,
                                 std::size_t on_implant_layers,
                                 std::uint64_t transmitted_elements,
                                 const dnn::Network &network) const
{
    CompCentricPoint point;
    point.channels = channels;
    point.activeChannels = active_channels;
    point.onImplantLayers = on_implant_layers;
    point.transmittedElements = transmitted_elements;

    // Size the accelerator for the on-implant prefix (Eqs. 11-15);
    // the deadline is one application sampling period.
    accel::LowerBoundSolver solver(_config.mac);
    auto census = network.censusPrefix(on_implant_layers);
    point.bound =
        solver.solveBest(census, period(_config.applicationRate));

    // Power decomposition (Sec. 4.2 with computation-centric
    // non-sensing: digital overhead + accelerator + result uplink).
    point.sensingPower = _implant.sensingPower(channels);
    point.digitalPower = _implant.digitalPower();
    point.computePower = point.bound.power;

    // One result set per inference (per application period), at the
    // implant's constant transceiver energy per bit.
    DataRate uplink =
        _config.applicationRate *
        (static_cast<double>(transmitted_elements) *
         static_cast<double>(_implant.sampleBits()));
    point.commPower = uplink * _implant.commEnergyPerBit();

    point.totalPower = point.sensingPower + point.digitalPower +
                       point.computePower + point.commPower;

    Area total_area =
        _implant.sensingArea(channels) * _config.sensingAreaScale +
        _implant.nonSensingArea();
    point.powerBudget = _implant.powerBudget(total_area);
    point.budgetUtilization = point.totalPower / point.powerBudget;

    point.feasible =
        point.bound.feasible && point.budgetUtilization <= 1.0;
    return point;
}

CompCentricPoint
CompCentricModel::evaluate(std::uint64_t channels,
                           std::uint64_t active_channels,
                           bool partitioned) const
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");
    MINDFUL_ASSERT(active_channels > 0 && active_channels <= channels,
                   "active channels must lie in [1, n]");

    dnn::Network network = _builder(active_channels);
    CompCentricPoint full = evaluatePrefix(
        channels, active_channels, network.layerCount(),
        dnn::elementCount(network.outputShape()), network);

    if (!partitioned)
        return full;

    PartitionPlan plan = earliestViableCut(network, partitionCutLimit());
    if (!plan.viable)
        return full;

    CompCentricPoint cut =
        evaluatePrefix(channels, active_channels, plan.onImplantLayers,
                       plan.cutElements, network);

    // Partitioning is opportunistic: keep the split only when it is
    // the better design (offloading never has to be taken).
    if (cut.feasible != full.feasible)
        return cut.feasible ? cut : full;
    return cut.totalPower <= full.totalPower ? cut : full;
}

std::uint64_t
CompCentricModel::maxChannels(bool partitioned,
                              std::uint64_t max_channels,
                              std::uint64_t step) const
{
    MINDFUL_ASSERT(step > 0, "scan step must be positive");

    // Compute cost grows super-linearly while the budget grows
    // linearly, but depth steps make the boundary slightly ragged —
    // scan and keep the last feasible count.
    std::uint64_t best = 0;
    std::uint64_t misses = 0;
    for (std::uint64_t n = step; n <= max_channels; n += step) {
        if (evaluate(n, n, partitioned).feasible) {
            best = n;
            misses = 0;
        } else if (++misses >= 8 && best > 0) {
            break; // well past the feasibility boundary
        }
    }
    return best;
}

std::uint64_t
CompCentricModel::maxActiveChannels(std::uint64_t channels,
                                    bool partitioned) const
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");

    // Feasibility is monotone in n' (a smaller model is never more
    // expensive), so binary search the largest feasible dropout.
    auto feasible = [&](std::int64_t active) {
        return evaluate(channels, static_cast<std::uint64_t>(active),
                        partitioned)
            .feasible;
    };
    std::int64_t best = binarySearchLastTrue(
        1, static_cast<std::int64_t>(channels), feasible);
    return best < 1 ? 0 : static_cast<std::uint64_t>(best);
}

} // namespace mindful::core
