/**
 * @file
 * Computation-centric architectures with on-implant DNNs
 * (paper Secs. 5.3 and 6, Figs. 10-12).
 *
 * The implant runs a DNN (or a prefix of one, Sec. 6.1) over the
 * incoming neural data within the real-time deadline t = 1/f, then
 * transmits only the (much smaller) result. The total power is
 *
 *     Psoc(n) = Psensing(n) + Pdigital + Pcomp + Pcomm(n_out)
 *
 * with Pcomp the Eq. 13 MAC lower bound and Pcomm the constant-Eb
 * OOK cost of the transmitted volume. The budget uses the frozen
 * non-sensing area plus linearly-growing sensing area (optionally
 * densified, Sec. 6.2).
 */

#ifndef MINDFUL_CORE_COMP_CENTRIC_HH
#define MINDFUL_CORE_COMP_CENTRIC_HH

#include <functional>
#include <optional>

#include "accel/lower_bound.hh"
#include "core/scaling.hh"
#include "dnn/network.hh"

namespace mindful::core {

/** Builds the decoder DNN scaled for a given channel count. */
using ModelBuilder = std::function<dnn::Network(std::uint64_t channels)>;

/** Knobs shared by the Fig. 10-12 studies. */
struct CompCentricConfig
{
    /** MAC technology (45 nm default; 12 nm for the Tech step). */
    accel::MacUnitParams mac = accel::nangate45();

    /** Sensing-area-per-channel multiplier (0.5 for the Dense step:
     *  doubled channel density shrinks the chip and the budget). */
    double sensingAreaScale = 1.0;

    /**
     * Sampling rate the decoder DNN was designed for (Berezutskaya
     * et al.: ECoG at 2 kHz). One inference must complete per
     * application sampling period — the real-time deadline t of
     * Eqs. 11/14 — and one result set is transmitted per inference.
     * The deadline follows the application, not the implant's raw
     * ADC rate: the DNN consumes data at its design rate regardless
     * of how fast the front-end oversamples.
     */
    Frequency applicationRate = Frequency::kilohertz(2.0);
};

/** One evaluated computation-centric design point. */
struct CompCentricPoint
{
    std::uint64_t channels = 0;       //!< NI channels n
    std::uint64_t activeChannels = 0; //!< n' the DNN is scaled for
    std::size_t onImplantLayers = 0;  //!< DNN prefix on the implant

    /** Accelerator sizing (Eqs. 11-15). */
    accel::AcceleratorBound bound;

    Power sensingPower;
    Power digitalPower;
    Power computePower;
    Power commPower;
    Power totalPower;
    Power powerBudget;

    double budgetUtilization = 0.0;

    /** Values transmitted per inference (labels, or cut activations). */
    std::uint64_t transmittedElements = 0;

    /** Accelerator meets the deadline AND the SoC meets the budget. */
    bool feasible = false;
};

/** Fig. 10-12 evaluator for one implant and one DNN family. */
class CompCentricModel
{
  public:
    CompCentricModel(ImplantModel implant, ModelBuilder builder,
                     CompCentricConfig config = {});

    const ImplantModel &implant() const { return _implant; }
    const CompCentricConfig &config() const { return _config; }

    /**
     * Evaluate n channels with the DNN scaled for @p active channels
     * (channel dropout; pass @p active == n for no dropout) and,
     * optionally, partitioned to its earliest viable cut.
     */
    CompCentricPoint evaluate(std::uint64_t channels,
                              std::uint64_t active_channels,
                              bool partitioned = false) const;

    /** Convenience: no dropout, optional partitioning. */
    CompCentricPoint
    evaluate(std::uint64_t channels, bool partitioned = false) const
    {
        return evaluate(channels, channels, partitioned);
    }

    /**
     * Largest n with a feasible full-model (no dropout) design,
     * scanned at @p step granularity. Returns 0 when even the
     * smallest scanned count is infeasible.
     */
    std::uint64_t maxChannels(bool partitioned = false,
                              std::uint64_t max_channels = 16384,
                              std::uint64_t step = 32) const;

    /**
     * Largest dropout count n' <= n making the design feasible
     * (Sec. 6.2 ChDr); 0 when none is.
     */
    std::uint64_t maxActiveChannels(std::uint64_t channels,
                                    bool partitioned = false) const;

    /** Largest intermediate volume a partition cut may transmit. */
    std::uint64_t partitionCutLimit() const;

  private:
    CompCentricPoint evaluatePrefix(std::uint64_t channels,
                                    std::uint64_t active_channels,
                                    std::size_t on_implant_layers,
                                    std::uint64_t transmitted_elements,
                                    const dnn::Network &network) const;

    ImplantModel _implant;
    ModelBuilder _builder;
    CompCentricConfig _config;
};

} // namespace mindful::core

#endif // MINDFUL_CORE_COMP_CENTRIC_HH
