#include "core/event_centric.hh"

#include <cmath>

#include "base/logging.hh"

namespace mindful::core {

EventCentricModel::EventCentricModel(ImplantModel implant,
                                     EventStreamConfig config)
    : _implant(std::move(implant)), _config(config)
{
    MINDFUL_ASSERT(_config.meanSpikeRateHz > 0.0,
                   "mean spike rate must be positive");
    MINDFUL_ASSERT(_config.detectionOpsPerSample >= 0.0,
                   "detection cost must be non-negative");
}

unsigned
EventCentricModel::bitsPerEvent(std::uint64_t channels) const
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");
    auto id_bits = static_cast<unsigned>(std::ceil(
        std::log2(static_cast<double>(channels) + 1.0)));
    auto snippet_bits = static_cast<unsigned>(
        _config.snippetSamples * _implant.sampleBits());
    return id_bits + _config.timestampBits + snippet_bits;
}

EventCentricPoint
EventCentricModel::evaluate(std::uint64_t channels) const
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");

    EventCentricPoint point;
    point.channels = channels;
    point.eventRate =
        static_cast<double>(channels) * _config.meanSpikeRateHz;
    point.bitsPerEvent = bitsPerEvent(channels);
    point.dataRate = DataRate::bitsPerSecond(
        point.eventRate * static_cast<double>(point.bitsPerEvent));
    point.rawDataRate = _implant.sensingThroughput(channels);

    // Detection: a few fixed-point ops on every raw sample, charged
    // at MAC-op energy (it is the same datapath class).
    double ops_per_second =
        static_cast<double>(channels) *
        _implant.samplingFrequency().inHertz() *
        _config.detectionOpsPerSample;
    point.detectionPower = Power::watts(
        ops_per_second * _config.mac.energyPerMac().inJoules());

    point.sensingPower = _implant.sensingPower(channels);
    point.digitalPower = _implant.digitalPower();
    point.commPower = point.dataRate * _implant.commEnergyPerBit();
    point.totalPower = point.sensingPower + point.detectionPower +
                       point.commPower + point.digitalPower;

    // Non-sensing area frozen, as in the other beyond-1024 studies.
    Area total_area =
        _implant.sensingArea(channels) + _implant.nonSensingArea();
    point.powerBudget = _implant.powerBudget(total_area);
    point.budgetUtilization = point.totalPower / point.powerBudget;
    return point;
}

std::uint64_t
EventCentricModel::maxSafeChannels(std::uint64_t max_channels,
                                   std::uint64_t step) const
{
    MINDFUL_ASSERT(step > 0, "scan step must be positive");
    std::uint64_t best = 0;
    for (std::uint64_t n = step; n <= max_channels; n += step) {
        if (evaluate(n).safe())
            best = n;
        else if (n > _implant.referenceChannels())
            break;
    }
    return best;
}

} // namespace mindful::core
