/**
 * @file
 * Event-centric dataflow: on-implant spike detection + event
 * streaming (extension; paper Secs. 2.3, 6.2, related work).
 *
 * Between "stream everything" (communication-centric) and "decode
 * everything" (computation-centric) sits the architecture the paper
 * cites via NOEMA and Jang et al.: detect spikes on the implant and
 * transmit only events — a (channel id, timestamp, optional waveform
 * snippet) tuple per spike — exploiting the sparsity that also
 * underlies the channel-dropout optimization. Detection itself is a
 * few fixed-point ops per sample (NEO + threshold), so its power is
 * linear in the raw sample rate, while the uplink shrinks from
 * d*n*f to n * spike_rate * bits_per_event.
 */

#ifndef MINDFUL_CORE_EVENT_CENTRIC_HH
#define MINDFUL_CORE_EVENT_CENTRIC_HH

#include "accel/mac_unit.hh"
#include "core/scaling.hh"

namespace mindful::core {

/** Event-streaming parameters. */
struct EventStreamConfig
{
    /** Mean detected spike rate per channel [Hz]. */
    double meanSpikeRateHz = 20.0;

    /** Timestamp field width per event [bits]. */
    unsigned timestampBits = 16;

    /** Waveform samples shipped with each event (0 = event-only;
     *  16 supports off-implant spike sorting). */
    std::size_t snippetSamples = 16;

    /** Fixed-point ops per raw sample for detection (NEO + compare
     *  + threshold update), charged at MAC-op energy. */
    double detectionOpsPerSample = 3.0;

    /** Energy/latency proxy for one detection op. */
    accel::MacUnitParams mac = accel::nangate45();
};

/** One evaluated event-centric design point. */
struct EventCentricPoint
{
    std::uint64_t channels = 0;

    /** Events per second across the array. */
    double eventRate = 0.0;

    /** Bits per transmitted event at this channel count. */
    unsigned bitsPerEvent = 0;

    DataRate dataRate;     //!< event uplink
    DataRate rawDataRate;  //!< what raw streaming would need

    Power sensingPower;
    Power detectionPower;
    Power commPower;
    Power digitalPower;
    Power totalPower;
    Power powerBudget;
    double budgetUtilization = 0.0;

    bool
    safe() const
    {
        return budgetUtilization <= 1.0;
    }
};

/** Event-streaming evaluator for one implant. */
class EventCentricModel
{
  public:
    EventCentricModel(ImplantModel implant, EventStreamConfig config = {});

    const ImplantModel &implant() const { return _implant; }
    const EventStreamConfig &config() const { return _config; }

    /** Bits per event: channel id + timestamp + snippet payload. */
    unsigned bitsPerEvent(std::uint64_t channels) const;

    EventCentricPoint evaluate(std::uint64_t channels) const;

    /** Largest safe channel count (scan up to @p max_channels);
     *  returns max_channels when the density never crosses the cap. */
    std::uint64_t maxSafeChannels(std::uint64_t max_channels = 65536,
                                  std::uint64_t step = 64) const;

  private:
    ImplantModel _implant;
    EventStreamConfig _config;
};

} // namespace mindful::core

#endif // MINDFUL_CORE_EVENT_CENTRIC_HH
