#include "core/experiments.hh"

#include <array>
#include <sstream>

#include "base/logging.hh"
#include "core/soc_catalog.hh"
#include "dnn/models.hh"
#include "exec/parallel.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::core::experiments {

namespace {

std::vector<std::uint64_t>
range(std::uint64_t first, std::uint64_t last, std::uint64_t step)
{
    std::vector<std::uint64_t> values;
    for (std::uint64_t n = first; n <= last; n += step)
        values.push_back(n);
    return values;
}

std::string
formatPercent(double fraction)
{
    return Table::formatNumber(fraction * 100.0, 1) + "%";
}

} // namespace

Table
table1()
{
    MINDFUL_TRACE_SCOPE("core", "experiments.table1");
    MINDFUL_METRIC_COUNT("core.experiments.runs", 1);
    Table table("Table 1: summary of implanted SoC designs");
    table.setHeader({"#", "SoC", "NI Type", "#Channels", "Area (mm^2)",
                     "Power (mW)", "Pd (mW/cm^2)", "f (kHz)", "Wireless",
                     "In/Ex-vivo"});
    for (const auto &soc : socCatalog()) {
        table.addRow({
            std::to_string(soc.id),
            soc.name,
            ni::toString(soc.sensorType),
            std::to_string(soc.reportedChannels),
            Table::formatNumber(soc.reportedArea.inSquareMillimetres(), 2),
            Table::formatNumber(soc.reportedPower.inMilliwatts(), 3),
            Table::formatNumber(
                soc.reportedPowerDensity()
                    .inMilliwattsPerSquareCentimetre(),
                1),
            Table::formatNumber(soc.samplingFrequency.inKilohertz(), 0),
            soc.wireless ? "Yes" : "No",
            soc.validatedInOrExVivo ? "Yes" : "No",
        });
    }
    return table;
}

std::vector<Fig4Row>
fig4Rows()
{
    MINDFUL_TRACE_SCOPE("core", "experiments.fig4");
    MINDFUL_METRIC_COUNT("core.experiments.runs", 1);
    thermal::PowerBudget budget;
    std::vector<Fig4Row> rows;
    for (const auto &soc : socCatalog()) {
        Fig4Row row;
        row.point = scaleDesign(soc, kStandardChannels);
        row.budget = budget.budget(row.point.area);
        row.safe = row.point.power <= row.budget;
        rows.push_back(row);
    }
    return rows;
}

Table
fig4Table()
{
    Table table("Fig. 4: designs scaled to 1024 channels vs power budget");
    table.setHeader({"#", "SoC", "Area (mm^2)", "Power (mW)",
                     "Pd (mW/cm^2)", "Budget (mW)", "Safe"});
    for (const auto &row : fig4Rows()) {
        table.addRow({
            std::to_string(row.point.socId),
            row.point.name,
            Table::formatNumber(row.point.area.inSquareMillimetres(), 1),
            Table::formatNumber(row.point.power.inMilliwatts(), 2),
            Table::formatNumber(row.point.powerDensity()
                                    .inMilliwattsPerSquareCentimetre(),
                                1),
            Table::formatNumber(row.budget.inMilliwatts(), 2),
            row.safe ? "yes" : "NO",
        });
    }
    return table;
}

std::vector<std::uint64_t>
fig5Channels()
{
    return {1024, 2048, 4096, 8192};
}

std::vector<std::uint64_t>
fig6Channels()
{
    return range(1024, 8192, 1024);
}

std::vector<CommSweepSeries>
commCentricSweep(CommScalingStrategy strategy,
                 const std::vector<std::uint64_t> &channels)
{
    MINDFUL_TRACE_SCOPE("core", "experiments.comm_sweep");
    MINDFUL_METRIC_COUNT("core.experiments.runs", 1);
    std::vector<CommSweepSeries> series;
    for (const auto &soc : wirelessSocs()) {
        CommCentricModel model{ImplantModel(soc), strategy};
        CommSweepSeries entry;
        entry.socId = soc.id;
        entry.name = soc.name;
        entry.strategy = strategy;
        entry.points = model.sweep(channels);
        series.push_back(std::move(entry));
    }
    return series;
}

namespace {

std::string
strategyName(CommScalingStrategy strategy)
{
    return strategy == CommScalingStrategy::Naive ? "naive" : "high-margin";
}

} // namespace

Table
fig5Table(CommScalingStrategy strategy)
{
    auto channels = fig5Channels();
    Table table("Fig. 5 (" + strategyName(strategy) +
                "): Psoc / Pbudget vs channel count");
    std::vector<std::string> header{"#", "SoC"};
    for (auto n : channels)
        header.push_back("n=" + std::to_string(n));
    table.setHeader(header);

    for (const auto &series : commCentricSweep(strategy, channels)) {
        std::vector<std::string> row{std::to_string(series.socId),
                                     series.name};
        for (const auto &point : series.points) {
            std::string cell =
                Table::formatNumber(point.budgetUtilization, 2);
            if (!point.safe())
                cell += " (OVER)";
            row.push_back(cell);
        }
        table.addRow(row);
    }
    return table;
}

Table
fig6Table(CommScalingStrategy strategy)
{
    auto channels = fig6Channels();
    Table table("Fig. 6 (" + strategyName(strategy) +
                "): sensing area / total area vs channel count");
    std::vector<std::string> header{"#", "SoC"};
    for (auto n : channels)
        header.push_back("n=" + std::to_string(n));
    table.setHeader(header);

    for (const auto &series : commCentricSweep(strategy, channels)) {
        std::vector<std::string> row{std::to_string(series.socId),
                                     series.name};
        for (const auto &point : series.points)
            row.push_back(
                Table::formatNumber(point.sensingAreaFraction, 3));
        table.addRow(row);
    }
    return table;
}

std::vector<std::uint64_t>
fig7Channels()
{
    return range(1024, 6144, 256);
}

std::vector<QamSeries>
qamSweep(const std::vector<std::uint64_t> &channels, QamStudyConfig config)
{
    MINDFUL_TRACE_SCOPE("core", "experiments.qam_sweep");
    MINDFUL_METRIC_COUNT("core.experiments.runs", 1);
    std::vector<QamSeries> series;
    for (const auto &soc : wirelessSocs()) {
        QamStudy study{ImplantModel(soc), config};
        QamSeries entry;
        entry.socId = soc.id;
        entry.name = soc.name;
        entry.points = study.sweep(channels);
        series.push_back(std::move(entry));
    }
    return series;
}

QamSummary
qamSummary(double efficiency, QamStudyConfig config)
{
    MINDFUL_TRACE_SCOPE("core", "experiments.qam_summary");
    MINDFUL_METRIC_COUNT("core.experiments.runs", 1);
    QamSummary summary;
    summary.efficiency = efficiency;
    double total = 0.0;
    std::size_t count = 0;
    for (const auto &soc : wirelessSocs()) {
        QamStudy study{ImplantModel(soc), config};
        total += static_cast<double>(study.maxChannels(efficiency));
        ++count;
    }
    summary.averageMaxChannels = count ? total / static_cast<double>(count)
                                       : 0.0;
    summary.averageGain =
        summary.averageMaxChannels / static_cast<double>(kStandardChannels);
    return summary;
}

Table
fig7Table()
{
    auto channels = fig7Channels();
    Table table("Fig. 7: minimum QAM efficiency [%] to meet the power "
                "budget");
    std::vector<std::string> header{"n", "bits/sym"};
    auto sweep = qamSweep(channels, {});
    for (const auto &series : sweep)
        header.push_back(series.name);
    header.push_back("mean");
    table.setHeader(header);

    for (std::size_t i = 0; i < channels.size(); ++i) {
        std::vector<std::string> row{std::to_string(channels[i])};
        row.push_back(
            std::to_string(sweep.front().points[i].bitsPerSymbol));
        double sum = 0.0;
        for (const auto &series : sweep) {
            double eta = series.points[i].minimumEfficiency;
            sum += eta;
            row.push_back(eta > 10.0 ? ">1000%" : formatPercent(eta));
        }
        double mean = sum / static_cast<double>(sweep.size());
        row.push_back(mean > 10.0 ? ">1000%" : formatPercent(mean));
        table.addRow(row);
    }
    return table;
}

std::vector<Fig9Row>
fig9Rows()
{
    MINDFUL_TRACE_SCOPE("core", "experiments.fig9");
    MINDFUL_METRIC_COUNT("core.experiments.runs", 1);
    const accel::SynthesisModel model;
    const auto points = accel::SynthesisModel::paperDesignPoints();
    // One shard per design point; every shard writes its own row, so
    // the result is index-ordered regardless of scheduling.
    std::vector<Fig9Row> rows(points.size());
    exec::parallelFor(
        points.size(),
        [&](std::size_t i) {
            rows[i].design = static_cast<int>(i) + 1;
            rows[i].point = points[i];
            rows[i].estimate = model.estimate(points[i]);
        },
        "core.fig9.design_point");
    return rows;
}

Table
fig9Table()
{
    Table table("Fig. 9: accelerator synthesis design points (130 nm, "
                "100 MHz, 8-bit)");
    table.setHeader({"Design", "MACseq", "MAChw", "#MACop",
                     "Layer power (uW)", "PE power (uW)", "PE share"});
    for (const auto &row : fig9Rows()) {
        table.addRow({
            std::to_string(row.design),
            std::to_string(row.point.macSeq),
            std::to_string(row.point.macHw),
            std::to_string(row.point.macOp),
            Table::formatNumber(row.estimate.layerPower.inMicrowatts(), 0),
            Table::formatNumber(row.estimate.pePower.inMicrowatts(), 0),
            formatPercent(row.estimate.peShare),
        });
    }
    return table;
}

std::string
toString(SpeechModel model)
{
    return model == SpeechModel::Mlp ? "MLP" : "DN-CNN";
}

ModelBuilder
speechModelBuilder(SpeechModel model)
{
    if (model == SpeechModel::Mlp) {
        return [](std::uint64_t channels) {
            return dnn::buildSpeechMlp(channels);
        };
    }
    return [](std::uint64_t channels) {
        return dnn::buildSpeechDnCnn(channels);
    };
}

std::vector<std::uint64_t>
fig10Channels()
{
    return range(1024, 7168, 1024);
}

std::vector<DnnPowerSeries>
dnnPowerSweep(SpeechModel model, const std::vector<std::uint64_t> &channels)
{
    MINDFUL_TRACE_SCOPE("core", "experiments.dnn_power_sweep");
    MINDFUL_METRIC_COUNT("core.experiments.runs", 1);
    std::vector<DnnPowerSeries> series;
    for (const auto &soc : wirelessSocs()) {
        CompCentricModel comp{ImplantModel(soc),
                              speechModelBuilder(model)};
        DnnPowerSeries entry;
        entry.socId = soc.id;
        entry.name = soc.name;
        entry.model = model;
        for (auto n : channels)
            entry.points.push_back(comp.evaluate(n));
        entry.maxChannels = comp.maxChannels();
        series.push_back(std::move(entry));
    }
    return series;
}

Table
fig10Table(SpeechModel model)
{
    auto channels = fig10Channels();
    Table table("Fig. 10 (" + toString(model) +
                "): Psoc / Pbudget with the on-implant DNN lower bound");
    std::vector<std::string> header{"#", "SoC"};
    for (auto n : channels)
        header.push_back("n=" + std::to_string(n));
    header.push_back("max n");
    table.setHeader(header);

    for (const auto &series : dnnPowerSweep(model, channels)) {
        std::vector<std::string> row{std::to_string(series.socId),
                                     series.name};
        for (const auto &point : series.points) {
            if (!point.bound.feasible) {
                row.push_back("RT-infeasible");
            } else {
                std::string cell =
                    Table::formatNumber(point.budgetUtilization, 2);
                if (!point.feasible)
                    cell += " (OVER)";
                row.push_back(cell);
            }
        }
        row.push_back(std::to_string(series.maxChannels));
        table.addRow(row);
    }
    return table;
}

std::vector<PartitionGainRow>
partitionGains(SpeechModel model)
{
    MINDFUL_TRACE_SCOPE("core", "experiments.partition_gains");
    MINDFUL_METRIC_COUNT("core.experiments.runs", 1);
    const auto socs = wirelessSocs();
    // One shard per SoC: the per-SoC binary searches over maxChannels
    // dominate this study, and each writes only its own row. Row
    // metadata (string copies) is filled serially up front.
    std::vector<PartitionGainRow> rows(socs.size());
    for (std::size_t i = 0; i < socs.size(); ++i) {
        rows[i].socId = socs[i].id;
        rows[i].name = socs[i].name;
        rows[i].model = model;
    }
    // analyze: hot-ok(building the per-SoC DNN model and binary-searching maxChannels IS this shard's unit of work; the model construction allocates once per shard, not per inner iteration)
    exec::parallelFor(
        socs.size(),
        [&](std::size_t i) {
            const SocDesign &soc = socs[i];
            CompCentricModel comp{ImplantModel(soc),
                                  speechModelBuilder(model)};
            PartitionGainRow &row = rows[i];
            row.maxChannelsFull = comp.maxChannels(false);
            row.maxChannelsPartitioned = comp.maxChannels(true);
            row.gain =
                row.maxChannelsFull
                    ? static_cast<double>(row.maxChannelsPartitioned) /
                          static_cast<double>(row.maxChannelsFull)
                    : 1.0;
        },
        "core.fig11.partition_soc");
    return rows;
}

Table
fig11Table()
{
    Table table("Fig. 11: channel-count increase from DNN partitioning");
    table.setHeader({"#", "SoC", "Model", "max n (full)",
                     "max n (partitioned)", "gain"});
    for (SpeechModel model : {SpeechModel::Mlp, SpeechModel::DnCnn}) {
        for (const auto &row : partitionGains(model)) {
            table.addRow({
                std::to_string(row.socId),
                row.name,
                toString(row.model),
                std::to_string(row.maxChannelsFull),
                std::to_string(row.maxChannelsPartitioned),
                Table::formatNumber(row.gain, 2) + "x",
            });
        }
    }
    return table;
}

std::vector<std::uint64_t>
fig12Channels()
{
    return {2048, 4096, 8192};
}

std::vector<OptimizationSeries>
optimizationSweep(int soc_id, SpeechModel model)
{
    MINDFUL_TRACE_SCOPE("core", "experiments.optimization_sweep");
    MINDFUL_METRIC_COUNT("core.experiments.runs", 1);
    const SocDesign &soc = socById(soc_id);
    OptimizationStudy study{ImplantModel(soc), speechModelBuilder(model)};

    const auto channels = fig12Channels();
    // The four cumulative ladders are built once, and every series
    // gets its metadata (string copies) and outcome slots in this
    // serial prologue; the shards then only evaluate and write into
    // their own preallocated slots, keeping the pool task free of
    // allocation and container growth.
    const std::array<OptimizationSteps, 4> ladders{
        OptimizationSteps::chDr(), OptimizationSteps::laChDr(),
        OptimizationSteps::laChDrTech(),
        OptimizationSteps::laChDrTechDense()};
    std::vector<OptimizationSeries> sweep(channels.size());
    for (std::size_t i = 0; i < channels.size(); ++i) {
        sweep[i].socId = soc.id;
        sweep[i].name = soc.name;
        sweep[i].channels = channels[i];
        sweep[i].outcomes.resize(ladders.size());
    }
    // One shard per channel count n; each shard evaluates the four
    // cumulative optimization ladders for its own n.
    exec::parallelFor(
        channels.size(),
        [&](std::size_t i) {
            for (std::size_t k = 0; k < ladders.size(); ++k)
                sweep[i].outcomes[k] =
                    study.evaluate(channels[i], ladders[k]);
        },
        "core.fig12.channel_count");
    return sweep;
}

Table
fig12Table(int soc_id)
{
    std::ostringstream title;
    title << "Fig. 12 (SoC " << soc_id
          << "): feasible MLP model size [% of unoptimized] after "
             "cumulative optimizations";
    Table table(title.str());
    table.setHeader({"n", "ChDr", "La+ChDr", "La+ChDr+Tech",
                     "La+ChDr+Tech+Dense"});
    for (const auto &series : optimizationSweep(soc_id)) {
        std::vector<std::string> row{std::to_string(series.channels)};
        for (const auto &outcome : series.outcomes) {
            row.push_back(outcome.feasible
                              ? formatPercent(outcome.modelSizeFraction)
                              : "infeasible");
        }
        table.addRow(row);
    }
    return table;
}

} // namespace mindful::core::experiments
