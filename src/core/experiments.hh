/**
 * @file
 * Experiment runners: one per table / figure of the paper.
 *
 * Each runner returns structured results (consumed by the tests) and
 * can render them as a Table (consumed by the bench binaries, which
 * regenerate the paper's rows/series). The experiment-to-module map
 * lives in DESIGN.md Sec. 4.
 */

#ifndef MINDFUL_CORE_EXPERIMENTS_HH
#define MINDFUL_CORE_EXPERIMENTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "accel/synthesis_model.hh"
#include "base/table.hh"
#include "core/comm_centric.hh"
#include "core/optimization.hh"
#include "core/qam_study.hh"

namespace mindful::core::experiments {

// --- Table 1 ---------------------------------------------------------

/** The published-design summary exactly as catalogued. */
Table table1();

// --- Fig. 4: designs scaled to 1024 channels -------------------------

struct Fig4Row
{
    ScaledDesignPoint point;
    Power budget;
    bool safe = false;
};

std::vector<Fig4Row> fig4Rows();
Table fig4Table();

// --- Figs. 5-6: communication-centric OOK scaling --------------------

struct CommSweepSeries
{
    int socId = 0;
    std::string name;
    CommScalingStrategy strategy;
    std::vector<CommCentricPoint> points;
};

/** Default Fig. 5 sweep: n = 1024, 2048, 4096, 8192. */
std::vector<std::uint64_t> fig5Channels();

/** Default Fig. 6 sweep: n = 1024..8192 step 1024. */
std::vector<std::uint64_t> fig6Channels();

std::vector<CommSweepSeries>
commCentricSweep(CommScalingStrategy strategy,
                 const std::vector<std::uint64_t> &channels);

Table fig5Table(CommScalingStrategy strategy);
Table fig6Table(CommScalingStrategy strategy);

// --- Fig. 7: minimum QAM efficiency ----------------------------------

struct QamSeries
{
    int socId = 0;
    std::string name;
    std::vector<QamPoint> points;
};

/** Default Fig. 7 sweep: n = 1024..6144 step 256. */
std::vector<std::uint64_t> fig7Channels();

std::vector<QamSeries>
qamSweep(const std::vector<std::uint64_t> &channels,
         QamStudyConfig config = {});

/** Average (over wireless SoCs) max channel count at efficiency eta. */
struct QamSummary
{
    double efficiency = 0.0;
    double averageMaxChannels = 0.0;

    /** averageMaxChannels / 1024 — the paper's "2x / 4x" statements. */
    double averageGain = 0.0;
};

QamSummary qamSummary(double efficiency, QamStudyConfig config = {});

Table fig7Table();

// --- Fig. 9: accelerator synthesis study -----------------------------

struct Fig9Row
{
    int design = 0;
    accel::AcceleratorDesignPoint point;
    accel::SynthesisEstimate estimate;
};

std::vector<Fig9Row> fig9Rows();
Table fig9Table();

// --- Figs. 10-12: computation-centric studies -------------------------

/** The two evaluated decoder families (Sec. 5.3). */
enum class SpeechModel : std::uint8_t { Mlp, DnCnn };

std::string toString(SpeechModel model);

/** Builder producing the scaled model for a channel count. */
ModelBuilder speechModelBuilder(SpeechModel model);

struct DnnPowerSeries
{
    int socId = 0;
    std::string name;
    SpeechModel model;
    std::vector<CompCentricPoint> points;

    /** Largest feasible channel count for this SoC/model. */
    std::uint64_t maxChannels = 0;
};

/** Default Fig. 10 sweep: n = 1024..7168 step 1024. */
std::vector<std::uint64_t> fig10Channels();

std::vector<DnnPowerSeries>
dnnPowerSweep(SpeechModel model,
              const std::vector<std::uint64_t> &channels);

Table fig10Table(SpeechModel model);

// --- Fig. 11: DNN partitioning gains ----------------------------------

struct PartitionGainRow
{
    int socId = 0;
    std::string name;
    SpeechModel model;
    std::uint64_t maxChannelsFull = 0;
    std::uint64_t maxChannelsPartitioned = 0;

    /** maxPartitioned / maxFull (>= 1 when partitioning helps). */
    double gain = 1.0;
};

std::vector<PartitionGainRow> partitionGains(SpeechModel model);
Table fig11Table();

// --- Fig. 12: combined optimizations ----------------------------------

struct OptimizationSeries
{
    int socId = 0;
    std::string name;
    std::uint64_t channels = 0;

    /** Outcomes in Fig. 12 bar order:
     *  ChDr, La+ChDr, La+ChDr+Tech, La+ChDr+Tech+Dense. */
    std::vector<OptimizationOutcome> outcomes;
};

/** Default Fig. 12 channel counts: 2048, 4096, 8192. */
std::vector<std::uint64_t> fig12Channels();

std::vector<OptimizationSeries>
optimizationSweep(int soc_id, SpeechModel model = SpeechModel::Mlp);

Table fig12Table(int soc_id);

} // namespace mindful::core::experiments

#endif // MINDFUL_CORE_EXPERIMENTS_HH
