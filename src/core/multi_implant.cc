#include "core/multi_implant.hh"

#include "base/logging.hh"
#include "base/special_math.hh"

namespace mindful::core {

MultiImplantStudy::MultiImplantStudy(ImplantModel implant,
                                     MultiImplantConfig config)
    : _implant(std::move(implant)), _config(config)
{
    MINDFUL_ASSERT(_config.commOverheadPerExtraImplant >= 0.0,
                   "comm overhead must be non-negative");
}

MultiImplantPoint
MultiImplantStudy::evaluate(std::uint64_t total_channels,
                            std::uint32_t implants) const
{
    MINDFUL_ASSERT(total_channels > 0, "channel count must be positive");
    MINDFUL_ASSERT(implants > 0, "need at least one implant");

    MultiImplantPoint point;
    point.totalChannels = total_channels;
    point.implants = implants;
    point.channelsPerImplant = ceilDiv(total_channels, implants);

    const std::uint64_t n = point.channelsPerImplant;

    // Per implant: linear sensing (Eq. 5), frozen non-sensing area,
    // frozen digital power, comm power tracking its own data rate
    // (high-margin hypothesis) inflated by the shared-medium penalty.
    const double comm_penalty =
        1.0 + _config.commOverheadPerExtraImplant *
                  static_cast<double>(implants - 1);
    const double rate_ratio =
        static_cast<double>(n) /
        static_cast<double>(_implant.referenceChannels());

    Power sensing = _implant.sensingPower(n);
    Power comm = _implant.commPower() * rate_ratio * comm_penalty;
    Power digital = _implant.digitalPower();
    point.perImplantPower = sensing + comm + digital;

    Area per_area = _implant.sensingArea(n) + _implant.nonSensingArea();
    point.perImplantBudget = _implant.powerBudget(per_area);
    point.perImplantUtilization =
        point.perImplantPower / point.perImplantBudget;
    point.feasible = point.perImplantUtilization <= 1.0;

    point.totalPower =
        point.perImplantPower * static_cast<double>(implants);
    point.totalArea = per_area * static_cast<double>(implants);
    point.sensingAreaFraction =
        _implant.sensingArea(n) * static_cast<double>(implants) /
        point.totalArea;
    point.aggregateRate = _implant.sensingThroughput(n * implants);
    return point;
}

std::vector<MultiImplantPoint>
MultiImplantStudy::sweep(std::uint64_t total_channels,
                         std::uint32_t max_implants) const
{
    std::vector<MultiImplantPoint> points;
    points.reserve(max_implants);
    for (std::uint32_t count = 1; count <= max_implants; ++count)
        points.push_back(evaluate(total_channels, count));
    return points;
}

std::uint32_t
MultiImplantStudy::minimumImplants(std::uint64_t total_channels,
                                   std::uint32_t max_implants) const
{
    for (std::uint32_t count = 1; count <= max_implants; ++count)
        if (evaluate(total_channels, count).feasible)
            return count;
    return 0;
}

std::uint32_t
MultiImplantStudy::bestImplantCount(std::uint64_t total_channels,
                                    std::uint32_t max_implants) const
{
    std::uint32_t best = 0;
    double best_power = 0.0;
    for (std::uint32_t count = 1; count <= max_implants; ++count) {
        auto point = evaluate(total_channels, count);
        if (!point.feasible)
            continue;
        if (best == 0 || point.totalPower.inWatts() < best_power) {
            best = count;
            best_power = point.totalPower.inWatts();
        }
    }
    return best;
}

} // namespace mindful::core
