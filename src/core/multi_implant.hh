/**
 * @file
 * Multi-implant scaling study (extension; paper Sec. 7 related work).
 *
 * The paper notes that some systems scale "by employing multiple
 * implanted SoCs" (SCALO) and that the naive design "is effectively
 * equivalent to scaling the number of implanted SoCs". This study
 * makes the trade-off explicit: to sense N total channels, deploy
 * `count` implants of N/count channels each. Every implant carries a
 * full non-sensing block (transceiver + digital), each must satisfy
 * the 40 mW/cm^2 density cap *individually*, and sharing the wireless
 * medium costs a coordination overhead on the transmit energy:
 *
 *     Eb_eff = Eb * (1 + overhead * (count - 1))
 *
 * More implants buy per-implant feasibility (each chip is smaller and
 * cooler) at the price of replicated overhead power/area and worse
 * volumetric efficiency — quantifying when "many small" beats "one
 * large".
 */

#ifndef MINDFUL_CORE_MULTI_IMPLANT_HH
#define MINDFUL_CORE_MULTI_IMPLANT_HH

#include <vector>

#include "core/scaling.hh"

namespace mindful::core {

/** Study knobs. */
struct MultiImplantConfig
{
    /** Fractional Eb penalty per additional implant sharing the
     *  uplink (TDMA guard intervals, re-sync, interference). */
    double commOverheadPerExtraImplant = 0.05;
};

/** One evaluated (total channels, implant count) configuration. */
struct MultiImplantPoint
{
    std::uint64_t totalChannels = 0;
    std::uint32_t implants = 0;
    std::uint64_t channelsPerImplant = 0;

    Power perImplantPower;
    Power perImplantBudget;
    double perImplantUtilization = 0.0;

    Power totalPower;
    Area totalArea;
    double sensingAreaFraction = 0.0;
    DataRate aggregateRate;

    /** Every implant individually within its budget. */
    bool feasible = false;
};

/** Evaluates implant-count choices for one base design. */
class MultiImplantStudy
{
  public:
    explicit MultiImplantStudy(ImplantModel implant,
                               MultiImplantConfig config = {});

    const ImplantModel &implant() const { return _implant; }

    /** Evaluate @p implants implants covering @p total_channels. */
    MultiImplantPoint evaluate(std::uint64_t total_channels,
                               std::uint32_t implants) const;

    /** Sweep counts 1..max_implants at fixed total channels. */
    std::vector<MultiImplantPoint>
    sweep(std::uint64_t total_channels,
          std::uint32_t max_implants = 16) const;

    /**
     * Fewest implants making @p total_channels feasible (0 when even
     * @p max_implants implants cannot).
     */
    std::uint32_t minimumImplants(std::uint64_t total_channels,
                                  std::uint32_t max_implants = 16) const;

    /**
     * Lowest-total-power feasible count (0 when none is feasible).
     */
    std::uint32_t bestImplantCount(std::uint64_t total_channels,
                                   std::uint32_t max_implants = 16) const;

  private:
    ImplantModel _implant;
    MultiImplantConfig _config;
};

} // namespace mindful::core

#endif // MINDFUL_CORE_MULTI_IMPLANT_HH
