#include "core/optimization.hh"

#include "base/logging.hh"

namespace mindful::core {

OptimizationSteps
OptimizationSteps::chDr()
{
    return {};
}

OptimizationSteps
OptimizationSteps::laChDr()
{
    OptimizationSteps steps;
    steps.layerReduction = true;
    return steps;
}

OptimizationSteps
OptimizationSteps::laChDrTech()
{
    OptimizationSteps steps = laChDr();
    steps.technologyScaling = true;
    return steps;
}

OptimizationSteps
OptimizationSteps::laChDrTechDense()
{
    OptimizationSteps steps = laChDrTech();
    steps.channelDensity = true;
    return steps;
}

std::string
OptimizationSteps::label() const
{
    std::string label = layerReduction ? "La+ChDr" : "ChDr";
    if (technologyScaling)
        label += "+Tech";
    if (channelDensity)
        label += "+Dense";
    return label;
}

OptimizationStudy::OptimizationStudy(ImplantModel implant,
                                     ModelBuilder builder)
    : _implant(std::move(implant)), _builder(std::move(builder))
{
    MINDFUL_ASSERT(_builder != nullptr, "a model builder is required");
}

OptimizationOutcome
OptimizationStudy::evaluate(std::uint64_t channels,
                            const OptimizationSteps &steps) const
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");

    CompCentricConfig config;
    if (steps.technologyScaling)
        config.mac = accel::scaled12nm();
    if (steps.channelDensity)
        config.sensingAreaScale = 0.5;

    CompCentricModel model(_implant, _builder, config);

    OptimizationOutcome outcome;
    outcome.channels = channels;
    outcome.steps = steps;

    outcome.activeChannels =
        model.maxActiveChannels(channels, steps.layerReduction);
    if (outcome.activeChannels == 0)
        return outcome; // not even a single-channel model fits

    outcome.feasible = true;
    outcome.point = model.evaluate(channels, outcome.activeChannels,
                                   steps.layerReduction);

    double feasible_weights = static_cast<double>(
        _builder(outcome.activeChannels).totalWeights());
    double full_weights =
        static_cast<double>(_builder(channels).totalWeights());
    outcome.modelSizeFraction = feasible_weights / full_weights;
    return outcome;
}

std::vector<std::uint8_t>
channelDropoutMask(std::uint64_t channels, std::uint64_t active)
{
    MINDFUL_ASSERT(active <= channels, "active channel count ", active,
                   " exceeds total ", channels);
    std::vector<std::uint8_t> mask(channels, 0);
    std::fill(mask.begin(),
              mask.begin() + static_cast<std::ptrdiff_t>(active), 1);
    return mask;
}

std::vector<std::uint8_t>
expandChannelMask(const std::vector<std::uint8_t> &mask,
                  std::size_t features_per_channel)
{
    MINDFUL_ASSERT(features_per_channel > 0,
                   "features per channel must be positive");
    std::vector<std::uint8_t> expanded;
    expanded.reserve(mask.size() * features_per_channel);
    for (const std::uint8_t v : mask)
        expanded.insert(expanded.end(), features_per_channel,
                        v != 0 ? 1 : 0);
    return expanded;
}

} // namespace mindful::core
