#include "core/optimization.hh"

#include "base/logging.hh"

namespace mindful::core {

OptimizationSteps
OptimizationSteps::chDr()
{
    return {};
}

OptimizationSteps
OptimizationSteps::laChDr()
{
    OptimizationSteps steps;
    steps.layerReduction = true;
    return steps;
}

OptimizationSteps
OptimizationSteps::laChDrTech()
{
    OptimizationSteps steps = laChDr();
    steps.technologyScaling = true;
    return steps;
}

OptimizationSteps
OptimizationSteps::laChDrTechDense()
{
    OptimizationSteps steps = laChDrTech();
    steps.channelDensity = true;
    return steps;
}

std::string
OptimizationSteps::label() const
{
    std::string label = layerReduction ? "La+ChDr" : "ChDr";
    if (technologyScaling)
        label += "+Tech";
    if (channelDensity)
        label += "+Dense";
    return label;
}

OptimizationStudy::OptimizationStudy(ImplantModel implant,
                                     ModelBuilder builder)
    : _implant(std::move(implant)), _builder(std::move(builder))
{
    MINDFUL_ASSERT(_builder != nullptr, "a model builder is required");
}

OptimizationOutcome
OptimizationStudy::evaluate(std::uint64_t channels,
                            const OptimizationSteps &steps) const
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");

    CompCentricConfig config;
    if (steps.technologyScaling)
        config.mac = accel::scaled12nm();
    if (steps.channelDensity)
        config.sensingAreaScale = 0.5;

    CompCentricModel model(_implant, _builder, config);

    OptimizationOutcome outcome;
    outcome.channels = channels;
    outcome.steps = steps;

    outcome.activeChannels =
        model.maxActiveChannels(channels, steps.layerReduction);
    if (outcome.activeChannels == 0)
        return outcome; // not even a single-channel model fits

    outcome.feasible = true;
    outcome.point = model.evaluate(channels, outcome.activeChannels,
                                   steps.layerReduction);

    double feasible_weights = static_cast<double>(
        _builder(outcome.activeChannels).totalWeights());
    double full_weights =
        static_cast<double>(_builder(channels).totalWeights());
    outcome.modelSizeFraction = feasible_weights / full_weights;
    return outcome;
}

} // namespace mindful::core
