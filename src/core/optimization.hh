/**
 * @file
 * Combined optimization study (paper Sec. 6.2, Fig. 12).
 *
 * For a given NI channel count n, the study finds the largest DNN
 * workload that fits the power budget after applying a cumulative
 * sequence of optimizations:
 *
 *  - ChDr (channel dropout): scale the DNN for only n' <= n active
 *    channels (spike-sorting-style data reduction);
 *  - La (layer reduction): partition the DNN at its earliest viable
 *    cut and keep only the prefix on the implant;
 *  - Tech (technology scaling): resynthesize the MAC at 12 nm
 *    (t_MAC = 1 ns, P_MAC = 0.026 mW);
 *  - Dense (channel density): halve the sensing area per channel,
 *    which shrinks the chip — and therefore the power budget.
 *
 * The reported metric is the feasible model size as a fraction of
 * the unoptimized model scaled to the full n.
 */

#ifndef MINDFUL_CORE_OPTIMIZATION_HH
#define MINDFUL_CORE_OPTIMIZATION_HH

#include "core/comp_centric.hh"

namespace mindful::core {

/** Which optimizations are active (applied cumulatively in Fig. 12). */
struct OptimizationSteps
{
    bool channelDropout = true; //!< always on in the Fig. 12 bars
    bool layerReduction = false;
    bool technologyScaling = false;
    bool channelDensity = false;

    /** The four cumulative Fig. 12 configurations. */
    static OptimizationSteps chDr();
    static OptimizationSteps laChDr();
    static OptimizationSteps laChDrTech();
    static OptimizationSteps laChDrTechDense();

    /** Bar label, e.g. "La+ChDr+Tech". */
    std::string label() const;
};

/** Outcome of one (n, steps) evaluation. */
struct OptimizationOutcome
{
    std::uint64_t channels = 0;
    OptimizationSteps steps;

    /** False when no dropout level fits at all. */
    bool feasible = false;

    /** Largest feasible active-channel count n'. */
    std::uint64_t activeChannels = 0;

    /** weights(model(n')) / weights(model(n)) in [0, 1]. */
    double modelSizeFraction = 0.0;

    /** The winning design point. */
    CompCentricPoint point;
};

/** Fig. 12 evaluator for one implant and one DNN family. */
class OptimizationStudy
{
  public:
    OptimizationStudy(ImplantModel implant, ModelBuilder builder);

    const ImplantModel &implant() const { return _implant; }

    OptimizationOutcome evaluate(std::uint64_t channels,
                                 const OptimizationSteps &steps) const;

  private:
    ImplantModel _implant;
    ModelBuilder _builder;
};

/**
 * Deterministic channel-dropout mask: the first @p active of
 * @p channels entries are 1, the rest 0 — the same "keep the best n'
 * channels" convention the analytic study uses when it rebuilds a
 * smaller model at n'. Feed to dnn::Network::setInputDropout to run
 * dropout as executed sparsity on the full-width model instead.
 */
std::vector<std::uint8_t> channelDropoutMask(std::uint64_t channels,
                                             std::uint64_t active);

/**
 * Expand a per-channel mask to a per-feature mask for flattened
 * channel-major inputs (e.g. the speech MLP's channels x window
 * layout): each channel entry is repeated @p features_per_channel
 * times.
 */
std::vector<std::uint8_t>
expandChannelMask(const std::vector<std::uint8_t> &mask,
                  std::size_t features_per_channel);

} // namespace mindful::core

#endif // MINDFUL_CORE_OPTIMIZATION_HH
