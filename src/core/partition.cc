#include "core/partition.hh"

#include "base/logging.hh"

namespace mindful::core {

PartitionPlan
earliestViableCut(const dnn::Network &network, std::uint64_t max_elements)
{
    MINDFUL_ASSERT(max_elements > 0, "cut volume limit must be positive");
    MINDFUL_ASSERT(network.layerCount() > 0, "network must not be empty");

    PartitionPlan plan;
    plan.onImplantLayers = network.layerCount();

    auto census = network.census();
    std::uint64_t total_macs = dnn::totalMacs(census);

    std::uint64_t prefix_macs = 0;
    for (std::size_t i = 0; i + 1 < network.layerCount(); ++i) {
        prefix_macs += census[i].totalMacs();
        if (network.outputElements(i) <= max_elements) {
            // A zero-MAC prefix would leave the wearable the whole
            // network, which is the communication-centric case, not
            // a partition; require at least one MAC on the implant.
            if (prefix_macs == 0)
                continue;
            plan.viable = true;
            plan.onImplantLayers = i + 1;
            plan.cutElements = network.outputElements(i);
            plan.onImplantMacFraction =
                total_macs
                    ? static_cast<double>(prefix_macs) /
                          static_cast<double>(total_macs)
                    : 1.0;
            return plan;
        }
    }
    return plan;
}

} // namespace mindful::core
