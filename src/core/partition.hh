/**
 * @file
 * DNN partitioning between implant and wearable (paper Sec. 6.1).
 *
 * The implant may run only a prefix of the DNN and transmit the
 * intermediate activations; the wearable finishes the network. The
 * cut is viable only if the intermediate volume fits the uplink of a
 * 1024-channel communication-centric design — i.e. the layer output
 * must not exceed 1024 elements per inference. The paper picks the
 * *earliest* such layer (fewest on-implant MACs).
 */

#ifndef MINDFUL_CORE_PARTITION_HH
#define MINDFUL_CORE_PARTITION_HH

#include <cstdint>

#include "dnn/network.hh"

namespace mindful::core {

/** A chosen implant/wearable split. */
struct PartitionPlan
{
    /** False when no cut before the last layer satisfies the rate
     *  constraint (the whole DNN must stay on the implant). */
    bool viable = false;

    /** Number of layers kept on the implant (prefix length). */
    std::size_t onImplantLayers = 0;

    /** Elements transmitted per inference at the cut. */
    std::uint64_t cutElements = 0;

    /** Share of the network's MACs remaining on the implant. */
    double onImplantMacFraction = 1.0;
};

/**
 * Earliest viable cut of @p network whose transmitted volume is at
 * most @p max_elements per inference. Cutting after the final layer
 * is "no partition" and is never returned as viable.
 */
PartitionPlan earliestViableCut(const dnn::Network &network,
                                std::uint64_t max_elements);

} // namespace mindful::core

#endif // MINDFUL_CORE_PARTITION_HH
