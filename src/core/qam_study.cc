#include "core/qam_study.hh"

#include "base/logging.hh"

namespace mindful::core {

namespace {

comm::QamTransceiver
makeTransceiver(const ImplantModel &implant, const QamStudyConfig &config)
{
    // Symbol rate = reference data rate with 1 bit per symbol: the
    // OOK antenna bandwidth the QAM implementation must reuse.
    Frequency symbol_rate =
        Frequency::hertz(implant.referenceDataRate().inBitsPerSecond());
    return comm::QamTransceiver(symbol_rate, config.link, config.targetBer);
}

} // namespace

QamStudy::QamStudy(ImplantModel implant, QamStudyConfig config)
    : _implant(std::move(implant)), _config(config),
      _transceiver(makeTransceiver(_implant, _config))
{
}

QamPoint
QamStudy::evaluate(std::uint64_t channels) const
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");

    QamPoint point;
    point.channels = channels;
    point.dataRate = _implant.sensingThroughput(channels);
    point.bitsPerSymbol = _transceiver.requiredBitsPerSymbol(point.dataRate);
    point.idealTxPower =
        point.dataRate * _transceiver.txEnergyPerBit(point.bitsPerSymbol);

    // Advanced modulation reuses the existing non-sensing area
    // (Sec. 5.2), so the budget grows only through sensing area.
    Area total_area =
        _implant.sensingArea(channels) + _implant.nonSensingArea();
    Power budget = _implant.powerBudget(total_area);
    point.commAllowance = budget - _implant.sensingPower(channels) -
                          _implant.digitalPower();

    point.minimumEfficiency =
        _transceiver.minimumEfficiency(point.dataRate, point.commAllowance);
    return point;
}

std::vector<QamPoint>
QamStudy::sweep(const std::vector<std::uint64_t> &channel_counts) const
{
    std::vector<QamPoint> points;
    points.reserve(channel_counts.size());
    for (std::uint64_t n : channel_counts)
        points.push_back(evaluate(n));
    return points;
}

std::uint64_t
QamStudy::maxChannels(double eta, std::uint64_t max_channels,
                      std::uint64_t step) const
{
    MINDFUL_ASSERT(eta > 0.0 && eta <= 1.0,
                   "QAM efficiency must lie in (0, 1]");
    MINDFUL_ASSERT(step > 0, "scan step must be positive");

    // The required efficiency is not monotone within a bits-per-
    // symbol interval (allowance grows with n), so scan and keep the
    // largest feasible point.
    std::uint64_t best = 0;
    for (std::uint64_t n = step; n <= max_channels; n += step) {
        if (evaluate(n).feasibleAt(eta))
            best = n;
    }
    return best;
}

} // namespace mindful::core
