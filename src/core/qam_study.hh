/**
 * @file
 * Advanced-modulation feasibility study (paper Sec. 5.2, Fig. 7).
 *
 * The antenna bandwidth — hence the symbol rate — is frozen at the
 * 1024-channel value; every further 1024 channels add one bit per
 * symbol. For each channel count the study derives the required
 * Eb/N0 from the Gray-QAM BER equation at BER = 1e-6, runs it
 * through the 60 dB + 20 dB link budget, and reports the minimum
 * *QAM efficiency* (power-amplifier/implementation efficiency)
 * needed to keep the whole SoC inside its power budget.
 */

#ifndef MINDFUL_CORE_QAM_STUDY_HH
#define MINDFUL_CORE_QAM_STUDY_HH

#include <vector>

#include "comm/transceiver.hh"
#include "core/scaling.hh"

namespace mindful::core {

/** Study parameters (paper nominal values). */
struct QamStudyConfig
{
    comm::LinkBudget link; //!< 60 dB path loss + 20 dB margin default
    double targetBer = 1e-6;
};

/** One evaluated channel count. */
struct QamPoint
{
    std::uint64_t channels = 0;
    unsigned bitsPerSymbol = 0;

    /** Required uplink data rate d * n * f. */
    DataRate dataRate;

    /** Radiated power at 100% efficiency. */
    Power idealTxPower;

    /** Budget left for the transmitter after sensing + digital. */
    Power commAllowance;

    /** Fig. 7 y-value; > 1 (or infinite) means infeasible even at
     *  an ideal implementation. */
    double minimumEfficiency = 0.0;

    bool
    feasibleAt(double efficiency) const
    {
        return minimumEfficiency <= efficiency;
    }
};

/** Fig. 7 evaluation for one implant. */
class QamStudy
{
  public:
    explicit QamStudy(ImplantModel implant, QamStudyConfig config = {});

    const ImplantModel &implant() const { return _implant; }
    const QamStudyConfig &config() const { return _config; }
    const comm::QamTransceiver &transceiver() const { return _transceiver; }

    /** Evaluate one channel count. */
    QamPoint evaluate(std::uint64_t channels) const;

    /** Evaluate a sweep. */
    std::vector<QamPoint>
    sweep(const std::vector<std::uint64_t> &channel_counts) const;

    /**
     * Largest channel count supportable at QAM efficiency @p eta
     * (scanned at @p step granularity up to @p max_channels).
     */
    std::uint64_t maxChannels(double eta,
                              std::uint64_t max_channels = 16384,
                              std::uint64_t step = 64) const;

  private:
    ImplantModel _implant;
    QamStudyConfig _config;
    comm::QamTransceiver _transceiver;
};

} // namespace mindful::core

#endif // MINDFUL_CORE_QAM_STUDY_HH
