#include "core/report.hh"

#include <sstream>

#include "base/table.hh"
#include "core/comm_centric.hh"
#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/multi_implant.hh"
#include "core/optimization.hh"
#include "core/qam_study.hh"

namespace mindful::core {

namespace {

std::string
num(double value, int precision = 2)
{
    return Table::formatNumber(value, precision);
}

std::string
pct(double fraction)
{
    return num(fraction * 100.0, 1) + "%";
}

void
overviewSection(std::ostringstream &os, const SocDesign &design,
                const ImplantModel &implant)
{
    os << "# MINDFUL design report: " << design.name << "\n\n";
    if (!design.reference.empty())
        os << "*Reference:* " << design.reference << "\n\n";

    os << "## Overview\n\n";
    os << "| parameter | value |\n|---|---|\n";
    os << "| reported channels | " << design.reportedChannels << " |\n";
    os << "| reported area | "
       << num(design.reportedArea.inSquareMillimetres()) << " mm^2 |\n";
    os << "| reported power | "
       << num(design.reportedPower.inMilliwatts(), 3) << " mW |\n";
    os << "| power density | "
       << num(design.reportedPowerDensity()
                  .inMilliwattsPerSquareCentimetre(),
              1)
       << " mW/cm^2 |\n";
    os << "| sampling | " << num(design.samplingFrequency.inKilohertz(), 1)
       << " kHz x " << design.sampleBits << " b |\n";
    os << "| wireless | " << (design.wireless ? "yes" : "no") << " |\n";

    os << "\nScaled to the 1024-channel standard (Sec. 4.1): "
       << num(implant.referenceArea().inSquareMillimetres(), 1)
       << " mm^2, " << num(implant.referencePower().inMilliwatts(), 2)
       << " mW, uplink "
       << num(implant.referenceDataRate().inMegabitsPerSecond(), 2)
       << " Mbps.";

    auto verdict = thermal::PowerBudget().check(implant.referencePower(),
                                                implant.referenceArea());
    os << " Thermal budget utilization "
       << pct(verdict.budgetUtilization) << " ("
       << (verdict.safe ? "SAFE" : "**OVER BUDGET**") << ").\n\n";
}

void
commSection(std::ostringstream &os, const ImplantModel &implant,
            const ReportOptions &options)
{
    os << "## Raw-data streaming (communication-centric)\n\n";

    CommCentricModel margin(implant, CommScalingStrategy::HighMargin);
    std::uint64_t crossover = margin.maxSafeChannels();
    os << "High-margin OOK scaling stays within the budget up to **"
       << crossover << " channels**";
    if (crossover >= 65536)
        os << " (no crossover in the scanned range)";
    os << ".\n\n";

    QamStudy qam(implant);
    os << "| channels | bits/symbol | min QAM efficiency |\n|---|---|---|\n";
    for (std::uint64_t n : options.channelCounts) {
        auto point = qam.evaluate(n);
        os << "| " << n << " | " << point.bitsPerSymbol << " | "
           << (point.minimumEfficiency > 10.0
                   ? std::string(">1000%")
                   : pct(point.minimumEfficiency))
           << " |\n";
    }
    os << "\nMax channels at 15% / 20% / 100% QAM efficiency: "
       << qam.maxChannels(0.15) << " / " << qam.maxChannels(0.20) << " / "
       << qam.maxChannels(1.0) << ".\n\n";
}

void
compSection(std::ostringstream &os, const ImplantModel &implant,
            const ReportOptions &options)
{
    os << "## On-implant decoding (computation-centric)\n\n";
    os << "| model | feasible @1024 | max channels | with partitioning "
          "|\n|---|---|---|---|\n";
    for (auto model : {experiments::SpeechModel::Mlp,
                       experiments::SpeechModel::DnCnn}) {
        CompCentricModel comp(implant,
                              experiments::speechModelBuilder(model));
        auto at_1024 = comp.evaluate(1024);
        os << "| " << experiments::toString(model) << " | "
           << (at_1024.feasible ? "yes" : "no") << " ("
           << pct(at_1024.budgetUtilization) << ") | "
           << comp.maxChannels() << " | " << comp.maxChannels(true)
           << " |\n";
    }

    if (options.includeOptimizations) {
        os << "\n### Optimization ladder (MLP model size, % of "
              "unoptimized)\n\n";
        OptimizationStudy study(implant,
                                experiments::speechModelBuilder(
                                    experiments::SpeechModel::Mlp));
        os << "| n | ChDr | La+ChDr | La+ChDr+Tech | +Dense "
              "|\n|---|---|---|---|---|\n";
        for (std::uint64_t n : options.channelCounts) {
            os << "| " << n << " |";
            for (const auto &steps :
                 {OptimizationSteps::chDr(), OptimizationSteps::laChDr(),
                  OptimizationSteps::laChDrTech(),
                  OptimizationSteps::laChDrTechDense()}) {
                auto outcome = study.evaluate(n, steps);
                os << ' '
                   << (outcome.feasible ? pct(outcome.modelSizeFraction)
                                        : std::string("infeasible"))
                   << " |";
            }
            os << '\n';
        }
    }
    os << '\n';
}

void
multiImplantSection(std::ostringstream &os, const ImplantModel &implant,
                    const ReportOptions &options)
{
    os << "## Multi-implant option\n\n";
    MultiImplantStudy study(implant);
    os << "| total channels | min implants | best count | total power "
          "|\n|---|---|---|---|\n";
    for (std::uint64_t n : options.channelCounts) {
        auto minimum = study.minimumImplants(n);
        auto best = study.bestImplantCount(n);
        os << "| " << n << " | "
           << (minimum ? std::to_string(minimum) : std::string("-"))
           << " | " << (best ? std::to_string(best) : std::string("-"))
           << " | ";
        if (best)
            os << num(study.evaluate(n, best).totalPower.inMilliwatts(),
                      1)
               << " mW";
        else
            os << "-";
        os << " |\n";
    }
    os << '\n';
}

} // namespace

std::string
designReport(const SocDesign &design, const ReportOptions &options)
{
    ImplantModel implant(design);
    std::ostringstream os;

    overviewSection(os, design, implant);
    if (options.includeCommCentric)
        commSection(os, implant, options);
    if (options.includeCompCentric)
        compSection(os, implant, options);
    if (options.includeMultiImplant)
        multiImplantSection(os, implant, options);

    os << "---\nGenerated by MINDFUL-cpp.\n";
    return os.str();
}

} // namespace mindful::core
