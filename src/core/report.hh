/**
 * @file
 * Markdown design-report generator.
 *
 * Runs every MINDFUL study against one SoC design and renders the
 * results as a self-contained markdown document — the artifact a
 * design team would circulate when assessing an implant proposal.
 */

#ifndef MINDFUL_CORE_REPORT_HH
#define MINDFUL_CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/soc_design.hh"

namespace mindful::core {

/** Report contents toggles. */
struct ReportOptions
{
    bool includeCommCentric = true;  //!< Secs. 5.1-5.2 studies
    bool includeCompCentric = true;  //!< Secs. 5.3 + 6.1 studies
    bool includeOptimizations = true; //!< Sec. 6.2 ladder
    bool includeMultiImplant = true; //!< multi-implant extension

    /** Channel counts examined by the per-scale sections. */
    std::vector<std::uint64_t> channelCounts{2048, 4096, 8192};
};

/** Render the full design report for @p design. */
std::string designReport(const SocDesign &design,
                         const ReportOptions &options = {});

} // namespace mindful::core

#endif // MINDFUL_CORE_REPORT_HH
