#include "core/scaling.hh"

#include <cmath>

#include "base/logging.hh"

namespace mindful::core {

ScaledDesignPoint
scaleDesign(const SocDesign &design, std::uint64_t target_channels)
{
    MINDFUL_ASSERT(target_channels > 0, "target channels must be positive");
    MINDFUL_ASSERT(design.reportedChannels > 0,
                   "design must report a channel count");

    const std::uint64_t base = design.recipe.baseChannels
                                   ? design.recipe.baseChannels
                                   : design.reportedChannels;
    const double ratio = static_cast<double>(target_channels) /
                         static_cast<double>(base);

    double area_factor;
    double power_factor = ratio; // power scales linearly in all laws
    switch (design.recipe.law) {
      case ScalingLaw::SqrtAreaLinearPower:
        area_factor = std::sqrt(ratio);
        break;
      case ScalingLaw::Linear:
        area_factor = ratio;
        break;
      default:
        MINDFUL_PANIC("unknown scaling law");
    }

    ScaledDesignPoint point;
    point.socId = design.id;
    point.name = design.name;
    point.channels = target_channels;
    point.area = design.reportedArea * area_factor *
                 design.recipe.areaCorrection;
    point.power = design.reportedPower * power_factor *
                  design.recipe.powerCorrection;
    return point;
}

ImplantModel::ImplantModel(SocDesign design, thermal::SafetyLimits limits)
    : _design(std::move(design)), _budget(limits)
{
    MINDFUL_ASSERT(_design.sensingPowerFraction > 0.0 &&
                       _design.sensingPowerFraction < 1.0,
                   "sensing power fraction must lie in (0, 1)");
    MINDFUL_ASSERT(_design.sensingAreaFraction > 0.0 &&
                       _design.sensingAreaFraction < 1.0,
                   "sensing area fraction must lie in (0, 1)");
    MINDFUL_ASSERT(_design.commShareOfNonSensing >= 0.0 &&
                       _design.commShareOfNonSensing <= 1.0,
                   "comm share must lie in [0, 1]");
    MINDFUL_ASSERT(_design.samplingFrequency.inHertz() > 0.0,
                   "sampling frequency must be positive");

    ScaledDesignPoint reference = scaleDesign(_design, kStandardChannels);
    _referenceArea = reference.area;
    _referencePower = reference.power;
}

Power
ImplantModel::referenceSensingPower() const
{
    return _referencePower * _design.sensingPowerFraction;
}

Area
ImplantModel::referenceSensingArea() const
{
    return _referenceArea * _design.sensingAreaFraction;
}

Power
ImplantModel::nonSensingPower() const
{
    return _referencePower - referenceSensingPower();
}

Area
ImplantModel::nonSensingArea() const
{
    return _referenceArea - referenceSensingArea();
}

Power
ImplantModel::commPower() const
{
    return nonSensingPower() * _design.commShareOfNonSensing;
}

Power
ImplantModel::digitalPower() const
{
    return nonSensingPower() - commPower();
}

EnergyPerBit
ImplantModel::commEnergyPerBit() const
{
    return commPower() / referenceDataRate();
}

Power
ImplantModel::sensingPower(std::uint64_t channels) const
{
    return referenceSensingPower() *
           (static_cast<double>(channels) /
            static_cast<double>(kStandardChannels));
}

Area
ImplantModel::sensingArea(std::uint64_t channels) const
{
    return referenceSensingArea() *
           (static_cast<double>(channels) /
            static_cast<double>(kStandardChannels));
}

DataRate
ImplantModel::sensingThroughput(std::uint64_t channels) const
{
    return _design.samplingFrequency *
           (static_cast<double>(_design.sampleBits) *
            static_cast<double>(channels));
}

DataRate
ImplantModel::referenceDataRate() const
{
    return sensingThroughput(kStandardChannels);
}

Frequency
ImplantModel::samplingFrequency() const
{
    return _design.samplingFrequency;
}

Time
ImplantModel::samplePeriod() const
{
    return period(_design.samplingFrequency);
}

} // namespace mindful::core
