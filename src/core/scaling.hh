/**
 * @file
 * Channel-count scaling of implanted SoC designs (paper Sec. 4).
 *
 * scaleDesign() implements the Sec. 4.1 extrapolation of a reported
 * design to a target channel count (Eq. 1 in ratio form, plus the
 * per-SoC corrections). ImplantModel wraps the resulting
 * 1024-channel operating point and exposes the Sec. 4.2 / 4.3
 * decomposition every downstream study consumes:
 *
 *   Asoc(n) = Asensing(n) + Anon-sensing(n)          (Eq. 2)
 *   Psoc(n) = Psensing(n) + Pnon-sensing(n)
 *   Psoc(n) / Asoc(n) <= 40 mW/cm^2                  (Eq. 3)
 *   Asensing(n) = n * Asensing(1024) / 1024          (Eq. 5)
 *   Psensing(n) = n * Psensing(1024) / 1024
 *   Tsensing(n) = d * n * f                          (Eq. 6)
 */

#ifndef MINDFUL_CORE_SCALING_HH
#define MINDFUL_CORE_SCALING_HH

#include "core/soc_design.hh"
#include "thermal/safety.hh"

namespace mindful::core {

/** The modern channel-count standard the paper scales designs to. */
inline constexpr std::uint64_t kStandardChannels = 1024;

/**
 * Scale a reported design to @p target_channels per Sec. 4.1:
 * ratio form of Eq. 1 (area ~ sqrt, power ~ linear), or fully linear
 * for shank-replicated designs, then the recipe's corrections.
 */
ScaledDesignPoint scaleDesign(const SocDesign &design,
                              std::uint64_t target_channels);

/**
 * An implanted SoC normalized to the 1024-channel operating point
 * and decomposed into sensing / non-sensing components.
 */
class ImplantModel
{
  public:
    explicit ImplantModel(SocDesign design,
                          thermal::SafetyLimits limits = {});

    const SocDesign &design() const { return _design; }
    const thermal::PowerBudget &budget() const { return _budget; }

    // --- Reference (1024-channel) operating point -----------------

    std::uint64_t referenceChannels() const { return kStandardChannels; }
    Area referenceArea() const { return _referenceArea; }
    Power referencePower() const { return _referencePower; }

    Power referenceSensingPower() const;
    Area referenceSensingArea() const;

    /** Non-sensing power / area at the reference point. */
    Power nonSensingPower() const;
    Area nonSensingArea() const;

    /** RF transceiver share of the non-sensing power. */
    Power commPower() const;

    /** Remaining (digital / packetization) non-sensing power. */
    Power digitalPower() const;

    /**
     * Transceiver energy per bit inferred from the reference comm
     * power and the reference data rate — the constant-Eb anchor of
     * the OOK analyses (Sec. 5.1).
     */
    EnergyPerBit commEnergyPerBit() const;

    // --- Scaling laws (Eqs. 5-6) ----------------------------------

    Power sensingPower(std::uint64_t channels) const;
    Area sensingArea(std::uint64_t channels) const;

    /** Tsensing(n) = d * n * f. */
    DataRate sensingThroughput(std::uint64_t channels) const;

    /** Data rate at the reference point (the OOK/QAM baud anchor). */
    DataRate referenceDataRate() const;

    Frequency samplingFrequency() const;
    unsigned sampleBits() const { return _design.sampleBits; }

    /** Real-time deadline t = 1/f (Sec. 5.3). */
    Time samplePeriod() const;

    /** Pbudget(A) under this model's safety limits (Eq. 3). */
    Power powerBudget(Area area) const { return _budget.budget(area); }

  private:
    SocDesign _design;
    thermal::PowerBudget _budget;
    Area _referenceArea;
    Power _referencePower;
};

} // namespace mindful::core

#endif // MINDFUL_CORE_SCALING_HH
