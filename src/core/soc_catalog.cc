#include "core/soc_catalog.hh"

#include "base/logging.hh"

namespace mindful::core {

namespace {

/**
 * Build the Table 1 catalog.
 *
 * Reported power is derived from the published power density and
 * brain-contact area; where the transcribed table is internally
 * inconsistent with the paper's prose (SoCs 5 and 6) we follow the
 * prose and record the choice in EXPERIMENTS.md. Sensing fractions
 * and the comm share of non-sensing power are calibrated constants
 * (the paper's artifact parameter files are not public in the text).
 */
std::vector<SocDesign>
buildCatalog()
{
    using ni::SensorType;
    std::vector<SocDesign> catalog;

    {
        SocDesign soc;
        soc.id = 1;
        soc.name = "BISC";
        soc.reference = "Jung et al. 2024 / Zeng et al. 2023";
        soc.sensorType = SensorType::Electrode;
        soc.reportedChannels = 1024;
        soc.reportedArea = Area::squareMillimetres(144.0);
        soc.reportedPower = Power::milliwatts(38.88); // 27 mW/cm^2
        soc.samplingFrequency = Frequency::kilohertz(8.0);
        soc.wireless = true;
        soc.validatedInOrExVivo = true;
        soc.sensingPowerFraction = 0.45;
        soc.sensingAreaFraction = 0.50;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 2;
        soc.name = "Gilhotra";
        soc.reference = "Gilhotra et al. 2024";
        soc.sensorType = SensorType::Spad;
        soc.reportedChannels = 49152;
        soc.reportedArea = Area::squareMillimetres(144.0);
        soc.reportedPower = Power::milliwatts(47.52); // 33 mW/cm^2
        soc.samplingFrequency = Frequency::kilohertz(8.0);
        soc.wireless = true;
        soc.validatedInOrExVivo = true;
        // SPAD imager: the paper uses its nominal parameters for a
        // 1024-channel configuration.
        soc.recipe.baseChannels = 1024;
        soc.sensingPowerFraction = 0.40;
        soc.sensingAreaFraction = 0.55;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 3;
        soc.name = "Neuralink";
        soc.reference = "Musk et al. 2019";
        soc.sensorType = SensorType::Electrode;
        soc.reportedChannels = 1024;
        soc.reportedArea = Area::squareMillimetres(20.0);
        soc.reportedPower = Power::milliwatts(7.8); // 39 mW/cm^2
        soc.samplingFrequency = Frequency::kilohertz(10.0);
        soc.wireless = true;
        soc.validatedInOrExVivo = true;
        soc.sensingPowerFraction = 0.40;
        soc.sensingAreaFraction = 0.35;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 4;
        soc.name = "Shen";
        soc.reference = "Shen et al. 2024";
        soc.sensorType = SensorType::Electrode;
        soc.reportedChannels = 16;
        soc.reportedArea = Area::squareMillimetres(1.34);
        soc.reportedPower = Power::milliwatts(0.0295); // 2.2 mW/cm^2
        soc.samplingFrequency = Frequency::kilohertz(10.0);
        soc.wireless = true;
        soc.validatedInOrExVivo = true;
        soc.sensingPowerFraction = 0.50;
        soc.sensingAreaFraction = 0.30;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 5;
        soc.name = "Muller";
        soc.reference = "Muller et al. 2014";
        soc.sensorType = SensorType::Electrode;
        soc.reportedChannels = 64;
        soc.reportedArea = Area::squareMillimetres(5.76);
        soc.reportedPower = Power::milliwatts(0.144);
        soc.samplingFrequency = Frequency::kilohertz(1.0);
        soc.wireless = true;
        soc.validatedInOrExVivo = true;
        // Sec. 4.1: scaling yields ~10 mW/cm^2, "unrealistically low";
        // a 2x area reduction gives the plausible 20 mW/cm^2.
        soc.recipe.areaCorrection = 0.5;
        soc.recipe.correctionNote = "2x area cut (Sec. 4.1)";
        soc.sensingPowerFraction = 0.45;
        soc.sensingAreaFraction = 0.35;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 6;
        soc.name = "Yang";
        soc.reference = "Yang et al. 2022";
        soc.sensorType = SensorType::Electrode;
        soc.reportedChannels = 4;
        soc.reportedArea = Area::squareMillimetres(4.0);
        soc.reportedPower = Power::milliwatts(0.052);
        soc.samplingFrequency = Frequency::kilohertz(20.0);
        soc.wireless = true;
        soc.validatedInOrExVivo = true;
        soc.sensingPowerFraction = 0.30;
        soc.sensingAreaFraction = 0.15;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 7;
        soc.name = "WIMAGINE";
        soc.reference = "Mestais et al. 2014";
        soc.sensorType = SensorType::Electrode;
        soc.reportedChannels = 64;
        soc.reportedArea = Area::squareMillimetres(1960.0);
        soc.reportedPower = Power::milliwatts(74.5); // 3.8 mW/cm^2
        soc.samplingFrequency = Frequency::kilohertz(30.0);
        soc.wireless = true;
        soc.validatedInOrExVivo = true;
        // Sec. 4.1: a 50x reduction in both power and area models a
        // more evolved design with realistic channel spacing.
        soc.recipe.areaCorrection = 1.0 / 50.0;
        soc.recipe.powerCorrection = 1.0 / 50.0;
        soc.recipe.correctionNote = "50x power+area cut (Sec. 4.1)";
        soc.sensingPowerFraction = 0.35;
        soc.sensingAreaFraction = 0.20;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 8;
        soc.name = "HALO*";
        soc.reference = "Sriram et al. 2023 (HALO), rescaled";
        soc.sensorType = SensorType::Electrode;
        soc.reportedChannels = 96;
        soc.reportedArea = Area::squareMillimetres(1.0);
        soc.reportedPower = Power::milliwatts(15.0); // 1500 mW/cm^2
        soc.samplingFrequency = Frequency::kilohertz(30.0);
        soc.wireless = true;
        soc.validatedInOrExVivo = false;
        // Sec. 4.1: HALO's density is far beyond safe implantation;
        // HALO* rescales power and area back under the budget
        // (sqrt-scaled: 3.27 mm^2 / 160 mW -> 40 mm^2 / 12.8 mW).
        soc.recipe.areaCorrection = 12.25;
        soc.recipe.powerCorrection = 0.08;
        soc.recipe.correctionNote = "HALO* rescale under budget";
        soc.sensingPowerFraction = 0.25;
        soc.sensingAreaFraction = 0.25;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 9;
        soc.name = "Neuropixels";
        soc.reference = "Steinmetz et al. 2021";
        soc.sensorType = SensorType::Electrode;
        soc.reportedChannels = 384; // one shank
        soc.reportedArea = Area::squareMillimetres(22.0);
        soc.reportedPower = Power::milliwatts(4.62); // 21 mW/cm^2
        soc.samplingFrequency = Frequency::kilohertz(30.0);
        soc.wireless = false;
        soc.validatedInOrExVivo = true;
        // Scales by adding shanks: linear in both power and area.
        soc.recipe.law = ScalingLaw::Linear;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 10;
        soc.name = "Jang";
        soc.reference = "Jang et al. 2023";
        soc.sensorType = SensorType::Electrode;
        soc.reportedChannels = 1024;
        soc.reportedArea = Area::squareMillimetres(3.0);
        soc.reportedPower = Power::milliwatts(0.51); // 17 mW/cm^2
        soc.samplingFrequency = Frequency::kilohertz(20.0);
        soc.wireless = false;
        soc.validatedInOrExVivo = true;
        catalog.push_back(soc);
    }
    {
        SocDesign soc;
        soc.id = 11;
        soc.name = "Pollman";
        soc.reference = "Pollmann et al. 2022";
        soc.sensorType = SensorType::Spad;
        soc.reportedChannels = 49152;
        soc.reportedArea = Area::squareMillimetres(50.0);
        soc.reportedPower = Power::milliwatts(18.0); // 36 mW/cm^2
        soc.samplingFrequency = Frequency::kilohertz(8.0);
        soc.wireless = false;
        soc.validatedInOrExVivo = true;
        soc.recipe.baseChannels = 1024;
        catalog.push_back(soc);
    }

    return catalog;
}

} // namespace

const std::vector<SocDesign> &
socCatalog()
{
    static const std::vector<SocDesign> catalog = buildCatalog();
    return catalog;
}

std::vector<SocDesign>
wirelessSocs()
{
    std::vector<SocDesign> wireless;
    for (const auto &soc : socCatalog())
        if (soc.wireless)
            wireless.push_back(soc);
    return wireless;
}

const SocDesign &
socById(int id)
{
    for (const auto &soc : socCatalog())
        if (soc.id == id)
            return soc;
    MINDFUL_FATAL("no SoC with Table 1 id ", id);
}

} // namespace mindful::core
