/**
 * @file
 * The Table 1 catalog of published implanted SoC designs.
 */

#ifndef MINDFUL_CORE_SOC_CATALOG_HH
#define MINDFUL_CORE_SOC_CATALOG_HH

#include <vector>

#include "core/soc_design.hh"

namespace mindful::core {

/** All 11 designs of Table 1 (ids 1-11). */
const std::vector<SocDesign> &socCatalog();

/** The wireless subset (ids 1-8) used in the Sec. 5-6 studies. */
std::vector<SocDesign> wirelessSocs();

/** Lookup by Table 1 row id; fatal if absent. */
const SocDesign &socById(int id);

} // namespace mindful::core

#endif // MINDFUL_CORE_SOC_CATALOG_HH
