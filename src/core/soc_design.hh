/**
 * @file
 * Published implanted-SoC design records (paper Table 1).
 *
 * Each record carries the design's reported operating point plus the
 * calibration constants the framework needs:
 *
 *  - a scaling recipe to the 1024-channel standard (Sec. 4.1),
 *    including the per-SoC corrections the paper applies (SoC 5's 2x
 *    area cut, SoC 7's 50x power+area cut, SoC 8's HALO* rescale,
 *    SoC 9's linear per-shank scaling);
 *  - the sensing / non-sensing decomposition at 1024 channels, which
 *    the paper's artifact ships as per-SoC parameter files that the
 *    paper text does not reproduce. Our values are calibrated
 *    constants (DESIGN.md Sec. 3 item 3) recorded in EXPERIMENTS.md.
 */

#ifndef MINDFUL_CORE_SOC_DESIGN_HH
#define MINDFUL_CORE_SOC_DESIGN_HH

#include <cstdint>
#include <string>

#include "base/units.hh"
#include "ni/neural_interface.hh"

namespace mindful::core {

/** How reported area/power extrapolate with channel count. */
enum class ScalingLaw : std::uint8_t {
    /** Eq. 1: area ~ sqrt(n/n0), power ~ n/n0 (the default). */
    SqrtAreaLinearPower,

    /** Linear area and power — devices that scale by replicating
     *  whole shanks/units (SoC 9, Neuropixels). */
    Linear
};

/** Recipe for scaling a design to the 1024-channel standard. */
struct ScalingRecipe
{
    ScalingLaw law = ScalingLaw::SqrtAreaLinearPower;

    /**
     * Channel count at which reportedArea / reportedPower apply; 0
     * means "at reportedChannels". The SPAD imagers (SoCs 2, 11)
     * report up to 49K channels but the paper uses their nominal
     * parameters for a 1024-channel configuration.
     */
    std::uint64_t baseChannels = 0;

    /** Multiplier applied to the scaled area (e.g. 0.5 for SoC 5's
     *  2x area-inefficiency correction). */
    double areaCorrection = 1.0;

    /** Multiplier applied to the scaled power. */
    double powerCorrection = 1.0;

    /** Why a correction was applied (empty if none). */
    std::string correctionNote;
};

/** One row of Table 1 plus calibration constants. */
struct SocDesign
{
    int id = 0;                 //!< Table 1 row number
    std::string name;           //!< e.g. "BISC"
    std::string reference;      //!< citation hint
    ni::SensorType sensorType = ni::SensorType::Electrode;

    std::uint64_t reportedChannels = 0;
    Area reportedArea;          //!< brain-contact area as reported
    Power reportedPower;        //!< total reported power
    Frequency samplingFrequency;
    unsigned sampleBits = 10;   //!< digitized sample width d
    bool wireless = false;
    bool validatedInOrExVivo = false;

    ScalingRecipe recipe;

    /** Share of total power in sensing at the 1024-channel point. */
    double sensingPowerFraction = 0.5;

    /** Share of total area in sensing at the 1024-channel point. */
    double sensingAreaFraction = 0.4;

    /** Share of *non-sensing* power spent in the RF transceiver. */
    double commShareOfNonSensing = 0.8;

    /** Reported power density. */
    PowerDensity
    reportedPowerDensity() const
    {
        return reportedPower / reportedArea;
    }
};

/** A design scaled to a specific channel count (Sec. 4.1 output). */
struct ScaledDesignPoint
{
    int socId = 0;
    std::string name;
    std::uint64_t channels = 0;
    Area area;
    Power power;

    PowerDensity
    powerDensity() const
    {
        return power / area;
    }
};

} // namespace mindful::core

#endif // MINDFUL_CORE_SOC_DESIGN_HH
