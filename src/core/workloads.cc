#include "core/workloads.hh"

#include <sstream>

#include "base/logging.hh"
#include "dnn/opaque.hh"

namespace mindful::core {

namespace {

/** Census of a dense matrix product C[p x r] = A[p x q] * B[q x r]:
 *  p*r independent dot products of length q (Fig. 8 semantics). */
dnn::MacCensus
matmul(std::uint64_t p, std::uint64_t q, std::uint64_t r)
{
    return {p * r, q};
}

} // namespace

dnn::Network
buildKalmanWorkload(std::uint64_t channels, const KalmanWorkloadSpec &spec)
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");
    MINDFUL_ASSERT(spec.stateDim > 0, "state dimension must be positive");

    const std::uint64_t m = spec.stateDim;
    const std::uint64_t n = channels;

    std::ostringstream name;
    name << "kalman-decoder n=" << channels;
    dnn::Network net(name.str(), dnn::Shape{static_cast<std::size_t>(n)});

    using dnn::OpaqueMacLayer;
    auto stage = [&](const std::string &label, std::uint64_t in,
                     std::uint64_t out, dnn::MacCensus census,
                     std::uint64_t weights = 0) {
        net.emplace<OpaqueMacLayer>(label, static_cast<std::size_t>(in),
                                    static_cast<std::size_t>(out), census,
                                    weights);
    };

    // Predict: x- = A x (m^2), P- = A P A^T (2 m^3). Model weights:
    // A (m^2) and Q (m^2).
    stage("predict x- = A x", n, n, matmul(m, m, 1), m * m);
    stage("predict P- = A P A^T", n, n,
          {matmul(m, m, m).macOp * 2, matmul(m, m, m).macSeq}, m * m);

    // Innovation: y - H x- (n*m MACs); H carries n*m weights.
    stage("innovation y - H x-", n, n, matmul(n, m, 1), n * m);

    // Innovation covariance: S = H P- H^T + R.
    stage("H P-", n, n * m, matmul(n, m, m), 0);
    stage("S = (H P-) H^T + R", n * m, n * n, matmul(n, m, n), n);

    // S^{-1}: Gaussian elimination ~ n^3 / 3 MACs, organized as n^2
    // row operations of length ~n/3.
    stage("invert S", n * n, n * n,
          {n * n, std::max<std::uint64_t>(1, n / 3)}, 0);

    // Gain: K = P- H^T S^{-1} (m x n).
    stage("P- H^T", n * n, m * n, matmul(m, m, n), 0);
    stage("K = (P- H^T) S^-1", m * n, m * n, matmul(m, n, n), 0);

    // State update: x = x- + K innovation (m x n * n x 1).
    stage("x += K innov", m * n, m, matmul(m, n, 1), 0);

    // Covariance update: P = (I - K H) P-  ->  K H (m^2 n) then
    // (m x m)(m x m) (m^3).
    stage("K H", m, m * m, matmul(m, n, m), 0);
    stage("P = (I - K H) P-", m * m, m,
          {matmul(m, m, m).macOp, matmul(m, m, m).macSeq}, 0);

    return net;
}

std::uint64_t
kalmanIterationMacs(std::uint64_t channels, const KalmanWorkloadSpec &spec)
{
    return buildKalmanWorkload(channels, spec).totalMacs();
}

} // namespace mindful::core
