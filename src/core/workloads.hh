/**
 * @file
 * Non-DNN on-implant workloads (extension beyond the paper's Fig. 10).
 *
 * The paper's related work notes that traditional algorithms —
 * above all the Kalman filter — "remain important for BCI" and have
 * been explored in implanted SoCs (HALO), while arguing their role
 * will diminish as DNNs take over. This module makes that comparison
 * quantitative inside the same framework: it expresses one Kalman
 * predict/update iteration as a MAC census (via OpaqueMacLayer
 * stages, one per matrix operation) so the Eq. 11-15 lower bound and
 * the power-budget feasibility machinery apply unchanged.
 *
 * The key structural difference from the DNN workloads: the Kalman
 * cost is dominated by the n x n innovation-covariance work, so it
 * scales as O(n^3) in the channel count — cheap at today's 1024
 * channels, but asymptotically worse than the decoder DNNs.
 */

#ifndef MINDFUL_CORE_WORKLOADS_HH
#define MINDFUL_CORE_WORKLOADS_HH

#include <cstdint>

#include "dnn/network.hh"

namespace mindful::core {

/** Kalman decoder workload parameters. */
struct KalmanWorkloadSpec
{
    /** Latent state dimensionality (kinematics + derivatives). */
    std::size_t stateDim = 8;

    /**
     * Decoder iteration rate [Hz]: one predict/update per feature
     * bin (50 ms bins are the BCI standard).
     */
    double binRateHz = 20.0;
};

/**
 * Build the analysis-only network of one Kalman iteration with
 * @p channels observation dimensions. Stages follow the standard
 * predict/update recursion; the n x n inverse is charged n^3/3 MACs
 * (Gaussian elimination).
 */
dnn::Network buildKalmanWorkload(std::uint64_t channels,
                                 const KalmanWorkloadSpec &spec = {});

/** Total MACs of one Kalman iteration (convenience). */
std::uint64_t kalmanIterationMacs(std::uint64_t channels,
                                  const KalmanWorkloadSpec &spec = {});

} // namespace mindful::core

#endif // MINDFUL_CORE_WORKLOADS_HH
