#include "dnn/activation.hh"

#include <algorithm>
#include <cmath>

namespace mindful::dnn {

Tensor
ReluLayer::forward(const Tensor &input) const
{
    Tensor out = input;
    for (auto &v : out.storage())
        v = std::max(v, 0.0f);
    return out;
}

Tensor
SigmoidLayer::forward(const Tensor &input) const
{
    Tensor out = input;
    for (auto &v : out.storage())
        v = 1.0f / (1.0f + std::exp(-v));
    return out;
}

Tensor
SoftmaxLayer::forward(const Tensor &input) const
{
    Tensor out = input;
    float peak = -std::numeric_limits<float>::infinity();
    for (float v : out.storage())
        peak = std::max(peak, v);
    float sum = 0.0f;
    for (auto &v : out.storage()) {
        v = std::exp(v - peak);
        sum += v;
    }
    for (auto &v : out.storage())
        v /= sum;
    return out;
}

} // namespace mindful::dnn
