/**
 * @file
 * Parameterless elementwise layers: ReLU, sigmoid, softmax.
 */

#ifndef MINDFUL_DNN_ACTIVATION_HH
#define MINDFUL_DNN_ACTIVATION_HH

#include "dnn/layer.hh"

namespace mindful::dnn {

/** Common base for shape-preserving, MAC-free elementwise layers. */
class ElementwiseLayer : public Layer
{
  public:
    Shape
    outputShape(const Shape &input) const override
    {
        return input;
    }

    MacCensus
    census(const Shape &input) const override
    {
        (void)input;
        return {0, 0};
    }

    std::uint64_t weightCount() const override { return 0; }
};

/** y = max(0, x). The PE's activation in the accelerator (Fig. 9). */
class ReluLayer : public ElementwiseLayer
{
  public:
    std::string name() const override { return "relu"; }
    Tensor forward(const Tensor &input) const override;
};

/** y = 1 / (1 + exp(-x)). */
class SigmoidLayer : public ElementwiseLayer
{
  public:
    std::string name() const override { return "sigmoid"; }
    Tensor forward(const Tensor &input) const override;
};

/** Numerically-stable softmax over the flattened tensor. */
class SoftmaxLayer : public ElementwiseLayer
{
  public:
    std::string name() const override { return "softmax"; }
    Tensor forward(const Tensor &input) const override;
};

} // namespace mindful::dnn

#endif // MINDFUL_DNN_ACTIVATION_HH
