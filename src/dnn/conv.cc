#include "dnn/conv.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "base/special_math.hh"
#include "dnn/gemm.hh"

namespace mindful::dnn {

Conv2dLayer::Conv2dLayer(std::size_t in_channels, std::size_t out_channels,
                         std::size_t kernel_h, std::size_t kernel_w,
                         std::size_t stride, Padding padding)
    : _inChannels(in_channels), _outChannels(out_channels),
      _kernelH(kernel_h), _kernelW(kernel_w), _stride(stride),
      _padding(padding)
{
    MINDFUL_ASSERT(in_channels > 0 && out_channels > 0,
                   "conv channel counts must be positive");
    MINDFUL_ASSERT(kernel_h > 0 && kernel_w > 0,
                   "conv kernel dimensions must be positive");
    MINDFUL_ASSERT(stride > 0, "conv stride must be positive");
}

void
Conv2dLayer::materialize()
{
    if (!materialized()) {
        _weights.assign(_outChannels * _inChannels * _kernelH * _kernelW,
                        0.0f);
        _biases.assign(_outChannels, 0.0f);
    }
}

std::string
Conv2dLayer::name() const
{
    std::ostringstream os;
    os << "conv2d " << _inChannels << "->" << _outChannels << " k"
       << _kernelH << "x" << _kernelW << " s" << _stride
       << (_padding == Padding::Same ? " same" : " valid");
    return os.str();
}

std::size_t
Conv2dLayer::outExtent(std::size_t in, std::size_t kernel) const
{
    if (_padding == Padding::Same)
        return (in + _stride - 1) / _stride;
    MINDFUL_ASSERT(in >= kernel, "conv input smaller than kernel");
    return (in - kernel) / _stride + 1;
}

Shape
Conv2dLayer::outputShape(const Shape &input) const
{
    MINDFUL_ASSERT(input.size() == 3, "conv2d expects a rank-3 input, got ",
                   toString(input));
    MINDFUL_ASSERT(input[0] == _inChannels, "conv2d expects ", _inChannels,
                   " input channels, got ", input[0]);
    return {_outChannels, outExtent(input[1], _kernelH),
            outExtent(input[2], _kernelW)};
}

std::ptrdiff_t
Conv2dLayer::padBefore(std::size_t kernel) const
{
    return _padding == Padding::Same
               ? static_cast<std::ptrdiff_t>((kernel - 1) / 2)
               : 0;
}

Tensor
Conv2dLayer::forward(const Tensor &input) const
{
    Tensor out(outputShape(input.shape()));
    forwardInto(input, out.data());
    return out;
}

void
Conv2dLayer::forwardInto(const Tensor &input, float *out,
                         bool fuse_relu) const
{
    MINDFUL_ASSERT(materialized(), "conv weights not materialized; "
                   "call initializeWeights() before forward()");
    MINDFUL_ASSERT(out != nullptr, "conv output view is null");
    if (_dropPath != DropoutPath::None) {
        forwardIntoDropout(input, out, fuse_relu);
        return;
    }
    Shape out_shape = outputShape(input.shape());
    const std::size_t out_h = out_shape[1];
    const std::size_t out_w = out_shape[2];
    const std::size_t n = out_h * out_w;
    const std::size_t k =
        gemm::im2colRows(_inChannels, _kernelH, _kernelW);
    const auto epilogue =
        fuse_relu ? gemm::Epilogue::Relu : gemm::Epilogue::None;

    // 1x1 stride-1 convolutions (pointwise channel mixing) already
    // have the patch-matrix layout: B is just the input buffer.
    if (_kernelH == 1 && _kernelW == 1 && _stride == 1) {
        gemm::biasGemm(_outChannels, n, k, _weights.data(), input.data(),
                       _biases.data(), out, epilogue);
        return;
    }

    std::vector<float> patches(k * n);
    gemm::im2col(input, _kernelH, _kernelW, _stride,
                 static_cast<std::size_t>(padBefore(_kernelH)),
                 static_cast<std::size_t>(padBefore(_kernelW)), out_h,
                 out_w, patches.data());
    gemm::biasGemm(_outChannels, n, k, _weights.data(), patches.data(),
                   _biases.data(), out, epilogue);
}

void
Conv2dLayer::forwardIntoDropout(const Tensor &input, float *out,
                                bool fuse_relu) const
{
    Shape out_shape = outputShape(input.shape());
    const std::size_t out_h = out_shape[1];
    const std::size_t out_w = out_shape[2];
    const std::size_t n = out_h * out_w;
    const std::size_t ka = _activeChannels.size();
    const auto epilogue =
        fuse_relu ? gemm::Epilogue::Relu : gemm::Epilogue::None;

    if (ka == 0) {
        // Every input channel dropped: each output plane is its bias
        // (through the epilogue), exactly what the dense path yields
        // on an all-zero input.
        for (std::size_t oc = 0; oc < _outChannels; ++oc) {
            const float v =
                fuse_relu ? std::max(_biases[oc], 0.0f) : _biases[oc];
            std::fill(out + oc * n, out + (oc + 1) * n, v);
        }
        return;
    }

    // Compact the surviving channel planes; im2col (and the packed
    // weights) then never touch the dropped ones. Skipped terms are
    // exact zero products — see src/dnn/sparse.hh on why dropping
    // them is still bit-exact for finite data.
    const std::size_t in_h = input.dim(1);
    const std::size_t in_w = input.dim(2);
    const std::size_t plane = in_h * in_w;
    Tensor compact(Shape{ka, in_h, in_w});
    for (std::size_t j = 0; j < ka; ++j)
        std::copy(input.data() + _activeChannels[j] * plane,
                  input.data() + (_activeChannels[j] + 1) * plane,
                  compact.data() + j * plane);

    const std::size_t k = gemm::im2colRows(ka, _kernelH, _kernelW);
    const float *b_matrix = nullptr;
    std::vector<float> patches;
    if (_kernelH == 1 && _kernelW == 1 && _stride == 1) {
        b_matrix = compact.data();
    } else {
        patches.resize(k * n);
        gemm::im2col(compact, _kernelH, _kernelW, _stride,
                     static_cast<std::size_t>(padBefore(_kernelH)),
                     static_cast<std::size_t>(padBefore(_kernelW)),
                     out_h, out_w, patches.data());
        b_matrix = patches.data();
    }

    if (_dropPath == DropoutPath::Csr) {
        _csr.multiply(n, b_matrix, _biases.data(), out, epilogue);
        return;
    }
    gemm::biasGemm(_outChannels, n, k, _packedWeights.data(), b_matrix,
                   _biases.data(), out, epilogue);
}

Tensor
Conv2dLayer::forwardNaive(const Tensor &input) const
{
    Tensor out(outputShape(input.shape()));
    forwardNaiveInto(input, out.data());
    return out;
}

void
Conv2dLayer::forwardNaiveInto(const Tensor &input, float *out) const
{
    MINDFUL_ASSERT(materialized(), "conv weights not materialized; "
                   "call initializeWeights() before forward()");
    MINDFUL_ASSERT(out != nullptr, "conv output view is null");
    Shape out_shape = outputShape(input.shape());

    const std::size_t in_h = input.dim(1);
    const std::size_t in_w = input.dim(2);
    const std::size_t out_h = out_shape[1];
    const std::size_t out_w = out_shape[2];

    // Top/left zero-padding offsets for "same" mode.
    const std::ptrdiff_t pad_h = padBefore(_kernelH);
    const std::ptrdiff_t pad_w = padBefore(_kernelW);

    for (std::size_t oc = 0; oc < _outChannels; ++oc) {
        for (std::size_t oy = 0; oy < out_h; ++oy) {
            for (std::size_t ox = 0; ox < out_w; ++ox) {
                float acc = _biases[oc];
                for (std::size_t ic = 0; ic < _inChannels; ++ic) {
                    for (std::size_t ky = 0; ky < _kernelH; ++ky) {
                        std::ptrdiff_t iy =
                            static_cast<std::ptrdiff_t>(oy * _stride + ky) -
                            pad_h;
                        if (iy < 0 ||
                            iy >= static_cast<std::ptrdiff_t>(in_h))
                            continue;
                        for (std::size_t kx = 0; kx < _kernelW; ++kx) {
                            std::ptrdiff_t ix =
                                static_cast<std::ptrdiff_t>(ox * _stride +
                                                            kx) -
                                pad_w;
                            if (ix < 0 ||
                                ix >= static_cast<std::ptrdiff_t>(in_w))
                                continue;
                            float w = _weights[((oc * _inChannels + ic) *
                                                    _kernelH +
                                                ky) *
                                                   _kernelW +
                                               kx];
                            acc += w * input.at(ic,
                                                static_cast<std::size_t>(iy),
                                                static_cast<std::size_t>(ix));
                        }
                    }
                }
                out[(oc * out_h + oy) * out_w + ox] = acc;
            }
        }
    }
}

MacCensus
Conv2dLayer::census(const Shape &input) const
{
    Shape out = outputShape(input);

    // Fig. 8 semantics: every output element (position x output
    // channel) is an independent dot product of length
    // kernel_area * in_channels. This reproduces the paper's example
    // (2 in-ch, 1 out-ch, kernel 4, output 4: #MAC_op = 4,
    // MAC_seq = 8) and keeps #MAC_op * MAC_seq exactly equal to the
    // layer's total MAC count.
    std::uint64_t mac_op = static_cast<std::uint64_t>(out[1]) * out[2] *
                           _outChannels;
    std::uint64_t mac_seq =
        static_cast<std::uint64_t>(_kernelH) * _kernelW * _inChannels;
    return {mac_op, mac_seq};
}

std::uint64_t
Conv2dLayer::weightCount() const
{
    // Computed from dimensions so unmaterialized layers report their
    // true model size.
    return static_cast<std::uint64_t>(_outChannels) * _inChannels *
               _kernelH * _kernelW +
           _outChannels;
}

void
Conv2dLayer::initializeWeights(Rng &rng)
{
    materialize();
    double fan_in =
        static_cast<double>(_inChannels * _kernelH * _kernelW);
    double limit = std::sqrt(3.0 / fan_in);
    for (auto &w : _weights)
        w = static_cast<float>(rng.uniform(-limit, limit));
    for (auto &b : _biases)
        b = 0.0f;
    rebuildDropoutPlan();
}

bool
Conv2dLayer::setInputDropout(const std::vector<std::uint8_t> &mask)
{
    MINDFUL_ASSERT(mask.empty() || mask.size() == _inChannels,
                   "conv dropout mask needs ", _inChannels,
                   " entries, got ", mask.size());
    const bool all_active =
        std::all_of(mask.begin(), mask.end(),
                    [](std::uint8_t v) { return v != 0; });
    _channelMask = all_active ? std::vector<std::uint8_t>{} : mask;
    rebuildDropoutPlan();
    return true;
}

void
Conv2dLayer::rebuildDropoutPlan()
{
    _activeChannels.clear();
    _packedWeights.clear();
    _csr = sparse::SlabCsrMatrix{};
    if (_channelMask.empty() || !materialized()) {
        _dropPath = DropoutPath::None;
        return;
    }
    for (std::size_t ic = 0; ic < _inChannels; ++ic)
        if (_channelMask[ic] != 0)
            _activeChannels.push_back(static_cast<std::uint32_t>(ic));

    // Pack [oc][ic][kh][kw] down to the surviving channels: the im2col
    // row order over the compacted input is exactly the packed column
    // order, so the packed matrix drops into the GEMM unchanged.
    const std::size_t tap = _kernelH * _kernelW;
    const std::size_t ka = _activeChannels.size();
    _packedWeights.resize(_outChannels * ka * tap);
    float *dst = _packedWeights.data();
    for (std::size_t oc = 0; oc < _outChannels; ++oc) {
        const float *wrow = _weights.data() + oc * _inChannels * tap;
        for (const std::uint32_t ic : _activeChannels) {
            const float *src = wrow + ic * tap;
            dst = std::copy(src, src + tap, dst);
        }
    }

    if (ka == 0) {
        _dropPath = DropoutPath::Pruned; // bias-only fast path
        return;
    }

    // Threshold on the *full* weight extent (nnz after masking over
    // m * k), per the density the optimization study reasons about.
    const std::size_t k_full =
        gemm::im2colRows(_inChannels, _kernelH, _kernelW);
    std::vector<std::uint8_t> col_mask(k_full, 0);
    for (const std::uint32_t ic : _activeChannels)
        std::fill(col_mask.begin() +
                      static_cast<std::ptrdiff_t>(ic * tap),
                  col_mask.begin() +
                      static_cast<std::ptrdiff_t>((ic + 1) * tap),
                  1);
    const double density = sparse::maskedDensity(
        _weights.data(), _outChannels, k_full, col_mask.data());
    if (density <= sparse::kCsrDensityThreshold) {
        _dropPath = DropoutPath::Csr;
        _csr = sparse::SlabCsrMatrix::fromDense(
            _packedWeights.data(), _outChannels, ka * tap, nullptr);
    } else {
        _dropPath = DropoutPath::Pruned;
    }
}

DenseStage2dLayer::DenseStage2dLayer(std::size_t in_channels,
                                     std::size_t growth,
                                     std::size_t kernel_h,
                                     std::size_t kernel_w)
    : _inChannels(in_channels), _growth(growth),
      _conv(in_channels, growth, kernel_h, kernel_w, 1, Padding::Same)
{
    MINDFUL_ASSERT(growth > 0, "dense stage growth must be positive");
}

std::string
DenseStage2dLayer::name() const
{
    std::ostringstream os;
    os << "dense-stage " << _inChannels << "+" << _growth;
    return os.str();
}

Shape
DenseStage2dLayer::outputShape(const Shape &input) const
{
    Shape conv_out = _conv.outputShape(input);
    return {_inChannels + _growth, conv_out[1], conv_out[2]};
}

Tensor
DenseStage2dLayer::forward(const Tensor &input) const
{
    Tensor out(outputShape(input.shape()));
    // Concatenate along the channel axis: passthrough channels first,
    // then the conv writes its ReLU-ed features (DenseNet composite
    // function, fused into the GEMM epilogue) directly behind them.
    std::copy(input.storage().begin(), input.storage().end(),
              out.storage().begin());
    _conv.forwardInto(input, out.data() + input.size(),
                      /*fuse_relu=*/true);
    return out;
}

Tensor
DenseStage2dLayer::forwardReference(const Tensor &input) const
{
    Tensor out(outputShape(input.shape()));
    std::copy(input.storage().begin(), input.storage().end(),
              out.storage().begin());
    // The reference conv also renders into the concatenated tensor
    // through an output view — no intermediate tensor, no second copy.
    float *growth_out = out.data() + input.size();
    _conv.forwardNaiveInto(input, growth_out);
    const std::size_t count = out.size() - input.size();
    for (std::size_t i = 0; i < count; ++i)
        growth_out[i] = std::max(growth_out[i], 0.0f);
    return out;
}

MacCensus
DenseStage2dLayer::census(const Shape &input) const
{
    return _conv.census(input);
}

std::uint64_t
DenseStage2dLayer::weightCount() const
{
    return _conv.weightCount();
}

void
DenseStage2dLayer::initializeWeights(Rng &rng)
{
    _conv.initializeWeights(rng);
}

bool
DenseStage2dLayer::setInputDropout(const std::vector<std::uint8_t> &mask)
{
    return _conv.setInputDropout(mask);
}

} // namespace mindful::dnn
