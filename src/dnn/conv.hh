/**
 * @file
 * 2-D convolution and DenseNet-style stage layers.
 *
 * ECoG decoding networks treat a window of neural data as a
 * (channels x time) image; the DN-CNN speech model (Berezutskaya et
 * al. 2023) is a densely-connected CNN over such windows. Conv2dLayer
 * implements plain convolution; DenseStage2dLayer implements one
 * DenseNet stage: out = concat(input, relu(conv(input))).
 */

#ifndef MINDFUL_DNN_CONV_HH
#define MINDFUL_DNN_CONV_HH

#include <cstdint>
#include <vector>

#include "dnn/layer.hh"
#include "dnn/sparse.hh"

namespace mindful::dnn {

/** Padding policy for convolutions. */
enum class Padding : std::uint8_t {
    Valid, //!< no padding; output shrinks by kernel - 1
    Same   //!< zero padding; output spatial size = ceil(in / stride)
};

/**
 * 2-D convolution over (channels, height, width) tensors.
 *
 * MAC census (Fig. 8, bottom): each output element (position x
 * output channel) is one independent MAC_op whose sequence length is
 * kernel_area * in_channels, matching the paper's worked example
 * (#MAC_op = 4, MAC_seq = 8 for a 2-in/1-out kernel-4 layer with
 * output size 4).
 */
class Conv2dLayer : public Layer
{
  public:
    Conv2dLayer(std::size_t in_channels, std::size_t out_channels,
                std::size_t kernel_h, std::size_t kernel_w,
                std::size_t stride = 1, Padding padding = Padding::Valid);

    std::size_t inChannels() const { return _inChannels; }
    std::size_t outChannels() const { return _outChannels; }

    /** True once weight storage exists (see DenseLayer note). */
    bool materialized() const { return !_weights.empty(); }

    /** Allocate zero-valued weight storage if not already present. */
    void materialize();

    std::string name() const override;
    Shape outputShape(const Shape &input) const override;

    /**
     * Execute via im2col + blocked GEMM (src/dnn/gemm.hh).
     * Bit-identical to forwardNaive() and across thread counts (the
     * GEMM determinism contract, docs/performance.md).
     */
    Tensor forward(const Tensor &input) const override;

    /**
     * Retained golden reference: the original branchy scalar loop.
     * Exists for the equivalence tests and the kernel_regression
     * speedup baseline; never use it on a hot path.
     */
    Tensor forwardNaive(const Tensor &input) const;

    /**
     * GEMM forward into a caller-provided output view of
     * elementCount(outputShape(...)) floats, laid out [oc][oy][ox].
     * With @p fuse_relu the ReLU epilogue is applied in the GEMM
     * store, so composite layers (DenseStage2dLayer) need no second
     * pass and no intermediate tensor.
     */
    void forwardInto(const Tensor &input, float *out,
                     bool fuse_relu = false) const;

    /** Reference-path variant of forwardInto (no ReLU fusion). */
    void forwardNaiveInto(const Tensor &input, float *out) const;

    MacCensus census(const Shape &input) const override;
    std::uint64_t weightCount() const override;
    void initializeWeights(Rng &rng) override;

    /**
     * Channel-level input dropout: @p mask has inChannels() entries.
     * Active input-channel planes are compacted before im2col, then
     * the GEMM runs on weights packed to the surviving channels —
     * or on their CSR form when the post-dropout density of the full
     * weight matrix falls below sparse::kCsrDensityThreshold.
     */
    bool setInputDropout(const std::vector<std::uint8_t> &mask) override;

    /** Kernel the next forward() will take. */
    DropoutPath dropoutPath() const { return _dropPath; }

    /** Weights laid out [out_ch][in_ch][kh][kw]. */
    std::vector<float> &weights() { return _weights; }
    const std::vector<float> &weights() const { return _weights; }
    std::vector<float> &biases() { return _biases; }

  private:
    /** Output spatial extent along one axis. */
    std::size_t outExtent(std::size_t in, std::size_t kernel) const;

    /** Top/left zero-padding offset for the current padding mode. */
    std::ptrdiff_t padBefore(std::size_t kernel) const;

    /** Recompute the Pruned/Csr plan from _channelMask + _weights. */
    void rebuildDropoutPlan();

    /** forwardInto body for the active dropout plan. */
    void forwardIntoDropout(const Tensor &input, float *out,
                            bool fuse_relu) const;

    std::size_t _inChannels;
    std::size_t _outChannels;
    std::size_t _kernelH;
    std::size_t _kernelW;
    std::size_t _stride;
    Padding _padding;
    std::vector<float> _weights;
    std::vector<float> _biases;

    std::vector<std::uint8_t> _channelMask; //!< empty = no dropout
    DropoutPath _dropPath = DropoutPath::None;
    std::vector<std::uint32_t> _activeChannels;
    std::vector<float> _packedWeights; //!< [oc][active ic][kh][kw]
    sparse::SlabCsrMatrix _csr;        //!< over the packed weights
};

/**
 * One DenseNet stage: y = concat(x, relu(conv_same(x, growth))).
 *
 * Output channel count is in_channels + growth; spatial dimensions
 * are preserved ("same" padding, stride 1).
 */
class DenseStage2dLayer : public Layer
{
  public:
    DenseStage2dLayer(std::size_t in_channels, std::size_t growth,
                      std::size_t kernel_h, std::size_t kernel_w);

    std::size_t growth() const { return _growth; }
    const Conv2dLayer &conv() const { return _conv; }

    std::string name() const override;
    Shape outputShape(const Shape &input) const override;

    /**
     * Fast path: passthrough copy of the input channels plus the
     * inner convolution written *directly* into the concatenated
     * output (ReLU fused into the GEMM epilogue) — no intermediate
     * conv tensor and no second copy.
     */
    Tensor forward(const Tensor &input) const override;

    /**
     * Retained golden reference built on Conv2dLayer::forwardNaive
     * through the same output view (so even the reference pays no
     * double copy).
     */
    Tensor forwardReference(const Tensor &input) const;

    MacCensus census(const Shape &input) const override;
    std::uint64_t weightCount() const override;
    void initializeWeights(Rng &rng) override;

    /**
     * Forwards to the inner convolution. The passthrough concat copies
     * the (zero-masked) input unchanged, so the stage output matches
     * the reference over a masked input exactly.
     */
    bool setInputDropout(const std::vector<std::uint8_t> &mask) override;

  private:
    std::size_t _inChannels;
    std::size_t _growth;
    Conv2dLayer _conv;
};

} // namespace mindful::dnn

#endif // MINDFUL_DNN_CONV_HH
