#include "dnn/dense.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "dnn/gemm.hh"

namespace mindful::dnn {

DenseLayer::DenseLayer(std::size_t in_features, std::size_t out_features)
    : _in(in_features), _out(out_features)
{
    MINDFUL_ASSERT(in_features > 0 && out_features > 0,
                   "dense layer dimensions must be positive");
}

void
DenseLayer::materialize()
{
    if (!materialized()) {
        _weights.assign(_in * _out, 0.0f);
        _biases.assign(_out, 0.0f);
    }
}

std::string
DenseLayer::name() const
{
    std::ostringstream os;
    os << "dense " << _in << "->" << _out;
    return os.str();
}

Shape
DenseLayer::outputShape(const Shape &input) const
{
    MINDFUL_ASSERT(elementCount(input) == _in,
                   "dense layer expects ", _in, " inputs, got shape ",
                   toString(input));
    return {_out};
}

Tensor
DenseLayer::forward(const Tensor &input) const
{
    MINDFUL_ASSERT(input.size() == _in,
                   "dense layer expects ", _in, " inputs, got ",
                   input.size());
    MINDFUL_ASSERT(materialized(), "dense layer weights not materialized; "
                   "call initializeWeights() before forward()");
    // y = W x + b is the n = 1 case of the shared GEMM kernel: the
    // weight matrix is A [out x in], the input is B [in x 1]. Output
    // rows shard over the pool; each accumulates in ascending k
    // order, so the result is bit-identical to forwardNaive().
    Tensor out(Shape{_out});
    switch (_dropPath) {
    case DropoutPath::Pruned: {
        // Surviving columns were packed at mask-install time; gather
        // the matching inputs and run the dense kernel at reduced k.
        const std::size_t ka = _pruned.activeCols();
        if (ka == 0) {
            std::copy(_biases.begin(), _biases.end(), out.data());
            return out;
        }
        std::vector<float> gathered(ka);
        _pruned.gather(input.data(), gathered.data());
        gemm::biasGemm(_out, 1, ka, _pruned.packed(), gathered.data(),
                       _biases.data(), out.data());
        return out;
    }
    case DropoutPath::Csr:
        // CSR column indices are absolute, so the raw input is the
        // right-hand side — no gather.
        _csr.multiply(1, input.data(), _biases.data(), out.data(),
                      gemm::Epilogue::None);
        return out;
    case DropoutPath::None:
        break;
    }
    gemm::biasGemm(_out, 1, _in, _weights.data(), input.data(),
                   _biases.data(), out.data());
    return out;
}

Tensor
DenseLayer::forwardNaive(const Tensor &input) const
{
    MINDFUL_ASSERT(input.size() == _in,
                   "dense layer expects ", _in, " inputs, got ",
                   input.size());
    MINDFUL_ASSERT(materialized(), "dense layer weights not materialized; "
                   "call initializeWeights() before forward()");
    Tensor out(Shape{_out});
    const float *x = input.data();
    for (std::size_t r = 0; r < _out; ++r) {
        const float *row = _weights.data() + r * _in;
        float acc = _biases[r];
        for (std::size_t c = 0; c < _in; ++c)
            acc += row[c] * x[c];
        out[r] = acc;
    }
    return out;
}

MacCensus
DenseLayer::census(const Shape &input) const
{
    MINDFUL_ASSERT(elementCount(input) == _in,
                   "census input shape mismatch for ", name());
    return {static_cast<std::uint64_t>(_out),
            static_cast<std::uint64_t>(_in)};
}

std::uint64_t
DenseLayer::weightCount() const
{
    // Computed from dimensions so unmaterialized layers report their
    // true model size.
    return static_cast<std::uint64_t>(_in) * _out + _out;
}

void
DenseLayer::initializeWeights(Rng &rng)
{
    materialize();
    // Xavier-uniform: keeps activations in range through deep stacks.
    double limit = std::sqrt(6.0 / static_cast<double>(_in + _out));
    for (auto &w : _weights)
        w = static_cast<float>(rng.uniform(-limit, limit));
    for (auto &b : _biases)
        b = 0.0f;
    rebuildDropoutPlan();
}

bool
DenseLayer::setInputDropout(const std::vector<std::uint8_t> &mask)
{
    MINDFUL_ASSERT(mask.empty() || mask.size() == _in,
                   "dense dropout mask needs ", _in, " entries, got ",
                   mask.size());
    const bool all_active =
        std::all_of(mask.begin(), mask.end(),
                    [](std::uint8_t v) { return v != 0; });
    _dropoutMask = all_active ? std::vector<std::uint8_t>{} : mask;
    rebuildDropoutPlan();
    return true;
}

void
DenseLayer::rebuildDropoutPlan()
{
    if (_dropoutMask.empty() || !materialized()) {
        _dropPath = DropoutPath::None;
        _pruned = sparse::PrunedColumns{};
        _csr = sparse::SlabCsrMatrix{};
        return;
    }
    const double density = sparse::maskedDensity(
        _weights.data(), _out, _in, _dropoutMask.data());
    if (density <= sparse::kCsrDensityThreshold) {
        _dropPath = DropoutPath::Csr;
        _csr = sparse::SlabCsrMatrix::fromDense(
            _weights.data(), _out, _in, _dropoutMask.data());
        _pruned = sparse::PrunedColumns{};
    } else {
        _dropPath = DropoutPath::Pruned;
        _pruned = sparse::PrunedColumns::fromDense(
            _weights.data(), _out, _in, _dropoutMask.data());
        _csr = sparse::SlabCsrMatrix{};
    }
}

} // namespace mindful::dnn
