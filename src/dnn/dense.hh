/**
 * @file
 * Fully-connected (dense) layer.
 */

#ifndef MINDFUL_DNN_DENSE_HH
#define MINDFUL_DNN_DENSE_HH

#include <vector>

#include "dnn/layer.hh"

namespace mindful::dnn {

/**
 * y = W x + b with W [out x in].
 *
 * Accepts any input tensor whose element count equals the configured
 * input width (implicit flatten), producing a rank-1 output.
 *
 * MAC census (Fig. 8, top): #MAC_op = out rows, MAC_seq = in
 * accumulations per row.
 *
 * Weights are allocated lazily: the analytical studies build networks
 * with billions of parameters purely to take their census, which must
 * not allocate. Call initializeWeights() (or materialize()) before
 * forward().
 */
class DenseLayer : public Layer
{
  public:
    DenseLayer(std::size_t in_features, std::size_t out_features);

    std::size_t inFeatures() const { return _in; }
    std::size_t outFeatures() const { return _out; }

    /** True once weight storage exists. */
    bool materialized() const { return !_weights.empty(); }

    /** Allocate zero-valued weight storage if not already present. */
    void materialize();

    std::string name() const override;
    Shape outputShape(const Shape &input) const override;

    /**
     * Execute via the shared GEMM kernel (src/dnn/gemm.hh), sharding
     * output rows over the pool. Bit-identical to forwardNaive() and
     * across thread counts.
     */
    Tensor forward(const Tensor &input) const override;

    /**
     * Retained golden reference: the original scalar row loop, for
     * the equivalence tests and kernel_regression baseline.
     */
    Tensor forwardNaive(const Tensor &input) const;

    MacCensus census(const Shape &input) const override;
    std::uint64_t weightCount() const override;
    void initializeWeights(Rng &rng) override;

    /** Row-major weights [out x in] (mutable for tests / loading). */
    std::vector<float> &weights() { return _weights; }
    const std::vector<float> &weights() const { return _weights; }
    std::vector<float> &biases() { return _biases; }
    const std::vector<float> &biases() const { return _biases; }

  private:
    std::size_t _in;
    std::size_t _out;
    std::vector<float> _weights;
    std::vector<float> _biases;
};

} // namespace mindful::dnn

#endif // MINDFUL_DNN_DENSE_HH
