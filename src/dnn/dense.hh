/**
 * @file
 * Fully-connected (dense) layer.
 */

#ifndef MINDFUL_DNN_DENSE_HH
#define MINDFUL_DNN_DENSE_HH

#include <vector>

#include "dnn/layer.hh"
#include "dnn/sparse.hh"

namespace mindful::dnn {

/**
 * y = W x + b with W [out x in].
 *
 * Accepts any input tensor whose element count equals the configured
 * input width (implicit flatten), producing a rank-1 output.
 *
 * MAC census (Fig. 8, top): #MAC_op = out rows, MAC_seq = in
 * accumulations per row.
 *
 * Weights are allocated lazily: the analytical studies build networks
 * with billions of parameters purely to take their census, which must
 * not allocate. Call initializeWeights() (or materialize()) before
 * forward().
 */
class DenseLayer : public Layer
{
  public:
    DenseLayer(std::size_t in_features, std::size_t out_features);

    std::size_t inFeatures() const { return _in; }
    std::size_t outFeatures() const { return _out; }

    /** True once weight storage exists. */
    bool materialized() const { return !_weights.empty(); }

    /** Allocate zero-valued weight storage if not already present. */
    void materialize();

    std::string name() const override;
    Shape outputShape(const Shape &input) const override;

    /**
     * Execute via the shared GEMM kernel (src/dnn/gemm.hh), sharding
     * output rows over the pool. Bit-identical to forwardNaive() and
     * across thread counts.
     */
    Tensor forward(const Tensor &input) const override;

    /**
     * Retained golden reference: the original scalar row loop, for
     * the equivalence tests and kernel_regression baseline.
     */
    Tensor forwardNaive(const Tensor &input) const;

    MacCensus census(const Shape &input) const override;
    std::uint64_t weightCount() const override;
    void initializeWeights(Rng &rng) override;

    /**
     * Feature-level input dropout: @p mask has inFeatures() entries.
     * Picks Pruned or Csr from the post-dropout weight density
     * (sparse::kCsrDensityThreshold) and rebuilds the compacted view;
     * initializeWeights() rebuilds it again for the new weights.
     */
    bool setInputDropout(const std::vector<std::uint8_t> &mask) override;

    /** Kernel the next forward() will take. */
    DropoutPath dropoutPath() const { return _dropPath; }

    /** Row-major weights [out x in] (mutable for tests / loading). */
    std::vector<float> &weights() { return _weights; }
    const std::vector<float> &weights() const { return _weights; }
    std::vector<float> &biases() { return _biases; }
    const std::vector<float> &biases() const { return _biases; }

  private:
    /** Recompute the Pruned/Csr plan from _dropoutMask + _weights. */
    void rebuildDropoutPlan();

    std::size_t _in;
    std::size_t _out;
    std::vector<float> _weights;
    std::vector<float> _biases;

    std::vector<std::uint8_t> _dropoutMask; //!< empty = no dropout
    DropoutPath _dropPath = DropoutPath::None;
    sparse::PrunedColumns _pruned;
    sparse::SlabCsrMatrix _csr;
};

} // namespace mindful::dnn

#endif // MINDFUL_DNN_DENSE_HH
