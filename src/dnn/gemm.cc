#include "dnn/gemm.hh"

#include <algorithm>

#include "base/cpu.hh"
#include "base/logging.hh"
#include "dnn/gemm_kernels.hh"
#include "exec/parallel.hh"
#include "obs/collector.hh"
#include "obs/handles.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::dnn::gemm {
namespace detail {
namespace {

/**
 * Scalar GEMV (n == 1, the dense-layer shape): rows are processed in
 * panels of four so the four independent accumulator chains share
 * each x[kk] load and fill the scalar pipeline — the accumulation
 * *order per row* is exactly the naive dense loop, so results are
 * unchanged, only the instruction-level parallelism improves. This
 * (plus running inline, see biasGemm) is what keeps the n == 1 path
 * from ever losing to forwardNaive.
 */
template <bool Relu>
void
gemvPanels(std::size_t k, const float *a, const float *x,
           const float *bias, float *c, std::size_t row_begin,
           std::size_t row_end)
{
    std::size_t row = row_begin;
    for (; row + 4 <= row_end; row += 4) {
        const float *a0 = a + (row + 0) * k;
        const float *a1 = a + (row + 1) * k;
        const float *a2 = a + (row + 2) * k;
        const float *a3 = a + (row + 3) * k;
        float s0 = bias != nullptr ? bias[row + 0] : 0.0f;
        float s1 = bias != nullptr ? bias[row + 1] : 0.0f;
        float s2 = bias != nullptr ? bias[row + 2] : 0.0f;
        float s3 = bias != nullptr ? bias[row + 3] : 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float xv = x[kk];
            s0 += a0[kk] * xv;
            s1 += a1[kk] * xv;
            s2 += a2[kk] * xv;
            s3 += a3[kk] * xv;
        }
        c[row + 0] = Relu ? std::max(s0, 0.0f) : s0;
        c[row + 1] = Relu ? std::max(s1, 0.0f) : s1;
        c[row + 2] = Relu ? std::max(s2, 0.0f) : s2;
        c[row + 3] = Relu ? std::max(s3, 0.0f) : s3;
    }
    for (; row < row_end; ++row) {
        const float *arow = a + row * k;
        float acc = bias != nullptr ? bias[row] : 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk)
            acc += arow[kk] * x[kk];
        c[row] = Relu ? std::max(acc, 0.0f) : acc;
    }
}

/**
 * Produce C rows [row_begin, row_end). One row of C is computed as
 * kColBlock-wide register tiles: the k loop runs innermost over a
 * contiguous segment of each B row, so B streams through cache line
 * by line while each output element still accumulates in ascending k
 * order into a single scalar — the bit-exactness guarantee.
 */
template <bool Relu>
void
gemmRowRange(std::size_t n, std::size_t k, const float *a, const float *b,
             const float *bias, float *c, std::size_t row_begin,
             std::size_t row_end)
{
    if (n == 1) {
        gemvPanels<Relu>(k, a, b, bias, c, row_begin, row_end);
        return;
    }

    for (std::size_t row = row_begin; row < row_end; ++row) {
        const float *arow = a + row * k;
        float *crow = c + row * n;
        const float bias_v = bias ? bias[row] : 0.0f;

        std::size_t col = 0;
        for (; col + kColBlock <= n; col += kColBlock) {
            float acc[kColBlock];
            for (std::size_t j = 0; j < kColBlock; ++j)
                acc[j] = bias_v;
            const float *bcol = b + col;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float av = arow[kk];
                const float *brow = bcol + kk * n;
                for (std::size_t j = 0; j < kColBlock; ++j)
                    acc[j] += av * brow[j];
            }
            float *out = crow + col;
            for (std::size_t j = 0; j < kColBlock; ++j)
                out[j] = Relu ? std::max(acc[j], 0.0f) : acc[j];
        }

        if (col < n) {
            const std::size_t nb = n - col;
            float acc[kColBlock];
            for (std::size_t j = 0; j < nb; ++j)
                acc[j] = bias_v;
            const float *bcol = b + col;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float av = arow[kk];
                const float *brow = bcol + kk * n;
                for (std::size_t j = 0; j < nb; ++j)
                    acc[j] += av * brow[j];
            }
            float *out = crow + col;
            for (std::size_t j = 0; j < nb; ++j)
                out[j] = Relu ? std::max(acc[j], 0.0f) : acc[j];
        }
    }
}

} // namespace

void
gemmRowRangeScalar(std::size_t n, std::size_t k, const float *a,
                   const float *b, const float *bias, float *c,
                   std::size_t row_begin, std::size_t row_end, bool relu)
{
    if (relu)
        gemmRowRange<true>(n, k, a, b, bias, c, row_begin, row_end);
    else
        gemmRowRange<false>(n, k, a, b, bias, c, row_begin, row_end);
}

} // namespace detail

namespace {

/**
 * Kernel for the dispatched ISA. Resolved per biasGemm call (one
 * relaxed atomic load inside activeSimdIsa), so tests and the bench
 * harness can retarget the tier mid-process via forceSimdIsa.
 */
detail::RowRangeFn
dispatchKernel()
{
    switch (activeSimdIsa()) {
#if defined(MINDFUL_HAVE_AVX2)
    case SimdIsa::Avx2:
        return &detail::gemmRowRangeAvx2;
#endif
#if defined(MINDFUL_HAVE_NEON)
    case SimdIsa::Neon:
        return &detail::gemmRowRangeNeon;
#endif
    default:
        return &detail::gemmRowRangeScalar;
    }
}

} // namespace

void
biasGemm(std::size_t m, std::size_t n, std::size_t k, const float *a,
         const float *b, const float *bias, float *c, Epilogue epilogue)
{
    MINDFUL_ASSERT(m > 0 && n > 0 && k > 0,
                   "gemm dimensions must be positive");
    MINDFUL_ASSERT(a != nullptr && b != nullptr && c != nullptr,
                   "gemm buffers must be non-null");

    const std::uint64_t macs =
        static_cast<std::uint64_t>(m) * n * k;
    MINDFUL_TRACE_SPAN(span, "dnn", "gemm");
    span.arg("m", static_cast<std::uint64_t>(m))
        .arg("n", static_cast<std::uint64_t>(n))
        .arg("k", static_cast<std::uint64_t>(k));

    const bool relu = epilogue == Epilogue::Relu;
    const detail::RowRangeFn kernel = dispatchKernel();
    auto run = [&](std::size_t row_begin, std::size_t row_end) {
        kernel(n, k, a, b, bias, c, row_begin, row_end, relu);
    };

    // Shard over output rows only: no shard touches another shard's C
    // rows and there is no cross-shard reduction, so the decomposition
    // (and the thread count) cannot affect the result.
    std::size_t shards = 1;
    if (macs >= kParallelMacThreshold)
        shards = std::min<std::size_t>(exec::kDefaultShards, m);
    if (shards <= 1) {
        run(0, m);
    } else {
        // Hot-tier instrumentation, resolved once outside the shard
        // body: a TraceSite (interned name) and a pre-registered
        // counter handle. Recording inside the body is lock- and
        // allocation-free — mindful-analyze certifies HotSpan and
        // CounterHandle::bump, so this needs no suppression.
        static const obs::TraceSite shard_site =
            obs::TraceCollector::global().site("dnn", "gemm.shard");
        static const obs::CounterHandle shard_rows =
            obs::HotMetricTable::global().counter("dnn.gemm.shard_rows");
        exec::parallelFor(
            shards,
            [&](std::size_t shard) {
                obs::HotSpan shard_span(shard_site);
                auto range = exec::shardRange(m, shards, shard);
                shard_span.setArg(range.end - range.begin);
                run(range.begin, range.end);
                shard_rows.bump(range.end - range.begin);
            },
            "dnn.gemm.shard");
    }

    auto &registry = obs::MetricRegistry::global();
    if (registry.enabled()) {
        registry.counter("dnn.gemm.calls").add(1);
        registry.counter("dnn.gemm.macs").add(macs);
    }
}

std::size_t
im2colRows(std::size_t in_channels, std::size_t kernel_h,
           std::size_t kernel_w)
{
    return in_channels * kernel_h * kernel_w;
}

void
im2col(const Tensor &input, std::size_t kernel_h, std::size_t kernel_w,
       std::size_t stride, std::size_t pad_h, std::size_t pad_w,
       std::size_t out_h, std::size_t out_w, float *patches)
{
    MINDFUL_ASSERT(input.rank() == 3, "im2col expects a rank-3 input");
    MINDFUL_ASSERT(stride > 0, "im2col stride must be positive");
    MINDFUL_ASSERT(patches != nullptr, "im2col patch buffer is null");

    const std::size_t channels = input.dim(0);
    const std::size_t in_h = input.dim(1);
    const std::size_t in_w = input.dim(2);
    const std::size_t n = out_h * out_w;
    const auto in_h_pd = static_cast<std::ptrdiff_t>(in_h);

    float *prow = patches;
    for (std::size_t ic = 0; ic < channels; ++ic) {
        for (std::size_t ky = 0; ky < kernel_h; ++ky) {
            for (std::size_t kx = 0; kx < kernel_w; ++kx, prow += n) {
                // This tap reads ix = ox*stride + shift; hoist the
                // valid ox span so the per-row work is zero-head,
                // contiguous (or strided) copy, zero-tail.
                const std::ptrdiff_t shift =
                    static_cast<std::ptrdiff_t>(kx) -
                    static_cast<std::ptrdiff_t>(pad_w);
                std::size_t ox_lo = 0;
                if (shift < 0)
                    ox_lo = (static_cast<std::size_t>(-shift) + stride -
                             1) /
                            stride;
                std::size_t ox_hi = 0;
                const std::ptrdiff_t lim =
                    static_cast<std::ptrdiff_t>(in_w) - shift;
                if (lim > 0)
                    ox_hi = std::min<std::size_t>(
                        out_w,
                        static_cast<std::size_t>(lim - 1) / stride + 1);
                ox_lo = std::min(ox_lo, ox_hi);

                for (std::size_t oy = 0; oy < out_h; ++oy) {
                    float *dst = prow + oy * out_w;
                    const std::ptrdiff_t iy =
                        static_cast<std::ptrdiff_t>(oy * stride + ky) -
                        static_cast<std::ptrdiff_t>(pad_h);
                    if (iy < 0 || iy >= in_h_pd || ox_lo >= ox_hi) {
                        std::fill(dst, dst + out_w, 0.0f);
                        continue;
                    }
                    const float *src = input.rowData(
                        ic, static_cast<std::size_t>(iy));
                    std::fill(dst, dst + ox_lo, 0.0f);
                    if (stride == 1) {
                        std::copy(src + static_cast<std::ptrdiff_t>(
                                            ox_lo) +
                                      shift,
                                  src + static_cast<std::ptrdiff_t>(
                                            ox_hi) +
                                      shift,
                                  dst + ox_lo);
                    } else {
                        for (std::size_t ox = ox_lo; ox < ox_hi; ++ox)
                            dst[ox] = src[static_cast<std::ptrdiff_t>(
                                              ox * stride) +
                                          shift];
                    }
                    std::fill(dst + ox_hi, dst + out_w, 0.0f);
                }
            }
        }
    }
}

} // namespace mindful::dnn::gemm
