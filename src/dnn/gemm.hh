/**
 * @file
 * im2col packing and cache-blocked GEMM for the DNN forward path.
 *
 * The paper's feasibility studies (Figs. 8-10) are validated by
 * actually executing the speech decoders, so the forward path is a
 * measured hot loop, not an analytical model. Conv2dLayer and
 * DenseLayer both lower onto the single kernel here:
 *
 *     C[m][n] = epilogue(sum_k A[m][k] * B[k][n] + bias[m])
 *
 * with A the weight matrix and B either the im2col patch matrix
 * (convolution) or the input vector (dense, n = 1).
 *
 * Determinism contract (docs/performance.md): every output element
 * accumulates its k products **sequentially in ascending k order**
 * into one scalar, exactly like the retained naive loops, and work is
 * sharded over output rows only — no cross-shard reduction exists. The
 * result is therefore bit-identical to the naive reference and across
 * any `--threads` value. Cache blocking happens in the n direction
 * (register tiles of kColBlock columns walk B rows contiguously),
 * which reorders nothing.
 *
 * The row-range body is runtime-dispatched over SIMD tiers
 * (base/cpu.hh: scalar always, AVX2/NEON when compiled in and the
 * host supports them; `MINDFUL_SIMD=` pins one). The vector kernels
 * honor the same contract — lanes hold distinct output elements, each
 * still a single ascending-k chain with unfused multiply/add — so the
 * dispatch choice never changes a bit of output
 * (docs/performance.md, "SIMD dispatch tier").
 */

#ifndef MINDFUL_DNN_GEMM_HH
#define MINDFUL_DNN_GEMM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dnn/tensor.hh"

namespace mindful::dnn::gemm {

/** Element-wise transform fused into the GEMM output store. */
enum class Epilogue : std::uint8_t {
    None, //!< store the biased accumulation as-is
    Relu  //!< store max(acc, 0) — the DenseNet composite function
};

/**
 * Register-tile width of the blocked kernel: one row of C is produced
 * kColBlock columns at a time, with the k loop innermost over a
 * contiguous B row segment. 16 floats = one 64-byte cache line.
 */
inline constexpr std::size_t kColBlock = 16;

/**
 * Minimum m * n * k product before biasGemm ships row shards to the
 * process-wide pool; smaller problems run inline (pool dispatch would
 * cost more than the arithmetic). Results are identical either way.
 */
inline constexpr std::uint64_t kParallelMacThreshold = 1u << 16;

/**
 * C = epilogue(A * B + bias), all matrices row-major and contiguous:
 * A is m x k, B is k x n, C is m x n, bias has m entries (may be
 * nullptr for none). Shards rows over exec::parallelFor when the MAC
 * count clears kParallelMacThreshold; records dnn.gemm.* metrics.
 */
void biasGemm(std::size_t m, std::size_t n, std::size_t k,
              const float *a, const float *b, const float *bias, float *c,
              Epilogue epilogue = Epilogue::None);

/**
 * Number of rows (the k extent) of the im2col patch matrix for a
 * convolution with the given input-channel count and kernel size.
 */
std::size_t im2colRows(std::size_t in_channels, std::size_t kernel_h,
                       std::size_t kernel_w);

/**
 * Pack a (channels, height, width) input into the im2col patch matrix
 * @p patches of shape [in_ch * kh * kw] x [out_h * out_w] (row-major,
 * caller-allocated): row (ic*kh + ky)*kw + kx, column oy*out_w + ox
 * holds input[ic][oy*stride + ky - pad_h][ox*stride + kx - pad_w],
 * or 0 where that index falls outside the input (zero padding). Row
 * order matches Conv2dLayer's [oc][ic][kh][kw] weight layout, so the
 * weight buffer is usable as the GEMM A matrix unchanged.
 *
 * Boundary handling is hoisted out of the inner loop: each patch row
 * is a zero head, a contiguous/strided copy of the valid span, and a
 * zero tail.
 */
void im2col(const Tensor &input, std::size_t kernel_h,
            std::size_t kernel_w, std::size_t stride,
            std::size_t pad_h, std::size_t pad_w, std::size_t out_h,
            std::size_t out_w, float *patches);

} // namespace mindful::dnn::gemm

#endif // MINDFUL_DNN_GEMM_HH
