/**
 * @file
 * AVX2 row-range kernel of the GEMM dispatch tier.
 *
 * Compiled with `-mavx2 -ffp-contract=off` (src/dnn/CMakeLists.txt)
 * and only ever called after base::activeSimdIsa() confirmed the
 * host executes AVX2. Bit-exactness discipline (gemm_kernels.hh):
 * lanes hold distinct output elements, every element's k products
 * accumulate in ascending k order in one chain, and multiply/add are
 * separate instructions — `_mm256_add_ps(acc, _mm256_mul_ps(..))`,
 * never an FMA, so rounding matches the scalar reference exactly.
 */

#include "dnn/gemm_kernels.hh"

#include <immintrin.h>

#include <algorithm>

namespace mindful::dnn::gemm::detail {
namespace {

/**
 * In-register 8x8 transpose: on return r[j] lane l holds the input
 * r[l] element j (column j of the block across the 8 source rows).
 */
inline void
transpose8(__m256 r[8])
{
    __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
    __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
    __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
    __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
    __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
    __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
    __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
    __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
    __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    r[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
    r[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
    r[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
    r[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
    r[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
    r[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
    r[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
    r[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}

/**
 * GEMV (n == 1): vectorized *across output rows*. An 8-row panel
 * keeps one accumulator lane per row; each 8-wide k step loads a
 * contiguous 8-float segment from all 8 weight rows, transposes the
 * block in registers, and adds the 8 k terms one at a time with the
 * matching x[kk + j] broadcast — so lane l's chain is exactly
 * bias[row+l] + a[row+l][0]*x[0] + a[row+l][1]*x[1] + ..., the naive
 * order. k and row tails finish in scalar chains.
 */
void
gemvAvx2(std::size_t k, const float *a, const float *x,
         const float *bias, float *c, std::size_t row_begin,
         std::size_t row_end, bool relu)
{
    std::size_t row = row_begin;
    for (; row + 8 <= row_end; row += 8) {
        const float *panel = a + row * k;
        __m256 acc = bias != nullptr ? _mm256_loadu_ps(bias + row)
                                     : _mm256_setzero_ps();
        std::size_t kk = 0;
        for (; kk + 8 <= k; kk += 8) {
            __m256 block[8];
            for (std::size_t l = 0; l < 8; ++l)
                block[l] = _mm256_loadu_ps(panel + l * k + kk);
            transpose8(block);
            for (std::size_t j = 0; j < 8; ++j) {
                __m256 xv = _mm256_broadcast_ss(x + kk + j);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(block[j], xv));
            }
        }
        alignas(32) float lanes[8];
        _mm256_store_ps(lanes, acc);
        for (std::size_t l = 0; l < 8; ++l) {
            float s = lanes[l];
            const float *arow = panel + l * k;
            for (std::size_t kt = kk; kt < k; ++kt)
                s += arow[kt] * x[kt];
            c[row + l] = relu ? std::max(s, 0.0f) : s;
        }
    }
    for (; row < row_end; ++row) {
        const float *arow = a + row * k;
        float s = bias != nullptr ? bias[row] : 0.0f;
        for (std::size_t kt = 0; kt < k; ++kt)
            s += arow[kt] * x[kt];
        c[row] = relu ? std::max(s, 0.0f) : s;
    }
}

} // namespace

void
gemmRowRangeAvx2(std::size_t n, std::size_t k, const float *a,
                 const float *b, const float *bias, float *c,
                 std::size_t row_begin, std::size_t row_end, bool relu)
{
    if (n == 1) {
        gemvAvx2(k, a, b, bias, c, row_begin, row_end, relu);
        return;
    }

    // maxps(0, acc) keeps acc for -0.0 and NaN inputs — the same
    // element std::max(acc, 0.0f) returns — so the ReLU epilogue is
    // bit-identical to the scalar store.
    const __m256 zero = _mm256_setzero_ps();
    for (std::size_t row = row_begin; row < row_end; ++row) {
        const float *arow = a + row * k;
        float *crow = c + row * n;
        const float bias_v = bias != nullptr ? bias[row] : 0.0f;
        const __m256 biasv = _mm256_set1_ps(bias_v);

        std::size_t col = 0;
        for (; col + 16 <= n; col += 16) {
            __m256 acc0 = biasv;
            __m256 acc1 = biasv;
            const float *bcol = b + col;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const __m256 av = _mm256_broadcast_ss(arow + kk);
                const float *brow = bcol + kk * n;
                acc0 = _mm256_add_ps(
                    acc0, _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
                acc1 = _mm256_add_ps(
                    acc1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
            }
            if (relu) {
                acc0 = _mm256_max_ps(zero, acc0);
                acc1 = _mm256_max_ps(zero, acc1);
            }
            _mm256_storeu_ps(crow + col, acc0);
            _mm256_storeu_ps(crow + col + 8, acc1);
        }
        for (; col + 8 <= n; col += 8) {
            __m256 acc = biasv;
            const float *bcol = b + col;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const __m256 av = _mm256_broadcast_ss(arow + kk);
                acc = _mm256_add_ps(
                    acc,
                    _mm256_mul_ps(av, _mm256_loadu_ps(bcol + kk * n)));
            }
            if (relu)
                acc = _mm256_max_ps(zero, acc);
            _mm256_storeu_ps(crow + col, acc);
        }
        for (; col < n; ++col) {
            float acc = bias_v;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * b[kk * n + col];
            crow[col] = relu ? std::max(acc, 0.0f) : acc;
        }
    }
}

} // namespace mindful::dnn::gemm::detail
