/**
 * @file
 * Internal per-ISA kernel entry points of the GEMM dispatch tier.
 *
 * Each vector ISA contributes one row-range kernel, compiled in its
 * own translation unit with the matching target flags
 * (src/dnn/CMakeLists.txt adds gemm_avx2.cc with `-mavx2` on x86-64
 * and gemm_neon.cc on AArch64, both with `-ffp-contract=off`).
 * `gemm::biasGemm` selects one of them per call from
 * `base::activeSimdIsa()` and shards rows over it.
 *
 * Every kernel implements the same contract as the scalar reference
 * (gemm.cc): each output element accumulates its k products
 * **sequentially in ascending k order into a single scalar chain** —
 * vector lanes only ever hold *different* output elements, never
 * partial sums of one element, and multiply/add stay separate
 * instructions (no FMA). The result is therefore bit-identical to
 * `forwardNaive` on every ISA, which the dispatch tests and the
 * cross-`MINDFUL_SIMD` CSV comparisons enforce.
 *
 * Not installed API: include only from src/dnn internals and tests.
 */

#ifndef MINDFUL_DNN_GEMM_KERNELS_HH
#define MINDFUL_DNN_GEMM_KERNELS_HH

#include <cstddef>

namespace mindful::dnn::gemm::detail {

/**
 * Produce C rows [row_begin, row_end) of
 * C[m x n] = epilogue(A[m x k] * B[k x n] + bias). Kernels branch
 * internally on n == 1 (GEMV layout) vs the column-tiled GEMM.
 */
using RowRangeFn = void (*)(std::size_t n, std::size_t k,
                            const float *a, const float *b,
                            const float *bias, float *c,
                            std::size_t row_begin, std::size_t row_end,
                            bool relu);

/** Portable scalar kernel (gemm.cc) — the dispatch floor. */
void gemmRowRangeScalar(std::size_t n, std::size_t k, const float *a,
                        const float *b, const float *bias, float *c,
                        std::size_t row_begin, std::size_t row_end,
                        bool relu);

#if defined(MINDFUL_HAVE_AVX2)
/** 8-lane AVX2 kernel (gemm_avx2.cc), mul+add only (no FMA). */
void gemmRowRangeAvx2(std::size_t n, std::size_t k, const float *a,
                      const float *b, const float *bias, float *c,
                      std::size_t row_begin, std::size_t row_end,
                      bool relu);
#endif

#if defined(MINDFUL_HAVE_NEON)
/** 4-lane NEON kernel (gemm_neon.cc), mul+add only (no FMA). */
void gemmRowRangeNeon(std::size_t n, std::size_t k, const float *a,
                      const float *b, const float *bias, float *c,
                      std::size_t row_begin, std::size_t row_end,
                      bool relu);
#endif

} // namespace mindful::dnn::gemm::detail

#endif // MINDFUL_DNN_GEMM_KERNELS_HH
