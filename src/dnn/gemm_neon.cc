/**
 * @file
 * NEON (AArch64 Advanced SIMD) row-range kernel of the GEMM dispatch
 * tier. Compiled with `-ffp-contract=off` on AArch64 only
 * (src/dnn/CMakeLists.txt). Same bit-exactness discipline as the
 * AVX2 kernel (gemm_kernels.hh): lanes are distinct output elements,
 * ascending-k single-chain accumulation, and explicit
 * `vaddq_f32(acc, vmulq_f32(..))` — never `vmlaq_f32`, which
 * compilers lower to fused FMLA on AArch64.
 */

#include "dnn/gemm_kernels.hh"

#include <arm_neon.h>

#include <algorithm>

namespace mindful::dnn::gemm::detail {
namespace {

/**
 * GEMV (n == 1): 4-row panels, one accumulator lane per row. Each
 * 4-wide k step loads 4 contiguous weights from each row, transposes
 * the 4x4 block in registers, and adds the 4 k terms in ascending
 * order against x broadcasts — the naive chain per lane.
 */
void
gemvNeon(std::size_t k, const float *a, const float *x,
         const float *bias, float *c, std::size_t row_begin,
         std::size_t row_end, bool relu)
{
    std::size_t row = row_begin;
    for (; row + 4 <= row_end; row += 4) {
        const float *panel = a + row * k;
        float32x4_t acc = bias != nullptr ? vld1q_f32(bias + row)
                                          : vdupq_n_f32(0.0f);
        std::size_t kk = 0;
        for (; kk + 4 <= k; kk += 4) {
            float32x4_t r0 = vld1q_f32(panel + 0 * k + kk);
            float32x4_t r1 = vld1q_f32(panel + 1 * k + kk);
            float32x4_t r2 = vld1q_f32(panel + 2 * k + kk);
            float32x4_t r3 = vld1q_f32(panel + 3 * k + kk);
            // 4x4 transpose: columns j across the 4 rows.
            float32x4x2_t p01 = vtrnq_f32(r0, r1);
            float32x4x2_t p23 = vtrnq_f32(r2, r3);
            float32x4_t c0 = vcombine_f32(vget_low_f32(p01.val[0]),
                                          vget_low_f32(p23.val[0]));
            float32x4_t c1 = vcombine_f32(vget_low_f32(p01.val[1]),
                                          vget_low_f32(p23.val[1]));
            float32x4_t c2 = vcombine_f32(vget_high_f32(p01.val[0]),
                                          vget_high_f32(p23.val[0]));
            float32x4_t c3 = vcombine_f32(vget_high_f32(p01.val[1]),
                                          vget_high_f32(p23.val[1]));
            acc = vaddq_f32(acc, vmulq_f32(c0, vdupq_n_f32(x[kk + 0])));
            acc = vaddq_f32(acc, vmulq_f32(c1, vdupq_n_f32(x[kk + 1])));
            acc = vaddq_f32(acc, vmulq_f32(c2, vdupq_n_f32(x[kk + 2])));
            acc = vaddq_f32(acc, vmulq_f32(c3, vdupq_n_f32(x[kk + 3])));
        }
        float lanes[4];
        vst1q_f32(lanes, acc);
        for (std::size_t l = 0; l < 4; ++l) {
            float s = lanes[l];
            const float *arow = panel + l * k;
            for (std::size_t kt = kk; kt < k; ++kt)
                s += arow[kt] * x[kt];
            c[row + l] = relu ? std::max(s, 0.0f) : s;
        }
    }
    for (; row < row_end; ++row) {
        const float *arow = a + row * k;
        float s = bias != nullptr ? bias[row] : 0.0f;
        for (std::size_t kt = 0; kt < k; ++kt)
            s += arow[kt] * x[kt];
        c[row] = relu ? std::max(s, 0.0f) : s;
    }
}

/**
 * ReLU store matching std::max(acc, 0.0f) bit-for-bit: vmaxq picks
 * acc on equal-magnitude ±0.0 comparisons ordered this way, and the
 * vbslq fallback keeps NaN accumulators (scalar std::max returns the
 * first argument when the comparison is false).
 */
inline float32x4_t
reluNeon(float32x4_t acc)
{
    // acc < 0 ? 0 : acc — exactly the scalar std::max(acc, 0.0f):
    // -0.0 is not < 0 (keeps -0.0) and NaN compares false (keeps NaN).
    uint32x4_t neg = vcltq_f32(acc, vdupq_n_f32(0.0f));
    return vbslq_f32(neg, vdupq_n_f32(0.0f), acc);
}

} // namespace

void
gemmRowRangeNeon(std::size_t n, std::size_t k, const float *a,
                 const float *b, const float *bias, float *c,
                 std::size_t row_begin, std::size_t row_end, bool relu)
{
    if (n == 1) {
        gemvNeon(k, a, b, bias, c, row_begin, row_end, relu);
        return;
    }

    for (std::size_t row = row_begin; row < row_end; ++row) {
        const float *arow = a + row * k;
        float *crow = c + row * n;
        const float bias_v = bias != nullptr ? bias[row] : 0.0f;
        const float32x4_t biasv = vdupq_n_f32(bias_v);

        std::size_t col = 0;
        for (; col + 8 <= n; col += 8) {
            float32x4_t acc0 = biasv;
            float32x4_t acc1 = biasv;
            const float *bcol = b + col;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float32x4_t av = vdupq_n_f32(arow[kk]);
                const float *brow = bcol + kk * n;
                acc0 = vaddq_f32(acc0, vmulq_f32(av, vld1q_f32(brow)));
                acc1 = vaddq_f32(acc1,
                                 vmulq_f32(av, vld1q_f32(brow + 4)));
            }
            if (relu) {
                acc0 = reluNeon(acc0);
                acc1 = reluNeon(acc1);
            }
            vst1q_f32(crow + col, acc0);
            vst1q_f32(crow + col + 4, acc1);
        }
        for (; col + 4 <= n; col += 4) {
            float32x4_t acc = biasv;
            const float *bcol = b + col;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float32x4_t av = vdupq_n_f32(arow[kk]);
                acc = vaddq_f32(acc,
                                vmulq_f32(av, vld1q_f32(bcol + kk * n)));
            }
            if (relu)
                acc = reluNeon(acc);
            vst1q_f32(crow + col, acc);
        }
        for (; col < n; ++col) {
            float acc = bias_v;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * b[kk * n + col];
            crow[col] = relu ? std::max(acc, 0.0f) : acc;
        }
    }
}

} // namespace mindful::dnn::gemm::detail
