/**
 * @file
 * Abstract DNN layer interface.
 *
 * A layer knows how to (a) execute forward on a tensor, (b) report
 * its output shape, (c) report its MAC census for the accelerator
 * lower-bound model (Eq. 10), and (d) report its weight count for
 * the model-size analyses of Sec. 6.
 */

#ifndef MINDFUL_DNN_LAYER_HH
#define MINDFUL_DNN_LAYER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/random.hh"
#include "dnn/mac_census.hh"
#include "dnn/tensor.hh"

namespace mindful::dnn {

/** Base class of all network layers. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Short human-readable description, e.g. "dense 512->128". */
    virtual std::string name() const = 0;

    /** Output shape for a given input shape (panics on mismatch). */
    virtual Shape outputShape(const Shape &input) const = 0;

    /** Execute the layer. */
    virtual Tensor forward(const Tensor &input) const = 0;

    /** MAC decomposition for an input of the given shape. */
    virtual MacCensus census(const Shape &input) const = 0;

    /** Number of trainable parameters (weights + biases). */
    virtual std::uint64_t weightCount() const = 0;

    /** Randomize weights (no-op for parameterless layers). */
    virtual void initializeWeights(Rng &rng) { (void)rng; }
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace mindful::dnn

#endif // MINDFUL_DNN_LAYER_HH
