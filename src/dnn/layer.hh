/**
 * @file
 * Abstract DNN layer interface.
 *
 * A layer knows how to (a) execute forward on a tensor, (b) report
 * its output shape, (c) report its MAC census for the accelerator
 * lower-bound model (Eq. 10), and (d) report its weight count for
 * the model-size analyses of Sec. 6.
 */

#ifndef MINDFUL_DNN_LAYER_HH
#define MINDFUL_DNN_LAYER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "dnn/mac_census.hh"
#include "dnn/tensor.hh"

namespace mindful::dnn {

/**
 * Which kernel a layer's forward path uses once an input-dropout mask
 * is installed (paper Sec. 6.2, ChDr). Selected per layer from the
 * post-dropout weight density (sparse::kCsrDensityThreshold).
 */
enum class DropoutPath : std::uint8_t {
    None,   //!< no mask (or an all-active mask): dense kernels
    Pruned, //!< surviving columns packed dense, GEMM at reduced k
    Csr     //!< CSR-slab kernel over the masked weights
};

/** Base class of all network layers. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Short human-readable description, e.g. "dense 512->128". */
    virtual std::string name() const = 0;

    /** Output shape for a given input shape (panics on mismatch). */
    virtual Shape outputShape(const Shape &input) const = 0;

    /** Execute the layer. */
    virtual Tensor forward(const Tensor &input) const = 0;

    /** MAC decomposition for an input of the given shape. */
    virtual MacCensus census(const Shape &input) const = 0;

    /** Number of trainable parameters (weights + biases). */
    virtual std::uint64_t weightCount() const = 0;

    /** Randomize weights (no-op for parameterless layers). */
    virtual void initializeWeights(Rng &rng) { (void)rng; }

    /**
     * Install an input-dropout mask (Sec. 6.2 channel dropout as
     * *executed* sparsity instead of a rebuilt smaller model). One
     * entry per dropout unit of the layer's input — features for
     * DenseLayer, channels for Conv2dLayer; non-zero = active. An
     * all-active or empty mask clears dropout. Returns false (the
     * default) from layers that do not support input dropout; the
     * mask is then ignored.
     *
     * Contract: forward() over any input equals forward() without the
     * mask over the same input with the dropped units zeroed —
     * bit-identically for finite data (see src/dnn/sparse.hh on the
     * ±0 caveat).
     */
    virtual bool setInputDropout(const std::vector<std::uint8_t> &mask)
    {
        (void)mask;
        return false;
    }
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace mindful::dnn

#endif // MINDFUL_DNN_LAYER_HH
