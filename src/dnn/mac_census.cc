#include "dnn/mac_census.hh"

#include <algorithm>

namespace mindful::dnn {

std::uint64_t
totalMacs(const std::vector<MacCensus> &census)
{
    std::uint64_t total = 0;
    for (const auto &entry : census)
        total += entry.totalMacs();
    return total;
}

std::uint64_t
maxMacOp(const std::vector<MacCensus> &census)
{
    std::uint64_t best = 0;
    for (const auto &entry : census)
        best = std::max(best, entry.macOp);
    return best;
}

} // namespace mindful::dnn
