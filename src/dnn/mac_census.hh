/**
 * @file
 * MAC census: the f_MAC decomposition of Eq. 10 / Fig. 8.
 *
 * Every DNN layer decomposes into #MAC_op independent
 * multiply-accumulate sequences, each MAC_seq accumulation steps
 * long. The paper's examples (Fig. 8):
 *
 *  - matrix-vector (dense) layer W[out x in] * x: #MAC_op = out rows,
 *    MAC_seq = in accumulations per row;
 *  - convolution: #MAC_op = input spatial size / kernel size,
 *    MAC_seq = output size * number of kernels.
 *
 * In both cases #MAC_op * MAC_seq equals the layer's total MAC count,
 * which is the invariant this struct maintains.
 */

#ifndef MINDFUL_DNN_MAC_CENSUS_HH
#define MINDFUL_DNN_MAC_CENSUS_HH

#include <cstdint>
#include <vector>

namespace mindful::dnn {

/** Per-layer MAC decomposition. */
struct MacCensus
{
    /** Number of independent (parallelizable) MAC sequences. */
    std::uint64_t macOp = 0;

    /** Accumulation steps per sequence. */
    std::uint64_t macSeq = 0;

    /** Total multiply-accumulate operations in the layer; saturates
     *  at UINT64_MAX rather than wrapping on absurd inputs. */
    std::uint64_t
    totalMacs() const
    {
        if (macOp != 0 && macSeq > UINT64_MAX / macOp)
            return UINT64_MAX;
        return macOp * macSeq;
    }

    /** True for layers that perform no MACs (ReLU, pooling, ...). */
    bool
    empty() const
    {
        return macOp == 0 || macSeq == 0;
    }
};

/** Sum of total MACs over a census list. */
std::uint64_t totalMacs(const std::vector<MacCensus> &census);

/** Largest #MAC_op over a census list (the Eq. 12 cap). */
std::uint64_t maxMacOp(const std::vector<MacCensus> &census);

} // namespace mindful::dnn

#endif // MINDFUL_DNN_MAC_CENSUS_HH
