#include "dnn/models.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "dnn/activation.hh"
#include "dnn/conv.hh"
#include "dnn/dense.hh"
#include "dnn/pooling.hh"

namespace mindful::dnn {

double
scalingAlpha(std::uint64_t channels, std::size_t base_channels)
{
    MINDFUL_ASSERT(channels > 0, "channel count must be positive");
    MINDFUL_ASSERT(base_channels > 0, "base channel count must be positive");
    return static_cast<double>(channels) /
           static_cast<double>(base_channels);
}

std::size_t
extraDepth(double alpha)
{
    if (alpha <= 1.0)
        return 0;
    return static_cast<std::size_t>(
        std::max<long long>(0, std::llround(std::log2(alpha))));
}

std::size_t
scaledWidth(std::size_t base, double alpha)
{
    auto width = static_cast<std::size_t>(
        std::llround(static_cast<double>(base) * alpha));
    return std::max<std::size_t>(1, width);
}

Network
buildSpeechMlp(std::uint64_t channels, const MlpSpec &spec)
{
    const double alpha = scalingAlpha(channels, spec.baseChannels);

    const std::size_t input =
        static_cast<std::size_t>(channels) * spec.windowSamples;
    const std::size_t wide =
        scaledWidth(spec.wideFactor * spec.baseChannels, alpha);
    const std::size_t latent = spec.latentWidth;
    const std::size_t trunk = scaledWidth(spec.baseTrunkWidth, alpha);
    const std::size_t trunk_depth =
        std::max<std::size_t>(1, spec.baseTrunkDepth + extraDepth(alpha));

    std::ostringstream name;
    name << "speech-mlp n=" << channels;
    Network net(name.str(), Shape{input});

    net.emplace<DenseLayer>(input, wide);
    net.emplace<ReluLayer>();
    net.emplace<DenseLayer>(wide, latent);
    net.emplace<ReluLayer>();
    net.emplace<DenseLayer>(latent, trunk);
    net.emplace<ReluLayer>();
    for (std::size_t i = 1; i < trunk_depth; ++i) {
        net.emplace<DenseLayer>(trunk, trunk);
        net.emplace<ReluLayer>();
    }
    net.emplace<DenseLayer>(trunk, spec.outputLabels);
    net.emplace<SoftmaxLayer>();
    return net;
}

Network
buildSpeechDnCnn(std::uint64_t channels, const DnCnnSpec &spec)
{
    const double alpha = scalingAlpha(channels, spec.baseChannels);

    const std::size_t growth = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(spec.baseGrowth) * std::sqrt(alpha))));
    const std::size_t stages =
        std::max<std::size_t>(1, spec.baseStagesPerBlock + extraDepth(alpha));

    std::ostringstream name;
    name << "speech-dn-cnn n=" << channels;
    Network net(name.str(),
                Shape{1, static_cast<std::size_t>(channels),
                      spec.windowSamples});

    // Stem: extract `growth` feature maps from the raw window.
    net.emplace<Conv2dLayer>(1, growth, 3, 3, 1, Padding::Same);
    net.emplace<ReluLayer>();

    // Cap the channel axis at spatialCap rows so downstream conv cost
    // scales through growth/depth rather than raw map height.
    const std::size_t stem_pool = std::max<std::size_t>(
        1, static_cast<std::size_t>(channels) / spec.spatialCap);
    if (stem_pool > 1)
        net.emplace<Pool2dLayer>(PoolKind::Max, stem_pool, 1);
    net.emplace<Pool2dLayer>(PoolKind::Max, 2, 2);

    // Dense block 1.
    std::size_t feature_channels = growth;
    for (std::size_t s = 0; s < stages; ++s) {
        net.emplace<DenseStage2dLayer>(feature_channels, growth, 3, 3);
        feature_channels += growth;
    }

    net.emplace<Pool2dLayer>(PoolKind::Average, 2, 2);

    // Dense block 2.
    for (std::size_t s = 0; s < stages; ++s) {
        net.emplace<DenseStage2dLayer>(feature_channels, growth, 3, 3);
        feature_channels += growth;
    }

    net.emplace<GlobalAvgPoolLayer>();
    net.emplace<DenseLayer>(feature_channels, spec.outputLabels);
    net.emplace<SoftmaxLayer>();
    return net;
}

} // namespace mindful::dnn
