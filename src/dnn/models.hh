/**
 * @file
 * Reference BCI decoding models (paper Sec. 5.3).
 *
 * The paper evaluates two speech-synthesis decoders from
 * Berezutskaya et al. 2023, published for 128 ECoG channels sampled
 * at 2 kHz with a 40-label output (one per synthesized speech
 * frequency): a multi-layer perceptron (MLP) and a DenseNet-style
 * CNN (DN-CNN). The exact layer dimensions are not given in the
 * paper, so this module defines representative architectures at the
 * published operating point and scales them with
 *
 *     alpha = n / base_channels            (Sec. 5.3 "Scaling Factor")
 *
 * following the paper's rule: layer widths scale with alpha and the
 * network depth grows with alpha (we add round(log2 alpha) layers).
 * Base sizes are calibrated so the headline feasibility results of
 * Fig. 10 hold; see DESIGN.md Sec. 3 item 4.
 */

#ifndef MINDFUL_DNN_MODELS_HH
#define MINDFUL_DNN_MODELS_HH

#include <cstdint>

#include "dnn/network.hh"

namespace mindful::dnn {

/** Parameters shared by both speech models. */
struct SpeechModelSpec
{
    /** Channel count the published model was designed for. */
    std::size_t baseChannels = 128;

    /** Output labels (synthesized speech frequencies). */
    std::size_t outputLabels = 40;
};

/** MLP structure knobs. */
struct MlpSpec : SpeechModelSpec
{
    /** Input window length in samples per channel. */
    std::size_t windowSamples = 12;

    /** First hidden width as a multiple of the channel count. */
    std::size_t wideFactor = 2;

    /** Fixed width of the latent bottleneck (the Sec. 6.1 cut). */
    std::size_t latentWidth = 1024;

    /** Trunk width at alpha = 1 (scales with alpha). */
    std::size_t baseTrunkWidth = 192;

    /** Trunk depth at alpha = 1 (grows with extraDepth(alpha)). */
    std::size_t baseTrunkDepth = 2;
};

/** DN-CNN structure knobs. */
struct DnCnnSpec : SpeechModelSpec
{
    /** Input window length in samples per channel. */
    std::size_t windowSamples = 16;

    /** DenseNet growth rate at alpha = 1 (scales with sqrt(alpha)). */
    std::size_t baseGrowth = 11;

    /** Dense stages per block at alpha = 1. */
    std::size_t baseStagesPerBlock = 3;

    /** Feature-map height cap after the stem pool. */
    std::size_t spatialCap = 128;
};

/** alpha = n / base (Sec. 5.3). */
double scalingAlpha(std::uint64_t channels, std::size_t base_channels);

/** Extra network depth added at scale: max(0, round(log2 alpha)). */
std::size_t extraDepth(double alpha);

/** Width scaled by alpha, clamped to at least 1. */
std::size_t scaledWidth(std::size_t base, double alpha);

/**
 * Build the MLP speech decoder for @p channels NI channels.
 *
 * Structure: [window * n] -> 2n -> latent(1024) -> trunk stack -> 40,
 * ReLU between dense layers. The fixed-width latent bottleneck is
 * the natural Sec. 6.1 partition cut; the trunk behind it scales in
 * both width and depth with alpha, so partitioning frees a
 * meaningful (but shrinking) share of compute as the system scales.
 */
Network buildSpeechMlp(std::uint64_t channels, const MlpSpec &spec = {});

/**
 * Build the DN-CNN speech decoder for @p channels NI channels.
 *
 * Structure: stem conv -> pools -> two DenseNet blocks -> global
 * average pool -> dense classifier. All intermediate feature maps
 * are much larger than the NI channel count, which is why DNN
 * partitioning does not help this model (Fig. 11).
 */
Network buildSpeechDnCnn(std::uint64_t channels, const DnCnnSpec &spec = {});

} // namespace mindful::dnn

#endif // MINDFUL_DNN_MODELS_HH
