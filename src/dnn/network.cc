#include "dnn/network.hh"

#include <sstream>

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::dnn {

Network::Network(std::string name, Shape input_shape)
    : _name(std::move(name))
{
    MINDFUL_ASSERT(!input_shape.empty() && elementCount(input_shape) > 0,
                   "network input shape must be non-empty");
    _shapes.push_back(std::move(input_shape));
}

void
Network::add(LayerPtr layer)
{
    MINDFUL_ASSERT(layer != nullptr, "cannot add a null layer");
    Shape out = layer->outputShape(_shapes.back());
    _shapes.push_back(std::move(out));
    _layers.push_back(std::move(layer));
}

const Layer &
Network::layer(std::size_t i) const
{
    MINDFUL_ASSERT(i < _layers.size(), "layer index out of range");
    return *_layers[i];
}

const Shape &
Network::shapeBefore(std::size_t i) const
{
    MINDFUL_ASSERT(i < _layers.size(), "layer index out of range");
    return _shapes[i];
}

const Shape &
Network::shapeAfter(std::size_t i) const
{
    MINDFUL_ASSERT(i < _layers.size(), "layer index out of range");
    return _shapes[i + 1];
}

std::size_t
Network::outputElements(std::size_t i) const
{
    return elementCount(shapeAfter(i));
}

Tensor
Network::forward(const Tensor &input) const
{
    return forwardPrefix(input, _layers.size());
}

Tensor
Network::forwardPrefix(const Tensor &input, std::size_t layers) const
{
    MINDFUL_ASSERT(layers <= _layers.size(),
                   "prefix length exceeds layer count");
    MINDFUL_ASSERT(input.shape() == _shapes.front(),
                   "input shape ", toString(input.shape()),
                   " != expected ", toString(_shapes.front()));

    MINDFUL_TRACE_SPAN(span, "dnn", "network.forward");
    span.arg("network", _name)
        .arg("layers", static_cast<std::uint64_t>(layers));
    MINDFUL_METRIC_COUNT("dnn.forward.calls", 1);
    MINDFUL_METRIC_COUNT("dnn.forward.layers", layers);

    Tensor activation = input;
    for (std::size_t i = 0; i < layers; ++i)
        activation = _layers[i]->forward(activation);
    return activation;
}

std::vector<MacCensus>
Network::census() const
{
    return censusPrefix(_layers.size());
}

std::vector<MacCensus>
Network::censusPrefix(std::size_t layers) const
{
    MINDFUL_ASSERT(layers <= _layers.size(),
                   "prefix length exceeds layer count");
    std::vector<MacCensus> out;
    out.reserve(layers);
    for (std::size_t i = 0; i < layers; ++i)
        out.push_back(_layers[i]->census(_shapes[i]));
    return out;
}

std::uint64_t
Network::totalMacs() const
{
    std::uint64_t total = 0;
    for (const auto &entry : census())
        total += entry.totalMacs();
    return total;
}

std::uint64_t
Network::totalWeights() const
{
    std::uint64_t total = 0;
    for (const auto &layer : _layers)
        total += layer->weightCount();
    return total;
}

void
Network::initializeWeights(Rng &rng)
{
    for (auto &layer : _layers)
        layer->initializeWeights(rng);
}

bool
Network::setInputDropout(const std::vector<std::uint8_t> &mask)
{
    MINDFUL_ASSERT(!_layers.empty(),
                   "setInputDropout on an empty network");
    return _layers.front()->setInputDropout(mask);
}

std::string
Network::summary() const
{
    std::ostringstream os;
    os << _name << " (input " << toString(_shapes.front()) << ")\n";
    auto counts = census();
    for (std::size_t i = 0; i < _layers.size(); ++i) {
        os << "  [" << i << "] " << _layers[i]->name() << " -> "
           << toString(_shapes[i + 1]);
        if (!counts[i].empty()) {
            os << "  (#MACop " << counts[i].macOp << ", MACseq "
               << counts[i].macSeq << ", MACs " << counts[i].totalMacs()
               << ")";
        }
        os << '\n';
    }
    os << "  total MACs " << totalMacs() << ", weights " << totalWeights();
    return os.str();
}

} // namespace mindful::dnn
