/**
 * @file
 * Feed-forward network container.
 *
 * A Network is an ordered list of layers with a fixed input shape.
 * Besides forward execution it exposes the quantities the framework
 * analyses: the per-layer MAC census (Eq. 10), per-layer output
 * element counts (partition points, Sec. 6.1), and total weight
 * count (model size, Sec. 6.2).
 */

#ifndef MINDFUL_DNN_NETWORK_HH
#define MINDFUL_DNN_NETWORK_HH

#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace mindful::dnn {

/** An ordered, shape-checked stack of layers. */
class Network
{
  public:
    Network(std::string name, Shape input_shape);

    Network(Network &&) = default;
    Network &operator=(Network &&) = default;

    const std::string &name() const { return _name; }
    const Shape &inputShape() const { return _shapes.front(); }
    const Shape &outputShape() const { return _shapes.back(); }

    /** Append a layer; its input shape is validated immediately. */
    void add(LayerPtr layer);

    /** Construct and append a layer in place; returns a reference. */
    template <typename L, typename... Args>
    L &
    emplace(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L &ref = *layer;
        add(std::move(layer));
        return ref;
    }

    std::size_t layerCount() const { return _layers.size(); }
    const Layer &layer(std::size_t i) const;

    /** Input shape of layer @p i (output shape of layer i-1). */
    const Shape &shapeBefore(std::size_t i) const;

    /** Output shape of layer @p i. */
    const Shape &shapeAfter(std::size_t i) const;

    /** Output element count of layer @p i (partition-cut volume). */
    std::size_t outputElements(std::size_t i) const;

    /** Full forward pass. */
    Tensor forward(const Tensor &input) const;

    /** Forward through the first @p layers layers only. */
    Tensor forwardPrefix(const Tensor &input, std::size_t layers) const;

    /** Per-layer MAC census. */
    std::vector<MacCensus> census() const;

    /** Census of the first @p layers layers only. */
    std::vector<MacCensus> censusPrefix(std::size_t layers) const;

    /** Total MACs over all layers. */
    std::uint64_t totalMacs() const;

    /** Total trainable parameters. */
    std::uint64_t totalWeights() const;

    /** Randomize every layer's weights. */
    void initializeWeights(Rng &rng);

    /**
     * Install an input-dropout mask on the first layer (the layer
     * that consumes NI channels — Sec. 6.2 channel dropout). Returns
     * false when that layer does not support input dropout.
     */
    bool setInputDropout(const std::vector<std::uint8_t> &mask);

    /** Multi-line human-readable structure dump. */
    std::string summary() const;

  private:
    std::string _name;
    std::vector<LayerPtr> _layers;
    std::vector<Shape> _shapes; //!< _shapes[i] = input shape of layer i
};

} // namespace mindful::dnn

#endif // MINDFUL_DNN_NETWORK_HH
