#include "dnn/opaque.hh"

#include "base/logging.hh"

namespace mindful::dnn {

OpaqueMacLayer::OpaqueMacLayer(std::string name, std::size_t in_elements,
                               std::size_t out_elements, MacCensus census,
                               std::uint64_t weights)
    : _name(std::move(name)), _inElements(in_elements),
      _outElements(out_elements), _census(census), _weights(weights)
{
    MINDFUL_ASSERT(in_elements > 0 && out_elements > 0,
                   "opaque layer element counts must be positive");
}

Shape
OpaqueMacLayer::outputShape(const Shape &input) const
{
    MINDFUL_ASSERT(elementCount(input) == _inElements,
                   "opaque layer '", _name, "' expects ", _inElements,
                   " inputs, got shape ", toString(input));
    return {_outElements};
}

Tensor
OpaqueMacLayer::forward(const Tensor &input) const
{
    (void)input;
    MINDFUL_FATAL("opaque workload layer '", _name,
                  "' is analysis-only and cannot execute forward(); "
                  "use it with the census/lower-bound paths");
}

MacCensus
OpaqueMacLayer::census(const Shape &input) const
{
    MINDFUL_ASSERT(elementCount(input) == _inElements,
                   "census input shape mismatch for ", _name);
    return _census;
}

} // namespace mindful::dnn
