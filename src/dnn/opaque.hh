/**
 * @file
 * Opaque MAC workload layer.
 *
 * Not every on-implant computation is a neural network: the paper's
 * related work runs Kalman filters and template matchers on implants
 * (HALO, NOEMA). OpaqueMacLayer lets such algorithms enter the
 * Eq. 10-15 analysis by declaring their MAC decomposition directly —
 * input/output element counts, #MAC_op, MAC_seq, and a parameter
 * count — without providing an executable forward pass. Analysis
 * paths (census, shapes, weights) work normally; calling forward()
 * is a fatal error with a clear message.
 */

#ifndef MINDFUL_DNN_OPAQUE_HH
#define MINDFUL_DNN_OPAQUE_HH

#include <string>

#include "dnn/layer.hh"

namespace mindful::dnn {

/** Analysis-only layer with a declared MAC census. */
class OpaqueMacLayer : public Layer
{
  public:
    /**
     * @param name human-readable stage name (e.g. "S = H P H^T").
     * @param in_elements expected input element count.
     * @param out_elements produced output element count.
     * @param census the stage's MAC decomposition.
     * @param weights stored parameters attributed to this stage.
     */
    OpaqueMacLayer(std::string name, std::size_t in_elements,
                   std::size_t out_elements, MacCensus census,
                   std::uint64_t weights = 0);

    std::string name() const override { return _name; }
    Shape outputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;
    MacCensus census(const Shape &input) const override;
    std::uint64_t weightCount() const override { return _weights; }

  private:
    std::string _name;
    std::size_t _inElements;
    std::size_t _outElements;
    MacCensus _census;
    std::uint64_t _weights;
};

} // namespace mindful::dnn

#endif // MINDFUL_DNN_OPAQUE_HH
