#include "dnn/pooling.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "base/logging.hh"

namespace mindful::dnn {

Pool2dLayer::Pool2dLayer(PoolKind kind, std::size_t kernel_h,
                         std::size_t kernel_w)
    : _kind(kind), _kernelH(kernel_h), _kernelW(kernel_w)
{
    MINDFUL_ASSERT(kernel_h > 0 && kernel_w > 0,
                   "pool kernel dimensions must be positive");
}

std::string
Pool2dLayer::name() const
{
    std::ostringstream os;
    os << (_kind == PoolKind::Max ? "max-pool " : "avg-pool ") << _kernelH
       << "x" << _kernelW;
    return os.str();
}

Shape
Pool2dLayer::outputShape(const Shape &input) const
{
    MINDFUL_ASSERT(input.size() == 3, "pool2d expects a rank-3 input");
    MINDFUL_ASSERT(input[1] >= _kernelH && input[2] >= _kernelW,
                   "pool kernel larger than input");
    return {input[0], input[1] / _kernelH, input[2] / _kernelW};
}

Tensor
Pool2dLayer::forward(const Tensor &input) const
{
    Shape out_shape = outputShape(input.shape());
    Tensor out(out_shape);
    const double window =
        static_cast<double>(_kernelH) * static_cast<double>(_kernelW);

    for (std::size_t c = 0; c < out_shape[0]; ++c) {
        for (std::size_t oy = 0; oy < out_shape[1]; ++oy) {
            for (std::size_t ox = 0; ox < out_shape[2]; ++ox) {
                float best = -std::numeric_limits<float>::infinity();
                double sum = 0.0;
                for (std::size_t ky = 0; ky < _kernelH; ++ky) {
                    for (std::size_t kx = 0; kx < _kernelW; ++kx) {
                        float v = input.at(c, oy * _kernelH + ky,
                                           ox * _kernelW + kx);
                        best = std::max(best, v);
                        sum += v;
                    }
                }
                out.at(c, oy, ox) = _kind == PoolKind::Max
                                        ? best
                                        : static_cast<float>(sum / window);
            }
        }
    }
    return out;
}

Shape
GlobalAvgPoolLayer::outputShape(const Shape &input) const
{
    MINDFUL_ASSERT(input.size() == 3,
                   "global-avg-pool expects a rank-3 input");
    return {input[0]};
}

Tensor
GlobalAvgPoolLayer::forward(const Tensor &input) const
{
    Shape out_shape = outputShape(input.shape());
    Tensor out(out_shape);
    const double window =
        static_cast<double>(input.dim(1)) * static_cast<double>(input.dim(2));
    for (std::size_t c = 0; c < out_shape[0]; ++c) {
        double sum = 0.0;
        for (std::size_t y = 0; y < input.dim(1); ++y)
            for (std::size_t x = 0; x < input.dim(2); ++x)
                sum += input.at(c, y, x);
        out[c] = static_cast<float>(sum / window);
    }
    return out;
}

Shape
FlattenLayer::outputShape(const Shape &input) const
{
    MINDFUL_ASSERT(!input.empty(), "flatten of an empty shape");
    return {elementCount(input)};
}

Tensor
FlattenLayer::forward(const Tensor &input) const
{
    Tensor out = input;
    out.reshape({input.size()});
    return out;
}

} // namespace mindful::dnn
