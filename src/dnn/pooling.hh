/**
 * @file
 * Pooling and shape-manipulation layers (MAC-free).
 */

#ifndef MINDFUL_DNN_POOLING_HH
#define MINDFUL_DNN_POOLING_HH

#include <cstdint>

#include "dnn/layer.hh"

namespace mindful::dnn {

/** Pool operator selector. */
enum class PoolKind : std::uint8_t { Max, Average };

/**
 * Non-overlapping 2-D pooling over (channels, height, width); the
 * stride equals the kernel. Trailing partial windows are dropped
 * (floor semantics), matching common framework defaults.
 */
class Pool2dLayer : public Layer
{
  public:
    Pool2dLayer(PoolKind kind, std::size_t kernel_h, std::size_t kernel_w);

    std::string name() const override;
    Shape outputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;
    MacCensus census(const Shape &input) const override { (void)input;
                                                          return {0, 0}; }
    std::uint64_t weightCount() const override { return 0; }

  private:
    PoolKind _kind;
    std::size_t _kernelH;
    std::size_t _kernelW;
};

/** Global average pool: (C, H, W) -> (C). */
class GlobalAvgPoolLayer : public Layer
{
  public:
    std::string name() const override { return "global-avg-pool"; }
    Shape outputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;
    MacCensus census(const Shape &input) const override { (void)input;
                                                          return {0, 0}; }
    std::uint64_t weightCount() const override { return 0; }
};

/** Flatten to rank-1. */
class FlattenLayer : public Layer
{
  public:
    std::string name() const override { return "flatten"; }
    Shape outputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;
    MacCensus census(const Shape &input) const override { (void)input;
                                                          return {0, 0}; }
    std::uint64_t weightCount() const override { return 0; }
};

} // namespace mindful::dnn

#endif // MINDFUL_DNN_POOLING_HH
