#include "dnn/sparse.hh"

#include <algorithm>

#include "base/logging.hh"
#include "exec/parallel.hh"
#include "obs/collector.hh"
#include "obs/handles.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::dnn::sparse {

PrunedColumns
PrunedColumns::fromDense(const float *a, std::size_t m, std::size_t k,
                         const std::uint8_t *active_cols)
{
    MINDFUL_ASSERT(a != nullptr && active_cols != nullptr,
                   "PrunedColumns inputs must be non-null");
    PrunedColumns out;
    out._rows = m;
    for (std::size_t col = 0; col < k; ++col)
        if (active_cols[col] != 0)
            out._active.push_back(static_cast<std::uint32_t>(col));
    out._packed.resize(m * out._active.size());
    float *dst = out._packed.data();
    for (std::size_t row = 0; row < m; ++row) {
        const float *arow = a + row * k;
        for (const std::uint32_t col : out._active)
            *dst++ = arow[col];
    }
    return out;
}

void
PrunedColumns::gather(const float *x, float *out) const
{
    for (std::size_t j = 0; j < _active.size(); ++j)
        out[j] = x[_active[j]];
}

SlabCsrMatrix
SlabCsrMatrix::fromDense(const float *a, std::size_t m, std::size_t k,
                         const std::uint8_t *active_cols,
                         std::size_t slab_width)
{
    MINDFUL_ASSERT(a != nullptr, "SlabCsrMatrix source must be non-null");
    MINDFUL_ASSERT(slab_width > 0, "slab width must be positive");

    SlabCsrMatrix out;
    out._rows = m;
    out._cols = k;
    const std::size_t slab_count =
        k == 0 ? 0 : (k + slab_width - 1) / slab_width;
    out._slabs.resize(slab_count);
    for (std::size_t s = 0; s < slab_count; ++s) {
        out._slabs[s].k_begin = s * slab_width;
        out._slabs[s].k_end = std::min(k, (s + 1) * slab_width);
        out._slabs[s].row_ptr.assign(m + 1, 0);
    }

    // Rows ascend and kk ascends within a row, so each slab's col/val
    // arrays come out row-major with ascending k per row — the order
    // multiply() relies on for the single-chain accumulation.
    for (std::size_t row = 0; row < m; ++row) {
        const float *arow = a + row * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            if (active_cols != nullptr && active_cols[kk] == 0)
                continue;
            const float v = arow[kk];
            if (v == 0.0f)
                continue;
            Slab &slab = out._slabs[kk / slab_width];
            slab.col.push_back(static_cast<std::uint32_t>(kk));
            slab.val.push_back(v);
        }
        for (Slab &slab : out._slabs)
            slab.row_ptr[row + 1] =
                static_cast<std::uint32_t>(slab.col.size());
    }
    for (const Slab &slab : out._slabs)
        out._nnz += slab.col.size();
    return out;
}

void
SlabCsrMatrix::multiplyRows(std::size_t n, const float *b,
                            const float *bias, float *c, bool relu,
                            std::size_t row_begin,
                            std::size_t row_end) const
{
    if (n == 1) {
        // Row-outer, slab-inner: one scalar chain per output element,
        // nonzeros visited in ascending k across the slab sequence.
        for (std::size_t row = row_begin; row < row_end; ++row) {
            float acc = bias != nullptr ? bias[row] : 0.0f;
            for (const Slab &slab : _slabs) {
                const std::uint32_t lo = slab.row_ptr[row];
                const std::uint32_t hi = slab.row_ptr[row + 1];
                for (std::uint32_t idx = lo; idx < hi; ++idx)
                    acc += slab.val[idx] * b[slab.col[idx]];
            }
            c[row] = relu ? std::max(acc, 0.0f) : acc;
        }
        return;
    }

    // n > 1: seed C with the bias, then stream slab by slab so the
    // touched band of B rows stays cache-resident; each C element
    // still receives its nonzero terms in ascending k order because
    // slabs are visited in k order and are ascending internally.
    for (std::size_t row = row_begin; row < row_end; ++row) {
        float *crow = c + row * n;
        const float bias_v = bias != nullptr ? bias[row] : 0.0f;
        std::fill(crow, crow + n, bias_v);
    }
    for (const Slab &slab : _slabs) {
        for (std::size_t row = row_begin; row < row_end; ++row) {
            float *crow = c + row * n;
            const std::uint32_t lo = slab.row_ptr[row];
            const std::uint32_t hi = slab.row_ptr[row + 1];
            for (std::uint32_t idx = lo; idx < hi; ++idx) {
                const float av = slab.val[idx];
                const float *brow =
                    b + static_cast<std::size_t>(slab.col[idx]) * n;
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    }
    if (relu)
        for (std::size_t row = row_begin; row < row_end; ++row) {
            float *crow = c + row * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] = std::max(crow[j], 0.0f);
        }
}

void
SlabCsrMatrix::multiply(std::size_t n, const float *b, const float *bias,
                        float *c, gemm::Epilogue epilogue) const
{
    MINDFUL_ASSERT(n > 0, "spmm n must be positive");
    MINDFUL_ASSERT(b != nullptr && c != nullptr,
                   "spmm buffers must be non-null");

    const std::uint64_t macs = static_cast<std::uint64_t>(_nnz) * n;
    MINDFUL_TRACE_SPAN(span, "dnn", "spmm");
    span.arg("m", static_cast<std::uint64_t>(_rows))
        .arg("n", static_cast<std::uint64_t>(n))
        .arg("nnz", static_cast<std::uint64_t>(_nnz));

    const bool relu = epilogue == gemm::Epilogue::Relu;

    // Same row-only sharding rule as biasGemm: shards own disjoint C
    // rows, so the decomposition cannot affect the result.
    std::size_t shards = 1;
    if (macs >= gemm::kParallelMacThreshold)
        shards = std::min<std::size_t>(exec::kDefaultShards, _rows);
    if (shards <= 1) {
        multiplyRows(n, b, bias, c, relu, 0, _rows);
    } else {
        static const obs::TraceSite shard_site =
            obs::TraceCollector::global().site("dnn", "spmm.shard");
        static const obs::CounterHandle shard_rows =
            obs::HotMetricTable::global().counter("dnn.spmm.shard_rows");
        exec::parallelFor(
            shards,
            [&](std::size_t shard) {
                obs::HotSpan shard_span(shard_site);
                auto range = exec::shardRange(_rows, shards, shard);
                shard_span.setArg(range.end - range.begin);
                multiplyRows(n, b, bias, c, relu, range.begin,
                             range.end);
                shard_rows.bump(range.end - range.begin);
            },
            "dnn.spmm.shard");
    }

    auto &registry = obs::MetricRegistry::global();
    if (registry.enabled()) {
        registry.counter("dnn.spmm.calls").add(1);
        registry.counter("dnn.spmm.macs").add(macs);
    }
}

double
maskedDensity(const float *a, std::size_t m, std::size_t k,
              const std::uint8_t *active_cols)
{
    if (m == 0 || k == 0)
        return 0.0;
    std::size_t nnz = 0;
    for (std::size_t row = 0; row < m; ++row) {
        const float *arow = a + row * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            if (active_cols != nullptr && active_cols[kk] == 0)
                continue;
            if (arow[kk] != 0.0f)
                ++nnz;
        }
    }
    return static_cast<double>(nnz) /
           (static_cast<double>(m) * static_cast<double>(k));
}

} // namespace mindful::dnn::sparse
