/**
 * @file
 * Structured-sparsity kernels for channel-dropout inference.
 *
 * The paper's optimization sweeps (Fig. 13) shrink decoders by
 * dropping input channels; this module turns a dropout mask into
 * compute that is actually skipped instead of multiplied by zero.
 * Two representations cover the density range:
 *
 *  - PrunedColumns: the mask is structured (whole columns dead), so
 *    the surviving weight columns are packed once into a dense
 *    m x ka matrix and the input is gathered to match — the dense
 *    biasGemm then runs at the reduced k. Best when the surviving
 *    block is still dense.
 *  - SlabCsrMatrix: a k-slab CSR form (each slab is a [slab_begin,
 *    slab_end) band of the k axis with its own rowPtr/col/val
 *    arrays). Below kCsrDensityThreshold the per-nonzero bookkeeping
 *    beats streaming the zeros. Column indices are absolute k
 *    positions, stored ascending per row, so the multiply visits a
 *    row's nonzeros in ascending k order — the same single-chain
 *    accumulation order as the dense kernel.
 *
 * Exactness: both paths skip terms whose factor is exactly zero. An
 * IEEE-754 add of ±0 only changes an accumulator that is itself
 * exactly -0.0 (then -0 + (+0) = +0), which cannot arise from the
 * finite, non-zero random data the golden tests use — so outputs are
 * bit-identical to forwardNaive over the zero-masked input there, and
 * for any realistic signal (docs/performance.md#structured-sparsity).
 */

#ifndef MINDFUL_DNN_SPARSE_HH
#define MINDFUL_DNN_SPARSE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dnn/gemm.hh"

namespace mindful::dnn::sparse {

/** k-axis band width of one CSR slab (SNIG-style partitioning). */
inline constexpr std::size_t kSlabWidth = 256;

/**
 * Density (nnz / (m * k)) at or below which layers switch from the
 * column-pruned dense path to the CSR-slab kernel.
 */
inline constexpr double kCsrDensityThreshold = 0.25;

/**
 * Packed view of the columns that survive a structured mask: the
 * active column indices (ascending) and the m x activeCols() weight
 * matrix gathered from them. Feed gather()-ed inputs and packed()
 * to the dense biasGemm at the reduced k.
 */
class PrunedColumns {
  public:
    /**
     * Pack the columns of the m x k matrix @p a where
     * @p active_cols[col] != 0. @p active_cols has k entries.
     */
    static PrunedColumns fromDense(const float *a, std::size_t m,
                                   std::size_t k,
                                   const std::uint8_t *active_cols);

    std::size_t rows() const { return _rows; }
    std::size_t activeCols() const { return _active.size(); }
    const float *packed() const { return _packed.data(); }
    const std::vector<std::uint32_t> &activeIndices() const
    {
        return _active;
    }

    /** out[j] = x[active[j]] for j < activeCols(); x has k entries. */
    void gather(const float *x, float *out) const;

  private:
    std::size_t _rows = 0;
    std::vector<std::uint32_t> _active;
    std::vector<float> _packed;
};

/**
 * Slab-partitioned CSR matrix over an m x k dense weight matrix.
 * Construction drops masked columns and exact-zero entries; multiply
 * runs against the **full-k** right-hand side (column indices are
 * absolute), so no input gather is needed.
 */
class SlabCsrMatrix {
  public:
    /**
     * Compress the m x k matrix @p a. @p active_cols (k entries) may
     * be nullptr to keep every column; entries that are exactly 0.0f
     * are always dropped. @p slab_width bands the k axis.
     */
    static SlabCsrMatrix fromDense(const float *a, std::size_t m,
                                   std::size_t k,
                                   const std::uint8_t *active_cols,
                                   std::size_t slab_width = kSlabWidth);

    /**
     * C = epilogue(this * B + bias): B is k x n row-major (full k),
     * C is m x n, bias has m entries or is nullptr. Rows shard over
     * exec::parallelFor past the same MAC threshold as biasGemm;
     * each output element accumulates its nonzeros in ascending k
     * order, so results are thread-count invariant.
     */
    void multiply(std::size_t n, const float *b, const float *bias,
                  float *c, gemm::Epilogue epilogue) const;

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }
    std::size_t nnz() const { return _nnz; }
    std::size_t slabCount() const { return _slabs.size(); }

    /** nnz / (rows * cols) of the *original* dense extent. */
    double density() const
    {
        return _rows == 0 || _cols == 0
                   ? 0.0
                   : static_cast<double>(_nnz) /
                         (static_cast<double>(_rows) *
                          static_cast<double>(_cols));
    }

  private:
    struct Slab {
        std::size_t k_begin = 0;
        std::size_t k_end = 0;
        std::vector<std::uint32_t> row_ptr; // rows + 1 entries
        std::vector<std::uint32_t> col;     // absolute k index
        std::vector<float> val;
    };

    void multiplyRows(std::size_t n, const float *b, const float *bias,
                      float *c, bool relu, std::size_t row_begin,
                      std::size_t row_end) const;

    std::size_t _rows = 0;
    std::size_t _cols = 0;
    std::size_t _nnz = 0;
    std::vector<Slab> _slabs;
};

/**
 * Density of the m x k matrix @p a after masking: fraction of entries
 * that are non-zero AND in an active column. This is the number the
 * kCsrDensityThreshold comparison uses.
 */
double maskedDensity(const float *a, std::size_t m, std::size_t k,
                     const std::uint8_t *active_cols);

} // namespace mindful::dnn::sparse

#endif // MINDFUL_DNN_SPARSE_HH
