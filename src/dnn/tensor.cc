#include "dnn/tensor.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace mindful::dnn {

std::size_t
elementCount(const Shape &shape)
{
    std::size_t count = 1;
    for (std::size_t d : shape)
        count *= d;
    return shape.empty() ? 0 : count;
}

std::string
toString(const Shape &shape)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i)
            os << 'x';
        os << shape[i];
    }
    return os.str();
}

Tensor::Tensor(Shape shape)
    : _shape(std::move(shape)), _data(elementCount(_shape), 0.0f)
{
    for (std::size_t d : _shape)
        MINDFUL_ASSERT(d > 0, "tensor dimensions must be positive");
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : _shape(std::move(shape)), _data(std::move(data))
{
    MINDFUL_ASSERT(_data.size() == elementCount(_shape),
                   "tensor data size ", _data.size(),
                   " != shape element count ", elementCount(_shape));
}

std::size_t
Tensor::dim(std::size_t i) const
{
    MINDFUL_ASSERT(i < _shape.size(), "tensor dim index out of range");
    return _shape[i];
}

float &
Tensor::at(std::size_t i, std::size_t j)
{
    MINDFUL_ASSERT(rank() == 2, "2-D accessor on rank-", rank(), " tensor");
    MINDFUL_ASSERT(i < _shape[0] && j < _shape[1], "index out of range");
    return _data[i * _shape[1] + j];
}

float
Tensor::at(std::size_t i, std::size_t j) const
{
    return const_cast<Tensor *>(this)->at(i, j);
}

float &
Tensor::at(std::size_t c, std::size_t h, std::size_t w)
{
    MINDFUL_ASSERT(rank() == 3, "3-D accessor on rank-", rank(), " tensor");
    MINDFUL_ASSERT(c < _shape[0] && h < _shape[1] && w < _shape[2],
                   "index out of range");
    return _data[(c * _shape[1] + h) * _shape[2] + w];
}

float
Tensor::at(std::size_t c, std::size_t h, std::size_t w) const
{
    return const_cast<Tensor *>(this)->at(c, h, w);
}

void
Tensor::reshape(Shape shape)
{
    MINDFUL_ASSERT(elementCount(shape) == _data.size(),
                   "reshape must preserve element count");
    _shape = std::move(shape);
}

float
Tensor::maxAbs() const
{
    float worst = 0.0f;
    for (float v : _data)
        worst = std::max(worst, std::abs(v));
    return worst;
}

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    MINDFUL_ASSERT(_shape == other._shape,
                   "maxAbsDiff requires equal shapes");
    float worst = 0.0f;
    for (std::size_t i = 0; i < _data.size(); ++i)
        worst = std::max(worst, std::abs(_data[i] - other._data[i]));
    return worst;
}

std::size_t
Tensor::argmax() const
{
    MINDFUL_ASSERT(!_data.empty(), "argmax of an empty tensor");
    return static_cast<std::size_t>(
        std::max_element(_data.begin(), _data.end()) - _data.begin());
}

} // namespace mindful::dnn
