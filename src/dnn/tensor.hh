/**
 * @file
 * Minimal dense tensor for DNN inference.
 *
 * The framework needs real forward execution (to cross-check the
 * accelerator simulator and to run the end-to-end examples), but only
 * for small models — so this is a simple row-major float tensor with
 * explicit shapes, not a full autograd framework.
 */

#ifndef MINDFUL_DNN_TENSOR_HH
#define MINDFUL_DNN_TENSOR_HH

#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace mindful::dnn {

/** Tensor shape: a list of dimension extents. */
using Shape = std::vector<std::size_t>;

/** Total element count of a shape. */
std::size_t elementCount(const Shape &shape);

/** Human-readable "AxBxC" rendering of a shape. */
std::string toString(const Shape &shape);

/** Row-major dense float tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Tensor with explicit contents (size must match the shape). */
    Tensor(Shape shape, std::vector<float> data);

    const Shape &shape() const { return _shape; }
    std::size_t rank() const { return _shape.size(); }
    std::size_t size() const { return _data.size(); }
    std::size_t dim(std::size_t i) const;

    float *data() { return _data.data(); }
    const float *data() const { return _data.data(); }
    std::vector<float> &storage() { return _data; }
    const std::vector<float> &storage() const { return _data; }

    float &operator[](std::size_t i) { return _data[i]; }
    float operator[](std::size_t i) const { return _data[i]; }

    /** 2-D accessors (rank must be 2). */
    float &at(std::size_t i, std::size_t j);
    float at(std::size_t i, std::size_t j) const;

    /** 3-D accessors (rank must be 3). */
    float &at(std::size_t c, std::size_t h, std::size_t w);
    float at(std::size_t c, std::size_t h, std::size_t w) const;

    /**
     * Unchecked fast-path accessors for the numerical kernels
     * (src/dnn/gemm.cc): no rank or bounds checks in Release builds,
     * MINDFUL_DEBUG_ASSERT-backed otherwise. Callers must have
     * validated the shape once per call before entering their loops.
     */
    float *
    rowData(std::size_t c, std::size_t h)
    {
        MINDFUL_DEBUG_ASSERT(rank() == 3 && c < _shape[0] &&
                                 h < _shape[1],
                             "rowData index out of range");
        return _data.data() + (c * _shape[1] + h) * _shape[2];
    }

    const float *
    rowData(std::size_t c, std::size_t h) const
    {
        MINDFUL_DEBUG_ASSERT(rank() == 3 && c < _shape[0] &&
                                 h < _shape[1],
                             "rowData index out of range");
        return _data.data() + (c * _shape[1] + h) * _shape[2];
    }

    float
    atFast(std::size_t c, std::size_t h, std::size_t w) const
    {
        MINDFUL_DEBUG_ASSERT(rank() == 3 && c < _shape[0] &&
                                 h < _shape[1] && w < _shape[2],
                             "atFast index out of range");
        return _data[(c * _shape[1] + h) * _shape[2] + w];
    }

    /** Reshape in place; element count must be preserved. */
    void reshape(Shape shape);

    /** Largest |element| (for comparisons in tests). */
    float maxAbs() const;

    /** Max |a_i - b_i| across two same-shaped tensors. */
    float maxAbsDiff(const Tensor &other) const;

    /** Index of the largest element (argmax over the flat buffer). */
    std::size_t argmax() const;

  private:
    Shape _shape;
    std::vector<float> _data;
};

} // namespace mindful::dnn

#endif // MINDFUL_DNN_TENSOR_HH
