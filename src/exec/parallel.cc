#include "exec/parallel.hh"

#include <exception>

#include "base/compiler.hh"
#include "base/logging.hh"
#include "obs/trace.hh"

namespace mindful::exec {

ShardRange
shardRange(std::uint64_t items, std::size_t shards, std::size_t shard)
{
    MINDFUL_ASSERT(shards > 0, "need at least one shard");
    MINDFUL_ASSERT(shard < shards, "shard index out of range");
    const std::uint64_t base = items / shards;
    const std::uint64_t extra = items % shards;
    ShardRange range;
    range.begin = shard * base + std::min<std::uint64_t>(shard, extra);
    range.end = range.begin + base + (shard < extra ? 1 : 0);
    return range;
}

namespace {

void
runShard(const std::function<void(std::size_t)> &body, std::size_t shard,
         const char *label)
{
    MINDFUL_TRACE_SPAN(span, "exec",
                       label ? label : "parallel_for.shard");
    span.arg("shard", static_cast<std::uint64_t>(shard));
    body(shard);
}

} // namespace

void
parallelFor(std::size_t shards,
            const std::function<void(std::size_t)> &body,
            const char *label)
{
    if (shards == 0)
        return;

    ThreadPool &pool = ThreadPool::global();
    // Inline fast path: a single worker could add nothing but queue
    // overhead, and a pool worker running shards inline is what makes
    // nested parallelFor calls deadlock-free. Shard order and spans
    // are identical to the pooled path, so results are too.
    if (shards == 1 || pool.threadCount() <= 1 ||
        ThreadPool::onWorkerThread()) {
        for (std::size_t shard = 0; shard < shards; ++shard)
            runShard(body, shard, label);
        return;
    }

    struct Completion
    {
        Mutex mutex;
        ConditionVariable done;
        std::size_t remaining MINDFUL_GUARDED_BY(mutex) = 0;
        std::vector<std::exception_ptr> errors MINDFUL_GUARDED_BY(mutex);
    };
    Completion completion;
    {
        LockGuard lock(completion.mutex);
        completion.remaining = shards;
        completion.errors.resize(shards);
    }

    for (std::size_t shard = 0; shard < shards; ++shard) {
        pool.submit([&completion, &body, label, shard] {
            std::exception_ptr error;
            try {
                runShard(body, shard, label);
            } catch (...) {
                error = std::current_exception();
            }
            LockGuard lock(completion.mutex);
            if (error)
                completion.errors[shard] = error;
            if (--completion.remaining == 0)
                completion.done.notifyAll();
        });
    }

    {
        LockGuard lock(completion.mutex);
        while (completion.remaining != 0)
            completion.done.wait(completion.mutex);
        // All shards finished; propagate the lowest-indexed failure
        // so the surfaced exception does not depend on scheduling.
        for (auto &error : completion.errors) {
            if (error)
                std::rethrow_exception(error);
        }
    }
}

} // namespace mindful::exec
