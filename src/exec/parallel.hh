/**
 * @file
 * Deterministic data-parallel helpers over the process-wide pool.
 *
 * The central contract (docs/parallelism.md): **results depend only
 * on the shard decomposition, never on the thread count.** Callers
 * pick a fixed shard count (a constant of the algorithm, part of its
 * reproducibility surface, like an RNG seed), each shard computes an
 * independent partial result — with its own Rng::fork(stream) when
 * stochastic — and partial results combine on the calling thread in
 * ascending shard order. Running on 1 thread or 16 therefore produces
 * bit-for-bit identical output; `--threads` is a pure performance
 * knob.
 *
 * Work smaller than a few thousand "inner iterations" per shard is
 * usually not worth shipping to the pool; both helpers run inline
 * (same shard order, same spans) when the pool has a single thread or
 * when already executing on a pool worker (which also makes nested
 * parallelism deadlock-free).
 */

#ifndef MINDFUL_EXEC_PARALLEL_HH
#define MINDFUL_EXEC_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "exec/thread_pool.hh"

namespace mindful::exec {

/**
 * Default shard count for the Monte-Carlo substrates. Deliberately a
 * constant (not a function of the thread count): enough shards to
 * keep 8+ threads balanced, few enough that per-shard overhead stays
 * negligible. Changing it changes which RNG stream simulates which
 * sample — i.e. it is part of the determinism contract.
 */
inline constexpr std::size_t kDefaultShards = 16;

/** Half-open item range [begin, end) owned by one shard. */
struct ShardRange
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    std::uint64_t size() const { return end - begin; }
};

/**
 * Deterministic near-even split of @p items across @p shards: the
 * first (items % shards) shards hold one extra item. Depends only on
 * (items, shards, shard).
 */
ShardRange shardRange(std::uint64_t items, std::size_t shards,
                      std::size_t shard);

/**
 * Run body(shard) for every shard in [0, shards), blocking until all
 * complete. Exceptions are captured per shard and the lowest-indexed
 * one is rethrown on the caller after every shard finished (so which
 * exception propagates is also thread-count independent). Each shard
 * records a trace span named @p label (category "exec") when tracing
 * is enabled.
 */
void parallelFor(std::size_t shards,
                 const std::function<void(std::size_t)> &body,
                 const char *label = nullptr);

/**
 * Map every shard to a partial result, then fold the partials into
 * @p init in ascending shard order on the calling thread:
 *
 *     T acc = init;
 *     for (s = 0..shards) acc = combine(acc, map(s));
 *
 * Only the map step runs on the pool; the combine order is fixed, so
 * even non-associative combines (floating-point sums) reduce
 * identically on any thread count. T must be default-constructible.
 */
template <typename T, typename MapFn, typename CombineFn>
T
parallelReduce(std::size_t shards, T init, MapFn &&map,
               CombineFn &&combine, const char *label = nullptr)
{
    std::vector<T> partials(shards);
    parallelFor(
        shards, [&](std::size_t shard) { partials[shard] = map(shard); },
        label);
    T acc = std::move(init);
    for (std::size_t shard = 0; shard < shards; ++shard)
        acc = combine(std::move(acc), std::move(partials[shard]));
    return acc;
}

} // namespace mindful::exec

#endif // MINDFUL_EXEC_PARALLEL_HH
