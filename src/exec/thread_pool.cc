#include "exec/thread_pool.hh"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "base/compiler.hh"
#include "base/logging.hh"
#include "base/parse.hh"
#include "obs/collector.hh"
#include "obs/handles.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::exec {

namespace {

thread_local bool t_on_worker = false;

/**
 * Global-pool holder. Constructing it first touches the obs
 * singletons so they complete construction earlier and are therefore
 * destroyed *after* the holder — workers can never outlive the
 * metric registry they report into.
 */
struct GlobalPool
{
    GlobalPool()
    {
#ifndef MINDFUL_OBS_DISABLED
        obs::MetricRegistry::global();
        obs::TraceSession::global();
        obs::TraceCollector::global();
        obs::HotMetricTable::global();
#endif
    }

    Mutex mutex;
    std::unique_ptr<ThreadPool> pool MINDFUL_GUARDED_BY(mutex);
    unsigned requested MINDFUL_GUARDED_BY(mutex) = 0; //!< 0 = automatic
};

GlobalPool &
holder()
{
    static GlobalPool global;
    return global;
}

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("MINDFUL_THREADS")) {
        // Strict parse (base/parse.hh): "8abc" and "-1" are invalid
        // rather than 8 threads or a wrapped-around huge count.
        std::optional<unsigned> value = parseThreadCount(env);
        if (value && *value >= 1)
            return *value;
        MINDFUL_WARN_ONCE("ignoring invalid MINDFUL_THREADS=", env,
                          " (want an integer in [1, ", kMaxThreadCount,
                          "])");
    }
    unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? hardware : 1;
}

std::uint64_t
nowMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

ThreadPool::ThreadPool(unsigned threads) : _threadCount(threads)
{
    MINDFUL_ASSERT(threads >= 1, "a pool needs at least one thread");
    MINDFUL_METRIC_GAUGE("exec.pool.threads",
                         static_cast<double>(threads));
#ifndef MINDFUL_OBS_DISABLED
    // Pool width is a run-manifest fact (obs/manifest.hh); obs cannot
    // link against exec, so exec publishes it.
    obs::setManifestThreadCount(threads);
#endif
    _workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lock(_mutex);
        _stopping = true;
    }
    _wake.notifyAll();
    for (auto &worker : _workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    MINDFUL_ASSERT(task != nullptr, "cannot submit an empty task");
    {
        LockGuard lock(_mutex);
        MINDFUL_ASSERT(!_stopping,
                       "cannot submit to a stopping thread pool");
        _queue.push_back(std::move(task));
        ++_tasksSubmitted;
        if (_queue.size() > _queuePeak) {
            _queuePeak = _queue.size();
            MINDFUL_METRIC_GAUGE("exec.pool.queue_depth_peak",
                                 static_cast<double>(_queuePeak));
        }
    }
    MINDFUL_METRIC_COUNT("exec.pool.tasks", 1);
    _wake.notifyOne();
}

std::uint64_t
ThreadPool::tasksSubmitted() const
{
    LockGuard lock(_mutex);
    return _tasksSubmitted;
}

std::size_t
ThreadPool::queueDepthPeak() const
{
    LockGuard lock(_mutex);
    return _queuePeak;
}

std::uint64_t
ThreadPool::busyMicros() const
{
    LockGuard lock(_mutex);
    return _busyMicros;
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_worker;
}

void
ThreadPool::workerLoop(unsigned)
{
    t_on_worker = true;
#ifndef MINDFUL_OBS_DISABLED
    // One-time, up-front allocation of this worker's trace ring, so
    // hot-path spans inside shard bodies never allocate.
    obs::TraceCollector::global().registerCurrentThread();
#endif
    for (;;) {
        std::function<void()> task;
        {
            LockGuard lock(_mutex);
            while (!_stopping && _queue.empty())
                _wake.wait(_mutex);
            // Graceful shutdown: drain every queued task before
            // exiting, so submitted work runs exactly once even
            // mid-teardown.
            if (_queue.empty())
                return;
            task = std::move(_queue.front());
            _queue.pop_front();
        }

        std::uint64_t start = nowMicros();
        task();
        std::uint64_t elapsed = nowMicros() - start;
        MINDFUL_METRIC_COUNT("exec.pool.busy_us", elapsed);

        LockGuard lock(_mutex);
        _busyMicros += elapsed;
    }
}

ThreadPool &
ThreadPool::global()
{
    GlobalPool &global = holder();
    LockGuard lock(global.mutex);
    if (!global.pool) {
        global.pool = std::make_unique<ThreadPool>(
            resolveThreadCount(global.requested));
    }
    return *global.pool;
}

void
ThreadPool::setGlobalThreadCount(unsigned threads)
{
    GlobalPool &global = holder();
    LockGuard lock(global.mutex);
    global.requested = threads;
    unsigned resolved = resolveThreadCount(threads);
    // Restart lazily on the next global() call. Callers must not
    // reconfigure while parallel work is in flight (the pool drains
    // its queue before the workers join, so nothing is lost).
    if (global.pool && global.pool->threadCount() != resolved)
        global.pool.reset();
}

unsigned
ThreadPool::globalThreadCount()
{
    GlobalPool &global = holder();
    LockGuard lock(global.mutex);
    if (global.pool)
        return global.pool->threadCount();
    return resolveThreadCount(global.requested);
}

} // namespace mindful::exec
