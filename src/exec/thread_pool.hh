/**
 * @file
 * Process-wide worker pool for the parallel Monte-Carlo substrates.
 *
 * The pool follows the engineering discipline of the rest of the
 * repository: determinism first. It never decides *what* work runs or
 * in *which* order results combine — that is parallel.hh's job, via a
 * fixed shard count decoupled from the thread count — it only supplies
 * threads to run already-decomposed shards on. Consequences:
 *
 *  - the pool is started lazily, on first use, so binaries that never
 *    go parallel pay nothing;
 *  - the thread count is configuration (--threads, MINDFUL_THREADS,
 *    hardware_concurrency fallback), never part of any result;
 *  - shutdown is graceful: the destructor drains every queued task
 *    before joining, so submitted work always runs exactly once.
 *
 * Pool health is published through mindful_obs as the exec.pool.*
 * metrics (docs/observability.md).
 */

#ifndef MINDFUL_EXEC_THREAD_POOL_HH
#define MINDFUL_EXEC_THREAD_POOL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/compiler.hh"

namespace mindful::exec {

/** Fixed-size worker pool with a single FIFO work queue. */
class ThreadPool
{
  public:
    /** Start @p threads workers (must be >= 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Never blocks; tasks run in FIFO order. */
    void submit(std::function<void()> task);

    unsigned threadCount() const { return _threadCount; }

    /** Tasks submitted over the pool's lifetime. */
    std::uint64_t tasksSubmitted() const;

    /** Largest queue depth observed since construction. */
    std::size_t queueDepthPeak() const;

    /** Total wall-clock time workers spent inside tasks [us]. */
    std::uint64_t busyMicros() const;

    /** True when called from one of this process's pool workers. */
    static bool onWorkerThread();

    /**
     * The process-wide pool, created on first use with the configured
     * thread count (setGlobalThreadCount, else MINDFUL_THREADS, else
     * hardware_concurrency).
     */
    static ThreadPool &global();

    /**
     * Configure the global pool's thread count; 0 restores the
     * automatic default. If the pool is already running with a
     * different count it is drained, shut down, and lazily restarted
     * — safe because shard decomposition never depends on the count.
     */
    static void setGlobalThreadCount(unsigned threads);

    /** Thread count the global pool has (or would start with). */
    static unsigned globalThreadCount();

  private:
    void workerLoop(unsigned worker_index);

    const unsigned _threadCount;
    std::vector<std::thread> _workers;

    mutable Mutex _mutex;
    ConditionVariable _wake;
    std::deque<std::function<void()>> _queue MINDFUL_GUARDED_BY(_mutex);
    bool _stopping MINDFUL_GUARDED_BY(_mutex) = false;

    std::uint64_t _tasksSubmitted MINDFUL_GUARDED_BY(_mutex) = 0;
    std::size_t _queuePeak MINDFUL_GUARDED_BY(_mutex) = 0;
    std::uint64_t _busyMicros MINDFUL_GUARDED_BY(_mutex) = 0;
};

} // namespace mindful::exec

#endif // MINDFUL_EXEC_THREAD_POOL_HH
