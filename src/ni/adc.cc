#include "ni/adc.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mindful::ni {

AdcModel::AdcModel(unsigned bits, double full_scale_uv, Frequency sampling)
    : _bits(bits), _fullScale(full_scale_uv), _sampling(sampling)
{
    MINDFUL_ASSERT(bits >= 1 && bits <= 16,
                   "ADC bitwidth must be in [1, 16], got ", bits);
    MINDFUL_ASSERT(full_scale_uv > 0.0, "ADC full scale must be positive");
    MINDFUL_ASSERT(sampling.inHertz() > 0.0,
                   "ADC sampling frequency must be positive");
}

double
AdcModel::lsbMicrovolts() const
{
    return 2.0 * _fullScale / static_cast<double>(1u << _bits);
}

std::uint32_t
AdcModel::quantize(double microvolts) const
{
    double clamped = std::clamp(microvolts, -_fullScale, _fullScale);
    double normalized = (clamped + _fullScale) / (2.0 * _fullScale);
    auto code = static_cast<std::int64_t>(
        std::floor(normalized * static_cast<double>(1u << _bits)));
    return static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(code, 0, maxCode()));
}

double
AdcModel::dequantize(std::uint32_t code) const
{
    double step = lsbMicrovolts();
    return -_fullScale + (static_cast<double>(code) + 0.5) * step;
}

std::vector<std::uint32_t>
AdcModel::quantize(const std::vector<double> &microvolts) const
{
    std::vector<std::uint32_t> codes;
    codes.reserve(microvolts.size());
    for (double v : microvolts)
        codes.push_back(quantize(v));
    return codes;
}

DataRate
AdcModel::perChannelRate() const
{
    return _sampling * static_cast<double>(_bits);
}

} // namespace mindful::ni
