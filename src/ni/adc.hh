/**
 * @file
 * Analog-to-digital conversion model for neural front-ends.
 *
 * Every channel of a neural interface digitizes its analog signal at
 * sampling frequency f with a sample bitwidth d; those two numbers
 * drive the sensing throughput (Eq. 6) that the rest of the implant
 * must keep up with. This model also performs actual quantization so
 * the end-to-end examples can push realistic integer samples through
 * the pipeline.
 */

#ifndef MINDFUL_NI_ADC_HH
#define MINDFUL_NI_ADC_HH

#include <cstdint>
#include <vector>

#include "base/units.hh"

namespace mindful::ni {

/** Mid-rise uniform quantizer with saturation. */
class AdcModel
{
  public:
    /**
     * @param bits sample bitwidth d (1..16).
     * @param full_scale_uv symmetric input range [-FS, +FS] in uV.
     * @param sampling per-channel sampling frequency f.
     */
    AdcModel(unsigned bits, double full_scale_uv, Frequency sampling);

    unsigned bits() const { return _bits; }
    double fullScaleMicrovolts() const { return _fullScale; }
    Frequency samplingFrequency() const { return _sampling; }

    /** Smallest representable step in uV. */
    double lsbMicrovolts() const;

    /** Largest code value (2^d - 1). */
    std::uint32_t maxCode() const { return (1u << _bits) - 1; }

    /** Quantize one sample (uV) to an unsigned code, saturating. */
    std::uint32_t quantize(double microvolts) const;

    /** Reconstruct the analog value (uV) at a code's bin centre. */
    double dequantize(std::uint32_t code) const;

    /** Quantize a whole buffer. */
    std::vector<std::uint32_t>
    quantize(const std::vector<double> &microvolts) const;

    /**
     * Per-channel digitized output rate d * f — the building block of
     * the sensing throughput in Eq. 6.
     */
    DataRate perChannelRate() const;

  private:
    unsigned _bits;
    double _fullScale;
    Frequency _sampling;
};

} // namespace mindful::ni

#endif // MINDFUL_NI_ADC_HH
