#include "ni/afe.hh"

#include <cmath>
#include <numbers>

#include "base/logging.hh"

namespace mindful::ni {

namespace {

constexpr double kBoltzmann = 1.380649e-23; // [J/K]
constexpr double kElectronCharge = 1.602176634e-19; // [C]

} // namespace

AfeModel::AfeModel(AfeSpec spec) : _spec(spec)
{
    MINDFUL_ASSERT(_spec.nef >= 1.0,
                   "NEF below 1 is unphysical (BJT limit)");
    MINDFUL_ASSERT(_spec.inputNoiseVrms > 0.0,
                   "input noise target must be positive");
    MINDFUL_ASSERT(_spec.bandwidth.inHertz() > 0.0,
                   "bandwidth must be positive");
    MINDFUL_ASSERT(_spec.supplyVoltage > 0.0,
                   "supply voltage must be positive");
    MINDFUL_ASSERT(_spec.temperatureKelvin > 0.0,
                   "temperature must be positive");
}

double
AfeModel::thermalVoltage() const
{
    return kBoltzmann * _spec.temperatureKelvin / kElectronCharge;
}

double
AfeModel::perChannelCurrent() const
{
    double ratio = _spec.nef / _spec.inputNoiseVrms;
    return ratio * ratio * std::numbers::pi * thermalVoltage() * 4.0 *
           kBoltzmann * _spec.temperatureKelvin *
           _spec.bandwidth.inHertz() / 2.0;
}

Power
AfeModel::perChannelPower() const
{
    return Power::watts(perChannelCurrent() * _spec.supplyVoltage);
}

Power
AfeModel::arrayPower(std::uint64_t channels) const
{
    return perChannelPower() * static_cast<double>(channels);
}

double
AfeModel::noiseAtPower(Power per_channel) const
{
    MINDFUL_ASSERT(per_channel.inWatts() > 0.0,
                   "per-channel power must be positive");
    // P = Vdd * (NEF/V)^2 * c  =>  V = NEF * sqrt(c * Vdd / P).
    double c = std::numbers::pi * thermalVoltage() * 4.0 * kBoltzmann *
               _spec.temperatureKelvin * _spec.bandwidth.inHertz() / 2.0;
    return _spec.nef *
           std::sqrt(c * _spec.supplyVoltage / per_channel.inWatts());
}

} // namespace mindful::ni
