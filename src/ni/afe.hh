/**
 * @file
 * Analog front-end (AFE) power model via the noise efficiency factor.
 *
 * The Sec. 4.1 premise — "total power consumption in implantable
 * BCIs scales roughly linearly with the number of channels, assuming
 * constant signal quality as measured by the noise efficiency factor
 * (NEF)" (Simmich et al.) — is a circuit-level statement. This module
 * derives it: for a neural amplifier,
 *
 *     NEF = V_rms,in * sqrt( 2 I_tot / (pi * U_T * 4 k T * BW) )
 *
 * so holding NEF, input-referred noise, and bandwidth constant fixes
 * the per-channel supply current
 *
 *     I_tot = (NEF / V_rms,in)^2 * pi * U_T * 4 k T * BW / 2
 *
 * and array power is exactly linear in the channel count. The model
 * also quantifies the noise/power trade the fractions in the SoC
 * catalog abstract: halving the input noise quadruples AFE power.
 */

#ifndef MINDFUL_NI_AFE_HH
#define MINDFUL_NI_AFE_HH

#include <cstdint>

#include "base/units.hh"

namespace mindful::ni {

/** Amplifier design targets (per channel). */
struct AfeSpec
{
    /** Noise efficiency factor (ideal BJT = 1; good designs 2-5). */
    double nef = 4.0;

    /** Input-referred RMS noise target [V] over the band. */
    double inputNoiseVrms = 5e-6;

    /** Amplifier noise bandwidth. */
    Frequency bandwidth = Frequency::kilohertz(5.0);

    /** Supply voltage [V]. */
    double supplyVoltage = 1.0;

    /** Physical temperature [K]. */
    double temperatureKelvin = 310.0;
};

/** NEF-based per-channel / array power model. */
class AfeModel
{
  public:
    explicit AfeModel(AfeSpec spec = {});

    const AfeSpec &spec() const { return _spec; }

    /** Thermal voltage U_T = kT/q at the spec temperature [V]. */
    double thermalVoltage() const;

    /** Total amplifier supply current per channel [A]. */
    double perChannelCurrent() const;

    /** Per-channel AFE power at the spec supply. */
    Power perChannelPower() const;

    /** Array AFE power: exactly linear in n (the Sec. 4.1 premise). */
    Power arrayPower(std::uint64_t channels) const;

    /**
     * The input noise achievable at a given per-channel power, all
     * else fixed (inverse of the power law: noise ~ 1/sqrt(P)).
     */
    double noiseAtPower(Power per_channel) const;

  private:
    AfeSpec _spec;
};

} // namespace mindful::ni

#endif // MINDFUL_NI_AFE_HH
