#include "ni/neural_interface.hh"

#include <cmath>

#include "base/logging.hh"

namespace mindful::ni {

std::string
toString(SensorType type)
{
    switch (type) {
      case SensorType::Electrode:
        return "Electrodes";
      case SensorType::Spad:
        return "SPAD";
    }
    MINDFUL_PANIC("unknown SensorType");
}

NeuralInterface::NeuralInterface(NeuralInterfaceConfig config)
    : _config(config),
      _adc(config.sampleBits, config.fullScaleMicrovolts,
           config.samplingFrequency)
{
    MINDFUL_ASSERT(config.channels > 0,
                   "a neural interface needs at least one channel");
}

DataRate
NeuralInterface::sensingThroughput() const
{
    return _config.samplingFrequency *
           (static_cast<double>(_config.sampleBits) *
            static_cast<double>(_config.channels));
}

double
NeuralInterface::samplesPerSecond() const
{
    return _config.samplingFrequency.inHertz() *
           static_cast<double>(_config.channels);
}

std::uint64_t
NeuralInterface::bitsPerFrame() const
{
    return static_cast<std::uint64_t>(_config.sampleBits) * _config.channels;
}

Length
NeuralInterface::channelSpacing(Area sensing_area) const
{
    MINDFUL_ASSERT(sensing_area.inSquareMetres() > 0.0,
                   "sensing area must be positive");
    double per_channel = sensing_area.inSquareMicrometres() /
                         static_cast<double>(_config.channels);
    return Length::micrometres(std::sqrt(per_channel));
}

bool
NeuralInterface::meetsDensityGoal(Area sensing_area) const
{
    return channelSpacing(sensing_area) <= Length::micrometres(20.0);
}

NeuralInterface
NeuralInterface::withChannels(std::uint64_t n) const
{
    NeuralInterfaceConfig config = _config;
    config.channels = n;
    return NeuralInterface(config);
}

double
volumetricEfficiency(Area sensing, Area total)
{
    MINDFUL_ASSERT(total.inSquareMetres() > 0.0,
                   "total area must be positive");
    MINDFUL_ASSERT(sensing.inSquareMetres() >= 0.0 && sensing <= total,
                   "sensing area must lie within the total area");
    return sensing / total;
}

} // namespace mindful::ni
