/**
 * @file
 * Neural-interface abstraction (paper Secs. 2.1, 3.1, 4.3).
 *
 * A neural interface (NI) is the sensing subsystem of the implant:
 * n channels, each sampled at frequency f and digitized to d bits.
 * It defines the real-time sensing throughput (Eq. 6)
 *
 *     Tsensing(n) = d * n / Ts = d * n * f
 *
 * that the non-sensing components must keep up with, and the
 * geometric quantities (channel spacing, volumetric efficiency) that
 * the scaling analyses reason about.
 */

#ifndef MINDFUL_NI_NEURAL_INTERFACE_HH
#define MINDFUL_NI_NEURAL_INTERFACE_HH

#include <cstdint>
#include <string>

#include "base/units.hh"
#include "ni/adc.hh"

namespace mindful::ni {

/** Sensor technology of the interface (Table 1 "NI Type"). */
enum class SensorType : std::uint8_t {
    Electrode, //!< microelectrode (MEA / shank / stent / ECoG)
    Spad       //!< single-photon avalanche diode neural imager
};

/** Human-readable name of a sensor type. */
std::string toString(SensorType type);

/** Static description of a neural interface. */
struct NeuralInterfaceConfig
{
    SensorType sensorType = SensorType::Electrode;

    /** Number of parallel recording channels n. */
    std::uint64_t channels = 1024;

    /** Per-channel sampling frequency f. */
    Frequency samplingFrequency = Frequency::kilohertz(8.0);

    /** Digitized sample bitwidth d. */
    unsigned sampleBits = 10;

    /** Full-scale input range of the front-end in uV. */
    double fullScaleMicrovolts = 1000.0;
};

/**
 * A configured neural interface and its derived rate / geometry
 * quantities.
 */
class NeuralInterface
{
  public:
    explicit NeuralInterface(NeuralInterfaceConfig config);

    const NeuralInterfaceConfig &config() const { return _config; }
    std::uint64_t channels() const { return _config.channels; }
    Frequency samplingFrequency() const { return _config.samplingFrequency; }
    unsigned sampleBits() const { return _config.sampleBits; }

    /** The ADC shared by every channel. */
    const AdcModel &adc() const { return _adc; }

    /** Tsensing = d * n * f (Eq. 6). */
    DataRate sensingThroughput() const;

    /** Samples produced per second across all channels. */
    double samplesPerSecond() const;

    /** Raw bits in one full frame (one sample from every channel). */
    std::uint64_t bitsPerFrame() const;

    /**
     * Centre-to-centre channel spacing if @p sensing_area is divided
     * into a uniform grid — the quantity the paper compares against
     * the 20 um one-channel-per-neuron goal.
     */
    Length channelSpacing(Area sensing_area) const;

    /**
     * True if this interface meets the high-density goal of <= 20 um
     * spacing within @p sensing_area (Sec. 3.2).
     */
    bool meetsDensityGoal(Area sensing_area) const;

    /** Copy of this interface with a different channel count. */
    NeuralInterface withChannels(std::uint64_t n) const;

  private:
    NeuralInterfaceConfig _config;
    AdcModel _adc;
};

/**
 * Volumetric efficiency (Sec. 3.2): the fraction of SoC area devoted
 * to sensing. Eq. 4 asks designs to drive this toward 1 as channel
 * count grows.
 */
double volumetricEfficiency(Area sensing, Area total);

} // namespace mindful::ni

#endif // MINDFUL_NI_NEURAL_INTERFACE_HH
