#include "ni/spad_imager.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mindful::ni {

std::uint64_t
SpadRecording::totalCounts(std::uint64_t pixel) const
{
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < frames; ++t)
        total += counts[pixel * frames + t];
    return total;
}

SpadImager::SpadImager(SpadImagerConfig config)
    : _config(config), _rng(config.seed)
{
    MINDFUL_ASSERT(config.pixels > 0, "imager needs at least one pixel");
    MINDFUL_ASSERT(config.frameRate.inHertz() > 0.0,
                   "frame rate must be positive");
    MINDFUL_ASSERT(config.darkCountRateHz >= 0.0,
                   "dark-count rate must be non-negative");
    MINDFUL_ASSERT(config.peakPhotonRateHz > 0.0,
                   "peak photon rate must be positive");
    MINDFUL_ASSERT(config.activeFraction >= 0.0 &&
                       config.activeFraction <= 1.0,
                   "active fraction must lie in [0, 1]");

    auto target = static_cast<std::uint64_t>(std::llround(
        config.activeFraction * static_cast<double>(config.pixels)));
    std::vector<std::uint64_t> order(config.pixels);
    for (std::uint64_t i = 0; i < config.pixels; ++i)
        order[i] = i;
    std::shuffle(order.begin(), order.end(), _rng.engine());
    _activeMask.assign(config.pixels, 0);
    for (std::uint64_t i = 0; i < target; ++i)
        _activeMask[order[i]] = 1;
    _activeCount = target;
}

bool
SpadImager::isActive(std::uint64_t pixel) const
{
    MINDFUL_ASSERT(pixel < _config.pixels, "pixel index out of range");
    return _activeMask[pixel] != 0;
}

double
SpadImager::expectedDarkCounts() const
{
    return _config.darkCountRateHz / _config.frameRate.inHertz();
}

double
SpadImager::expectedActiveCounts(double activity) const
{
    MINDFUL_ASSERT(activity >= 0.0 && activity <= 1.0,
                   "activity must lie in [0, 1]");
    return expectedDarkCounts() +
           activity * _config.peakPhotonRateHz /
               _config.frameRate.inHertz();
}

SpadRecording
SpadImager::generate(std::size_t frames)
{
    MINDFUL_ASSERT(frames > 0, "cannot generate an empty recording");

    SpadRecording rec;
    rec.pixels = _config.pixels;
    rec.frames = frames;
    rec.frameRate = _config.frameRate;
    rec.counts.assign(_config.pixels * frames, 0);
    rec.activity.assign(frames, 0.0);

    // Latent activity: a sigmoid-squashed OU process in [0, 1].
    const double dt = 1.0 / _config.frameRate.inHertz();
    const double decay = std::exp(-dt / _config.activityTimeConstant);
    const double drive = std::sqrt(1.0 - decay * decay);
    double x = 0.0;
    for (std::size_t t = 0; t < frames; ++t) {
        x = decay * x + drive * _rng.gaussian();
        rec.activity[t] = 1.0 / (1.0 + std::exp(-x));
    }

    for (std::uint64_t p = 0; p < _config.pixels; ++p) {
        const bool active = _activeMask[p];
        for (std::size_t t = 0; t < frames; ++t) {
            double mean = active
                              ? expectedActiveCounts(rec.activity[t])
                              : expectedDarkCounts();
            auto draw = _rng.poisson(mean);
            rec.counts[p * frames + t] = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(draw, 0xFFFF));
        }
    }
    return rec;
}

} // namespace mindful::ni
