/**
 * @file
 * SPAD neural-imager frame generator.
 *
 * Two of the Table 1 designs (Gilhotra, Pollmann) sense with
 * single-photon avalanche diodes instead of electrodes: neurons
 * express optical activity indicators and each channel counts
 * photons per frame. The signal statistics differ fundamentally from
 * electrode traces — photon counts are Poisson with an
 * activity-modulated rate on top of a dark-count floor — which
 * matters for any downstream processing study. This generator
 * produces frame stacks with those statistics and a shared latent
 * activity ground truth, mirroring ni::SyntheticCortex for the
 * optical modality.
 */

#ifndef MINDFUL_NI_SPAD_IMAGER_HH
#define MINDFUL_NI_SPAD_IMAGER_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "base/units.hh"

namespace mindful::ni {

/** Imager parameters. */
struct SpadImagerConfig
{
    /** Pixel (channel) count. */
    std::uint64_t pixels = 1024;

    /** Frame rate (the SPAD designs sample at 8 kHz in Table 1). */
    Frequency frameRate = Frequency::kilohertz(8.0);

    /** Dark-count rate per pixel [counts/s]. */
    double darkCountRateHz = 100.0;

    /** Mean signal photon rate of a fully active pixel [counts/s]. */
    double peakPhotonRateHz = 20000.0;

    /** Fraction of pixels over active (indicator-expressing) tissue. */
    double activeFraction = 0.5;

    /** Correlation time of the latent activity [s]. */
    double activityTimeConstant = 0.1;

    std::uint64_t seed = 0x73706164ull;
};

/** A generated frame stack with its ground truth. */
struct SpadRecording
{
    std::uint64_t pixels = 0;
    std::size_t frames = 0;
    Frequency frameRate;

    /** Pixel-major photon counts [pixel * frames + t]. */
    std::vector<std::uint16_t> counts;

    /** Latent activity trace in [0, 1], one value per frame. */
    std::vector<double> activity;

    std::uint16_t
    count(std::uint64_t pixel, std::size_t frame) const
    {
        return counts[pixel * frames + frame];
    }

    /** Total photons on one pixel. */
    std::uint64_t totalCounts(std::uint64_t pixel) const;
};

/** Deterministic optical-modality signal source. */
class SpadImager
{
  public:
    explicit SpadImager(SpadImagerConfig config);

    const SpadImagerConfig &config() const { return _config; }

    /** True if @p pixel sits over active tissue. */
    bool isActive(std::uint64_t pixel) const;

    std::uint64_t activePixels() const { return _activeCount; }

    /** Generate @p frames frames on every pixel. */
    SpadRecording generate(std::size_t frames);

    /** Expected counts per frame for an active pixel at activity a. */
    double expectedActiveCounts(double activity) const;

    /** Expected counts per frame for an inactive (dark) pixel. */
    double expectedDarkCounts() const;

  private:
    SpadImagerConfig _config;
    Rng _rng;
    std::vector<std::uint8_t> _activeMask;
    std::uint64_t _activeCount = 0;
};

} // namespace mindful::ni

#endif // MINDFUL_NI_SPAD_IMAGER_HH
