#include "ni/synthetic_cortex.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "base/logging.hh"
#include "exec/parallel.hh"

namespace mindful::ni {

std::uint64_t
Recording::spikeCount(std::uint64_t channel) const
{
    std::uint64_t count = 0;
    for (std::size_t t = 0; t < steps; ++t)
        count += spikeRaster[channel * steps + t];
    return count;
}

std::vector<std::vector<double>>
Recording::binnedCounts(std::size_t bin_steps) const
{
    MINDFUL_ASSERT(bin_steps > 0, "bin size must be positive");
    std::size_t bins = steps / bin_steps;
    std::vector<std::vector<double>> out(
        channels, std::vector<double>(bins, 0.0));
    for (std::uint64_t ch = 0; ch < channels; ++ch) {
        for (std::size_t b = 0; b < bins; ++b) {
            double count = 0.0;
            for (std::size_t s = 0; s < bin_steps; ++s)
                count += spikeRaster[ch * steps + b * bin_steps + s];
            out[ch][b] = count;
        }
    }
    return out;
}

std::vector<std::vector<double>>
Recording::binnedIntent(std::size_t bin_steps) const
{
    MINDFUL_ASSERT(bin_steps > 0, "bin size must be positive");
    std::size_t bins = steps / bin_steps;
    std::vector<std::vector<double>> out(
        intent.size(), std::vector<double>(bins, 0.0));
    for (std::size_t d = 0; d < intent.size(); ++d) {
        for (std::size_t b = 0; b < bins; ++b) {
            double sum = 0.0;
            for (std::size_t s = 0; s < bin_steps; ++s)
                sum += intent[d][b * bin_steps + s];
            out[d][b] = sum / static_cast<double>(bin_steps);
        }
    }
    return out;
}

SyntheticCortex::SyntheticCortex(SyntheticCortexConfig config)
    : _config(config), _rng(config.seed)
{
    MINDFUL_ASSERT(config.channels > 0, "need at least one channel");
    MINDFUL_ASSERT(config.latentDims > 0, "need at least one latent dim");
    MINDFUL_ASSERT(config.activeFraction >= 0.0 &&
                       config.activeFraction <= 1.0,
                   "activeFraction must lie in [0, 1]");
    MINDFUL_ASSERT(config.maxRateHz >= config.baseRateHz,
                   "maxRateHz must be >= baseRateHz");
    MINDFUL_ASSERT(config.samplingFrequency.inHertz() >= 1000.0,
                   "spike-band recordings need >= 1 kHz sampling");

    // Assign tuned neurons to a deterministic prefix-shuffled subset
    // of channels, with unit-norm random preferred directions.
    auto active_target = static_cast<std::uint64_t>(
        std::llround(config.activeFraction *
                     static_cast<double>(config.channels)));
    std::vector<std::uint64_t> order(config.channels);
    for (std::uint64_t i = 0; i < config.channels; ++i)
        order[i] = i;
    std::shuffle(order.begin(), order.end(), _rng.engine());

    _tuning.resize(config.channels);
    for (std::uint64_t i = 0; i < active_target; ++i) {
        std::vector<double> dir(config.latentDims);
        double norm = 0.0;
        do {
            norm = 0.0;
            for (auto &v : dir) {
                v = _rng.gaussian();
                norm += v * v;
            }
        } while (norm < 1e-12);
        norm = std::sqrt(norm);
        for (auto &v : dir)
            v /= norm;
        _tuning[order[i]] = std::move(dir);
        ++_activeCount;
    }

    // Biphasic spike template: ~1.2 ms, sharp negative trough then a
    // slower positive rebound, scaled to the requested amplitude.
    double fs = config.samplingFrequency.inHertz();
    auto kernel_len = std::max<std::size_t>(
        4, static_cast<std::size_t>(std::llround(1.2e-3 * fs)));
    _spikeKernel.resize(kernel_len);
    double peak = 0.0;
    for (std::size_t s = 0; s < kernel_len; ++s) {
        double t = static_cast<double>(s) / fs;
        double trough = -std::exp(-t / 0.15e-3) * std::sin(
            std::numbers::pi * t / 0.4e-3);
        double rebound = 0.35 * std::exp(-(t - 0.45e-3) * (t - 0.45e-3) /
                                         (2.0 * 0.2e-3 * 0.2e-3));
        _spikeKernel[s] = trough + rebound;
        peak = std::max(peak, std::abs(_spikeKernel[s]));
    }
    for (auto &v : _spikeKernel)
        v *= config.spikeAmplitudeUv / peak;
}

const std::vector<double> &
SyntheticCortex::tuning(std::uint64_t channel) const
{
    MINDFUL_ASSERT(channel < _config.channels, "channel out of range");
    return _tuning[channel];
}

bool
SyntheticCortex::isActive(std::uint64_t channel) const
{
    return !tuning(channel).empty();
}

Recording
SyntheticCortex::generate(std::size_t steps)
{
    MINDFUL_ASSERT(steps > 0, "cannot generate an empty recording");

    const double fs = _config.samplingFrequency.inHertz();
    const double dt = 1.0 / fs;
    const auto channels = _config.channels;

    Recording rec;
    rec.channels = channels;
    rec.steps = steps;
    rec.samplingFrequency = _config.samplingFrequency;
    rec.samples.assign(channels * steps, 0.0);
    rec.spikeRaster.assign(channels * steps, 0);
    rec.intent.assign(_config.latentDims, std::vector<double>(steps, 0.0));

    // --- Latent intent: OU process with unit stationary variance. ---
    const double tau = _config.intentTimeConstant;
    const double decay = std::exp(-dt / tau);
    const double drive = std::sqrt(1.0 - decay * decay);
    std::vector<double> x(_config.latentDims, 0.0);
    for (std::size_t t = 0; t < steps; ++t) {
        for (unsigned d = 0; d < _config.latentDims; ++d) {
            x[d] = decay * x[d] + drive * _rng.gaussian();
            rec.intent[d][t] = x[d];
        }
    }

    // --- Shared LFP: a few low-frequency sinusoids (theta / beta). ---
    std::vector<double> lfp(steps, 0.0);
    {
        const double freqs[] = {6.0, 11.0, 23.0};
        const double gains[] = {1.0, 0.5, 0.25};
        double gain_sum = 0.0;
        for (double g : gains)
            gain_sum += g;
        for (std::size_t c = 0; c < 3; ++c) {
            double phase = _rng.uniform(0.0, 2.0 * std::numbers::pi);
            double w = 2.0 * std::numbers::pi * freqs[c];
            for (std::size_t t = 0; t < steps; ++t) {
                lfp[t] += _config.lfpAmplitudeUv * gains[c] / gain_sum *
                          std::sin(w * static_cast<double>(t) * dt + phase);
            }
        }
    }

    // --- Per-channel spikes + noise. ---
    // Pink-ish noise: OU low-frequency component plus white floor.
    const double noise_tau = 5e-3;
    const double noise_decay = std::exp(-dt / noise_tau);
    const double noise_drive = std::sqrt(1.0 - noise_decay * noise_decay);
    const double ou_share = 0.6;

    // Every channel draws from its own forked stream (never from the
    // shared engine), so the raster is a pure function of (seed, call,
    // channel) and the channels can run as parallel shards: all writes
    // (trace, spikeRaster rows) are channel-disjoint.
    const std::uint64_t call = _generateCalls++;
    exec::parallelFor(
        exec::kDefaultShards,
        [&](std::size_t shard) {
            const auto range =
                exec::shardRange(channels, exec::kDefaultShards, shard);
            for (std::uint64_t ch = range.begin; ch < range.end; ++ch) {
                Rng rng = _rng.fork(call * channels + ch);
                double *trace = rec.samples.data() + ch * steps;
                const bool active = !_tuning[ch].empty();
                double ou = 0.0;
                for (std::size_t t = 0; t < steps; ++t) {
                    // Firing rate from cosine tuning to the intent.
                    double rate = _config.inactiveRateHz;
                    if (active) {
                        double dot = 0.0;
                        for (unsigned d = 0; d < _config.latentDims; ++d)
                            dot += _tuning[ch][d] * rec.intent[d][t];
                        double drive_sig = 1.0 / (1.0 + std::exp(-dot));
                        rate = _config.baseRateHz +
                               (_config.maxRateHz - _config.baseRateHz) *
                                   drive_sig;
                    }
                    if (rng.bernoulli(std::min(1.0, rate * dt))) {
                        rec.spikeRaster[ch * steps + t] = 1;
                        std::size_t len =
                            std::min(_spikeKernel.size(), steps - t);
                        for (std::size_t s = 0; s < len; ++s)
                            trace[t + s] += _spikeKernel[s];
                    }

                    ou = noise_decay * ou + noise_drive * rng.gaussian();
                    double noise = _config.noiseRmsUv *
                                   (ou_share * ou +
                                    (1.0 - ou_share) * rng.gaussian());
                    trace[t] += noise + lfp[t];
                }
            }
        },
        "ni.cortex.channel_shard");
    return rec;
}

} // namespace mindful::ni
