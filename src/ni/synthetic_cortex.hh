/**
 * @file
 * Synthetic cortical recording generator.
 *
 * The paper's analyses depend only on data *rates*, but the
 * end-to-end examples and the decoder / accelerator tests need
 * realistic waveforms. SyntheticCortex produces multi-channel
 * extracellular-style traces with a controllable ground truth:
 *
 *  - a low-dimensional latent "intent" signal (e.g., 2-D cursor
 *    velocity) evolving as an Ornstein-Uhlenbeck process;
 *  - per-channel neurons whose firing rates are cosine-tuned to the
 *    intent (the classic motor-cortex model behind Kalman decoders);
 *  - biphasic spike waveforms, shared low-frequency LFP oscillations,
 *    and pink-ish background noise;
 *  - a configurable fraction of *inactive* channels, which is what
 *    the channel-dropout optimization (Sec. 6.2) exploits.
 *
 * This substitutes for in-vivo data per DESIGN.md Sec. 3 item 5.
 */

#ifndef MINDFUL_NI_SYNTHETIC_CORTEX_HH
#define MINDFUL_NI_SYNTHETIC_CORTEX_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "base/units.hh"

namespace mindful::ni {

/** Generator parameters. */
struct SyntheticCortexConfig
{
    std::uint64_t channels = 64;
    Frequency samplingFrequency = Frequency::kilohertz(8.0);

    /** Dimensionality of the latent intent signal. */
    unsigned latentDims = 2;

    /** Correlation time of the intent process [s]. */
    double intentTimeConstant = 0.4;

    /** Baseline firing rate of tuned neurons [Hz]. */
    double baseRateHz = 5.0;

    /** Peak modulated firing rate [Hz]. */
    double maxRateHz = 60.0;

    /** Firing rate of untuned (inactive) channels [Hz]. */
    double inactiveRateHz = 0.5;

    /** Fraction of channels carrying a tuned neuron, in [0, 1]. */
    double activeFraction = 0.6;

    /** Peak-to-trough spike amplitude [uV]. */
    double spikeAmplitudeUv = 120.0;

    /** RMS of the background noise [uV]. */
    double noiseRmsUv = 8.0;

    /** Amplitude of the shared LFP oscillation [uV]. */
    double lfpAmplitudeUv = 30.0;

    /** RNG seed; equal seeds give identical recordings. */
    std::uint64_t seed = 0x636f7274ull;
};

/** A generated multi-channel recording with its ground truth. */
struct Recording
{
    std::uint64_t channels = 0;
    std::size_t steps = 0;
    Frequency samplingFrequency;

    /** Channel-major sample buffer [channel * steps + t], in uV. */
    std::vector<double> samples;

    /** Channel-major spike raster (spikes initiated at step t). */
    std::vector<std::uint8_t> spikeRaster;

    /** Latent intent trajectory [dim][t]. */
    std::vector<std::vector<double>> intent;

    double
    sample(std::uint64_t channel, std::size_t t) const
    {
        return samples[channel * steps + t];
    }

    bool
    spikeAt(std::uint64_t channel, std::size_t t) const
    {
        return spikeRaster[channel * steps + t] != 0;
    }

    /** Total spikes emitted on @p channel. */
    std::uint64_t spikeCount(std::uint64_t channel) const;

    /**
     * Spike counts per non-overlapping bin of @p bin_steps samples:
     * the feature the Kalman / Wiener decoders consume.
     * @return [channel][bin] counts.
     */
    std::vector<std::vector<double>> binnedCounts(std::size_t bin_steps) const;

    /** Intent averaged over the same bins, [dim][bin]. */
    std::vector<std::vector<double>> binnedIntent(std::size_t bin_steps) const;
};

/** Deterministic synthetic cortical signal source. */
class SyntheticCortex
{
  public:
    explicit SyntheticCortex(SyntheticCortexConfig config);

    const SyntheticCortexConfig &config() const { return _config; }

    /** Preferred-direction (tuning) vector of @p channel; empty if
     *  the channel is untuned. */
    const std::vector<double> &tuning(std::uint64_t channel) const;

    /** True if @p channel carries a tuned neuron. */
    bool isActive(std::uint64_t channel) const;

    /** Number of tuned channels. */
    std::uint64_t activeChannels() const { return _activeCount; }

    /** Generate @p steps samples on every channel. */
    Recording generate(std::size_t steps);

  private:
    SyntheticCortexConfig _config;
    Rng _rng;
    std::vector<std::vector<double>> _tuning; //!< empty => inactive
    std::uint64_t _activeCount = 0;
    std::vector<double> _spikeKernel;         //!< biphasic template, uV
    std::uint64_t _generateCalls = 0; //!< per-call fork stream blocks
};

} // namespace mindful::ni

#endif // MINDFUL_NI_SYNTHETIC_CORTEX_HH
