#include "obs/collector.hh"

#include <chrono>
#include <ostream>

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"

namespace mindful::obs {

namespace detail {

MINDFUL_ATOMIC_ROLE(once_flag)
std::atomic<bool> g_collectorStreaming{false};
MINDFUL_ATOMIC_ROLE(stat_counter)
std::atomic<std::uint64_t> g_unregisteredDrops{0};
thread_local TraceRing *t_traceRing = nullptr;

} // namespace detail

TraceCollector &
TraceCollector::global()
{
    static TraceCollector collector;
    return collector;
}

TraceCollector::~TraceCollector()
{
    // Last-resort teardown (process exit with a live session): stop
    // the drain thread but skip the footer — the sink may already be
    // gone. Orderly shutdown goes through stop().
    if (_drain.joinable()) {
        detail::g_collectorStreaming.store(false,
                                           std::memory_order_release);
        _stopRequested.store(true, std::memory_order_release);
        _drain.join();
    }
}

TraceSite
TraceCollector::site(const std::string &category, const std::string &name)
{
    LockGuard lock(_mutex);
    for (std::size_t i = 0; i < _sites.size(); ++i) {
        if (_sites[i].first == category && _sites[i].second == name)
            return TraceSite{static_cast<std::uint32_t>(i)};
    }
    _sites.emplace_back(category, name);
    return TraceSite{static_cast<std::uint32_t>(_sites.size() - 1)};
}

void
TraceCollector::registerCurrentThread()
{
    if (detail::t_traceRing != nullptr)
        return;
    LockGuard lock(_mutex);
    _rings.push_back(std::make_unique<TraceRing>(
        _ringCapacity, TraceSession::currentThreadId()));
    detail::t_traceRing = _rings.back().get();
}

void
TraceCollector::setRingCapacity(std::size_t slots)
{
    MINDFUL_ASSERT(slots > 0, "ring capacity must be positive");
    LockGuard lock(_mutex);
    _ringCapacity = slots;
}

std::size_t
TraceCollector::ringCount() const
{
    LockGuard lock(_mutex);
    return _rings.size();
}

void
TraceCollector::start(std::ostream *os)
{
    MINDFUL_ASSERT(!streaming() && !_drain.joinable(),
                   "trace collector is already streaming");
    {
        LockGuard lock(_mutex);
        _os = os;
        _firstEvent = true;
        _droppedAtStart = lockedDroppedSum();
        if (_os != nullptr)
            *_os << "{\"traceEvents\": [";
    }
    _emitted.store(0, std::memory_order_relaxed);
    _stopRequested.store(false, std::memory_order_relaxed);
    _paused.store(false, std::memory_order_relaxed);
    detail::g_collectorStreaming.store(true, std::memory_order_release);
    _drain = std::thread([this] { drainLoop(); });
}

CollectorTotals
TraceCollector::stop()
{
    if (!streaming() && !_drain.joinable())
        return {};
    detail::g_collectorStreaming.store(false, std::memory_order_release);
    _stopRequested.store(true, std::memory_order_release);
    if (_drain.joinable())
        _drain.join();
    // Final sweep, pause cleared: producers that recorded before the
    // streaming flag flipped are flushed here.
    _paused.store(false, std::memory_order_relaxed);
    drainOnce();

    CollectorTotals totals;
    totals.emitted = _emitted.load(std::memory_order_relaxed);
    LockGuard lock(_mutex);
    totals.dropped = lockedDroppedSum() - _droppedAtStart;
    if (_os != nullptr) {
        std::ostream &os = *_os;
        os << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
              "{\"manifest\": ";
        RunManifest::current().writeJsonObject(os);
        os << ", \"emitted\": " << totals.emitted
           << ", \"dropped\": " << totals.dropped << "}}\n";
        os.flush();
        _os = nullptr;
    }
    return totals;
}

void
TraceCollector::setDrainPaused(bool paused)
{
    _paused.store(paused, std::memory_order_release);
}

void
TraceCollector::submitCold(TraceEvent event)
{
    LockGuard lock(_mutex);
    _cold.push_back(std::move(event));
}

std::uint64_t
TraceCollector::droppedSinceStart() const
{
    LockGuard lock(_mutex);
    return lockedDroppedSum() - _droppedAtStart;
}

void
TraceCollector::drainLoop()
{
    while (!_stopRequested.load(std::memory_order_acquire)) {
        if (!_paused.load(std::memory_order_acquire))
            drainOnce();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

std::uint64_t
TraceCollector::drainOnce()
{
    LockGuard lock(_mutex);
    std::uint64_t written = 0;
    for (const auto &ring : _rings) {
        PodEvent event;
        MINDFUL_RT_LOOP("collector.drain")
        while (ring->tryPop(event)) {
            emitHotLocked(event, ring->threadId());
            ++written;
        }
    }
    for (const TraceEvent &event : _cold) {
        emitColdLocked(event);
        ++written;
    }
    _cold.clear();
    _emitted.fetch_add(written, std::memory_order_relaxed);
    return written;
}

void
TraceCollector::emitHotLocked(const PodEvent &event,
                              std::uint32_t thread_id)
{
    if (_os == nullptr)
        return; // count-only sink
    std::ostream &os = *_os;
    if (!_firstEvent)
        os << ",";
    _firstEvent = false;
    const auto &site = _sites[event.siteId];
    os << "\n  {\"name\": ";
    writeJsonEscaped(os, site.second);
    os << ", \"cat\": ";
    writeJsonEscaped(os, site.first);
    if (event.kind == PodEvent::kInstant) {
        os << ", \"ph\": \"i\", \"s\": \"t\", \"ts\": ";
        writeTraceMicros(os, event.startNanos);
    } else {
        os << ", \"ph\": \"X\", \"ts\": ";
        writeTraceMicros(os, event.startNanos);
        os << ", \"dur\": ";
        writeTraceMicros(os, event.durationNanos);
    }
    os << ", \"pid\": 1, \"tid\": " << thread_id;
    if (event.hasArg != 0)
        os << ", \"args\": {\"v\": " << event.arg << "}";
    os << "}";
}

void
TraceCollector::emitColdLocked(const TraceEvent &event)
{
    if (_os == nullptr)
        return;
    std::ostream &os = *_os;
    if (!_firstEvent)
        os << ",";
    _firstEvent = false;
    os << "\n  ";
    writeTraceEventJson(os, event);
}

std::uint64_t
TraceCollector::lockedDroppedSum() const
{
    std::uint64_t sum =
        detail::g_unregisteredDrops.load(std::memory_order_relaxed);
    for (const auto &ring : _rings)
        sum += ring->dropped();
    return sum;
}

} // namespace mindful::obs
