/**
 * @file
 * Streaming trace collector: the hot tier of the tracer.
 *
 * The cold tier (obs/trace.hh) buffers string-carrying TraceEvents
 * under a mutex and writes one JSON document at the end — right for
 * call-granularity spans, banned inside parallelFor shard bodies by
 * mindful-analyze. The hot tier splits recording from formatting:
 *
 *  - each participating thread registers ONE TraceRing up front
 *    (registerCurrentThread; the exec thread pool does this for its
 *    workers). Span names are interned to TraceSite ids at setup
 *    time via site();
 *  - a HotSpan records by stamping two clock reads and pushing one
 *    32-byte PodEvent into its thread's ring — no lock, no
 *    allocation, no string. A full ring drops the event and counts
 *    it, so `recorded == emitted + dropped` holds exactly;
 *  - a background drain thread pops every ring and streams Chrome
 *    trace_event JSON incrementally into the sink passed to start(),
 *    so memory stays bounded for hour-long soaks. stop() joins the
 *    drain thread, sweeps the rings once more, appends the run
 *    manifest (obs/manifest.hh) plus emitted/dropped totals to the
 *    file footer, and returns those totals.
 *
 * While the collector is streaming, cold-tier spans recorded into
 * TraceSession::global() are forwarded into the same stream (via
 * submitCold), so one timeline holds both tiers.
 *
 * Contracts: the sink stream must outlive stop(); totals are exact
 * once producers have quiesced (joined, or parallelFor returned)
 * before stop(); HotSpans on threads that never registered record
 * nothing but are counted as drops.
 */

#ifndef MINDFUL_OBS_COLLECTOR_HH
#define MINDFUL_OBS_COLLECTOR_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/compiler.hh"
#include "obs/event.hh"
#include "obs/ring.hh"
#include "obs/trace.hh"

namespace mindful::obs {

namespace detail {

/** True while the global collector streams; every HotSpan gates on
 * one relaxed load of this before touching anything else. */
MINDFUL_ATOMIC_ROLE(once_flag)
extern std::atomic<bool> g_collectorStreaming;

/** HotSpans constructed while streaming on a thread with no ring. */
MINDFUL_ATOMIC_ROLE(stat_counter)
extern std::atomic<std::uint64_t> g_unregisteredDrops;

/** The calling thread's ring; null until registerCurrentThread(). */
extern thread_local TraceRing *t_traceRing;

} // namespace detail

/** Interned (category, name) pair. Resolve once, at setup time. */
struct TraceSite
{
    std::uint32_t id = 0;
};

/** stop() summary; recorded-span conservation: emitted + dropped. */
struct CollectorTotals
{
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
};

/** Default per-thread ring capacity (slots; 32 B each). */
constexpr std::size_t kDefaultRingSlots = 8192;

class TraceCollector
{
  public:
    /** The process-wide collector the hot tier records into. */
    static TraceCollector &global();

    TraceCollector() = default;
    ~TraceCollector();
    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    /**
     * Intern a (category, name) pair. Idempotent; takes a lock —
     * call at setup time, never inside the measured region.
     */
    TraceSite site(const std::string &category, const std::string &name);

    /**
     * Give the calling thread a ring (idempotent). Allocation happens
     * here, once, so recording never does. Rings live for the
     * process; a thread keeps its ring (and its capacity) for life.
     */
    void registerCurrentThread();

    /** Whether the calling thread has a ring. */
    static bool
    currentThreadRegistered()
    {
        return detail::t_traceRing != nullptr;
    }

    /** Ring capacity for FUTURE registrations (rounded to 2^n). */
    void setRingCapacity(std::size_t slots);

    /** Number of registered rings (== registered threads). */
    std::size_t ringCount() const;

    bool
    streaming() const
    {
        return detail::g_collectorStreaming.load(
            std::memory_order_acquire);
    }

    /**
     * Begin streaming into @p os (nullptr = count-only sink, for
     * overhead benchmarks). Writes the trace_event header, resets the
     * session's emitted/dropped baselines, and launches the drain
     * thread. Must not already be streaming.
     */
    void start(std::ostream *os);

    /**
     * Stop streaming: joins the drain thread, performs a final sweep
     * of every ring and the cold queue, writes the JSON footer (run
     * manifest + totals) and returns this session's totals. Safe to
     * call when not streaming (returns zeros).
     */
    CollectorTotals stop();

    /**
     * Suspend the drain thread's sweeps (tests use this to force ring
     * overflow deterministically). stop() clears the pause so the
     * final sweep always runs.
     */
    void setDrainPaused(bool paused);

    /** Forward one cold-tier event into the stream (TraceSession). */
    void submitCold(TraceEvent event);

    /** Events streamed so far this session (approximate while live). */
    std::uint64_t
    emittedCount() const
    {
        return _emitted.load(std::memory_order_relaxed);
    }

    /** Drops so far this session (approximate while live). */
    std::uint64_t droppedSinceStart() const;

  private:
    void drainLoop();
    std::uint64_t drainOnce();
    void emitHotLocked(const PodEvent &event, std::uint32_t thread_id)
        MINDFUL_REQUIRES(_mutex);
    void emitColdLocked(const TraceEvent &event) MINDFUL_REQUIRES(_mutex);
    std::uint64_t lockedDroppedSum() const MINDFUL_REQUIRES(_mutex);

    mutable Mutex _mutex;
    std::vector<std::pair<std::string, std::string>>
        _sites MINDFUL_GUARDED_BY(_mutex);
    std::vector<std::unique_ptr<TraceRing>>
        _rings MINDFUL_GUARDED_BY(_mutex);
    std::vector<TraceEvent> _cold MINDFUL_GUARDED_BY(_mutex);
    std::ostream *_os MINDFUL_GUARDED_BY(_mutex) = nullptr;
    bool _firstEvent MINDFUL_GUARDED_BY(_mutex) = true;
    std::size_t _ringCapacity MINDFUL_GUARDED_BY(_mutex) =
        kDefaultRingSlots;
    std::uint64_t _droppedAtStart MINDFUL_GUARDED_BY(_mutex) = 0;

    // start()/stop() are control-plane calls from one thread; the
    // drain thread itself only reads the atomics below.
    std::thread _drain;
    MINDFUL_ATOMIC_ROLE(once_flag)
    std::atomic<bool> _stopRequested{false};
    MINDFUL_ATOMIC_ROLE(once_flag)
    std::atomic<bool> _paused{false};
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<std::uint64_t> _emitted{0};
};

/**
 * Hot-path RAII span. Construction is two relaxed loads (streaming
 * gate, thread ring) plus one clock read; destruction is a clock read
 * and a lock-free ring push. Inactive — and near-free — when the
 * collector is not streaming or the thread has no ring.
 */
class HotSpan
{
  public:
    explicit HotSpan(TraceSite site)
    {
        if (!detail::g_collectorStreaming.load(
                std::memory_order_relaxed)) {
            return;
        }
        _ring = detail::t_traceRing;
        if (_ring == nullptr) {
            detail::g_unregisteredDrops.fetch_add(
                1, std::memory_order_relaxed);
            return;
        }
        _siteId = site.id;
        _startNanos = traceNowNanos();
    }

    ~HotSpan()
    {
        if (_ring == nullptr)
            return;
        PodEvent event;
        event.startNanos = _startNanos;
        event.durationNanos = traceNowNanos() - _startNanos;
        event.arg = _arg;
        event.siteId = _siteId;
        event.kind = PodEvent::kSpan;
        event.hasArg = _hasArg;
        _ring->tryPush(event);
    }

    HotSpan(const HotSpan &) = delete;
    HotSpan &operator=(const HotSpan &) = delete;

    /** Whether this span will push an event on destruction. */
    bool active() const { return _ring != nullptr; }

    /** Attach the one integer payload ("args": {"v": ...}). */
    HotSpan &
    setArg(std::uint64_t value)
    {
        _arg = value;
        _hasArg = 1;
        return *this;
    }

  private:
    TraceRing *_ring = nullptr;
    std::uint64_t _startNanos = 0;
    std::uint64_t _arg = 0;
    std::uint32_t _siteId = 0;
    std::uint16_t _hasArg = 0;
};

} // namespace mindful::obs

/**
 * Open a named hot-tier span over a pre-resolved TraceSite:
 *   MINDFUL_HOT_SPAN(shard_span, site);
 *   shard_span.setArg(rows);
 * Compiles to a NullSpan under MINDFUL_OBS_DISABLED.
 */
#ifndef MINDFUL_OBS_DISABLED

#define MINDFUL_HOT_SPAN(var, site) ::mindful::obs::HotSpan var((site))

#else

#define MINDFUL_HOT_SPAN(var, site) \
    [[maybe_unused]] ::mindful::obs::NullSpan var

#endif // MINDFUL_OBS_DISABLED

#endif // MINDFUL_OBS_COLLECTOR_HH
