/**
 * @file
 * Fixed-size POD trace event for the lock-free hot-path tier.
 *
 * The cold tier (TraceSession/TraceSpan) carries strings and grows a
 * vector under a mutex — fine at call granularity, banned inside
 * parallelFor shard bodies by mindful-analyze's hot-path check. The
 * hot tier records one PodEvent per span into a per-thread SPSC ring
 * (obs/ring.hh): no allocation, no lock, no string. Names are
 * interned once at setup time into TraceSite ids (obs/collector.hh);
 * the background collector resolves them back while streaming
 * Chrome trace_event JSON.
 */

#ifndef MINDFUL_OBS_EVENT_HH
#define MINDFUL_OBS_EVENT_HH

#include <cstdint>

namespace mindful::obs {

/** One hot-path trace record. Plain data, copied into ring slots. */
struct PodEvent
{
    enum Kind : std::uint16_t {
        kSpan = 0,    //!< complete event ("ph":"X")
        kInstant = 1, //!< zero-duration marker ("ph":"i")
    };

    std::uint64_t startNanos = 0; //!< since the process trace epoch
    std::uint64_t durationNanos = 0;
    std::uint64_t arg = 0; //!< optional integer payload (shard id, rows)
    std::uint32_t siteId = 0;
    std::uint16_t kind = kSpan;
    std::uint16_t hasArg = 0;
};

/**
 * Monotonic nanoseconds since the process trace epoch — the same
 * epoch TraceSession uses, so hot-tier and cold-tier timestamps line
 * up on one timeline. Defined in trace.cc.
 */
std::uint64_t traceNowNanos();

} // namespace mindful::obs

#endif // MINDFUL_OBS_EVENT_HH
