#include "obs/handles.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mindful::obs {

namespace {

/** Sum of a counter's stripes (relaxed; exact once producers rest). */
std::uint64_t
stripesTotal(const CounterCells &cells)
{
    std::uint64_t total = 0;
    for (const HotCell &stripe : cells.stripes)
        total += stripe.value.load(std::memory_order_relaxed);
    return total;
}

double
cellsBinLowerEdge(const HistogramCells &h, std::size_t i)
{
    double frac = static_cast<double>(i) / static_cast<double>(h.bins);
    return h.lo * std::pow(h.hi / h.lo, frac);
}

double
cellsBinUpperEdge(const HistogramCells &h, std::size_t i)
{
    double frac =
        static_cast<double>(i + 1) / static_cast<double>(h.bins);
    return h.lo * std::pow(h.hi / h.lo, frac);
}

/**
 * Nearest-rank percentile over the atomic buckets — the same
 * arithmetic as LogHistogram::percentile (base/stats.cc), so a hot
 * histogram and a HistogramMetric fed identical samples report
 * identical p50/p95/p99.
 */
double
cellsPercentile(const HistogramCells &h, double p)
{
    const std::uint64_t total = h.total.load(std::memory_order_relaxed);
    if (total == 0)
        return 0.0;
    const double minSeen = h.minSeen.load(std::memory_order_relaxed);
    const double maxSeen = h.maxSeen.load(std::memory_order_relaxed);

    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    rank = std::max<std::uint64_t>(rank, 1);

    std::uint64_t cumulative =
        h.underflow.load(std::memory_order_relaxed);
    if (rank <= cumulative)
        return minSeen;
    for (std::size_t i = 0; i < h.bins; ++i) {
        cumulative += h.counts[i].load(std::memory_order_relaxed);
        if (rank <= cumulative) {
            double mid = std::sqrt(cellsBinLowerEdge(h, i) *
                                   cellsBinUpperEdge(h, i));
            return std::clamp(mid, minSeen, maxSeen);
        }
    }
    return maxSeen;
}

} // namespace

std::uint64_t
CounterHandle::total() const
{
    return _cells ? stripesTotal(*_cells) : 0;
}

std::uint64_t
HistogramHandle::count() const
{
    return _cells ? _cells->total.load(std::memory_order_relaxed) : 0;
}

double
HistogramHandle::sum() const
{
    return _cells ? _cells->sum.load(std::memory_order_relaxed) : 0.0;
}

HotMetricTable &
HotMetricTable::global()
{
    static HotMetricTable table;
    return table;
}

CounterHandle
HotMetricTable::counter(const std::string &name)
{
    LockGuard lock(_mutex);
    MINDFUL_ASSERT(_histograms.count(name) == 0,
                   "hot metric '", name, "' already registered with "
                   "a different kind");
    auto &cells = _counters[name];
    if (!cells)
        cells = std::make_unique<CounterCells>();
    return CounterHandle(cells.get());
}

HistogramHandle
HotMetricTable::histogram(const std::string &name, HistogramOptions options)
{
    LockGuard lock(_mutex);
    MINDFUL_ASSERT(_counters.count(name) == 0,
                   "hot metric '", name, "' already registered with "
                   "a different kind");
    auto &cells = _histograms[name];
    if (!cells) {
        MINDFUL_ASSERT(options.lo > 0.0 && options.hi > options.lo &&
                           options.bins > 0,
                       "hot histogram '", name, "' needs 0 < lo < hi "
                       "and at least one bin");
        cells = std::make_unique<HistogramCells>();
        cells->lo = options.lo;
        cells->hi = options.hi;
        cells->logLo = std::log(options.lo);
        cells->invLogRatio =
            static_cast<double>(options.bins) /
            (std::log(options.hi) - std::log(options.lo));
        cells->bins = options.bins;
        cells->counts =
            std::make_unique<std::atomic<std::uint64_t>[]>(options.bins);
        for (std::size_t i = 0; i < options.bins; ++i)
            cells->counts[i].store(0, std::memory_order_relaxed);
    }
    return HistogramHandle(cells.get());
}

std::size_t
HotMetricTable::size() const
{
    LockGuard lock(_mutex);
    return _counters.size() + _histograms.size();
}

std::vector<MetricSample>
HotMetricTable::snapshot() const
{
    // Cells are never deleted, so reading their atomics outside the
    // lock would also be safe; holding it keeps registration ordered
    // with the snapshot. Values are exact once producers have
    // quiesced (e.g. after parallelFor returns).
    LockGuard lock(_mutex);
    std::vector<MetricSample> samples;
    samples.reserve(_counters.size() + _histograms.size());
    for (const auto &[name, cells] : _counters) {
        MetricSample sample;
        sample.name = name;
        sample.type = "counter";
        const std::uint64_t total = stripesTotal(*cells);
        sample.value = static_cast<double>(total);
        sample.count = static_cast<std::size_t>(total);
        samples.push_back(std::move(sample));
    }
    for (const auto &[name, cells] : _histograms) {
        MetricSample sample;
        sample.name = name;
        sample.type = "histogram";
        const std::uint64_t total =
            cells->total.load(std::memory_order_relaxed);
        sample.count = static_cast<std::size_t>(total);
        if (total > 0) {
            sample.value = cells->sum.load(std::memory_order_relaxed) /
                           static_cast<double>(total);
            sample.min = cells->minSeen.load(std::memory_order_relaxed);
            sample.max = cells->maxSeen.load(std::memory_order_relaxed);
        }
        sample.p50 = cellsPercentile(*cells, 50.0);
        sample.p95 = cellsPercentile(*cells, 95.0);
        sample.p99 = cellsPercentile(*cells, 99.0);
        samples.push_back(std::move(sample));
    }
    std::sort(samples.begin(), samples.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return samples;
}

void
HotMetricTable::reset()
{
    LockGuard lock(_mutex);
    for (auto &[name, cells] : _counters) {
        (void)name;
        for (HotCell &stripe : cells->stripes)
            stripe.value.store(0, std::memory_order_relaxed);
    }
    for (auto &[name, cells] : _histograms) {
        (void)name;
        for (std::size_t i = 0; i < cells->bins; ++i)
            cells->counts[i].store(0, std::memory_order_relaxed);
        cells->total.store(0, std::memory_order_relaxed);
        cells->underflow.store(0, std::memory_order_relaxed);
        cells->overflow.store(0, std::memory_order_relaxed);
        cells->sum.store(0.0, std::memory_order_relaxed);
        cells->minSeen.store(std::numeric_limits<double>::infinity(),
                             std::memory_order_relaxed);
        cells->maxSeen.store(-std::numeric_limits<double>::infinity(),
                             std::memory_order_relaxed);
    }
}

} // namespace mindful::obs
