/**
 * @file
 * Handle-based metric cells: the lock-free record tier of the metric
 * system.
 *
 * The MetricRegistry (obs/metrics.hh) is the setup/export tier: name
 * lookup under a mutex, histograms behind a short critical section.
 * mindful-analyze's hot-path check rightly bans that record path from
 * parallelFor shard bodies. This header is the hot tier: a handle is
 * resolved ONCE at setup time (HotMetricTable::counter/histogram,
 * which does lock) and records through a raw pointer forever after —
 *
 *   CounterHandle::bump      one relaxed fetch_add into the calling
 *                            thread's stripe (no lookup, no lock);
 *   HistogramHandle::observe log-bucket index arithmetic plus relaxed
 *                            atomic adds (CAS loops for min/max/sum).
 *
 * Both record bodies live inline in this header, inside the analyzer's
 * scan root, so the purity checker *verifies* them rather than taking
 * them on faith — instrumented shard roots need no `hot-ok` hatch.
 *
 * The global MetricRegistry folds HotMetricTable::global() into its
 * snapshots, so CSV/JSON export is unchanged for consumers. Counter
 * totals are exact and order-independent (integer adds commute);
 * histogram bucket counts, count, min and max likewise. Only a
 * histogram's mean is accumulated in floating point and may differ in
 * the last ulp across thread interleavings — keep determinism-contract
 * metrics on counters (docs/observability.md).
 */

#ifndef MINDFUL_OBS_HANDLES_HH
#define MINDFUL_OBS_HANDLES_HH

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/compiler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::obs {

/** Stripe count for counters; power of two, ~one per active core. */
constexpr std::size_t kMetricStripes = 8;

/** Map the calling thread onto one of kMetricStripes cells. */
inline std::size_t
hotStripeIndex()
{
    return TraceSession::currentThreadId() & (kMetricStripes - 1);
}

/** One cache line per stripe: concurrent bumps never false-share. */
struct alignas(64) HotCell
{
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<std::uint64_t> value{0};
};

/** Storage behind a CounterHandle; owned by the HotMetricTable. */
struct CounterCells
{
    HotCell stripes[kMetricStripes];
};

/**
 * Storage behind a HistogramHandle: an atomic mirror of LogHistogram's
 * bucket layout (base/stats.hh) so exported percentiles match the
 * locked HistogramMetric bit for bit on the same samples.
 */
struct HistogramCells
{
    double lo = 0.0;
    double hi = 0.0;
    double logLo = 0.0;
    double invLogRatio = 0.0;
    std::size_t bins = 0;
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<std::uint64_t> total{0};
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<std::uint64_t> underflow{0};
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<std::uint64_t> overflow{0};
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<double> sum{0.0};
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<double> minSeen{std::numeric_limits<double>::infinity()};
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<double> maxSeen{-std::numeric_limits<double>::infinity()};
};

/** Relaxed CAS add; std::atomic<double> has no portable fetch_add. */
inline void
atomicAddDouble(MINDFUL_ATOMIC_ROLE(stat_counter)
                std::atomic<double> &cell, double delta)
{
    double seen = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(seen, seen + delta,
                                       std::memory_order_relaxed)) {
    }
}

inline void
atomicMinDouble(MINDFUL_ATOMIC_ROLE(stat_counter)
                std::atomic<double> &cell, double candidate)
{
    double seen = cell.load(std::memory_order_relaxed);
    while (candidate < seen &&
           !cell.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
}

inline void
atomicMaxDouble(MINDFUL_ATOMIC_ROLE(stat_counter)
                std::atomic<double> &cell, double candidate)
{
    double seen = cell.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !cell.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
}

/**
 * Pre-resolved counter. Copyable; default-constructed handles record
 * nothing. Honors the global registry's runtime gate, like the
 * MINDFUL_METRIC_* macros.
 */
class CounterHandle
{
  public:
    CounterHandle() = default;

    bool valid() const { return _cells != nullptr; }

    /** Hot-path record: one relaxed add into this thread's stripe. */
    void
    bump(std::uint64_t n = 1) const
    {
        if (_cells == nullptr || !MetricRegistry::global().enabled())
            return;
        _cells->stripes[hotStripeIndex()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Exact total across stripes (export/test side, not hot). */
    std::uint64_t total() const;

  private:
    friend class HotMetricTable;
    explicit CounterHandle(CounterCells *cells) : _cells(cells) {}

    CounterCells *_cells = nullptr;
};

/** Pre-resolved histogram; same gate semantics as CounterHandle. */
class HistogramHandle
{
  public:
    HistogramHandle() = default;

    bool valid() const { return _cells != nullptr; }

    /** Hot-path record: bucket arithmetic + relaxed atomic adds. */
    void
    observe(double value) const
    {
        if (_cells == nullptr || !MetricRegistry::global().enabled())
            return;
        HistogramCells &h = *_cells;
        h.total.fetch_add(1, std::memory_order_relaxed);
        atomicMinDouble(h.minSeen, value);
        atomicMaxDouble(h.maxSeen, value);
        atomicAddDouble(h.sum, value);
        if (value < h.lo) {
            h.underflow.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Same exclusive right edge as LogHistogram::add.
        if (value >= h.hi) {
            h.overflow.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        auto idx = static_cast<std::size_t>(
            (std::log(value) - h.logLo) * h.invLogRatio);
        if (idx >= h.bins) {
            h.overflow.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        h.counts[idx].fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t count() const;
    double sum() const;

  private:
    friend class HotMetricTable;
    explicit HistogramHandle(HistogramCells *cells) : _cells(cells) {}

    HistogramCells *_cells = nullptr;
};

/**
 * Process-wide table of hot metric cells. Registration (by name,
 * idempotent, kind-checked) and snapshots lock; recording through
 * the returned handles never does. Cells live for the process — a
 * handle can never dangle.
 */
class HotMetricTable
{
  public:
    static HotMetricTable &global();

    HotMetricTable() = default;
    HotMetricTable(const HotMetricTable &) = delete;
    HotMetricTable &operator=(const HotMetricTable &) = delete;

    /** Resolve (registering on first use) a counter handle. */
    CounterHandle counter(const std::string &name);

    /** Resolve (registering on first use) a histogram handle. */
    HistogramHandle histogram(const std::string &name,
                              HistogramOptions options = {});

    /** Number of registered hot metrics (all kinds). */
    std::size_t size() const;

    /**
     * Rows in MetricSample form, name-sorted — the global registry
     * appends these to its own snapshot so exports see one merged,
     * format-identical table.
     */
    std::vector<MetricSample> snapshot() const;

    /** Zero every cell; handles stay valid (MetricRegistry::clear). */
    void reset();

  private:
    mutable Mutex _mutex;
    std::map<std::string, std::unique_ptr<CounterCells>>
        _counters MINDFUL_GUARDED_BY(_mutex);
    std::map<std::string, std::unique_ptr<HistogramCells>>
        _histograms MINDFUL_GUARDED_BY(_mutex);
};

} // namespace mindful::obs

/**
 * Hot-path record macros over pre-resolved handles. They vanish under
 * MINDFUL_OBS_DISABLED (arguments unevaluated). Code that prefers the
 * analyzer to certify its record sites calls .bump()/.observe()
 * directly instead — see docs/observability.md.
 */
#ifndef MINDFUL_OBS_DISABLED

#define MINDFUL_HOT_COUNT(handle, n) (handle).bump((n))
#define MINDFUL_HOT_RECORD(handle, v) (handle).observe((v))

#else

#define MINDFUL_HOT_COUNT(handle, n) \
    do { \
    } while (0)
#define MINDFUL_HOT_RECORD(handle, v) \
    do { \
    } while (0)

#endif // MINDFUL_OBS_DISABLED

#endif // MINDFUL_OBS_HANDLES_HH
