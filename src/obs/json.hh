/**
 * @file
 * Shared JSON string escaping for every obs exporter.
 *
 * The trace_event writer, the metric-registry JSON snapshot, the
 * streaming collector, and the run manifest all emit user-supplied
 * strings (span names, metric names, build flags). RFC 8259 requires
 * quotes, backslashes, and control characters to be escaped; a single
 * helper keeps the four writers from drifting apart (they used to
 * carry private copies).
 */

#ifndef MINDFUL_OBS_JSON_HH
#define MINDFUL_OBS_JSON_HH

#include <ostream>
#include <string_view>

namespace mindful::obs {

/** Write @p s as a quoted JSON string with all required escapes. */
inline void
writeJsonEscaped(std::ostream &os, std::string_view s)
{
    constexpr const char *hex = "0123456789abcdef";
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const auto u = static_cast<unsigned char>(c);
                os << "\\u00" << hex[(u >> 4) & 0xf] << hex[u & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace mindful::obs

#endif // MINDFUL_OBS_JSON_HH
