#include "obs/manifest.hh"

#include <atomic>
#include <ostream>

#include "base/compiler.hh"
#include "base/cpu.hh"
#include "obs/json.hh"

// Configure-time provenance (src/obs/CMakeLists.txt). The fallbacks
// keep non-CMake builds (and the analyzer's in-memory fixtures)
// compiling.
#ifndef MINDFUL_GIT_SHA
#define MINDFUL_GIT_SHA "unknown"
#endif
#ifndef MINDFUL_BUILD_TYPE
#define MINDFUL_BUILD_TYPE "unknown"
#endif

namespace mindful::obs {

namespace {

MINDFUL_ATOMIC_ROLE(once_flag)
std::atomic<std::uint64_t> g_configHash{0};
MINDFUL_ATOMIC_ROLE(once_flag)
std::atomic<unsigned> g_threadCount{0};

std::string
compilerString()
{
#if defined(__clang__)
    return "clang " __clang_version__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

} // namespace

RunManifest
RunManifest::current()
{
    RunManifest manifest;
    manifest.gitSha = MINDFUL_GIT_SHA;
    manifest.buildType = MINDFUL_BUILD_TYPE;
    manifest.compiler = compilerString();
    // The dispatch decision is provenance: two runs of the same binary
    // can execute different kernels (MINDFUL_SIMD, different hosts).
    manifest.simdIsa = simdIsaName(activeSimdIsa());
    manifest.threads = g_threadCount.load(std::memory_order_relaxed);
    manifest.configHash = g_configHash.load(std::memory_order_relaxed);
    return manifest;
}

void
RunManifest::writeJsonObject(std::ostream &os) const
{
    os << "{\"git_sha\": ";
    writeJsonEscaped(os, gitSha);
    os << ", \"build_type\": ";
    writeJsonEscaped(os, buildType);
    os << ", \"compiler\": ";
    writeJsonEscaped(os, compiler);
    os << ", \"simd_isa\": ";
    writeJsonEscaped(os, simdIsa);
    os << ", \"threads\": " << threads;
    // Hex, so the hash survives JSON readers that coerce numbers to
    // 53-bit doubles.
    constexpr const char *hex = "0123456789abcdef";
    os << ", \"config_hash\": \"0x";
    for (int shift = 60; shift >= 0; shift -= 4)
        os << hex[(configHash >> shift) & 0xf];
    os << "\"}";
}

std::uint64_t
hashCommandLine(int argc, char **argv)
{
    std::uint64_t hash = 1469598103934665603ull; // FNV offset basis
    constexpr std::uint64_t kPrime = 1099511628211ull;
    for (int i = 0; i < argc; ++i) {
        for (const char *c = argv[i]; *c != '\0'; ++c) {
            hash ^= static_cast<unsigned char>(*c);
            hash *= kPrime;
        }
        hash ^= 0u; // NUL separator
        hash *= kPrime;
    }
    return hash;
}

void
setManifestConfigHash(std::uint64_t hash)
{
    g_configHash.store(hash, std::memory_order_relaxed);
}

void
setManifestThreadCount(unsigned threads)
{
    g_threadCount.store(threads, std::memory_order_relaxed);
}

} // namespace mindful::obs
