/**
 * @file
 * Run manifest: the provenance block stamped into every trace and
 * metrics export.
 *
 * A perf trajectory (BENCH_kernels.json, BENCH_obs.json) or an
 * hour-long soak trace is only evidence if it says *what ran*: the
 * git revision, the build configuration, the compiler, the thread
 * count, and a hash of the command line that produced it. The
 * manifest collects exactly that and the exporters embed it as a
 * JSON object (`"otherData"` in trace_event files, `"_manifest"` in
 * metric snapshots, `"manifest"` in bench JSON artifacts).
 *
 * The git SHA and build type are baked in at configure time
 * (src/obs/CMakeLists.txt); the thread count and config hash are
 * runtime facts published by the thread pool and bench_util.
 */

#ifndef MINDFUL_OBS_MANIFEST_HH
#define MINDFUL_OBS_MANIFEST_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mindful::obs {

struct RunManifest
{
    std::string gitSha;    //!< `git rev-parse --short HEAD` at configure
    std::string buildType; //!< CMAKE_BUILD_TYPE
    std::string compiler;  //!< compiler id/version seen at compile time
    std::string simdIsa;   //!< dispatched GEMM tier (base/cpu.hh)
    unsigned threads = 0;  //!< global pool width (0 = pool never sized)
    std::uint64_t configHash = 0; //!< FNV-1a of the full command line

    /** Assemble the manifest for this process, as of now. */
    static RunManifest current();

    /** Emit as a JSON object (`{"git_sha": ..., ...}`), escaped. */
    void writeJsonObject(std::ostream &os) const;
};

/**
 * FNV-1a over the argv vector (NUL-separated), the canonical config
 * hash: two runs with the same binary and flags hash identically.
 */
std::uint64_t hashCommandLine(int argc, char **argv);

/** Publish the config hash for RunManifest::current() (bench_util). */
void setManifestConfigHash(std::uint64_t hash);

/**
 * Publish the pool width for RunManifest::current(). Called by the
 * exec thread pool on (re)construction; obs cannot link against exec.
 */
void setManifestThreadCount(unsigned threads);

} // namespace mindful::obs

#endif // MINDFUL_OBS_MANIFEST_HH
