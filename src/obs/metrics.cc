#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <ostream>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "obs/handles.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"

namespace mindful::obs {

HistogramMetric::HistogramMetric(HistogramOptions options)
    : _histogram(options.lo, options.hi, options.bins)
{
}

void
HistogramMetric::record(double value)
{
    LockGuard lock(_mutex);
    _histogram.add(value);
    _stats.add(value);
}

void
HistogramMetric::merge(const HistogramMetric &other)
{
    if (this == &other) {
        // Self-merge doubles the distribution (the counterpart of a
        // counter adding its own value). Merge from copies so the
        // fold never reads the container it is writing.
        LockGuard lock(_mutex);
        LogHistogram histogram_copy = _histogram;
        RunningStats stats_copy = _stats;
        _histogram.merge(histogram_copy);
        _stats.merge(stats_copy);
        return;
    }
    // Lock ordering: by address, to keep A.merge(B) and B.merge(A)
    // running concurrently from deadlocking. Spelled as two branches
    // so the thread-safety analysis can see both capabilities held.
    if (this < &other) {
        LockGuard lock_a(_mutex);
        LockGuard lock_b(other._mutex);
        mergeLocked(other);
    } else {
        LockGuard lock_b(other._mutex);
        LockGuard lock_a(_mutex);
        mergeLocked(other);
    }
}

void
HistogramMetric::mergeLocked(const HistogramMetric &other)
{
    _histogram.merge(other._histogram);
    _stats.merge(other._stats);
}

std::size_t
HistogramMetric::count() const
{
    LockGuard lock(_mutex);
    return _stats.count();
}

double
HistogramMetric::mean() const
{
    LockGuard lock(_mutex);
    return _stats.mean();
}

double
HistogramMetric::min() const
{
    LockGuard lock(_mutex);
    return _stats.count() ? _stats.min() : 0.0;
}

double
HistogramMetric::max() const
{
    LockGuard lock(_mutex);
    return _stats.count() ? _stats.max() : 0.0;
}

double
HistogramMetric::sum() const
{
    LockGuard lock(_mutex);
    return _stats.sum();
}

double
HistogramMetric::percentile(double p) const
{
    LockGuard lock(_mutex);
    return _histogram.percentile(p);
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry registry;
    return registry;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    LockGuard lock(_mutex);
    Entry &entry = _entries[name];
    MINDFUL_ASSERT(!entry.gauge && !entry.histogram,
                   "metric '", name, "' already registered with "
                   "a different kind");
    if (!entry.counter)
        entry.counter = std::make_unique<Counter>();
    return *entry.counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    LockGuard lock(_mutex);
    Entry &entry = _entries[name];
    MINDFUL_ASSERT(!entry.counter && !entry.histogram,
                   "metric '", name, "' already registered with "
                   "a different kind");
    if (!entry.gauge)
        entry.gauge = std::make_unique<Gauge>();
    return *entry.gauge;
}

HistogramMetric &
MetricRegistry::histogram(const std::string &name, HistogramOptions options)
{
    LockGuard lock(_mutex);
    Entry &entry = _entries[name];
    MINDFUL_ASSERT(!entry.counter && !entry.gauge,
                   "metric '", name, "' already registered with "
                   "a different kind");
    if (!entry.histogram)
        entry.histogram = std::make_unique<HistogramMetric>(options);
    return *entry.histogram;
}

bool
MetricRegistry::contains(const std::string &name) const
{
    LockGuard lock(_mutex);
    return _entries.count(name) > 0;
}

std::size_t
MetricRegistry::size() const
{
    LockGuard lock(_mutex);
    return _entries.size();
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    // Snapshot the other side's entry pointers under its lock, then
    // fold them in via the public accessors (which take our lock per
    // metric). The pointed-to metrics are never deleted while the
    // other registry is alive, so the pointers stay valid.
    struct Ref
    {
        std::string name;
        const Counter *counter = nullptr;
        const Gauge *gauge = nullptr;
        const HistogramMetric *histogram = nullptr;
    };
    std::vector<Ref> refs;
    {
        LockGuard lock(other._mutex);
        refs.reserve(other._entries.size());
        for (const auto &[name, entry] : other._entries) {
            refs.push_back({name, entry.counter.get(), entry.gauge.get(),
                            entry.histogram.get()});
        }
    }
    for (const auto &ref : refs) {
        if (ref.counter)
            counter(ref.name).add(ref.counter->value());
        if (ref.gauge && ref.gauge->isSet())
            gauge(ref.name).set(ref.gauge->value());
        if (ref.histogram)
            histogram(ref.name).merge(*ref.histogram);
    }
}

void
MetricRegistry::clear()
{
    {
        LockGuard lock(_mutex);
        _entries.clear();
    }
    // The global registry fronts the hot cells too; clearing it
    // zeroes them (handles stay valid — cells are never deleted).
    if (this == &global())
        HotMetricTable::global().reset();
}

std::vector<MetricSample>
MetricRegistry::snapshot() const
{
    // Collect entry pointers under the lock, then read each metric
    // through its own synchronization (std::map iteration order is
    // already name-sorted).
    struct Ref
    {
        std::string name;
        const Counter *counter = nullptr;
        const Gauge *gauge = nullptr;
        const HistogramMetric *histogram = nullptr;
    };
    std::vector<Ref> refs;
    {
        LockGuard lock(_mutex);
        refs.reserve(_entries.size());
        for (const auto &[name, entry] : _entries) {
            refs.push_back({name, entry.counter.get(), entry.gauge.get(),
                            entry.histogram.get()});
        }
    }

    std::vector<MetricSample> samples;
    samples.reserve(refs.size());
    for (const auto &ref : refs) {
        MetricSample sample;
        sample.name = ref.name;
        if (ref.counter) {
            sample.type = "counter";
            sample.value = static_cast<double>(ref.counter->value());
            sample.count = static_cast<std::size_t>(ref.counter->value());
        } else if (ref.gauge) {
            sample.type = "gauge";
            sample.value = ref.gauge->value();
            sample.count = ref.gauge->isSet() ? 1 : 0;
        } else if (ref.histogram) {
            sample.type = "histogram";
            sample.value = ref.histogram->mean();
            sample.count = ref.histogram->count();
            sample.min = ref.histogram->min();
            sample.max = ref.histogram->max();
            sample.p50 = ref.histogram->percentile(50.0);
            sample.p95 = ref.histogram->percentile(95.0);
            sample.p99 = ref.histogram->percentile(99.0);
        }
        samples.push_back(std::move(sample));
    }

    // The global registry is the one reporting path: fold the
    // lock-free hot cells (obs/handles.hh) into its snapshot so CSV /
    // JSON exports see one merged, name-sorted table.
    if (this == &global()) {
        std::vector<MetricSample> hot = HotMetricTable::global().snapshot();
        if (!hot.empty()) {
            samples.insert(samples.end(),
                           std::make_move_iterator(hot.begin()),
                           std::make_move_iterator(hot.end()));
            std::sort(samples.begin(), samples.end(),
                      [](const MetricSample &a, const MetricSample &b) {
                          return a.name < b.name;
                      });
        }
    }
    return samples;
}

Table
MetricRegistry::snapshotTable() const
{
    Table table("metrics");
    table.setHeader({"name", "type", "count", "value", "min", "p50",
                     "p95", "p99", "max"});
    for (const auto &s : snapshot()) {
        table.addRow({
            s.name,
            s.type,
            std::to_string(s.count),
            Table::formatNumber(s.value, 6),
            Table::formatNumber(s.min, 6),
            Table::formatNumber(s.p50, 6),
            Table::formatNumber(s.p95, 6),
            Table::formatNumber(s.p99, 6),
            Table::formatNumber(s.max, 6),
        });
    }
    return table;
}

namespace {

void
writeJsonNumber(std::ostream &os, double v)
{
    // JSON has no Infinity/NaN literals; clamp to null.
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(15);
    tmp << v;
    os << tmp.str();
}

} // namespace

void
MetricRegistry::writeJson(std::ostream &os) const
{
    os << "{";
    // Provenance block first; the leading underscore keeps it clear
    // of the metric namespace (names start with a subsystem letter).
    os << "\n  \"_manifest\": ";
    RunManifest::current().writeJsonObject(os);
    for (const auto &s : snapshot()) {
        os << ",";
        os << "\n  ";
        writeJsonEscaped(os, s.name);
        os << ": {\"type\": ";
        writeJsonEscaped(os, s.type);
        os << ", \"count\": " << s.count << ", \"value\": ";
        writeJsonNumber(os, s.value);
        if (s.type == "histogram") {
            os << ", \"min\": ";
            writeJsonNumber(os, s.min);
            os << ", \"p50\": ";
            writeJsonNumber(os, s.p50);
            os << ", \"p95\": ";
            writeJsonNumber(os, s.p95);
            os << ", \"p99\": ";
            writeJsonNumber(os, s.p99);
            os << ", \"max\": ";
            writeJsonNumber(os, s.max);
        }
        os << "}";
    }
    os << "\n}\n";
}

} // namespace mindful::obs
