/**
 * @file
 * Process-wide metric registry: named counters, gauges, and
 * distribution (histogram) metrics.
 *
 * The registry is the single reporting path for everything the
 * executable substrates measure — Monte-Carlo sample counts, simulated
 * cycles and energy, closed-loop latency decompositions. Hot paths
 * hold a `Counter &` / `HistogramMetric &` obtained once (name lookup
 * is a locked map access, recording is an atomic add or a short
 * critical section) and typically accumulate in a local variable
 * inside the loop, publishing once per call.
 *
 * Parallel reductions mirror `RunningStats::merge`: give each worker
 * its own `MetricRegistry`, then `merge()` them into the global one.
 *
 * Metric names are dot-separated paths, lowercase with underscores,
 * `<subsystem>.<component>.<quantity>[_<unit>]` — e.g.
 * `comm.qam.bit_errors`, `accel.layer.energy_pj`,
 * `core.closed_loop.loop_latency_us`. See docs/observability.md.
 *
 * Define `MINDFUL_OBS_DISABLED` to compile the convenience macros at
 * the bottom of this header to no-ops; the classes themselves remain
 * available (they are cheap and deterministic).
 */

#ifndef MINDFUL_OBS_METRICS_HH
#define MINDFUL_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/compiler.hh"
#include "base/stats.hh"
#include "base/table.hh"

namespace mindful::obs {

/** Monotonically increasing event count. Lock-free to record. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<std::uint64_t> _value{0};
};

/** Last-written instantaneous value (utilization, overhead, ...). */
class Gauge
{
  public:
    void
    set(double v)
    {
        _value.store(v, std::memory_order_relaxed);
        // Release pairs with isSet()'s acquire: a reader that observes
        // the flag also observes the value stored above.
        _set.store(true, std::memory_order_release);
    }

    double
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    /** Whether set() has ever been called (merge keeps set values). */
    bool
    isSet() const
    {
        return _set.load(std::memory_order_acquire);
    }

  private:
    MINDFUL_ATOMIC_ROLE(stat_counter)
    std::atomic<double> _value{0.0};
    MINDFUL_ATOMIC_ROLE(once_flag)
    std::atomic<bool> _set{false};
};

/** Bucket layout for a HistogramMetric. */
struct HistogramOptions
{
    /** Lower edge of the first log-spaced bucket (must be > 0). */
    double lo = 1e-3;

    /** Upper edge of the last bucket. */
    double hi = 1e9;

    /** Bucket count across [lo, hi). */
    std::size_t bins = 120;
};

/**
 * Distribution metric: a log-spaced histogram (for percentiles) plus
 * a RunningStats (for exact mean/min/max/count). Recording takes a
 * short mutex; hot loops should record per-call aggregates, not
 * per-sample values.
 */
class HistogramMetric
{
  public:
    explicit HistogramMetric(HistogramOptions options = {});

    void record(double value);

    void merge(const HistogramMetric &other);

    std::size_t count() const;
    double mean() const;
    double min() const;
    double max() const;
    double sum() const;

    /** Percentile estimate, p in [0, 100]; see LogHistogram. */
    double percentile(double p) const;

  private:
    /** Fold @p other in; both sides' locks must already be held. */
    void mergeLocked(const HistogramMetric &other)
        MINDFUL_REQUIRES(_mutex, other._mutex);

    mutable Mutex _mutex;
    LogHistogram _histogram MINDFUL_GUARDED_BY(_mutex);
    RunningStats _stats MINDFUL_GUARDED_BY(_mutex);
};

/** One row of MetricRegistry::snapshotTable(), for programmatic use. */
struct MetricSample
{
    std::string name;
    std::string type; //!< "counter", "gauge", or "histogram"
    double value = 0.0; //!< counter/gauge value; histogram mean
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Named collection of metrics. Lookup creates on first use; returned
 * references stay valid for the registry's lifetime. A metric name
 * may only ever be used with one metric kind.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** The process-wide registry the instrumented substrates use. */
    static MetricRegistry &global();

    /**
     * Runtime recording gate, on by default. The MINDFUL_METRIC_*
     * macros record nothing while disabled, and instrumented code
     * must also skip any *preparation* of a recording — metric-name
     * formatting, per-call aggregation buffers — behind enabled(),
     * so a disabled registry costs one relaxed atomic load per site.
     */
    void
    setEnabled(bool enabled)
    {
        _enabled.store(enabled, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    HistogramMetric &histogram(const std::string &name,
                               HistogramOptions options = {});

    /** Whether a metric of any kind exists under @p name. */
    bool contains(const std::string &name) const;

    /** Number of registered metrics (all kinds). */
    std::size_t size() const;

    /**
     * Fold another registry into this one: counters add, histograms
     * merge bucket-wise, gauges adopt the other side's value when it
     * has been set. Metric kinds must agree per name.
     */
    void merge(const MetricRegistry &other);

    /** Drop every metric (intended for tests and A/B harnesses). */
    void clear();

    /** Name-sorted snapshot of every metric. */
    std::vector<MetricSample> snapshot() const;

    /**
     * Snapshot as a Table (name, type, count, value, min, p50, p95,
     * p99, max) — print() for humans, printCsv() for machines.
     */
    Table snapshotTable() const;

    /** Snapshot as a JSON object keyed by metric name. */
    void writeJson(std::ostream &os) const;

  private:
    struct Entry
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<HistogramMetric> histogram;
    };

    MINDFUL_ATOMIC_ROLE(once_flag)
    std::atomic<bool> _enabled{true};
    mutable Mutex _mutex;
    std::map<std::string, Entry> _entries MINDFUL_GUARDED_BY(_mutex);
};

} // namespace mindful::obs

/**
 * Convenience macros for one-shot recording sites. These compile away
 * under MINDFUL_OBS_DISABLED; code holding metric references directly
 * should instead guard with `#ifndef MINDFUL_OBS_DISABLED` or accept
 * the (cheap) unconditional cost.
 */
#ifndef MINDFUL_OBS_DISABLED

#define MINDFUL_METRIC_COUNT(name, n) \
    do { \
        auto &_mindful_registry = \
            ::mindful::obs::MetricRegistry::global(); \
        if (_mindful_registry.enabled()) \
            _mindful_registry.counter(name).add(n); \
    } while (0)
#define MINDFUL_METRIC_GAUGE(name, v) \
    do { \
        auto &_mindful_registry = \
            ::mindful::obs::MetricRegistry::global(); \
        if (_mindful_registry.enabled()) \
            _mindful_registry.gauge(name).set(v); \
    } while (0)
#define MINDFUL_METRIC_RECORD(name, v) \
    do { \
        auto &_mindful_registry = \
            ::mindful::obs::MetricRegistry::global(); \
        if (_mindful_registry.enabled()) \
            _mindful_registry.histogram(name).record(v); \
    } while (0)

#else

#define MINDFUL_METRIC_COUNT(name, n) \
    do { \
    } while (0)
#define MINDFUL_METRIC_GAUGE(name, v) \
    do { \
    } while (0)
#define MINDFUL_METRIC_RECORD(name, v) \
    do { \
    } while (0)

#endif // MINDFUL_OBS_DISABLED

#endif // MINDFUL_OBS_METRICS_HH
