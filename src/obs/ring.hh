/**
 * @file
 * Single-producer / single-consumer ring buffer of PodEvents.
 *
 * One ring per registered thread: the owning thread is the only
 * producer, the collector's drain thread is the only consumer, so the
 * classic two-index scheme needs no CAS. The producer publishes a
 * slot with a release store of the head index; the consumer acquires
 * the head before reading the slot and releases the tail after — the
 * slot payloads themselves are plain (non-atomic) writes, correctly
 * ordered by the index handoff.
 *
 * A full ring never blocks the producer: the event is dropped and a
 * relaxed counter incremented, so `pushed == emitted + dropped` holds
 * exactly (the accounting the collector stress test asserts). All
 * storage is allocated in the constructor, at thread-registration
 * time — tryPush is allocation- and lock-free, which is what lets
 * mindful-analyze certify call sites inside parallelFor shard roots.
 */

#ifndef MINDFUL_OBS_RING_HH
#define MINDFUL_OBS_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/compiler.hh"
#include "obs/event.hh"

namespace mindful::obs {

class TraceRing
{
  public:
    /** @param capacity slot count; rounded up to a power of two. */
    explicit TraceRing(std::size_t capacity, std::uint32_t thread_id)
        : _threadId(thread_id)
    {
        std::size_t pow2 = 1;
        while (pow2 < capacity)
            pow2 <<= 1;
        _mask = pow2 - 1;
        _slots.assign(pow2, PodEvent{});
    }

    TraceRing(const TraceRing &) = delete;
    TraceRing &operator=(const TraceRing &) = delete;

    /** Producer side. Returns false (and counts a drop) when full. */
    bool
    tryPush(const PodEvent &event)
    {
        const std::size_t head = _head.load(std::memory_order_relaxed);
        const std::size_t tail = _tail.load(std::memory_order_acquire);
        if (head - tail > _mask) {
            _dropped.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        _slots[head & _mask] = event;
        _head.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. Returns false when the ring is empty. */
    bool
    tryPop(PodEvent &out)
    {
        const std::size_t tail = _tail.load(std::memory_order_relaxed);
        const std::size_t head = _head.load(std::memory_order_acquire);
        if (tail == head)
            return false;
        out = _slots[tail & _mask];
        _tail.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Events rejected because the ring was full (never reset). */
    std::uint64_t
    dropped() const
    {
        return _dropped.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return _mask + 1; }

    /** Dense TraceSession thread id of the owning (producer) thread. */
    std::uint32_t threadId() const { return _threadId; }

  private:
    // Head and tail live on their own cache lines so the producer's
    // publishing store never false-shares with the consumer's cursor.
    MINDFUL_ATOMIC_ROLE(spsc_head)
    alignas(64) std::atomic<std::size_t> _head{0};
    MINDFUL_ATOMIC_ROLE(spsc_tail)
    alignas(64) std::atomic<std::size_t> _tail{0};
    MINDFUL_ATOMIC_ROLE(stat_counter)
    alignas(64) std::atomic<std::uint64_t> _dropped{0};
    std::size_t _mask = 0;
    std::uint32_t _threadId = 0;
    std::vector<PodEvent> _slots;
};

} // namespace mindful::obs

#endif // MINDFUL_OBS_RING_HH
