#include "obs/trace.hh"

#include <chrono>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/metrics.hh"

namespace mindful::obs {

namespace {

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

// Touch at static-init so the epoch is process start.
const auto initTraceEpoch = traceEpoch();

std::uint64_t
nanosSinceEpoch()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** ts/dur in microseconds with nanosecond decimals. */
void
writeMicros(std::ostream &os, std::uint64_t nanos)
{
    os << nanos / 1000 << '.' << static_cast<char>('0' + nanos / 100 % 10)
       << static_cast<char>('0' + nanos / 10 % 10)
       << static_cast<char>('0' + nanos % 10);
}

} // namespace

TraceSession &
TraceSession::global()
{
    static TraceSession session;
    return session;
}

void
TraceSession::setEnabled(bool enabled)
{
    _enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t
TraceSession::nowNanos() const
{
    return nanosSinceEpoch();
}

std::uint32_t
TraceSession::currentThreadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
TraceSession::record(TraceEvent event)
{
    LockGuard lock(_mutex);
    _events.push_back(std::move(event));
}

std::size_t
TraceSession::eventCount() const
{
    LockGuard lock(_mutex);
    return _events.size();
}

std::vector<TraceEvent>
TraceSession::events() const
{
    LockGuard lock(_mutex);
    return _events;
}

void
TraceSession::clear()
{
    LockGuard lock(_mutex);
    _events.clear();
}

void
TraceSession::writeJson(std::ostream &os) const
{
    std::vector<TraceEvent> snapshot = events();
    os << "{\"traceEvents\": [";
    bool first = true;
    for (const auto &event : snapshot) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"name\": ";
        writeJsonString(os, event.name);
        os << ", \"cat\": ";
        writeJsonString(os, event.category);
        os << ", \"ph\": \"X\", \"ts\": ";
        writeMicros(os, event.startNanos);
        os << ", \"dur\": ";
        writeMicros(os, event.durationNanos);
        os << ", \"pid\": 1, \"tid\": " << event.threadId;
        if (!event.args.empty()) {
            os << ", \"args\": {";
            bool first_arg = true;
            for (const auto &[key, value] : event.args) {
                if (!first_arg)
                    os << ", ";
                first_arg = false;
                writeJsonString(os, key);
                os << ": ";
                writeJsonString(os, value);
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

TraceSpan::TraceSpan(const char *category, std::string name)
    : _active(TraceSession::global().enabled())
{
    if (!_active)
        return;
    _event.name = std::move(name);
    _event.category = category;
    _event.threadId = TraceSession::currentThreadId();
    _startNanos = nanosSinceEpoch();
}

TraceSpan::~TraceSpan()
{
    if (!_active)
        return;
    _event.startNanos = _startNanos;
    _event.durationNanos = nanosSinceEpoch() - _startNanos;
    TraceSession::global().record(std::move(_event));
}

TraceSpan &
TraceSpan::arg(const std::string &key, const std::string &value)
{
    if (_active)
        _event.args.emplace_back(key, value);
    return *this;
}

TraceSpan &
TraceSpan::arg(const std::string &key, double value)
{
    if (_active) {
        std::ostringstream os;
        os.precision(12);
        os << value;
        _event.args.emplace_back(key, os.str());
    }
    return *this;
}

TraceSpan &
TraceSpan::arg(const std::string &key, std::uint64_t value)
{
    if (_active)
        _event.args.emplace_back(key, std::to_string(value));
    return *this;
}

ScopedTimer::ScopedTimer(HistogramMetric &metric)
    : _metric(metric), _startNanos(nanosSinceEpoch())
{
}

ScopedTimer::~ScopedTimer()
{
    // Honor the registry's runtime gate like the MINDFUL_METRIC_*
    // macros do: a disabled registry means no recording, even through
    // directly-held metric references.
    if (!MetricRegistry::global().enabled())
        return;
    double elapsed_us =
        static_cast<double>(nanosSinceEpoch() - _startNanos) / 1000.0;
    _metric.record(elapsed_us);
}

} // namespace mindful::obs
