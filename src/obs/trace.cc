#include "obs/trace.hh"

#include <chrono>
#include <ostream>
#include <sstream>

#include "obs/collector.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"

namespace mindful::obs {

namespace {

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

// Touch at static-init so the epoch is process start.
const auto initTraceEpoch = traceEpoch();

std::uint64_t
nanosSinceEpoch()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

} // namespace

std::uint64_t
traceNowNanos()
{
    return nanosSinceEpoch();
}

void
writeTraceMicros(std::ostream &os, std::uint64_t nanos)
{
    os << nanos / 1000 << '.' << static_cast<char>('0' + nanos / 100 % 10)
       << static_cast<char>('0' + nanos / 10 % 10)
       << static_cast<char>('0' + nanos % 10);
}

void
writeTraceEventJson(std::ostream &os, const TraceEvent &event)
{
    os << "{\"name\": ";
    writeJsonEscaped(os, event.name);
    os << ", \"cat\": ";
    writeJsonEscaped(os, event.category);
    os << ", \"ph\": \"X\", \"ts\": ";
    writeTraceMicros(os, event.startNanos);
    os << ", \"dur\": ";
    writeTraceMicros(os, event.durationNanos);
    os << ", \"pid\": 1, \"tid\": " << event.threadId;
    if (!event.args.empty()) {
        os << ", \"args\": {";
        bool first_arg = true;
        for (const auto &[key, value] : event.args) {
            if (!first_arg)
                os << ", ";
            first_arg = false;
            writeJsonEscaped(os, key);
            os << ": ";
            writeJsonEscaped(os, value);
        }
        os << "}";
    }
    os << "}";
}

TraceSession &
TraceSession::global()
{
    static TraceSession session;
    return session;
}

void
TraceSession::setEnabled(bool enabled)
{
    _enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t
TraceSession::nowNanos() const
{
    return nanosSinceEpoch();
}

std::uint32_t
TraceSession::currentThreadId()
{
    MINDFUL_ATOMIC_ROLE(stat_counter)
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
TraceSession::record(TraceEvent event)
{
    // While the streaming collector is live, the global session's
    // cold spans join the stream instead of accumulating here — one
    // timeline, bounded memory.
    if (this == &global() &&
        detail::g_collectorStreaming.load(std::memory_order_relaxed)) {
        TraceCollector::global().submitCold(std::move(event));
        return;
    }
    LockGuard lock(_mutex);
    _events.push_back(std::move(event));
}

std::size_t
TraceSession::eventCount() const
{
    LockGuard lock(_mutex);
    return _events.size();
}

std::vector<TraceEvent>
TraceSession::events() const
{
    LockGuard lock(_mutex);
    return _events;
}

void
TraceSession::clear()
{
    LockGuard lock(_mutex);
    _events.clear();
}

void
TraceSession::writeJson(std::ostream &os) const
{
    std::vector<TraceEvent> snapshot = events();
    os << "{\"traceEvents\": [";
    bool first = true;
    for (const auto &event : snapshot) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
        writeTraceEventJson(os, event);
    }
    os << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
          "{\"manifest\": ";
    RunManifest::current().writeJsonObject(os);
    os << "}}\n";
}

TraceSpan::TraceSpan(const char *category, std::string name)
    : _active(TraceSession::global().enabled())
{
    if (!_active)
        return;
    _event.name = std::move(name);
    _event.category = category;
    _event.threadId = TraceSession::currentThreadId();
    _startNanos = nanosSinceEpoch();
}

TraceSpan::~TraceSpan()
{
    if (!_active)
        return;
    _event.startNanos = _startNanos;
    _event.durationNanos = nanosSinceEpoch() - _startNanos;
    TraceSession::global().record(std::move(_event));
}

TraceSpan &
TraceSpan::arg(const std::string &key, const std::string &value)
{
    if (_active)
        _event.args.emplace_back(key, value);
    return *this;
}

TraceSpan &
TraceSpan::arg(const std::string &key, double value)
{
    if (_active) {
        std::ostringstream os;
        os.precision(12);
        os << value;
        _event.args.emplace_back(key, os.str());
    }
    return *this;
}

TraceSpan &
TraceSpan::arg(const std::string &key, std::uint64_t value)
{
    if (_active)
        _event.args.emplace_back(key, std::to_string(value));
    return *this;
}

ScopedTimer::ScopedTimer(HistogramMetric &metric)
    : _metric(metric), _startNanos(nanosSinceEpoch())
{
}

ScopedTimer::~ScopedTimer()
{
    // Honor the registry's runtime gate like the MINDFUL_METRIC_*
    // macros do: a disabled registry means no recording, even through
    // directly-held metric references.
    if (!MetricRegistry::global().enabled())
        return;
    double elapsed_us =
        static_cast<double>(nanosSinceEpoch() - _startNanos) / 1000.0;
    _metric.record(elapsed_us);
}

} // namespace mindful::obs
