/**
 * @file
 * Scoped event tracer emitting Chrome trace_event JSON.
 *
 * A TraceSpan is an RAII scope: construction stamps the start time,
 * destruction records a complete ("ph":"X") event into the global
 * TraceSession. The resulting file loads directly in Perfetto or
 * chrome://tracing; nesting is expressed by timestamp containment per
 * thread, so spans opened inside spans render as a flame graph with
 * no extra bookkeeping.
 *
 * Two gates keep the cost out of hot loops:
 *  - runtime: spans record nothing unless
 *    `TraceSession::global().setEnabled(true)` was called (the check
 *    is one relaxed atomic load);
 *  - compile time: building with `MINDFUL_OBS_DISABLED` turns the
 *    MINDFUL_TRACE_* macros into no-ops that construct nothing.
 *
 * Categories follow the subsystem names: "comm", "accel", "dnn",
 * "core", "bench" (docs/observability.md).
 */

#ifndef MINDFUL_OBS_TRACE_HH
#define MINDFUL_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "base/compiler.hh"

namespace mindful::obs {

/** One recorded complete event (Chrome trace_event "X" phase). */
struct TraceEvent
{
    std::string name;
    std::string category;
    std::uint64_t startNanos = 0; //!< since process trace epoch
    std::uint64_t durationNanos = 0;
    std::uint32_t threadId = 0; //!< dense per-process thread index
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Process-wide span sink. Recording appends under a mutex — spans are
 * expected at call granularity (an experiment, a layer, a BER
 * measurement), not per sample.
 */
class TraceSession
{
  public:
    static TraceSession &global();

    TraceSession() = default;
    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Enable or disable recording. Disabled by default. */
    void setEnabled(bool enabled);

    bool
    enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }

    /** Monotonic nanoseconds since the session epoch. */
    std::uint64_t nowNanos() const;

    /** Dense id of the calling thread (stable for its lifetime). */
    static std::uint32_t currentThreadId();

    void record(TraceEvent event);

    std::size_t eventCount() const;

    /** Copy of the recorded events (test / analysis use). */
    std::vector<TraceEvent> events() const;

    /** Drop all recorded events; keeps the enabled flag. */
    void clear();

    /**
     * Write the Chrome trace_event JSON object
     * (`{"traceEvents": [...], ...}`). Timestamps are microseconds
     * with sub-microsecond decimals, as the format specifies.
     */
    void writeJson(std::ostream &os) const;

  private:
    MINDFUL_ATOMIC_ROLE(once_flag)
    std::atomic<bool> _enabled{false};
    mutable Mutex _mutex;
    std::vector<TraceEvent> _events MINDFUL_GUARDED_BY(_mutex);
};

/**
 * RAII span. Records into TraceSession::global() if tracing is
 * enabled at construction time; otherwise costs one atomic load.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *category, std::string name);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Whether this span is live (tracing was enabled). */
    bool active() const { return _active; }

    /** Attach a key/value argument shown in the trace viewer. */
    TraceSpan &arg(const std::string &key, const std::string &value);
    TraceSpan &arg(const std::string &key, double value);
    TraceSpan &arg(const std::string &key, std::uint64_t value);

  private:
    bool _active;
    std::uint64_t _startNanos = 0;
    TraceEvent _event;
};

/**
 * RAII timer that records its scope's elapsed time into a histogram
 * metric (microseconds) — the metric-registry sibling of TraceSpan,
 * for when a distribution is wanted rather than a timeline. Honors
 * the global registry's runtime gate: while
 * `MetricRegistry::global().setEnabled(false)` is in effect, the
 * timer records nothing (one relaxed atomic load per scope).
 */
class ScopedTimer
{
  public:
    /** @param metric histogram receiving elapsed microseconds. */
    explicit ScopedTimer(class HistogramMetric &metric);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    HistogramMetric &_metric;
    std::uint64_t _startNanos;
};

/** No-op stand-ins the macros degrade to under MINDFUL_OBS_DISABLED. */
class NullSpan
{
  public:
    NullSpan() = default;
    bool active() const { return false; }

    template <typename K, typename V>
    NullSpan &
    arg(const K &, const V &)
    {
        return *this;
    }

    /** HotSpan-compatible no-op (MINDFUL_HOT_SPAN when disabled). */
    template <typename V>
    NullSpan &
    setArg(const V &)
    {
        return *this;
    }
};

/**
 * Exporter plumbing shared with the streaming collector
 * (obs/collector.cc): one trace_event object, no surrounding comma.
 */
void writeTraceEventJson(std::ostream &os, const TraceEvent &event);

/** ts/dur in microseconds with nanosecond decimals. */
void writeTraceMicros(std::ostream &os, std::uint64_t nanos);

} // namespace mindful::obs

#define MINDFUL_OBS_CONCAT_INNER(a, b) a##b
#define MINDFUL_OBS_CONCAT(a, b) MINDFUL_OBS_CONCAT_INNER(a, b)

#ifndef MINDFUL_OBS_DISABLED

/** Open a named RAII span variable: MINDFUL_TRACE_SPAN(span, "comm",
 * "qam.measure_ber"); span.arg("symbols", n); */
#define MINDFUL_TRACE_SPAN(var, category, name) \
    ::mindful::obs::TraceSpan var((category), (name))

/** Open an anonymous span covering the rest of the scope. */
#define MINDFUL_TRACE_SCOPE(category, name) \
    ::mindful::obs::TraceSpan MINDFUL_OBS_CONCAT(_mindful_span_, \
                                                 __LINE__)((category), \
                                                           (name))

#else

#define MINDFUL_TRACE_SPAN(var, category, name) \
    ::mindful::obs::NullSpan var
#define MINDFUL_TRACE_SCOPE(category, name) \
    do { \
    } while (0)

#endif // MINDFUL_OBS_DISABLED

#endif // MINDFUL_OBS_TRACE_HH
