/**
 * @file
 * Batched query evaluation under the determinism contract
 * (docs/parallelism.md): requests shard over exec::parallelFor with
 * the fixed kDefaultShards decomposition, every request writes its
 * own results slot, and results are therefore bit-identical for any
 * --threads value. They are also bit-identical for any *cache* state:
 * a hit returns the atomically published first evaluation, and the
 * analytic paths are deterministic, so re-evaluating produces the
 * same bytes the cache would have returned.
 *
 * The shard body's probe path — canonicalize, queryKey, MemoCache
 * probe, CounterHandle::bump — is allocation- and lock-free and is
 * certified by mindful-analyze's hot-path check. Only a miss drops
 * into the (allocating) analytic evaluation.
 */

#include "base/compiler.hh"
#include "exec/parallel.hh"
#include "serve/query_engine.hh"

namespace mindful::serve {

std::vector<QueryResult>
QueryEngine::evaluateBatch(const std::vector<DesignQuery> &requests)
{
    std::vector<QueryResult> results(requests.size());
    if (requests.empty())
        return results;

    exec::parallelFor(
        exec::kDefaultShards,
        [&](std::size_t shard) {
            const exec::ShardRange range = exec::shardRange(
                requests.size(), exec::kDefaultShards, shard);
            MINDFUL_RT_LOOP("serve.batch")
            for (std::uint64_t i = range.begin; i < range.end; ++i) {
                const DesignQuery canonical =
                    canonicalize(requests[i]);
                const std::uint64_t key = queryKey(canonical);
                _queries.bump();
                const QueryResult *hit = _cache.probe(key);
                if (hit != nullptr) {
                    _hits.bump();
                    results[i] = *hit;
                } else {
                    results[i] = evaluate(canonical, key);
                }
            }
        },
        "serve.batch_shard");
    return results;
}

} // namespace mindful::serve
