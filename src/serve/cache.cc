#include "serve/cache.hh"

#include "base/logging.hh"

namespace mindful::serve {

namespace {

std::size_t
roundUpPowerOfTwo(std::size_t value)
{
    std::size_t rounded = 1;
    while (rounded < value)
        rounded <<= 1;
    return rounded;
}

} // namespace

MemoCache::MemoCache(std::size_t capacity)
{
    const std::size_t slots =
        roundUpPowerOfTwo(capacity < kProbeWindow ? kProbeWindow
                                                  : capacity);
    _mask = slots - 1;
    _slots = std::make_unique<std::atomic<const Entry *>[]>(slots);
    for (std::size_t i = 0; i < slots; ++i)
        // analyze: atomic-ok(ctor runs before any reader can exist)
        _slots[i].store(nullptr, std::memory_order_relaxed);
}

MemoCache::~MemoCache()
{
    for (std::size_t i = 0; i <= _mask; ++i)
        // analyze: atomic-ok(dtor is single-threaded by contract)
        delete _slots[i].load(std::memory_order_relaxed);
}

const QueryResult *
MemoCache::publish(std::uint64_t key, const QueryResult &result)
{
    Entry *fresh = new Entry{key, result};
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
        const std::size_t slot = (key + i) & _mask;
        const Entry *expected = nullptr;
        if (_slots[slot].compare_exchange_strong(
                expected, fresh, std::memory_order_release,
                std::memory_order_acquire)) {
            return &fresh->result;
        }
        // Slot taken: if by our key, another thread finished the
        // same evaluation first — adopt its (bit-identical) entry.
        if (expected->key == key) {
            delete fresh;
            return &expected->result;
        }
    }
    delete fresh;
    return nullptr; // window full; not cached
}

std::size_t
MemoCache::size() const
{
    std::size_t filled = 0;
    for (std::size_t i = 0; i <= _mask; ++i) {
        if (_slots[i].load(std::memory_order_relaxed) != nullptr)
            ++filled;
    }
    return filled;
}

} // namespace mindful::serve
