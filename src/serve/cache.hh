/**
 * @file
 * Lock-free memo cache for evaluated design queries.
 *
 * A fixed-capacity, open-addressed table of atomically published
 * entries, keyed by the canonical-query FNV key (query.hh). The
 * shape follows the analyzer's fact cache (tools/lint/cache.cc):
 * content-hash key, first-writer-wins publication, and losers of a
 * same-key race discard their duplicate — every reader thereafter
 * sees one immutable entry, so repeat queries return bit-identical
 * results by construction.
 *
 * Concurrency contract:
 *  - probe() is wait-free and allocation-free: a bounded linear scan
 *    of acquire-loaded slots. It is the only cache operation on the
 *    batch hot path (certified by mindful-analyze).
 *  - publish() allocates the entry it inserts and CASes it into the
 *    first empty slot in the probe window (release). The table never
 *    rehashes and entries are never replaced or evicted; when the
 *    window is full the result is simply not cached (the caller
 *    counts the drop) — correctness never depends on insertion.
 */

#ifndef MINDFUL_SERVE_CACHE_HH
#define MINDFUL_SERVE_CACHE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "base/compiler.hh"
#include "serve/query.hh"

namespace mindful::serve {

/** Memoized query results; see file comment for the contract. */
class MemoCache
{
  public:
    /** Slots scanned past the home slot before giving up. */
    static constexpr std::size_t kProbeWindow = 16;

    /** Default table capacity (slots; each slot is one pointer). */
    static constexpr std::size_t kDefaultCapacity = std::size_t(1) << 16;

    /** @p capacity is rounded up to a power of two (>= window). */
    explicit MemoCache(std::size_t capacity = kDefaultCapacity);
    ~MemoCache();

    MemoCache(const MemoCache &) = delete;
    MemoCache &operator=(const MemoCache &) = delete;

    std::size_t capacity() const { return _mask + 1; }

    /**
     * Hot-path lookup: the published result for @p key, or nullptr
     * on a miss. Wait-free, allocation-free, lock-free.
     */
    const QueryResult *
    probe(std::uint64_t key) const
    {
        for (std::size_t i = 0; i < kProbeWindow; ++i) {
            const std::size_t slot = (key + i) & _mask;
            const Entry *entry =
                _slots[slot].load(std::memory_order_acquire);
            if (entry == nullptr)
                return nullptr; // never-filled slot ends the chain
            if (entry->key == key)
                return &entry->result;
        }
        return nullptr;
    }

    /**
     * Publish @p result under @p key. First writer wins; a lost
     * same-key race discards the duplicate. Returns the published
     * result (ours or the winner's), or nullptr when the probe
     * window was full and the result was dropped.
     */
    const QueryResult *publish(std::uint64_t key,
                               const QueryResult &result);

    /** Entries currently published (approximate under concurrency). */
    std::size_t size() const;

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        QueryResult result;
    };

    MINDFUL_ATOMIC_ROLE(publish_ptr)
    std::unique_ptr<std::atomic<const Entry *>[]> _slots;
    std::size_t _mask = 0;
};

} // namespace mindful::serve

#endif // MINDFUL_SERVE_CACHE_HH
