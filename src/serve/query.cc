#include "serve/query.hh"

#include <bit>
#include <cmath>

#include "base/logging.hh"
#include "core/scaling.hh"
#include "thermal/safety.hh"

namespace mindful::serve {

namespace {

// FNV-1a 64 over explicit 64-bit lanes (same constants as the
// analyzer's fact cache, tools/lint/cache.cc). Field-by-field mixing
// keeps struct padding out of the digest.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

constexpr std::uint64_t
mix(std::uint64_t hash, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (byte * 8)) & 0xffu;
        hash *= kFnvPrime;
    }
    return hash;
}

constexpr std::uint64_t
mixDouble(std::uint64_t hash, double value)
{
    return mix(hash, std::bit_cast<std::uint64_t>(value));
}

/** True when the knob holds a usable positive finite value. */
bool
positiveFinite(double value)
{
    return std::isfinite(value) && value > 0.0;
}

bool
usesCompute(WorkloadClass workload)
{
    return workload == WorkloadClass::EventStreaming ||
           workload == WorkloadClass::DnnMlp ||
           workload == WorkloadClass::DnnCnn ||
           workload == WorkloadClass::Kalman;
}

bool
supportsPartitioning(WorkloadClass workload)
{
    return workload == WorkloadClass::DnnMlp ||
           workload == WorkloadClass::DnnCnn ||
           workload == WorkloadClass::Kalman;
}

} // namespace

double
defaultThermalEnvelopeMwPerCm2()
{
    const thermal::SafetyLimits limits;
    return limits.maxPowerDensity.inMilliwattsPerSquareCentimetre();
}

DesignQuery
canonicalize(const DesignQuery &query)
{
    DesignQuery canonical = query;

    if (canonical.channels == 0)
        canonical.channels = core::kStandardChannels;
    if (!positiveFinite(canonical.thermalEnvelopeMwPerCm2))
        canonical.thermalEnvelopeMwPerCm2 = defaultThermalEnvelopeMwPerCm2();
    if (!positiveFinite(canonical.uplinkCapMbps))
        canonical.uplinkCapMbps = 0.0;
    if (!positiveFinite(canonical.qamEfficiency) ||
        canonical.qamEfficiency > 1.0)
        canonical.qamEfficiency = kDefaultQamEfficiency;

    // Reset every knob the workload class never reads, so two
    // requests that differ only in an ignored field share one memo
    // entry (and one evaluation).
    if (canonical.workload != WorkloadClass::RawStreaming)
        canonical.commStrategy = core::CommScalingStrategy::HighMargin;
    if (canonical.workload != WorkloadClass::QamStreaming)
        canonical.qamEfficiency = kDefaultQamEfficiency;
    if (!usesCompute(canonical.workload))
        canonical.node = ProcessNode::Node45nm;
    if (!supportsPartitioning(canonical.workload))
        canonical.partitioned = false;

    return canonical;
}

std::uint64_t
queryKey(const DesignQuery &canonical)
{
    std::uint64_t hash = kFnvOffset;
    hash = mix(hash, static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(canonical.socId)));
    hash = mix(hash, canonical.channels);
    hash = mix(hash, static_cast<std::uint64_t>(canonical.workload));
    hash = mix(hash, static_cast<std::uint64_t>(canonical.commStrategy));
    hash = mix(hash, static_cast<std::uint64_t>(canonical.node));
    hash = mix(hash, canonical.partitioned ? 1u : 0u);
    hash = mixDouble(hash, canonical.qamEfficiency);
    hash = mixDouble(hash, canonical.uplinkCapMbps);
    hash = mixDouble(hash, canonical.thermalEnvelopeMwPerCm2);
    return hash;
}

std::uint64_t
resultDigest(const QueryResult &result)
{
    std::uint64_t hash = kFnvOffset;
    hash = mix(hash, static_cast<std::uint64_t>(result.status));
    hash = mix(hash, static_cast<std::uint64_t>(result.workload));
    hash = mix(hash, static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(result.socId)));
    hash = mix(hash, result.channels);
    hash = mix(hash, result.feasible ? 1u : 0u);
    hash = mix(hash, result.budgetSafe ? 1u : 0u);
    hash = mix(hash, result.deadlineMet ? 1u : 0u);
    hash = mix(hash, result.linkMet ? 1u : 0u);
    hash = mixDouble(hash, result.budgetUtilization);
    hash = mixDouble(hash, result.totalPowerMw);
    hash = mixDouble(hash, result.sensingPowerMw);
    hash = mixDouble(hash, result.commPowerMw);
    hash = mixDouble(hash, result.computePowerMw);
    hash = mixDouble(hash, result.digitalPowerMw);
    hash = mixDouble(hash, result.powerBudgetMw);
    hash = mixDouble(hash, result.areaMm2);
    hash = mixDouble(hash, result.uplinkMbps);
    hash = mixDouble(hash, result.qamMinEfficiency);
    hash = mix(hash, result.activeChannels);
    hash = mix(hash, result.onImplantLayers);
    hash = mix(hash, result.transmittedElements);
    return hash;
}

std::string
toString(WorkloadClass workload)
{
    switch (workload) {
    case WorkloadClass::RawStreaming:
        return "raw_streaming";
    case WorkloadClass::QamStreaming:
        return "qam_streaming";
    case WorkloadClass::EventStreaming:
        return "event_streaming";
    case WorkloadClass::DnnMlp:
        return "dnn_mlp";
    case WorkloadClass::DnnCnn:
        return "dnn_cnn";
    case WorkloadClass::Kalman:
        return "kalman";
    }
    MINDFUL_FATAL("unknown WorkloadClass ",
                  static_cast<unsigned>(workload));
}

} // namespace mindful::serve
