/**
 * @file
 * The design-space query protocol of `mindful_serve`.
 *
 * A DesignQuery is one "what SoC fits this patient?" request: a
 * published implant platform (Table 1 row), a target channel count,
 * the on-implant workload class, and the knobs each class reacts to
 * (modulation strategy, MAC process node, partitioning, an uplink
 * cap, the thermal envelope). A QueryResult is the framework's
 * verdict: the Sec. 4 power/area decomposition, the Eq. 3 budget
 * check, the Sec. 5.3 real-time deadline check, and an overall
 * feasible bit.
 *
 * Both structs are flat trivially-copyable records — no strings, no
 * heap — so a cached result is returned by plain struct copy on the
 * lock-free hot path (cache.hh) and two evaluations of the same
 * canonical query are bit-for-bit identical.
 *
 * canonicalize() folds every "means the same thing" spelling of a
 * request onto one representative (defaults resolved, knobs the
 * workload class ignores reset), and queryKey() hashes exactly that
 * canonical form — so two equal requests built differently share one
 * memo-cache entry (docs/serving.md).
 */

#ifndef MINDFUL_SERVE_QUERY_HH
#define MINDFUL_SERVE_QUERY_HH

#include <cstdint>
#include <string>
#include <type_traits>

#include "core/comm_centric.hh"

namespace mindful::serve {

/** What the implant computes on-device (DESIGN.md Sec. 4 map). */
enum class WorkloadClass : std::uint8_t {
    RawStreaming,   //!< stream every sample, OOK (Sec. 5.1)
    QamStreaming,   //!< stream every sample, M-QAM (Sec. 5.2)
    EventStreaming, //!< detect spikes, stream events (Sec. 2.3)
    DnnMlp,         //!< on-implant MLP decoder (Sec. 5.3)
    DnnCnn,         //!< on-implant DN-CNN decoder (Sec. 5.3)
    Kalman,         //!< on-implant Kalman decoder (workloads.hh)
};

/** MAC synthesis node for the compute-bearing workloads (Sec. 6.2). */
enum class ProcessNode : std::uint8_t {
    Node45nm, //!< NanGate 45 nm (default evaluation node)
    Node12nm, //!< the paper's technology-scaling optimization
};

/** Largest channel count a query may ask for (bounds per-query work). */
inline constexpr std::uint64_t kMaxQueryChannels = 1u << 20;

/** Default M-QAM implementation efficiency assumed when unset. */
inline constexpr double kDefaultQamEfficiency = 0.25;

/** One design-space request. Plain data; field 0 means "default". */
struct DesignQuery
{
    int socId = 1;               //!< Table 1 row id
    std::uint64_t channels = 0;  //!< 0 = the 1024-channel standard
    WorkloadClass workload = WorkloadClass::RawStreaming;

    /** Raw-streaming scaling hypothesis (RawStreaming only). */
    core::CommScalingStrategy commStrategy =
        core::CommScalingStrategy::HighMargin;

    /** MAC node (EventStreaming / DnnMlp / DnnCnn / Kalman). */
    ProcessNode node = ProcessNode::Node45nm;

    /** Allow the DNN to split at its earliest viable cut (Sec. 6.1;
     *  compute-bearing DNN/Kalman workloads only). */
    bool partitioned = false;

    /** PA/implementation efficiency assumed for M-QAM, in (0, 1]. */
    double qamEfficiency = kDefaultQamEfficiency;

    /** Uplink budget the deployment's link can sustain [Mbit/s];
     *  0 = uncapped. The verdict's linkMet checks against this. */
    double uplinkCapMbps = 0.0;

    /** Thermal envelope [mW/cm^2]; 0 = the paper's 40 mW/cm^2
     *  subdural limit (thermal::SafetyLimits). */
    double thermalEnvelopeMwPerCm2 = 0.0;
};

/** Request validity (reported in-band, never thrown or fatal). */
enum class QueryStatus : std::uint8_t {
    Ok,
    UnknownSoc,     //!< socId not in the catalog
    InvalidRequest, //!< out-of-range channels / efficiency / envelope
};

/** One SoC verdict. Flat record; powers in mW, areas in mm^2. */
struct QueryResult
{
    QueryStatus status = QueryStatus::InvalidRequest;
    WorkloadClass workload = WorkloadClass::RawStreaming;
    int socId = 0;
    std::uint64_t channels = 0;

    bool feasible = false;    //!< budgetSafe && deadlineMet && linkMet
    bool budgetSafe = false;  //!< Psoc <= Pbudget (Eq. 3)
    bool deadlineMet = false; //!< accelerator meets t = 1/f (Eq. 11)
    bool linkMet = false;     //!< required uplink <= uplinkCapMbps

    double budgetUtilization = 0.0; //!< Psoc / Pbudget

    double totalPowerMw = 0.0;
    double sensingPowerMw = 0.0;
    double commPowerMw = 0.0;
    double computePowerMw = 0.0; //!< accelerator / spike detection
    double digitalPowerMw = 0.0;
    double powerBudgetMw = 0.0;
    double areaMm2 = 0.0;

    double uplinkMbps = 0.0; //!< required uplink data rate

    /** QamStreaming only: Fig. 7 minimum efficiency at this point. */
    double qamMinEfficiency = 0.0;

    /** Compute-bearing workloads: dropout / partition outcome. */
    std::uint64_t activeChannels = 0;
    std::uint64_t onImplantLayers = 0;
    std::uint64_t transmittedElements = 0;
};

static_assert(std::is_trivially_copyable_v<DesignQuery>,
              "queries must memo-hash and copy as plain bytes");
static_assert(std::is_trivially_copyable_v<QueryResult>,
              "results must publish/copy without allocation");

/** The paper's default thermal envelope in mW/cm^2 (Sec. 3.2). */
double defaultThermalEnvelopeMwPerCm2();

/**
 * Fold a request onto its canonical representative: zero defaults
 * resolved (channels, envelope), NaN/negative knobs replaced by
 * defaults, and every knob the workload class ignores reset — so
 * equality of canonical forms is semantic equality of requests.
 * Allocation-free (certified on the batch hot path).
 */
DesignQuery canonicalize(const DesignQuery &query);

/**
 * FNV-1a memo key over the canonical request's value bytes (field by
 * field, never raw struct memory, so padding can't leak in). Callers
 * must pass a canonicalize()d query. Allocation-free.
 */
std::uint64_t queryKey(const DesignQuery &canonical);

/**
 * FNV-1a digest of a result's value bytes — the bit-exactness probe
 * the determinism tests and `serve_throughput --csv` compare across
 * thread counts and cache states. Allocation-free.
 */
std::uint64_t resultDigest(const QueryResult &result);

/** Bar-label spelling, e.g. "dnn_mlp" (bench CSV / docs). */
std::string toString(WorkloadClass workload);

} // namespace mindful::serve

#endif // MINDFUL_SERVE_QUERY_HH
