#include "serve/query_engine.hh"

#include "accel/mac_unit.hh"
#include "core/comm_centric.hh"
#include "core/comp_centric.hh"
#include "core/event_centric.hh"
#include "core/experiments.hh"
#include "core/scaling.hh"
#include "core/soc_catalog.hh"
#include "core/workloads.hh"
#include "thermal/safety.hh"

namespace mindful::serve {

namespace {

accel::MacUnitParams
macFor(ProcessNode node)
{
    return node == ProcessNode::Node12nm ? accel::scaled12nm()
                                         : accel::nangate45();
}

/** Catalog lookup that reports absence instead of aborting. */
const core::SocDesign *
findSoc(int id)
{
    for (const core::SocDesign &design : core::socCatalog()) {
        if (design.id == id)
            return &design;
    }
    return nullptr;
}

/** The implant under the query's thermal envelope. */
core::ImplantModel
buildImplant(const core::SocDesign &design, const DesignQuery &query)
{
    thermal::SafetyLimits limits;
    limits.maxPowerDensity = PowerDensity::milliwattsPerSquareCentimetre(
        query.thermalEnvelopeMwPerCm2);
    return core::ImplantModel(design, limits);
}

/** Shared verdict assembly once the power/area story is known. */
void
finalize(QueryResult &result, const DesignQuery &query)
{
    result.status = QueryStatus::Ok;
    result.workload = query.workload;
    result.socId = query.socId;
    result.channels = query.channels;
    if (query.uplinkCapMbps > 0.0) {
        result.linkMet = result.uplinkMbps <= query.uplinkCapMbps;
    } else {
        result.linkMet = true;
    }
    result.feasible =
        result.budgetSafe && result.deadlineMet && result.linkMet;
}

QueryResult
evaluateRawStreaming(const core::ImplantModel &implant,
                     const DesignQuery &query)
{
    const core::CommCentricModel model(implant, query.commStrategy);
    const core::CommCentricPoint point = model.project(query.channels);

    // Split the projected non-sensing power back into comm/digital:
    // the digital slice is frozen under HighMargin and tiled under
    // Naive (comm_centric.hh), the transceiver takes the rest.
    const double ratio = static_cast<double>(query.channels) /
                         static_cast<double>(core::kStandardChannels);
    Power digital = implant.digitalPower();
    if (query.commStrategy == core::CommScalingStrategy::Naive)
        digital = digital * ratio;
    const Power comm = point.nonSensingPower - digital;

    QueryResult result;
    result.budgetSafe = point.safe();
    result.deadlineMet = true; // no on-implant compute deadline
    result.budgetUtilization = point.budgetUtilization;
    result.totalPowerMw = point.totalPower.inMilliwatts();
    result.sensingPowerMw = point.sensingPower.inMilliwatts();
    result.commPowerMw = comm.inMilliwatts();
    result.digitalPowerMw = digital.inMilliwatts();
    result.powerBudgetMw = point.powerBudget.inMilliwatts();
    result.areaMm2 = point.totalArea.inSquareMillimetres();
    result.uplinkMbps = point.dataRate.inMegabitsPerSecond();
    result.activeChannels = query.channels;
    finalize(result, query);
    return result;
}

QueryResult
evaluateQamStreaming(const core::ImplantModel &implant,
                     const DesignQuery &query)
{
    const core::QamStudy study(implant);
    const core::QamPoint point = study.evaluate(query.channels);

    const Power sensing = implant.sensingPower(query.channels);
    const Power digital = implant.digitalPower();
    const Power comm = point.idealTxPower / query.qamEfficiency;
    const Power total = sensing + digital + comm;
    const Area area =
        implant.sensingArea(query.channels) + implant.nonSensingArea();
    const Power budget = implant.powerBudget(area);

    QueryResult result;
    result.budgetUtilization = total / budget;
    result.budgetSafe = result.budgetUtilization <= 1.0;
    result.deadlineMet = true;
    result.totalPowerMw = total.inMilliwatts();
    result.sensingPowerMw = sensing.inMilliwatts();
    result.commPowerMw = comm.inMilliwatts();
    result.digitalPowerMw = digital.inMilliwatts();
    result.powerBudgetMw = budget.inMilliwatts();
    result.areaMm2 = area.inSquareMillimetres();
    result.uplinkMbps = point.dataRate.inMegabitsPerSecond();
    result.qamMinEfficiency = point.minimumEfficiency;
    result.activeChannels = query.channels;
    finalize(result, query);
    return result;
}

QueryResult
evaluateEventStreaming(const core::ImplantModel &implant,
                       const DesignQuery &query)
{
    core::EventStreamConfig config;
    config.mac = macFor(query.node);
    const core::EventCentricModel model(implant, config);
    const core::EventCentricPoint point = model.evaluate(query.channels);

    QueryResult result;
    result.budgetSafe = point.safe();
    result.deadlineMet = true; // detection keeps up by construction
    result.budgetUtilization = point.budgetUtilization;
    result.totalPowerMw = point.totalPower.inMilliwatts();
    result.sensingPowerMw = point.sensingPower.inMilliwatts();
    result.commPowerMw = point.commPower.inMilliwatts();
    result.computePowerMw = point.detectionPower.inMilliwatts();
    result.digitalPowerMw = point.digitalPower.inMilliwatts();
    result.powerBudgetMw = point.powerBudget.inMilliwatts();
    const Area area = implant.sensingArea(query.channels) +
                      implant.nonSensingArea();
    result.areaMm2 = area.inSquareMillimetres();
    result.uplinkMbps = point.dataRate.inMegabitsPerSecond();
    result.activeChannels = query.channels;
    finalize(result, query);
    return result;
}

QueryResult
evaluateCompCentric(const core::ImplantModel &implant,
                    const DesignQuery &query)
{
    core::CompCentricConfig config;
    config.mac = macFor(query.node);

    core::ModelBuilder builder;
    switch (query.workload) {
    case WorkloadClass::DnnMlp:
        builder = core::experiments::speechModelBuilder(
            core::experiments::SpeechModel::Mlp);
        break;
    case WorkloadClass::DnnCnn:
        builder = core::experiments::speechModelBuilder(
            core::experiments::SpeechModel::DnCnn);
        break;
    default: {
        // Kalman: one predict/update per feature bin.
        const core::KalmanWorkloadSpec spec;
        config.applicationRate = Frequency::hertz(spec.binRateHz);
        builder = [spec](std::uint64_t channels) {
            return core::buildKalmanWorkload(channels, spec);
        };
        break;
    }
    }

    const core::CompCentricModel model(implant, builder, config);
    const core::CompCentricPoint point =
        model.evaluate(query.channels, query.partitioned);

    QueryResult result;
    result.budgetSafe = point.budgetUtilization <= 1.0;
    result.deadlineMet = point.bound.feasible;
    result.budgetUtilization = point.budgetUtilization;
    result.totalPowerMw = point.totalPower.inMilliwatts();
    result.sensingPowerMw = point.sensingPower.inMilliwatts();
    result.commPowerMw = point.commPower.inMilliwatts();
    result.computePowerMw = point.computePower.inMilliwatts();
    result.digitalPowerMw = point.digitalPower.inMilliwatts();
    result.powerBudgetMw = point.powerBudget.inMilliwatts();
    const Area area = implant.sensingArea(query.channels) +
                      implant.nonSensingArea();
    result.areaMm2 = area.inSquareMillimetres();
    const double uplink_bps =
        config.applicationRate.inHertz() *
        static_cast<double>(point.transmittedElements) *
        static_cast<double>(implant.sampleBits());
    result.uplinkMbps = uplink_bps * 1e-6;
    result.activeChannels = point.activeChannels;
    result.onImplantLayers = point.onImplantLayers;
    result.transmittedElements = point.transmittedElements;
    finalize(result, query);
    return result;
}

} // namespace

QueryEngine::QueryEngine(std::size_t cache_capacity)
    : _cache(cache_capacity),
      _queries(obs::HotMetricTable::global().counter("serve.queries")),
      _hits(obs::HotMetricTable::global().counter("serve.cache.hits")),
      _misses(
          obs::HotMetricTable::global().counter("serve.cache.misses")),
      _drops(obs::HotMetricTable::global().counter("serve.cache.drops"))
{
}

QueryResult
QueryEngine::evaluate(const DesignQuery &request)
{
    const DesignQuery canonical = canonicalize(request);
    const std::uint64_t key = queryKey(canonical);
    _queries.bump();
    if (const QueryResult *hit = _cache.probe(key)) {
        _hits.bump();
        return *hit;
    }
    return evaluate(canonical, key);
}

QueryResult
QueryEngine::evaluate(const DesignQuery &canonical, std::uint64_t key)
{
    _misses.bump();
    const QueryResult result = evaluateUncached(canonical);
    const QueryResult *published = _cache.publish(key, result);
    if (published == nullptr) {
        _drops.bump();
        return result;
    }
    return *published;
}

QueryResult
QueryEngine::evaluateUncached(const DesignQuery &canonical) const
{
    QueryResult invalid;
    invalid.workload = canonical.workload;
    invalid.socId = canonical.socId;
    invalid.channels = canonical.channels;

    if (canonical.channels > kMaxQueryChannels) {
        invalid.status = QueryStatus::InvalidRequest;
        return invalid;
    }
    const core::SocDesign *design = findSoc(canonical.socId);
    if (design == nullptr) {
        invalid.status = QueryStatus::UnknownSoc;
        return invalid;
    }

    const core::ImplantModel implant = buildImplant(*design, canonical);
    switch (canonical.workload) {
    case WorkloadClass::RawStreaming:
        return evaluateRawStreaming(implant, canonical);
    case WorkloadClass::QamStreaming:
        return evaluateQamStreaming(implant, canonical);
    case WorkloadClass::EventStreaming:
        return evaluateEventStreaming(implant, canonical);
    case WorkloadClass::DnnMlp:
    case WorkloadClass::DnnCnn:
    case WorkloadClass::Kalman:
        return evaluateCompCentric(implant, canonical);
    }
    invalid.status = QueryStatus::InvalidRequest;
    return invalid;
}

} // namespace mindful::serve
