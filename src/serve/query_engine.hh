/**
 * @file
 * The mindful_serve query engine: batched, memo-cached evaluation of
 * design-space requests against the MINDFUL analytic models.
 *
 * One engine owns one MemoCache and a set of pre-resolved hot-tier
 * counters (serve.queries / serve.cache.hits / serve.cache.misses /
 * serve.cache.drops). evaluate() answers one DesignQuery — from the
 * cache when an equivalent request was answered before, else through
 * the core/accel/thermal analytic path for its workload class.
 * evaluateBatch() (batch.cc) shards a request vector over
 * exec::parallelFor under the repo's determinism contract: fixed
 * kDefaultShards decomposition, indexed writes, results bit-identical
 * for any --threads value and any cache state (docs/serving.md).
 */

#ifndef MINDFUL_SERVE_QUERY_ENGINE_HH
#define MINDFUL_SERVE_QUERY_ENGINE_HH

#include <cstdint>
#include <vector>

#include "obs/handles.hh"
#include "serve/cache.hh"
#include "serve/query.hh"

namespace mindful::serve {

/** Evaluates design queries; see file comment. */
class QueryEngine
{
  public:
    explicit QueryEngine(
        std::size_t cache_capacity = MemoCache::kDefaultCapacity);

    /**
     * Answer one request: canonicalize, probe the cache, evaluate on
     * a miss and publish the result. Invalid requests come back with
     * status InvalidRequest / UnknownSoc (never fatal). Equal
     * canonical requests always return bit-identical results.
     */
    QueryResult evaluate(const DesignQuery &request);

    /**
     * Miss path: evaluate an already-canonicalized request under its
     * precomputed memo key and publish the result. evaluateBatch's
     * shard bodies call this after an inline cache probe.
     */
    QueryResult evaluate(const DesignQuery &canonical,
                         std::uint64_t key);

    /**
     * Answer a request vector in parallel (batch.cc). Requests are
     * sharded over exec::parallelFor with the fixed kDefaultShards
     * decomposition; results[i] answers requests[i], bit-identical
     * for any thread count and cache state.
     */
    std::vector<QueryResult>
    evaluateBatch(const std::vector<DesignQuery> &requests);

    const MemoCache &cache() const { return _cache; }

    // Counter snapshots (process-wide totals; tests take deltas).
    std::uint64_t queriesTotal() const { return _queries.total(); }
    std::uint64_t cacheHitsTotal() const { return _hits.total(); }
    std::uint64_t cacheMissesTotal() const { return _misses.total(); }
    std::uint64_t cacheDropsTotal() const { return _drops.total(); }

  private:
    /** The uncached analytic evaluation for one canonical request. */
    QueryResult evaluateUncached(const DesignQuery &canonical) const;

    MemoCache _cache;

    // Resolved once at construction; bumped lock-free afterwards.
    obs::CounterHandle _queries;
    obs::CounterHandle _hits;
    obs::CounterHandle _misses;
    obs::CounterHandle _drops;
};

} // namespace mindful::serve

#endif // MINDFUL_SERVE_QUERY_ENGINE_HH
