#include "signal/channel_ranking.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mindful::signal {

std::vector<std::uint64_t>
ChannelRanking::keepSet(std::uint64_t keep) const
{
    keep = std::min<std::uint64_t>(keep, ranked.size());
    std::vector<std::uint64_t> channels;
    channels.reserve(keep);
    for (std::uint64_t i = 0; i < keep; ++i)
        channels.push_back(ranked[i].channel);
    return channels;
}

std::uint64_t
ChannelRanking::channelsForActivityFraction(double fraction) const
{
    MINDFUL_ASSERT(fraction >= 0.0 && fraction <= 1.0,
                   "activity fraction must lie in [0, 1]");
    double total = 0.0;
    for (const auto &activity : ranked)
        total += activity.spikeRateHz;
    if (total <= 0.0)
        return 0;
    double target = fraction * total;
    if (target <= 0.0)
        return 0;
    double acc = 0.0;
    for (std::uint64_t i = 0; i < ranked.size(); ++i) {
        acc += ranked[i].spikeRateHz;
        if (acc >= target)
            return i + 1;
    }
    return ranked.size();
}

ChannelRanker::ChannelRanker(ChannelRankerConfig config) : _config(config)
{
    MINDFUL_ASSERT(config.rateWeight >= 0.0 && config.rateWeight <= 1.0,
                   "rateWeight must lie in [0, 1]");
}

ChannelRanking
ChannelRanker::rank(const ni::Recording &recording) const
{
    MINDFUL_ASSERT(recording.steps > 0, "recording must not be empty");

    const ThresholdDetector detector(_config.detector);
    const double duration =
        static_cast<double>(recording.steps) /
        recording.samplingFrequency.inHertz();

    ChannelRanking ranking;
    ranking.ranked.reserve(recording.channels);

    double max_rate = 0.0;
    double max_rms = 0.0;
    for (std::uint64_t ch = 0; ch < recording.channels; ++ch) {
        std::vector<double> trace(
            recording.samples.begin() +
                static_cast<std::ptrdiff_t>(ch * recording.steps),
            recording.samples.begin() +
                static_cast<std::ptrdiff_t>((ch + 1) * recording.steps));

        ChannelActivity activity;
        activity.channel = ch;
        activity.spikeRateHz =
            static_cast<double>(detector.detect(trace).size()) / duration;

        double energy = 0.0;
        for (double v : trace)
            energy += v * v;
        activity.signalRmsUv =
            std::sqrt(energy / static_cast<double>(trace.size()));

        max_rate = std::max(max_rate, activity.spikeRateHz);
        max_rms = std::max(max_rms, activity.signalRmsUv);
        ranking.ranked.push_back(activity);
    }

    // Combined score with per-metric normalization so neither metric
    // dominates on units alone.
    for (auto &activity : ranking.ranked) {
        double rate_term =
            max_rate > 0.0 ? activity.spikeRateHz / max_rate : 0.0;
        double rms_term =
            max_rms > 0.0 ? activity.signalRmsUv / max_rms : 0.0;
        activity.score = _config.rateWeight * rate_term +
                         (1.0 - _config.rateWeight) * rms_term;
    }

    std::stable_sort(ranking.ranked.begin(), ranking.ranked.end(),
                     [](const ChannelActivity &a, const ChannelActivity &b) {
                         return a.score > b.score;
                     });
    return ranking;
}

} // namespace mindful::signal
