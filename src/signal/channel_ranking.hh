/**
 * @file
 * Activity-based channel ranking — the channel-dropout substrate.
 *
 * The paper's channel-dropout optimization (Sec. 6.2) exploits the
 * redundancy of large-scale recordings: data from inactive neurons
 * can be filtered out, "effectively reducing the computational load."
 * This module measures per-channel activity on real (synthetic)
 * recordings and produces the ranked keep-set that the optimization
 * pass in mindful_core reasons about analytically.
 */

#ifndef MINDFUL_SIGNAL_CHANNEL_RANKING_HH
#define MINDFUL_SIGNAL_CHANNEL_RANKING_HH

#include <cstdint>
#include <vector>

#include "ni/synthetic_cortex.hh"
#include "signal/spike_detect.hh"

namespace mindful::signal {

/** Per-channel activity summary. */
struct ChannelActivity
{
    std::uint64_t channel = 0;
    double spikeRateHz = 0.0;   //!< detected spikes per second
    double signalRmsUv = 0.0;   //!< RMS of the spike-band trace
    double score = 0.0;         //!< ranking score (higher = keep)
};

/** Result of ranking a recording's channels. */
struct ChannelRanking
{
    /** Activities sorted by descending score. */
    std::vector<ChannelActivity> ranked;

    /** Channel indices of the best @p keep channels. */
    std::vector<std::uint64_t> keepSet(std::uint64_t keep) const;

    /**
     * Smallest keep-count retaining @p fraction of the total detected
     * spike activity (a proxy for retained information).
     */
    std::uint64_t channelsForActivityFraction(double fraction) const;
};

/** Options for the ranking pass. */
struct ChannelRankerConfig
{
    SpikeDetectorConfig detector;

    /** Weight of spike rate vs RMS in the combined score. */
    double rateWeight = 0.8;
};

/** Ranks channels of a recording by measured activity. */
class ChannelRanker
{
  public:
    explicit ChannelRanker(ChannelRankerConfig config = {});

    /**
     * Rank every channel of @p recording. Traces are assumed to be
     * already spike-band filtered (or raw; the detector's MAD
     * threshold adapts either way).
     */
    ChannelRanking rank(const ni::Recording &recording) const;

  private:
    ChannelRankerConfig _config;
};

} // namespace mindful::signal

#endif // MINDFUL_SIGNAL_CHANNEL_RANKING_HH
