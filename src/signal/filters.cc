#include "signal/filters.hh"

#include <cmath>
#include <complex>
#include <numbers>

#include "base/logging.hh"

namespace mindful::signal {

Biquad::Biquad() : _b0(1.0), _b1(0.0), _b2(0.0), _a1(0.0), _a2(0.0)
{
}

Biquad::Biquad(double b0, double b1, double b2, double a0, double a1,
               double a2)
{
    MINDFUL_ASSERT(a0 != 0.0, "biquad a0 must be non-zero");
    _b0 = b0 / a0;
    _b1 = b1 / a0;
    _b2 = b2 / a0;
    _a1 = a1 / a0;
    _a2 = a2 / a0;
}

namespace {

struct RbjParams
{
    double w0;
    double cosw;
    double sinw;
    double alpha;
};

RbjParams
rbj(Frequency f, Frequency fs, double q)
{
    MINDFUL_ASSERT(f.inHertz() > 0.0 && f.inHertz() < fs.inHertz() / 2.0,
                   "filter frequency must lie in (0, fs/2): f = ",
                   f.inHertz(), " Hz, fs = ", fs.inHertz(), " Hz");
    MINDFUL_ASSERT(q > 0.0, "filter Q must be positive");
    RbjParams p;
    p.w0 = 2.0 * std::numbers::pi * f.inHertz() / fs.inHertz();
    p.cosw = std::cos(p.w0);
    p.sinw = std::sin(p.w0);
    p.alpha = p.sinw / (2.0 * q);
    return p;
}

} // namespace

Biquad
Biquad::lowPass(Frequency cutoff, Frequency sampling, double q)
{
    auto p = rbj(cutoff, sampling, q);
    return Biquad((1.0 - p.cosw) / 2.0, 1.0 - p.cosw, (1.0 - p.cosw) / 2.0,
                  1.0 + p.alpha, -2.0 * p.cosw, 1.0 - p.alpha);
}

Biquad
Biquad::highPass(Frequency cutoff, Frequency sampling, double q)
{
    auto p = rbj(cutoff, sampling, q);
    return Biquad((1.0 + p.cosw) / 2.0, -(1.0 + p.cosw),
                  (1.0 + p.cosw) / 2.0, 1.0 + p.alpha, -2.0 * p.cosw,
                  1.0 - p.alpha);
}

Biquad
Biquad::bandPass(Frequency centre, Frequency sampling, double q)
{
    auto p = rbj(centre, sampling, q);
    return Biquad(p.alpha, 0.0, -p.alpha, 1.0 + p.alpha, -2.0 * p.cosw,
                  1.0 - p.alpha);
}

Biquad
Biquad::notch(Frequency centre, Frequency sampling, double q)
{
    auto p = rbj(centre, sampling, q);
    return Biquad(1.0, -2.0 * p.cosw, 1.0, 1.0 + p.alpha, -2.0 * p.cosw,
                  1.0 - p.alpha);
}

double
Biquad::step(double x)
{
    double y = _b0 * x + _b1 * _x1 + _b2 * _x2 - _a1 * _y1 - _a2 * _y2;
    _x2 = _x1;
    _x1 = x;
    _y2 = _y1;
    _y1 = y;
    return y;
}

void
Biquad::reset()
{
    _x1 = _x2 = _y1 = _y2 = 0.0;
}

double
Biquad::magnitudeAt(Frequency freq, Frequency sampling) const
{
    using namespace std::complex_literals;
    double w = 2.0 * std::numbers::pi * freq.inHertz() / sampling.inHertz();
    std::complex<double> z = std::exp(-1i * w);
    std::complex<double> num = _b0 + _b1 * z + _b2 * z * z;
    std::complex<double> den = 1.0 + _a1 * z + _a2 * z * z;
    return std::abs(num / den);
}

double
BiquadCascade::step(double x)
{
    for (auto &section : _sections)
        x = section.step(x);
    return x;
}

void
BiquadCascade::reset()
{
    for (auto &section : _sections)
        section.reset();
}

std::vector<double>
BiquadCascade::apply(const std::vector<double> &input)
{
    std::vector<double> out;
    out.reserve(input.size());
    for (double x : input)
        out.push_back(step(x));
    return out;
}

BiquadCascade
BiquadCascade::spikeBand(Frequency sampling, Frequency low, Frequency high)
{
    BiquadCascade cascade;
    // Two cascaded 2nd-order sections at each edge give 4th-order
    // rolloff; butterworth Q pairing (0.5412, 1.3066).
    cascade.append(Biquad::highPass(low, sampling, 0.5412));
    cascade.append(Biquad::highPass(low, sampling, 1.3066));
    cascade.append(Biquad::lowPass(high, sampling, 0.5412));
    cascade.append(Biquad::lowPass(high, sampling, 1.3066));
    return cascade;
}

BiquadCascade
BiquadCascade::lfpBand(Frequency sampling, Frequency cutoff)
{
    BiquadCascade cascade;
    cascade.append(Biquad::lowPass(cutoff, sampling, 0.5412));
    cascade.append(Biquad::lowPass(cutoff, sampling, 1.3066));
    return cascade;
}

FirFilter::FirFilter(std::vector<double> taps)
    : _taps(std::move(taps)), _delay(_taps.size(), 0.0)
{
    MINDFUL_ASSERT(!_taps.empty(), "FIR filter needs at least one tap");
}

FirFilter
FirFilter::designLowPass(Frequency cutoff, Frequency sampling,
                         std::size_t taps)
{
    MINDFUL_ASSERT(taps >= 3, "FIR design needs at least 3 taps");
    MINDFUL_ASSERT(cutoff.inHertz() > 0.0 &&
                       cutoff.inHertz() < sampling.inHertz() / 2.0,
                   "FIR cutoff must lie in (0, fs/2)");

    double fc = cutoff.inHertz() / sampling.inHertz();
    std::vector<double> h(taps);
    double centre = (static_cast<double>(taps) - 1.0) / 2.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < taps; ++i) {
        double m = static_cast<double>(i) - centre;
        double sinc = m == 0.0
                          ? 2.0 * fc
                          : std::sin(2.0 * std::numbers::pi * fc * m) /
                                (std::numbers::pi * m);
        double window =
            0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                                   static_cast<double>(i) /
                                   (static_cast<double>(taps) - 1.0));
        h[i] = sinc * window;
        sum += h[i];
    }
    // Normalize DC gain to exactly 1.
    for (auto &v : h)
        v /= sum;
    return FirFilter(std::move(h));
}

FirFilter
FirFilter::designBandPass(Frequency low, Frequency high, Frequency sampling,
                          std::size_t taps)
{
    MINDFUL_ASSERT(low.inHertz() < high.inHertz(),
                   "band-pass edges out of order");
    FirFilter lp_high = designLowPass(high, sampling, taps);
    FirFilter lp_low = designLowPass(low, sampling, taps);
    std::vector<double> h(taps);
    for (std::size_t i = 0; i < taps; ++i)
        h[i] = lp_high.taps()[i] - lp_low.taps()[i];
    return FirFilter(std::move(h));
}

double
FirFilter::step(double x)
{
    _delay[_head] = x;
    double acc = 0.0;
    std::size_t idx = _head;
    for (double tap : _taps) {
        acc += tap * _delay[idx];
        idx = (idx == 0) ? _delay.size() - 1 : idx - 1;
    }
    _head = (_head + 1) % _delay.size();
    return acc;
}

void
FirFilter::reset()
{
    std::fill(_delay.begin(), _delay.end(), 0.0);
    _head = 0;
}

std::vector<double>
FirFilter::apply(const std::vector<double> &input)
{
    std::vector<double> out;
    out.reserve(input.size());
    for (double x : input)
        out.push_back(step(x));
    return out;
}

double
FirFilter::magnitudeAt(Frequency freq, Frequency sampling) const
{
    using namespace std::complex_literals;
    double w = 2.0 * std::numbers::pi * freq.inHertz() / sampling.inHertz();
    std::complex<double> acc = 0.0;
    for (std::size_t i = 0; i < _taps.size(); ++i)
        acc += _taps[i] * std::exp(-1i * (w * static_cast<double>(i)));
    return std::abs(acc);
}

} // namespace mindful::signal
