/**
 * @file
 * Digital filters for neural-signal conditioning.
 *
 * Implanted front-ends band-split the raw trace into a spike band
 * (~300 Hz - 3 kHz) and an LFP band (< ~300 Hz) before any feature
 * extraction. This module provides RBJ-cookbook biquad sections, a
 * cascade container, and windowed-sinc FIR design — enough to build
 * the standard neural preprocessing chains used by the examples and
 * the spike detector.
 */

#ifndef MINDFUL_SIGNAL_FILTERS_HH
#define MINDFUL_SIGNAL_FILTERS_HH

#include <cstddef>
#include <vector>

#include "base/units.hh"

namespace mindful::signal {

/**
 * Direct-form-I biquad (two poles, two zeros), normalized a0 = 1.
 */
class Biquad
{
  public:
    /** Identity (pass-through) section. */
    Biquad();

    /** Raw coefficients; a0 must be non-zero and is normalized out. */
    Biquad(double b0, double b1, double b2, double a0, double a1, double a2);

    /** RBJ cookbook designs. @p q is the section quality factor. */
    static Biquad lowPass(Frequency cutoff, Frequency sampling,
                          double q = 0.7071);
    static Biquad highPass(Frequency cutoff, Frequency sampling,
                           double q = 0.7071);
    static Biquad bandPass(Frequency centre, Frequency sampling, double q);
    static Biquad notch(Frequency centre, Frequency sampling, double q);

    /** Process one sample, updating internal state. */
    double step(double x);

    /** Reset the delay line to zero. */
    void reset();

    /** Magnitude response |H(e^{jw})| at @p freq. */
    double magnitudeAt(Frequency freq, Frequency sampling) const;

  private:
    double _b0, _b1, _b2, _a1, _a2;
    double _x1 = 0.0, _x2 = 0.0, _y1 = 0.0, _y2 = 0.0;
};

/** Cascade of biquad sections applied in series. */
class BiquadCascade
{
  public:
    BiquadCascade() = default;
    explicit BiquadCascade(std::vector<Biquad> sections)
        : _sections(std::move(sections))
    {
    }

    void append(Biquad section) { _sections.push_back(section); }

    double step(double x);
    void reset();

    /** Filter a whole buffer (stateful; call reset() between traces). */
    std::vector<double> apply(const std::vector<double> &input);

    std::size_t sections() const { return _sections.size(); }

    /**
     * Standard neural spike-band chain: 2 high-pass + 2 low-pass
     * butterworth-q biquads (4th-order band edges).
     */
    static BiquadCascade spikeBand(Frequency sampling,
                                   Frequency low = Frequency::hertz(300),
                                   Frequency high =
                                       Frequency::kilohertz(3.0));

    /** LFP chain: 4th-order low-pass below @p cutoff. */
    static BiquadCascade lfpBand(Frequency sampling,
                                 Frequency cutoff = Frequency::hertz(300));

  private:
    std::vector<Biquad> _sections;
};

/**
 * Windowed-sinc (Hamming) linear-phase FIR filter.
 */
class FirFilter
{
  public:
    explicit FirFilter(std::vector<double> taps);

    /** Low-pass design with @p taps coefficients (odd preferred). */
    static FirFilter designLowPass(Frequency cutoff, Frequency sampling,
                                   std::size_t taps);

    /** Band-pass design via spectral subtraction of two low-passes. */
    static FirFilter designBandPass(Frequency low, Frequency high,
                                    Frequency sampling, std::size_t taps);

    double step(double x);
    void reset();

    std::vector<double> apply(const std::vector<double> &input);

    const std::vector<double> &taps() const { return _taps; }

    /** Magnitude response at @p freq. */
    double magnitudeAt(Frequency freq, Frequency sampling) const;

  private:
    std::vector<double> _taps;
    std::vector<double> _delay;
    std::size_t _head = 0;
};

} // namespace mindful::signal

#endif // MINDFUL_SIGNAL_FILTERS_HH
