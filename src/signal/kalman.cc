#include "signal/kalman.hh"

#include "base/logging.hh"

namespace mindful::signal {

void
KalmanDecoder::train(const Matrix &states, const Matrix &observations)
{
    const std::size_t m = states.rows();
    const std::size_t n = observations.rows();
    const std::size_t t = states.cols();
    MINDFUL_ASSERT(t >= 3, "Kalman training needs at least 3 bins");
    MINDFUL_ASSERT(observations.cols() == t,
                   "states and observations must share the time axis");

    // X1 = states[:, 0..T-2], X2 = states[:, 1..T-1].
    Matrix x1(m, t - 1), x2(m, t - 1);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j + 1 < t; ++j) {
            x1(i, j) = states(i, j);
            x2(i, j) = states(i, j + 1);
        }
    }

    // A minimizes ||X2 - A X1||: A = X2 X1' (X1 X1' + eps I)^-1.
    Matrix x1t = x1.transpose();
    Matrix gram = x1 * x1t;
    for (std::size_t i = 0; i < m; ++i)
        gram(i, i) += 1e-9;
    _a = (x2 * x1t) * gram.inverse();

    Matrix resid_a = x2 - _a * x1;
    _q = resid_a * resid_a.transpose() * (1.0 / static_cast<double>(t - 1));
    // Keep Q positive definite for the recursion even on degenerate
    // training data.
    for (std::size_t i = 0; i < m; ++i)
        _q(i, i) += 1e-9;

    // H minimizes ||Y - H X||: H = Y X' (X X' + eps I)^-1.
    Matrix xt = states.transpose();
    Matrix gram_x = states * xt;
    for (std::size_t i = 0; i < m; ++i)
        gram_x(i, i) += 1e-9;
    _h = (observations * xt) * gram_x.inverse();

    Matrix resid_h = observations - _h * states;
    _r = resid_h * resid_h.transpose() * (1.0 / static_cast<double>(t));
    for (std::size_t i = 0; i < n; ++i)
        _r(i, i) += 1e-6;

    _trained = true;
    resetState();
}

void
KalmanDecoder::resetState()
{
    MINDFUL_ASSERT(_trained, "decoder must be trained before use");
    _state = Matrix(_a.rows(), 1);
    _covariance = Matrix::identity(_a.rows());
}

std::vector<double>
KalmanDecoder::step(const std::vector<double> &observation)
{
    MINDFUL_ASSERT(_trained, "decoder must be trained before use");
    MINDFUL_ASSERT(observation.size() == _h.rows(),
                   "observation length ", observation.size(),
                   " != expected ", _h.rows());

    // Predict.
    Matrix x_prior = _a * _state;
    Matrix p_prior = _a * _covariance * _a.transpose() + _q;

    // Update: K = P H' (H P H' + R)^-1.
    Matrix ht = _h.transpose();
    Matrix innovation_cov = _h * p_prior * ht + _r;
    Matrix gain = p_prior * ht * innovation_cov.inverse();

    Matrix y = Matrix::columnVector(observation);
    Matrix innovation = y - _h * x_prior;
    _state = x_prior + gain * innovation;
    _covariance =
        (Matrix::identity(_a.rows()) - gain * _h) * p_prior;

    return _state.toVector();
}

Matrix
KalmanDecoder::decode(const Matrix &observations)
{
    MINDFUL_ASSERT(_trained, "decoder must be trained before use");
    resetState();
    Matrix decoded(_a.rows(), observations.cols());
    std::vector<double> column(observations.rows());
    for (std::size_t t = 0; t < observations.cols(); ++t) {
        for (std::size_t i = 0; i < observations.rows(); ++i)
            column[i] = observations(i, t);
        auto estimate = step(column);
        for (std::size_t i = 0; i < estimate.size(); ++i)
            decoded(i, t) = estimate[i];
    }
    return decoded;
}

} // namespace mindful::signal
