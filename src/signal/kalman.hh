/**
 * @file
 * Kalman-filter neural decoder.
 *
 * The linear Kalman filter is the classic BCI decoding algorithm
 * (Wu et al. 2002) and the "traditional algorithm" baseline the paper
 * contrasts with DNN decoders (Secs. 2.3, 5.3). The formulation is
 * the standard neural-prosthesis one:
 *
 *     x_t = A x_{t-1} + w,  w ~ N(0, Q)   (intent kinematics)
 *     y_t = H x_t     + q,  q ~ N(0, R)   (binned spike counts)
 *
 * with (A, Q, H, R) fit by least squares on training data, then the
 * usual predict / update recursion at run time.
 */

#ifndef MINDFUL_SIGNAL_KALMAN_HH
#define MINDFUL_SIGNAL_KALMAN_HH

#include <vector>

#include "base/matrix.hh"

namespace mindful::signal {

/** Trained, runnable Kalman decoder. */
class KalmanDecoder
{
  public:
    KalmanDecoder() = default;

    /**
     * Fit the model.
     *
     * @param states latent intent, one column per time bin (m x T).
     * @param observations features (e.g. binned spike counts), one
     *        column per time bin (n x T). Must share T with states.
     */
    void train(const Matrix &states, const Matrix &observations);

    bool trained() const { return _trained; }

    std::size_t stateDim() const { return _a.rows(); }
    std::size_t observationDim() const { return _h.rows(); }

    /** Reset the filter state to zero mean / unit covariance. */
    void resetState();

    /**
     * One predict + update step.
     * @param observation feature vector for this bin (length n).
     * @return posterior state estimate (length m).
     */
    std::vector<double> step(const std::vector<double> &observation);

    /** Run the filter over a whole session (n x T in, m x T out). */
    Matrix decode(const Matrix &observations);

    const Matrix &transition() const { return _a; }
    const Matrix &processNoise() const { return _q; }
    const Matrix &observationMatrix() const { return _h; }
    const Matrix &observationNoise() const { return _r; }

  private:
    bool _trained = false;
    Matrix _a, _q, _h, _r;
    Matrix _state;      //!< current posterior mean (m x 1)
    Matrix _covariance; //!< current posterior covariance (m x m)
};

} // namespace mindful::signal

#endif // MINDFUL_SIGNAL_KALMAN_HH
