#include "signal/metrics.hh"

#include <cmath>

#include "base/logging.hh"

namespace mindful::signal {

double
pearsonCorrelation(const std::vector<double> &a, const std::vector<double> &b)
{
    MINDFUL_ASSERT(a.size() == b.size() && !a.empty(),
                   "correlation needs equal-length non-empty series");
    const double n = static_cast<double>(a.size());
    double mean_a = 0.0, mean_b = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        mean_a += a[i];
        mean_b += b[i];
    }
    mean_a /= n;
    mean_b /= n;

    double cov = 0.0, var_a = 0.0, var_b = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double da = a[i] - mean_a;
        double db = b[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    double denom = std::sqrt(var_a * var_b);
    return denom > 0.0 ? cov / denom : 0.0;
}

double
rmse(const std::vector<double> &a, const std::vector<double> &b)
{
    MINDFUL_ASSERT(a.size() == b.size() && !a.empty(),
                   "rmse needs equal-length non-empty series");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
}

double
meanRowCorrelation(const Matrix &a, const Matrix &b)
{
    MINDFUL_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                   "matrices must share shape");
    MINDFUL_ASSERT(a.rows() > 0, "matrices must be non-empty");
    double sum = 0.0;
    std::vector<double> row_a(a.cols()), row_b(b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            row_a[c] = a(r, c);
            row_b[c] = b(r, c);
        }
        sum += pearsonCorrelation(row_a, row_b);
    }
    return sum / static_cast<double>(a.rows());
}

double
snrDb(const std::vector<double> &signal, const std::vector<double> &reference)
{
    MINDFUL_ASSERT(signal.size() == reference.size() && !signal.empty(),
                   "snr needs equal-length non-empty series");
    double sig = 0.0, noise = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i) {
        sig += reference[i] * reference[i];
        double d = signal[i] - reference[i];
        noise += d * d;
    }
    if (noise <= 0.0)
        return 300.0; // effectively infinite
    return 10.0 * std::log10(sig / noise);
}

} // namespace mindful::signal
