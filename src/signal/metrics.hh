/**
 * @file
 * Decoder / signal quality metrics.
 */

#ifndef MINDFUL_SIGNAL_METRICS_HH
#define MINDFUL_SIGNAL_METRICS_HH

#include <vector>

#include "base/matrix.hh"

namespace mindful::signal {

/** Pearson correlation coefficient of two equal-length series. */
double pearsonCorrelation(const std::vector<double> &a,
                          const std::vector<double> &b);

/** Root-mean-square error between two equal-length series. */
double rmse(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Mean per-row Pearson correlation between two (m x T) matrices —
 * the standard decoder accuracy summary across intent dimensions.
 */
double meanRowCorrelation(const Matrix &a, const Matrix &b);

/** Signal-to-noise ratio in dB of signal vs (signal - reference). */
double snrDb(const std::vector<double> &signal,
             const std::vector<double> &reference);

} // namespace mindful::signal

#endif // MINDFUL_SIGNAL_METRICS_HH
