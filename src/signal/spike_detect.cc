#include "signal/spike_detect.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mindful::signal {

double
madNoiseEstimate(const std::vector<double> &trace)
{
    MINDFUL_ASSERT(!trace.empty(), "noise estimate needs samples");
    std::vector<double> magnitudes;
    magnitudes.reserve(trace.size());
    for (double v : trace)
        magnitudes.push_back(std::abs(v));
    auto mid = magnitudes.begin() +
               static_cast<std::ptrdiff_t>(magnitudes.size() / 2);
    std::nth_element(magnitudes.begin(), mid, magnitudes.end());
    return *mid / 0.6745;
}

namespace {

/**
 * Shared peak-picking walk: scan a criterion trace against a
 * threshold, report the extremum of each crossing, and honour the
 * refractory dead time.
 */
std::vector<SpikeEvent>
pickPeaks(const std::vector<double> &criterion,
          const std::vector<double> &trace, double threshold,
          bool negative_going, std::size_t refractory)
{
    std::vector<SpikeEvent> events;
    std::size_t i = 0;
    const std::size_t n = criterion.size();
    while (i < n) {
        bool crossed = negative_going ? criterion[i] <= -threshold
                                      : criterion[i] >= threshold;
        if (!crossed) {
            ++i;
            continue;
        }
        // Walk the suprathreshold excursion to its extremum.
        std::size_t peak = i;
        std::size_t j = i;
        while (j < n) {
            bool still = negative_going ? criterion[j] <= -threshold
                                        : criterion[j] >= threshold;
            if (!still)
                break;
            bool better = negative_going
                              ? criterion[j] < criterion[peak]
                              : criterion[j] > criterion[peak];
            if (better)
                peak = j;
            ++j;
        }
        events.push_back({peak, trace[peak]});
        i = std::max(j, peak + refractory);
    }
    return events;
}

} // namespace

ThresholdDetector::ThresholdDetector(SpikeDetectorConfig config)
    : _config(config)
{
    MINDFUL_ASSERT(config.thresholdSigmas > 0.0,
                   "threshold must be positive");
}

std::vector<SpikeEvent>
ThresholdDetector::detect(const std::vector<double> &trace) const
{
    if (trace.empty())
        return {};
    double sigma = madNoiseEstimate(trace);
    if (sigma <= 0.0)
        return {};
    double threshold = _config.thresholdSigmas * sigma;
    return pickPeaks(trace, trace, threshold, _config.negativeGoing,
                     _config.refractorySamples);
}

NeoDetector::NeoDetector(SpikeDetectorConfig config) : _config(config)
{
    MINDFUL_ASSERT(config.thresholdSigmas > 0.0,
                   "threshold must be positive");
}

std::vector<double>
NeoDetector::energy(const std::vector<double> &trace)
{
    std::vector<double> psi(trace.size(), 0.0);
    for (std::size_t i = 1; i + 1 < trace.size(); ++i)
        psi[i] = trace[i] * trace[i] - trace[i - 1] * trace[i + 1];
    return psi;
}

std::vector<SpikeEvent>
NeoDetector::detect(const std::vector<double> &trace) const
{
    if (trace.size() < 3)
        return {};
    std::vector<double> psi = energy(trace);

    // NEO output is one-sided; threshold at a multiple of its mean
    // (the conventional choice: spikes lift psi orders of magnitude
    // above the noise energy).
    double mean = 0.0;
    for (double v : psi)
        mean += v;
    mean /= static_cast<double>(psi.size());
    double threshold = _config.thresholdSigmas * std::max(mean, 1e-12);

    return pickPeaks(psi, trace, threshold, /*negative_going=*/false,
                     _config.refractorySamples);
}

} // namespace mindful::signal
