/**
 * @file
 * Spike detection and activity measurement.
 *
 * On-implant spike detection is the canonical "hardware-efficient
 * method to detect patterns in neural activity" the paper cites as an
 * alternative to streaming raw data, and it feeds the channel-dropout
 * optimization (Sec. 6.2): channels with no detectable spiking can be
 * dropped from computation. Two detectors are provided:
 *
 *  - an adaptive amplitude-threshold detector (threshold set as a
 *    multiple of the noise level estimated via the median absolute
 *    deviation, the standard Quiroga estimator);
 *  - a nonlinear-energy-operator (NEO / Teager) detector, which is
 *    what small ASIC detectors typically implement.
 */

#ifndef MINDFUL_SIGNAL_SPIKE_DETECT_HH
#define MINDFUL_SIGNAL_SPIKE_DETECT_HH

#include <cstddef>
#include <vector>

#include "base/units.hh"

namespace mindful::signal {

/** Noise level estimate sigma = median(|x|) / 0.6745 (Quiroga). */
double madNoiseEstimate(const std::vector<double> &trace);

/** One detected spike event. */
struct SpikeEvent
{
    std::size_t sampleIndex = 0; //!< index of the detected peak
    double amplitude = 0.0;      //!< signed peak amplitude (uV)
};

/** Configuration shared by both detectors. */
struct SpikeDetectorConfig
{
    /** Detection threshold in noise sigmas. */
    double thresholdSigmas = 4.5;

    /** Dead time after a detection [samples]. */
    std::size_t refractorySamples = 16;

    /** Detect negative-going spikes (extracellular convention). */
    bool negativeGoing = true;
};

/** Adaptive amplitude-threshold detector. */
class ThresholdDetector
{
  public:
    explicit ThresholdDetector(SpikeDetectorConfig config = {});

    /**
     * Detect spikes in a (spike-band-filtered) trace. The threshold
     * is derived from the trace's own MAD noise estimate.
     */
    std::vector<SpikeEvent> detect(const std::vector<double> &trace) const;

    const SpikeDetectorConfig &config() const { return _config; }

  private:
    SpikeDetectorConfig _config;
};

/** Nonlinear-energy-operator detector: psi[n] = x[n]^2 - x[n-1]x[n+1]. */
class NeoDetector
{
  public:
    explicit NeoDetector(SpikeDetectorConfig config = {});

    /** NEO trace of @p trace (same length; ends are zero). */
    static std::vector<double> energy(const std::vector<double> &trace);

    std::vector<SpikeEvent> detect(const std::vector<double> &trace) const;

    const SpikeDetectorConfig &config() const { return _config; }

  private:
    SpikeDetectorConfig _config;
};

} // namespace mindful::signal

#endif // MINDFUL_SIGNAL_SPIKE_DETECT_HH
