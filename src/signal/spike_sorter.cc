#include "signal/spike_sorter.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "exec/parallel.hh"

namespace mindful::signal {

std::vector<Snippet>
extractSnippets(const std::vector<double> &trace,
                const std::vector<SpikeEvent> &events, std::size_t pre,
                std::size_t post)
{
    std::vector<Snippet> snippets;
    snippets.reserve(events.size());
    for (const auto &event : events) {
        if (event.sampleIndex < pre ||
            event.sampleIndex + post >= trace.size())
            continue;
        Snippet snippet;
        snippet.reserve(pre + post + 1);
        for (std::size_t s = event.sampleIndex - pre;
             s <= event.sampleIndex + post; ++s)
            snippet.push_back(trace[s]);
        snippets.push_back(std::move(snippet));
    }
    return snippets;
}

namespace {

double
squaredDistance(const Snippet &a, const Snippet &b)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

} // namespace

TemplateSpikeSorter::TemplateSpikeSorter(SpikeSorterConfig config)
    : _config(config)
{
    MINDFUL_ASSERT(config.units >= 1, "need at least one template");
    MINDFUL_ASSERT(config.rejectionSigmas > 0.0,
                   "rejection threshold must be positive");
}

void
TemplateSpikeSorter::train(const std::vector<Snippet> &snippets)
{
    MINDFUL_ASSERT(snippets.size() >= _config.units,
                   "need at least as many snippets (", snippets.size(),
                   ") as templates (", _config.units, ")");
    _snippetLength = snippets.front().size();
    MINDFUL_ASSERT(_snippetLength > 0, "snippets must be non-empty");
    for (const auto &snippet : snippets)
        MINDFUL_ASSERT(snippet.size() == _snippetLength,
                       "all snippets must share one length");

    // k-means with probabilistic k-means++ seeding and a few
    // restarts, keeping the lowest-inertia solution. Probabilistic
    // seeding (next centre drawn with probability ~ D^2) is robust
    // against the handful of misaligned outlier snippets real
    // detections produce, which deterministic farthest-point seeding
    // would latch onto.
    //
    // Each restart draws from its own forked stream (never from raw
    // bits() of a shared engine) and runs as an independent shard on
    // the process-wide pool; the winner is the lowest inertia with
    // the lowest attempt index breaking ties, so the result is
    // identical on any thread count.
    const Rng base_rng(_config.seed);
    const std::size_t restarts = 4;

    struct Attempt
    {
        double inertia = std::numeric_limits<double>::infinity();
        std::vector<Snippet> centres;
        std::vector<std::size_t> assignment;
        std::vector<double> weight;      // k-means++ scratch
        std::vector<Snippet> sums;       // Lloyd accumulation scratch
        std::vector<std::size_t> counts; // Lloyd accumulation scratch
    };
    std::vector<Attempt> attempts(restarts);
    // Every container a restart touches is sized here, before the
    // shards run; the shard bodies only write in place. Keeps the
    // whole k-means loop allocation-free on the pool (the analyzer's
    // hot-path check holds the line).
    for (auto &attempt : attempts) {
        attempt.centres.assign(_config.units,
                               Snippet(_snippetLength, 0.0));
        attempt.assignment.assign(snippets.size(), 0);
        attempt.weight.assign(snippets.size(), 0.0);
        attempt.sums.assign(_config.units,
                            Snippet(_snippetLength, 0.0));
        attempt.counts.assign(_config.units, 0);
    }

    auto run_attempt = [&](std::size_t attempt_index) {
        Attempt &attempt = attempts[attempt_index];
        std::vector<Snippet> &centres = attempt.centres;
        std::vector<std::size_t> &assignment = attempt.assignment;
        std::vector<double> &weight = attempt.weight;
        std::vector<Snippet> &sums = attempt.sums;
        std::vector<std::size_t> &counts = attempt.counts;

        Rng rng = base_rng.fork(attempt_index);
        centres[0] = snippets[static_cast<std::size_t>(
            rng.uniformInt(0,
                           static_cast<std::int64_t>(snippets.size()) -
                               1))];
        for (std::size_t seeded = 1; seeded < _config.units; ++seeded) {
            double total_weight = 0.0;
            for (std::size_t i = 0; i < snippets.size(); ++i) {
                double nearest =
                    std::numeric_limits<double>::infinity();
                for (std::size_t u = 0; u < seeded; ++u)
                    nearest = std::min(
                        nearest,
                        squaredDistance(snippets[i], centres[u]));
                weight[i] = nearest;
                total_weight += nearest;
            }
            double draw = rng.uniform(0.0, std::max(total_weight, 1e-30));
            std::size_t chosen = snippets.size() - 1;
            double acc = 0.0;
            for (std::size_t i = 0; i < snippets.size(); ++i) {
                acc += weight[i];
                if (acc >= draw) {
                    chosen = i;
                    break;
                }
            }
            centres[seeded] = snippets[chosen];
        }

        // Lloyd iterations.
        for (std::size_t iter = 0; iter < _config.kmeansIterations;
             ++iter) {
            bool changed = false;
            for (std::size_t i = 0; i < snippets.size(); ++i) {
                std::size_t best = 0;
                double best_distance =
                    std::numeric_limits<double>::infinity();
                for (std::size_t u = 0; u < centres.size(); ++u) {
                    double d = squaredDistance(snippets[i], centres[u]);
                    if (d < best_distance) {
                        best_distance = d;
                        best = u;
                    }
                }
                if (assignment[i] != best) {
                    assignment[i] = best;
                    changed = true;
                }
            }

            for (auto &sum : sums)
                std::fill(sum.begin(), sum.end(), 0.0);
            std::fill(counts.begin(), counts.end(), 0);
            for (std::size_t i = 0; i < snippets.size(); ++i) {
                for (std::size_t s = 0; s < _snippetLength; ++s)
                    sums[assignment[i]][s] += snippets[i][s];
                ++counts[assignment[i]];
            }
            for (std::size_t u = 0; u < centres.size(); ++u) {
                if (counts[u] == 0) {
                    centres[u] = snippets[static_cast<std::size_t>(
                        rng.uniformInt(
                            0, static_cast<std::int64_t>(
                                   snippets.size()) -
                                   1))];
                    changed = true;
                    continue;
                }
                for (std::size_t s = 0; s < _snippetLength; ++s)
                    centres[u][s] =
                        sums[u][s] / static_cast<double>(counts[u]);
            }
            if (!changed && iter > 0)
                break;
        }

        double inertia = 0.0;
        for (std::size_t i = 0; i < snippets.size(); ++i)
            inertia +=
                squaredDistance(snippets[i], centres[assignment[i]]);
        attempt.inertia = inertia;
    };

    exec::parallelFor(restarts, run_attempt, "signal.kmeans.restart");

    // Deterministic winner: strict < scanned in attempt order keeps
    // the lowest attempt index on inertia ties.
    std::size_t best = 0;
    for (std::size_t attempt = 1; attempt < restarts; ++attempt) {
        if (attempts[attempt].inertia < attempts[best].inertia)
            best = attempt;
    }
    std::vector<std::size_t> best_assignment =
        std::move(attempts[best].assignment);
    _templates = std::move(attempts[best].centres);

    // Noise scale: mean within-cluster distance (for the rejection
    // rule). Guard against degenerate zero-noise training sets.
    double total = 0.0;
    for (std::size_t i = 0; i < snippets.size(); ++i)
        total += std::sqrt(
            squaredDistance(snippets[i], _templates[best_assignment[i]]));
    _noiseScale = std::max(
        total / static_cast<double>(snippets.size()), 1e-9);
}

double
TemplateSpikeSorter::distanceTo(const Snippet &snippet,
                                std::size_t unit) const
{
    return std::sqrt(squaredDistance(snippet, _templates[unit]));
}

SortedSpike
TemplateSpikeSorter::classify(const Snippet &snippet) const
{
    MINDFUL_ASSERT(trained(), "sorter must be trained before use");
    MINDFUL_ASSERT(snippet.size() == _snippetLength,
                   "snippet length ", snippet.size(), " != trained length ",
                   _snippetLength);

    SortedSpike result;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < _templates.size(); ++u) {
        double d = distanceTo(snippet, u);
        if (d < best) {
            best = d;
            result.unit = static_cast<int>(u);
        }
    }
    result.distance = best;
    if (best > _config.rejectionSigmas * _noiseScale)
        result.unit = -1;
    return result;
}

std::vector<SortedSpike>
TemplateSpikeSorter::classify(const std::vector<Snippet> &snippets) const
{
    std::vector<SortedSpike> results;
    results.reserve(snippets.size());
    for (const auto &snippet : snippets)
        results.push_back(classify(snippet));
    return results;
}

} // namespace mindful::signal
