/**
 * @file
 * Template-matching spike sorter.
 *
 * Spike sorting — assigning detected spikes to putative single
 * neurons by waveform shape — is the canonical on-implant data
 * reduction the paper cites (Lewicki 1998; Sec. 6.2): transmitting
 * sorted unit labels instead of waveforms collapses the data rate.
 * This module implements the hardware-friendly variant: k-means
 * template learning followed by nearest-template classification, the
 * same structure as ASIC template-matching engines (NOEMA-style).
 */

#ifndef MINDFUL_SIGNAL_SPIKE_SORTER_HH
#define MINDFUL_SIGNAL_SPIKE_SORTER_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "signal/spike_detect.hh"

namespace mindful::signal {

/** A fixed-length waveform snippet around a detected spike. */
using Snippet = std::vector<double>;

/**
 * Cut aligned snippets around detected events.
 *
 * @param trace the (filtered) signal.
 * @param events detections; events too close to either end of the
 *        trace for a full window are skipped.
 * @param pre samples before the peak.
 * @param post samples after the peak (window = pre + post + 1).
 */
std::vector<Snippet> extractSnippets(const std::vector<double> &trace,
                                     const std::vector<SpikeEvent> &events,
                                     std::size_t pre, std::size_t post);

/** Sorter configuration. */
struct SpikeSorterConfig
{
    /** Number of templates (putative units) to learn. */
    std::size_t units = 2;

    /** k-means refinement iterations. */
    std::size_t kmeansIterations = 16;

    /**
     * Snippets farther than this many noise-sigmas (RMS distance)
     * from every template classify as unsorted (-1).
     */
    double rejectionSigmas = 6.0;

    /** Seed for the deterministic k-means++ style initialization. */
    std::uint64_t seed = 0x736f7274ull;
};

/** Classification result for one snippet. */
struct SortedSpike
{
    /** Template index, or -1 for unsorted (outlier) snippets. */
    int unit = -1;

    /** Euclidean distance to the winning template. */
    double distance = 0.0;
};

/** k-means template learner + nearest-template classifier. */
class TemplateSpikeSorter
{
  public:
    explicit TemplateSpikeSorter(SpikeSorterConfig config = {});

    const SpikeSorterConfig &config() const { return _config; }

    /**
     * Learn templates from training snippets (all must share one
     * length; needs at least config().units snippets).
     */
    void train(const std::vector<Snippet> &snippets);

    bool trained() const { return !_templates.empty(); }
    std::size_t snippetLength() const { return _snippetLength; }

    /** Learned templates, one per unit. */
    const std::vector<Snippet> &templates() const { return _templates; }

    /** Classify one snippet against the learned templates. */
    SortedSpike classify(const Snippet &snippet) const;

    /** Classify a batch. */
    std::vector<SortedSpike>
    classify(const std::vector<Snippet> &snippets) const;

    /**
     * Estimated noise scale used by the rejection rule (mean
     * within-cluster RMS distance after training).
     */
    double noiseScale() const { return _noiseScale; }

  private:
    double distanceTo(const Snippet &snippet, std::size_t unit) const;

    SpikeSorterConfig _config;
    std::size_t _snippetLength = 0;
    std::vector<Snippet> _templates;
    double _noiseScale = 0.0;
};

} // namespace mindful::signal

#endif // MINDFUL_SIGNAL_SPIKE_SORTER_HH
