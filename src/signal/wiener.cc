#include "signal/wiener.hh"

#include "base/logging.hh"

namespace mindful::signal {

WienerDecoder::WienerDecoder(std::size_t lags, double ridge)
    : _lags(lags), _ridge(ridge)
{
    MINDFUL_ASSERT(lags >= 1, "Wiener decoder needs at least one lag");
    MINDFUL_ASSERT(ridge >= 0.0, "ridge strength must be non-negative");
}

void
WienerDecoder::train(const Matrix &states, const Matrix &observations)
{
    const std::size_t m = states.rows();
    const std::size_t n = observations.rows();
    const std::size_t t = states.cols();
    MINDFUL_ASSERT(observations.cols() == t,
                   "states and observations must share the time axis");
    MINDFUL_ASSERT(t > _lags + 1, "not enough bins for the requested lags");

    _stateDim = m;
    _obsDim = n;

    // Design matrix: rows are usable time bins (t >= L-1), columns
    // are [y_t; y_{t-1}; ...; y_{t-L+1}; 1].
    const std::size_t usable = t - (_lags - 1);
    const std::size_t width = n * _lags + 1;
    Matrix design(usable, width);
    Matrix target(usable, m);
    for (std::size_t row = 0; row < usable; ++row) {
        std::size_t bin = row + (_lags - 1);
        for (std::size_t lag = 0; lag < _lags; ++lag)
            for (std::size_t i = 0; i < n; ++i)
                design(row, lag * n + i) = observations(i, bin - lag);
        design(row, width - 1) = 1.0;
        for (std::size_t i = 0; i < m; ++i)
            target(row, i) = states(i, bin);
    }

    // Ridge least squares; weights stored transposed (m x width).
    _weights = design.leastSquares(target, _ridge).transpose();
    _trained = true;
    resetState();
}

void
WienerDecoder::resetState()
{
    _history.clear();
}

std::vector<double>
WienerDecoder::step(const std::vector<double> &observation)
{
    MINDFUL_ASSERT(_trained, "decoder must be trained before use");
    MINDFUL_ASSERT(observation.size() == _obsDim,
                   "observation length mismatch");

    _history.push_front(observation);
    if (_history.size() > _lags)
        _history.pop_back();

    std::vector<double> estimate(_stateDim, 0.0);
    for (std::size_t d = 0; d < _stateDim; ++d) {
        double acc = _weights(d, _obsDim * _lags); // bias column
        for (std::size_t lag = 0; lag < _history.size(); ++lag)
            for (std::size_t i = 0; i < _obsDim; ++i)
                acc += _weights(d, lag * _obsDim + i) * _history[lag][i];
        estimate[d] = acc;
    }
    return estimate;
}

Matrix
WienerDecoder::decode(const Matrix &observations)
{
    MINDFUL_ASSERT(_trained, "decoder must be trained before use");
    resetState();
    Matrix decoded(_stateDim, observations.cols());
    std::vector<double> column(observations.rows());
    for (std::size_t t = 0; t < observations.cols(); ++t) {
        for (std::size_t i = 0; i < observations.rows(); ++i)
            column[i] = observations(i, t);
        auto estimate = step(column);
        for (std::size_t i = 0; i < estimate.size(); ++i)
            decoded(i, t) = estimate[i];
    }
    return decoded;
}

} // namespace mindful::signal
