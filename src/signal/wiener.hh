/**
 * @file
 * Wiener-filter (lagged linear regression) neural decoder.
 *
 * The Wiener filter is the second "traditional algorithm" the paper
 * names alongside the Kalman filter (Sec. 2.3). The decoder forms
 *
 *     x_t = b + sum_{l=0}^{L-1} W_l y_{t-l}
 *
 * with the weight matrices fit jointly by ridge-regularized least
 * squares on training data.
 */

#ifndef MINDFUL_SIGNAL_WIENER_HH
#define MINDFUL_SIGNAL_WIENER_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "base/matrix.hh"

namespace mindful::signal {

/** Trained, runnable Wiener decoder. */
class WienerDecoder
{
  public:
    /**
     * @param lags number of past observation bins used per estimate
     *             (L >= 1; L == 1 is plain linear regression).
     * @param ridge Tikhonov regularization strength.
     */
    explicit WienerDecoder(std::size_t lags = 5, double ridge = 1e-6);

    /**
     * Fit the filter.
     * @param states latent intent (m x T).
     * @param observations features (n x T), same T.
     */
    void train(const Matrix &states, const Matrix &observations);

    bool trained() const { return _trained; }
    std::size_t lags() const { return _lags; }
    std::size_t stateDim() const { return _stateDim; }
    std::size_t observationDim() const { return _obsDim; }

    /** Clear the internal lag buffer. */
    void resetState();

    /**
     * Feed one observation bin; returns the current estimate (the
     * lag buffer is zero-padded until it fills).
     */
    std::vector<double> step(const std::vector<double> &observation);

    /** Run over a whole session (n x T in, m x T out). */
    Matrix decode(const Matrix &observations);

    /** Stacked weight matrix (m x (n*L + 1), last column = bias). */
    const Matrix &weights() const { return _weights; }

  private:
    std::size_t _lags;
    double _ridge;
    bool _trained = false;
    std::size_t _stateDim = 0;
    std::size_t _obsDim = 0;
    Matrix _weights;
    std::deque<std::vector<double>> _history;
};

} // namespace mindful::signal

#endif // MINDFUL_SIGNAL_WIENER_HH
