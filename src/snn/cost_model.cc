#include "snn/cost_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mindful::snn {

SnnCostModel::SnnCostModel(SnnCostParams params) : _params(params)
{
    MINDFUL_ASSERT(_params.energyPerSynOp.inJoules() > 0.0,
                   "synaptic-op energy must be positive");
    MINDFUL_ASSERT(_params.leakPerNeuron.inWatts() >= 0.0,
                   "neuron leak must be non-negative");
}

Power
SnnCostModel::power(double synops_per_second, std::size_t neurons) const
{
    MINDFUL_ASSERT(synops_per_second >= 0.0,
                   "synop rate must be non-negative");
    return Power::watts(synops_per_second *
                        _params.energyPerSynOp.inJoules()) +
           _params.leakPerNeuron * static_cast<double>(neurons);
}

Power
SnnCostModel::power(const SpikingNetwork &network,
                    const SnnRunStats &stats) const
{
    std::size_t neurons = 0;
    for (std::size_t i = 0; i < network.layerCount(); ++i)
        neurons += network.layer(i).neurons();
    return power(stats.synapticOpsPerSecond(), neurons);
}

std::vector<dnn::MacCensus>
SnnCostModel::expectedCensus(std::size_t inputs,
                             const std::vector<std::size_t> &layer_sizes,
                             double activity, std::size_t steps)
{
    MINDFUL_ASSERT(inputs > 0, "need at least one input");
    MINDFUL_ASSERT(!layer_sizes.empty(), "need at least one layer");
    MINDFUL_ASSERT(activity > 0.0 && activity <= 1.0,
                   "activity must lie in (0, 1]");
    MINDFUL_ASSERT(steps > 0, "window must span at least one step");

    std::vector<dnn::MacCensus> census;
    std::size_t fan_in = inputs;
    for (std::size_t neurons : layer_sizes) {
        auto active_inputs = static_cast<std::uint64_t>(std::llround(
            std::max(1.0, activity * static_cast<double>(fan_in))));
        census.push_back(
            {static_cast<std::uint64_t>(neurons),
             active_inputs * static_cast<std::uint64_t>(steps)});
        fan_in = neurons;
    }
    return census;
}

} // namespace mindful::snn
