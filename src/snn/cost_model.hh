/**
 * @file
 * Event-driven power model for on-implant SNNs.
 *
 * An SNN accelerator spends energy per *synaptic event* (one weight
 * fetch + accumulate when a pre-synaptic spike arrives) plus a static
 * leak per instantiated neuron, so its power follows measured spike
 * activity instead of layer dimensions:
 *
 *     P = synops/s * E_synop + neurons * P_leak
 *
 * Coefficients default to digital neuromorphic-core values at the
 * same 45 nm class as the paper's MAC (a synaptic accumulate is
 * cheaper than a full 8-bit MAC). The census adapter expresses an
 * expected-activity SNN as Eq. 10 stages so the framework's
 * lower-bound machinery can compare it directly with the DNNs.
 */

#ifndef MINDFUL_SNN_COST_MODEL_HH
#define MINDFUL_SNN_COST_MODEL_HH

#include "base/units.hh"
#include "dnn/mac_census.hh"
#include "snn/lif.hh"

namespace mindful::snn {

/** Accelerator coefficients for the event-driven cost law. */
struct SnnCostParams
{
    /** Energy per synaptic operation (fetch + accumulate). */
    Energy energyPerSynOp = Energy::picojoules(0.03);

    /** Static power per instantiated neuron circuit. */
    Power leakPerNeuron = Power::nanowatts(15.0);
};

/** Event-driven SNN power model. */
class SnnCostModel
{
  public:
    explicit SnnCostModel(SnnCostParams params = {});

    const SnnCostParams &params() const { return _params; }

    /** Power for a measured activity level. */
    Power power(double synops_per_second, std::size_t neurons) const;

    /** Power for a simulated window of a concrete network. */
    Power power(const SpikingNetwork &network,
                const SnnRunStats &stats) const;

    /**
     * Expected-activity census of one inference window: each layer
     * contributes #MAC_op = its neuron count and MAC_seq = the
     * expected number of *active* inputs per step times the window
     * steps (sparse accumulation instead of dense MACs).
     *
     * @param layer_sizes neurons per layer (front = first hidden).
     * @param inputs network input count.
     * @param activity fraction of inputs/neurons spiking per step.
     * @param steps time steps per inference window.
     */
    static std::vector<dnn::MacCensus>
    expectedCensus(std::size_t inputs,
                   const std::vector<std::size_t> &layer_sizes,
                   double activity, std::size_t steps);

  private:
    SnnCostParams _params;
};

} // namespace mindful::snn

#endif // MINDFUL_SNN_COST_MODEL_HH
