#include "snn/lif.hh"

#include <cmath>

#include "base/logging.hh"

namespace mindful::snn {

LifLayer::LifLayer(std::size_t inputs, std::size_t neurons,
                   LifParams params)
    : _inputs(inputs), _neurons(neurons), _params(params),
      _weights(inputs * neurons, 0.0), _potential(neurons, 0.0),
      _refractoryLeft(neurons, 0.0)
{
    MINDFUL_ASSERT(inputs > 0 && neurons > 0,
                   "LIF layer dimensions must be positive");
    MINDFUL_ASSERT(params.tauMembrane > 0.0,
                   "membrane time constant must be positive");
    MINDFUL_ASSERT(params.threshold > params.resetPotential,
                   "threshold must exceed the reset potential");
    MINDFUL_ASSERT(params.refractory >= 0.0,
                   "refractory period must be non-negative");
}

void
LifLayer::initializeWeights(Rng &rng, double scale)
{
    MINDFUL_ASSERT(scale > 0.0, "weight scale must be positive");
    // Mean total drive per step ~ scale * threshold when a handful of
    // inputs are active; uniform positive weights keep the layer
    // excitatory (the common feed-forward rate-coding setup).
    double mean = scale * _params.threshold /
                  std::max(1.0, std::sqrt(static_cast<double>(_inputs)));
    for (auto &w : _weights)
        w = rng.uniform(0.0, 2.0 * mean);
}

std::vector<std::uint8_t>
LifLayer::step(const std::vector<std::uint8_t> &input_spikes, double dt)
{
    MINDFUL_ASSERT(input_spikes.size() == _inputs,
                   "input spike vector length ", input_spikes.size(),
                   " != layer inputs ", _inputs);
    MINDFUL_ASSERT(dt > 0.0, "time step must be positive");

    const double decay = std::exp(-dt / _params.tauMembrane);

    // Gather active inputs once: event-driven cost accounting.
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < _inputs; ++i)
        if (input_spikes[i])
            active.push_back(i);

    std::vector<std::uint8_t> output(_neurons, 0);
    for (std::size_t n = 0; n < _neurons; ++n) {
        if (_refractoryLeft[n] > 0.0) {
            _refractoryLeft[n] -= dt;
            continue;
        }
        double v = _potential[n] * decay;
        const double *row = _weights.data() + n * _inputs;
        for (std::size_t i : active)
            v += row[i];
        _synapticOps += active.size();

        if (v >= _params.threshold) {
            output[n] = 1;
            ++_spikesEmitted;
            v = _params.resetPotential;
            _refractoryLeft[n] = _params.refractory;
        }
        _potential[n] = v;
    }
    return output;
}

void
LifLayer::resetState()
{
    std::fill(_potential.begin(), _potential.end(), 0.0);
    std::fill(_refractoryLeft.begin(), _refractoryLeft.end(), 0.0);
}

double
LifLayer::potential(std::size_t neuron) const
{
    MINDFUL_ASSERT(neuron < _neurons, "neuron index out of range");
    return _potential[neuron];
}

SpikingNetwork::SpikingNetwork(std::size_t inputs) : _inputs(inputs)
{
    MINDFUL_ASSERT(inputs > 0, "network needs at least one input");
}

LifLayer &
SpikingNetwork::layer(std::size_t i)
{
    MINDFUL_ASSERT(i < _layers.size(), "layer index out of range");
    return _layers[i];
}

const LifLayer &
SpikingNetwork::layer(std::size_t i) const
{
    MINDFUL_ASSERT(i < _layers.size(), "layer index out of range");
    return _layers[i];
}

std::size_t
SpikingNetwork::outputs() const
{
    MINDFUL_ASSERT(!_layers.empty(), "network has no layers");
    return _layers.back().neurons();
}

LifLayer &
SpikingNetwork::addLayer(std::size_t neurons, LifParams params)
{
    std::size_t fan_in =
        _layers.empty() ? _inputs : _layers.back().neurons();
    _layers.emplace_back(fan_in, neurons, params);
    return _layers.back();
}

void
SpikingNetwork::initializeWeights(Rng &rng, double scale)
{
    for (auto &layer : _layers)
        layer.initializeWeights(rng, scale);
}

void
SpikingNetwork::resetState()
{
    for (auto &layer : _layers)
        layer.resetState();
}

std::vector<std::uint8_t>
SpikingNetwork::step(const std::vector<std::uint8_t> &input_spikes,
                     double dt)
{
    MINDFUL_ASSERT(!_layers.empty(), "network has no layers");
    std::vector<std::uint8_t> spikes = input_spikes;
    for (auto &layer : _layers)
        spikes = layer.step(spikes, dt);
    return spikes;
}

SnnRunStats
SpikingNetwork::run(const std::vector<std::vector<std::uint8_t>> &raster,
                    double dt)
{
    MINDFUL_ASSERT(!raster.empty(), "raster must not be empty");

    SnnRunStats stats;
    stats.steps = raster.size();
    stats.duration = dt * static_cast<double>(raster.size());
    stats.outputCounts.assign(outputs(), 0);

    std::uint64_t ops_before = 0;
    for (const auto &layer : _layers)
        ops_before += layer.synapticOps();

    for (const auto &input : raster) {
        for (std::uint8_t s : input)
            stats.inputSpikes += s;
        auto out = step(input, dt);
        for (std::size_t n = 0; n < out.size(); ++n) {
            stats.outputCounts[n] += out[n];
            stats.outputSpikes += out[n];
        }
    }

    std::uint64_t ops_after = 0;
    for (const auto &layer : _layers)
        ops_after += layer.synapticOps();
    stats.synapticOps = ops_after - ops_before;
    return stats;
}

std::uint64_t
SpikingNetwork::totalSynapses() const
{
    std::uint64_t total = 0;
    for (const auto &layer : _layers)
        total += layer.weights().size();
    return total;
}

} // namespace mindful::snn
