/**
 * @file
 * Leaky integrate-and-fire (LIF) spiking neural substrate.
 *
 * The paper's related work (Hueber et al.) finds SNNs attractive for
 * closed-loop BCIs because their event-driven cost scales with spike
 * *activity* rather than layer size, and the paper names SNN support
 * as planned future work (Sec. 7). This module provides the
 * substrate: discrete-time LIF layers with weight matrices, exact
 * synaptic-operation accounting, and a feed-forward SpikingNetwork
 * container. The companion cost model (snn/cost_model.hh) converts
 * measured activity into implant power for the framework.
 *
 * Dynamics per step (dt):
 *     v <- v * exp(-dt / tau) + sum_{i in active inputs} w[n][i]
 *     spike if v >= threshold, then v <- reset, refractory for t_ref.
 */

#ifndef MINDFUL_SNN_LIF_HH
#define MINDFUL_SNN_LIF_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"

namespace mindful::snn {

/** LIF neuron parameters (SI units). */
struct LifParams
{
    /** Membrane leak time constant [s]. */
    double tauMembrane = 20e-3;

    /** Firing threshold (dimensionless membrane units). */
    double threshold = 1.0;

    /** Post-spike reset potential. */
    double resetPotential = 0.0;

    /** Absolute refractory period [s]. */
    double refractory = 2e-3;
};

/** One fully-connected LIF layer. */
class LifLayer
{
  public:
    LifLayer(std::size_t inputs, std::size_t neurons,
             LifParams params = {});

    std::size_t inputs() const { return _inputs; }
    std::size_t neurons() const { return _neurons; }
    const LifParams &params() const { return _params; }

    /** Row-major weights [neuron][input]. */
    std::vector<double> &weights() { return _weights; }
    const std::vector<double> &weights() const { return _weights; }

    /**
     * Randomize weights: positive, scaled so that an input firing at
     * @p expected_rate Hz drives the neuron near threshold.
     */
    void initializeWeights(Rng &rng, double scale);

    /**
     * Advance one time step.
     * @param input_spikes one flag per input (1 = spiked this step).
     * @param dt step length [s].
     * @return one flag per neuron.
     */
    std::vector<std::uint8_t>
    step(const std::vector<std::uint8_t> &input_spikes, double dt);

    /** Reset membrane state and refractory clocks (not counters). */
    void resetState();

    /** Synaptic operations (weight accumulations) since creation. */
    std::uint64_t synapticOps() const { return _synapticOps; }

    /** Spikes emitted since creation. */
    std::uint64_t spikesEmitted() const { return _spikesEmitted; }

    /** Membrane potential of one neuron (for tests). */
    double potential(std::size_t neuron) const;

  private:
    std::size_t _inputs;
    std::size_t _neurons;
    LifParams _params;
    std::vector<double> _weights;
    std::vector<double> _potential;
    std::vector<double> _refractoryLeft;
    std::uint64_t _synapticOps = 0;
    std::uint64_t _spikesEmitted = 0;
};

/** Summary of one simulated window. */
struct SnnRunStats
{
    std::size_t steps = 0;
    double duration = 0.0;               //!< [s]
    std::uint64_t inputSpikes = 0;
    std::uint64_t synapticOps = 0;
    std::uint64_t outputSpikes = 0;
    std::vector<std::uint64_t> outputCounts; //!< per output neuron

    /** Synaptic operations per second over the window. */
    double
    synapticOpsPerSecond() const
    {
        return duration > 0.0
                   ? static_cast<double>(synapticOps) / duration
                   : 0.0;
    }
};

/** Feed-forward stack of LIF layers. */
class SpikingNetwork
{
  public:
    explicit SpikingNetwork(std::size_t inputs);

    std::size_t inputs() const { return _inputs; }
    std::size_t layerCount() const { return _layers.size(); }
    LifLayer &layer(std::size_t i);
    const LifLayer &layer(std::size_t i) const;
    std::size_t outputs() const;

    /** Append a layer of @p neurons with the given parameters. */
    LifLayer &addLayer(std::size_t neurons, LifParams params = {});

    void initializeWeights(Rng &rng, double scale = 1.0);
    void resetState();

    /** Advance one step; returns the final layer's spikes. */
    std::vector<std::uint8_t>
    step(const std::vector<std::uint8_t> &input_spikes, double dt);

    /**
     * Run a whole input raster (step-major: raster[t] is the input
     * spike vector at step t) and collect statistics.
     */
    SnnRunStats
    run(const std::vector<std::vector<std::uint8_t>> &raster, double dt);

    /** Total synapses (weights) in the network. */
    std::uint64_t totalSynapses() const;

  private:
    std::size_t _inputs;
    std::vector<LifLayer> _layers;
};

} // namespace mindful::snn

#endif // MINDFUL_SNN_LIF_HH
