#include "thermal/bioheat.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "base/logging.hh"
#include "exec/parallel.hh"
#include "obs/collector.hh"
#include "obs/handles.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mindful::thermal {

Length
TissueProperties::penetrationDepth() const
{
    return Length::metres(std::sqrt(conductivity.inWattsPerMetreKelvin() /
                                    perfusionCoefficient()));
}

BioHeatSolver::BioHeatSolver(TissueProperties tissue, BioHeatConfig config)
    : _tissue(tissue), _config(config)
{
    MINDFUL_ASSERT(_tissue.conductivity.inWattsPerMetreKelvin() > 0.0,
                   "tissue conductivity must be positive");
    MINDFUL_ASSERT(_tissue.perfusionCoefficient() > 0.0,
                   "perfusion coefficient must be positive");
    MINDFUL_ASSERT(_config.gridSpacing.inMetres() > 0.0,
                   "grid spacing must be positive");
    MINDFUL_ASSERT(_config.domainWidth > 4.0 * _config.gridSpacing &&
                       _config.domainDepth > 4.0 * _config.gridSpacing,
                   "bio-heat domain too small for the grid spacing");
    MINDFUL_ASSERT(_config.relaxation > 0.0 && _config.relaxation < 2.0,
                   "SOR relaxation must lie in (0, 2)");
}

TemperatureDelta
BioHeatSolver::oneDimensionalEstimate(PowerDensity flux) const
{
    // Semi-infinite perfused half-space under uniform flux:
    // dT(0) = q'' * delta / k with delta the perfusion depth.
    double q = flux.inWattsPerSquareMetre();
    return TemperatureDelta::kelvin(
        q * _tissue.penetrationDepth().inMetres() /
        _tissue.conductivity.inWattsPerMetreKelvin());
}

namespace {

/** Sweeps between convergence-residual evaluations. */
constexpr std::size_t kResidualSweepStride = 8;

/** Minimum updated-cell count before a sweep shards over the pool. */
constexpr std::size_t kParallelCellThreshold = 16384;

/** Discretized problem shared by the red-black and legacy sweeps. */
struct Discretization
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    double h = 0.0;     //!< grid spacing [m]
    double kh2 = 0.0;   //!< k / h^2
    double beta = 0.0;  //!< perfusion coefficient [W/(m^3 K)]
    double omega = 0.0; //!< SOR relaxation
    double extent = 0.0; //!< contact half-extent [m]
    bool axi = false;
    std::vector<double> flux; //!< per-column surface flux [W/m^2]
};

Discretization
discretize(const TissueProperties &tissue, const BioHeatConfig &config,
           Power total, Area implant_area,
           const std::vector<double> &profile)
{
    MINDFUL_ASSERT(total.inWatts() >= 0.0, "implant power must be >= 0");
    MINDFUL_ASSERT(implant_area.inSquareMetres() > 0.0,
                   "implant area must be positive");
    MINDFUL_ASSERT(!profile.empty(), "flux profile must not be empty");
    for (double p : profile)
        MINDFUL_ASSERT(p >= 0.0, "flux profile entries must be >= 0");

    Discretization grid;
    grid.h = config.gridSpacing.inMetres();
    grid.beta = tissue.perfusionCoefficient();
    grid.kh2 =
        tissue.conductivity.inWattsPerMetreKelvin() / (grid.h * grid.h);
    grid.omega = config.relaxation;
    grid.axi = config.geometry == BioHeatGeometry::Axisymmetric;
    grid.rows = static_cast<std::size_t>(config.domainDepth.inMetres() /
                                         grid.h) +
                1;
    grid.cols = static_cast<std::size_t>(config.domainWidth.inMetres() /
                                         grid.h) +
                1;

    // Contact half-extent: disc radius for axisymmetric, half the
    // square side for the planar strip cross-section.
    const double area = implant_area.inSquareMetres();
    grid.extent = grid.axi ? std::sqrt(area / std::numbers::pi)
                           : 0.5 * std::sqrt(area);
    MINDFUL_ASSERT(grid.extent < config.domainWidth.inMetres() * 0.75,
                   "implant wider than the simulated tissue domain; "
                   "increase BioHeatConfig::domainWidth");

    // Per-column surface flux [W/m^2]. Columns within the footprint
    // get the segment flux dictated by the (normalized) profile.
    grid.flux.assign(grid.cols, 0.0);
    const double seg_width =
        grid.extent / static_cast<double>(profile.size());

    // Normalize so that sum(flux_i * contact_area_i) == total.
    // Contact area of segment i: annulus (axisymmetric) or strip
    // pair (planar, both sides of the symmetry plane).
    double weighted = 0.0;
    std::vector<double> seg_area(profile.size(), 0.0);
    for (std::size_t s = 0; s < profile.size(); ++s) {
        double r0 = seg_width * static_cast<double>(s);
        double r1 = r0 + seg_width;
        seg_area[s] = grid.axi ? std::numbers::pi * (r1 * r1 - r0 * r0)
                               : 2.0 * (r1 - r0) * std::sqrt(area);
        weighted += profile[s] * seg_area[s];
    }
    MINDFUL_ASSERT(weighted > 0.0,
                   "flux profile must have positive total weight");
    const double scale = total.inWatts() / weighted;
    for (std::size_t j = 0; j < grid.cols; ++j) {
        double r = static_cast<double>(j) * grid.h;
        if (r > grid.extent)
            break;
        auto s = std::min<std::size_t>(
            static_cast<std::size_t>(r / seg_width), profile.size() - 1);
        grid.flux[j] = profile[s] * scale;
    }
    return grid;
}

/** Fold the converged field into the result summary. */
BioHeatResult
summarize(const Discretization &grid, std::vector<double> temp,
          std::size_t iterations)
{
    BioHeatResult result;
    result.iterations = iterations;
    result.fieldRows = grid.rows;
    result.fieldCols = grid.cols;

    double peak = 0.0;
    for (double v : temp)
        peak = std::max(peak, v);
    result.peakRise = TemperatureDelta::kelvin(peak);

    // Area-weighted mean over the contact footprint (top row).
    double weight_sum = 0.0;
    double weighted_temp = 0.0;
    for (std::size_t j = 0; j < grid.cols; ++j) {
        double r = static_cast<double>(j) * grid.h;
        if (r > grid.extent)
            break;
        double w = grid.axi ? std::max(r, grid.h / 4.0) : 1.0;
        weight_sum += w;
        weighted_temp += w * temp[j];
    }
    result.meanContactRise = TemperatureDelta::kelvin(
        weight_sum > 0.0 ? weighted_temp / weight_sum : 0.0);

    result.field = std::move(temp);
    return result;
}

void
recordSolveMetrics(const char *prefix, std::size_t sweeps,
                   double residual)
{
    auto &registry = obs::MetricRegistry::global();
    if (!registry.enabled())
        return;
    const std::string base(prefix);
    registry.counter(base + ".solves").add(1);
    registry.counter(base + ".sweeps").add(sweeps);
    registry.gauge(base + ".residual").set(residual);
    registry.histogram(base + ".sweeps_per_solve")
        .record(static_cast<double>(sweeps));
}

/**
 * Red-black SOR sweep engine over one temperature field.
 *
 * Construction hoists every branch the legacy sweep evaluated per
 * cell into per-column tables: east/west stencil coefficients (the
 * j == 0 symmetry column and the axisymmetric 1/r terms), reciprocal
 * denominators (no division in the inner loop), and the top-surface
 * flux source term. The i == 0 ghost-node row runs as its own kernel.
 *
 * A "red" (parity 0) cell's four neighbours are all "black" (parity
 * 1) and vice versa, so all cells of one color update independently —
 * rows shard over the pool and the result cannot depend on execution
 * order or thread count.
 */
class RedBlackSweep
{
  public:
    RedBlackSweep(const Discretization &grid, std::vector<double> &temp)
        : _grid(grid), _temp(temp), _ce(grid.cols, 1.0),
          _cw(grid.cols, 1.0), _invDenom(grid.cols, 0.0),
          _fluxTerm(grid.cols, 0.0)
    {
        for (std::size_t j = 0; j + 1 < grid.cols; ++j) {
            double cp = 4.0;
            if (j == 0) {
                _cw[j] = 0.0;
                if (grid.axi) {
                    // Axis of symmetry: radial Laplacian becomes
                    // 2 d2T/dr2 by L'Hopital.
                    _ce[j] = 4.0;
                    cp = 6.0;
                } else {
                    // Planar symmetry plane: mirror the east node.
                    _ce[j] = 2.0;
                }
            } else if (grid.axi) {
                double rj = static_cast<double>(j);
                _ce[j] = 1.0 + 0.5 / rj;
                _cw[j] = 1.0 - 0.5 / rj;
            }
            _invDenom[j] = 1.0 / (grid.kh2 * cp + grid.beta);
            // Top surface: ghost node folds the surface flux into the
            // south neighbour plus this source term (adiabatic where
            // flux[j] == 0).
            _fluxTerm[j] = 2.0 * grid.flux[j] / grid.h;
        }

        const std::size_t sweep_rows = grid.rows - 1;
        const std::size_t cells = sweep_rows * (grid.cols - 1);
        _shards = cells >= kParallelCellThreshold
                      ? std::min<std::size_t>(exec::kDefaultShards,
                                              sweep_rows)
                      : 1;
    }

    std::size_t shards() const { return _shards; }

    /**
     * One full sweep (red color then black). With Measure, returns
     * {max |relaxed update|, max updated value}; both reduce by max,
     * so the parallel reduction is exact and order-free.
     */
    template <bool Measure>
    std::array<double, 2>
    sweep()
    {
        auto red = colorSweep<Measure>(0);
        auto black = colorSweep<Measure>(1);
        return {std::max(red[0], black[0]), std::max(red[1], black[1])};
    }

  private:
    template <bool Measure>
    std::array<double, 2>
    colorSweep(int parity)
    {
        const std::size_t sweep_rows = _grid.rows - 1;
        if (_shards <= 1) {
            std::array<double, 2> acc{0.0, 0.0};
            for (std::size_t i = 0; i < sweep_rows; ++i)
                updateRow<Measure>(i, parity, acc);
            return acc;
        }
        // Hot-tier shard instrumentation (resolved once; see
        // docs/observability.md). site() is idempotent, so the two
        // Measure instantiations share one interned id.
        static const obs::TraceSite shard_site =
            obs::TraceCollector::global().site("thermal", "sor.shard");
        static const obs::CounterHandle shard_rows =
            obs::HotMetricTable::global().counter(
                "thermal.sor.shard_rows");
        return exec::parallelReduce(
            _shards, std::array<double, 2>{0.0, 0.0},
            [&](std::size_t shard) {
                obs::HotSpan shard_span(shard_site);
                auto range =
                    exec::shardRange(sweep_rows, _shards, shard);
                shard_span.setArg(range.end - range.begin);
                std::array<double, 2> acc{0.0, 0.0};
                for (std::uint64_t i = range.begin; i < range.end; ++i)
                    updateRow<Measure>(static_cast<std::size_t>(i),
                                       parity, acc);
                shard_rows.bump(range.end - range.begin);
                return acc;
            },
            [](std::array<double, 2> a, std::array<double, 2> b) {
                return std::array<double, 2>{std::max(a[0], b[0]),
                                             std::max(a[1], b[1])};
            },
            "thermal.sor.sweep");
    }

    /** Update this row's cells of color @p parity ((i + j) % 2). */
    template <bool Measure>
    void
    updateRow(std::size_t i, int parity, std::array<double, 2> &acc)
    {
        double *row = _temp.data() + i * _grid.cols;
        const double *south = row + _grid.cols;
        const double omega = _grid.omega;
        const double kh2 = _grid.kh2;
        const std::size_t last = _grid.cols - 1; // pinned far column

        auto step = [&](std::size_t j, double numer) {
            double &cell = row[j];
            const double next =
                cell + omega * (numer * _invDenom[j] - cell);
            if constexpr (Measure) {
                acc[0] = std::max(acc[0], std::abs(next - cell));
                acc[1] = std::max(acc[1], next);
            }
            cell = next;
        };

        std::size_t j =
            (static_cast<std::size_t>(parity) + i) % 2 == 0 ? 0 : 1;
        if (i == 0) {
            if (j == 0) {
                step(0, kh2 * (_ce[0] * row[1] + 2.0 * south[0]) +
                            _fluxTerm[0]);
                j = 2;
            }
            for (; j < last; j += 2)
                step(j, kh2 * (_ce[j] * row[j + 1] +
                               _cw[j] * row[j - 1] + 2.0 * south[j]) +
                            _fluxTerm[j]);
        } else {
            const double *north = row - _grid.cols;
            if (j == 0) {
                step(0, kh2 * (_ce[0] * row[1] + north[0] + south[0]));
                j = 2;
            }
            for (; j < last; j += 2)
                step(j, kh2 * (_ce[j] * row[j + 1] +
                               _cw[j] * row[j - 1] + north[j] +
                               south[j]));
        }
    }

    const Discretization &_grid;
    std::vector<double> &_temp;
    std::vector<double> _ce;
    std::vector<double> _cw;
    std::vector<double> _invDenom;
    std::vector<double> _fluxTerm;
    std::size_t _shards = 1;
};

} // namespace

BioHeatResult
BioHeatSolver::solve(Power total, Area implant_area) const
{
    return solveProfile(total, implant_area, {1.0});
}

BioHeatResult
BioHeatSolver::solveReference(Power total, Area implant_area) const
{
    return solveProfileReference(total, implant_area, {1.0});
}

BioHeatResult
BioHeatSolver::solveProfile(Power total, Area implant_area,
                            const std::vector<double> &profile) const
{
    auto grid = discretize(_tissue, _config, total, implant_area, profile);

    MINDFUL_TRACE_SPAN(span, "thermal", "sor.solve");
    span.arg("rows", static_cast<std::uint64_t>(grid.rows))
        .arg("cols", static_cast<std::uint64_t>(grid.cols));

    std::vector<double> temp(grid.rows * grid.cols, 0.0);
    RedBlackSweep sweep(grid, temp);

    std::size_t iter = 0;
    double residual = 0.0;
    bool converged = false;
    while (iter < _config.maxIterations && !converged) {
        // The residual costs an abs + two max per cell plus a
        // reduction; evaluating it every kResidualSweepStride-th
        // sweep keeps the steady-state kernels pure arithmetic. The
        // (at most) 7 extra sweeps past convergence only tighten the
        // answer.
        const bool measure =
            (iter + 1) % kResidualSweepStride == 0 ||
            iter + 1 == _config.maxIterations;
        if (measure) {
            auto [res, peak] = sweep.sweep<true>();
            residual = res;
            converged = res <= _config.tolerance * peak;
        } else {
            sweep.sweep<false>();
        }
        ++iter;
    }
    if (!converged) {
        MINDFUL_PANIC("bio-heat SOR failed to converge: residual ",
                      residual, " after ", iter, " iterations");
    }

    recordSolveMetrics("thermal.sor", iter, residual);
    return summarize(grid, std::move(temp), iter);
}

BioHeatResult
BioHeatSolver::solveProfileReference(
    Power total, Area implant_area,
    const std::vector<double> &profile) const
{
    auto grid = discretize(_tissue, _config, total, implant_area, profile);

    MINDFUL_TRACE_SPAN(span, "thermal", "sor.solve_reference");
    span.arg("rows", static_cast<std::uint64_t>(grid.rows))
        .arg("cols", static_cast<std::uint64_t>(grid.cols));

    const std::size_t rows = grid.rows;
    const std::size_t cols = grid.cols;
    const double h = grid.h;
    const double kh2 = grid.kh2;
    const double beta = grid.beta;
    const double omega = grid.omega;
    const bool axi = grid.axi;
    const std::vector<double> &flux = grid.flux;

    std::vector<double> temp(rows * cols, 0.0);
    auto at = [&](std::size_t i, std::size_t j) -> double & {
        return temp[i * cols + j];
    };

    std::size_t iter = 0;
    double max_update = 0.0;
    bool converged = false;
    for (; iter < _config.maxIterations && !converged; ++iter) {
        max_update = 0.0;
        double peak = 0.0;
        // Interior + top boundary sweep; bottom row and outermost
        // column stay pinned at dT = 0 (far-field Dirichlet).
        for (std::size_t i = 0; i + 1 < rows; ++i) {
            for (std::size_t j = 0; j + 1 < cols; ++j) {
                double ce, cw, cp;
                double east = at(i, j + 1);
                double west;
                if (j == 0) {
                    if (axi) {
                        // Axis of symmetry: radial Laplacian becomes
                        // 2 d2T/dr2 by L'Hopital.
                        ce = 4.0;
                        cw = 0.0;
                        west = 0.0;
                        cp = 6.0;
                    } else {
                        // Planar symmetry plane: mirror the east node.
                        ce = 2.0;
                        cw = 0.0;
                        west = 0.0;
                        cp = 4.0;
                    }
                } else if (axi) {
                    double rj = static_cast<double>(j);
                    ce = 1.0 + 0.5 / rj;
                    cw = 1.0 - 0.5 / rj;
                    west = at(i, j - 1);
                    cp = 4.0;
                } else {
                    ce = 1.0;
                    cw = 1.0;
                    west = at(i, j - 1);
                    cp = 4.0;
                }

                double numer = kh2 * (ce * east + cw * west);
                if (i == 0) {
                    // Top surface: ghost node folds the surface flux
                    // into the south neighbour plus a source term
                    // (adiabatic where flux[j] == 0).
                    numer += kh2 * 2.0 * at(i + 1, j);
                    numer += 2.0 * flux[j] / h;
                } else {
                    numer += kh2 * (at(i - 1, j) + at(i + 1, j));
                }

                double updated = numer / (kh2 * cp + beta);
                double &cell = at(i, j);
                double next = cell + omega * (updated - cell);
                max_update = std::max(max_update, std::abs(next - cell));
                peak = std::max(peak, next);
                cell = next;
            }
        }
        converged = max_update <= _config.tolerance * peak;
    }
    if (!converged) {
        MINDFUL_PANIC("bio-heat SOR failed to converge: residual ",
                      max_update, " after ", iter, " iterations");
    }

    recordSolveMetrics("thermal.sor.reference", iter, max_update);
    return summarize(grid, std::move(temp), iter);
}

} // namespace mindful::thermal
