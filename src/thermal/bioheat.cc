#include "thermal/bioheat.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "base/logging.hh"

namespace mindful::thermal {

Length
TissueProperties::penetrationDepth() const
{
    return Length::metres(std::sqrt(conductivity.inWattsPerMetreKelvin() /
                                    perfusionCoefficient()));
}

BioHeatSolver::BioHeatSolver(TissueProperties tissue, BioHeatConfig config)
    : _tissue(tissue), _config(config)
{
    MINDFUL_ASSERT(_tissue.conductivity.inWattsPerMetreKelvin() > 0.0,
                   "tissue conductivity must be positive");
    MINDFUL_ASSERT(_tissue.perfusionCoefficient() > 0.0,
                   "perfusion coefficient must be positive");
    MINDFUL_ASSERT(_config.gridSpacing.inMetres() > 0.0,
                   "grid spacing must be positive");
    MINDFUL_ASSERT(_config.domainWidth > 4.0 * _config.gridSpacing &&
                       _config.domainDepth > 4.0 * _config.gridSpacing,
                   "bio-heat domain too small for the grid spacing");
    MINDFUL_ASSERT(_config.relaxation > 0.0 && _config.relaxation < 2.0,
                   "SOR relaxation must lie in (0, 2)");
}

TemperatureDelta
BioHeatSolver::oneDimensionalEstimate(PowerDensity flux) const
{
    // Semi-infinite perfused half-space under uniform flux:
    // dT(0) = q'' * delta / k with delta the perfusion depth.
    double q = flux.inWattsPerSquareMetre();
    return TemperatureDelta::kelvin(
        q * _tissue.penetrationDepth().inMetres() /
        _tissue.conductivity.inWattsPerMetreKelvin());
}

BioHeatResult
BioHeatSolver::solve(Power total, Area implant_area) const
{
    return solveProfile(total, implant_area, {1.0});
}

BioHeatResult
BioHeatSolver::solveProfile(Power total, Area implant_area,
                            const std::vector<double> &profile) const
{
    MINDFUL_ASSERT(total.inWatts() >= 0.0, "implant power must be >= 0");
    MINDFUL_ASSERT(implant_area.inSquareMetres() > 0.0,
                   "implant area must be positive");
    MINDFUL_ASSERT(!profile.empty(), "flux profile must not be empty");
    for (double p : profile)
        MINDFUL_ASSERT(p >= 0.0, "flux profile entries must be >= 0");

    const double h = _config.gridSpacing.inMetres();
    const double k = _tissue.conductivity.inWattsPerMetreKelvin();
    const double beta = _tissue.perfusionCoefficient();
    const bool axi = _config.geometry == BioHeatGeometry::Axisymmetric;

    const auto rows =
        static_cast<std::size_t>(_config.domainDepth.inMetres() / h) + 1;
    const auto cols =
        static_cast<std::size_t>(_config.domainWidth.inMetres() / h) + 1;

    // Contact half-extent: disc radius for axisymmetric, half the
    // square side for the planar strip cross-section.
    const double area = implant_area.inSquareMetres();
    const double extent = axi ? std::sqrt(area / std::numbers::pi)
                              : 0.5 * std::sqrt(area);
    MINDFUL_ASSERT(extent < _config.domainWidth.inMetres() * 0.75,
                   "implant wider than the simulated tissue domain; "
                   "increase BioHeatConfig::domainWidth");

    // Per-column surface flux [W/m^2]. Columns within the footprint
    // get the segment flux dictated by the (normalized) profile.
    std::vector<double> flux(cols, 0.0);
    {
        const double seg_width = extent / static_cast<double>(profile.size());

        // Normalize so that sum(flux_i * contact_area_i) == total.
        // Contact area of segment i: annulus (axisymmetric) or strip
        // pair (planar, both sides of the symmetry plane).
        double weighted = 0.0;
        std::vector<double> seg_area(profile.size(), 0.0);
        for (std::size_t s = 0; s < profile.size(); ++s) {
            double r0 = seg_width * static_cast<double>(s);
            double r1 = r0 + seg_width;
            seg_area[s] = axi ? std::numbers::pi * (r1 * r1 - r0 * r0)
                              : 2.0 * (r1 - r0) * std::sqrt(area);
            weighted += profile[s] * seg_area[s];
        }
        MINDFUL_ASSERT(weighted > 0.0,
                       "flux profile must have positive total weight");
        const double scale = total.inWatts() / weighted;
        for (std::size_t j = 0; j < cols; ++j) {
            double r = static_cast<double>(j) * h;
            if (r > extent)
                break;
            auto s = std::min<std::size_t>(
                static_cast<std::size_t>(r / seg_width), profile.size() - 1);
            flux[j] = profile[s] * scale;
        }
    }

    std::vector<double> temp(rows * cols, 0.0);
    auto at = [&](std::size_t i, std::size_t j) -> double & {
        return temp[i * cols + j];
    };

    const double kh2 = k / (h * h);
    const double omega = _config.relaxation;

    std::size_t iter = 0;
    double max_update = 0.0;
    for (; iter < _config.maxIterations; ++iter) {
        max_update = 0.0;
        // Interior + top boundary sweep; bottom row and outermost
        // column stay pinned at dT = 0 (far-field Dirichlet).
        for (std::size_t i = 0; i + 1 < rows; ++i) {
            for (std::size_t j = 0; j + 1 < cols; ++j) {
                double ce, cw, cp;
                double east = at(i, j + 1);
                double west;
                if (j == 0) {
                    if (axi) {
                        // Axis of symmetry: radial Laplacian becomes
                        // 2 d2T/dr2 by L'Hopital.
                        ce = 4.0;
                        cw = 0.0;
                        west = 0.0;
                        cp = 6.0;
                    } else {
                        // Planar symmetry plane: mirror the east node.
                        ce = 2.0;
                        cw = 0.0;
                        west = 0.0;
                        cp = 4.0;
                    }
                } else if (axi) {
                    double rj = static_cast<double>(j);
                    ce = 1.0 + 0.5 / rj;
                    cw = 1.0 - 0.5 / rj;
                    west = at(i, j - 1);
                    cp = 4.0;
                } else {
                    ce = 1.0;
                    cw = 1.0;
                    west = at(i, j - 1);
                    cp = 4.0;
                }

                double numer = kh2 * (ce * east + cw * west);
                if (i == 0) {
                    // Top surface: ghost node folds the surface flux
                    // into the south neighbour plus a source term
                    // (adiabatic where flux[j] == 0).
                    numer += kh2 * 2.0 * at(i + 1, j);
                    numer += 2.0 * flux[j] / h;
                } else {
                    numer += kh2 * (at(i - 1, j) + at(i + 1, j));
                }

                double updated = numer / (kh2 * cp + beta);
                double &cell = at(i, j);
                double next = cell + omega * (updated - cell);
                max_update = std::max(max_update, std::abs(next - cell));
                cell = next;
            }
        }
        if (max_update < _config.tolerance)
            break;
    }
    if (iter >= _config.maxIterations) {
        MINDFUL_PANIC("bio-heat SOR failed to converge: residual ",
                      max_update, " after ", iter, " iterations");
    }

    BioHeatResult result;
    result.iterations = iter + 1;
    result.fieldRows = rows;
    result.fieldCols = cols;

    double peak = 0.0;
    for (double v : temp)
        peak = std::max(peak, v);
    result.peakRise = TemperatureDelta::kelvin(peak);

    // Area-weighted mean over the contact footprint (top row).
    double weight_sum = 0.0;
    double weighted_temp = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
        double r = static_cast<double>(j) * h;
        if (r > extent)
            break;
        double w = axi ? std::max(r, h / 4.0) : 1.0;
        weight_sum += w;
        weighted_temp += w * at(0, j);
    }
    result.meanContactRise = TemperatureDelta::kelvin(
        weight_sum > 0.0 ? weighted_temp / weight_sum : 0.0);

    result.field = std::move(temp);
    return result;
}

} // namespace mindful::thermal
