/**
 * @file
 * Steady-state Pennes bio-heat solver.
 *
 * The paper's safety premise — that 40 mW/cm^2 of uniform surface
 * heating keeps the cortical temperature rise below ~2 degC thanks to
 * blood perfusion — is taken from the thermal literature (Wolf 2008,
 * Serrano et al. 2020). This module re-derives that premise from
 * first principles: it solves the steady Pennes equation
 *
 *     k * laplacian(dT) - rho_b * c_b * w_b * dT + q = 0
 *
 * on a tissue slab heated by an implant of known area and power,
 * using a finite-difference successive-over-relaxation scheme. Two
 * geometries are supported:
 *
 *  - Axisymmetric: the implant is modelled as a disc of equal area on
 *    top of a tissue cylinder (the realistic case for a compact chip).
 *  - Planar: a 2-D cross-section through an infinite strip implant
 *    (an upper bound on the temperature rise, no lateral spreading in
 *    the third dimension).
 *
 * The solver also quantifies the hotspot penalty a *non-uniform*
 * surface flux would incur (solveProfile). Real dies do not pay it:
 * silicon conducts ~300x better than tissue, flattening on-chip power
 * gradients before they reach the brain — which is the paper's
 * argument for the uniform-dissipation assumption.
 */

#ifndef MINDFUL_THERMAL_BIOHEAT_HH
#define MINDFUL_THERMAL_BIOHEAT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/units.hh"

namespace mindful::thermal {

/** Tissue and blood parameters for the Pennes model. */
struct TissueProperties
{
    /** Thermal conductivity of grey matter. */
    ThermalConductivity conductivity =
        ThermalConductivity::wattsPerMetreKelvin(0.51);

    /** Blood density. */
    MassDensity bloodDensity = MassDensity::kilogramsPerCubicMetre(1050.0);

    /** Blood specific heat. */
    SpecificHeat bloodSpecificHeat =
        SpecificHeat::joulesPerKilogramKelvin(3600.0);

    /** Blood perfusion rate [1 / s]. Cortex is among the most
     *  perfused tissues in the body (the paper's Sec. 3.2 premise);
     *  0.017 1/s sits at the well-perfused end of the literature
     *  range and reproduces the 40 mW/cm^2 <-> ~2 degC equivalence. */
    double perfusionRate = 0.017; // lint: raw-ok(volumetric perfusion in 1/s; the thermal literature quotes it raw and no Quantity models it)

    /** Volumetric heat-sink coefficient rho_b * c_b * w_b [W/(m^3 K)]. */
    double
    perfusionCoefficient() const
    {
        return bloodDensity.inKilogramsPerCubicMetre() *
               bloodSpecificHeat.inJoulesPerKilogramKelvin() *
               perfusionRate;
    }

    /**
     * Perfusion penetration depth sqrt(k / (rho_b c_b w_b)):
     * the length scale over which blood flow absorbs surface heat.
     */
    Length penetrationDepth() const;
};

/** Geometry selector for the solver. */
enum class BioHeatGeometry : std::uint8_t {
    Axisymmetric, //!< disc implant on a tissue cylinder
    Planar        //!< infinite strip implant, 2-D cross-section
};

/** Discretization and iteration controls. */
struct BioHeatConfig
{
    BioHeatGeometry geometry = BioHeatGeometry::Axisymmetric;

    /** Grid spacing. */
    Length gridSpacing = Length::millimetres(0.25);

    /** Radial (or lateral) extent of the simulated tissue. */
    Length domainWidth = Length::millimetres(30.0);

    /** Depth of the simulated tissue below the implant. */
    Length domainDepth = Length::millimetres(15.0);

    /** SOR relaxation factor in (1, 2). */
    double relaxation = 1.85;

    /**
     * *Relative* convergence threshold: the sweep is converged when
     * the largest relaxed nodal update is <= tolerance times the
     * running peak temperature rise. Because the Pennes equation is
     * linear in dT, this makes the iteration count (and the relative
     * accuracy of the answer) independent of the flux scale — 1 mW
     * and 1 W converge identically, where the previous absolute
     * threshold made weak fluxes converge early and strong fluxes
     * grind.
     */
    double tolerance = 1e-7;

    /** Iteration cap (diverging configurations fail loudly). */
    std::size_t maxIterations = 200000;
};

/** Solution summary returned by BioHeatSolver::solve(). */
struct BioHeatResult
{
    /** Peak tissue temperature rise (at the implant centre). */
    TemperatureDelta peakRise;

    /** Mean temperature rise over the implant contact surface. */
    TemperatureDelta meanContactRise;

    /** Iterations the SOR sweep needed to converge. */
    std::size_t iterations = 0;

    /** Full temperature field, row-major [depth][width], in kelvin. */
    std::vector<double> field;
    std::size_t fieldRows = 0;
    std::size_t fieldCols = 0;
};

/**
 * Finite-difference steady-state Pennes solver.
 *
 * Boundary conditions: the implant footprint on the top surface
 * injects a uniform (or caller-supplied, see solveProfile) heat flux;
 * the remaining top surface is adiabatic (the skull side conducts
 * poorly); the far radial and bottom boundaries are held at the
 * baseline perfused-tissue temperature (dT = 0).
 *
 * The production sweep (solve/solveProfile) is red-black SOR: cells
 * are two-colored by (row + column) parity, each color updated as a
 * whole using only the other color's values, with the per-column
 * stencil coefficients (symmetry axis, axisymmetric 1/r terms,
 * denominators) precomputed once and the top-surface flux row handled
 * by a specialized kernel — the inner loops are branch- and
 * division-free. Each color shards over rows via exec::parallelFor;
 * because updates within a color are independent, the result is
 * bit-identical for any `--threads` value *by construction* (no shard
 * ordering is even involved). The convergence residual is evaluated
 * every 8th sweep rather than per cell update.
 *
 * The original lexicographic Gauss-Seidel sweep is retained as
 * solveReference/solveProfileReference — the golden reference for the
 * equivalence tests and the kernel_regression speedup baseline. Both
 * orderings converge to the same fixed point of the discretized
 * system, so their fields agree to solver tolerance.
 */
class BioHeatSolver
{
  public:
    BioHeatSolver(TissueProperties tissue, BioHeatConfig config);

    /**
     * Solve for an implant dissipating @p total over @p implant_area.
     *
     * @return converged solution summary; panics if the SOR sweep
     *         fails to converge within the iteration cap.
     */
    BioHeatResult solve(Power total, Area implant_area) const;

    /**
     * Solve with a non-uniform flux profile across the implant.
     *
     * @param implant_area total contact area.
     * @param profile relative dissipation per equal-width annulus
     *        (axisymmetric) or strip segment (planar), normalized
     *        internally so the integral equals @p total.
     */
    BioHeatResult solveProfile(Power total, Area implant_area,
                               const std::vector<double> &profile) const;

    /** Golden-reference (serial lexicographic SOR) variant of solve. */
    BioHeatResult solveReference(Power total, Area implant_area) const;

    /** Golden-reference variant of solveProfile. */
    BioHeatResult
    solveProfileReference(Power total, Area implant_area,
                          const std::vector<double> &profile) const;

    /**
     * Closed-form 1-D estimate dT = q'' * delta / k used as a sanity
     * anchor for the numerical solution (upper bound: no lateral
     * spreading at all).
     */
    TemperatureDelta oneDimensionalEstimate(PowerDensity flux) const;

    const TissueProperties &tissue() const { return _tissue; }
    const BioHeatConfig &config() const { return _config; }

  private:
    TissueProperties _tissue;
    BioHeatConfig _config;
};

} // namespace mindful::thermal

#endif // MINDFUL_THERMAL_BIOHEAT_HH
