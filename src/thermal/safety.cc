#include "thermal/safety.hh"

#include "base/logging.hh"

namespace mindful::thermal {

SafetyVerdict
PowerBudget::check(Power total, Area chip_area) const
{
    MINDFUL_ASSERT(chip_area.inSquareMetres() > 0.0,
                   "safety check requires a positive chip area");
    MINDFUL_ASSERT(total.inWatts() >= 0.0,
                   "safety check requires non-negative power");

    SafetyVerdict verdict;
    verdict.density = total / chip_area;
    verdict.budgetUtilization = total / budget(chip_area);
    verdict.headroom = budget(chip_area) - total;
    verdict.safe = verdict.budgetUtilization <= 1.0;
    return verdict;
}

} // namespace mindful::thermal
