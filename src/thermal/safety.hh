/**
 * @file
 * Thermal safety rules for implanted SoCs (paper Sec. 3.2).
 *
 * Brain tissue tolerates at most a 1-2 degC temperature rise; with
 * cortical blood flow this translates into a maximum areal power
 * density of 40 mW/cm^2 for a subdural implant. Given a chip surface
 * area, that density cap defines the *power budget* (Eq. 3):
 *
 *     Pbudget(A) = 40 mW/cm^2 * A
 *
 * All feasibility analyses in mindful_core reduce to comparisons
 * against this budget.
 */

#ifndef MINDFUL_THERMAL_SAFETY_HH
#define MINDFUL_THERMAL_SAFETY_HH

#include "base/units.hh"

namespace mindful::thermal {

/** Regulatory-style limits for subdural implants (paper Sec. 3.2). */
struct SafetyLimits
{
    /** Maximum areal power density tolerated by perfused cortex. */
    PowerDensity maxPowerDensity =
        PowerDensity::milliwattsPerSquareCentimetre(40.0);

    /** Maximum tissue temperature rise before cellular damage. */
    TemperatureDelta maxTemperatureRise = TemperatureDelta::kelvin(2.0);
};

/** Result of checking one design point against the limits. */
struct SafetyVerdict
{
    bool safe = false;

    /** Psoc / Pbudget; safe iff <= 1. */
    double budgetUtilization = 0.0;

    /** Achieved areal power density. */
    PowerDensity density;

    /** Power headroom left under the budget (negative if over). */
    Power headroom;
};

/**
 * The power-budget rule of Eq. 3.
 *
 * Stateless apart from the limits, so it is cheap to copy into any
 * model that needs budget arithmetic.
 */
class PowerBudget
{
  public:
    PowerBudget() = default;
    explicit PowerBudget(SafetyLimits limits) : _limits(limits) {}

    const SafetyLimits &limits() const { return _limits; }

    /** Pbudget(A) = rho_max * A. */
    Power
    budget(Area chip_area) const
    {
        return _limits.maxPowerDensity * chip_area;
    }

    /** Minimum chip area able to dissipate @p total safely. */
    Area
    minimumArea(Power total) const
    {
        return total / _limits.maxPowerDensity;
    }

    /** Evaluate a (power, area) design point. */
    SafetyVerdict check(Power total, Area chip_area) const;

  private:
    SafetyLimits _limits;
};

} // namespace mindful::thermal

#endif // MINDFUL_THERMAL_SAFETY_HH
