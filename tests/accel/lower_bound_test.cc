/**
 * @file
 * Eq. 11-15 lower-bound solver tests.
 */

#include <gtest/gtest.h>

#include "accel/lower_bound.hh"
#include "dnn/models.hh"

namespace mindful::accel {
namespace {

using dnn::MacCensus;

TEST(LowerBoundTest, SharedPoolLatencySingleLayer)
{
    LowerBoundSolver solver(nangate45()); // t_MAC = 2 ns
    // 8 ops x 4 seq with 2 units: ceil(8/2)=4 passes * 4 steps * 2 ns.
    std::vector<MacCensus> census{{8, 4}};
    EXPECT_NEAR(solver.sharedPoolLatency(census, 2).inNanoseconds(),
                32.0, 1e-9);
    // With >= 8 units one pass suffices.
    EXPECT_NEAR(solver.sharedPoolLatency(census, 8).inNanoseconds(),
                8.0, 1e-9);
    // Extra units beyond #MAC_op cannot help.
    EXPECT_NEAR(solver.sharedPoolLatency(census, 100).inNanoseconds(),
                8.0, 1e-9);
}

TEST(LowerBoundTest, SharedPoolLatencySumsLayers)
{
    LowerBoundSolver solver(nangate45());
    std::vector<MacCensus> census{{8, 4}, {2, 10}, {0, 0}};
    // Layer 1: ceil(8/2)*4 = 16 steps; layer 2: ceil(2/2)*10 = 10.
    EXPECT_NEAR(solver.sharedPoolLatency(census, 2).inNanoseconds(),
                52.0, 1e-9);
}

TEST(LowerBoundTest, SharedPoolPicksMinimalUnits)
{
    LowerBoundSolver solver(nangate45());
    std::vector<MacCensus> census{{64, 100}};
    // Deadline for exactly 4 passes: 4 * 100 * 2 ns = 800 ns; that
    // needs ceil(64/passes) = 16 units.
    auto bound = solver.solveSharedPool(census, Time::nanoseconds(800.0));
    ASSERT_TRUE(bound.feasible);
    EXPECT_EQ(bound.macUnits, 16u);
    EXPECT_LE(bound.latency, Time::nanoseconds(800.0));
    // One fewer unit must miss the deadline.
    EXPECT_GT(solver.sharedPoolLatency(census, 15).inNanoseconds(), 800.0);
}

TEST(LowerBoundTest, PowerIsUnitsTimesMacPower)
{
    LowerBoundSolver solver(nangate45());
    std::vector<MacCensus> census{{64, 100}};
    auto bound = solver.solveSharedPool(census, Time::nanoseconds(800.0));
    EXPECT_NEAR(bound.power.inMilliwatts(),
                static_cast<double>(bound.macUnits) * 0.05, 1e-12);
}

TEST(LowerBoundTest, SharedPoolInfeasibleWhenSequenceTooLong)
{
    LowerBoundSolver solver(nangate45());
    // Even fully parallel: 1000 seq steps * 2 ns = 2 us > 1 us.
    std::vector<MacCensus> census{{4, 1000}};
    auto bound = solver.solveSharedPool(census, Time::microseconds(1.0));
    EXPECT_FALSE(bound.feasible);
    EXPECT_EQ(bound.macUnits, 0u);
}

TEST(LowerBoundTest, MacFreeNetworkIsFree)
{
    LowerBoundSolver solver(nangate45());
    std::vector<MacCensus> census{{0, 0}, {0, 0}};
    auto bound = solver.solveBest(census, Time::microseconds(1.0));
    EXPECT_TRUE(bound.feasible);
    EXPECT_EQ(bound.macUnits, 0u);
    EXPECT_DOUBLE_EQ(bound.power.inWatts(), 0.0);
}

TEST(LowerBoundTest, PipelinedAllocatesPerLayer)
{
    LowerBoundSolver solver(nangate45());
    std::vector<MacCensus> census{{8, 4}, {0, 0}, {2, 10}};
    // Deadline 16 ns: layer 0 passes = floor(16/8) = 2 -> 4 units;
    // layer 2: floor(16/20) = 0 -> infeasible.
    auto tight = solver.solvePipelined(census, Time::nanoseconds(16.0));
    EXPECT_FALSE(tight.feasible);

    // Deadline 40 ns: layer 0 passes = 5 -> ceil(8/5) = 2 units;
    // layer 2 passes = 2 -> 1 unit.
    auto loose = solver.solvePipelined(census, Time::nanoseconds(40.0));
    ASSERT_TRUE(loose.feasible);
    EXPECT_EQ(loose.macUnits, 3u);
    ASSERT_EQ(loose.perLayerUnits.size(), 3u);
    EXPECT_EQ(loose.perLayerUnits[0], 2u);
    EXPECT_EQ(loose.perLayerUnits[1], 0u);
    EXPECT_EQ(loose.perLayerUnits[2], 1u);
    EXPECT_LE(loose.latency, Time::nanoseconds(40.0));
}

TEST(LowerBoundTest, BestPicksCheaperDiscipline)
{
    LowerBoundSolver solver(nangate45());
    std::vector<MacCensus> census{{100, 10}, {100, 10}};
    Time t = Time::nanoseconds(400.0);
    auto shared = solver.solveSharedPool(census, t);
    auto pipelined = solver.solvePipelined(census, t);
    auto best = solver.solveBest(census, t);
    ASSERT_TRUE(shared.feasible);
    ASSERT_TRUE(pipelined.feasible);
    EXPECT_EQ(best.macUnits,
              std::min(shared.macUnits, pipelined.macUnits));
}

TEST(LowerBoundTest, BestFallsBackWhenOneDisciplineFails)
{
    LowerBoundSolver solver(nangate45());
    // Two layers, each 300 seq: shared pool needs 1200 ns serially,
    // pipelined runs them concurrently in 600 ns.
    std::vector<MacCensus> census{{4, 300}, {4, 300}};
    Time t = Time::nanoseconds(700.0);
    EXPECT_FALSE(solver.solveSharedPool(census, t).feasible);
    auto best = solver.solveBest(census, t);
    EXPECT_TRUE(best.feasible);
    EXPECT_EQ(best.discipline, Discipline::Pipelined);
}

TEST(LowerBoundTest, FasterTechnologyNeedsFewerUnits)
{
    std::vector<MacCensus> census = {{2048, 512}, {1024, 1024}};
    Time t = Time::microseconds(500.0);
    auto slow = LowerBoundSolver(nangate45()).solveSharedPool(census, t);
    auto fast = LowerBoundSolver(scaled12nm()).solveSharedPool(census, t);
    ASSERT_TRUE(slow.feasible);
    ASSERT_TRUE(fast.feasible);
    EXPECT_LE(fast.macUnits, slow.macUnits);
    EXPECT_LT(fast.power.inMilliwatts(), slow.power.inMilliwatts());
}

TEST(LowerBoundTest, MoreTimeNeverNeedsMoreUnits)
{
    LowerBoundSolver solver(nangate45());
    auto census = dnn::buildSpeechMlp(512).census();
    std::uint64_t previous = UINT64_MAX;
    for (double us : {100.0, 200.0, 500.0, 1000.0}) {
        auto bound =
            solver.solveSharedPool(census, Time::microseconds(us));
        ASSERT_TRUE(bound.feasible);
        EXPECT_LE(bound.macUnits, previous);
        previous = bound.macUnits;
    }
}

TEST(LowerBoundTest, RealMlpCensusSolves)
{
    // The Fig. 10 workhorse: the 1024-channel MLP at the 2 kHz
    // application deadline must be feasible and non-trivial.
    LowerBoundSolver solver(nangate45());
    auto census = dnn::buildSpeechMlp(1024).census();
    auto bound = solver.solveBest(census, Time::microseconds(500.0));
    ASSERT_TRUE(bound.feasible);
    EXPECT_GT(bound.macUnits, 10u);
    EXPECT_LT(bound.macUnits, 10000u);
    EXPECT_LE(bound.latency, Time::microseconds(500.0));
}

TEST(LowerBoundTest, SolutionLatencyIsConsistent)
{
    LowerBoundSolver solver(nangate45());
    auto census = dnn::buildSpeechMlp(256).census();
    auto bound = solver.solveSharedPool(census, Time::microseconds(500.0));
    ASSERT_TRUE(bound.feasible);
    EXPECT_NEAR(
        bound.latency.inSeconds(),
        solver.sharedPoolLatency(census, bound.macUnits).inSeconds(),
        1e-15);
}

} // namespace
} // namespace mindful::accel
