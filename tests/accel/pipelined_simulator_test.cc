/**
 * @file
 * Pipelined-execution simulator tests (the Eq. 14-15 discipline run
 * on actual data streams).
 */

#include <gtest/gtest.h>

#include "accel/lower_bound.hh"
#include "accel/simulator.hh"
#include "dnn/activation.hh"
#include "dnn/dense.hh"
#include "dnn/models.hh"

namespace mindful::accel {
namespace {

dnn::Network
makeNet()
{
    dnn::Network net("pipe", dnn::Shape{16});
    net.emplace<dnn::DenseLayer>(16, 12);
    net.emplace<dnn::ReluLayer>();
    net.emplace<dnn::DenseLayer>(12, 8);
    net.emplace<dnn::ReluLayer>();
    net.emplace<dnn::DenseLayer>(8, 4);
    Rng rng(5);
    net.initializeWeights(rng);
    return net;
}

std::vector<dnn::Tensor>
makeBatch(std::size_t count, std::size_t size)
{
    std::vector<dnn::Tensor> batch;
    for (std::size_t b = 0; b < count; ++b) {
        dnn::Tensor x(dnn::Shape{size});
        for (std::size_t i = 0; i < size; ++i)
            x[i] = 0.05f * static_cast<float>((b * 7 + i) % 23) - 0.4f;
        batch.push_back(std::move(x));
    }
    return batch;
}

TEST(PipelinedSimulatorTest, OutputsMatchReference)
{
    auto net = makeNet();
    auto batch = makeBatch(5, 16);
    AcceleratorSimulator sim({4, nangate45()});
    std::vector<std::uint64_t> units{4, 0, 4, 0, 2};
    auto result = sim.runPipelined(net, batch, units);
    ASSERT_EQ(result.outputs.size(), 5u);
    for (std::size_t b = 0; b < batch.size(); ++b) {
        EXPECT_FLOAT_EQ(
            result.outputs[b].maxAbsDiff(net.forward(batch[b])), 0.0f);
    }
}

TEST(PipelinedSimulatorTest, TimingFormula)
{
    auto net = makeNet();
    AcceleratorSimulator sim({1, nangate45()}); // pool size unused
    std::vector<std::uint64_t> units{3, 0, 2, 0, 4};
    auto result = sim.runPipelined(net, makeBatch(4, 16), units);

    // Stage latencies: dense 16->12 with 3 units: ceil(12/3)*16 = 64
    // cycles; dense 12->8 with 2 units: ceil(8/2)*12 = 48; dense
    // 8->4 with 4 units: ceil(4/4)*8 = 8. t_MAC = 2 ns.
    EXPECT_NEAR(result.stageLatency[0].inNanoseconds(), 128.0, 1e-9);
    EXPECT_NEAR(result.stageLatency[2].inNanoseconds(), 96.0, 1e-9);
    EXPECT_NEAR(result.stageLatency[4].inNanoseconds(), 16.0, 1e-9);
    EXPECT_NEAR(result.iterationInterval.inNanoseconds(), 128.0, 1e-9);
    // makespan = fill (128+96+16) + 3 * interval.
    EXPECT_NEAR(result.makespan.inNanoseconds(), 240.0 + 3 * 128.0, 1e-9);
}

TEST(PipelinedSimulatorTest, SolverAllocationMeetsItsOwnDeadline)
{
    auto net = dnn::buildSpeechMlp(128);
    Rng rng(2);
    net.initializeWeights(rng);

    Time deadline = period(Frequency::kilohertz(2.0));
    LowerBoundSolver solver(nangate45());
    auto bound = solver.solvePipelined(net.census(), deadline);
    ASSERT_TRUE(bound.feasible);

    AcceleratorSimulator sim({1, nangate45()});
    auto result =
        sim.runPipelined(net, makeBatch(3, 1536), bound.perLayerUnits);
    // Steady state: one inference completes per interval <= deadline.
    EXPECT_LE(result.iterationInterval.inSeconds(), deadline.inSeconds());
    EXPECT_NEAR(result.iterationInterval.inSeconds(),
                bound.latency.inSeconds(), 1e-15);
}

TEST(PipelinedSimulatorTest, ThroughputBeatsSharedPoolAtEqualUnits)
{
    // With the same total PE count, the pipeline's initiation
    // interval is at most the shared pool's full-network latency.
    auto net = makeNet();
    std::vector<std::uint64_t> units{6, 0, 4, 0, 2}; // 12 total
    AcceleratorSimulator sim({12, nangate45()});

    auto batch = makeBatch(8, 16);
    auto pipelined = sim.runPipelined(net, batch, units);
    auto shared = sim.run(net, batch.front());
    EXPECT_LE(pipelined.iterationInterval.inSeconds(),
              shared.latency.inSeconds());
}

TEST(PipelinedSimulatorTest, EnergyCountsEveryInference)
{
    auto net = makeNet();
    AcceleratorSimulator sim({4, nangate45()});
    std::vector<std::uint64_t> units{4, 0, 4, 0, 2};
    auto result = sim.runPipelined(net, makeBatch(6, 16), units);
    EXPECT_EQ(result.macsExecuted, 6u * net.totalMacs());
    EXPECT_NEAR(result.energy.inPicojoules(),
                static_cast<double>(result.macsExecuted) * 0.1, 1e-6);
}

TEST(PipelinedSimulatorDeathTest, MissingAllocationPanics)
{
    auto net = makeNet();
    AcceleratorSimulator sim({4, nangate45()});
    std::vector<std::uint64_t> units{4, 0, 0, 0, 2}; // layer 2 starved
    EXPECT_DEATH(sim.runPipelined(net, makeBatch(1, 16), units),
                 "non-zero unit allocation");
}

TEST(PipelinedSimulatorDeathTest, WrongVectorLengthPanics)
{
    auto net = makeNet();
    AcceleratorSimulator sim({4, nangate45()});
    EXPECT_DEATH(sim.runPipelined(net, makeBatch(1, 16), {4, 4}),
                 "match the layer count");
}

} // namespace
} // namespace mindful::accel
