/**
 * @file
 * PE-array simulator tests: functional equivalence with the
 * reference forward pass and consistency with the analytical
 * latency model, across a parameterized sweep of PE counts.
 */

#include <gtest/gtest.h>

#include "accel/lower_bound.hh"
#include "accel/simulator.hh"
#include "dnn/activation.hh"
#include "dnn/dense.hh"
#include "dnn/models.hh"

namespace mindful::accel {
namespace {

dnn::Network
makeMlp(std::uint64_t seed = 3)
{
    dnn::Network net("sim-mlp", dnn::Shape{32});
    net.emplace<dnn::DenseLayer>(32, 24);
    net.emplace<dnn::ReluLayer>();
    net.emplace<dnn::DenseLayer>(24, 16);
    net.emplace<dnn::ReluLayer>();
    net.emplace<dnn::DenseLayer>(16, 5);
    Rng rng(seed);
    net.initializeWeights(rng);
    return net;
}

dnn::Tensor
makeInput(std::size_t size)
{
    dnn::Tensor x(dnn::Shape{size});
    for (std::size_t i = 0; i < size; ++i)
        x[i] = 0.1f * static_cast<float>(i % 17) - 0.5f;
    return x;
}

TEST(SimulatorTest, OutputBitIdenticalToReference)
{
    auto net = makeMlp();
    auto input = makeInput(32);
    dnn::Tensor reference = net.forward(input);

    AcceleratorSimulator sim({8, nangate45()});
    auto result = sim.run(net, input);
    EXPECT_FLOAT_EQ(result.output.maxAbsDiff(reference), 0.0f);
}

/** Equivalence must hold for any PE count. */
class SimulatorPeSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SimulatorPeSweep, EquivalentAcrossPeCounts)
{
    auto net = makeMlp();
    auto input = makeInput(32);
    dnn::Tensor reference = net.forward(input);

    AcceleratorSimulator sim({GetParam(), nangate45()});
    auto result = sim.run(net, input);
    EXPECT_FLOAT_EQ(result.output.maxAbsDiff(reference), 0.0f);
}

TEST_P(SimulatorPeSweep, CyclesMatchAnalyticalLatencyModel)
{
    auto net = makeMlp();
    auto input = makeInput(32);

    AcceleratorSimulator sim({GetParam(), nangate45()});
    auto result = sim.run(net, input);

    LowerBoundSolver solver(nangate45());
    Time predicted = solver.sharedPoolLatency(net.census(), GetParam());
    EXPECT_NEAR(result.latency.inSeconds(), predicted.inSeconds(), 1e-15);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, SimulatorPeSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 24u,
                                           64u));

TEST(SimulatorTest, CycleCountExactForKnownShape)
{
    // One dense 8->4 with 2 PEs: ceil(4/2) = 2 passes x 8 steps.
    dnn::Network net("tiny", dnn::Shape{8});
    net.emplace<dnn::DenseLayer>(8, 4);
    Rng rng(1);
    net.initializeWeights(rng);

    AcceleratorSimulator sim({2, nangate45()});
    auto result = sim.run(net, makeInput(8));
    EXPECT_EQ(result.cycles, 16u);
    EXPECT_EQ(result.macsExecuted, 32u);
    EXPECT_DOUBLE_EQ(result.utilization, 1.0);
    EXPECT_NEAR(result.latency.inNanoseconds(), 32.0, 1e-12);
    EXPECT_NEAR(result.energy.inPicojoules(), 3.2, 1e-9);
}

TEST(SimulatorTest, UtilizationDropsWithIdlePes)
{
    // 4 output rows on 3 PEs: second pass runs 1 of 3 PEs.
    dnn::Network net("tiny", dnn::Shape{8});
    net.emplace<dnn::DenseLayer>(8, 4);
    Rng rng(1);
    net.initializeWeights(rng);

    AcceleratorSimulator sim({3, nangate45()});
    auto result = sim.run(net, makeInput(8));
    EXPECT_EQ(result.cycles, 16u);
    EXPECT_NEAR(result.utilization, 32.0 / (16.0 * 3.0), 1e-12);
}

TEST(SimulatorTest, PerLayerCyclesReported)
{
    auto net = makeMlp();
    AcceleratorSimulator sim({8, nangate45()});
    auto result = sim.run(net, makeInput(32));
    ASSERT_EQ(result.layerCycles.size(), net.layerCount());
    EXPECT_EQ(result.layerCycles[0], 3u * 32u); // ceil(24/8) passes
    EXPECT_EQ(result.layerCycles[1], 0u);       // ReLU is free
    std::uint64_t total = 0;
    for (auto c : result.layerCycles)
        total += c;
    EXPECT_EQ(total, result.cycles);
}

TEST(SimulatorTest, EnergyUsesTechnologyParameters)
{
    auto net = makeMlp();
    auto input = makeInput(32);
    auto slow = AcceleratorSimulator({8, nangate45()}).run(net, input);
    auto fast = AcceleratorSimulator({8, scaled12nm()}).run(net, input);
    EXPECT_EQ(slow.macsExecuted, fast.macsExecuted);
    EXPECT_GT(slow.energy.inJoules(), fast.energy.inJoules());
    EXPECT_GT(slow.latency.inSeconds(), fast.latency.inSeconds());
}

TEST(SimulatorTest, RunsTheRealSpeechMlp)
{
    // Integration: the Fig. 10 model at base scale, end to end.
    auto net = dnn::buildSpeechMlp(128);
    Rng rng(11);
    net.initializeWeights(rng);
    auto input = makeInput(dnn::elementCount(net.inputShape()));

    AcceleratorSimulator sim({64, nangate45()});
    auto result = sim.run(net, input);
    dnn::Tensor reference = net.forward(input);
    EXPECT_FLOAT_EQ(result.output.maxAbsDiff(reference), 0.0f);
    EXPECT_EQ(result.macsExecuted, net.totalMacs());
    EXPECT_GT(result.utilization, 0.5);
}

TEST(SimulatorDeathTest, ZeroPesPanics)
{
    EXPECT_DEATH(AcceleratorSimulator({0, nangate45()}),
                 "at least one MAC");
}

} // namespace
} // namespace mindful::accel
