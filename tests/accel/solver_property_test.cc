/**
 * @file
 * Property tests pitting the lower-bound solver against brute force:
 * on randomized small censuses, the binary-searched unit count must
 * be *exactly* the minimal feasible one, and the pipelined per-layer
 * allocation must be per-layer minimal.
 */

#include <gtest/gtest.h>

#include "accel/lower_bound.hh"
#include "base/random.hh"
#include "base/special_math.hh"

namespace mindful::accel {
namespace {

std::vector<dnn::MacCensus>
randomCensus(Rng &rng, std::size_t layers)
{
    std::vector<dnn::MacCensus> census;
    for (std::size_t i = 0; i < layers; ++i) {
        // Mix MAC-bearing and free layers.
        if (rng.bernoulli(0.2)) {
            census.push_back({0, 0});
        } else {
            census.push_back(
                {static_cast<std::uint64_t>(rng.uniformInt(1, 96)),
                 static_cast<std::uint64_t>(rng.uniformInt(1, 64))});
        }
    }
    return census;
}

class SolverBruteForceSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverBruteForceSweep, SharedPoolUnitsAreExactlyMinimal)
{
    Rng rng(1000 + GetParam());
    LowerBoundSolver solver(nangate45());

    for (int trial = 0; trial < 20; ++trial) {
        auto census = randomCensus(rng, 1 + trial % 5);
        // Pick a deadline between the fastest and slowest possible.
        double t_min =
            solver.sharedPoolLatency(census, dnn::maxMacOp(census) + 1)
                .inSeconds();
        double t_max = solver.sharedPoolLatency(census, 1).inSeconds();
        if (t_max <= 0.0)
            continue; // MAC-free census
        Time deadline = Time::seconds(
            rng.uniform(t_min * 0.5, t_max * 1.5));

        auto bound = solver.solveSharedPool(census, deadline);

        // Brute force the minimal feasible count.
        std::uint64_t brute = 0;
        for (std::uint64_t m = 1; m <= dnn::maxMacOp(census); ++m) {
            if (solver.sharedPoolLatency(census, m) <= deadline) {
                brute = m;
                break;
            }
        }
        if (brute == 0) {
            EXPECT_FALSE(bound.feasible) << "trial " << trial;
        } else {
            ASSERT_TRUE(bound.feasible) << "trial " << trial;
            EXPECT_EQ(bound.macUnits, brute) << "trial " << trial;
        }
    }
}

TEST_P(SolverBruteForceSweep, PipelinedAllocationIsPerLayerMinimal)
{
    Rng rng(2000 + GetParam());
    LowerBoundSolver solver(nangate45());
    const double t_mac = nangate45().macTime.inSeconds();

    for (int trial = 0; trial < 20; ++trial) {
        auto census = randomCensus(rng, 1 + trial % 5);
        Time deadline = Time::nanoseconds(rng.uniform(100.0, 20000.0));
        auto bound = solver.solvePipelined(census, deadline);
        if (!bound.feasible)
            continue;

        for (std::size_t i = 0; i < census.size(); ++i) {
            if (census[i].empty()) {
                EXPECT_EQ(bound.perLayerUnits[i], 0u);
                continue;
            }
            std::uint64_t units = bound.perLayerUnits[i];
            auto stage_time = [&](std::uint64_t m) {
                return static_cast<double>(census[i].macSeq) * t_mac *
                       static_cast<double>(ceilDiv(census[i].macOp, m));
            };
            EXPECT_LE(stage_time(units), deadline.inSeconds())
                << "trial " << trial << " layer " << i;
            if (units > 1) {
                EXPECT_GT(stage_time(units - 1), deadline.inSeconds())
                    << "trial " << trial << " layer " << i
                    << ": allocation not minimal";
            }
        }
    }
}

TEST_P(SolverBruteForceSweep, BestNeverWorseThanEitherDiscipline)
{
    Rng rng(3000 + GetParam());
    LowerBoundSolver solver(nangate45());
    for (int trial = 0; trial < 20; ++trial) {
        auto census = randomCensus(rng, 2 + trial % 4);
        Time deadline = Time::nanoseconds(rng.uniform(200.0, 50000.0));
        auto best = solver.solveBest(census, deadline);
        auto shared = solver.solveSharedPool(census, deadline);
        auto pipelined = solver.solvePipelined(census, deadline);
        if (shared.feasible) {
            EXPECT_LE(best.macUnits, shared.macUnits);
        }
        if (pipelined.feasible) {
            EXPECT_LE(best.macUnits, pipelined.macUnits);
        }
        EXPECT_EQ(best.feasible,
                  shared.feasible || pipelined.feasible);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverBruteForceSweep,
                         ::testing::Range(0, 5));

} // namespace
} // namespace mindful::accel
