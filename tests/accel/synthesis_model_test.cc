/**
 * @file
 * Fig. 9 synthesis-model tests: the trends the paper reports must
 * hold in the calibrated component model.
 */

#include <gtest/gtest.h>

#include "accel/synthesis_model.hh"

namespace mindful::accel {
namespace {

TEST(SynthesisModelTest, TwelveDesignPointsMatchTheFig9Table)
{
    auto points = SynthesisModel::paperDesignPoints();
    ASSERT_EQ(points.size(), 12u);
    // Designs 1-5: fixed MAC_hw = 4, #MAC_op 4 -> 64.
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(points[i].macSeq, 256u);
        EXPECT_EQ(points[i].macHw, 4u);
        EXPECT_EQ(points[i].macOp, 4u << i);
    }
    // Designs 6-9: MAC_hw grows to #MAC_op = 64.
    for (int i = 5; i < 9; ++i) {
        EXPECT_EQ(points[i].macOp, 64u);
        EXPECT_EQ(points[i].macHw, 8u << (i - 5));
    }
    // Design 12 is the largest configuration.
    EXPECT_EQ(points[11].macSeq, 2048u);
    EXPECT_EQ(points[11].macHw, 512u);
}

TEST(SynthesisModelTest, PePowerScalesWithRomDepth)
{
    SynthesisModel model;
    EXPECT_GT(model.pePower(2048).inMicrowatts(),
              model.pePower(256).inMicrowatts());
}

TEST(SynthesisModelTest, SmallDesignsPeShareAroundQuarter)
{
    // Paper: "in smaller designs (1-5) ... relative PE power stays
    // low at around 25%".
    SynthesisModel model;
    auto points = SynthesisModel::paperDesignPoints();
    for (int i = 0; i < 5; ++i) {
        double share = model.estimate(points[i]).peShare;
        EXPECT_GT(share, 0.15) << "design " << i + 1;
        EXPECT_LT(share, 0.35) << "design " << i + 1;
    }
}

TEST(SynthesisModelTest, PeShareRisesWhenMacHwGrows)
{
    // Paper: designs 6-9 raise PE power to ~80% of the total.
    SynthesisModel model;
    auto points = SynthesisModel::paperDesignPoints();
    double previous = model.estimate(points[4]).peShare;
    for (int i = 5; i < 9; ++i) {
        double share = model.estimate(points[i]).peShare;
        EXPECT_GT(share, previous) << "design " << i + 1;
        previous = share;
    }
    EXPECT_NEAR(model.estimate(points[8]).peShare, 0.80, 0.05);
}

TEST(SynthesisModelTest, LargestDesignsApproachFullPeDominance)
{
    // Paper: designs 10-12 push PE share from ~80% toward ~96%.
    SynthesisModel model;
    auto points = SynthesisModel::paperDesignPoints();
    double d10 = model.estimate(points[9]).peShare;
    double d11 = model.estimate(points[10]).peShare;
    double d12 = model.estimate(points[11]).peShare;
    EXPECT_GT(d10, 0.80);
    EXPECT_GT(d11, d10);
    EXPECT_GT(d12, d11);
    EXPECT_NEAR(d12, 0.95, 0.03);
}

TEST(SynthesisModelTest, TotalPowerTracksMacHw)
{
    // The paper's core claim: total power tracks MAC_hw closely.
    SynthesisModel model;
    auto points = SynthesisModel::paperDesignPoints();
    // Design 9 has 16x the PEs of design 5 at equal seq/op.
    double p5 = model.estimate(points[4]).layerPower.inMicrowatts();
    double p9 = model.estimate(points[8]).layerPower.inMicrowatts();
    EXPECT_GT(p9 / p5, 3.0);
    // And within designs 1-5 (PE count fixed) power moves slowly.
    double p1 = model.estimate(points[0]).layerPower.inMicrowatts();
    EXPECT_LT(p5 / p1, 1.6);
}

TEST(SynthesisModelTest, EstimateIsAdditive)
{
    SynthesisModel model;
    AcceleratorDesignPoint point{256, 8, 16};
    auto estimate = model.estimate(point);
    EXPECT_GT(estimate.layerPower.inWatts(), estimate.pePower.inWatts());
    EXPECT_NEAR(estimate.peShare,
                estimate.pePower / estimate.layerPower, 1e-12);
}

TEST(SynthesisModelDeathTest, MorePesThanOpsPanics)
{
    SynthesisModel model;
    EXPECT_DEATH(model.estimate({256, 8, 4}), "never exploitable");
}

TEST(MacUnitTest, PaperParameterSets)
{
    auto n45 = nangate45();
    EXPECT_DOUBLE_EQ(n45.macTime.inNanoseconds(), 2.0);
    EXPECT_DOUBLE_EQ(n45.macPower.inMilliwatts(), 0.05);

    auto n12 = scaled12nm();
    EXPECT_DOUBLE_EQ(n12.macTime.inNanoseconds(), 1.0);
    EXPECT_DOUBLE_EQ(n12.macPower.inMilliwatts(), 0.026);

    // Energy per MAC: 45 nm = 0.1 pJ, 12 nm = 0.026 pJ.
    EXPECT_NEAR(n45.energyPerMac().inPicojoules(), 0.1, 1e-12);
    EXPECT_NEAR(n12.energyPerMac().inPicojoules(), 0.026, 1e-12);
}

} // namespace
} // namespace mindful::accel
