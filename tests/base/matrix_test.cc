/**
 * @file
 * Dense matrix algebra tests, including parameterized solve
 * round-trips over a range of sizes.
 */

#include <gtest/gtest.h>

#include "base/matrix.hh"
#include "base/random.hh"

namespace mindful {
namespace {

TEST(MatrixTest, ConstructionAndIndexing)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, InitializerListLayout)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, AdditionSubtraction)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{4.0, 3.0}, {2.0, 1.0}};
    Matrix sum = a + b;
    EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
    Matrix diff = a - b;
    EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
}

TEST(MatrixTest, Product)
{
    Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
    Matrix p = a * b;
    ASSERT_EQ(p.rows(), 2u);
    ASSERT_EQ(p.cols(), 2u);
    EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral)
{
    Matrix a{{2.0, -1.0}, {0.5, 3.0}};
    EXPECT_DOUBLE_EQ((a * Matrix::identity(2)).maxAbsDiff(a), 0.0);
    EXPECT_DOUBLE_EQ((Matrix::identity(2) * a).maxAbsDiff(a), 0.0);
}

TEST(MatrixTest, Transpose)
{
    Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    Matrix t = a.transpose();
    ASSERT_EQ(t.rows(), 3u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_DOUBLE_EQ(t.transpose().maxAbsDiff(a), 0.0);
}

TEST(MatrixTest, InverseKnownMatrix)
{
    Matrix a{{4.0, 7.0}, {2.0, 6.0}};
    Matrix inv = a.inverse();
    EXPECT_NEAR(inv(0, 0), 0.6, 1e-12);
    EXPECT_NEAR(inv(0, 1), -0.7, 1e-12);
    EXPECT_NEAR(inv(1, 0), -0.2, 1e-12);
    EXPECT_NEAR(inv(1, 1), 0.4, 1e-12);
}

TEST(MatrixTest, PivotingHandlesZeroLeadingEntry)
{
    Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    Matrix inv = a.inverse();
    EXPECT_NEAR((a * inv).maxAbsDiff(Matrix::identity(2)), 0.0, 1e-12);
}

/** Property sweep: A * A^-1 == I for random well-conditioned A. */
class MatrixSolveRoundTrip : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MatrixSolveRoundTrip, InverseRoundTrips)
{
    std::size_t n = GetParam();
    Rng rng(1234 + n);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = rng.gaussian();
        a(i, i) += static_cast<double>(n); // diagonal dominance
    }
    Matrix inv = a.inverse();
    EXPECT_LT((a * inv).maxAbsDiff(Matrix::identity(n)), 1e-9);
}

TEST_P(MatrixSolveRoundTrip, SolveMatchesDirectProduct)
{
    std::size_t n = GetParam();
    Rng rng(987 + n);
    Matrix a(n, n);
    Matrix x_true(n, 2);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = rng.gaussian();
        a(i, i) += static_cast<double>(n);
        x_true(i, 0) = rng.gaussian();
        x_true(i, 1) = rng.gaussian();
    }
    Matrix b = a * x_true;
    Matrix x = a.solve(b);
    EXPECT_LT(x.maxAbsDiff(x_true), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixSolveRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(MatrixTest, LeastSquaresRecoversExactSolution)
{
    // Overdetermined but consistent system.
    Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
    Matrix x_true{{2.0}, {-3.0}};
    Matrix b = a * x_true;
    Matrix x = a.leastSquares(b);
    EXPECT_LT(x.maxAbsDiff(x_true), 1e-6);
}

TEST(MatrixTest, LeastSquaresMinimizesResidual)
{
    // Inconsistent system: best fit of y = c over {1, 2, 3} is 2.
    Matrix a{{1.0}, {1.0}, {1.0}};
    Matrix b{{1.0}, {2.0}, {3.0}};
    Matrix x = a.leastSquares(b);
    EXPECT_NEAR(x(0, 0), 2.0, 1e-9);
}

TEST(MatrixTest, NormAndVectorHelpers)
{
    Matrix v = Matrix::columnVector({3.0, 4.0});
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    auto flat = v.toVector();
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_DOUBLE_EQ(flat[1], 4.0);
}

TEST(MatrixTest, Diagonal)
{
    Matrix d = Matrix::diagonal({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixDeathTest, SingularMatrixIsFatal)
{
    Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_EXIT(singular.inverse(), ::testing::ExitedWithCode(1),
                "singular");
}

TEST(MatrixDeathTest, ShapeMismatchPanics)
{
    Matrix a(2, 3);
    Matrix b(2, 3);
    EXPECT_DEATH(a * b, "shape mismatch");
}

} // namespace
} // namespace mindful
