/**
 * @file
 * Tests for logging, decibel helpers, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "base/decibel.hh"
#include "base/logging.hh"
#include "base/random.hh"

namespace mindful {
namespace {

TEST(DecibelTest, RoundTrip)
{
    for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 60.0, 80.0})
        EXPECT_NEAR(toDecibels(fromDecibels(db)), db, 1e-10);
}

TEST(DecibelTest, KnownAnchors)
{
    EXPECT_NEAR(fromDecibels(3.0), 1.995, 1e-3);
    EXPECT_DOUBLE_EQ(fromDecibels(10.0), 10.0);
    EXPECT_DOUBLE_EQ(fromDecibels(0.0), 1.0);
    // The paper's 60 dB path loss is a factor of 1e6.
    EXPECT_DOUBLE_EQ(fromDecibels(60.0), 1e6);
}

TEST(DecibelTest, DbmAnchors)
{
    EXPECT_DOUBLE_EQ(toDbm(Power::milliwatts(1.0)), 0.0);
    EXPECT_NEAR(toDbm(Power::milliwatts(100.0)), 20.0, 1e-12);
    EXPECT_NEAR(fromDbm(-30.0).inMicrowatts(), 1.0, 1e-9);
}

TEST(RngTest, DeterministicForEqualSeeds)
{
    Rng a(99), b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool differs = false;
    for (int i = 0; i < 10 && !differs; ++i)
        differs = a.bits() != b.bits();
    EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRespectsRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(-2.0, 3.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(RngTest, UniformIntInclusiveBounds)
{
    Rng rng(6);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, PoissonMeanMatches)
{
    Rng rng(8);
    double sum = 0.0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        sum += rng.poisson(4.0);
    EXPECT_NEAR(sum / draws, 4.0, 0.1);
}

TEST(RngTest, BernoulliProbability)
{
    Rng rng(9);
    int hits = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.02);
}

TEST(LoggingTest, LogLevelControlsOutput)
{
    LogLevel original = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    // Must not crash while silenced.
    MINDFUL_WARN("suppressed warning");
    MINDFUL_INFORM("suppressed info");
    setLogLevel(original);
}

TEST(LoggingTest, WarnOnceDeduplicatesByMessage)
{
    LogLevel original = logLevel();
    setLogLevel(LogLevel::Warning);
    resetWarnOnce();

    testing::internal::CaptureStderr();
    for (int i = 0; i < 5; ++i)
        MINDFUL_WARN_ONCE("adc saturated on channel ", 3);
    MINDFUL_WARN_ONCE("adc saturated on channel ", 4); // distinct text
    std::string captured = testing::internal::GetCapturedStderr();

    auto occurrences = [&captured](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t pos = captured.find(needle);
             pos != std::string::npos;
             pos = captured.find(needle, pos + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(occurrences("channel 3"), 1u);
    EXPECT_EQ(occurrences("channel 4"), 1u);

    // Resetting the dedup set re-arms the message.
    resetWarnOnce();
    testing::internal::CaptureStderr();
    MINDFUL_WARN_ONCE("adc saturated on channel ", 3);
    captured = testing::internal::GetCapturedStderr();
    EXPECT_NE(captured.find("channel 3"), std::string::npos);

    resetWarnOnce();
    setLogLevel(original);
}

TEST(LoggingTest, ElapsedPrefixStampsLogLines)
{
    LogLevel original = logLevel();
    setLogLevel(LogLevel::Warning);
    EXPECT_FALSE(logElapsedPrefix());
    setLogElapsedPrefix(true);
    EXPECT_TRUE(logElapsedPrefix());

    testing::internal::CaptureStderr();
    MINDFUL_WARN("prefixed line");
    std::string captured = testing::internal::GetCapturedStderr();
    // "[  12.345s] warn: prefixed line"
    EXPECT_TRUE(std::regex_search(
        captured, std::regex(R"(\[ *[0-9]+\.[0-9]{3}s\] warn:)")))
        << captured;

    setLogElapsedPrefix(false);
    testing::internal::CaptureStderr();
    MINDFUL_WARN("bare line");
    captured = testing::internal::GetCapturedStderr();
    EXPECT_EQ(captured.rfind("warn:", 0), 0u) << captured;

    setLogLevel(original);
}

TEST(LoggingDeathTest, AssertMessageIncludesCondition)
{
    EXPECT_DEATH(MINDFUL_ASSERT(1 == 2, "math broke"),
                 "assertion failed: 1 == 2");
}

TEST(LoggingDeathTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(MINDFUL_FATAL("bad config value ", 42),
                ::testing::ExitedWithCode(1), "bad config value 42");
}

} // namespace
} // namespace mindful
