/**
 * @file
 * Tests for the locale-independent strict parsers (base/parse.hh):
 * full-consume semantics, 64-bit exactness, and the thread-count
 * policy applied to every --threads flag and MINDFUL_THREADS.
 */

#include <clocale>
#include <cstdint>

#include <gtest/gtest.h>

#include "base/parse.hh"

namespace mindful {
namespace {

TEST(ParseDoubleTest, ParsesPlainValues)
{
    EXPECT_DOUBLE_EQ(*parseDouble("0"), 0.0);
    EXPECT_DOUBLE_EQ(*parseDouble("3.25"), 3.25);
    EXPECT_DOUBLE_EQ(*parseDouble("-12.5"), -12.5);
    EXPECT_DOUBLE_EQ(*parseDouble("+4.5"), 4.5);
    EXPECT_DOUBLE_EQ(*parseDouble("1e3"), 1000.0);
    EXPECT_DOUBLE_EQ(*parseDouble("2.5E-2"), 0.025);
}

TEST(ParseDoubleTest, RejectsPartialAndEmptyInput)
{
    EXPECT_FALSE(parseDouble(""));
    EXPECT_FALSE(parseDouble("twelve"));
    EXPECT_FALSE(parseDouble("1.5x"));
    EXPECT_FALSE(parseDouble("1.5 "));
    EXPECT_FALSE(parseDouble(" 1.5"));
    EXPECT_FALSE(parseDouble("1,5"));
    EXPECT_FALSE(parseDouble("--1"));
}

TEST(ParseDoubleTest, RejectsNonFiniteValues)
{
    EXPECT_FALSE(parseDouble("inf"));
    EXPECT_FALSE(parseDouble("-inf"));
    EXPECT_FALSE(parseDouble("nan"));
    EXPECT_FALSE(parseDouble("1e999"));
}

TEST(ParseDoubleTest, IgnoresProcessLocale)
{
    // Even if a comma-decimal C locale is installed (best effort:
    // most containers only ship "C"), the parse must not change —
    // that is the whole point of from_chars under the hood.
    const char *previous = std::setlocale(LC_NUMERIC, nullptr);
    const std::string saved = previous ? previous : "C";
    std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
    EXPECT_DOUBLE_EQ(*parseDouble("3.25"), 3.25);
    EXPECT_FALSE(parseDouble("3,25"));
    std::setlocale(LC_NUMERIC, saved.c_str());
}

TEST(ParseUnsignedTest, ParsesFullUint64Range)
{
    EXPECT_EQ(*parseUnsigned("0"), 0u);
    EXPECT_EQ(*parseUnsigned("1024"), 1024u);
    // 2^53 + 1: exact in uint64, silently rounded by any
    // double-mediated parse.
    EXPECT_EQ(*parseUnsigned("9007199254740993"), 9007199254740993ull);
    EXPECT_EQ(*parseUnsigned("18446744073709551615"),
              18446744073709551615ull);
}

TEST(ParseUnsignedTest, RejectsGarbage)
{
    EXPECT_FALSE(parseUnsigned(""));
    EXPECT_FALSE(parseUnsigned("-1"));
    EXPECT_FALSE(parseUnsigned("12abc"));
    EXPECT_FALSE(parseUnsigned("1.5"));
    EXPECT_FALSE(parseUnsigned(" 8"));
    EXPECT_FALSE(parseUnsigned("8 "));
    EXPECT_FALSE(parseUnsigned("18446744073709551616")); // 2^64
}

TEST(ParseThreadCountTest, AcceptsSaneCounts)
{
    EXPECT_EQ(*parseThreadCount("0"), 0u); // 0 = automatic
    EXPECT_EQ(*parseThreadCount("1"), 1u);
    EXPECT_EQ(*parseThreadCount("8"), 8u);
    EXPECT_EQ(*parseThreadCount("4096"), kMaxThreadCount);
}

TEST(ParseThreadCountTest, RejectsHostileInput)
{
    // The historical bug class: std::stoul("-1") wraps to a huge
    // count and "12abc" half-parses to 12. Both must be errors.
    EXPECT_FALSE(parseThreadCount("-1"));
    EXPECT_FALSE(parseThreadCount("garbage"));
    EXPECT_FALSE(parseThreadCount("12abc"));
    EXPECT_FALSE(parseThreadCount(""));
    EXPECT_FALSE(parseThreadCount(" 8"));
    EXPECT_FALSE(parseThreadCount("4097"));
    EXPECT_FALSE(parseThreadCount("18446744073709551616"));
    EXPECT_FALSE(parseThreadCount("1e2"));
}

} // namespace
} // namespace mindful
