/**
 * @file
 * Rng::fork() stream tests: forked streams must be deterministic
 * functions of (parent seed, stream index) and statistically
 * uncorrelated with each other and with the parent — the property
 * that makes sharded parallel Monte-Carlo reproducible.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "base/random.hh"

namespace mindful {
namespace {

TEST(RngForkTest, SameStreamIndexGivesIdenticalDraws)
{
    Rng parent(42);
    Rng a = parent.fork(7);
    Rng b = parent.fork(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.bits(), b.bits());
}

TEST(RngForkTest, ForkIgnoresParentEnginePosition)
{
    // fork() derives from the seed, not from engine draws: advancing
    // the parent must not change what its forks produce. This is what
    // lets any thread fork stream i and get the same stream.
    Rng fresh(42);
    Rng advanced(42);
    for (int i = 0; i < 1000; ++i)
        (void)advanced.bits();
    Rng a = fresh.fork(3);
    Rng b = advanced.fork(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.bits(), b.bits());
}

TEST(RngForkTest, DistinctStreamsProduceDistinctSequences)
{
    Rng parent(1);
    std::set<std::uint64_t> first_draws;
    for (std::uint64_t stream = 0; stream < 256; ++stream)
        first_draws.insert(parent.fork(stream).bits());
    // All 256 streams must open differently (collisions would mean
    // correlated shards).
    EXPECT_EQ(first_draws.size(), 256u);
}

TEST(RngForkTest, ForkedSeedsDifferFromParent)
{
    Rng parent(123);
    for (std::uint64_t stream = 0; stream < 16; ++stream)
        EXPECT_NE(parent.fork(stream).seed(), parent.seed());
}

double
correlation(const std::vector<double> &a, const std::vector<double> &b)
{
    const auto n = static_cast<double>(a.size());
    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= n;
    mb /= n;
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    return cov / std::sqrt(va * vb);
}

TEST(RngForkTest, SiblingStreamsAreUncorrelated)
{
    // Statistical smoke test: |r| for 20k paired gaussians is ~N(0,
    // 1/sqrt(20000)) for independent streams, so |r| < 0.03 is a > 4
    // sigma acceptance band — loose enough to be deterministic-stable,
    // tight enough to catch the correlated streams raw bits()
    // reseeding used to produce.
    const std::size_t draws = 20000;
    Rng parent(0xfeedbeef);
    for (auto [s1, s2] : {std::pair<std::uint64_t, std::uint64_t>{0, 1},
                          {1, 2},
                          {0, 255}}) {
        Rng a = parent.fork(s1);
        Rng b = parent.fork(s2);
        std::vector<double> da(draws), db(draws);
        for (std::size_t i = 0; i < draws; ++i) {
            da[i] = a.gaussian();
            db[i] = b.gaussian();
        }
        EXPECT_LT(std::abs(correlation(da, db)), 0.03)
            << "streams " << s1 << " and " << s2;
    }
}

TEST(RngForkTest, ChildStreamIsUncorrelatedWithParent)
{
    const std::size_t draws = 20000;
    Rng parent(0xabcdef);
    Rng child = parent.fork(0);
    std::vector<double> dp(draws), dc(draws);
    for (std::size_t i = 0; i < draws; ++i) {
        dp[i] = parent.gaussian();
        dc[i] = child.gaussian();
    }
    EXPECT_LT(std::abs(correlation(dp, dc)), 0.03);
}

TEST(RngForkTest, ForksOfForksStayIndependent)
{
    Rng parent(9);
    Rng child = parent.fork(1);
    Rng grandchild = child.fork(1);
    // The chain must not collapse back onto an ancestor stream.
    EXPECT_NE(grandchild.seed(), child.seed());
    EXPECT_NE(grandchild.seed(), parent.seed());
    EXPECT_NE(grandchild.bits(), parent.fork(1).bits());
}

TEST(SplitMix64Test, MatchesReferenceVectors)
{
    // The first three outputs of the reference splitmix64 generator
    // seeded with 0. splitmix64(state) advances the state by the
    // golden-ratio constant internally, so feeding it the running
    // state reproduces the reference sequence.
    const std::uint64_t expected[] = {
        0xe220a8397b1dcdafull,
        0x6e789e6aa1b965f4ull,
        0x06c45d188009454full,
    };
    std::uint64_t state = 0;
    for (std::uint64_t value : expected) {
        EXPECT_EQ(Rng::splitmix64(state), value);
        state += 0x9e3779b97f4a7c15ull;
    }
}

} // namespace
} // namespace mindful
