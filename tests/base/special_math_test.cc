/**
 * @file
 * Special-function and search-helper tests, including parameterized
 * property sweeps of the Q-function inverse.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/special_math.hh"

namespace mindful {
namespace {

TEST(QFunctionTest, KnownValues)
{
    EXPECT_NEAR(qFunction(0.0), 0.5, 1e-15);
    // Q(1.6449) ~ 0.05, Q(2.3263) ~ 0.01.
    EXPECT_NEAR(qFunction(1.6448536269514722), 0.05, 1e-12);
    EXPECT_NEAR(qFunction(2.3263478740408408), 0.01, 1e-12);
}

TEST(QFunctionTest, SymmetricTails)
{
    for (double x : {0.3, 1.0, 2.5, 4.0})
        EXPECT_NEAR(qFunction(x) + qFunction(-x), 1.0, 1e-14);
}

TEST(QFunctionTest, MonotoneDecreasing)
{
    double prev = 1.0;
    for (double x = -6.0; x <= 8.0; x += 0.25) {
        double q = qFunction(x);
        EXPECT_LT(q, prev);
        prev = q;
    }
}

TEST(QFunctionTest, DeepTailStaysPositive)
{
    // 1e-6-class BERs live deep in the tail; erfc keeps precision.
    EXPECT_GT(qFunction(8.0), 0.0);
    EXPECT_LT(qFunction(8.0), 1e-14);
}

/** Property sweep: Q(Q^-1(p)) == p over many magnitudes. */
class QInverseRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(QInverseRoundTrip, RoundTripsThroughQ)
{
    double p = GetParam();
    double x = qFunctionInverse(p);
    EXPECT_NEAR(qFunction(x), p, p * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(TailProbabilities, QInverseRoundTrip,
                         ::testing::Values(0.4, 0.25, 0.1, 1e-2, 1e-3,
                                           1e-4, 1e-6, 1e-8, 1e-10,
                                           0.6, 0.9, 0.99));

TEST(QInverseTest, CentreIsZero)
{
    EXPECT_NEAR(qFunctionInverse(0.5), 0.0, 1e-12);
}

TEST(QInverseTest, PaperBerTarget)
{
    // The BER = 1e-6 target of the QAM study: Q^-1(1e-6) ~ 4.7534.
    EXPECT_NEAR(qFunctionInverse(1e-6), 4.753424, 1e-5);
}

TEST(ErfcInverseTest, MatchesErfc)
{
    for (double p : {1.5, 1.0, 0.5, 1e-3, 1e-6}) {
        double x = erfcInverse(p);
        EXPECT_NEAR(std::erfc(x), p, p * 1e-9);
    }
}

TEST(CeilDivTest, ExactAndInexact)
{
    EXPECT_EQ(ceilDiv(10, 5), 2u);
    EXPECT_EQ(ceilDiv(11, 5), 3u);
    EXPECT_EQ(ceilDiv(1, 5), 1u);
    EXPECT_EQ(ceilDiv(0, 5), 0u);
    EXPECT_EQ(ceilDiv(5, 0), 0u);
}

TEST(BisectTest, FindsSquareRoot)
{
    double root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-10);
}

TEST(BisectTest, HandlesDecreasingFunction)
{
    double root = bisect([](double x) { return 1.0 - x; }, 0.0, 5.0);
    EXPECT_NEAR(root, 1.0, 1e-10);
}

TEST(BisectTest, ExactEndpointRoot)
{
    EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(BinarySearchTest, FirstTrueFindsBoundary)
{
    auto pred = [](std::int64_t x) { return x >= 37; };
    EXPECT_EQ(binarySearchFirstTrue(0, 100, pred), 37);
}

TEST(BinarySearchTest, FirstTrueAllFalse)
{
    auto pred = [](std::int64_t) { return false; };
    EXPECT_EQ(binarySearchFirstTrue(0, 10, pred), 11);
}

TEST(BinarySearchTest, LastTrueFindsBoundary)
{
    auto pred = [](std::int64_t x) { return x <= 42; };
    EXPECT_EQ(binarySearchLastTrue(0, 100, pred), 42);
}

TEST(BinarySearchTest, LastTrueAllFalse)
{
    auto pred = [](std::int64_t) { return false; };
    EXPECT_EQ(binarySearchLastTrue(5, 10, pred), 4);
}

TEST(BinarySearchTest, SingleElementRanges)
{
    EXPECT_EQ(binarySearchFirstTrue(7, 7,
                                    [](std::int64_t) { return true; }),
              7);
    EXPECT_EQ(binarySearchLastTrue(7, 7,
                                   [](std::int64_t) { return true; }),
              7);
}

} // namespace
} // namespace mindful
