/**
 * @file
 * Streaming statistics tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/random.hh"
#include "base/stats.hh"

namespace mindful {
namespace {

TEST(RunningStatsTest, EmptyAccumulator)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, VarianceEdgeCases)
{
    RunningStats stats;
    // n = 0: no data, both variances defined as 0.
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.sampleVariance(), 0.0);

    // n = 1: a single sample has no spread; sampleVariance must not
    // divide by n - 1 = 0.
    stats.add(42.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.sampleVariance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);

    // n = 2: both become meaningful.
    stats.add(44.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 1.0);
    EXPECT_DOUBLE_EQ(stats.sampleVariance(), 2.0);
}

TEST(RunningStatsTest, VarianceNeverNegative)
{
    // Identical large-magnitude samples: cancellation can push the
    // internal sum of squares a hair below zero; the accessors clamp.
    RunningStats stats;
    for (int i = 0; i < 1000; ++i)
        stats.add(1e15 + 0.1);
    EXPECT_GE(stats.variance(), 0.0);
    EXPECT_GE(stats.sampleVariance(), 0.0);
    EXPECT_FALSE(std::isnan(stats.stddev()));
}

TEST(RunningStatsTest, KnownSeries)
{
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, SampleVarianceUsesBesselCorrection)
{
    RunningStats stats;
    for (double x : {1.0, 2.0, 3.0})
        stats.add(x);
    EXPECT_DOUBLE_EQ(stats.variance(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(stats.sampleVariance(), 1.0);
}

TEST(RunningStatsTest, MergeMatchesSequential)
{
    Rng rng(42);
    RunningStats all, left, right;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.gaussian(3.0, 2.0);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b); // empty rhs: no-op
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // empty lhs: copies
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, GaussianStreamConverges)
{
    Rng rng(7);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.gaussian(10.0, 3.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(HistogramTest, BinningAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.99);  // bin 9
    h.add(-1.0);  // underflow
    h.add(10.0);  // overflow (right edge exclusive)
    h.add(25.0);  // overflow
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, CentresAndFractions)
{
    Histogram h(0.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.binCentre(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCentre(3), 3.5);
    h.add(1.5);
    h.add(1.6);
    h.add(3.0);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.binFraction(1), 0.5);
}

TEST(HistogramTest, TotalIsConserved)
{
    Rng rng(3);
    Histogram h(-3.0, 3.0, 24);
    std::size_t samples = 10000;
    for (std::size_t i = 0; i < samples; ++i)
        h.add(rng.gaussian());
    std::size_t binned = h.underflow() + h.overflow();
    for (std::size_t b = 0; b < h.bins(); ++b)
        binned += h.binCount(b);
    EXPECT_EQ(binned, samples);
}

TEST(HistogramDeathTest, InvalidConstruction)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "non-empty");
}

TEST(LogHistogramTest, BucketsGrowGeometrically)
{
    LogHistogram h(1.0, 1000.0, 3); // edges 1, 10, 100, 1000
    EXPECT_NEAR(h.binLowerEdge(0), 1.0, 1e-12);
    EXPECT_NEAR(h.binUpperEdge(0), 10.0, 1e-9);
    EXPECT_NEAR(h.binLowerEdge(2), 100.0, 1e-9);
    EXPECT_NEAR(h.binUpperEdge(2), 1000.0, 1e-9);

    h.add(1.0);   // bin 0 (left edge inclusive)
    h.add(5.0);   // bin 0
    h.add(50.0);  // bin 1
    h.add(500.0); // bin 2
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(LogHistogramTest, UnderflowAndOverflow)
{
    LogHistogram h(1.0, 100.0, 2);
    h.add(0.5);    // below lo
    h.add(0.0);    // zero has no log bucket
    h.add(-3.0);   // negative likewise
    h.add(100.0);  // right edge exclusive
    h.add(1e9);    // far overflow
    EXPECT_EQ(h.underflow(), 3u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0) + h.binCount(1), 0u);
    // Extrema are exact even for out-of-range samples.
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(LogHistogramTest, MergeMatchesSequential)
{
    Rng rng(11);
    LogHistogram all(1e-3, 1e6, 90), left(1e-3, 1e6, 90),
        right(1e-3, 1e6, 90);
    for (int i = 0; i < 4000; ++i) {
        double v = std::pow(10.0, rng.uniform(-4.0, 7.0));
        all.add(v);
        (i % 3 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.total(), all.total());
    EXPECT_EQ(left.underflow(), all.underflow());
    EXPECT_EQ(left.overflow(), all.overflow());
    for (std::size_t b = 0; b < all.bins(); ++b)
        EXPECT_EQ(left.binCount(b), all.binCount(b));
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
    EXPECT_DOUBLE_EQ(left.percentile(50.0), all.percentile(50.0));
}

TEST(LogHistogramTest, PercentileAgainstSortedVector)
{
    // The nearest-rank estimate must stay within one bucket's edge
    // ratio of the exact sorted-vector percentile.
    const double lo = 1e-2, hi = 1e5;
    const std::size_t bins = 70; // ratio = 10^(7/70) = 10^0.1
    const double ratio = std::pow(10.0, 0.1);

    Rng rng(5);
    LogHistogram h(lo, hi, bins);
    std::vector<double> values;
    for (int i = 0; i < 10000; ++i) {
        double v = std::pow(10.0, rng.uniform(-1.5, 4.5));
        values.push_back(v);
        h.add(v);
    }
    std::sort(values.begin(), values.end());

    for (double p : {5.0, 25.0, 50.0, 75.0, 95.0, 99.0}) {
        auto rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(values.size())));
        double exact = values[std::max<std::size_t>(rank, 1) - 1];
        double estimate = h.percentile(p);
        EXPECT_GT(estimate, exact / ratio) << "p" << p;
        EXPECT_LT(estimate, exact * ratio) << "p" << p;
    }
}

TEST(LogHistogramTest, PercentileClampsToExactExtrema)
{
    LogHistogram h(1.0, 1e6, 60);
    for (double v : {3.0, 30.0, 300.0, 3000.0})
        h.add(v);
    // p = 0 selects the minimum's bucket, whose geometric midpoint
    // lies below 3.0; the clamp makes it exact.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
    // p = 100 lands in the maximum's bucket: within one edge ratio.
    const double ratio = std::pow(10.0, 0.1);
    EXPECT_GE(h.percentile(100.0), 3000.0 / ratio);
    EXPECT_LE(h.percentile(100.0), 3000.0);
}

TEST(LogHistogramTest, SingleValueDistributionIsExact)
{
    LogHistogram h(1.0, 1e6, 60);
    for (int i = 0; i < 100; ++i)
        h.add(7.0);
    // min == max == 7: the clamp collapses every percentile to it.
    for (double p : {0.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 7.0);
}

TEST(LogHistogramTest, PercentileOfEmptyIsZero)
{
    LogHistogram h(1.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(LogHistogramTest, PercentileAllUnderflowReturnsTrueMin)
{
    LogHistogram h(1.0, 10.0, 4);
    h.add(0.25);
    h.add(0.5);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.25);
}

TEST(LogHistogramDeathTest, InvalidConstruction)
{
    EXPECT_DEATH(LogHistogram(0.0, 10.0, 4), "positive");
    EXPECT_DEATH(LogHistogram(10.0, 10.0, 4), "non-empty");
    EXPECT_DEATH(LogHistogram(1.0, 10.0, 0), "at least one bin");
}

TEST(LogHistogramDeathTest, MergeLayoutMismatch)
{
    LogHistogram a(1.0, 10.0, 4);
    LogHistogram b(1.0, 10.0, 8);
    EXPECT_DEATH(a.merge(b), "layout");
}

} // namespace
} // namespace mindful
