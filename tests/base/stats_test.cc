/**
 * @file
 * Streaming statistics tests.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "base/stats.hh"

namespace mindful {
namespace {

TEST(RunningStatsTest, EmptyAccumulator)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSeries)
{
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, SampleVarianceUsesBesselCorrection)
{
    RunningStats stats;
    for (double x : {1.0, 2.0, 3.0})
        stats.add(x);
    EXPECT_DOUBLE_EQ(stats.variance(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(stats.sampleVariance(), 1.0);
}

TEST(RunningStatsTest, MergeMatchesSequential)
{
    Rng rng(42);
    RunningStats all, left, right;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.gaussian(3.0, 2.0);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b); // empty rhs: no-op
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // empty lhs: copies
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, GaussianStreamConverges)
{
    Rng rng(7);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.gaussian(10.0, 3.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(HistogramTest, BinningAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.99);  // bin 9
    h.add(-1.0);  // underflow
    h.add(10.0);  // overflow (right edge exclusive)
    h.add(25.0);  // overflow
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, CentresAndFractions)
{
    Histogram h(0.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.binCentre(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCentre(3), 3.5);
    h.add(1.5);
    h.add(1.6);
    h.add(3.0);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.binFraction(1), 0.5);
}

TEST(HistogramTest, TotalIsConserved)
{
    Rng rng(3);
    Histogram h(-3.0, 3.0, 24);
    std::size_t samples = 10000;
    for (std::size_t i = 0; i < samples; ++i)
        h.add(rng.gaussian());
    std::size_t binned = h.underflow() + h.overflow();
    for (std::size_t b = 0; b < h.bins(); ++b)
        binned += h.binCount(b);
    EXPECT_EQ(binned, samples);
}

TEST(HistogramDeathTest, InvalidConstruction)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "non-empty");
}

} // namespace
} // namespace mindful
