/**
 * @file
 * Table rendering and CSV export tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/table.hh"

namespace mindful {
namespace {

TEST(TableTest, FormatNumberTrimsTrailingZeros)
{
    EXPECT_EQ(Table::formatNumber(2.500, 3), "2.5");
    EXPECT_EQ(Table::formatNumber(4.000, 3), "4");
    EXPECT_EQ(Table::formatNumber(0.125, 3), "0.125");
    EXPECT_EQ(Table::formatNumber(-1.20, 2), "-1.2");
}

TEST(TableTest, PrintAlignsColumns)
{
    Table table("Title");
    table.setHeader({"a", "long-header"});
    table.addRow({"xx", "1"});
    std::ostringstream os;
    table.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("| a  | long-header |"), std::string::npos);
    EXPECT_NE(out.find("| xx | 1           |"), std::string::npos);
}

TEST(TableTest, NumericRowFormatting)
{
    Table table;
    table.setHeader({"x", "y"});
    table.addNumericRow({1.5, 2.0});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1.5,2\n");
}

TEST(TableTest, CsvEscapesSpecialCharacters)
{
    Table table;
    table.setHeader({"name", "note"});
    table.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, RowAndColumnCounts)
{
    Table table;
    table.setHeader({"a", "b", "c"});
    EXPECT_EQ(table.columns(), 3u);
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1", "2", "3"});
    EXPECT_EQ(table.rows(), 1u);
}

TEST(TableDeathTest, RowWidthMismatchPanics)
{
    Table table;
    table.setHeader({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row width");
}

} // namespace
} // namespace mindful
