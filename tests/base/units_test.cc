/**
 * @file
 * Unit-type arithmetic and conversion tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/units.hh"

namespace mindful {
namespace {

TEST(UnitsTest, PowerConversionsRoundTrip)
{
    Power p = Power::milliwatts(40.0);
    EXPECT_DOUBLE_EQ(p.inWatts(), 0.040);
    EXPECT_DOUBLE_EQ(p.inMilliwatts(), 40.0);
    EXPECT_DOUBLE_EQ(p.inMicrowatts(), 40000.0);
    EXPECT_DOUBLE_EQ(Power::microwatts(500.0).inMilliwatts(), 0.5);
    EXPECT_DOUBLE_EQ(Power::nanowatts(268.0).inMicrowatts(), 0.268);
}

TEST(UnitsTest, AreaConversionsRoundTrip)
{
    Area a = Area::squareMillimetres(144.0);
    EXPECT_DOUBLE_EQ(a.inSquareCentimetres(), 1.44);
    EXPECT_DOUBLE_EQ(a.inSquareMetres(), 144e-6);
    EXPECT_DOUBLE_EQ(Area::squareMicrometres(400.0).inSquareMillimetres(),
                     4e-4);
}

TEST(UnitsTest, PowerDensityUnitIdentity)
{
    // 1 mW/cm^2 == 10 W/m^2.
    auto d = PowerDensity::milliwattsPerSquareCentimetre(1.0);
    EXPECT_DOUBLE_EQ(d.inWattsPerSquareMetre(), 10.0);
    EXPECT_DOUBLE_EQ(d.inMilliwattsPerSquareCentimetre(), 1.0);
}

TEST(UnitsTest, AdditionAndSubtraction)
{
    Power a = Power::milliwatts(3.0);
    Power b = Power::milliwatts(1.5);
    EXPECT_DOUBLE_EQ((a + b).inMilliwatts(), 4.5);
    EXPECT_DOUBLE_EQ((a - b).inMilliwatts(), 1.5);
    EXPECT_DOUBLE_EQ((-b).inMilliwatts(), -1.5);
}

TEST(UnitsTest, ScalarScaling)
{
    Power p = Power::milliwatts(2.0);
    EXPECT_DOUBLE_EQ((p * 3.0).inMilliwatts(), 6.0);
    EXPECT_DOUBLE_EQ((3.0 * p).inMilliwatts(), 6.0);
    EXPECT_DOUBLE_EQ((p / 4.0).inMilliwatts(), 0.5);
}

TEST(UnitsTest, RatioOfLikeQuantitiesIsDimensionless)
{
    double ratio = Power::milliwatts(30.0) / Power::milliwatts(60.0);
    EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST(UnitsTest, CompoundAssignment)
{
    Power p = Power::milliwatts(1.0);
    p += Power::milliwatts(2.0);
    EXPECT_DOUBLE_EQ(p.inMilliwatts(), 3.0);
    p -= Power::milliwatts(0.5);
    EXPECT_DOUBLE_EQ(p.inMilliwatts(), 2.5);
    p *= 2.0;
    EXPECT_DOUBLE_EQ(p.inMilliwatts(), 5.0);
}

TEST(UnitsTest, Comparisons)
{
    EXPECT_LT(Power::milliwatts(1.0), Power::milliwatts(2.0));
    EXPECT_GE(Area::squareMillimetres(5.0), Area::squareMillimetres(5.0));
    EXPECT_EQ(Power::watts(0.001), Power::milliwatts(1.0));
}

TEST(UnitsTest, PowerDividedByAreaGivesDensity)
{
    // The paper's budget rule: 40 mW over 1 cm^2 is exactly the cap.
    PowerDensity d =
        Power::milliwatts(40.0) / Area::squareCentimetres(1.0);
    EXPECT_DOUBLE_EQ(d.inMilliwattsPerSquareCentimetre(), 40.0);
}

TEST(UnitsTest, DensityTimesAreaGivesPowerBudget)
{
    auto cap = PowerDensity::milliwattsPerSquareCentimetre(40.0);
    Power budget = cap * Area::squareMillimetres(144.0);
    EXPECT_NEAR(budget.inMilliwatts(), 57.6, 1e-9);
    EXPECT_EQ((Area::squareMillimetres(144.0) * cap).inWatts(),
              budget.inWatts());
}

TEST(UnitsTest, PowerOverDensityGivesMinimumArea)
{
    auto cap = PowerDensity::milliwattsPerSquareCentimetre(40.0);
    Area min_area = Power::milliwatts(15.0) / cap;
    EXPECT_NEAR(min_area.inSquareMillimetres(), 37.5, 1e-9);
}

TEST(UnitsTest, DataRateTimesEnergyPerBitGivesPower)
{
    // Eq. 9: 82 Mbps at 50 pJ/b is 4.1 mW.
    Power p = DataRate::megabitsPerSecond(82.0) *
              EnergyPerBit::picojoulesPerBit(50.0);
    EXPECT_NEAR(p.inMilliwatts(), 4.1, 1e-9);
}

TEST(UnitsTest, PowerOverDataRateGivesEnergyPerBit)
{
    EnergyPerBit eb =
        Power::milliwatts(4.1) / DataRate::megabitsPerSecond(82.0);
    EXPECT_NEAR(eb.inPicojoulesPerBit(), 50.0, 1e-9);
}

TEST(UnitsTest, EnergyPowerTimeTriangle)
{
    Energy e = Power::milliwatts(2.0) * Time::milliseconds(3.0);
    EXPECT_NEAR(e.inJoules(), 6e-6, 1e-18);
    EXPECT_NEAR((e / Time::milliseconds(3.0)).inMilliwatts(), 2.0, 1e-12);
    EXPECT_NEAR((e / Power::milliwatts(2.0)).inMilliseconds(), 3.0, 1e-12);
}

TEST(UnitsTest, FrequencyPeriodInverse)
{
    Time t = period(Frequency::kilohertz(8.0));
    EXPECT_DOUBLE_EQ(t.inMicroseconds(), 125.0);
    EXPECT_DOUBLE_EQ(rate(t).inKilohertz(), 8.0);
}

TEST(UnitsTest, SensingThroughputBuildingBlock)
{
    // Eq. 6 with d = 10 bits, n = 1024, f = 8 kHz: 81.92 Mbps.
    DataRate t = Frequency::kilohertz(8.0) * (10.0 * 1024.0);
    EXPECT_NEAR(t.inMegabitsPerSecond(), 81.92, 1e-9);
}

TEST(UnitsTest, StreamOutputHasUnits)
{
    std::ostringstream os;
    os << Power::milliwatts(2.5) << " " << Area::squareMillimetres(4.0);
    EXPECT_EQ(os.str(), "2.5 mW 4 mm^2");
}

TEST(UnitsTest, IsFinite)
{
    EXPECT_TRUE(Power::milliwatts(1.0).isFinite());
    EXPECT_FALSE((Power::milliwatts(1.0) / 0.0).isFinite());
}

/** Energy conversions across the scales used in the paper. */
TEST(UnitsTest, EnergyScales)
{
    EXPECT_DOUBLE_EQ(Energy::picojoules(1000.0).inNanojoules(), 1.0);
    EXPECT_DOUBLE_EQ(Energy::microjoules(1.0).inPicojoules(), 1e6);
    EXPECT_DOUBLE_EQ(Energy::millijoules(1.0).inJoules(), 1e-3);
}

TEST(UnitsTest, LengthScales)
{
    EXPECT_DOUBLE_EQ(Length::millimetres(30.0).inMetres(), 0.03);
    EXPECT_DOUBLE_EQ(Length::centimetres(2.0).inMillimetres(), 20.0);
    EXPECT_DOUBLE_EQ(Length::micrometres(250.0).inMillimetres(), 0.25);
}

TEST(UnitsTest, LengthAreaCrossOps)
{
    Area a = Length::millimetres(12.0) * Length::millimetres(12.0);
    EXPECT_NEAR(a.inSquareMillimetres(), 144.0, 1e-12);
    Length side = a / Length::millimetres(12.0);
    EXPECT_NEAR(side.inMillimetres(), 12.0, 1e-12);
}

TEST(UnitsTest, ThermalMaterialQuantities)
{
    // Grey-matter values from the bioheat model (Sec. 7).
    auto k = ThermalConductivity::wattsPerMetreKelvin(0.51);
    auto rho = MassDensity::kilogramsPerCubicMetre(1050.0);
    auto c = SpecificHeat::joulesPerKilogramKelvin(3600.0);
    EXPECT_DOUBLE_EQ(k.inWattsPerMetreKelvin(), 0.51);
    EXPECT_DOUBLE_EQ(rho.inKilogramsPerCubicMetre(), 1050.0);
    EXPECT_DOUBLE_EQ(MassDensity::gramsPerCubicCentimetre(1.05)
                         .inKilogramsPerCubicMetre(),
                     1050.0);
    EXPECT_DOUBLE_EQ(c.inJoulesPerKilogramKelvin(), 3600.0);
    // The Pennes perfusion coefficient w_b * rho_b * c_b stays a
    // plain double — its composite unit has no Quantity.
    double coefficient = 0.017 * rho.inKilogramsPerCubicMetre() *
                         c.inJoulesPerKilogramKelvin();
    EXPECT_NEAR(coefficient, 64260.0, 1e-9);
}

TEST(UnitsTest, NewQuantitiesStreamWithUnits)
{
    std::ostringstream os;
    os << Length::millimetres(0.25) << " | "
       << ThermalConductivity::wattsPerMetreKelvin(0.51) << " | "
       << MassDensity::kilogramsPerCubicMetre(1050.0) << " | "
       << SpecificHeat::joulesPerKilogramKelvin(3600.0);
    EXPECT_EQ(os.str(),
              "0.25 mm | 0.51 W/(m K) | 1050 kg/m^3 | 3600 J/(kg K)");
}

} // namespace
} // namespace mindful
