/**
 * @file
 * Monte-Carlo AWGN channel tests: the measured BER must track the
 * analytical Gray-QAM equation the Fig. 7 study is built on.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "base/decibel.hh"
#include "comm/channel_sim.hh"
#include "comm/modulation.hh"

namespace mindful::comm {
namespace {

TEST(GrayCodeTest, RoundTrip)
{
    for (std::uint32_t v = 0; v < 64; ++v) {
        EXPECT_EQ(QamConstellation::grayToBinary(
                      QamConstellation::binaryToGray(v)),
                  v);
    }
}

TEST(GrayCodeTest, AdjacentValuesDifferInOneBit)
{
    for (std::uint32_t v = 0; v + 1 < 64; ++v) {
        std::uint32_t diff = QamConstellation::binaryToGray(v) ^
                             QamConstellation::binaryToGray(v + 1);
        EXPECT_EQ(std::popcount(diff), 1);
    }
}

TEST(ConstellationTest, AxisSplit)
{
    EXPECT_EQ(QamConstellation(1).iAxisBits(), 1u);
    EXPECT_EQ(QamConstellation(1).qAxisBits(), 0u);
    EXPECT_EQ(QamConstellation(4).iAxisBits(), 2u);
    EXPECT_EQ(QamConstellation(4).qAxisBits(), 2u);
    EXPECT_EQ(QamConstellation(5).iAxisBits(), 3u);
    EXPECT_EQ(QamConstellation(5).qAxisBits(), 2u);
}

/** Property sweep over constellation orders. */
class ConstellationSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ConstellationSweep, ModulateDemodulateRoundTripNoiseless)
{
    QamConstellation constellation(GetParam());
    const std::uint32_t symbols = 1u << GetParam();
    for (std::uint32_t s = 0; s < symbols; ++s) {
        auto [i, q] = constellation.modulate(s);
        EXPECT_EQ(constellation.demodulate(i, q), s) << "symbol " << s;
    }
}

TEST_P(ConstellationSweep, MeanSymbolEnergyEqualsBitsPerSymbol)
{
    QamConstellation constellation(GetParam());
    const std::uint32_t symbols = 1u << GetParam();
    double energy = 0.0;
    for (std::uint32_t s = 0; s < symbols; ++s) {
        auto [i, q] = constellation.modulate(s);
        energy += i * i + q * q;
    }
    energy /= static_cast<double>(symbols);
    EXPECT_NEAR(energy, static_cast<double>(GetParam()), 1e-9);
}

TEST_P(ConstellationSweep, ConstellationIsSymmetric)
{
    QamConstellation constellation(GetParam());
    const std::uint32_t symbols = 1u << GetParam();
    double sum_i = 0.0, sum_q = 0.0;
    for (std::uint32_t s = 0; s < symbols; ++s) {
        auto [i, q] = constellation.modulate(s);
        sum_i += i;
        sum_q += q;
    }
    EXPECT_NEAR(sum_i, 0.0, 1e-9);
    EXPECT_NEAR(sum_q, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, ConstellationSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u));

TEST(ChannelSimTest, VeryHighSnrIsErrorFree)
{
    AwgnChannelSimulator sim(4);
    auto result = sim.measureBer(fromDecibels(30.0), 20000);
    EXPECT_EQ(result.bitErrors, 0u);
    EXPECT_EQ(result.bitsSent, 80000u);
}

TEST(ChannelSimTest, BerDecreasesWithSnr)
{
    AwgnChannelSimulator sim(2);
    double low = sim.measureBer(fromDecibels(2.0), 50000).ber();
    double high = sim.measureBer(fromDecibels(8.0), 50000).ber();
    EXPECT_GT(low, high);
    EXPECT_GT(low, 1e-3);
}

/**
 * The central property behind Fig. 7: the closed-form Gray-QAM BER
 * approximation matches Monte-Carlo measurement. Square
 * constellations (even k) match tightly; the rectangular odd-k cases
 * use the same approximation more loosely.
 */
class BerAgreement
    : public ::testing::TestWithParam<std::tuple<unsigned, double>>
{
};

TEST_P(BerAgreement, MeasuredTracksAnalytical)
{
    auto [k, eb_n0_db] = GetParam();
    double eb_n0 = fromDecibels(eb_n0_db);
    double analytical = qamBitErrorRate(k, eb_n0);
    ASSERT_GT(analytical, 5e-4) << "target too deep for Monte-Carlo";

    AwgnChannelSimulator sim(k, /*seed=*/k * 7919 + 13);
    auto symbols = static_cast<std::uint64_t>(2e5);
    double measured = sim.measureBer(eb_n0, symbols).ber();

    // The nearest-neighbour approximation is tight at these BERs for
    // both square (even k) and rectangular (odd k) constellations.
    double tolerance = 0.15;
    EXPECT_NEAR(measured / analytical, 1.0, tolerance)
        << "k=" << k << " Eb/N0=" << eb_n0_db << " dB (measured "
        << measured << ", analytical " << analytical << ")";
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, BerAgreement,
    ::testing::Values(std::make_tuple(1u, 4.0), std::make_tuple(1u, 6.0),
                      std::make_tuple(2u, 4.0), std::make_tuple(2u, 6.0),
                      std::make_tuple(3u, 8.0), std::make_tuple(4u, 8.0),
                      std::make_tuple(4u, 10.0),
                      std::make_tuple(6u, 12.0)));

TEST(ChannelSimTest, DeterministicWithSeed)
{
    AwgnChannelSimulator a(4, 42), b(4, 42);
    auto ra = a.measureBer(fromDecibels(8.0), 10000);
    auto rb = b.measureBer(fromDecibels(8.0), 10000);
    EXPECT_EQ(ra.bitErrors, rb.bitErrors);
}

} // namespace
} // namespace mindful::comm
