/**
 * @file
 * Link budget and QAM transceiver tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/decibel.hh"
#include "comm/transceiver.hh"

namespace mindful::comm {
namespace {

TEST(LinkBudgetTest, NoiseDensityAtBodyTemperature)
{
    LinkBudget link;
    link.noiseFigureDb = 0.0;
    // kT at 310 K = 4.28e-21 W/Hz (-173.7 dBm/Hz).
    EXPECT_NEAR(link.noiseSpectralDensity(), 4.28e-21, 0.01e-21);
}

TEST(LinkBudgetTest, NoiseFigureScalesDensity)
{
    LinkBudget quiet;
    quiet.noiseFigureDb = 0.0;
    LinkBudget noisy;
    noisy.noiseFigureDb = 10.0;
    EXPECT_NEAR(noisy.noiseSpectralDensity(),
                10.0 * quiet.noiseSpectralDensity(), 1e-25);
}

TEST(LinkBudgetTest, PaperNominalLoss)
{
    // 60 dB path loss + 20 dB margin = 1e8 linear.
    LinkBudget link;
    link.implementationLossDb = 0.0;
    EXPECT_NEAR(link.totalLossLinear(), 1e8, 1.0);
}

TEST(LinkBudgetTest, TxEnergyPerBitComposition)
{
    LinkBudget link;
    double eb_n0 = 10.0;
    double expected = eb_n0 * link.noiseSpectralDensity() *
                      link.totalLossLinear();
    EXPECT_NEAR(link.requiredTxEnergyPerBit(eb_n0).inJoulesPerBit(),
                expected, expected * 1e-12);
}

TEST(LinkBudgetTest, TxEnergyIsPicojouleScale)
{
    // Sanity anchor: with the paper's link numbers, QPSK at 1e-6
    // lands in the tens-of-pJ/b regime reported for implant radios.
    LinkBudget link;
    double eb_n0 = qamRequiredEbN0(2, 1e-6);
    double pj = link.requiredTxEnergyPerBit(eb_n0).inPicojoulesPerBit();
    EXPECT_GT(pj, 1.0);
    EXPECT_LT(pj, 100.0);
}

QamTransceiver
makeTransceiver()
{
    // 82 Mbaud: the 1024-channel BISC-like anchor.
    return QamTransceiver(Frequency::megahertz(81.92), LinkBudget{}, 1e-6);
}

TEST(QamTransceiverTest, BitsPerSymbolStaircase)
{
    auto trx = makeTransceiver();
    EXPECT_EQ(trx.requiredBitsPerSymbol(
                  DataRate::megabitsPerSecond(81.92)),
              1u);
    EXPECT_EQ(trx.requiredBitsPerSymbol(
                  DataRate::megabitsPerSecond(81.93)),
              2u);
    EXPECT_EQ(trx.requiredBitsPerSymbol(
                  DataRate::megabitsPerSecond(163.84)),
              2u);
    EXPECT_EQ(trx.requiredBitsPerSymbol(
                  DataRate::megabitsPerSecond(400.0)),
              5u);
}

TEST(QamTransceiverTest, TxEnergyRisesWithConstellation)
{
    auto trx = makeTransceiver();
    double previous = 0.0;
    for (unsigned k = 2; k <= 8; ++k) {
        double eb = trx.txEnergyPerBit(k).inJoulesPerBit();
        EXPECT_GT(eb, previous);
        previous = eb;
    }
}

TEST(QamTransceiverTest, PowerInverseInEfficiency)
{
    auto trx = makeTransceiver();
    DataRate rate = DataRate::megabitsPerSecond(160.0);
    double full = trx.transmitPower(rate, 1.0).inWatts();
    double fifth = trx.transmitPower(rate, 0.2).inWatts();
    EXPECT_NEAR(fifth, 5.0 * full, full * 1e-9);
}

TEST(QamTransceiverTest, MinimumEfficiencyDefinition)
{
    auto trx = makeTransceiver();
    DataRate rate = DataRate::megabitsPerSecond(160.0);
    Power ideal = trx.transmitPower(rate, 1.0);
    // Allowance of exactly the ideal power: eta_min == 1.
    EXPECT_NEAR(trx.minimumEfficiency(rate, ideal), 1.0, 1e-12);
    // Twice the allowance: eta_min == 0.5.
    EXPECT_NEAR(trx.minimumEfficiency(rate, ideal * 2.0), 0.5, 1e-12);
}

TEST(QamTransceiverTest, NoAllowanceMeansInfiniteEfficiency)
{
    auto trx = makeTransceiver();
    EXPECT_TRUE(std::isinf(trx.minimumEfficiency(
        DataRate::megabitsPerSecond(100.0), Power::milliwatts(0.0))));
}

TEST(QamTransceiverDeathTest, BadEfficiencyPanics)
{
    auto trx = makeTransceiver();
    EXPECT_DEATH(trx.transmitPower(DataRate::megabitsPerSecond(10.0), 0.0),
                 "efficiency");
    EXPECT_DEATH(trx.transmitPower(DataRate::megabitsPerSecond(10.0), 1.5),
                 "efficiency");
}

} // namespace
} // namespace mindful::comm
