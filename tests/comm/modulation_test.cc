/**
 * @file
 * Modulation-model tests: OOK power law, QAM BER equation and its
 * inverse, Shannon-limit sanity.
 */

#include <gtest/gtest.h>

#include "base/decibel.hh"
#include "comm/modulation.hh"

namespace mindful::comm {
namespace {

TEST(OokTest, PaperWorkedExample)
{
    // Sec. 5.1: Eb = 50 pJ/b, n = 1024, d = 10, f = 8 kHz gives a
    // rate of 82 Mbps (81.92) within a 100 Mbps transceiver.
    OokModulation ook(EnergyPerBit::picojoulesPerBit(50.0),
                      DataRate::megabitsPerSecond(100.0));
    DataRate rate = DataRate::megabitsPerSecond(81.92);
    EXPECT_TRUE(ook.supports(rate));
    EXPECT_NEAR(ook.transmitPower(rate).inMilliwatts(), 4.096, 1e-9);
}

TEST(OokTest, PowerLinearInRate)
{
    OokModulation ook(EnergyPerBit::picojoulesPerBit(50.0),
                      DataRate::megabitsPerSecond(100.0));
    double p1 =
        ook.transmitPower(DataRate::megabitsPerSecond(20.0)).inWatts();
    double p2 =
        ook.transmitPower(DataRate::megabitsPerSecond(40.0)).inWatts();
    EXPECT_NEAR(p2, 2.0 * p1, 1e-15);
}

TEST(OokDeathTest, OverMaxRateIsFatal)
{
    OokModulation ook(EnergyPerBit::picojoulesPerBit(50.0),
                      DataRate::megabitsPerSecond(100.0));
    EXPECT_EXIT(ook.transmitPower(DataRate::megabitsPerSecond(150.0)),
                ::testing::ExitedWithCode(1), "at most");
}

TEST(QamBerTest, BpskAnchor)
{
    // k = 1: BER = Q(sqrt(2 Eb/N0)); at Eb/N0 = 9.6 dB, BER ~ 1e-5.
    double eb_n0 = fromDecibels(9.6);
    double ber = qamBitErrorRate(1, eb_n0);
    EXPECT_GT(ber, 3e-6);
    EXPECT_LT(ber, 3e-5);
}

TEST(QamBerTest, QpskMatchesBpskPerBit)
{
    // Gray QPSK has the same BER-per-Eb/N0 as BPSK.
    for (double db : {4.0, 8.0, 10.0}) {
        double eb_n0 = fromDecibels(db);
        EXPECT_NEAR(qamBitErrorRate(2, eb_n0), qamBitErrorRate(1, eb_n0),
                    1e-12);
    }
}

TEST(QamBerTest, Qam16Anchor)
{
    // 16-QAM at BER 1e-6 needs ~14.4 dB Eb/N0 (textbook value).
    double required = qamRequiredEbN0(4, 1e-6);
    EXPECT_NEAR(toDecibels(required), 14.4, 0.3);
}

TEST(QamBerTest, BerDecreasesWithEbN0)
{
    for (unsigned k : {1u, 2u, 4u, 6u, 8u}) {
        double previous = 1.0;
        for (double db = 0.0; db <= 30.0; db += 2.0) {
            double ber = qamBitErrorRate(k, fromDecibels(db));
            EXPECT_LT(ber, previous) << "k=" << k << " db=" << db;
            previous = ber;
        }
    }
}

TEST(QamBerTest, HigherOrderNeedsMoreEnergyPerBit)
{
    // The core premise of Sec. 5.2: each added bit per symbol raises
    // the required Eb/N0 at fixed BER.
    double previous = 0.0;
    for (unsigned k : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
        double required = qamRequiredEbN0(k, 1e-6);
        EXPECT_GT(required, previous) << "k=" << k;
        previous = required;
    }
}

/** Property sweep: requiredEbN0 inverts bitErrorRate. */
class QamInverseSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QamInverseSweep, RoundTripsThroughBerEquation)
{
    unsigned k = GetParam();
    for (double target : {1e-3, 1e-6, 1e-9}) {
        double eb_n0 = qamRequiredEbN0(k, target);
        EXPECT_NEAR(qamBitErrorRate(k, eb_n0), target, target * 1e-6)
            << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(BitsPerSymbol, QamInverseSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           10u, 12u));

TEST(QamModulationTest, ConstellationAndRate)
{
    QamModulation qam(4);
    EXPECT_EQ(qam.constellationSize(), 16u);
    EXPECT_NEAR(
        qam.bitRate(Frequency::megahertz(82.0)).inMegabitsPerSecond(),
        328.0, 1e-9);
}

TEST(ShannonTest, LimitBelowQamRequirement)
{
    // No modulation beats Shannon: the QAM requirement must exceed
    // the Shannon minimum at the same spectral efficiency.
    for (unsigned k : {1u, 2u, 4u, 6u, 8u}) {
        EXPECT_GT(qamRequiredEbN0(k, 1e-6),
                  shannonMinimumEbN0(static_cast<double>(k)))
            << "k=" << k;
    }
}

TEST(ShannonTest, KnownAnchors)
{
    // eta -> 0 gives ln 2 = -1.59 dB; eta = 2 gives 1.5 (1.76 dB).
    EXPECT_NEAR(shannonMinimumEbN0(0.001), std::log(2.0), 1e-3);
    EXPECT_DOUBLE_EQ(shannonMinimumEbN0(2.0), 1.5);
}

} // namespace
} // namespace mindful::comm
