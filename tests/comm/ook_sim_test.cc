/**
 * @file
 * Coherent OOK model + Monte-Carlo validation tests.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/decibel.hh"
#include "comm/channel_sim.hh"
#include "comm/modulation.hh"

namespace mindful::comm {
namespace {

TEST(OokBerTest, ClosedFormAnchors)
{
    // BER = Q(sqrt(Eb/N0)): at 0 dB, Q(1) ~ 0.1587.
    EXPECT_NEAR(ookBitErrorRate(1.0), 0.15866, 1e-4);
    // Deep-tail behaviour stays positive and monotone.
    EXPECT_GT(ookBitErrorRate(fromDecibels(20.0)), 0.0);
    EXPECT_LT(ookBitErrorRate(fromDecibels(20.0)),
              ookBitErrorRate(fromDecibels(10.0)));
}

TEST(OokBerTest, InverseRoundTrips)
{
    for (double target : {1e-2, 1e-4, 1e-6, 1e-9}) {
        double eb_n0 = ookRequiredEbN0(target);
        EXPECT_NEAR(ookBitErrorRate(eb_n0), target, target * 1e-6);
    }
}

TEST(OokBerTest, PaysThreeDbAgainstBpsk)
{
    // OOK needs 2x (3 dB) the Eb/N0 of antipodal signalling (BPSK is
    // qamBitErrorRate with k = 1).
    double bpsk = qamRequiredEbN0(1, 1e-6);
    double ook = ookRequiredEbN0(1e-6);
    EXPECT_NEAR(ook / bpsk, 2.0, 1e-9);
}

/** Property sweep: measured BER tracks the closed form. */
class OokBerAgreement : public ::testing::TestWithParam<double>
{
};

TEST_P(OokBerAgreement, MeasuredTracksAnalytical)
{
    double eb_n0 = fromDecibels(GetParam());
    double analytical = ookBitErrorRate(eb_n0);
    ASSERT_GT(analytical, 1e-4); // reachable by Monte-Carlo

    // Size the simulation to the operating point: ~500 expected
    // errors puts the relative standard error near 4.5%, so the 0.15
    // acceptance band is > 3 sigma even at the deep-tail points
    // (rather than passing on seed luck).
    auto bits = static_cast<std::uint64_t>(
        std::max(400000.0, 500.0 / analytical));

    OokChannelSimulator sim(static_cast<std::uint64_t>(GetParam() * 100));
    auto measurement = sim.measureBer(eb_n0, bits);
    EXPECT_NEAR(measurement.ber() / analytical, 1.0, 0.15)
        << "Eb/N0 = " << GetParam() << " dB (measured "
        << measurement.ber() << ", analytical " << analytical << ")";
}

INSTANTIATE_TEST_SUITE_P(OperatingPoints, OokBerAgreement,
                         ::testing::Values(0.0, 3.0, 6.0, 9.0, 11.0));

TEST(OokSimTest, HighSnrIsErrorFree)
{
    OokChannelSimulator sim;
    EXPECT_EQ(sim.measureBer(fromDecibels(25.0), 100000).bitErrors, 0u);
}

TEST(OokSimTest, DeterministicWithSeed)
{
    OokChannelSimulator a(7), b(7);
    EXPECT_EQ(a.measureBer(2.0, 50000).bitErrors,
              b.measureBer(2.0, 50000).bitErrors);
}

} // namespace
} // namespace mindful::comm
