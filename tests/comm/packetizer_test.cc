/**
 * @file
 * Frame packetizer tests, including parameterized round-trip sweeps
 * and corruption detection.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "comm/packetizer.hh"

namespace mindful::comm {
namespace {

TEST(Crc16Test, KnownVector)
{
    // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
    const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8',
                                 '9'};
    EXPECT_EQ(crc16(data, 9), 0x29B1);
}

TEST(Crc16Test, EmptyInputIsInitValue)
{
    EXPECT_EQ(crc16(nullptr, 0), 0xFFFF);
}

TEST(PacketizerTest, RoundTripSimpleFrame)
{
    Packetizer packetizer({10});
    std::vector<std::uint32_t> samples{0, 511, 1023, 512, 1};
    auto frame = packetizer.pack(42, samples);
    auto unpacked = packetizer.unpack(frame);
    EXPECT_TRUE(unpacked.valid);
    EXPECT_EQ(unpacked.sequence, 42u);
    EXPECT_EQ(unpacked.samples, samples);
}

TEST(PacketizerTest, EmptyPayload)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(7, {});
    auto unpacked = packetizer.unpack(frame);
    EXPECT_TRUE(unpacked.valid);
    EXPECT_TRUE(unpacked.samples.empty());
}

TEST(PacketizerTest, FrameBitsAccounting)
{
    Packetizer packetizer({10});
    // 1024 samples x 10 b = 10240 payload bits = 1280 bytes,
    // + 6 header + 2 CRC bytes = 1288 bytes.
    EXPECT_EQ(packetizer.frameBits(1024), 1288u * 8u);
    auto frame = packetizer.pack(0, std::vector<std::uint32_t>(1024, 5));
    EXPECT_EQ(frame.size() * 8, packetizer.frameBits(1024));
}

TEST(PacketizerTest, OverheadShrinksWithPayload)
{
    Packetizer packetizer({10});
    EXPECT_GT(packetizer.overheadFraction(4),
              packetizer.overheadFraction(1024));
    EXPECT_LT(packetizer.overheadFraction(1024), 0.01);
}

TEST(PacketizerTest, CorruptionIsDetected)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(1, {100, 200, 300});
    // Flip one payload bit.
    frame[Packetizer::headerBytes] ^= 0x10;
    EXPECT_FALSE(packetizer.unpack(frame).valid);
}

TEST(PacketizerTest, HeaderCorruptionIsDetected)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(1, {100, 200, 300});
    frame[1] ^= 0x01; // sequence byte
    EXPECT_FALSE(packetizer.unpack(frame).valid);
}

TEST(PacketizerTest, BadSyncRejected)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(1, {5});
    frame[0] = 0x00;
    EXPECT_FALSE(packetizer.unpack(frame).valid);
}

TEST(PacketizerTest, TruncatedFrameRejected)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(1, {5, 6, 7});
    frame.resize(frame.size() - 3);
    EXPECT_FALSE(packetizer.unpack(frame).valid);
}

/** Re-seal a tampered frame so only the count check can reject it. */
void
resealCrc(std::vector<std::uint8_t> &frame)
{
    std::uint16_t checksum =
        crc16(frame.data(), frame.size() - Packetizer::crcBytes);
    frame[frame.size() - 2] = static_cast<std::uint8_t>(checksum >> 8);
    frame[frame.size() - 1] = static_cast<std::uint8_t>(checksum & 0xFF);
}

TEST(PacketizerTest, ForgedSampleCountRejectedWithoutAllocation)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(1, {100, 200, 300});
    // Forge the header's sample count to the 16-bit maximum and
    // re-seal the CRC, imitating a hostile or bit-rotted peer whose
    // frame still checksums. The declared count exceeds what the
    // payload region can hold, so unpack must reject it up front —
    // before reserving sample storage from attacker-controlled input.
    frame[4] = 0xFF;
    frame[5] = 0xFF;
    resealCrc(frame);
    auto unpacked = packetizer.unpack(frame);
    EXPECT_FALSE(unpacked.valid);
    EXPECT_TRUE(unpacked.samples.empty());
    EXPECT_LT(unpacked.samples.capacity(), std::size_t{1024})
        << "reserve() ran on the forged count";
}

TEST(PacketizerTest, OverdeclaredCountByOneRejected)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(9, {7, 8, 9, 10});
    // 4 samples x 10 b = 40 payload bits = 5 payload bytes, which
    // could also hold 40 / 10 = 4 samples exactly; declaring 5
    // (needing 50 bits) must fail validation.
    frame[5] = 5;
    resealCrc(frame);
    EXPECT_FALSE(packetizer.unpack(frame).valid);
}

TEST(PacketizerTest, DeclaredCountAtPayloadCapacityStillUnpacks)
{
    Packetizer packetizer({8});
    // 8-bit samples fill payload bytes exactly: declared count ==
    // payload capacity is the boundary case and must stay valid.
    std::vector<std::uint32_t> samples(64, 0xAB);
    auto frame = packetizer.pack(2, samples);
    auto unpacked = packetizer.unpack(frame);
    EXPECT_TRUE(unpacked.valid);
    EXPECT_EQ(unpacked.samples, samples);
}

TEST(PacketizerTest, MismatchedBitwidthRejected)
{
    Packetizer tx({10});
    Packetizer rx({12});
    auto frame = tx.pack(1, {5});
    EXPECT_FALSE(rx.unpack(frame).valid);
}

TEST(PacketizerDeathTest, OverRangeSamplePanics)
{
    Packetizer packetizer({10});
    EXPECT_DEATH(packetizer.pack(0, {1024}), "exceeds");
}

/** Property sweep: random payload round trip for many widths/sizes. */
class PacketizerRoundTrip
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>>
{
};

TEST_P(PacketizerRoundTrip, RandomPayloadsSurvive)
{
    auto [bits, count] = GetParam();
    Packetizer packetizer({bits});
    Rng rng(bits * 1000 + count);
    std::vector<std::uint32_t> samples(count);
    const std::uint32_t cap = (1u << bits) - 1;
    for (auto &s : samples)
        s = static_cast<std::uint32_t>(rng.uniformInt(0, cap));

    auto frame =
        packetizer.pack(static_cast<std::uint16_t>(count), samples);
    auto unpacked = packetizer.unpack(frame);
    ASSERT_TRUE(unpacked.valid)
        << "bits=" << bits << " count=" << count;
    EXPECT_EQ(unpacked.samples, samples);
    EXPECT_EQ(unpacked.sequence, static_cast<std::uint16_t>(count));
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSizes, PacketizerRoundTrip,
    ::testing::Combine(::testing::Values(1u, 7u, 8u, 10u, 12u, 16u),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{64},
                                         std::size_t{1024})));

} // namespace
} // namespace mindful::comm
