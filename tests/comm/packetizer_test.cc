/**
 * @file
 * Frame packetizer tests, including parameterized round-trip sweeps
 * and corruption detection.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "comm/packetizer.hh"

namespace mindful::comm {
namespace {

TEST(Crc16Test, KnownVector)
{
    // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
    const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8',
                                 '9'};
    EXPECT_EQ(crc16(data, 9), 0x29B1);
}

TEST(Crc16Test, EmptyInputIsInitValue)
{
    EXPECT_EQ(crc16(nullptr, 0), 0xFFFF);
}

TEST(PacketizerTest, RoundTripSimpleFrame)
{
    Packetizer packetizer({10});
    std::vector<std::uint32_t> samples{0, 511, 1023, 512, 1};
    auto frame = packetizer.pack(42, samples);
    auto unpacked = packetizer.unpack(frame);
    EXPECT_TRUE(unpacked.valid);
    EXPECT_EQ(unpacked.sequence, 42u);
    EXPECT_EQ(unpacked.samples, samples);
}

TEST(PacketizerTest, EmptyPayload)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(7, {});
    auto unpacked = packetizer.unpack(frame);
    EXPECT_TRUE(unpacked.valid);
    EXPECT_TRUE(unpacked.samples.empty());
}

TEST(PacketizerTest, FrameBitsAccounting)
{
    Packetizer packetizer({10});
    // 1024 samples x 10 b = 10240 payload bits = 1280 bytes,
    // + 6 header + 2 CRC bytes = 1288 bytes.
    EXPECT_EQ(packetizer.frameBits(1024), 1288u * 8u);
    auto frame = packetizer.pack(0, std::vector<std::uint32_t>(1024, 5));
    EXPECT_EQ(frame.size() * 8, packetizer.frameBits(1024));
}

TEST(PacketizerTest, OverheadShrinksWithPayload)
{
    Packetizer packetizer({10});
    EXPECT_GT(packetizer.overheadFraction(4),
              packetizer.overheadFraction(1024));
    EXPECT_LT(packetizer.overheadFraction(1024), 0.01);
}

TEST(PacketizerTest, CorruptionIsDetected)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(1, {100, 200, 300});
    // Flip one payload bit.
    frame[Packetizer::headerBytes] ^= 0x10;
    EXPECT_FALSE(packetizer.unpack(frame).valid);
}

TEST(PacketizerTest, HeaderCorruptionIsDetected)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(1, {100, 200, 300});
    frame[1] ^= 0x01; // sequence byte
    EXPECT_FALSE(packetizer.unpack(frame).valid);
}

TEST(PacketizerTest, BadSyncRejected)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(1, {5});
    frame[0] = 0x00;
    EXPECT_FALSE(packetizer.unpack(frame).valid);
}

TEST(PacketizerTest, TruncatedFrameRejected)
{
    Packetizer packetizer({10});
    auto frame = packetizer.pack(1, {5, 6, 7});
    frame.resize(frame.size() - 3);
    EXPECT_FALSE(packetizer.unpack(frame).valid);
}

TEST(PacketizerTest, MismatchedBitwidthRejected)
{
    Packetizer tx({10});
    Packetizer rx({12});
    auto frame = tx.pack(1, {5});
    EXPECT_FALSE(rx.unpack(frame).valid);
}

TEST(PacketizerDeathTest, OverRangeSamplePanics)
{
    Packetizer packetizer({10});
    EXPECT_DEATH(packetizer.pack(0, {1024}), "exceeds");
}

/** Property sweep: random payload round trip for many widths/sizes. */
class PacketizerRoundTrip
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>>
{
};

TEST_P(PacketizerRoundTrip, RandomPayloadsSurvive)
{
    auto [bits, count] = GetParam();
    Packetizer packetizer({bits});
    Rng rng(bits * 1000 + count);
    std::vector<std::uint32_t> samples(count);
    const std::uint32_t cap = (1u << bits) - 1;
    for (auto &s : samples)
        s = static_cast<std::uint32_t>(rng.uniformInt(0, cap));

    auto frame =
        packetizer.pack(static_cast<std::uint16_t>(count), samples);
    auto unpacked = packetizer.unpack(frame);
    ASSERT_TRUE(unpacked.valid)
        << "bits=" << bits << " count=" << count;
    EXPECT_EQ(unpacked.samples, samples);
    EXPECT_EQ(unpacked.sequence, static_cast<std::uint16_t>(count));
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSizes, PacketizerRoundTrip,
    ::testing::Combine(::testing::Values(1u, 7u, 8u, 10u, 12u, 16u),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{64},
                                         std::size_t{1024})));

} // namespace
} // namespace mindful::comm
