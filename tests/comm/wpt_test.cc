/**
 * @file
 * Wireless power transfer link tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "comm/wpt.hh"
#include "core/scaling.hh"
#include "core/soc_catalog.hh"

namespace mindful::comm {
namespace {

TEST(WptTest, ReceiveCoilRadiusFromArea)
{
    // 144 mm^2 disc: r = sqrt(A/pi) = 6.77 mm.
    double r = WptLink::receiveCoilRadius(Area::squareMillimetres(144.0));
    EXPECT_NEAR(r, std::sqrt(144e-6 / std::numbers::pi), 1e-12);
    EXPECT_NEAR(r * 1e3, 6.77, 0.01);
}

TEST(WptTest, CouplingInPhysicalRange)
{
    WptLink link;
    for (double r_mm : {1.0, 3.0, 6.0, 10.0}) {
        double k = link.coupling(r_mm * 1e-3);
        EXPECT_GT(k, 0.0);
        EXPECT_LT(k, 1.0);
    }
}

TEST(WptTest, CouplingGrowsWithReceiveCoil)
{
    WptLink link;
    double previous = 0.0;
    for (double r_mm : {1.0, 2.0, 4.0, 8.0}) {
        double k = link.coupling(r_mm * 1e-3);
        EXPECT_GT(k, previous);
        previous = k;
    }
}

TEST(WptTest, CouplingFallsWithSeparation)
{
    WptLinkConfig near;
    near.separation = 5e-3;
    WptLinkConfig far;
    far.separation = 15e-3;
    EXPECT_GT(WptLink(near).coupling(5e-3), WptLink(far).coupling(5e-3));
}

TEST(WptTest, EfficiencyBoundedAndMonotone)
{
    WptLink link;
    double previous = 0.0;
    for (double mm2 : {5.0, 20.0, 80.0, 144.0}) {
        double eta = link.endToEndEfficiency(
            Area::squareMillimetres(mm2));
        EXPECT_GT(eta, 0.0);
        EXPECT_LT(eta, 1.0);
        EXPECT_GT(eta, previous);
        previous = eta;
    }
}

TEST(WptTest, DeliveredPowerProportionalToTx)
{
    WptLink link;
    Area area = Area::squareMillimetres(100.0);
    Power p1 = link.deliveredPower(area, Power::milliwatts(100.0));
    Power p2 = link.deliveredPower(area, Power::milliwatts(200.0));
    EXPECT_NEAR(p2.inWatts(), 2.0 * p1.inWatts(), 1e-15);
}

TEST(WptTest, BiscClassImplantIsComfortablyPowerable)
{
    // A 144 mm^2, ~39 mW implant must be powerable at the SAR cap —
    // published BISC-class devices are WPT-powered.
    WptLink link;
    auto bisc = core::scaleDesign(core::socById(1), 1024);
    EXPECT_TRUE(link.canPower(bisc.area, bisc.power));
    EXPECT_GT(link.maxDeliverablePower(bisc.area).inMilliwatts(), 80.0);
}

TEST(WptTest, AllCataloguedDesignsPowerableAt1024)
{
    // Every scaled 1024-channel design draws less than its WPT
    // ceiling (WPT is not the binding constraint at today's scale).
    WptLink link;
    for (const auto &soc : core::socCatalog()) {
        auto point = core::scaleDesign(soc, core::kStandardChannels);
        EXPECT_TRUE(link.canPower(point.area, point.power)) << soc.name;
    }
}

TEST(WptTest, TinyImplantsAreDeliveryLimited)
{
    // A millimetre-scale implant couples weakly: the link cannot
    // deliver tens of mW regardless of the thermal budget.
    WptLink link;
    Power ceiling =
        link.maxDeliverablePower(Area::squareMillimetres(1.0));
    EXPECT_LT(ceiling.inMilliwatts(), 10.0);
}

TEST(WptTest, SarCapBindsDeliveredPower)
{
    WptLinkConfig config;
    config.maxTxPower = Power::milliwatts(50.0);
    WptLink link(config);
    Area area = Area::squareMillimetres(144.0);
    EXPECT_NEAR(link.maxDeliverablePower(area).inWatts(),
                link.deliveredPower(area, Power::milliwatts(50.0))
                    .inWatts(),
                1e-15);
}

TEST(WptDeathTest, InvalidUsePanics)
{
    WptLink link;
    EXPECT_DEATH(link.deliveredPower(Area::squareMillimetres(100.0),
                                     Power::milliwatts(500.0)),
                 "SAR cap");
    EXPECT_DEATH(WptLink::receiveCoilRadius(Area::squareMillimetres(0.0)),
                 "positive");
}

} // namespace
} // namespace mindful::comm
