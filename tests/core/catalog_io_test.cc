/**
 * @file
 * Catalog serialization tests: round trips, defaults, and strict
 * error reporting.
 */

#include <clocale>
#include <locale>

#include <gtest/gtest.h>

#include "core/catalog_io.hh"
#include "core/scaling.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

const char *kMinimalEntry = R"(
# A minimal custom design.
[soc]
id = 100
name = NextGen
channels = 2048
area_mm2 = 400
power_mw = 30
sampling_khz = 10
)";

TEST(CatalogIoTest, ParsesMinimalEntryWithDefaults)
{
    auto designs = parseCatalogString(kMinimalEntry);
    ASSERT_EQ(designs.size(), 1u);
    const SocDesign &soc = designs[0];
    EXPECT_EQ(soc.id, 100);
    EXPECT_EQ(soc.name, "NextGen");
    EXPECT_EQ(soc.reportedChannels, 2048u);
    EXPECT_DOUBLE_EQ(soc.reportedArea.inSquareMillimetres(), 400.0);
    EXPECT_DOUBLE_EQ(soc.reportedPower.inMilliwatts(), 30.0);
    EXPECT_DOUBLE_EQ(soc.samplingFrequency.inKilohertz(), 10.0);
    // Defaults hold for everything unspecified.
    EXPECT_EQ(soc.sampleBits, 10u);
    EXPECT_EQ(soc.sensorType, ni::SensorType::Electrode);
    EXPECT_EQ(soc.recipe.law, ScalingLaw::SqrtAreaLinearPower);
    EXPECT_DOUBLE_EQ(soc.sensingPowerFraction, 0.5);
}

TEST(CatalogIoTest, ParsesMultipleSections)
{
    std::string text = std::string(kMinimalEntry) + R"(
[soc]
id = 101
name = SpadCam
sensor = spad
channels = 49152
base_channels = 1024
area_mm2 = 50
power_mw = 18
sampling_khz = 8
wireless = true
)";
    auto designs = parseCatalogString(text);
    ASSERT_EQ(designs.size(), 2u);
    EXPECT_EQ(designs[1].sensorType, ni::SensorType::Spad);
    EXPECT_EQ(designs[1].recipe.baseChannels, 1024u);
    EXPECT_TRUE(designs[1].wireless);
}

TEST(CatalogIoTest, BuiltInCatalogRoundTrips)
{
    auto serialized = writeCatalogString(socCatalog());
    auto reparsed = parseCatalogString(serialized);
    ASSERT_EQ(reparsed.size(), socCatalog().size());
    for (std::size_t i = 0; i < reparsed.size(); ++i) {
        const SocDesign &a = socCatalog()[i];
        const SocDesign &b = reparsed[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.sensorType, b.sensorType);
        EXPECT_EQ(a.reportedChannels, b.reportedChannels);
        EXPECT_NEAR(a.reportedArea.inSquareMetres(),
                    b.reportedArea.inSquareMetres(), 1e-12);
        EXPECT_NEAR(a.reportedPower.inWatts(), b.reportedPower.inWatts(),
                    1e-9);
        EXPECT_NEAR(a.samplingFrequency.inHertz(),
                    b.samplingFrequency.inHertz(), 1e-6);
        EXPECT_EQ(a.wireless, b.wireless);
        EXPECT_EQ(a.recipe.law, b.recipe.law);
        EXPECT_EQ(a.recipe.baseChannels, b.recipe.baseChannels);
        EXPECT_NEAR(a.recipe.areaCorrection, b.recipe.areaCorrection,
                    1e-9);
        EXPECT_NEAR(a.recipe.powerCorrection, b.recipe.powerCorrection,
                    1e-9);
        EXPECT_NEAR(a.sensingPowerFraction, b.sensingPowerFraction,
                    1e-9);
        EXPECT_NEAR(a.sensingAreaFraction, b.sensingAreaFraction, 1e-9);
        EXPECT_NEAR(a.commShareOfNonSensing, b.commShareOfNonSensing,
                    1e-9);
    }
}

TEST(CatalogIoTest, ReparsedDesignScalesIdentically)
{
    // The serialized form must drive the framework identically.
    auto reparsed = parseCatalogString(writeCatalogString({socById(5)}));
    ASSERT_EQ(reparsed.size(), 1u);
    auto original = scaleDesign(socById(5), 1024);
    auto copied = scaleDesign(reparsed[0], 1024);
    EXPECT_NEAR(original.power.inWatts(), copied.power.inWatts(), 1e-12);
    EXPECT_NEAR(original.area.inSquareMetres(),
                copied.area.inSquareMetres(), 1e-15);
}

TEST(CatalogIoTest, CommentsAndBlankLinesIgnored)
{
    auto designs = parseCatalogString(
        "\n# header comment\n[soc]\nid = 1\nname = X # inline\n"
        "channels = 4\narea_mm2 = 1\npower_mw = 1\nsampling_khz = 1\n\n");
    ASSERT_EQ(designs.size(), 1u);
    EXPECT_EQ(designs[0].name, "X");
}

/** A de_DE-style numpunct: ',' decimal point, '.' grouping. */
struct CommaDecimalPunct : std::numpunct<char>
{
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

TEST(CatalogIoTest, RoundTripsUnderHostileGlobalLocale)
{
    // Force both locale mechanisms a parser or serializer could
    // accidentally depend on: the global C++ locale (which every
    // std::ostream imbues at construction) gets a comma-decimal
    // facet, and the C locale is switched best-effort (containers
    // usually only ship "C", so setlocale may be a no-op — the
    // facet is the part that is always installed).
    const std::locale saved_cpp = std::locale::global(
        std::locale(std::locale::classic(), new CommaDecimalPunct));
    const char *previous = std::setlocale(LC_ALL, nullptr);
    const std::string saved_c = previous ? previous : "C";
    std::setlocale(LC_ALL, "de_DE.UTF-8");

    // Parsing: '.' stays the decimal point, ',' stays an error.
    auto designs = parseCatalogString(
        "[soc]\nid = 7\nname = Punct\nchannels = 2048\n"
        "area_mm2 = 400.5\npower_mw = 30.25\nsampling_khz = 10\n");
    ASSERT_EQ(designs.size(), 1u);
    EXPECT_DOUBLE_EQ(designs[0].reportedArea.inSquareMillimetres(),
                     400.5);
    EXPECT_DOUBLE_EQ(designs[0].reportedPower.inMilliwatts(), 30.25);

    // Serializing: the writer pins the classic locale, so the
    // emitted text must reparse to the same catalog ("30.25",
    // never "30,25" or "2.048" channels).
    auto reparsed = parseCatalogString(writeCatalogString(designs));
    ASSERT_EQ(reparsed.size(), 1u);
    EXPECT_EQ(reparsed[0].reportedChannels, 2048u);
    EXPECT_NEAR(reparsed[0].reportedPower.inMilliwatts(), 30.25, 1e-9);

    std::setlocale(LC_ALL, saved_c.c_str());
    std::locale::global(saved_cpp);
}

TEST(CatalogIoTest, ParsesHugeChannelCountsExactly)
{
    // 2^53 + 1 is exact in uint64 but rounds to 2^53 through any
    // double-mediated integer parse.
    auto designs = parseCatalogString(
        "[soc]\nid = 8\nname = Dense\nchannels = 9007199254740993\n"
        "area_mm2 = 400\npower_mw = 30\nsampling_khz = 10\n");
    ASSERT_EQ(designs.size(), 1u);
    EXPECT_EQ(designs[0].reportedChannels, 9007199254740993ull);

    auto reparsed = parseCatalogString(writeCatalogString(designs));
    ASSERT_EQ(reparsed.size(), 1u);
    EXPECT_EQ(reparsed[0].reportedChannels, 9007199254740993ull);
}

TEST(CatalogIoDeathTest, TrailingJunkIsFatal)
{
    // std::stod would have silently accepted "12.5mm2" as 12.5.
    EXPECT_EXIT(parseCatalogString("[soc]\narea_mm2 = 12.5mm2\n"),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(CatalogIoDeathTest, NonFiniteNumberIsFatal)
{
    EXPECT_EXIT(parseCatalogString("[soc]\npower_mw = inf\n"),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(CatalogIoDeathTest, UnknownKeyIsFatal)
{
    EXPECT_EXIT(parseCatalogString("[soc]\nbogus_key = 1\n"),
                ::testing::ExitedWithCode(1), "unknown key 'bogus_key'");
}

TEST(CatalogIoDeathTest, KeyOutsideSectionIsFatal)
{
    EXPECT_EXIT(parseCatalogString("id = 1\n"),
                ::testing::ExitedWithCode(1), "outside a \\[soc\\]");
}

TEST(CatalogIoDeathTest, MalformedNumberIsFatal)
{
    EXPECT_EXIT(parseCatalogString("[soc]\narea_mm2 = twelve\n"),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(CatalogIoDeathTest, MissingRequiredFieldsAreFatal)
{
    EXPECT_EXIT(parseCatalogString("[soc]\nid = 1\nname = X\n"),
                ::testing::ExitedWithCode(1), "'channels'");
}

TEST(CatalogIoDeathTest, BadFractionIsFatal)
{
    std::string text = std::string(kMinimalEntry) +
                       "sensing_power_fraction = 1.5\n";
    EXPECT_EXIT(parseCatalogString(text), ::testing::ExitedWithCode(1),
                "sensing_power_fraction");
}

TEST(CatalogIoDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(loadCatalog("/nonexistent/path/catalog.cfg"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace mindful::core
