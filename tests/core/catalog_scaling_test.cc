/**
 * @file
 * Table 1 catalog and Sec. 4.1 scaling tests (Fig. 4).
 */

#include <gtest/gtest.h>

#include "core/scaling.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

TEST(CatalogTest, ElevenDesignsWithStableIds)
{
    const auto &catalog = socCatalog();
    ASSERT_EQ(catalog.size(), 11u);
    for (std::size_t i = 0; i < catalog.size(); ++i)
        EXPECT_EQ(catalog[i].id, static_cast<int>(i) + 1);
}

TEST(CatalogTest, WirelessSubsetIsDesignsOneToEight)
{
    auto wireless = wirelessSocs();
    ASSERT_EQ(wireless.size(), 8u);
    for (std::size_t i = 0; i < wireless.size(); ++i)
        EXPECT_EQ(wireless[i].id, static_cast<int>(i) + 1);
    // Designs 9-11 are wired (Table 1).
    EXPECT_FALSE(socById(9).wireless);
    EXPECT_FALSE(socById(10).wireless);
    EXPECT_FALSE(socById(11).wireless);
}

TEST(CatalogTest, Table1HeadlineParameters)
{
    const SocDesign &bisc = socById(1);
    EXPECT_EQ(bisc.name, "BISC");
    EXPECT_EQ(bisc.reportedChannels, 1024u);
    EXPECT_DOUBLE_EQ(bisc.reportedArea.inSquareMillimetres(), 144.0);
    EXPECT_NEAR(bisc.reportedPowerDensity()
                    .inMilliwattsPerSquareCentimetre(),
                27.0, 1e-9);
    EXPECT_DOUBLE_EQ(bisc.samplingFrequency.inKilohertz(), 8.0);

    const SocDesign &halo = socById(8);
    EXPECT_FALSE(halo.validatedInOrExVivo); // the only "No" in Table 1

    const SocDesign &spad = socById(2);
    EXPECT_EQ(spad.sensorType, ni::SensorType::Spad);
    EXPECT_EQ(spad.reportedChannels, 49152u);
    EXPECT_EQ(spad.recipe.baseChannels, 1024u);
}

TEST(CatalogTest, ByIdFatalOnUnknown)
{
    EXPECT_EXIT(socById(99), ::testing::ExitedWithCode(1), "no SoC");
}

TEST(ScalingTest, DesignsAlreadyAt1024AreFixedPoints)
{
    for (int id : {1, 3, 10}) {
        const SocDesign &soc = socById(id);
        auto point = scaleDesign(soc, kStandardChannels);
        EXPECT_NEAR(point.area.inSquareMetres(),
                    soc.reportedArea.inSquareMetres(), 1e-15);
        EXPECT_NEAR(point.power.inWatts(), soc.reportedPower.inWatts(),
                    1e-15);
    }
}

TEST(ScalingTest, SpadDesignsUseNominal1024Parameters)
{
    // SoCs 2 and 11 report 49K channels but the paper evaluates
    // their nominal 1024-channel configuration.
    for (int id : {2, 11}) {
        const SocDesign &soc = socById(id);
        auto point = scaleDesign(soc, kStandardChannels);
        EXPECT_NEAR(point.area.inSquareMetres(),
                    soc.reportedArea.inSquareMetres(), 1e-15);
        EXPECT_NEAR(point.power.inWatts(), soc.reportedPower.inWatts(),
                    1e-15);
    }
}

TEST(ScalingTest, SqrtAreaLinearPowerLaw)
{
    // Eq. 1 in ratio form on a 16-channel design scaled 64x.
    const SocDesign &shen = socById(4);
    auto point = scaleDesign(shen, 1024);
    EXPECT_NEAR(point.area.inSquareMillimetres(), 1.34 * 8.0, 1e-9);
    EXPECT_NEAR(point.power.inMilliwatts(), 0.0295 * 64.0, 1e-9);
}

TEST(ScalingTest, NeuropixelsScalesLinearly)
{
    // Sec. 4.1: shank-replicated designs scale linearly in both.
    const SocDesign &npx = socById(9);
    auto point = scaleDesign(npx, 1024);
    double factor = 1024.0 / 384.0;
    EXPECT_NEAR(point.area.inSquareMillimetres(), 22.0 * factor, 1e-9);
    EXPECT_NEAR(point.power.inMilliwatts(), 4.62 * factor, 1e-9);
    // Linear scaling preserves power density exactly.
    EXPECT_NEAR(point.powerDensity().inMilliwattsPerSquareCentimetre(),
                npx.reportedPowerDensity()
                    .inMilliwattsPerSquareCentimetre(),
                1e-9);
}

TEST(ScalingTest, MullerAreaCutGivesPaperDensity)
{
    // Sec. 4.1: SoC 5 lands at 20 mW/cm^2 after the 2x area cut.
    auto point = scaleDesign(socById(5), 1024);
    EXPECT_NEAR(point.powerDensity().inMilliwattsPerSquareCentimetre(),
                20.0, 0.1);
}

TEST(ScalingTest, Fig4AllScaledDesignsAreSafe)
{
    // The Fig. 4 claim: every design scaled to 1024 channels falls
    // below the power-budget line.
    thermal::PowerBudget budget;
    for (const auto &soc : socCatalog()) {
        auto point = scaleDesign(soc, kStandardChannels);
        EXPECT_LE(point.power.inWatts(),
                  budget.budget(point.area).inWatts())
            << "SoC " << soc.id << " (" << soc.name << ")";
    }
}

TEST(ScalingTest, HaloStarWasRescuedFromUnsafeDensity)
{
    // HALO as reported is far beyond the budget; HALO* is within it.
    const SocDesign &halo = socById(8);
    EXPECT_GT(halo.reportedPowerDensity()
                  .inMilliwattsPerSquareCentimetre(),
              1000.0);
    auto rescaled = scaleDesign(halo, 1024);
    EXPECT_LE(
        rescaled.powerDensity().inMilliwattsPerSquareCentimetre(),
        40.0);
}

TEST(ImplantModelTest, DecompositionSumsToTotals)
{
    ImplantModel implant(socById(1));
    EXPECT_NEAR((implant.referenceSensingPower() +
                 implant.nonSensingPower())
                    .inWatts(),
                implant.referencePower().inWatts(), 1e-15);
    EXPECT_NEAR((implant.referenceSensingArea() + implant.nonSensingArea())
                    .inSquareMetres(),
                implant.referenceArea().inSquareMetres(), 1e-18);
    EXPECT_NEAR((implant.commPower() + implant.digitalPower()).inWatts(),
                implant.nonSensingPower().inWatts(), 1e-15);
}

TEST(ImplantModelTest, SensingScalesLinearly)
{
    ImplantModel implant(socById(1));
    EXPECT_NEAR(implant.sensingPower(2048).inWatts(),
                2.0 * implant.referenceSensingPower().inWatts(), 1e-15);
    EXPECT_NEAR(implant.sensingArea(512).inSquareMetres(),
                0.5 * implant.referenceSensingArea().inSquareMetres(),
                1e-18);
}

TEST(ImplantModelTest, ThroughputAndPeriod)
{
    ImplantModel implant(socById(1)); // 8 kHz, 10 b
    EXPECT_NEAR(implant.referenceDataRate().inMegabitsPerSecond(), 81.92,
                1e-9);
    EXPECT_NEAR(implant.sensingThroughput(2048).inMegabitsPerSecond(),
                163.84, 1e-9);
    EXPECT_NEAR(implant.samplePeriod().inMicroseconds(), 125.0, 1e-9);
}

TEST(ImplantModelTest, CommEnergyPerBitIsImplantRealistic)
{
    // Inferred transceiver Eb should land in the 10-500 pJ/b range
    // reported across published implant radios.
    for (const auto &soc : wirelessSocs()) {
        ImplantModel implant(soc);
        double eb = implant.commEnergyPerBit().inPicojoulesPerBit();
        EXPECT_GT(eb, 5.0) << soc.name;
        EXPECT_LT(eb, 2000.0) << soc.name;
    }
}

TEST(ImplantModelTest, PowerBudgetUsesTotalArea)
{
    ImplantModel implant(socById(1));
    EXPECT_NEAR(
        implant.powerBudget(Area::squareMillimetres(144.0)).inMilliwatts(),
        57.6, 1e-9);
}

} // namespace
} // namespace mindful::core
