/**
 * @file
 * Closed-loop study tests (paper Sec. 7 extension).
 */

#include <gtest/gtest.h>

#include "core/closed_loop.hh"
#include "core/experiments.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

ClosedLoopStudy
makeStudy(int soc_id, StimulatorSpec stim = {}, ClosedLoopConfig cfg = {})
{
    return ClosedLoopStudy(ImplantModel(socById(soc_id)),
                           experiments::speechModelBuilder(
                               experiments::SpeechModel::Mlp),
                           stim, cfg);
}

TEST(StimulatorSpecTest, MeanPowerComposition)
{
    StimulatorSpec stim;
    stim.sites = 16;
    stim.activeFraction = 0.25;
    stim.pulseRateHz = 200.0;
    stim.energyPerPulse = Energy::microjoules(1.0);
    stim.staticOverhead = Power::microwatts(150.0);
    // 16 * 0.25 * 200 = 800 pulses/s * 1 uJ = 0.8 mW + 0.15 mW.
    EXPECT_NEAR(stim.meanPower().inMilliwatts(), 0.95, 1e-12);
}

TEST(ClosedLoopTest, PowerComponentsSumToTotal)
{
    auto point = makeStudy(1).evaluate(1024);
    EXPECT_NEAR((point.sensingPower + point.computePower +
                 point.stimulationPower + point.digitalPower +
                 point.telemetryPower)
                    .inWatts(),
                point.totalPower.inWatts(), 1e-15);
}

TEST(ClosedLoopTest, LatencyComposition)
{
    auto point = makeStudy(1).evaluate(1024);
    EXPECT_NEAR((point.acquisitionLatency + point.decodeLatency +
                 point.stimulationLatency)
                    .inSeconds(),
                point.loopLatency.inSeconds(), 1e-15);
    // MLP window: 12 samples at 2 kHz = 6 ms acquisition.
    EXPECT_NEAR(point.acquisitionLatency.inMilliseconds(), 6.0, 1e-9);
}

TEST(ClosedLoopTest, LoopClosesWellWithinReactionTime)
{
    // The paper's real-time definition: the whole loop inside the
    // ~0.18 s brain reaction time. At 1024 channels the loop closes
    // with an order of magnitude of margin.
    auto point = makeStudy(1).evaluate(1024);
    ASSERT_TRUE(point.bound.feasible);
    EXPECT_TRUE(point.meetsDeadline);
    EXPECT_LT(point.loopLatency.inSeconds(), 0.02);
}

TEST(ClosedLoopTest, FeasibleOnBiscAtStandardScale)
{
    auto point = makeStudy(1).evaluate(1024);
    EXPECT_TRUE(point.feasible());
    EXPECT_LE(point.budgetUtilization, 1.0);
}

TEST(ClosedLoopTest, TelemetryIsNegligibleVsStreaming)
{
    auto point = makeStudy(1).evaluate(1024);
    ImplantModel implant(socById(1));
    EXPECT_LT(point.telemetryPower.inWatts(),
              implant.commPower().inWatts() / 1000.0);
}

TEST(ClosedLoopTest, StimulationShiftsTheFrontier)
{
    // A heavy stimulator (all sites, high rate) eats budget that the
    // decoder could otherwise use.
    StimulatorSpec heavy;
    heavy.sites = 64;
    heavy.activeFraction = 1.0;
    heavy.pulseRateHz = 300.0;
    heavy.energyPerPulse = Energy::microjoules(2.0);

    auto light_max = makeStudy(3).maxChannels();
    auto heavy_max = makeStudy(3, heavy).maxChannels();
    EXPECT_LT(heavy_max, light_max);
}

TEST(ClosedLoopTest, TightDeadlineCanBindBeforePower)
{
    // With a sub-window deadline the loop can never close even when
    // the budget is generous.
    ClosedLoopConfig tight;
    tight.reactionDeadline = Time::milliseconds(1.0);
    auto point = makeStudy(1, {}, tight).evaluate(1024);
    EXPECT_FALSE(point.meetsDeadline);
    EXPECT_TRUE(point.withinBudget);
    EXPECT_FALSE(point.feasible());
    EXPECT_EQ(makeStudy(1, {}, tight).maxChannels(2048, 256), 0u);
}

TEST(ClosedLoopTest, ClosedLoopBeatsOpenLoopOnCommBoundSocs)
{
    // Dropping the raw-data uplink frees real budget: the closed-loop
    // frontier is at least the open-loop computation-centric one
    // (same decoder, deadline, technology) minus the stimulator tax.
    CompCentricModel open(ImplantModel(socById(1)),
                          experiments::speechModelBuilder(
                              experiments::SpeechModel::Mlp));
    StimulatorSpec tiny;
    tiny.sites = 1;
    tiny.activeFraction = 0.0; // sensing-only loop
    tiny.staticOverhead = Power::microwatts(0.0);
    tiny.setupLatency = Time::milliseconds(0.0);
    auto closed_max = makeStudy(1, tiny).maxChannels();
    EXPECT_GE(closed_max + 64, open.maxChannels());
}

TEST(ClosedLoopDeathTest, InvalidConfigPanics)
{
    StimulatorSpec bad;
    bad.sites = 0;
    EXPECT_DEATH(makeStudy(1, bad), "at least one site");
    ClosedLoopConfig cfg;
    cfg.reactionDeadline = Time::seconds(0.0);
    EXPECT_DEATH(makeStudy(1, {}, cfg), "deadline");
}

} // namespace
} // namespace mindful::core
