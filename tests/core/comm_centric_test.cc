/**
 * @file
 * Communication-centric scaling tests (Figs. 5-6), parameterized
 * over the eight wireless SoCs.
 */

#include <gtest/gtest.h>

#include "core/comm_centric.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

class CommCentricSocSweep : public ::testing::TestWithParam<int>
{
  protected:
    ImplantModel implant() const { return ImplantModel(socById(GetParam())); }
};

TEST_P(CommCentricSocSweep, NaiveUtilizationIsChannelIndependent)
{
    // Fig. 5 left: both Psoc and Pbudget scale linearly, so the
    // ratio never changes.
    CommCentricModel model(implant(), CommScalingStrategy::Naive);
    double anchor = model.project(1024).budgetUtilization;
    for (std::uint64_t n : {2048u, 4096u, 8192u, 65536u})
        EXPECT_NEAR(model.project(n).budgetUtilization, anchor, 1e-12);
}

TEST_P(CommCentricSocSweep, NaiveSensingAreaFractionFrozen)
{
    // Fig. 6 left: volumetric efficiency never improves.
    CommCentricModel model(implant(), CommScalingStrategy::Naive);
    double anchor = model.project(1024).sensingAreaFraction;
    for (std::uint64_t n : {2048u, 4096u, 8192u})
        EXPECT_NEAR(model.project(n).sensingAreaFraction, anchor, 1e-12);
}

TEST_P(CommCentricSocSweep, HighMarginUtilizationGrows)
{
    // Fig. 5 right: Psoc grows faster than Pbudget.
    CommCentricModel model(implant(), CommScalingStrategy::HighMargin);
    double previous = 0.0;
    for (std::uint64_t n : {1024u, 2048u, 4096u, 8192u}) {
        double utilization = model.project(n).budgetUtilization;
        EXPECT_GT(utilization, previous);
        previous = utilization;
    }
}

TEST_P(CommCentricSocSweep, HighMarginEventuallyExceedsBudget)
{
    // Fig. 5: "Psoc eventually exceeds Pbudget for all SoCs."
    CommCentricModel model(implant(), CommScalingStrategy::HighMargin);
    EXPECT_FALSE(model.project(65536).safe())
        << "SoC " << GetParam() << " never crosses the budget";
}

TEST_P(CommCentricSocSweep, HighMarginSensingAreaFractionApproachesOne)
{
    // Fig. 6 right / Eq. 4: sensing area becomes dominant.
    CommCentricModel model(implant(), CommScalingStrategy::HighMargin);
    double at_1k = model.project(1024).sensingAreaFraction;
    double at_8k = model.project(8192).sensingAreaFraction;
    double at_64k = model.project(65536).sensingAreaFraction;
    EXPECT_GT(at_8k, at_1k);
    EXPECT_GT(at_64k, 0.85);
}

TEST_P(CommCentricSocSweep, StrategiesAgreeAtTheReferencePoint)
{
    CommCentricModel naive(implant(), CommScalingStrategy::Naive);
    CommCentricModel margin(implant(), CommScalingStrategy::HighMargin);
    auto a = naive.project(1024);
    auto b = margin.project(1024);
    EXPECT_NEAR(a.totalPower.inWatts(), b.totalPower.inWatts(), 1e-15);
    EXPECT_NEAR(a.totalArea.inSquareMetres(), b.totalArea.inSquareMetres(),
                1e-18);
}

TEST_P(CommCentricSocSweep, ReferencePointIsSafe)
{
    // All scaled 1024-channel designs sit below the budget (Fig. 4),
    // and both strategies must reproduce that at n = 1024.
    CommCentricModel model(implant(), CommScalingStrategy::HighMargin);
    EXPECT_TRUE(model.project(1024).safe());
}

TEST_P(CommCentricSocSweep, DataRateMatchesEq6)
{
    CommCentricModel model(implant(), CommScalingStrategy::Naive);
    auto point = model.project(4096);
    ImplantModel im = implant();
    EXPECT_NEAR(point.dataRate.inBitsPerSecond(),
                im.sensingThroughput(4096).inBitsPerSecond(), 1e-6);
}

TEST_P(CommCentricSocSweep, ComponentsSumToTotals)
{
    for (auto strategy : {CommScalingStrategy::Naive,
                          CommScalingStrategy::HighMargin}) {
        CommCentricModel model(implant(), strategy);
        auto point = model.project(3072);
        EXPECT_NEAR((point.sensingPower + point.nonSensingPower).inWatts(),
                    point.totalPower.inWatts(), 1e-15);
        EXPECT_NEAR(
            (point.sensingArea + point.nonSensingArea).inSquareMetres(),
            point.totalArea.inSquareMetres(), 1e-18);
    }
}

INSTANTIATE_TEST_SUITE_P(WirelessSocs, CommCentricSocSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CommCentricTest, MaxSafeChannelsBracketsTheCrossover)
{
    CommCentricModel model(ImplantModel(socById(1)),
                           CommScalingStrategy::HighMargin);
    std::uint64_t max_safe = model.maxSafeChannels();
    ASSERT_GT(max_safe, 1024u);
    EXPECT_TRUE(model.project(max_safe).safe());
    EXPECT_FALSE(model.project(max_safe + 64).safe());
}

TEST(CommCentricTest, NaiveNeverCrosses)
{
    CommCentricModel model(ImplantModel(socById(1)),
                           CommScalingStrategy::Naive);
    EXPECT_EQ(model.maxSafeChannels(16384, 1024), 16384u);
}

TEST(CommCentricTest, SweepPreservesOrder)
{
    CommCentricModel model(ImplantModel(socById(3)),
                           CommScalingStrategy::HighMargin);
    auto points = model.sweep({1024, 2048, 4096});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].channels, 1024u);
    EXPECT_EQ(points[2].channels, 4096u);
}

} // namespace
} // namespace mindful::core
