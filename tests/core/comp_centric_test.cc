/**
 * @file
 * Computation-centric study tests (Fig. 10) and partitioning
 * (Fig. 11), including the paper's per-SoC feasibility pattern.
 */

#include <gtest/gtest.h>

#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/partition.hh"
#include "core/soc_catalog.hh"
#include "dnn/models.hh"

namespace mindful::core {
namespace {

using experiments::SpeechModel;
using experiments::speechModelBuilder;

CompCentricModel
makeModel(int soc_id, SpeechModel model = SpeechModel::Mlp,
          CompCentricConfig config = {})
{
    return CompCentricModel(ImplantModel(socById(soc_id)),
                            speechModelBuilder(model), config);
}

TEST(CompCentricTest, PowerComponentsSumToTotal)
{
    auto point = makeModel(1).evaluate(1024);
    EXPECT_NEAR((point.sensingPower + point.digitalPower +
                 point.computePower + point.commPower)
                    .inWatts(),
                point.totalPower.inWatts(), 1e-15);
}

TEST(CompCentricTest, ComputePowerIsTheMacLowerBound)
{
    auto point = makeModel(1).evaluate(1024);
    ASSERT_TRUE(point.bound.feasible);
    EXPECT_NEAR(point.computePower.inWatts(),
                static_cast<double>(point.bound.macUnits) * 0.05e-3,
                1e-12);
    EXPECT_GT(point.bound.macUnits, 0u);
}

TEST(CompCentricTest, TransmitsOnlyTheLabels)
{
    // Computation-centric: n_out = 40 labels, not n samples.
    auto point = makeModel(1).evaluate(1024);
    EXPECT_EQ(point.transmittedElements, 40u);
    // Comm power is correspondingly tiny vs the raw-streaming cost.
    ImplantModel implant(socById(1));
    EXPECT_LT(point.commPower.inWatts(),
              implant.commPower().inWatts() / 100.0);
}

TEST(CompCentricTest, PaperMlpFeasibilityPatternAt1024)
{
    // Fig. 10 (MLP): "only SoCs 3-5 cannot integrate it at 1024
    // channels."
    for (const auto &soc : wirelessSocs()) {
        auto point = makeModel(soc.id).evaluate(1024);
        bool expected_feasible =
            soc.id != 3 && soc.id != 4 && soc.id != 5;
        EXPECT_EQ(point.feasible, expected_feasible)
            << "SoC " << soc.id << " (" << soc.name << ") utilization "
            << point.budgetUtilization;
    }
}

TEST(CompCentricTest, DnCnnHarderThanMlpEverywhere)
{
    for (const auto &soc : wirelessSocs()) {
        auto mlp = makeModel(soc.id, SpeechModel::Mlp).evaluate(1024);
        auto cnn = makeModel(soc.id, SpeechModel::DnCnn).evaluate(1024);
        EXPECT_GT(cnn.budgetUtilization, mlp.budgetUtilization)
            << soc.name;
    }
}

TEST(CompCentricTest, DnCnnFeasibleOnlyOnLargeSocsAt1024)
{
    // Paper: only SoCs 1-2 fit the DN-CNN at 1024. Our calibration
    // reproduces 1-2 and additionally admits SoC 7 (WIMAGINE) whose
    // scaled budget is BISC-sized — recorded in EXPERIMENTS.md.
    for (const auto &soc : wirelessSocs()) {
        auto point = makeModel(soc.id, SpeechModel::DnCnn).evaluate(1024);
        bool expected =
            soc.id == 1 || soc.id == 2 || soc.id == 7;
        EXPECT_EQ(point.feasible, expected) << soc.name;
    }
}

TEST(CompCentricTest, SmallSocsExceedBudgetManyTimesForDnCnn)
{
    // Paper: "SoCs 4 and 5 exceed the power budget by a factor of 5x
    // and fall outside the bounds of the plot."
    for (int id : {4, 5}) {
        auto point = makeModel(id, SpeechModel::DnCnn).evaluate(1024);
        EXPECT_GT(point.budgetUtilization, 5.0) << "SoC " << id;
    }
}

TEST(CompCentricTest, UtilizationGrowsWithChannels)
{
    auto model = makeModel(1);
    double previous = 0.0;
    for (std::uint64_t n : {1024u, 2048u, 4096u, 8192u}) {
        double u = model.evaluate(n).budgetUtilization;
        EXPECT_GT(u, previous);
        previous = u;
    }
}

TEST(CompCentricTest, MaxChannelsNearTwiceTheStandardForFeasibleSocs)
{
    // Paper: "the average maximum channel count appears at n ~ 1800
    // for MLP" over the feasible SoCs; our calibration lands in the
    // same regime (recorded per-SoC in EXPERIMENTS.md).
    double total = 0.0;
    int feasible = 0;
    for (int id : {1, 2, 6, 7, 8}) {
        auto max_n = makeModel(id).maxChannels();
        EXPECT_GT(max_n, 1024u) << "SoC " << id;
        total += static_cast<double>(max_n);
        ++feasible;
    }
    double average = total / feasible;
    EXPECT_GT(average, 1400.0);
    EXPECT_LT(average, 2600.0);
}

TEST(CompCentricTest, DnCnnMaxChannelsBelowMlp)
{
    // Paper: DN-CNN max ~1400 vs MLP ~1800 (lower for the CNN).
    for (int id : {1, 2}) {
        auto mlp = makeModel(id, SpeechModel::Mlp).maxChannels();
        auto cnn = makeModel(id, SpeechModel::DnCnn).maxChannels();
        EXPECT_LT(cnn, mlp) << "SoC " << id;
        EXPECT_GT(cnn, 512u) << "SoC " << id;
    }
}

TEST(CompCentricTest, ChannelDropoutRestoresFeasibility)
{
    // SoC 3 cannot run the full 2048-channel MLP, but some dropout
    // level must fit (Sec. 6.2 ChDr).
    auto model = makeModel(3);
    EXPECT_FALSE(model.evaluate(2048).feasible);
    auto active = model.maxActiveChannels(2048);
    ASSERT_GT(active, 0u);
    ASSERT_LT(active, 2048u);
    EXPECT_TRUE(model.evaluate(2048, active).feasible);
    EXPECT_FALSE(model.evaluate(2048, active + 1).feasible);
}

TEST(CompCentricTest, TechnologyScalingExtendsReach)
{
    CompCentricConfig scaled;
    scaled.mac = accel::scaled12nm();
    auto base = makeModel(1).maxChannels();
    auto with_tech = makeModel(1, SpeechModel::Mlp, scaled).maxChannels();
    EXPECT_GT(with_tech, base);
}

TEST(CompCentricTest, ChannelDensityShrinksTheBudget)
{
    CompCentricConfig dense;
    dense.sensingAreaScale = 0.5;
    auto base = makeModel(1).evaluate(1024);
    auto densified = makeModel(1, SpeechModel::Mlp, dense).evaluate(1024);
    EXPECT_LT(densified.powerBudget.inWatts(),
              base.powerBudget.inWatts());
    EXPECT_GT(densified.budgetUtilization, base.budgetUtilization);
}

TEST(PartitionTest, EarliestViableCutOnMlp)
{
    auto network = dnn::buildSpeechMlp(2048);
    auto plan = earliestViableCut(network, 1024);
    ASSERT_TRUE(plan.viable);
    EXPECT_EQ(plan.cutElements, 1024u); // the latent bottleneck
    EXPECT_LT(plan.onImplantLayers, network.layerCount());
    EXPECT_GT(plan.onImplantMacFraction, 0.3);
    EXPECT_LT(plan.onImplantMacFraction, 1.0);
}

TEST(PartitionTest, TightLimitMakesCutInviable)
{
    auto network = dnn::buildSpeechMlp(2048);
    auto plan = earliestViableCut(network, 16);
    EXPECT_FALSE(plan.viable);
    EXPECT_EQ(plan.onImplantLayers, network.layerCount());
    EXPECT_DOUBLE_EQ(plan.onImplantMacFraction, 1.0);
}

TEST(PartitionTest, DnCnnCutDropsAlmostNothing)
{
    // Fig. 11: the DN-CNN's only narrow point sits behind all the
    // convolutions, so a cut saves ~nothing.
    auto network = dnn::buildSpeechDnCnn(2048);
    auto plan = earliestViableCut(network, 1024);
    if (plan.viable) {
        EXPECT_GT(plan.onImplantMacFraction, 0.99);
    }
}

TEST(PartitionTest, PartitioningNeverHurts)
{
    // The cut is opportunistic: the partitioned design is at most as
    // power-hungry as the full one.
    for (int id : {1, 3, 6}) {
        auto model = makeModel(id);
        for (std::uint64_t n : {1024u, 2048u, 4096u}) {
            auto full = model.evaluate(n, n, false);
            auto part = model.evaluate(n, n, true);
            EXPECT_LE(part.totalPower.inWatts(),
                      full.totalPower.inWatts() + 1e-15)
                << "SoC " << id << " n=" << n;
        }
    }
}

TEST(PartitionTest, MlpGainsButDnCnnDoesNot)
{
    // Fig. 11 headline: partitioning helps the MLP (up to ~tens of
    // percent) and does not help the DN-CNN.
    auto mlp_rows = experiments::partitionGains(SpeechModel::Mlp);
    double best = 0.0;
    double sum = 0.0;
    for (const auto &row : mlp_rows) {
        EXPECT_GE(row.gain, 1.0) << row.name;
        best = std::max(best, row.gain);
        sum += row.gain;
    }
    EXPECT_GT(best, 1.2);                       // best SoC gains > 20%
    EXPECT_GT(sum / mlp_rows.size(), 1.05);     // average gain

    for (const auto &row :
         experiments::partitionGains(SpeechModel::DnCnn)) {
        EXPECT_NEAR(row.gain, 1.0, 0.05) << row.name;
    }
}

TEST(CompCentricTest, PartitionCutLimitRespectsUplinkAndFrame)
{
    // min(1024, 1024 * f_soc / f_app): SoC 5 samples at 1 kHz so its
    // cut limit halves; SoC 1 (8 kHz) caps at the 1024-value frame.
    EXPECT_EQ(makeModel(1).partitionCutLimit(), 1024u);
    EXPECT_EQ(makeModel(5).partitionCutLimit(), 512u);
}

TEST(CompCentricDeathTest, InvalidArgumentsPanic)
{
    auto model = makeModel(1);
    EXPECT_DEATH(model.evaluate(0), "positive");
    EXPECT_DEATH(model.evaluate(std::uint64_t{100}, std::uint64_t{200}),
                 "active channels");
}

} // namespace
} // namespace mindful::core
