/**
 * @file
 * Equation traceability: one numeric assertion per paper equation,
 * using the paper's own worked examples wherever it gives one. This
 * file is the audit trail from the text's math to this codebase.
 */

#include <gtest/gtest.h>

#include "accel/lower_bound.hh"
#include "comm/modulation.hh"
#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/soc_catalog.hh"
#include "dnn/conv.hh"
#include "dnn/dense.hh"

namespace mindful::core {
namespace {

TEST(PaperEquationsTest, Eq1_ScalingTo1024)
{
    // Asoc(n) = sqrt(n/n0) * A0, Psoc(n) = (n/n0) * P0 (ratio form).
    // Shen: 16 ch, 1.34 mm^2, 29.5 uW -> 1024 ch.
    auto point = scaleDesign(socById(4), 1024);
    EXPECT_NEAR(point.area.inSquareMillimetres(),
                std::sqrt(1024.0 / 16.0) * 1.34, 1e-9);
    EXPECT_NEAR(point.power.inMicrowatts(), (1024.0 / 16.0) * 29.5,
                0.01);
}

TEST(PaperEquationsTest, Eq2_ComponentDecomposition)
{
    // Asoc = Asensing + Anon-sensing; Psoc likewise.
    ImplantModel implant(socById(1));
    EXPECT_NEAR((implant.referenceSensingArea() + implant.nonSensingArea())
                    .inSquareMetres(),
                implant.referenceArea().inSquareMetres(), 1e-18);
    EXPECT_NEAR(
        (implant.referenceSensingPower() + implant.nonSensingPower())
            .inWatts(),
        implant.referencePower().inWatts(), 1e-15);
}

TEST(PaperEquationsTest, Eq3_PowerBudget)
{
    // Pbudget(n) = Asoc(n) * 40 mW/cm^2.
    thermal::PowerBudget budget;
    EXPECT_NEAR(
        budget.budget(Area::squareCentimetres(1.44)).inMilliwatts(),
        1.44 * 40.0, 1e-9);
}

TEST(PaperEquationsTest, Eq4_VolumetricEfficiencyLimit)
{
    // lim n->inf Asensing/Asoc = 1 under high-margin scaling.
    CommCentricModel model(ImplantModel(socById(1)),
                           CommScalingStrategy::HighMargin);
    EXPECT_GT(model.project(1 << 20).sensingAreaFraction, 0.99);
}

TEST(PaperEquationsTest, Eq5_LinearSensingScaling)
{
    // Asensing(n) = n * Asensing(1024) / 1024; same for power.
    ImplantModel implant(socById(3));
    EXPECT_NEAR(implant.sensingArea(3072).inSquareMetres(),
                3.0 * implant.referenceSensingArea().inSquareMetres(),
                1e-18);
    EXPECT_NEAR(implant.sensingPower(3072).inWatts(),
                3.0 * implant.referenceSensingPower().inWatts(), 1e-15);
}

TEST(PaperEquationsTest, Eq6_SensingThroughput)
{
    // Tsensing = d * n / Ts; the paper's example system: d = 10,
    // n = 1024, f = 8 kHz -> 81.92 Mbps ("82 Mbps" in the text).
    ImplantModel implant(socById(1));
    EXPECT_NEAR(
        implant.sensingThroughput(1024).inMegabitsPerSecond(), 81.92,
        1e-9);
}

TEST(PaperEquationsTest, Eq7_CommCentricThroughputEquality)
{
    // Comm-centric: Tcomp ~ Tcomm ~ Tsensing (n_out ~ n). The
    // model's uplink at any n equals the sensing throughput.
    CommCentricModel model(ImplantModel(socById(1)),
                           CommScalingStrategy::HighMargin);
    ImplantModel implant(socById(1));
    for (std::uint64_t n : {1024u, 4096u}) {
        EXPECT_NEAR(model.project(n).dataRate.inBitsPerSecond(),
                    implant.sensingThroughput(n).inBitsPerSecond(),
                    1e-3);
    }
}

TEST(PaperEquationsTest, Eq8_CompCentricOutputThroughput)
{
    // Tcomm(n_out) = d * n_out / Ts with n_out = 40 labels at the
    // 2 kHz application rate: 10 b * 40 * 2 kHz = 800 kbps, priced at
    // the implant's Eb.
    CompCentricModel model(ImplantModel(socById(1)),
                           experiments::speechModelBuilder(
                               experiments::SpeechModel::Mlp));
    auto point = model.evaluate(1024);
    ImplantModel implant(socById(1));
    double expected_rate = 10.0 * 40.0 * 2000.0;
    EXPECT_NEAR(point.commPower.inWatts(),
                expected_rate *
                    implant.commEnergyPerBit().inJoulesPerBit(),
                1e-12);
}

TEST(PaperEquationsTest, Eq9_OokCommPower)
{
    // Pcomm = Tcomm * Eb; the Sec. 5.1 worked example: a transceiver
    // at Eb = 50 pJ/b carrying 82 Mbps burns ~4.1 mW.
    comm::OokModulation ook(EnergyPerBit::picojoulesPerBit(50.0),
                            DataRate::megabitsPerSecond(100.0));
    EXPECT_NEAR(ook.transmitPower(DataRate::megabitsPerSecond(81.92))
                    .inMilliwatts(),
                4.096, 1e-9);
}

TEST(PaperEquationsTest, Eq10_MacCensusFig8Examples)
{
    // Fig. 8 top: A(4x3) x B(3x4): #MAC_op = 4, MAC_seq = 3.
    dnn::DenseLayer dense(3, 4);
    auto d = dense.census({3});
    EXPECT_EQ(d.macOp, 4u);
    EXPECT_EQ(d.macSeq, 3u);
    // Fig. 8 bottom: 2 in-ch, 1 out-ch, kernel 4, output 4:
    // #MAC_op = 4, MAC_seq = 8.
    dnn::Conv2dLayer conv(2, 1, 1, 4, 4, dnn::Padding::Valid);
    auto c = conv.census({2, 1, 16});
    EXPECT_EQ(c.macOp, 4u);
    EXPECT_EQ(c.macSeq, 8u);
}

TEST(PaperEquationsTest, Eq11_SharedPoolRuntime)
{
    // t_i = MAC_seq^i * t_MAC * ceil(#MAC_op^i / #MAC_hw).
    accel::LowerBoundSolver solver(accel::nangate45());
    std::vector<dnn::MacCensus> census{{10, 7}, {4, 3}};
    // units = 3: ceil(10/3)=4 passes * 7 + ceil(4/3)=2 * 3 = 34
    // steps * 2 ns.
    EXPECT_NEAR(solver.sharedPoolLatency(census, 3).inNanoseconds(),
                68.0, 1e-9);
}

TEST(PaperEquationsTest, Eq12_UnitCapAtMaxMacOp)
{
    // #MAC_hw <= max_i(#MAC_op): the solver never returns more.
    accel::LowerBoundSolver solver(accel::nangate45());
    std::vector<dnn::MacCensus> census{{10, 7}, {4, 3}};
    auto bound =
        solver.solveSharedPool(census, Time::nanoseconds(100.0));
    ASSERT_TRUE(bound.feasible);
    EXPECT_LE(bound.macUnits, 10u);
}

TEST(PaperEquationsTest, Eq13_PowerLowerBound)
{
    // Pcomp = #MAC_hw * P_MAC.
    accel::LowerBoundSolver solver(accel::nangate45());
    std::vector<dnn::MacCensus> census{{64, 100}};
    auto bound = solver.solveSharedPool(census, Time::microseconds(10.0));
    ASSERT_TRUE(bound.feasible);
    EXPECT_NEAR(bound.power.inWatts(),
                static_cast<double>(bound.macUnits) * 0.05e-3, 1e-15);
}

TEST(PaperEquationsTest, Eq14_15_PipelinedDiscipline)
{
    // Pipelined: max_i(t_i) <= t with per-layer units, total = sum.
    accel::LowerBoundSolver solver(accel::nangate45());
    std::vector<dnn::MacCensus> census{{8, 4}, {2, 10}};
    auto bound = solver.solvePipelined(census, Time::nanoseconds(40.0));
    ASSERT_TRUE(bound.feasible);
    EXPECT_EQ(bound.macUnits,
              bound.perLayerUnits[0] + bound.perLayerUnits[1]);
    EXPECT_LE(bound.latency, Time::nanoseconds(40.0));
    // Eq. 15 cap: no layer gets more units than its #MAC_op.
    EXPECT_LE(bound.perLayerUnits[0], 8u);
    EXPECT_LE(bound.perLayerUnits[1], 2u);
}

TEST(PaperEquationsTest, Sec53_MacParameters)
{
    // "tMAC = 2 ns and PMAC = 0.05 mW" (45 nm); "tMAC = 1 ns and
    // PMAC = 0.026 mW" (12 nm).
    EXPECT_DOUBLE_EQ(accel::nangate45().macTime.inNanoseconds(), 2.0);
    EXPECT_DOUBLE_EQ(accel::nangate45().macPower.inMilliwatts(), 0.05);
    EXPECT_DOUBLE_EQ(accel::scaled12nm().macTime.inNanoseconds(), 1.0);
    EXPECT_DOUBLE_EQ(accel::scaled12nm().macPower.inMilliwatts(), 0.026);
}

TEST(PaperEquationsTest, Sec52_QamNominalParameters)
{
    // "BER = 1e-6, path loss = 60 dB, and margin = 20 dB".
    QamStudyConfig config;
    EXPECT_DOUBLE_EQ(config.targetBer, 1e-6);
    EXPECT_DOUBLE_EQ(config.link.pathLossDb, 60.0);
    EXPECT_DOUBLE_EQ(config.link.marginDb, 20.0);
}

TEST(PaperEquationsTest, Sec32_SafetyConstants)
{
    // "a power density of 40 mW/cm^2 is considered the upper limit"
    // and "an increase ... of up to 1-2 degC ... may be the upper
    // limit of safety".
    thermal::SafetyLimits limits;
    EXPECT_DOUBLE_EQ(
        limits.maxPowerDensity.inMilliwattsPerSquareCentimetre(), 40.0);
    EXPECT_DOUBLE_EQ(limits.maxTemperatureRise.inCelsius(), 2.0);
}

} // namespace
} // namespace mindful::core
