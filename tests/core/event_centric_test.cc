/**
 * @file
 * Event-centric (spike-streaming) dataflow tests.
 */

#include <gtest/gtest.h>

#include "core/comm_centric.hh"
#include "core/event_centric.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

EventCentricModel
makeModel(int soc_id, EventStreamConfig config = {})
{
    return EventCentricModel(ImplantModel(socById(soc_id)), config);
}

TEST(EventCentricTest, BitsPerEventComposition)
{
    auto model = makeModel(1); // d = 10 bits, snippet 16 samples
    // 1024 channels: 11 id bits (1025 values) + 16 ts + 160 snippet.
    EXPECT_EQ(model.bitsPerEvent(1024), 11u + 16u + 160u);
    // 8192 channels: 14 id bits.
    EXPECT_EQ(model.bitsPerEvent(8192), 14u + 16u + 160u);
}

TEST(EventCentricTest, EventOnlyModeDropsSnippetBits)
{
    EventStreamConfig config;
    config.snippetSamples = 0;
    auto model = makeModel(1, config);
    EXPECT_EQ(model.bitsPerEvent(1024), 11u + 16u);
}

TEST(EventCentricTest, UplinkCollapsesVsRawStreaming)
{
    // The architecture's reason to exist: at 20 Hz spiking, the event
    // uplink is orders of magnitude below the raw rate.
    auto point = makeModel(1).evaluate(4096);
    EXPECT_LT(point.dataRate.inBitsPerSecond(),
              point.rawDataRate.inBitsPerSecond() / 10.0);
    EXPECT_NEAR(point.eventRate, 4096.0 * 20.0, 1e-9);
}

TEST(EventCentricTest, DetectionPowerIsLinearAndSmall)
{
    auto model = makeModel(1);
    auto a = model.evaluate(1024);
    auto b = model.evaluate(2048);
    EXPECT_NEAR(b.detectionPower.inWatts(),
                2.0 * a.detectionPower.inWatts(), 1e-15);
    // 3 ops x 8 kHz x 1024 ch x 0.1 pJ ~ 2.5 uW: negligible.
    EXPECT_LT(a.detectionPower.inMilliwatts(), 0.1);
}

TEST(EventCentricTest, PowerComponentsSumToTotal)
{
    auto point = makeModel(3).evaluate(2048);
    EXPECT_NEAR((point.sensingPower + point.detectionPower +
                 point.commPower + point.digitalPower)
                    .inWatts(),
                point.totalPower.inWatts(), 1e-15);
}

TEST(EventCentricTest, OutscalesHighMarginStreamingEverywhere)
{
    // Replacing the raw uplink with events must never be worse than
    // high-margin raw streaming at the same channel count.
    for (const auto &soc : wirelessSocs()) {
        ImplantModel implant(soc);
        EventCentricModel events(implant);
        CommCentricModel raw(implant, CommScalingStrategy::HighMargin);
        for (std::uint64_t n : {2048u, 8192u}) {
            EXPECT_LT(events.evaluate(n).totalPower.inWatts(),
                      raw.project(n).totalPower.inWatts())
                << soc.name << " n=" << n;
        }
    }
}

TEST(EventCentricTest, SensingBecomesTheWall)
{
    // With the uplink solved, the residual constraint is sensing
    // power density: BISC's per-channel sensing sits under its
    // per-channel budget, so event streaming never crosses the cap...
    auto bisc = makeModel(1);
    EXPECT_EQ(bisc.maxSafeChannels(32768), 32768u);
    // ...while Neuralink's sensing slope exceeds its budget slope, so
    // even event streaming hits a ceiling.
    auto neuralink = makeModel(3);
    auto ceiling = neuralink.maxSafeChannels(32768);
    EXPECT_GT(ceiling, 1024u);
    EXPECT_LT(ceiling, 32768u);
    EXPECT_FALSE(neuralink.evaluate(ceiling + 64).safe());
}

TEST(EventCentricTest, BurstyActivityRaisesCommPower)
{
    EventStreamConfig bursty;
    bursty.meanSpikeRateHz = 200.0;
    auto calm = makeModel(1).evaluate(4096);
    auto storm = makeModel(1, bursty).evaluate(4096);
    EXPECT_NEAR(storm.commPower.inWatts(), 10.0 * calm.commPower.inWatts(),
                calm.commPower.inWatts() * 1e-6);
}

TEST(EventCentricDeathTest, InvalidConfigPanics)
{
    EventStreamConfig bad;
    bad.meanSpikeRateHz = 0.0;
    EXPECT_DEATH(makeModel(1, bad), "spike rate");
}

} // namespace
} // namespace mindful::core
