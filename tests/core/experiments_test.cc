/**
 * @file
 * Experiment-runner tests: every table/figure generator produces
 * complete, well-formed output (the bench binaries print these).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiments.hh"

namespace mindful::core::experiments {
namespace {

std::string
render(const Table &table)
{
    std::ostringstream os;
    table.print(os);
    return os.str();
}

TEST(ExperimentsTest, Table1HasElevenRows)
{
    Table table = table1();
    EXPECT_EQ(table.rows(), 11u);
    std::string out = render(table);
    for (const char *name : {"BISC", "Neuralink", "WIMAGINE", "HALO*",
                             "Neuropixels", "Jang", "Pollman"})
        EXPECT_NE(out.find(name), std::string::npos) << name;
}

TEST(ExperimentsTest, Fig4AllRowsSafe)
{
    auto rows = fig4Rows();
    ASSERT_EQ(rows.size(), 11u);
    for (const auto &row : rows) {
        EXPECT_TRUE(row.safe) << row.point.name;
        EXPECT_EQ(row.point.channels, 1024u);
    }
    EXPECT_EQ(fig4Table().rows(), 11u);
}

TEST(ExperimentsTest, Fig5SweepCoversAllWirelessSocs)
{
    auto series = commCentricSweep(CommScalingStrategy::HighMargin,
                                   fig5Channels());
    ASSERT_EQ(series.size(), 8u);
    for (const auto &entry : series) {
        EXPECT_EQ(entry.points.size(), fig5Channels().size());
        EXPECT_EQ(entry.strategy, CommScalingStrategy::HighMargin);
    }
    EXPECT_EQ(fig5Table(CommScalingStrategy::Naive).rows(), 8u);
    EXPECT_EQ(fig5Table(CommScalingStrategy::HighMargin).rows(), 8u);
}

TEST(ExperimentsTest, Fig6TableShape)
{
    Table table = fig6Table(CommScalingStrategy::HighMargin);
    EXPECT_EQ(table.rows(), 8u);
    EXPECT_EQ(table.columns(), 2u + fig6Channels().size());
}

TEST(ExperimentsTest, Fig7SweepAndTable)
{
    auto channels = fig7Channels();
    EXPECT_EQ(channels.front(), 1024u);
    EXPECT_EQ(channels.back(), 6144u);
    auto series = qamSweep(channels, {});
    ASSERT_EQ(series.size(), 8u);
    EXPECT_EQ(series[0].points.size(), channels.size());
    EXPECT_EQ(fig7Table().rows(), channels.size());
}

TEST(ExperimentsTest, Fig9TwelveDesigns)
{
    auto rows = fig9Rows();
    ASSERT_EQ(rows.size(), 12u);
    EXPECT_EQ(rows.front().design, 1);
    EXPECT_EQ(rows.back().design, 12);
    EXPECT_EQ(fig9Table().rows(), 12u);
}

TEST(ExperimentsTest, Fig10SweepBothModels)
{
    for (auto model : {SpeechModel::Mlp, SpeechModel::DnCnn}) {
        auto series = dnnPowerSweep(model, {1024, 2048});
        ASSERT_EQ(series.size(), 8u);
        for (const auto &entry : series) {
            EXPECT_EQ(entry.points.size(), 2u);
            EXPECT_EQ(entry.model, model);
        }
    }
    EXPECT_EQ(fig10Table(SpeechModel::Mlp).rows(), 8u);
}

TEST(ExperimentsTest, Fig11RowsPerSocAndModel)
{
    auto rows = partitionGains(SpeechModel::Mlp);
    ASSERT_EQ(rows.size(), 8u);
    Table table = fig11Table();
    EXPECT_EQ(table.rows(), 16u); // 8 SoCs x 2 models
}

TEST(ExperimentsTest, Fig12TablePerSoc)
{
    Table table = fig12Table(1);
    EXPECT_EQ(table.rows(), fig12Channels().size());
    EXPECT_EQ(table.columns(), 5u);
}

TEST(ExperimentsTest, ModelNamesRender)
{
    EXPECT_EQ(toString(SpeechModel::Mlp), "MLP");
    EXPECT_EQ(toString(SpeechModel::DnCnn), "DN-CNN");
}

TEST(ExperimentsTest, BuilderProducesScaledModels)
{
    auto builder = speechModelBuilder(SpeechModel::Mlp);
    EXPECT_GT(builder(2048).totalMacs(), builder(1024).totalMacs());
}

TEST(ExperimentsTest, CsvRenderingWorksForAllTables)
{
    for (const Table &table :
         {table1(), fig4Table(), fig7Table(), fig9Table()}) {
        std::ostringstream os;
        table.printCsv(os);
        EXPECT_GT(os.str().size(), 100u);
    }
}

} // namespace
} // namespace mindful::core::experiments
