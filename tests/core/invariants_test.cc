/**
 * @file
 * Framework-wide property tests: invariants that must hold for every
 * (SoC, channel count) combination, swept with TEST_P across the full
 * wireless catalog. These are the guardrails that keep the analytical
 * machinery self-consistent as constants get recalibrated.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/comm_centric.hh"
#include "core/comp_centric.hh"
#include "core/experiments.hh"
#include "core/qam_study.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

class SocChannelSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
  protected:
    int socId() const { return std::get<0>(GetParam()); }
    std::uint64_t channels() const { return std::get<1>(GetParam()); }
    ImplantModel implant() const { return ImplantModel(socById(socId())); }
};

TEST_P(SocChannelSweep, DecompositionIdentitiesHold)
{
    ImplantModel model = implant();
    std::uint64_t n = channels();

    // Eq. 2: components sum to totals under both strategies.
    for (auto strategy : {CommScalingStrategy::Naive,
                          CommScalingStrategy::HighMargin}) {
        auto point = CommCentricModel(model, strategy).project(n);
        EXPECT_NEAR((point.sensingPower + point.nonSensingPower).inWatts(),
                    point.totalPower.inWatts(), 1e-15);
        EXPECT_NEAR(
            (point.sensingArea + point.nonSensingArea).inSquareMetres(),
            point.totalArea.inSquareMetres(), 1e-18);
        // Eq. 3: the budget is exactly density cap x area.
        EXPECT_NEAR(point.powerBudget.inWatts(),
                    model.powerBudget(point.totalArea).inWatts(), 1e-15);
        // Fractions and utilizations are well-formed.
        EXPECT_GT(point.sensingAreaFraction, 0.0);
        EXPECT_LT(point.sensingAreaFraction, 1.0);
        EXPECT_GT(point.budgetUtilization, 0.0);
    }
}

TEST_P(SocChannelSweep, SensingScalingIsExactlyLinear)
{
    ImplantModel model = implant();
    std::uint64_t n = channels();
    double ratio = static_cast<double>(n) / 1024.0;
    EXPECT_NEAR(model.sensingPower(n).inWatts(),
                model.referenceSensingPower().inWatts() * ratio, 1e-15);
    EXPECT_NEAR(model.sensingArea(n).inSquareMetres(),
                model.referenceSensingArea().inSquareMetres() * ratio,
                1e-18);
    EXPECT_NEAR(model.sensingThroughput(n).inBitsPerSecond(),
                model.referenceDataRate().inBitsPerSecond() * ratio,
                1e-3);
}

TEST_P(SocChannelSweep, HighMarginDominatesNaivePowerBeyondReference)
{
    // Above 1024 channels the naive design duplicates non-sensing
    // blocks, so it always burns at least as much power (and area)
    // as the high-margin design.
    if (channels() < 1024)
        return;
    ImplantModel model = implant();
    auto naive =
        CommCentricModel(model, CommScalingStrategy::Naive)
            .project(channels());
    auto margin =
        CommCentricModel(model, CommScalingStrategy::HighMargin)
            .project(channels());
    EXPECT_GE(naive.totalPower.inWatts(),
              margin.totalPower.inWatts() - 1e-15);
    EXPECT_GE(naive.totalArea.inSquareMetres(),
              margin.totalArea.inSquareMetres() - 1e-18);
}

TEST_P(SocChannelSweep, QamPointIsInternallyConsistent)
{
    QamStudy study(implant());
    auto point = study.evaluate(channels());
    // Required bits per symbol covers the data rate within the frozen
    // symbol budget.
    double symbol_rate = study.transceiver().symbolRate().inHertz();
    EXPECT_GE(static_cast<double>(point.bitsPerSymbol) * symbol_rate,
              point.dataRate.inBitsPerSecond() - 1e-3);
    if (point.bitsPerSymbol > 1) {
        EXPECT_LT(
            static_cast<double>(point.bitsPerSymbol - 1) * symbol_rate,
            point.dataRate.inBitsPerSecond());
    }
    // eta = ideal / allowance whenever the allowance is positive.
    if (point.commAllowance.inWatts() > 0.0) {
        EXPECT_NEAR(point.minimumEfficiency,
                    point.idealTxPower / point.commAllowance, 1e-12);
    }
}

TEST_P(SocChannelSweep, CompCentricFeasibilityMonotoneInDropout)
{
    // If the design fits with n' active channels it must also fit
    // with fewer — the premise the ChDr binary search rests on.
    CompCentricModel model(
        implant(), experiments::speechModelBuilder(
                       experiments::SpeechModel::Mlp));
    std::uint64_t n = channels();
    auto best = model.maxActiveChannels(n);
    if (best == 0)
        return;
    for (double fraction : {0.75, 0.5, 0.25}) {
        auto active = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(best) * fraction));
        EXPECT_TRUE(model.evaluate(n, active).feasible)
            << "active=" << active << " best=" << best;
    }
}

TEST_P(SocChannelSweep, CompCentricPowerMonotoneInActiveChannels)
{
    CompCentricModel model(
        implant(), experiments::speechModelBuilder(
                       experiments::SpeechModel::Mlp));
    std::uint64_t n = channels();
    double previous = 0.0;
    for (double fraction : {0.25, 0.5, 1.0}) {
        auto active = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(n) * fraction));
        double power =
            model.evaluate(n, active).computePower.inWatts();
        EXPECT_GE(power, previous - 1e-15);
        previous = power;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWirelessSocs, SocChannelSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(std::uint64_t{1024},
                                         std::uint64_t{2048},
                                         std::uint64_t{4096})),
    [](const auto &info) {
        return "soc" + std::to_string(std::get<0>(info.param)) + "_n" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace mindful::core
