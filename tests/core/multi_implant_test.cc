/**
 * @file
 * Multi-implant study tests (SCALO-style scaling extension).
 */

#include <gtest/gtest.h>

#include "core/comm_centric.hh"
#include "core/multi_implant.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

MultiImplantStudy
makeStudy(int soc_id)
{
    return MultiImplantStudy(ImplantModel(socById(soc_id)));
}

TEST(MultiImplantTest, SingleImplantMatchesHighMarginModel)
{
    // count == 1 degenerates to the high-margin comm-centric model.
    ImplantModel implant(socById(1));
    MultiImplantStudy study(implant);
    CommCentricModel margin(implant, CommScalingStrategy::HighMargin);

    for (std::uint64_t n : {1024u, 2048u, 4096u}) {
        auto multi = study.evaluate(n, 1);
        auto single = margin.project(n);
        EXPECT_NEAR(multi.perImplantPower.inWatts(),
                    single.totalPower.inWatts(), 1e-15)
            << "n=" << n;
        EXPECT_NEAR(multi.perImplantBudget.inWatts(),
                    single.powerBudget.inWatts(), 1e-15);
    }
}

TEST(MultiImplantTest, ChannelsSplitAcrossImplants)
{
    auto point = makeStudy(1).evaluate(8192, 4);
    EXPECT_EQ(point.channelsPerImplant, 2048u);
    EXPECT_EQ(point.implants, 4u);
    // Aggregate rate covers all channels.
    ImplantModel implant(socById(1));
    EXPECT_NEAR(point.aggregateRate.inBitsPerSecond(),
                implant.sensingThroughput(8192).inBitsPerSecond(), 1e-3);
}

TEST(MultiImplantTest, SplittingRestoresFeasibility)
{
    // BISC cannot stream 8192 channels from one implant (Fig. 5) but
    // can from several — SCALO's premise.
    auto study = makeStudy(1);
    EXPECT_FALSE(study.evaluate(8192, 1).feasible);
    auto minimum = study.minimumImplants(8192);
    ASSERT_GT(minimum, 1u);
    EXPECT_TRUE(study.evaluate(8192, minimum).feasible);
    EXPECT_FALSE(study.evaluate(8192, minimum - 1).feasible);
}

TEST(MultiImplantTest, ReplicationCostsTotalPowerAndArea)
{
    // More implants than necessary: total power and area only grow
    // (replicated non-sensing blocks + comm overhead).
    auto study = makeStudy(1);
    auto two = study.evaluate(4096, 2);
    auto eight = study.evaluate(4096, 8);
    EXPECT_GT(eight.totalPower.inWatts(), two.totalPower.inWatts());
    EXPECT_GT(eight.totalArea.inSquareMetres(),
              two.totalArea.inSquareMetres());
    EXPECT_LT(eight.sensingAreaFraction, two.sensingAreaFraction);
}

TEST(MultiImplantTest, BestCountIsTheFewestFeasible)
{
    // Total power rises with count, so the cheapest feasible count is
    // the minimum feasible count.
    auto study = makeStudy(1);
    for (std::uint64_t n : {4096u, 8192u, 16384u}) {
        auto minimum = study.minimumImplants(n);
        if (minimum == 0)
            continue;
        EXPECT_EQ(study.bestImplantCount(n), minimum) << "n=" << n;
    }
}

TEST(MultiImplantTest, CommOverheadPenalizesSharing)
{
    MultiImplantConfig pricey;
    pricey.commOverheadPerExtraImplant = 0.5;
    MultiImplantStudy cheap(ImplantModel(socById(1)), {});
    MultiImplantStudy costly(ImplantModel(socById(1)), pricey);
    auto a = cheap.evaluate(8192, 4);
    auto b = costly.evaluate(8192, 4);
    EXPECT_GT(b.totalPower.inWatts(), a.totalPower.inWatts());
    // At zero overhead the per-implant point is count-independent.
    auto c = cheap.evaluate(8192, 8);
    EXPECT_GT(c.perImplantUtilization, 0.0);
}

TEST(MultiImplantTest, SweepCoversAllCounts)
{
    auto sweep = makeStudy(3).sweep(4096, 6);
    ASSERT_EQ(sweep.size(), 6u);
    for (std::uint32_t i = 0; i < 6; ++i)
        EXPECT_EQ(sweep[i].implants, i + 1);
}

TEST(MultiImplantTest, UnreachableScaleReportsZero)
{
    // Even many implants cannot make an over-dense design feasible if
    // per-implant utilization exceeds 1 at every split. Gilhotra at
    // extreme totals with few implants allowed:
    auto study = makeStudy(2);
    auto minimum = study.minimumImplants(1u << 22, 2);
    EXPECT_EQ(minimum, 0u);
}

TEST(MultiImplantDeathTest, InvalidArgumentsPanic)
{
    auto study = makeStudy(1);
    EXPECT_DEATH(study.evaluate(0, 1), "positive");
    EXPECT_DEATH(study.evaluate(1024, 0), "at least one implant");
}

} // namespace
} // namespace mindful::core
