/**
 * @file
 * Combined-optimization study tests (Fig. 12).
 */

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/optimization.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

using experiments::SpeechModel;
using experiments::speechModelBuilder;

OptimizationStudy
makeStudy(int soc_id)
{
    return OptimizationStudy(ImplantModel(socById(soc_id)),
                             speechModelBuilder(SpeechModel::Mlp));
}

TEST(OptimizationStepsTest, LabelsMatchFig12Bars)
{
    EXPECT_EQ(OptimizationSteps::chDr().label(), "ChDr");
    EXPECT_EQ(OptimizationSteps::laChDr().label(), "La+ChDr");
    EXPECT_EQ(OptimizationSteps::laChDrTech().label(), "La+ChDr+Tech");
    EXPECT_EQ(OptimizationSteps::laChDrTechDense().label(),
              "La+ChDr+Tech+Dense");
}

TEST(OptimizationTest, ChDrFindsLargestFeasibleDropout)
{
    auto study = makeStudy(3); // Neuralink: tight budget
    auto outcome = study.evaluate(2048, OptimizationSteps::chDr());
    ASSERT_TRUE(outcome.feasible);
    EXPECT_GT(outcome.activeChannels, 0u);
    EXPECT_LT(outcome.activeChannels, 2048u);
    EXPECT_GT(outcome.modelSizeFraction, 0.0);
    EXPECT_LT(outcome.modelSizeFraction, 1.0);
    EXPECT_TRUE(outcome.point.feasible);
}

TEST(OptimizationTest, ModelSizeFractionShrinksWithChannelCount)
{
    // Fig. 12 trend: 2048 -> 4096 -> 8192 forces ever-smaller models
    // (paper averages: 32% -> 6% -> 2%).
    auto study = makeStudy(3);
    double previous = 1.1;
    for (std::uint64_t n : {2048u, 4096u, 8192u}) {
        auto outcome = study.evaluate(n, OptimizationSteps::chDr());
        ASSERT_TRUE(outcome.feasible) << "n=" << n;
        EXPECT_LT(outcome.modelSizeFraction, previous) << "n=" << n;
        previous = outcome.modelSizeFraction;
    }
}

TEST(OptimizationTest, LayerReductionAdmitsLargerModels)
{
    // Fig. 12: adding La increases the feasible model size.
    for (int id : {1, 3, 6}) {
        auto study = makeStudy(id);
        for (std::uint64_t n : {4096u, 8192u}) {
            auto chdr = study.evaluate(n, OptimizationSteps::chDr());
            auto la = study.evaluate(n, OptimizationSteps::laChDr());
            if (!chdr.feasible)
                continue;
            ASSERT_TRUE(la.feasible);
            EXPECT_GE(la.modelSizeFraction,
                      chdr.modelSizeFraction * 0.999)
                << "SoC " << id << " n=" << n;
        }
    }
}

TEST(OptimizationTest, TechnologyScalingIsTheBigLever)
{
    // Fig. 12: Tech multiplies the feasible model size severalfold.
    auto study = makeStudy(3);
    auto la = study.evaluate(4096, OptimizationSteps::laChDr());
    auto tech = study.evaluate(4096, OptimizationSteps::laChDrTech());
    ASSERT_TRUE(la.feasible);
    ASSERT_TRUE(tech.feasible);
    EXPECT_GT(tech.modelSizeFraction, 2.0 * la.modelSizeFraction);
}

TEST(OptimizationTest, DensityCutsTheBudgetAndTheModel)
{
    // Fig. 12: Dense lowers Pbudget and with it the feasible model.
    auto study = makeStudy(6);
    auto tech = study.evaluate(4096, OptimizationSteps::laChDrTech());
    auto dense =
        study.evaluate(4096, OptimizationSteps::laChDrTechDense());
    ASSERT_TRUE(tech.feasible);
    if (dense.feasible) {
        EXPECT_LT(dense.modelSizeFraction, tech.modelSizeFraction);
        EXPECT_LT(dense.point.powerBudget.inWatts(),
                  tech.point.powerBudget.inWatts());
    }
}

TEST(OptimizationTest, DenseCanMakeLargeScalesInfeasible)
{
    // With the budget halved on the sensing side, very large NIs can
    // become outright infeasible even with maximal dropout — the
    // Fig. 12 "2% or nothing" regime at 8192 channels.
    bool any_infeasible = false;
    for (int id : {1, 2, 3, 4, 5, 6, 7, 8}) {
        auto outcome = makeStudy(id).evaluate(
            8192, OptimizationSteps::laChDrTechDense());
        any_infeasible |= !outcome.feasible;
    }
    EXPECT_TRUE(any_infeasible);
}

TEST(OptimizationTest, OutcomeRecordsTheWinningDesignPoint)
{
    auto study = makeStudy(1);
    auto outcome = study.evaluate(2048, OptimizationSteps::laChDrTech());
    ASSERT_TRUE(outcome.feasible);
    EXPECT_EQ(outcome.point.channels, 2048u);
    EXPECT_EQ(outcome.point.activeChannels, outcome.activeChannels);
    EXPECT_LE(outcome.point.budgetUtilization, 1.0);
}

TEST(OptimizationTest, Fig12SweepHasFullShape)
{
    auto sweep = experiments::optimizationSweep(1);
    ASSERT_EQ(sweep.size(), 3u); // n = 2048, 4096, 8192
    for (const auto &series : sweep) {
        ASSERT_EQ(series.outcomes.size(), 4u); // four bar groups
        EXPECT_EQ(series.socId, 1);
    }
    EXPECT_EQ(sweep[0].channels, 2048u);
    EXPECT_EQ(sweep[2].channels, 8192u);
}

} // namespace
} // namespace mindful::core
