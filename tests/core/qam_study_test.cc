/**
 * @file
 * QAM feasibility study tests (Fig. 7), including the paper's
 * headline averages.
 */

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/qam_study.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

QamStudy
makeStudy(int soc_id)
{
    return QamStudy(ImplantModel(socById(soc_id)));
}

TEST(QamStudyTest, SymbolRateFrozenAtReferenceRate)
{
    QamStudy study = makeStudy(1);
    EXPECT_NEAR(study.transceiver().symbolRate().inHertz(),
                ImplantModel(socById(1))
                    .referenceDataRate()
                    .inBitsPerSecond(),
                1e-3);
}

TEST(QamStudyTest, BitsPerSymbolStaircasePer1024Channels)
{
    // Sec. 5.2: each 1024-channel interval adds one bit per symbol.
    QamStudy study = makeStudy(1);
    EXPECT_EQ(study.evaluate(1024).bitsPerSymbol, 1u);
    EXPECT_EQ(study.evaluate(1025).bitsPerSymbol, 2u);
    EXPECT_EQ(study.evaluate(2048).bitsPerSymbol, 2u);
    EXPECT_EQ(study.evaluate(2049).bitsPerSymbol, 3u);
    EXPECT_EQ(study.evaluate(5120).bitsPerSymbol, 5u);
}

TEST(QamStudyTest, EfficiencyJumpsAtSymbolBoundaries)
{
    // Fig. 7: "sharp increases indicate the addition of 1 bit per
    // symbol."
    QamStudy study = makeStudy(1);
    double before = study.evaluate(2048).minimumEfficiency;
    double after = study.evaluate(2112).minimumEfficiency;
    double within = study.evaluate(1984).minimumEfficiency;
    EXPECT_GT(after - before, 2.0 * (before - within));
}

TEST(QamStudyTest, EfficiencyGrowsWithinAnInterval)
{
    QamStudy study = makeStudy(1);
    double previous = 0.0;
    for (std::uint64_t n = 1088; n <= 2048; n += 192) {
        double eta = study.evaluate(n).minimumEfficiency;
        EXPECT_GT(eta, previous);
        previous = eta;
    }
}

TEST(QamStudyTest, IdealPowerMatchesTransceiver)
{
    QamStudy study = makeStudy(1);
    auto point = study.evaluate(3000);
    EXPECT_NEAR(point.idealTxPower.inWatts(),
                study.transceiver()
                    .transmitPower(point.dataRate, 1.0)
                    .inWatts(),
                1e-15);
    EXPECT_NEAR(point.minimumEfficiency,
                point.idealTxPower / point.commAllowance, 1e-12);
}

TEST(QamStudyTest, MaxChannelsConsistentWithEvaluate)
{
    QamStudy study = makeStudy(1);
    for (double eta : {0.15, 0.5}) {
        std::uint64_t max_n = study.maxChannels(eta);
        ASSERT_GT(max_n, 0u);
        EXPECT_TRUE(study.evaluate(max_n).feasibleAt(eta));
    }
}

TEST(QamStudyTest, HigherEfficiencyNeverSupportsFewerChannels)
{
    QamStudy study = makeStudy(2);
    std::uint64_t previous = 0;
    for (double eta : {0.1, 0.2, 0.5, 1.0}) {
        std::uint64_t max_n = study.maxChannels(eta);
        EXPECT_GE(max_n, previous);
        previous = max_n;
    }
}

TEST(QamStudyTest, PaperHeadline20PercentDoubles)
{
    // "At 20% QAM efficiency ... SoCs could double current channel
    // counts on average."
    auto summary = experiments::qamSummary(0.20);
    EXPECT_GT(summary.averageGain, 1.5);
    EXPECT_LT(summary.averageGain, 2.5);
}

TEST(QamStudyTest, PaperHeadline100PercentQuadruples)
{
    // "At the theoretical ideal of 100% efficiency, this increases
    // to 4x."
    auto summary = experiments::qamSummary(1.0);
    EXPECT_GT(summary.averageGain, 3.2);
    EXPECT_LT(summary.averageGain, 4.8);
}

TEST(QamStudyTest, EvenIdealQamCannotStreamAtLargeScale)
{
    // Sec. 5.2 conclusion: "even an ideal yet impractical QAM
    // implementation would not support full neural data
    // transmission" at large channel counts.
    for (const auto &soc : wirelessSocs()) {
        QamStudy study{ImplantModel(soc)};
        EXPECT_GT(study.evaluate(8192).minimumEfficiency, 1.0)
            << soc.name;
    }
}

TEST(QamStudyTest, CustomLinkBudgetShiftsTheCurve)
{
    QamStudyConfig harsh;
    harsh.link.marginDb = 30.0; // 10 dB extra tissue margin
    QamStudy nominal(ImplantModel(socById(1)));
    QamStudy degraded(ImplantModel(socById(1)), harsh);
    EXPECT_GT(degraded.evaluate(2048).minimumEfficiency,
              nominal.evaluate(2048).minimumEfficiency * 5.0);
}

TEST(QamStudyTest, StricterBerRaisesRequiredEfficiency)
{
    QamStudyConfig strict;
    strict.targetBer = 1e-9;
    QamStudy nominal(ImplantModel(socById(1)));
    QamStudy strict_study(ImplantModel(socById(1)), strict);
    EXPECT_GT(strict_study.evaluate(2048).minimumEfficiency,
              nominal.evaluate(2048).minimumEfficiency);
}

} // namespace
} // namespace mindful::core
