/**
 * @file
 * Design-report generator tests.
 */

#include <gtest/gtest.h>

#include "core/report.hh"
#include "core/soc_catalog.hh"

namespace mindful::core {
namespace {

TEST(ReportTest, ContainsAllSectionsByDefault)
{
    std::string report = designReport(socById(1));
    EXPECT_NE(report.find("# MINDFUL design report: BISC"),
              std::string::npos);
    EXPECT_NE(report.find("## Overview"), std::string::npos);
    EXPECT_NE(report.find("## Raw-data streaming"), std::string::npos);
    EXPECT_NE(report.find("## On-implant decoding"), std::string::npos);
    EXPECT_NE(report.find("Optimization ladder"), std::string::npos);
    EXPECT_NE(report.find("## Multi-implant option"), std::string::npos);
}

TEST(ReportTest, OverviewCarriesTheNumbers)
{
    std::string report = designReport(socById(1));
    EXPECT_NE(report.find("144 mm^2"), std::string::npos);
    EXPECT_NE(report.find("38.88 mW"), std::string::npos);
    EXPECT_NE(report.find("SAFE"), std::string::npos);
}

TEST(ReportTest, SectionsToggleOff)
{
    ReportOptions options;
    options.includeCommCentric = false;
    options.includeMultiImplant = false;
    std::string report = designReport(socById(3), options);
    EXPECT_EQ(report.find("## Raw-data streaming"), std::string::npos);
    EXPECT_EQ(report.find("## Multi-implant option"), std::string::npos);
    EXPECT_NE(report.find("## On-implant decoding"), std::string::npos);
}

TEST(ReportTest, CustomChannelCountsAppear)
{
    ReportOptions options;
    options.channelCounts = {3000};
    options.includeMultiImplant = false;
    std::string report = designReport(socById(1), options);
    EXPECT_NE(report.find("| 3000 |"), std::string::npos);
}

TEST(ReportTest, InfeasibleDesignIsReportedHonestly)
{
    // Shen cannot host the decoders at 1024 channels (Fig. 10).
    std::string report = designReport(socById(4));
    EXPECT_NE(report.find("| MLP | no"), std::string::npos);
}

TEST(ReportTest, WorksForEveryCataloguedDesign)
{
    ReportOptions cheap;
    cheap.channelCounts = {2048};
    for (const auto &soc : socCatalog()) {
        std::string report = designReport(soc, cheap);
        EXPECT_GT(report.size(), 500u) << soc.name;
        EXPECT_NE(report.find(soc.name), std::string::npos);
    }
}

} // namespace
} // namespace mindful::core
