/**
 * @file
 * Opaque-workload and Kalman-decoder workload tests (the extension
 * comparing traditional algorithms against the Fig. 10 DNNs).
 */

#include <gtest/gtest.h>

#include "core/comp_centric.hh"
#include "core/soc_catalog.hh"
#include "core/workloads.hh"
#include "dnn/models.hh"
#include "dnn/opaque.hh"

namespace mindful::core {
namespace {

TEST(OpaqueLayerTest, DeclaredCensusAndShapes)
{
    dnn::OpaqueMacLayer layer("stage", 16, 4, {8, 32}, 100);
    EXPECT_EQ(layer.outputShape({16}), (dnn::Shape{4}));
    EXPECT_EQ(layer.outputShape({4, 4}), (dnn::Shape{4}));
    auto census = layer.census({16});
    EXPECT_EQ(census.macOp, 8u);
    EXPECT_EQ(census.macSeq, 32u);
    EXPECT_EQ(layer.weightCount(), 100u);
}

TEST(OpaqueLayerDeathTest, ForwardIsAnalysisOnly)
{
    dnn::OpaqueMacLayer layer("stage", 4, 2, {2, 2});
    dnn::Tensor x(dnn::Shape{4});
    EXPECT_EXIT(layer.forward(x), ::testing::ExitedWithCode(1),
                "analysis-only");
}

TEST(OpaqueLayerDeathTest, ShapeMismatchPanics)
{
    dnn::OpaqueMacLayer layer("stage", 4, 2, {2, 2});
    EXPECT_DEATH(layer.outputShape({5}), "expects 4 inputs");
}

TEST(KalmanWorkloadTest, StructureAndOutput)
{
    auto net = buildKalmanWorkload(256);
    EXPECT_EQ(net.inputShape(), (dnn::Shape{256}));
    // Output is the decoded state vector.
    EXPECT_EQ(dnn::elementCount(net.outputShape()),
              KalmanWorkloadSpec{}.stateDim);
    EXPECT_GT(net.layerCount(), 8u);
}

TEST(KalmanWorkloadTest, MacCountMatchesClosedForm)
{
    // Total = 2 m^2 n + 2 m n^2 + n^3/3 + n^2 m + nm + mn + 3 m^3
    //         + m^2 (predict) — verify against the closed form for a
    //         couple of (m, n) pairs.
    for (std::uint64_t n : {64u, 256u}) {
        KalmanWorkloadSpec spec;
        const std::uint64_t m = spec.stateDim;
        std::uint64_t expected =
            m * m              // A x
            + 2 * m * m * m    // A P A^T
            + n * m            // H x-
            + n * m * m        // H P-
            + n * m * n        // (H P-) H^T
            + n * n * (n / 3)  // invert S
            + m * m * n        // P- H^T
            + m * n * n        // (P- H^T) S^-1
            + m * n            // x update
            + m * n * m        // K H
            + m * m * m;       // (I - KH) P-
        EXPECT_EQ(kalmanIterationMacs(n, spec), expected) << "n=" << n;
    }
}

TEST(KalmanWorkloadTest, CubicScalingInChannels)
{
    double at_1k = static_cast<double>(kalmanIterationMacs(1024));
    double at_4k = static_cast<double>(kalmanIterationMacs(4096));
    // 4x the channels: cost grows ~64x (dominated by n^3).
    EXPECT_GT(at_4k / at_1k, 40.0);
    EXPECT_LT(at_4k / at_1k, 70.0);
}

TEST(KalmanWorkloadTest, WeightsIncludeModelMatrices)
{
    KalmanWorkloadSpec spec;
    auto net = buildKalmanWorkload(512, spec);
    // At least A, Q (m^2 each) and H (n m).
    EXPECT_GE(net.totalWeights(),
              2 * spec.stateDim * spec.stateDim + 512 * spec.stateDim);
}

TEST(KalmanWorkloadTest, FeasibleOnBiscAtStandardScale)
{
    // One iteration per 50 ms bin: generous deadline, modest power.
    CompCentricConfig config;
    config.applicationRate = Frequency::hertz(20.0);
    CompCentricModel model(
        ImplantModel(socById(1)),
        [](std::uint64_t n) { return buildKalmanWorkload(n); }, config);

    auto point = model.evaluate(1024);
    EXPECT_TRUE(point.feasible);
    EXPECT_EQ(point.transmittedElements, KalmanWorkloadSpec{}.stateDim);
    // Far cheaper than the MLP at the same channel count.
    CompCentricModel mlp(ImplantModel(socById(1)),
                         [](std::uint64_t n) {
                             return dnn::buildSpeechMlp(n);
                         });
    EXPECT_LT(point.computePower.inWatts(),
              mlp.evaluate(1024).computePower.inWatts());
}

TEST(KalmanWorkloadTest, CubicCostEventuallyBindsHarderThanMlp)
{
    // The MAC-cost ratio Kalman/MLP grows with n (O(n^3) vs ~O(n^2)).
    double ratio_1k =
        static_cast<double>(kalmanIterationMacs(1024)) /
        static_cast<double>(dnn::buildSpeechMlp(1024).totalMacs());
    double ratio_8k =
        static_cast<double>(kalmanIterationMacs(8192)) /
        static_cast<double>(dnn::buildSpeechMlp(8192).totalMacs());
    EXPECT_GT(ratio_8k, 4.0 * ratio_1k);
}

TEST(KalmanWorkloadTest, MaxChannelsFiniteDespiteGenerousDeadline)
{
    CompCentricConfig config;
    config.applicationRate = Frequency::hertz(20.0);
    CompCentricModel model(
        ImplantModel(socById(3)),
        [](std::uint64_t n) { return buildKalmanWorkload(n); }, config);
    auto max_n = model.maxChannels();
    EXPECT_GT(max_n, 1024u);
    EXPECT_LT(max_n, 8192u); // the n^3 wall
}

} // namespace
} // namespace mindful::core
