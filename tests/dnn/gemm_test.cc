/**
 * @file
 * Golden-equivalence tests for the im2col-GEMM forward path.
 *
 * Conv2dLayer::forward / DenseLayer::forward execute through the
 * shared GEMM kernel (src/dnn/gemm.hh); the original loop nests are
 * retained as forwardNaive. The kernel accumulates each output
 * element sequentially in ascending k — the same order as the naive
 * loops — and shards only over output rows, so the contract is
 * *exact* float equality: to the naive reference AND across thread
 * counts. These tests pin that contract over the padding modes,
 * strides, and kernel shapes the model zoo uses (and a few it
 * doesn't, e.g. even kernels).
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "dnn/conv.hh"
#include "dnn/dense.hh"
#include "dnn/gemm.hh"
#include "exec/thread_pool.hh"

namespace mindful::dnn {
namespace {

/** Deterministic non-trivial input: mixed signs, no repeats. */
Tensor
makeInput(const Shape &shape)
{
    Tensor x(shape);
    Rng rng(7);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    return x;
}

/** Exact per-element comparison (bitwise-equal floats). */
void
expectIdentical(const Tensor &a, const Tensor &b)
{
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "element " << i;
}

Conv2dLayer
makeConv(std::size_t in_ch, std::size_t out_ch, std::size_t kh,
         std::size_t kw, std::size_t stride, Padding padding)
{
    Conv2dLayer conv(in_ch, out_ch, kh, kw, stride, padding);
    Rng rng(11);
    conv.initializeWeights(rng);
    for (std::size_t i = 0; i < conv.biases().size(); ++i)
        conv.biases()[i] = 0.05f * static_cast<float>(i) - 0.1f;
    return conv;
}

TEST(GemmConvTest, SamePaddingMatchesNaiveExactly)
{
    auto conv = makeConv(3, 8, 3, 3, 1, Padding::Same);
    // Odd extents so the GEMM column count exercises the tail block
    // (n = 143 is not a multiple of the 16-wide register tile).
    Tensor x = makeInput({3, 13, 11});
    expectIdentical(conv.forward(x), conv.forwardNaive(x));
}

TEST(GemmConvTest, ValidPaddingMatchesNaiveExactly)
{
    auto conv = makeConv(4, 6, 3, 3, 1, Padding::Valid);
    Tensor x = makeInput({4, 12, 9});
    expectIdentical(conv.forward(x), conv.forwardNaive(x));
}

TEST(GemmConvTest, StridedSamePaddingMatchesNaiveExactly)
{
    auto conv = makeConv(2, 5, 3, 3, 2, Padding::Same);
    Tensor x = makeInput({2, 11, 17});
    expectIdentical(conv.forward(x), conv.forwardNaive(x));
}

TEST(GemmConvTest, StridedValidPaddingMatchesNaiveExactly)
{
    auto conv = makeConv(2, 4, 4, 4, 3, Padding::Valid);
    Tensor x = makeInput({2, 16, 13});
    expectIdentical(conv.forward(x), conv.forwardNaive(x));
}

TEST(GemmConvTest, EvenKernelMatchesNaiveExactly)
{
    // Even kernels make the "same" padding asymmetric ((k-1)/2 before,
    // the remainder after) — the im2col valid-span bookkeeping must
    // agree with the naive loop's bounds checks exactly.
    auto conv = makeConv(3, 4, 2, 4, 1, Padding::Same);
    Tensor x = makeInput({3, 9, 10});
    expectIdentical(conv.forward(x), conv.forwardNaive(x));
}

TEST(GemmConvTest, WideRectangularKernelMatchesNaiveExactly)
{
    // The speech front-end uses 1xN temporal kernels.
    auto conv = makeConv(2, 3, 1, 7, 1, Padding::Same);
    Tensor x = makeInput({2, 5, 40});
    expectIdentical(conv.forward(x), conv.forwardNaive(x));
}

TEST(GemmConvTest, PointwiseConvMatchesNaiveExactly)
{
    // 1x1 stride-1 takes the zero-copy path (input buffer used as the
    // patch matrix directly).
    auto conv = makeConv(6, 9, 1, 1, 1, Padding::Same);
    Tensor x = makeInput({6, 14, 10});
    expectIdentical(conv.forward(x), conv.forwardNaive(x));
}

TEST(GemmConvTest, KernelLargerThanInputSamePadding)
{
    auto conv = makeConv(1, 2, 5, 5, 1, Padding::Same);
    Tensor x = makeInput({1, 3, 3});
    expectIdentical(conv.forward(x), conv.forwardNaive(x));
}

TEST(GemmConvTest, BitIdenticalAcrossThreadCounts)
{
    // Large enough (m*n*k >= 2^16 MACs) that biasGemm actually shards
    // over the pool. Row sharding has no cross-shard reduction, so
    // equality is exact, not approximate.
    auto conv = makeConv(8, 16, 3, 3, 1, Padding::Same);
    Tensor x = makeInput({8, 32, 32});

    exec::ThreadPool::setGlobalThreadCount(1);
    Tensor serial = conv.forward(x);
    exec::ThreadPool::setGlobalThreadCount(8);
    Tensor parallel = conv.forward(x);
    exec::ThreadPool::setGlobalThreadCount(0);

    expectIdentical(serial, parallel);
    expectIdentical(serial, conv.forwardNaive(x));
}

TEST(GemmDenseTest, MatchesNaiveExactly)
{
    DenseLayer layer(37, 29);
    Rng rng(13);
    layer.initializeWeights(rng);
    for (std::size_t i = 0; i < layer.biases().size(); ++i)
        layer.biases()[i] = 0.01f * static_cast<float>(i);
    Tensor x = makeInput({37});
    expectIdentical(layer.forward(x), layer.forwardNaive(x));
}

TEST(GemmDenseTest, BitIdenticalAcrossThreadCounts)
{
    DenseLayer layer(512, 512);
    Rng rng(17);
    layer.initializeWeights(rng);
    Tensor x = makeInput({512});

    exec::ThreadPool::setGlobalThreadCount(1);
    Tensor serial = layer.forward(x);
    exec::ThreadPool::setGlobalThreadCount(8);
    Tensor parallel = layer.forward(x);
    exec::ThreadPool::setGlobalThreadCount(0);

    expectIdentical(serial, parallel);
    expectIdentical(serial, layer.forwardNaive(x));
}

TEST(GemmDenseStageTest, FusedForwardMatchesReferenceExactly)
{
    // The production DenseNet stage writes the conv's ReLU-ed output
    // directly into the concatenated tensor with the ReLU fused into
    // the GEMM epilogue; forwardReference runs the naive conv plus an
    // explicit ReLU pass. max(x, 0) on identical x is identical.
    DenseStage2dLayer stage(5, 11, 3, 3);
    Rng rng(19);
    stage.initializeWeights(rng);
    Tensor x = makeInput({5, 16, 16});
    expectIdentical(stage.forward(x), stage.forwardReference(x));
}

TEST(GemmKernelTest, EpilogueReluClampsExactly)
{
    // Direct kernel check: one row whose products straddle zero.
    // A = [1, -1], B columns = (1,0), (0,1), (2,3), bias = -0.5.
    const float a[] = {1.0f, -1.0f};
    const float b[] = {1.0f, 0.0f, 2.0f, /* k=1 row */ 0.0f, 1.0f, 3.0f};
    const float bias[] = {-0.5f};
    float none[3], relu[3];
    gemm::biasGemm(1, 3, 2, a, b, bias, none, gemm::Epilogue::None);
    gemm::biasGemm(1, 3, 2, a, b, bias, relu, gemm::Epilogue::Relu);
    EXPECT_FLOAT_EQ(none[0], 0.5f);
    EXPECT_FLOAT_EQ(none[1], -1.5f);
    EXPECT_FLOAT_EQ(none[2], -1.5f);
    EXPECT_FLOAT_EQ(relu[0], 0.5f);
    EXPECT_FLOAT_EQ(relu[1], 0.0f);
    EXPECT_FLOAT_EQ(relu[2], 0.0f);
}

} // namespace
} // namespace mindful::dnn
