/**
 * @file
 * Layer-level tests: forward semantics, shapes, weight counts, and
 * lazy materialization for dense, conv, activation, pooling and
 * DenseNet-stage layers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/activation.hh"
#include "dnn/conv.hh"
#include "dnn/dense.hh"
#include "dnn/pooling.hh"

namespace mindful::dnn {
namespace {

TEST(DenseLayerTest, ForwardComputesAffineMap)
{
    DenseLayer layer(3, 2);
    layer.materialize();
    layer.weights() = {1.0f, 2.0f, 3.0f, /* row 1 */ 0.5f, -1.0f, 0.0f};
    layer.biases() = {10.0f, -1.0f};
    Tensor x(Shape{3}, {1.0f, 2.0f, 3.0f});
    Tensor y = layer.forward(x);
    ASSERT_EQ(y.shape(), (Shape{2}));
    EXPECT_FLOAT_EQ(y[0], 10.0f + 1.0f + 4.0f + 9.0f);
    EXPECT_FLOAT_EQ(y[1], -1.0f + 0.5f - 2.0f);
}

TEST(DenseLayerTest, AcceptsAnyShapeWithMatchingElements)
{
    DenseLayer layer(6, 1);
    layer.materialize();
    Tensor x(Shape{2, 3});
    EXPECT_EQ(layer.outputShape(x.shape()), (Shape{1}));
    EXPECT_NO_THROW(layer.forward(x));
}

TEST(DenseLayerTest, WeightCountWithoutMaterialization)
{
    DenseLayer layer(512, 128);
    EXPECT_FALSE(layer.materialized());
    EXPECT_EQ(layer.weightCount(), 512u * 128u + 128u);
}

TEST(DenseLayerTest, InitializeWeightsMaterializesAndBounds)
{
    DenseLayer layer(100, 50);
    Rng rng(1);
    layer.initializeWeights(rng);
    EXPECT_TRUE(layer.materialized());
    double limit = std::sqrt(6.0 / 150.0);
    for (float w : layer.weights()) {
        EXPECT_LE(std::abs(w), limit);
    }
}

TEST(DenseLayerDeathTest, ForwardWithoutWeightsPanics)
{
    DenseLayer layer(4, 2);
    Tensor x(Shape{4});
    EXPECT_DEATH(layer.forward(x), "materialized");
}

TEST(DenseLayerTest, CensusMatchesFig8)
{
    // Fig. 8 top: A(4x3): #MAC_op = 4 rows, MAC_seq = 3.
    DenseLayer layer(3, 4);
    MacCensus census = layer.census({3});
    EXPECT_EQ(census.macOp, 4u);
    EXPECT_EQ(census.macSeq, 3u);
    EXPECT_EQ(census.totalMacs(), 12u);
}

TEST(ActivationTest, ReluClampsNegatives)
{
    ReluLayer relu;
    Tensor x(Shape{4}, {-1.0f, 0.0f, 2.0f, -3.0f});
    Tensor y = relu.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    EXPECT_FLOAT_EQ(y[3], 0.0f);
    EXPECT_TRUE(relu.census({4}).empty());
    EXPECT_EQ(relu.weightCount(), 0u);
}

TEST(ActivationTest, SigmoidRangeAndMidpoint)
{
    SigmoidLayer sigmoid;
    Tensor x(Shape{3}, {0.0f, 10.0f, -10.0f});
    Tensor y = sigmoid.forward(x);
    EXPECT_NEAR(y[0], 0.5f, 1e-6);
    EXPECT_GT(y[1], 0.999f);
    EXPECT_LT(y[2], 0.001f);
}

TEST(ActivationTest, SoftmaxNormalizesAndOrders)
{
    SoftmaxLayer softmax;
    Tensor x(Shape{3}, {1.0f, 2.0f, 3.0f});
    Tensor y = softmax.forward(x);
    float sum = y[0] + y[1] + y[2];
    EXPECT_NEAR(sum, 1.0f, 1e-6);
    EXPECT_LT(y[0], y[1]);
    EXPECT_LT(y[1], y[2]);
}

TEST(ActivationTest, SoftmaxStableForLargeInputs)
{
    SoftmaxLayer softmax;
    Tensor x(Shape{2}, {1000.0f, 1000.0f});
    Tensor y = softmax.forward(x);
    EXPECT_NEAR(y[0], 0.5f, 1e-6);
}

TEST(Conv2dTest, ValidOutputShape)
{
    Conv2dLayer conv(2, 4, 3, 3);
    EXPECT_EQ(conv.outputShape({2, 8, 8}), (Shape{4, 6, 6}));
}

TEST(Conv2dTest, SameOutputShapeWithStride)
{
    Conv2dLayer conv(1, 1, 3, 3, 2, Padding::Same);
    EXPECT_EQ(conv.outputShape({1, 9, 9}), (Shape{1, 5, 5}));
}

TEST(Conv2dTest, IdentityKernelReproducesInput)
{
    Conv2dLayer conv(1, 1, 3, 3, 1, Padding::Same);
    conv.materialize();
    conv.weights()[4] = 1.0f; // centre tap
    Tensor x(Shape{1, 4, 4});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(i);
    Tensor y = conv.forward(x);
    EXPECT_FLOAT_EQ(y.maxAbsDiff(x), 0.0f);
}

TEST(Conv2dTest, BoxKernelComputesLocalSum)
{
    Conv2dLayer conv(1, 1, 2, 2, 1, Padding::Valid);
    conv.materialize();
    for (auto &w : conv.weights())
        w = 1.0f;
    Tensor x(Shape{1, 2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
    Tensor y = conv.forward(x);
    ASSERT_EQ(y.shape(), (Shape{1, 1, 1}));
    EXPECT_FLOAT_EQ(y[0], 10.0f);
}

TEST(Conv2dTest, MultiChannelAccumulation)
{
    Conv2dLayer conv(2, 1, 1, 1);
    conv.materialize();
    conv.weights() = {2.0f, 3.0f}; // [out0][in0], [out0][in1]
    Tensor x(Shape{2, 1, 1}, {5.0f, 7.0f});
    Tensor y = conv.forward(x);
    EXPECT_FLOAT_EQ(y[0], 10.0f + 21.0f);
}

TEST(Conv2dTest, CensusMatchesFig8Example)
{
    // Fig. 8 bottom: 2 input channels, 1 output channel, kernel 4,
    // output size 4 -> #MAC_op = 4, MAC_seq = 8.
    Conv2dLayer conv(2, 1, 1, 4, 4, Padding::Valid);
    MacCensus census = conv.census({2, 1, 16});
    EXPECT_EQ(census.macOp, 4u);
    EXPECT_EQ(census.macSeq, 8u);
    EXPECT_EQ(census.totalMacs(), 32u);
}

TEST(Conv2dTest, CensusProductEqualsTotalMacs)
{
    Conv2dLayer conv(3, 8, 3, 3, 1, Padding::Same);
    Shape input{3, 16, 10};
    MacCensus census = conv.census(input);
    Shape out = conv.outputShape(input);
    std::uint64_t expected = static_cast<std::uint64_t>(out[1]) * out[2] *
                             9u * 3u * 8u;
    EXPECT_EQ(census.totalMacs(), expected);
}

TEST(Conv2dTest, WeightCount)
{
    Conv2dLayer conv(3, 8, 3, 3);
    EXPECT_EQ(conv.weightCount(), 3u * 8u * 9u + 8u);
}

TEST(DenseStageTest, ConcatenatesInputWithNewFeatures)
{
    DenseStage2dLayer stage(2, 3, 3, 3);
    EXPECT_EQ(stage.outputShape({2, 4, 4}), (Shape{5, 4, 4}));

    Rng rng(3);
    stage.initializeWeights(rng);
    Tensor x(Shape{2, 4, 4});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(i) * 0.1f;
    Tensor y = stage.forward(x);

    // Channels 0-1 are the untouched input.
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
    // New channels are ReLU outputs: non-negative.
    for (std::size_t i = x.size(); i < y.size(); ++i)
        EXPECT_GE(y[i], 0.0f);
}

TEST(DenseStageTest, CensusIsTheInnerConvolutions)
{
    DenseStage2dLayer stage(4, 2, 3, 3);
    Conv2dLayer conv(4, 2, 3, 3, 1, Padding::Same);
    Shape input{4, 8, 8};
    EXPECT_EQ(stage.census(input).totalMacs(),
              conv.census(input).totalMacs());
    EXPECT_EQ(stage.weightCount(), conv.weightCount());
}

TEST(PoolingTest, MaxPoolSelectsMaxima)
{
    Pool2dLayer pool(PoolKind::Max, 2, 2);
    Tensor x(Shape{1, 2, 4}, {1.0f, 5.0f, 2.0f, 0.0f,
                              3.0f, -1.0f, 7.0f, 2.0f});
    Tensor y = pool.forward(x);
    ASSERT_EQ(y.shape(), (Shape{1, 1, 2}));
    EXPECT_FLOAT_EQ(y[0], 5.0f);
    EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(PoolingTest, AvgPoolAverages)
{
    Pool2dLayer pool(PoolKind::Average, 2, 2);
    Tensor x(Shape{1, 2, 2}, {1.0f, 2.0f, 3.0f, 6.0f});
    Tensor y = pool.forward(x);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(PoolingTest, FloorSemanticsDropPartialWindows)
{
    Pool2dLayer pool(PoolKind::Max, 2, 2);
    EXPECT_EQ(pool.outputShape({3, 5, 7}), (Shape{3, 2, 3}));
}

TEST(PoolingTest, GlobalAvgPool)
{
    GlobalAvgPoolLayer pool;
    Tensor x(Shape{2, 2, 2}, {1, 1, 1, 1, 2, 4, 6, 8});
    Tensor y = pool.forward(x);
    ASSERT_EQ(y.shape(), (Shape{2}));
    EXPECT_FLOAT_EQ(y[0], 1.0f);
    EXPECT_FLOAT_EQ(y[1], 5.0f);
}

TEST(PoolingTest, FlattenKeepsDataOrder)
{
    FlattenLayer flatten;
    Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor y = flatten.forward(x);
    ASSERT_EQ(y.shape(), (Shape{6}));
    EXPECT_FLOAT_EQ(y[3], 4.0f);
}

TEST(PoolingTest, PoolingLayersAreMacFree)
{
    Pool2dLayer pool(PoolKind::Max, 2, 2);
    GlobalAvgPoolLayer global;
    FlattenLayer flatten;
    EXPECT_TRUE(pool.census({1, 4, 4}).empty());
    EXPECT_TRUE(global.census({1, 4, 4}).empty());
    EXPECT_TRUE(flatten.census({1, 4, 4}).empty());
}

} // namespace
} // namespace mindful::dnn
