/**
 * @file
 * Reference speech-model tests: structure at the published operating
 * point, the alpha scaling law of Sec. 5.3, and the properties the
 * paper's studies rely on (super-linear compute growth, fixed output
 * size, DN-CNN's lack of narrow cuts).
 */

#include <gtest/gtest.h>

#include "dnn/models.hh"

namespace mindful::dnn {
namespace {

TEST(ScalingAlphaTest, RatioToBaseChannels)
{
    EXPECT_DOUBLE_EQ(scalingAlpha(128, 128), 1.0);
    EXPECT_DOUBLE_EQ(scalingAlpha(1024, 128), 8.0);
    EXPECT_DOUBLE_EQ(scalingAlpha(64, 128), 0.5);
}

TEST(ExtraDepthTest, LogarithmicGrowth)
{
    EXPECT_EQ(extraDepth(0.5), 0u);
    EXPECT_EQ(extraDepth(1.0), 0u);
    EXPECT_EQ(extraDepth(2.0), 1u);
    EXPECT_EQ(extraDepth(8.0), 3u);
    EXPECT_EQ(extraDepth(16.0), 4u);
}

TEST(ScaledWidthTest, ScalesAndClamps)
{
    EXPECT_EQ(scaledWidth(256, 2.0), 512u);
    EXPECT_EQ(scaledWidth(256, 0.5), 128u);
    EXPECT_EQ(scaledWidth(3, 0.01), 1u);
}

TEST(SpeechMlpTest, BaseOperatingPoint)
{
    Network mlp = buildSpeechMlp(128);
    EXPECT_EQ(mlp.inputShape(),
              (Shape{128u * MlpSpec{}.windowSamples}));
    EXPECT_EQ(mlp.outputShape(), (Shape{40})); // 40 speech labels
    EXPECT_GT(mlp.totalMacs(), 100000u); // non-trivial model
}

TEST(SpeechMlpTest, OutputSizeIndependentOfChannels)
{
    // Sec. 5.3: classification output is a fixed label vector.
    for (std::uint64_t n : {128u, 512u, 1024u, 4096u})
        EXPECT_EQ(buildSpeechMlp(n).outputShape(), (Shape{40}));
}

TEST(SpeechMlpTest, ComputeGrowsSuperLinearly)
{
    // The curse of dimensionality: 8x the channels must cost much
    // more than 8x the MACs.
    double base = static_cast<double>(buildSpeechMlp(128).totalMacs());
    double scaled = static_cast<double>(buildSpeechMlp(1024).totalMacs());
    EXPECT_GT(scaled / base, 20.0);
}

TEST(SpeechMlpTest, DepthGrowsWithAlpha)
{
    EXPECT_GT(buildSpeechMlp(2048).layerCount(),
              buildSpeechMlp(128).layerCount());
}

TEST(SpeechMlpTest, HasLatentBottleneckCut)
{
    // The Sec. 6.1 partition point: some intermediate layer output
    // is <= 1024 elements even for large n, with MACs behind it.
    Network mlp = buildSpeechMlp(2048);
    bool found = false;
    for (std::size_t i = 0; i + 1 < mlp.layerCount() && !found; ++i) {
        if (mlp.outputElements(i) <= 1024) {
            auto census = mlp.census();
            std::uint64_t behind = 0;
            for (std::size_t j = i + 1; j < mlp.layerCount(); ++j)
                behind += census[j].totalMacs();
            found = behind > 0;
        }
    }
    EXPECT_TRUE(found);
}

TEST(SpeechMlpTest, ForwardExecutesAtBaseScale)
{
    Network mlp = buildSpeechMlp(128);
    Rng rng(7);
    mlp.initializeWeights(rng);
    Tensor x(mlp.inputShape());
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.01f * static_cast<float>(i % 100);
    Tensor y = mlp.forward(x);
    ASSERT_EQ(y.size(), 40u);
    float sum = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i)
        sum += y[i];
    EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(SpeechDnCnnTest, BaseOperatingPoint)
{
    Network cnn = buildSpeechDnCnn(128);
    EXPECT_EQ(cnn.inputShape(),
              (Shape{1, 128, DnCnnSpec{}.windowSamples}));
    EXPECT_EQ(cnn.outputShape(), (Shape{40}));
}

TEST(SpeechDnCnnTest, MoreExpensiveThanMlpAtScale)
{
    // Fig. 10: the DN-CNN hits the budget earlier than the MLP.
    EXPECT_GT(buildSpeechDnCnn(1024).totalMacs(),
              buildSpeechMlp(1024).totalMacs());
}

TEST(SpeechDnCnnTest, ComputeGrowsSuperLinearly)
{
    double base = static_cast<double>(buildSpeechDnCnn(128).totalMacs());
    double scaled =
        static_cast<double>(buildSpeechDnCnn(1024).totalMacs());
    EXPECT_GT(scaled / base, 12.0);
}

TEST(SpeechDnCnnTest, NoNarrowCutBeforeTheClassifier)
{
    // Fig. 11: every intermediate feature map is wider than 1024
    // values until the global pool right before the classifier —
    // partitioning cannot help this model.
    Network cnn = buildSpeechDnCnn(2048);
    auto census = cnn.census();
    for (std::size_t i = 0; i + 1 < cnn.layerCount(); ++i) {
        if (cnn.outputElements(i) > 1024)
            continue;
        // A narrow point: almost no MACs may remain behind it.
        std::uint64_t behind = 0;
        for (std::size_t j = i + 1; j < cnn.layerCount(); ++j)
            behind += census[j].totalMacs();
        EXPECT_LT(static_cast<double>(behind),
                  0.01 * static_cast<double>(cnn.totalMacs()));
    }
}

TEST(SpeechDnCnnTest, ForwardExecutesAtBaseScale)
{
    Network cnn = buildSpeechDnCnn(128);
    Rng rng(9);
    cnn.initializeWeights(rng);
    Tensor x(cnn.inputShape());
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.001f * static_cast<float>(i % 97);
    Tensor y = cnn.forward(x);
    ASSERT_EQ(y.size(), 40u);
    float sum = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i)
        sum += y[i];
    EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(SpeechDnCnnTest, SpatialCapBoundsFeatureHeight)
{
    // The stem pool caps the channel-axis extent near spatialCap so
    // conv cost scales through growth/depth, not raw map height.
    Network cnn = buildSpeechDnCnn(4096);
    bool found_capped = false;
    for (std::size_t i = 0; i < cnn.layerCount(); ++i) {
        const Shape &s = cnn.shapeAfter(i);
        if (s.size() == 3 && s[1] <= 160 && s[2] <= 16) {
            found_capped = true;
            break;
        }
    }
    EXPECT_TRUE(found_capped);
}

/** Property sweep: model invariants across channel counts. */
class ModelScalingSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ModelScalingSweep, MacsMonotoneInChannels)
{
    std::uint64_t n = GetParam();
    EXPECT_GE(buildSpeechMlp(n + 256).totalMacs(),
              buildSpeechMlp(n).totalMacs());
    EXPECT_GE(buildSpeechDnCnn(n + 256).totalMacs(),
              buildSpeechDnCnn(n).totalMacs());
}

TEST_P(ModelScalingSweep, WeightsMonotoneInChannels)
{
    std::uint64_t n = GetParam();
    EXPECT_GE(buildSpeechMlp(n + 256).totalWeights(),
              buildSpeechMlp(n).totalWeights());
}

TEST_P(ModelScalingSweep, CensusConsistentWithTotals)
{
    std::uint64_t n = GetParam();
    Network mlp = buildSpeechMlp(n);
    EXPECT_EQ(totalMacs(mlp.census()), mlp.totalMacs());
}

INSTANTIATE_TEST_SUITE_P(Channels, ModelScalingSweep,
                         ::testing::Values(128u, 256u, 512u, 1024u,
                                           2048u, 4096u));

} // namespace
} // namespace mindful::dnn
