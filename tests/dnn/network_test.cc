/**
 * @file
 * Network container and MAC-census aggregation tests.
 */

#include <gtest/gtest.h>

#include "dnn/activation.hh"
#include "dnn/dense.hh"
#include "dnn/network.hh"
#include "dnn/pooling.hh"

namespace mindful::dnn {
namespace {

Network
smallMlp()
{
    Network net("test-mlp", Shape{8});
    net.emplace<DenseLayer>(8, 4);
    net.emplace<ReluLayer>();
    net.emplace<DenseLayer>(4, 2);
    net.emplace<SoftmaxLayer>();
    return net;
}

TEST(NetworkTest, ShapesTrackedPerLayer)
{
    Network net = smallMlp();
    EXPECT_EQ(net.layerCount(), 4u);
    EXPECT_EQ(net.inputShape(), (Shape{8}));
    EXPECT_EQ(net.shapeBefore(0), (Shape{8}));
    EXPECT_EQ(net.shapeAfter(0), (Shape{4}));
    EXPECT_EQ(net.shapeAfter(1), (Shape{4}));
    EXPECT_EQ(net.outputShape(), (Shape{2}));
    EXPECT_EQ(net.outputElements(2), 2u);
}

TEST(NetworkTest, CensusPerLayer)
{
    Network net = smallMlp();
    auto census = net.census();
    ASSERT_EQ(census.size(), 4u);
    EXPECT_EQ(census[0].totalMacs(), 32u);
    EXPECT_TRUE(census[1].empty());
    EXPECT_EQ(census[2].totalMacs(), 8u);
    EXPECT_EQ(net.totalMacs(), 40u);
    EXPECT_EQ(maxMacOp(census), 4u);
    EXPECT_EQ(totalMacs(census), 40u);
}

TEST(MacCensusTest, TotalMacsSaturatesInsteadOfWrapping)
{
    // 2^40 * 2^30 would wrap to exactly 0 in 64-bit arithmetic and
    // silently make the layer "free" (a bug the failure-injection
    // suite caught); it must saturate instead.
    MacCensus huge{1ull << 40, 1ull << 30};
    EXPECT_EQ(huge.totalMacs(), UINT64_MAX);
    EXPECT_FALSE(huge.empty());
    EXPECT_TRUE((MacCensus{0, 5}).empty());
    EXPECT_TRUE((MacCensus{5, 0}).empty());
}

TEST(NetworkTest, CensusPrefixSumsToFullCensus)
{
    Network net = smallMlp();
    auto prefix = net.censusPrefix(2);
    EXPECT_EQ(prefix.size(), 2u);
    EXPECT_EQ(totalMacs(prefix), 32u);
    EXPECT_EQ(totalMacs(net.censusPrefix(0)), 0u);
}

TEST(NetworkTest, TotalWeights)
{
    Network net = smallMlp();
    EXPECT_EQ(net.totalWeights(), (8u * 4 + 4) + (4u * 2 + 2));
}

TEST(NetworkTest, ForwardRunsAllLayers)
{
    Network net = smallMlp();
    Rng rng(5);
    net.initializeWeights(rng);
    Tensor x(Shape{8}, {1, -1, 2, -2, 3, -3, 4, -4});
    Tensor y = net.forward(x);
    ASSERT_EQ(y.shape(), (Shape{2}));
    EXPECT_NEAR(y[0] + y[1], 1.0f, 1e-6); // softmax output
}

TEST(NetworkTest, ForwardPrefixStopsEarly)
{
    Network net = smallMlp();
    Rng rng(5);
    net.initializeWeights(rng);
    Tensor x(Shape{8}, {1, -1, 2, -2, 3, -3, 4, -4});
    Tensor mid = net.forwardPrefix(x, 2);
    ASSERT_EQ(mid.shape(), (Shape{4}));
    for (std::size_t i = 0; i < mid.size(); ++i)
        EXPECT_GE(mid[i], 0.0f); // post-ReLU
    // Prefix of zero layers is the input itself.
    EXPECT_FLOAT_EQ(net.forwardPrefix(x, 0).maxAbsDiff(x), 0.0f);
}

TEST(NetworkTest, SummaryMentionsLayersAndTotals)
{
    Network net = smallMlp();
    std::string summary = net.summary();
    EXPECT_NE(summary.find("dense 8->4"), std::string::npos);
    EXPECT_NE(summary.find("total MACs 40"), std::string::npos);
}

TEST(NetworkTest, MixedRankPipeline)
{
    Network net("conv-net", Shape{1, 8, 8});
    net.emplace<Pool2dLayer>(PoolKind::Max, 2, 2);
    net.emplace<FlattenLayer>();
    net.emplace<DenseLayer>(16, 3);
    EXPECT_EQ(net.outputShape(), (Shape{3}));
    EXPECT_EQ(net.totalMacs(), 48u);
}

TEST(NetworkDeathTest, IncompatibleLayerPanics)
{
    Network net("bad", Shape{8});
    EXPECT_DEATH(net.emplace<DenseLayer>(9, 4), "expects 9 inputs");
}

TEST(NetworkDeathTest, WrongInputShapePanics)
{
    Network net = smallMlp();
    Rng rng(5);
    net.initializeWeights(rng);
    Tensor wrong(Shape{4});
    EXPECT_DEATH(net.forward(wrong), "input shape");
}

} // namespace
} // namespace mindful::dnn
