/**
 * @file
 * SIMD dispatch-correctness tests (src/base/cpu.hh, src/dnn/gemm.cc).
 *
 * The dispatch tier's contract is *bit-identical* output on every
 * backend: vector lanes hold distinct output elements, each element
 * accumulates its k products in ascending order in one chain, and
 * multiply/add stay unfused. These tests force every ISA compiled
 * into this binary and supported by this host (forceSimdIsa — the
 * in-process equivalent of the `MINDFUL_SIMD` override the CI
 * force-scalar run exercises) and require exact float equality
 * against the scalar kernel over ragged shapes (n % lane != 0,
 * k % lane != 0, row tails), GEMV (n == 1), strided/padded im2col
 * convolutions, the fused bias+ReLU epilogue, and thread counts.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "base/cpu.hh"
#include "dnn/conv.hh"
#include "dnn/dense.hh"
#include "dnn/gemm.hh"
#include "exec/thread_pool.hh"

namespace mindful::dnn {
namespace {

/** All ISAs this binary + host can actually execute. */
std::vector<SimdIsa>
supportedIsas()
{
    std::vector<SimdIsa> isas{SimdIsa::Scalar};
    if (simdIsaSupported(SimdIsa::Avx2))
        isas.push_back(SimdIsa::Avx2);
    if (simdIsaSupported(SimdIsa::Neon))
        isas.push_back(SimdIsa::Neon);
    return isas;
}

/** Restore detection when a test that forces ISAs exits. */
struct IsaGuard
{
    ~IsaGuard() { forceSimdIsa(detectSimdIsa()); }
};

std::vector<float>
randomVec(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(count);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
    return v;
}

void
expectBitIdentical(const std::vector<float> &a,
                   const std::vector<float> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
                  std::bit_cast<std::uint32_t>(b[i]))
            << what << " element " << i << ": " << a[i] << " vs "
            << b[i];
}

void
runShape(std::size_t m, std::size_t n, std::size_t k,
         gemm::Epilogue epilogue)
{
    const auto a = randomVec(m * k, 101 + m);
    const auto b = randomVec(k * n, 211 + n);
    const auto bias = randomVec(m, 307 + k);

    IsaGuard guard;
    forceSimdIsa(SimdIsa::Scalar);
    std::vector<float> reference(m * n);
    gemm::biasGemm(m, n, k, a.data(), b.data(), bias.data(),
                   reference.data(), epilogue);

    for (const SimdIsa isa : supportedIsas()) {
        forceSimdIsa(isa);
        std::vector<float> out(m * n, -7.0f);
        gemm::biasGemm(m, n, k, a.data(), b.data(), bias.data(),
                       out.data(), epilogue);
        expectBitIdentical(reference, out, simdIsaName(isa));
    }
}

TEST(SimdDispatch, HostSupportIsCoherent)
{
    EXPECT_TRUE(simdIsaSupported(SimdIsa::Scalar));
    const SimdIsa detected = detectSimdIsa();
    EXPECT_TRUE(simdIsaSupported(detected));
    // The active ISA is always one the binary can execute.
    EXPECT_TRUE(simdIsaSupported(activeSimdIsa()));
#if defined(__x86_64__)
    EXPECT_FALSE(simdIsaSupported(SimdIsa::Neon));
#endif
}

TEST(SimdDispatch, NamesRoundTrip)
{
    for (const SimdIsa isa :
         {SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Neon}) {
        SimdIsa parsed;
        ASSERT_TRUE(parseSimdIsaName(simdIsaName(isa), parsed));
        EXPECT_EQ(parsed, isa);
    }
    SimdIsa parsed;
    EXPECT_FALSE(parseSimdIsaName("", parsed));
    EXPECT_FALSE(parseSimdIsaName("AVX2", parsed));
    EXPECT_FALSE(parseSimdIsaName("sse2", parsed));
}

TEST(SimdDispatch, ForceSelectsTheKernel)
{
    IsaGuard guard;
    forceSimdIsa(SimdIsa::Scalar);
    EXPECT_EQ(activeSimdIsa(), SimdIsa::Scalar);
    const SimdIsa best = detectSimdIsa();
    forceSimdIsa(best);
    EXPECT_EQ(activeSimdIsa(), best);
}

TEST(SimdDispatch, GemmRaggedTailsBitIdentical)
{
    // n sweeps across the 16/8-wide tile boundaries and odd tails;
    // k crosses the 8-wide GEMV block; m crosses the panel height.
    for (const std::size_t n : {2u, 7u, 8u, 9u, 15u, 16u, 17u, 33u})
        runShape(5, n, 13, gemm::Epilogue::None);
    for (const std::size_t m : {1u, 3u, 8u, 9u})
        runShape(m, 19, 27, gemm::Epilogue::None);
    for (const std::size_t k : {1u, 7u, 8u, 9u, 24u, 31u})
        runShape(6, 21, k, gemm::Epilogue::None);
}

TEST(SimdDispatch, FusedReluBitIdentical)
{
    for (const std::size_t n : {2u, 9u, 16u, 31u})
        runShape(7, n, 23, gemm::Epilogue::Relu);
}

TEST(SimdDispatch, GemvBitIdentical)
{
    // The dense-layer shape: n == 1, rows vectorized in panels with
    // transposed weight blocks. Ragged m and k exercise both tails.
    for (const std::size_t m : {1u, 4u, 7u, 8u, 9u, 64u, 65u})
        for (const std::size_t k : {1u, 5u, 8u, 16u, 23u})
            runShape(m, 1, k, gemm::Epilogue::None);
    runShape(65, 1, 23, gemm::Epilogue::Relu);
}

TEST(SimdDispatch, ReluTieKeepsNegativeZeroOnEveryIsa)
{
    // acc == -0.0 at the ReLU: std::max(acc, 0.0f) keeps -0.0 (the
    // comparison is false), and each vector epilogue must do the
    // same. +0.0 weights against *negative* inputs give -0.0
    // products, so a -0.0 bias accumulator stays -0.0 on every lane
    // (-0 + -0 = -0; a +0 product would flip it to +0).
    const std::size_t m = 9, k = 8;
    std::vector<float> a(m * k, 0.0f);
    std::vector<float> b(k, -0.5f);
    std::vector<float> bias(m, -0.0f);

    IsaGuard guard;
    for (const SimdIsa isa : supportedIsas()) {
        forceSimdIsa(isa);
        std::vector<float> out(m, 1.0f);
        gemm::biasGemm(m, 1, k, a.data(), b.data(), bias.data(),
                       out.data(), gemm::Epilogue::Relu);
        for (std::size_t i = 0; i < m; ++i)
            EXPECT_EQ(std::bit_cast<std::uint32_t>(out[i]),
                      std::bit_cast<std::uint32_t>(-0.0f))
                << simdIsaName(isa) << " row " << i;
        std::vector<float> wide(m * 24, 1.0f);
        std::vector<float> bwide(k * 24, -0.5f);
        gemm::biasGemm(m, 24, k, a.data(), bwide.data(), bias.data(),
                       wide.data(), gemm::Epilogue::Relu);
        for (std::size_t i = 0; i < wide.size(); ++i)
            EXPECT_EQ(std::bit_cast<std::uint32_t>(wide[i]),
                      std::bit_cast<std::uint32_t>(-0.0f))
                << simdIsaName(isa) << " element " << i;
    }
}

TEST(SimdDispatch, StridedConvBitIdenticalAcrossIsas)
{
    // Strided, padded conv: the im2col patch matrix has ragged n
    // (out_h * out_w) and interior zero blocks.
    Conv2dLayer conv(3, 5, 3, 3, 2, Padding::Same);
    Rng rng(23);
    conv.initializeWeights(rng);
    for (std::size_t i = 0; i < conv.biases().size(); ++i)
        conv.biases()[i] = 0.02f * static_cast<float>(i) - 0.03f;
    Tensor x(Shape{3, 17, 13});
    Rng xr(29);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(xr.uniform(-1.0, 1.0));

    const Tensor naive = conv.forwardNaive(x);
    IsaGuard guard;
    for (const SimdIsa isa : supportedIsas()) {
        forceSimdIsa(isa);
        const Tensor out = conv.forward(x);
        ASSERT_EQ(out.shape(), naive.shape());
        for (std::size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(std::bit_cast<std::uint32_t>(out[i]),
                      std::bit_cast<std::uint32_t>(naive[i]))
                << simdIsaName(isa) << " element " << i;
    }
}

TEST(SimdDispatch, DenseLayerBitIdenticalAcrossIsasAndThreads)
{
    DenseLayer layer(512, 770); // not multiples of the panel height
    Rng rng(31);
    layer.initializeWeights(rng);
    for (std::size_t i = 0; i < layer.biases().size(); ++i)
        layer.biases()[i] = 0.01f * static_cast<float>(i % 13) - 0.05f;
    Tensor x(Shape{512});
    Rng xr(37);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(xr.uniform(-1.0, 1.0));

    const Tensor naive = layer.forwardNaive(x);
    IsaGuard guard;
    for (const SimdIsa isa : supportedIsas()) {
        forceSimdIsa(isa);
        for (const unsigned threads : {1u, 2u, 8u}) {
            exec::ThreadPool::setGlobalThreadCount(threads);
            const Tensor out = layer.forward(x);
            for (std::size_t i = 0; i < out.size(); ++i)
                ASSERT_EQ(std::bit_cast<std::uint32_t>(out[i]),
                          std::bit_cast<std::uint32_t>(naive[i]))
                    << simdIsaName(isa) << " @" << threads
                    << " threads, element " << i;
        }
        exec::ThreadPool::setGlobalThreadCount(0);
    }
}

} // namespace
} // namespace mindful::dnn
